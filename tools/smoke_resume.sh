#!/usr/bin/env bash
# Kill-resume smoke test for the crash-safe checkpoint journal
# (DESIGN.md §10). Exercises the one contract the unit tests cannot: a
# real process death between journal appends, across process boundaries.
#
# The driver is killed via PPDC_CHECKPOINT_CRASH_AFTER=N, which _Exit()s
# the process immediately after the Nth durable journal append — the
# moral equivalent of SIGKILL at the worst possible instant the journal
# still promises to survive. The run is then resumed (twice, to prove
# resume composes) and its stdout must be byte-identical to an
# uninterrupted run of the same command.
#
# Usage: tools/smoke_resume.sh [--build-dir DIR]
#   --build-dir DIR   where to find bench/bench_ablation_replication
#                     (default: build)
set -u

cd "$(dirname "$0")/.." || exit 1

BUILD_DIR=build
while [ $# -gt 0 ]; do
  case "$1" in
    --build-dir)
      BUILD_DIR=$2
      shift 2
      ;;
    *)
      echo "unknown option: $1" >&2
      exit 2
      ;;
  esac
done

BENCH=$BUILD_DIR/bench/bench_ablation_replication
if [ ! -x "$BENCH" ]; then
  echo "smoke_resume: $BENCH not built (configure with PPDC_BUILD_BENCH=ON)" >&2
  exit 2
fi

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
JNL=$WORK/journal.jnl

# Small but non-trivial grid: 3 policies x 2 trials = 6 jobs, one journal
# append each. --threads 1 keeps the crash point deterministic.
run() {
  "$BENCH" --k 4 --trials 2 --l 12 --n 2 --replicas 2 --threads 1 "$@"
}

fail() {
  echo "smoke_resume: FAIL: $*" >&2
  exit 1
}

echo "== smoke_resume: reference run (no checkpoint)"
run > "$WORK/reference.out" 2> "$WORK/reference.err" ||
  fail "reference run exited $?"

echo "== smoke_resume: crash after journal append 1 of 6"
PPDC_CHECKPOINT_CRASH_AFTER=1 run --checkpoint "$JNL" \
  > "$WORK/crash1.out" 2> "$WORK/crash1.err"
status=$?
[ "$status" -eq 37 ] || fail "crash run exited $status, expected 37"
[ -f "$JNL" ] || fail "journal missing after crash"

echo "== smoke_resume: resume, crash again after 2 more appends"
PPDC_CHECKPOINT_CRASH_AFTER=2 run --checkpoint "$JNL" \
  > "$WORK/crash2.out" 2> "$WORK/crash2.err"
status=$?
[ "$status" -eq 37 ] || fail "second crash run exited $status, expected 37"
grep -q "resuming from checkpoint journal" "$WORK/crash2.err" ||
  fail "second run did not report resuming (stderr: $(cat "$WORK/crash2.err"))"

echo "== smoke_resume: final resume must complete and match the reference"
run --checkpoint "$JNL" > "$WORK/resume.out" 2> "$WORK/resume.err" ||
  fail "resume run exited $?"
grep -q "resuming from checkpoint journal '$JNL': 3 of 6 jobs" \
  "$WORK/resume.err" ||
  fail "resume did not skip the 3 journaled jobs (stderr: $(cat "$WORK/resume.err"))"
diff -u "$WORK/reference.out" "$WORK/resume.out" ||
  fail "resumed stdout differs from the uninterrupted run"

echo "== smoke_resume: rerunning a complete journal runs no job"
run --checkpoint "$JNL" > "$WORK/replay.out" 2> "$WORK/replay.err" ||
  fail "replay run exited $?"
grep -q "6 of 6 jobs already journaled" "$WORK/replay.err" ||
  fail "replay did not find all 6 jobs journaled (stderr: $(cat "$WORK/replay.err"))"
diff -u "$WORK/reference.out" "$WORK/replay.out" ||
  fail "replayed stdout differs from the uninterrupted run"

echo "== smoke_resume: OK — kill, resume, and replay are byte-identical"
exit 0
