#!/usr/bin/env bash
# Static-analysis gate for ppdc. Designed to run anywhere from a bare
# toolchain container to a full dev box: every stage that needs an
# optional tool (clang-tidy, clang-format) reports SKIPPED when the tool
# is absent instead of failing, while the stages that only need the
# baked-in g++ always run. Exit status is non-zero only when a stage
# that actually ran found a problem.
#
# Usage: tools/check.sh [--build-dir DIR]
#   --build-dir DIR   where to look for compile_commands.json
#                     (default: build)
set -u

cd "$(dirname "$0")/.." || exit 1

BUILD_DIR=build
while [ $# -gt 0 ]; do
  case "$1" in
    --build-dir)
      BUILD_DIR=$2
      shift 2
      ;;
    *)
      echo "unknown option: $1" >&2
      exit 2
      ;;
  esac
done

failures=0

note() { printf '== %s\n' "$*"; }

# ---------------------------------------------------------------------------
# Stage 1: header self-containment (always runs; needs only g++).
# Every header must compile as its own translation unit — missing
# includes surface here rather than as mysterious breakage when a
# consumer reorders its include list.
# ---------------------------------------------------------------------------
note "headers: g++ -fsyntax-only self-containment"
header_failures=0
wrapper=$(mktemp --suffix=.cpp)
trap 'rm -f "$wrapper"' EXIT
while IFS= read -r header; do
  # Compiling the header directly would warn about '#pragma once in main
  # file'; include it from a throwaway TU instead.
  printf '#include "%s"\n' "$header" > "$wrapper"
  if ! g++ -std=c++20 -fsyntax-only -Wall -Wextra -Wpedantic -Werror \
       -I. -Isrc "$wrapper"; then
    echo "   FAIL: $header is not self-contained" >&2
    header_failures=$((header_failures + 1))
  fi
done < <(find src -name '*.hpp' | sort)
if [ "$header_failures" -eq 0 ]; then
  echo "   OK: all src headers compile standalone"
else
  failures=$((failures + 1))
fi

# ---------------------------------------------------------------------------
# Stage 2: clang-format (optional tool).
# ---------------------------------------------------------------------------
if command -v clang-format >/dev/null 2>&1; then
  note "clang-format: --dry-run -Werror"
  # lint_corpus fixtures are deliberately malformed — not style targets.
  if find src tests bench examples \
       -path '*/lint_corpus/*' -prune -o \
       \( -name '*.hpp' -o -name '*.cpp' \) -print0 2>/dev/null |
     xargs -0 clang-format --dry-run -Werror; then
    echo "   OK"
  else
    failures=$((failures + 1))
  fi
else
  note "clang-format: SKIPPED (not installed)"
fi

# ---------------------------------------------------------------------------
# Stage 3: clang-tidy (optional tool; needs compile_commands.json).
# ---------------------------------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  if [ -f "$BUILD_DIR/compile_commands.json" ]; then
    note "clang-tidy: checks from .clang-tidy over src/"
    if find src -name '*.cpp' -print0 | sort -z |
       xargs -0 clang-tidy -p "$BUILD_DIR" --quiet; then
      echo "   OK"
    else
      failures=$((failures + 1))
    fi
  else
    note "clang-tidy: SKIPPED (no $BUILD_DIR/compile_commands.json —" \
         "configure with cmake --preset default first)"
  fi
else
  note "clang-tidy: SKIPPED (not installed)"
fi

# ---------------------------------------------------------------------------
# Stage 4: ppdc_lint — determinism / domain / include-hygiene rules
# (needs the default build: tools/lint/ppdc_lint). The former stage-4
# grep ban (mutable std::vector<MigrationPolicy*>) lives on as the
# `policy-prototype-const` rule and the former stage-4b grep ban
# (system_clock) as `steady-clock-only`; the ban list now has one home —
# the rule registry (DESIGN.md §13) — and the token-level scans no
# longer misfire on comments or string literals the way the greps did.
# Inline `// ppdc-lint: allow(rule reason)` suppressions and the
# committed baseline (tools/lint/ppdc_lint.baseline) are honoured.
# ---------------------------------------------------------------------------
LINT_BIN=$BUILD_DIR/tools/lint/ppdc_lint
if [ -x "$LINT_BIN" ]; then
  note "ppdc_lint: $LINT_BIN"
  if "$LINT_BIN"; then
    echo "   OK: no findings outside the committed baseline"
  else
    echo "   FAIL: ppdc_lint found rule violations (fix, suppress with" \
         "'// ppdc-lint: allow(rule reason)', or baseline)" >&2
    failures=$((failures + 1))
  fi
else
  note "ppdc_lint: SKIPPED (no $LINT_BIN — build the default preset first)"
fi

# ---------------------------------------------------------------------------
# Stage 4b: vectorization gate over the PR-6 flat kernels (needs only
# g++; SKIPs on non-GNU toolchains). Compiles the pinned
# `// ppdc-vec:`-tagged candidate-scan loops in stroll_dp.cpp /
# cost_model.cpp at -O3 -march=x86-64-v3 and fails if any of them stops
# being reported as "loop vectorized".
# ---------------------------------------------------------------------------
note "vec gate: tools/vec_gate.sh"
tools/vec_gate.sh
vec_rc=$?
if [ "$vec_rc" -eq 0 ]; then
  echo "   OK: all pinned kernel loops vectorize"
elif [ "$vec_rc" -eq 77 ]; then
  note "vec gate: SKIPPED (toolchain cannot run the -fopt-info probe)"
else
  echo "   FAIL: a pinned kernel loop no longer vectorizes" >&2
  failures=$((failures + 1))
fi

# ---------------------------------------------------------------------------
# Stage 5: ThreadSanitizer over the parallel experiment runner (optional;
# needs the tsan preset built: cmake --preset tsan && cmake --build
# --preset tsan). The experiment_parallel_test pins threads=4 explicitly,
# so the SimJob pool's dispatch/merge paths run instrumented even though
# PPDC_TSAN builds default auto-threads to 1.
# ---------------------------------------------------------------------------
TSAN_RUNNER=build-tsan/tests/experiment_parallel_test
if [ -x "$TSAN_RUNNER" ]; then
  note "tsan: $TSAN_RUNNER"
  if "$TSAN_RUNNER" >/dev/null; then
    echo "   OK: parallel runner is race-free under TSan"
  else
    echo "   FAIL: TSan flagged the parallel runner" >&2
    failures=$((failures + 1))
  fi
else
  note "tsan: SKIPPED (no $TSAN_RUNNER — build the tsan preset first)"
fi

# The sharded streaming loop solves shards concurrently on its own worker
# pool (sim/sharded.cpp); re-run the scale_smoke scenario instrumented so
# the per-shard phase / fixed-order merge handoffs are TSan-checked too.
TSAN_SCALE=build-tsan/bench/bench_scale
if [ -x "$TSAN_SCALE" ]; then
  note "tsan: $TSAN_SCALE --smoke"
  if "$TSAN_SCALE" --smoke >/dev/null; then
    echo "   OK: sharded epoch loop is race-free under TSan"
  else
    echo "   FAIL: TSan flagged the sharded epoch loop" >&2
    failures=$((failures + 1))
  fi
else
  note "tsan: SKIPPED (no $TSAN_SCALE — build the tsan preset first)"
fi

# ---------------------------------------------------------------------------
# Stage 6: kill-resume smoke under ASan (optional; needs the sanitize
# preset built: cmake --preset sanitize && cmake --build --preset
# sanitize). The default
# build already runs tools/smoke_resume.sh as the tier1 resume_smoke
# CTest; this stage repeats it instrumented, so the journal's
# crash/resume paths (raw POSIX I/O, _Exit mid-run) are also exercised
# under AddressSanitizer + UBSan.
# ---------------------------------------------------------------------------
ASAN_BENCH=build-asan/bench/bench_ablation_replication
if [ -x "$ASAN_BENCH" ]; then
  note "resume smoke (asan): tools/smoke_resume.sh --build-dir build-asan"
  if tools/smoke_resume.sh --build-dir build-asan > /dev/null; then
    echo "   OK: kill-resume round trip is clean under ASan"
  else
    echo "   FAIL: checkpoint kill-resume smoke failed under ASan" >&2
    failures=$((failures + 1))
  fi
else
  note "resume smoke (asan): SKIPPED (no $ASAN_BENCH — build the" \
       "sanitize preset first)"
fi

# The sharded epoch journal gets the same treatment: kill the sharded
# chaos soak between epoch-journal writes mid-cell and resume it, under
# both sanitizer presets (raw POSIX I/O, _Exit mid-epoch, per-shard
# resume-state restore).
for resume_build in build-asan build-tsan; do
  RESUME_BIN=$resume_build/bench/bench_chaos
  if [ -x "$RESUME_BIN" ]; then
    note "sharded resume smoke ($resume_build): tools/smoke_resume_sharded.sh"
    if tools/smoke_resume_sharded.sh --build-dir "$resume_build" > /dev/null; then
      echo "   OK: epoch-journal kill-resume is clean under $resume_build"
    else
      echo "   FAIL: sharded kill-resume smoke failed under $resume_build" >&2
      failures=$((failures + 1))
    fi
  else
    note "sharded resume smoke ($resume_build): SKIPPED (no $RESUME_BIN —" \
         "build that preset first)"
  fi
done

# ---------------------------------------------------------------------------
# Stage 7: BENCH_*.json perf-trajectory gate (optional; needs the bench
# preset built plus committed baselines in bench/baselines/). Runs the
# pinned micro-kernel scenarios in smoke mode and rejects >tolerance
# best_ns regressions, output-checksum drift, and build-metadata
# mismatches against the committed artifacts. bench_gate.sh exits 77
# when an ingredient is missing (same SKIPPED degradation as the
# sanitizer stages).
# ---------------------------------------------------------------------------
note "bench gate: tools/bench_gate.sh"
tools/bench_gate.sh
gate_rc=$?
if [ "$gate_rc" -eq 0 ]; then
  echo "   OK: pinned kernels within tolerance of committed baselines"
elif [ "$gate_rc" -eq 77 ]; then
  note "bench gate: SKIPPED (build the bench preset first)"
else
  echo "   FAIL: perf gate flagged a regression or incomparable baseline" >&2
  failures=$((failures + 1))
fi

# ---------------------------------------------------------------------------
# Stage 8: chaos soak under the sanitizers (optional; needs the sanitize
# and/or tsan presets built). The default build already runs bench_chaos
# --smoke as the tier1 chaos_smoke CTest; this stage repeats the full
# fault-domain sweep — degradation ladder plus per-epoch invariant
# auditing — instrumented, so the fault/recovery/ladder code paths are
# exercised under ASan+UBSan and TSan too. Any audit violation exits
# nonzero and fails the stage.
# ---------------------------------------------------------------------------
for chaos_build in build-asan build-tsan; do
  CHAOS_BIN=$chaos_build/bench/bench_chaos
  if [ -x "$CHAOS_BIN" ]; then
    note "chaos soak ($chaos_build): $CHAOS_BIN --smoke"
    if "$CHAOS_BIN" --smoke > /dev/null; then
      echo "   OK: chaos soak clean (0 audit violations) under $chaos_build"
    else
      echo "   FAIL: chaos soak failed under $chaos_build" >&2
      failures=$((failures + 1))
    fi
    note "chaos soak ($chaos_build): $CHAOS_BIN --smoke --sharded"
    if "$CHAOS_BIN" --smoke --sharded > /dev/null; then
      echo "   OK: sharded chaos soak clean under $chaos_build"
    else
      echo "   FAIL: sharded chaos soak failed under $chaos_build" >&2
      failures=$((failures + 1))
    fi
  else
    note "chaos soak ($chaos_build): SKIPPED (no $CHAOS_BIN — build that" \
         "preset first)"
  fi
done

# ---------------------------------------------------------------------------
if [ "$failures" -eq 0 ]; then
  note "check.sh: all executed stages passed"
  exit 0
fi
note "check.sh: $failures stage(s) failed"
exit 1
