#!/usr/bin/env bash
# Static-analysis gate for ppdc. Designed to run anywhere from a bare
# toolchain container to a full dev box: every stage that needs an
# optional tool (clang-tidy, clang-format) reports SKIPPED when the tool
# is absent instead of failing, while the stages that only need the
# baked-in g++ always run. Exit status is non-zero only when a stage
# that actually ran found a problem.
#
# Usage: tools/check.sh [--build-dir DIR]
#   --build-dir DIR   where to look for compile_commands.json
#                     (default: build)
set -u

cd "$(dirname "$0")/.." || exit 1

BUILD_DIR=build
while [ $# -gt 0 ]; do
  case "$1" in
    --build-dir)
      BUILD_DIR=$2
      shift 2
      ;;
    *)
      echo "unknown option: $1" >&2
      exit 2
      ;;
  esac
done

failures=0

note() { printf '== %s\n' "$*"; }

# ---------------------------------------------------------------------------
# Stage 1: header self-containment (always runs; needs only g++).
# Every header must compile as its own translation unit — missing
# includes surface here rather than as mysterious breakage when a
# consumer reorders its include list.
# ---------------------------------------------------------------------------
note "headers: g++ -fsyntax-only self-containment"
header_failures=0
wrapper=$(mktemp --suffix=.cpp)
trap 'rm -f "$wrapper"' EXIT
while IFS= read -r header; do
  # Compiling the header directly would warn about '#pragma once in main
  # file'; include it from a throwaway TU instead.
  printf '#include "%s"\n' "$header" > "$wrapper"
  if ! g++ -std=c++20 -fsyntax-only -Wall -Wextra -Wpedantic -Werror \
       -I. -Isrc "$wrapper"; then
    echo "   FAIL: $header is not self-contained" >&2
    header_failures=$((header_failures + 1))
  fi
done < <(find src -name '*.hpp' | sort)
if [ "$header_failures" -eq 0 ]; then
  echo "   OK: all src headers compile standalone"
else
  failures=$((failures + 1))
fi

# ---------------------------------------------------------------------------
# Stage 2: clang-format (optional tool).
# ---------------------------------------------------------------------------
if command -v clang-format >/dev/null 2>&1; then
  note "clang-format: --dry-run -Werror"
  if find src tests bench examples \
       \( -name '*.hpp' -o -name '*.cpp' \) -print0 2>/dev/null |
     xargs -0 clang-format --dry-run -Werror; then
    echo "   OK"
  else
    failures=$((failures + 1))
  fi
else
  note "clang-format: SKIPPED (not installed)"
fi

# ---------------------------------------------------------------------------
# Stage 3: clang-tidy (optional tool; needs compile_commands.json).
# ---------------------------------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  if [ -f "$BUILD_DIR/compile_commands.json" ]; then
    note "clang-tidy: checks from .clang-tidy over src/"
    if find src -name '*.cpp' -print0 | sort -z |
       xargs -0 clang-tidy -p "$BUILD_DIR" --quiet; then
      echo "   OK"
    else
      failures=$((failures + 1))
    fi
  else
    note "clang-tidy: SKIPPED (no $BUILD_DIR/compile_commands.json —" \
         "configure with cmake --preset default first)"
  fi
else
  note "clang-tidy: SKIPPED (not installed)"
fi

# ---------------------------------------------------------------------------
# Stage 4: policy ownership contract (always runs; needs only grep).
# run_experiment takes policies as *const prototypes* and every SimJob
# clones its own instance (see sim/policy.hpp). A mutable raw-pointer
# policy list reintroduces the shared-instance aliasing the refactor
# removed, so any `std::vector<MigrationPolicy*>` — without const — is
# rejected. (clang-tidy, when installed, has no check for this idiom;
# the grep gate runs everywhere the repo builds.)
# ---------------------------------------------------------------------------
note "policy ownership: no mutable std::vector<MigrationPolicy*> lists"
raw_owners=$(grep -rn --include='*.hpp' --include='*.cpp' \
               -E 'std::vector< *MigrationPolicy *\*' \
               src tests bench examples 2>/dev/null)
if [ -n "$raw_owners" ]; then
  echo "$raw_owners" >&2
  echo "   FAIL: pass policies as std::vector<const MigrationPolicy*>" \
       "prototypes (each SimJob clones its own instance)" >&2
  failures=$((failures + 1))
else
  echo "   OK: all policy lists are const prototypes"
fi

# ---------------------------------------------------------------------------
# Stage 4b: wall-clock deadline hygiene (always runs; needs only grep).
# Every deadline/budget in the tree must be measured on
# std::chrono::steady_clock — system_clock jumps under NTP slews and
# manual clock changes, which turns solver budgets and bench timings into
# nondeterminism. system_clock is only legitimate for wall-time *display*
# (none needed so far), so any mention in code is rejected outright.
# ---------------------------------------------------------------------------
note "clock hygiene: no std::chrono::system_clock in code"
clock_uses=$(grep -rn --include='*.hpp' --include='*.cpp' \
               'system_clock' src tests bench tools examples 2>/dev/null)
if [ -n "$clock_uses" ]; then
  echo "$clock_uses" >&2
  echo "   FAIL: deadlines must use std::chrono::steady_clock" \
       "(system_clock is not monotonic)" >&2
  failures=$((failures + 1))
else
  echo "   OK: all timing code is steady_clock-based"
fi

# ---------------------------------------------------------------------------
# Stage 5: ThreadSanitizer over the parallel experiment runner (optional;
# needs the tsan preset built: cmake --preset tsan && cmake --build
# --preset tsan). The experiment_parallel_test pins threads=4 explicitly,
# so the SimJob pool's dispatch/merge paths run instrumented even though
# PPDC_TSAN builds default auto-threads to 1.
# ---------------------------------------------------------------------------
TSAN_RUNNER=build-tsan/tests/experiment_parallel_test
if [ -x "$TSAN_RUNNER" ]; then
  note "tsan: $TSAN_RUNNER"
  if "$TSAN_RUNNER" >/dev/null; then
    echo "   OK: parallel runner is race-free under TSan"
  else
    echo "   FAIL: TSan flagged the parallel runner" >&2
    failures=$((failures + 1))
  fi
else
  note "tsan: SKIPPED (no $TSAN_RUNNER — build the tsan preset first)"
fi

# ---------------------------------------------------------------------------
# Stage 6: kill-resume smoke under ASan (optional; needs the sanitize
# preset built: cmake --preset sanitize && cmake --build --preset
# sanitize). The default
# build already runs tools/smoke_resume.sh as the tier1 resume_smoke
# CTest; this stage repeats it instrumented, so the journal's
# crash/resume paths (raw POSIX I/O, _Exit mid-run) are also exercised
# under AddressSanitizer + UBSan.
# ---------------------------------------------------------------------------
ASAN_BENCH=build-asan/bench/bench_ablation_replication
if [ -x "$ASAN_BENCH" ]; then
  note "resume smoke (asan): tools/smoke_resume.sh --build-dir build-asan"
  if tools/smoke_resume.sh --build-dir build-asan > /dev/null; then
    echo "   OK: kill-resume round trip is clean under ASan"
  else
    echo "   FAIL: checkpoint kill-resume smoke failed under ASan" >&2
    failures=$((failures + 1))
  fi
else
  note "resume smoke (asan): SKIPPED (no $ASAN_BENCH — build the" \
       "sanitize preset first)"
fi

# ---------------------------------------------------------------------------
# Stage 7: BENCH_*.json perf-trajectory gate (optional; needs the bench
# preset built plus committed baselines in bench/baselines/). Runs the
# pinned micro-kernel scenarios in smoke mode and rejects >tolerance
# best_ns regressions, output-checksum drift, and build-metadata
# mismatches against the committed artifacts. bench_gate.sh exits 77
# when an ingredient is missing (same SKIPPED degradation as the
# sanitizer stages).
# ---------------------------------------------------------------------------
note "bench gate: tools/bench_gate.sh"
tools/bench_gate.sh
gate_rc=$?
if [ "$gate_rc" -eq 0 ]; then
  echo "   OK: pinned kernels within tolerance of committed baselines"
elif [ "$gate_rc" -eq 77 ]; then
  note "bench gate: SKIPPED (build the bench preset first)"
else
  echo "   FAIL: perf gate flagged a regression or incomparable baseline" >&2
  failures=$((failures + 1))
fi

# ---------------------------------------------------------------------------
# Stage 8: chaos soak under the sanitizers (optional; needs the sanitize
# and/or tsan presets built). The default build already runs bench_chaos
# --smoke as the tier1 chaos_smoke CTest; this stage repeats the full
# fault-domain sweep — degradation ladder plus per-epoch invariant
# auditing — instrumented, so the fault/recovery/ladder code paths are
# exercised under ASan+UBSan and TSan too. Any audit violation exits
# nonzero and fails the stage.
# ---------------------------------------------------------------------------
for chaos_build in build-asan build-tsan; do
  CHAOS_BIN=$chaos_build/bench/bench_chaos
  if [ -x "$CHAOS_BIN" ]; then
    note "chaos soak ($chaos_build): $CHAOS_BIN --smoke"
    if "$CHAOS_BIN" --smoke > /dev/null; then
      echo "   OK: chaos soak clean (0 audit violations) under $chaos_build"
    else
      echo "   FAIL: chaos soak failed under $chaos_build" >&2
      failures=$((failures + 1))
    fi
  else
    note "chaos soak ($chaos_build): SKIPPED (no $CHAOS_BIN — build that" \
         "preset first)"
  fi
done

# ---------------------------------------------------------------------------
if [ "$failures" -eq 0 ]; then
  note "check.sh: all executed stages passed"
  exit 0
fi
note "check.sh: $failures stage(s) failed"
exit 1
