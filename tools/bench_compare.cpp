// bench_compare: the perf-trajectory regression gate over BENCH_*.json
// artifacts (see bench/bench_common.hpp for the writer and EXPERIMENTS.md
// for the workflow).
//
//   bench_compare BASELINE_DIR CURRENT_DIR [--tolerance FRACTION]
//
// For every BENCH_<kernel>.json in BASELINE_DIR the same-named artifact
// must exist in CURRENT_DIR and satisfy, in order:
//
//   1. build comparability — build_type, cxx_flags, compiler, native and
//      threads must match exactly. A mismatch is *rejected* (exit 3), not
//      compared: a Release baseline against a RelWithDebInfo run would
//      only produce noise dressed up as a regression (or worse, mask one).
//   2. scenario identity — the fingerprint must match, else the pinned
//      scenario was edited without refreshing the baseline (exit 1).
//   3. output identity — the checksum must match bit-exactly; drift means
//      a kernel changed numeric behaviour, which is a correctness failure
//      long before it is a perf question (exit 1).
//   4. perf — current best_ns may exceed baseline best_ns by at most the
//      tolerance (default 0.10, overridable via --tolerance or the
//      PPDC_BENCH_TOLERANCE environment variable). When either side ran
//      in smoke mode an extra 0.25 slack absorbs the short repetitions'
//      scheduler noise.
//
// Exit codes: 0 all kernels pass; 1 regression / drift / missing kernel;
// 2 usage or I/O error; 3 build-metadata mismatch (incomparable).
//
// The parser is a line scanner over the writer's "one key per line"
// format, not a JSON library — the container bakes none in, and the
// format is under this repo's control end to end.
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

/// Flat key -> raw-value view of one artifact. Values keep their JSON
/// spelling ("Release" without quotes for strings, "true", "123.4").
using Record = std::map<std::string, std::string>;

/// Parses `  "key": value,` lines; returns false when the file cannot be
/// read or holds no recognisable pairs.
bool parse_bench_json(const fs::path& path, Record& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t kq0 = line.find('"');
    if (kq0 == std::string::npos) continue;
    const std::size_t kq1 = line.find('"', kq0 + 1);
    if (kq1 == std::string::npos) continue;
    const std::size_t colon = line.find(':', kq1);
    if (colon == std::string::npos) continue;
    std::string value = line.substr(colon + 1);
    // Trim whitespace and the trailing comma; unquote strings.
    while (!value.empty() && (value.back() == ',' || value.back() == ' ' ||
                              value.back() == '\r')) {
      value.pop_back();
    }
    std::size_t start = value.find_first_not_of(' ');
    if (start == std::string::npos) continue;
    value = value.substr(start);
    if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
      value = value.substr(1, value.size() - 2);
    }
    out[line.substr(kq0 + 1, kq1 - kq0 - 1)] = value;
  }
  return !out.empty();
}

std::string get(const Record& r, const std::string& key) {
  const auto it = r.find(key);
  return it == r.end() ? std::string() : it->second;
}

bool get_double(const Record& r, const std::string& key, double& out) {
  const std::string v = get(r, key);
  if (v.empty()) return false;
  std::istringstream is(v);
  return static_cast<bool>(is >> out);
}

int usage() {
  std::cerr << "usage: bench_compare BASELINE_DIR CURRENT_DIR"
            << " [--tolerance FRACTION]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> dirs;
  double tolerance = 0.10;
  if (const char* env = std::getenv("PPDC_BENCH_TOLERANCE")) {
    std::istringstream is(env);
    if (!(is >> tolerance) || tolerance < 0.0) {
      std::cerr << "error: bad PPDC_BENCH_TOLERANCE '" << env << "'\n";
      return 2;
    }
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tolerance" && i + 1 < argc) {
      std::istringstream is(argv[++i]);
      if (!(is >> tolerance) || tolerance < 0.0) return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      dirs.push_back(arg);
    }
  }
  if (dirs.size() != 2) return usage();
  const fs::path baseline_dir = dirs[0];
  const fs::path current_dir = dirs[1];
  if (!fs::is_directory(baseline_dir) || !fs::is_directory(current_dir)) {
    std::cerr << "error: both arguments must be directories\n";
    return 2;
  }

  std::vector<fs::path> baselines;
  for (const auto& entry : fs::directory_iterator(baseline_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 &&
        entry.path().extension() == ".json") {
      baselines.push_back(entry.path());
    }
  }
  std::sort(baselines.begin(), baselines.end());
  if (baselines.empty()) {
    std::cerr << "error: no BENCH_*.json baselines in " << baseline_dir
              << "\n";
    return 2;
  }

  int failures = 0;
  bool rejected = false;
  for (const fs::path& base_path : baselines) {
    const std::string name = base_path.filename().string();
    Record base, cur;
    if (!parse_bench_json(base_path, base)) {
      std::cerr << "error: cannot parse " << base_path << "\n";
      return 2;
    }
    const fs::path cur_path = current_dir / name;
    if (!parse_bench_json(cur_path, cur)) {
      std::cout << "FAIL " << name << ": missing from " << current_dir
                << " (kernel dropped from the pinned set?)\n";
      ++failures;
      continue;
    }

    // 1. Build comparability: reject, never compare.
    bool mismatch = false;
    for (const char* key :
         {"build_type", "cxx_flags", "compiler", "native", "threads"}) {
      if (get(base, key) != get(cur, key)) {
        std::cout << "REJECT " << name << ": " << key << " '"
                  << get(cur, key) << "' vs baseline '" << get(base, key)
                  << "' — artifacts are not comparable; rebuild with the"
                  << " bench preset or refresh the baseline\n";
        mismatch = true;
      }
    }
    if (mismatch) {
      rejected = true;
      continue;
    }

    // 2. Scenario identity.
    if (get(base, "fingerprint") != get(cur, "fingerprint")) {
      std::cout << "FAIL " << name << ": scenario fingerprint "
                << get(cur, "fingerprint") << " vs baseline "
                << get(base, "fingerprint")
                << " — pinned scenario changed; refresh bench/baselines\n";
      ++failures;
      continue;
    }

    // 3. Output identity (bit-exact).
    if (get(base, "checksum") != get(cur, "checksum")) {
      std::cout << "FAIL " << name << ": output checksum "
                << get(cur, "checksum") << " vs baseline "
                << get(base, "checksum")
                << " — kernel output drifted (correctness, not perf)\n";
      ++failures;
      continue;
    }

    // 4. Perf against best_ns.
    double base_ns = 0.0, cur_ns = 0.0;
    if (!get_double(base, "best_ns", base_ns) ||
        !get_double(cur, "best_ns", cur_ns) || base_ns <= 0.0) {
      std::cerr << "error: " << name << " lacks a usable best_ns\n";
      return 2;
    }
    double allowed = tolerance;
    if (get(base, "smoke") == "true" || get(cur, "smoke") == "true") {
      allowed += 0.25;  // short smoke repetitions jitter more
    }
    const double ratio = cur_ns / base_ns;
    std::ostringstream line;
    line << name << ": " << cur_ns / 1e6 << " ms vs baseline "
         << base_ns / 1e6 << " ms (x" << ratio << ", allowed x"
         << 1.0 + allowed << ")";
    if (ratio > 1.0 + allowed) {
      std::cout << "FAIL " << line.str() << "\n";
      ++failures;
    } else {
      std::cout << "OK   " << line.str() << "\n";
    }
  }

  if (rejected) return 3;
  if (failures > 0) {
    std::cout << failures << " kernel(s) failed the perf gate\n";
    return 1;
  }
  std::cout << "all " << baselines.size() << " kernel(s) within tolerance\n";
  return 0;
}
