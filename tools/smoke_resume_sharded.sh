#!/usr/bin/env bash
# Kill-resume smoke test for the sharded epoch journal (DESIGN.md §15).
# Exercises the contract the unit tests cannot: a real process death
# between *epoch*-journal writes, across process boundaries, inside a
# grid cell that the cell-granular checkpoint journal (DESIGN.md §10)
# still considers unfinished.
#
# The driver is killed via PPDC_EPOCH_CRASH_AFTER=N, which _Exit()s the
# process immediately after the Nth durable epoch-journal write — SIGKILL
# at the worst instant the journal still promises to survive. The run is
# then resumed (twice, to prove resume composes): completed cells are
# skipped by the grid journal, and the in-flight cell resumes mid-run
# from its epoch journal. The final stdout must be byte-identical to an
# uninterrupted run, and no derived epoch journal may survive its cell.
#
# Usage: tools/smoke_resume_sharded.sh [--build-dir DIR]
#   --build-dir DIR   where to find bench/bench_chaos (default: build)
set -u

cd "$(dirname "$0")/.." || exit 1

BUILD_DIR=build
while [ $# -gt 0 ]; do
  case "$1" in
    --build-dir)
      BUILD_DIR=$2
      shift 2
      ;;
    *)
      echo "unknown option: $1" >&2
      exit 2
      ;;
  esac
done

BENCH=$BUILD_DIR/bench/bench_chaos
if [ ! -x "$BENCH" ]; then
  echo "smoke_resume_sharded: $BENCH not built (configure with PPDC_BUILD_BENCH=ON)" >&2
  exit 2
fi

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
JNL=$WORK/grid.jnl
EPOCH=$WORK/epoch.jnl

# The sharded chaos smoke: 2 scenarios x 2 policies x 1 trial = 4 cells,
# 15 epochs each (16h), one epoch-journal write per non-final epoch.
# --threads 1 keeps the crash point deterministic.
run() {
  "$BENCH" --smoke --sharded --threads 1 "$@"
}

fail() {
  echo "smoke_resume_sharded: FAIL: $*" >&2
  exit 1
}

echo "== smoke_resume_sharded: reference run (no journals)"
run > "$WORK/reference.out" 2> "$WORK/reference.err" ||
  fail "reference run exited $?"

echo "== smoke_resume_sharded: crash mid-cell after epoch write 10"
PPDC_EPOCH_CRASH_AFTER=10 run --checkpoint "$JNL" --epoch-journal "$EPOCH" \
  > "$WORK/crash1.out" 2> "$WORK/crash1.err"
status=$?
[ "$status" -eq 37 ] || fail "crash run exited $status, expected 37"
[ -f "$EPOCH.pod-outage.t0p0" ] ||
  fail "derived epoch journal missing after crash"

echo "== smoke_resume_sharded: resume mid-cell, crash again 20 writes later"
PPDC_EPOCH_CRASH_AFTER=20 run --checkpoint "$JNL" --epoch-journal "$EPOCH" \
  > "$WORK/crash2.out" 2> "$WORK/crash2.err"
status=$?
[ "$status" -eq 37 ] || fail "second crash run exited $status, expected 37"
grep -q "resuming sharded run from epoch journal" "$WORK/crash2.err" ||
  fail "second run did not resume from the epoch journal (stderr: $(cat "$WORK/crash2.err"))"

echo "== smoke_resume_sharded: final resume must complete and match"
run --checkpoint "$JNL" --epoch-journal "$EPOCH" \
  > "$WORK/resume.out" 2> "$WORK/resume.err" ||
  fail "resume run exited $?"
grep -q "resuming from checkpoint journal" "$WORK/resume.err" ||
  fail "final run did not skip journaled cells (stderr: $(cat "$WORK/resume.err"))"
diff -u "$WORK/reference.out" "$WORK/resume.out" ||
  fail "resumed stdout differs from the uninterrupted run"

# Every derived epoch journal is removed once its cell's terminal record
# lands in the grid journal; a leftover means the cleanup regressed.
if ls "$WORK"/epoch.jnl.* > /dev/null 2>&1; then
  fail "stale epoch journals left behind: $(ls "$WORK"/epoch.jnl.*)"
fi

echo "== smoke_resume_sharded: OK — mid-cell kill and resume are byte-identical"
exit 0
