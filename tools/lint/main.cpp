// CLI for ppdc_lint. Exit status: 0 clean, 1 findings, 2 usage/IO error.
//
//   ppdc_lint [--root DIR] [--baseline FILE] [--write-baseline FILE]
//             [--sarif FILE] [--rules a,b,c] [--no-suppress]
//             [--list-rules] [paths...]
//
// With no paths, scans src tests bench tools examples under --root
// (default: the current directory — check.sh and CTest run it from the
// repo root). The committed baseline tools/lint/ppdc_lint.baseline is
// applied automatically when present.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer.hpp"

namespace {

constexpr const char* kDefaultBaseline = "tools/lint/ppdc_lint.baseline";

int usage(std::ostream& os, int rc) {
  os << "usage: ppdc_lint [--root DIR] [--baseline FILE]"
        " [--write-baseline FILE]\n"
        "                 [--sarif FILE] [--rules a,b,c] [--no-suppress]\n"
        "                 [--list-rules] [paths...]\n";
  return rc;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using ppdc::lint::LintOptions;
  LintOptions options;
  std::string write_baseline;
  std::string sarif_path;
  bool baseline_explicit = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(std::cerr, 2);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      options.root = next();
    } else if (arg == "--baseline") {
      options.baseline_path = next();
      baseline_explicit = true;
    } else if (arg == "--write-baseline") {
      write_baseline = next();
    } else if (arg == "--sarif") {
      sarif_path = next();
    } else if (arg == "--rules") {
      options.rules = split_csv(next());
    } else if (arg == "--no-suppress") {
      options.apply_suppressions = false;
    } else if (arg == "--list-rules") {
      for (const auto& r : ppdc::lint::rule_registry()) {
        std::cout << r.name << "\n    " << r.rationale << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "ppdc_lint: unknown option " << arg << "\n";
      return usage(std::cerr, 2);
    } else {
      options.paths.push_back(arg);
    }
  }
  if (!baseline_explicit &&
      std::filesystem::exists(std::filesystem::path(options.root) /
                              kDefaultBaseline)) {
    options.baseline_path = kDefaultBaseline;
  }

  ppdc::lint::LintResult result;
  try {
    result = ppdc::lint::run_lint(options);
  } catch (const std::exception& e) {
    std::cerr << "ppdc_lint: " << e.what() << "\n";
    return 2;
  }

  if (!write_baseline.empty()) {
    std::ofstream out(write_baseline, std::ios::binary);
    if (!out) {
      std::cerr << "ppdc_lint: cannot write " << write_baseline << "\n";
      return 2;
    }
    out << ppdc::lint::to_baseline(result.findings);
    std::cout << "ppdc_lint: wrote " << result.findings.size()
              << " baseline entries to " << write_baseline << "\n";
    return 0;
  }
  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary);
    if (!out) {
      std::cerr << "ppdc_lint: cannot write " << sarif_path << "\n";
      return 2;
    }
    out << ppdc::lint::to_sarif(result.findings);
  }

  for (const auto& f : result.findings) {
    std::cout << ppdc::lint::format_text(f) << "\n";
  }
  for (const auto& entry : result.stale_baseline) {
    std::cout << "ppdc_lint: stale baseline entry (no longer fires): "
              << entry << "\n";
  }
  std::cout << "ppdc_lint: " << result.findings.size() << " finding(s), "
            << result.suppressed.size() << " suppressed, "
            << result.baselined.size() << " baselined\n";
  return result.findings.empty() ? 0 : 1;
}
