// Driver for ppdc_lint: file discovery, cross-file context (the
// symbol→header map behind include-spell), suppression and baseline
// filtering, and the text / SARIF / baseline renderers.
#include "analyzer.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ppdc::lint {

namespace fs = std::filesystem;

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string slashed(const fs::path& p) {
  return p.generic_string();
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + slashed(p));
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Collects .hpp/.cpp files under root/rel (or the single file), sorted,
/// skipping the lint fixture corpus (its files violate on purpose).
void collect_sources(const fs::path& root, const std::string& rel,
                     std::vector<std::string>* out) {
  const fs::path p = root / rel;
  if (fs::is_regular_file(p)) {
    out->push_back(rel);
    return;
  }
  if (!fs::is_directory(p)) return;
  for (const auto& entry : fs::recursive_directory_iterator(p)) {
    if (!entry.is_regular_file()) continue;
    const std::string path = slashed(fs::relative(entry.path(), root));
    if (path.find("lint_corpus") != std::string::npos) continue;
    if (ends_with(path, ".hpp") || ends_with(path, ".cpp")) {
      out->push_back(path);
    }
  }
}

/// Namespace-scope symbol extraction from one src header: class/struct
/// and enum definitions plus `using X = ...` aliases, brace-tracked so
/// nested types and template parameters are not registered.
void extract_symbols(const std::string& header_rel, const LexedFile& lexed,
                     ProjectContext* ctx) {
  const std::vector<Token>& t = lexed.tokens;
  enum class Scope { kNamespace, kOther };
  std::vector<Scope> stack;
  Scope next_brace = Scope::kOther;
  bool next_brace_pending = false;
  auto at_namespace_scope = [&] {
    for (const Scope s : stack) {
      if (s != Scope::kNamespace) return false;
    }
    return true;
  };
  for (std::size_t i = 0; i < t.size(); ++i) {
    const Token& tk = t[i];
    if (tk.kind == TokKind::kPunct) {
      if (tk.text == "{") {
        stack.push_back(next_brace_pending ? next_brace : Scope::kOther);
        next_brace_pending = false;
      } else if (tk.text == "}") {
        if (!stack.empty()) stack.pop_back();
      }
      continue;
    }
    if (tk.kind != TokKind::kIdentifier) continue;
    // Skip template parameter lists entirely: `template <class T>` must
    // not look like a class definition of T.
    if (tk.text == "template" && i + 1 < t.size() &&
        t[i + 1].kind == TokKind::kPunct && t[i + 1].text == "<") {
      int depth = 0;
      std::size_t j = i + 1;
      for (; j < t.size(); ++j) {
        if (t[j].kind == TokKind::kPunct && t[j].text == "<") ++depth;
        if (t[j].kind == TokKind::kPunct && t[j].text == ">" && --depth == 0) {
          break;
        }
      }
      i = j;
      continue;
    }
    if (tk.text == "namespace") {
      next_brace = Scope::kNamespace;
      next_brace_pending = true;
      continue;
    }
    const bool is_class = tk.text == "class" || tk.text == "struct";
    const bool is_enum = tk.text == "enum";
    if (is_class || is_enum) {
      std::size_t j = i + 1;
      if (is_enum && j < t.size() &&
          (t[j].text == "class" || t[j].text == "struct")) {
        ++j;
      }
      if (j >= t.size() || t[j].kind != TokKind::kIdentifier) {
        // Anonymous struct/enum: the next '{' is still a type body.
        next_brace = Scope::kOther;
        next_brace_pending = true;
        continue;
      }
      const std::string name = t[j].text;
      ++j;
      if (j < t.size() && t[j].kind == TokKind::kIdentifier &&
          t[j].text == "final") {
        ++j;
      }
      const bool fwd_decl =
          j < t.size() && t[j].kind == TokKind::kPunct && t[j].text == ";";
      next_brace = Scope::kOther;
      next_brace_pending = true;
      if (!fwd_decl && at_namespace_scope() && !name.empty() &&
          std::isupper(static_cast<unsigned char>(name[0])) != 0) {
        ctx->symbol_header.emplace(name, header_rel);
      }
      continue;
    }
    if (tk.text == "using" && i + 2 < t.size() &&
        t[i + 1].kind == TokKind::kIdentifier &&
        t[i + 2].kind == TokKind::kPunct && t[i + 2].text == "=" &&
        at_namespace_scope()) {
      const std::string name = t[i + 1].text;
      if (!name.empty() &&
          std::isupper(static_cast<unsigned char>(name[0])) != 0) {
        ctx->symbol_header.emplace(name, header_rel);
      }
      // Alias of a tracked container type? Feed the cross-file alias sets.
      std::size_t j = i + 3;
      if (j + 1 < t.size() && t[j].kind == TokKind::kIdentifier &&
          t[j].text == "std" && t[j + 1].kind == TokKind::kPunct &&
          t[j + 1].text == "::") {
        j += 2;
      }
      if (j < t.size() && t[j].kind == TokKind::kIdentifier) {
        if (t[j].text == "IndexedVector") {
          ctx->indexed_vector_aliases.insert(name);
        }
        if (t[j].text.rfind("unordered_", 0) == 0) {
          ctx->unordered_aliases.insert(name);
        }
      }
    }
  }
}

/// Suppressions: `ppdc-lint: allow(rule reason)` comments. A comment
/// covers findings on its own line(s) and on the line directly below it.
struct Suppression {
  std::string rule;
  int first_line = 0;
  int last_line = 0;  // inclusive; findings up to last_line+1 are covered
};

std::vector<Suppression> parse_suppressions(const LexedFile& lexed) {
  std::vector<Suppression> out;
  for (const Comment& c : lexed.comments) {
    std::size_t pos = c.text.find("ppdc-lint:");
    if (pos == std::string::npos) continue;
    while ((pos = c.text.find("allow(", pos)) != std::string::npos) {
      pos += 6;
      std::size_t end = pos;
      while (end < c.text.size() && c.text[end] != ' ' &&
             c.text[end] != ')') {
        ++end;
      }
      if (end > pos) {
        out.push_back({c.text.substr(pos, end - pos), c.line, c.end_line});
      }
      pos = end;
    }
  }
  return out;
}

bool is_suppressed(const Finding& f, const std::vector<Suppression>& sups) {
  for (const Suppression& s : sups) {
    if (s.rule != f.rule) continue;
    if (f.line >= s.first_line && f.line <= s.last_line + 1) return true;
  }
  return false;
}

std::string baseline_key(const Finding& f) {
  return f.path + ":" + std::to_string(f.line) + ":" + f.rule;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const RuleInfo* find_rule(const std::string& name) {
  for (const RuleInfo& r : rule_registry()) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

}  // namespace

ProjectContext build_context(const std::string& root) {
  ProjectContext ctx;
  std::vector<std::string> headers;
  collect_sources(root, "src", &headers);
  std::sort(headers.begin(), headers.end());
  for (const std::string& rel : headers) {
    const LexedFile lexed = lex(read_file(fs::path(root) / rel));
    std::set<std::string> incs;
    for (const Include& inc : lexed.includes) {
      if (!inc.angled) incs.insert(inc.path);
    }
    ctx.direct_includes.emplace(rel, std::move(incs));
    if (ends_with(rel, ".hpp")) {
      // Headers are spelled src-relative in include directives.
      extract_symbols(rel.substr(4), lexed, &ctx);
    }
  }
  return ctx;
}

LintResult run_lint(const LintOptions& options) {
  const fs::path root(options.root);
  std::vector<std::string> paths = options.paths;
  if (paths.empty()) {
    paths = {"src", "tests", "bench", "tools", "examples"};
  }
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    collect_sources(root, p, &files);
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  const ProjectContext ctx = build_context(options.root);
  const std::set<std::string> enabled(options.rules.begin(),
                                      options.rules.end());
  for (const std::string& name : enabled) {
    if (find_rule(name) == nullptr) {
      throw std::runtime_error("unknown rule: " + name);
    }
  }

  std::set<std::string> baseline;
  if (!options.baseline_path.empty()) {
    const fs::path bp = fs::path(options.baseline_path).is_absolute()
                            ? fs::path(options.baseline_path)
                            : root / options.baseline_path;
    std::ifstream in(bp);
    if (!in) {
      throw std::runtime_error("cannot read baseline " + slashed(bp));
    }
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty() || line[0] == '#') continue;
      baseline.insert(line);
    }
  }

  LintResult result;
  std::set<std::string> used_baseline;
  for (const std::string& rel : files) {
    FileUnit unit;
    unit.path = rel;
    unit.lex = lex(read_file(root / rel));
    const std::vector<Suppression> sups =
        options.apply_suppressions ? parse_suppressions(unit.lex)
                                   : std::vector<Suppression>{};
    for (Finding& f : run_rules(unit, ctx, enabled)) {
      if (is_suppressed(f, sups)) {
        result.suppressed.push_back(std::move(f));
        continue;
      }
      const std::string key = baseline_key(f);
      if (baseline.count(key) != 0) {
        used_baseline.insert(key);
        result.baselined.push_back(std::move(f));
        continue;
      }
      result.findings.push_back(std::move(f));
    }
  }
  for (const std::string& entry : baseline) {
    if (used_baseline.count(entry) == 0) {
      result.stale_baseline.push_back(entry);
    }
  }
  return result;
}

std::string format_text(const Finding& finding) {
  std::string out = finding.path + ":" + std::to_string(finding.line) + ":" +
                    std::to_string(finding.col) + ": " + finding.rule + ": " +
                    finding.message;
  if (const RuleInfo* info = find_rule(finding.rule)) {
    out += "\n    rationale: " + info->rationale;
  }
  return out;
}

std::string to_sarif(const std::vector<Finding>& findings) {
  std::ostringstream os;
  os << "{\n"
     << "  \"$schema\": "
        "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"ppdc_lint\",\n"
     << "          \"informationUri\": "
        "\"https://example.invalid/ppdc/tools/lint\",\n"
     << "          \"rules\": [\n";
  const auto& registry = rule_registry();
  for (std::size_t i = 0; i < registry.size(); ++i) {
    os << "            {\"id\": \"" << json_escape(registry[i].name)
       << "\", \"shortDescription\": {\"text\": \""
       << json_escape(registry[i].rationale) << "\"}}"
       << (i + 1 < registry.size() ? "," : "") << "\n";
  }
  os << "          ]\n"
     << "        }\n"
     << "      },\n"
     << "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << "        {\"ruleId\": \"" << json_escape(f.rule)
       << "\", \"level\": \"error\", \"message\": {\"text\": \""
       << json_escape(f.message)
       << "\"}, \"locations\": [{\"physicalLocation\": "
          "{\"artifactLocation\": {\"uri\": \""
       << json_escape(f.path) << "\"}, \"region\": {\"startLine\": " << f.line
       << ", \"startColumn\": " << f.col << "}}}]}"
       << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  os << "      ]\n"
     << "    }\n"
     << "  ]\n"
     << "}\n";
  return os.str();
}

std::string to_baseline(const std::vector<Finding>& findings) {
  std::vector<std::string> keys;
  keys.reserve(findings.size());
  for (const Finding& f : findings) keys.push_back(baseline_key(f));
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  std::string out =
      "# ppdc_lint baseline: grandfathered findings (path:line:rule).\n"
      "# Regenerate with: ppdc_lint --write-baseline <file>\n";
  for (const std::string& k : keys) {
    out += k;
    out += '\n';
  }
  return out;
}

}  // namespace ppdc::lint
