// Minimal C++ tokenizer for ppdc_lint (tools/lint/).
//
// This is not a compiler front end: it produces exactly the token stream
// the rule registry needs — identifiers, numbers, string/char literals,
// punctuation (with '::' and '->' fused), comments (kept out of the main
// stream but retained for suppression scanning), and `#include`
// directives recognised at line starts. Block comments, raw strings and
// digit separators are handled so rules never fire on commented-out or
// quoted text — the failure mode of the grep gates this tool replaces.
#pragma once

#include <string>
#include <vector>

namespace ppdc::lint {

enum class TokKind {
  kIdentifier,  // keywords included; rules match on spelling
  kNumber,
  kString,  // string literal, char literal, or raw string (quotes kept)
  kPunct,   // one punctuation glyph, or the fused "::" / "->"
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;  // 1-based
  int col = 0;   // 1-based
};

struct Comment {
  std::string text;  // without the // or /* */ markers
  int line = 0;      // first line of the comment
  int end_line = 0;  // last line (== line for // comments)
};

struct Include {
  std::string path;  // as spelled between the delimiters
  bool angled = false;
  int line = 0;
};

/// One lexed source file.
struct LexedFile {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<Include> includes;
};

/// Tokenizes `source`. Never throws on malformed input: an unterminated
/// literal or comment is closed at end of file, which is the lenient
/// behaviour a linter wants (the compiler proper will reject the file).
LexedFile lex(const std::string& source);

}  // namespace ppdc::lint
