// Rule registry and implementations for ppdc_lint (DESIGN.md §13).
//
// Every rule is a token-level scan over one lexed file plus the shared
// ProjectContext. Rules fire deterministically (registry order, then
// token order) and each carries a one-line rationale that is printed
// with the finding — a finding must explain the contract it protects.
#include <algorithm>
#include <cstddef>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "analyzer.hpp"

namespace ppdc::lint {

namespace {

using Tokens = std::vector<Token>;

bool id_is(const Token& tk, const char* s) {
  return tk.kind == TokKind::kIdentifier && tk.text == s;
}

bool punct_is(const Token& tk, const char* s) {
  return tk.kind == TokKind::kPunct && tk.text == s;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

/// Returns the index one past the '>' matching the '<' at `i`, or
/// tokens.size() when unbalanced (lenient: malformed files are the
/// compiler's problem).
std::size_t skip_template_args(const Tokens& t, std::size_t i) {
  int depth = 0;
  for (; i < t.size(); ++i) {
    if (punct_is(t[i], "<")) ++depth;
    if (punct_is(t[i], ">") && --depth == 0) return i + 1;
    // Parenthesised expressions inside template args (rare) would need
    // full expression parsing; none of the tracked types use them.
  }
  return t.size();
}

/// Names of variables (locals, members, parameters) declared — in this
/// file — with a type that instantiates one of `type_names` or spells
/// one of `alias_names`. Also fills `new_aliases` with `using A = ...`
/// aliases of those types found in this file.
std::set<std::string> collect_typed_vars(const Tokens& t,
                                         const std::set<std::string>& type_names,
                                         const std::set<std::string>& alias_names,
                                         std::set<std::string>* new_aliases) {
  std::set<std::string> vars;
  std::set<std::string> aliases = alias_names;
  // Pass 1: `using A = [std::]Type<...>` file-local aliases.
  for (std::size_t i = 0; i + 3 < t.size(); ++i) {
    if (!id_is(t[i], "using") || t[i + 1].kind != TokKind::kIdentifier ||
        !punct_is(t[i + 2], "=")) {
      continue;
    }
    std::size_t j = i + 3;
    if (j + 1 < t.size() && id_is(t[j], "std") && punct_is(t[j + 1], "::")) {
      j += 2;
    }
    if (j < t.size() && t[j].kind == TokKind::kIdentifier &&
        (type_names.count(t[j].text) != 0 || aliases.count(t[j].text) != 0)) {
      aliases.insert(t[i + 1].text);
      if (new_aliases != nullptr) new_aliases->insert(t[i + 1].text);
    }
  }
  // Pass 2: declarations `Type<...> [cv/ref/ptr] name` and `Alias name`.
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdentifier) continue;
    std::size_t j = 0;
    if (type_names.count(t[i].text) != 0) {
      if (i + 1 >= t.size() || !punct_is(t[i + 1], "<")) continue;
      j = skip_template_args(t, i + 1);
    } else if (aliases.count(t[i].text) != 0) {
      j = i + 1;
    } else {
      continue;
    }
    while (j < t.size() &&
           (punct_is(t[j], "&") || punct_is(t[j], "*") || id_is(t[j], "const"))) {
      ++j;
    }
    if (j < t.size() && t[j].kind == TokKind::kIdentifier &&
        t[j].text != "operator") {
      vars.insert(t[j].text);
    }
  }
  return vars;
}

// ---------------------------------------------------------------------------
// Determinism rules
// ---------------------------------------------------------------------------

constexpr const char* kUnorderedTypes[] = {"unordered_map", "unordered_set",
                                           "unordered_multimap",
                                           "unordered_multiset"};

bool in_deterministic_scope(const std::string& path) {
  return starts_with(path, "src/sim/") || starts_with(path, "src/core/") ||
         starts_with(path, "src/fault/");
}

/// unordered-iteration: range-for or iterator walks over hash containers
/// in the solver/sim/fault accumulation paths. Membership tests
/// (insert/find/count) are fine — iteration order is not.
void rule_unordered_iteration(const FileUnit& f, const ProjectContext& ctx,
                              std::vector<Finding>* out) {
  if (!in_deterministic_scope(f.path)) return;
  const Tokens& t = f.lex.tokens;
  std::set<std::string> types(std::begin(kUnorderedTypes),
                              std::end(kUnorderedTypes));
  const std::set<std::string> vars =
      collect_typed_vars(t, types, ctx.unordered_aliases, nullptr);
  if (vars.empty()) return;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    // Range-for whose range expression mentions an unordered variable.
    if (id_is(t[i], "for") && punct_is(t[i + 1], "(")) {
      int depth = 0;
      std::size_t colon = 0;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        if (punct_is(t[j], "(")) ++depth;
        if (punct_is(t[j], ")") && --depth == 0) break;
        if (depth == 1 && punct_is(t[j], ";")) break;  // classic for
        if (depth == 1 && punct_is(t[j], ":")) {
          colon = j;
          break;
        }
      }
      if (colon != 0) {
        int d = 1;
        for (std::size_t j = colon + 1; j < t.size() && d > 0; ++j) {
          if (punct_is(t[j], "(")) ++d;
          if (punct_is(t[j], ")")) --d;
          if (d >= 1 && t[j].kind == TokKind::kIdentifier &&
              vars.count(t[j].text) != 0) {
            out->push_back({f.path, t[i].line, t[i].col, "unordered-iteration",
                            "range-for over unordered container '" +
                                t[j].text + "'"});
            break;
          }
        }
      }
    }
    // Explicit iterator walks: var.begin() and friends.
    if (t[i].kind == TokKind::kIdentifier && vars.count(t[i].text) != 0 &&
        i + 3 < t.size() && punct_is(t[i + 1], ".") &&
        (id_is(t[i + 2], "begin") || id_is(t[i + 2], "cbegin") ||
         id_is(t[i + 2], "rbegin") || id_is(t[i + 2], "crbegin")) &&
        punct_is(t[i + 3], "(")) {
      out->push_back({f.path, t[i].line, t[i].col, "unordered-iteration",
                      "iterator walk over unordered container '" + t[i].text +
                          "'"});
    }
  }
}

/// nondet-source: libc entropy and wall-clock sources.
void rule_nondet_source(const FileUnit& f, const ProjectContext&,
                        std::vector<Finding>* out) {
  const Tokens& t = f.lex.tokens;
  static const std::set<std::string> bare = {"random_device"};
  static const std::set<std::string> call = {
      "rand",    "srand",        "rand_r",    "drand48", "lrand48",
      "mrand48", "random_shuffle", "time",    "clock",   "gettimeofday",
      "getrandom", "localtime",  "gmtime"};
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdentifier) continue;
    if (bare.count(t[i].text) != 0) {
      out->push_back({f.path, t[i].line, t[i].col, "nondet-source",
                      "'" + t[i].text + "' draws entropy from the host"});
      continue;
    }
    if (call.count(t[i].text) == 0) continue;
    if (i + 1 >= t.size() || !punct_is(t[i + 1], "(")) continue;
    // Member calls (x.time(...)) and declarations (`double time(...)`,
    // preceding type identifier) are not the libc function.
    if (i > 0 && (punct_is(t[i - 1], ".") || punct_is(t[i - 1], "->") ||
                  t[i - 1].kind == TokKind::kIdentifier)) {
      continue;
    }
    out->push_back({f.path, t[i].line, t[i].col, "nondet-source",
                    "call to '" + t[i].text +
                        "' is nondeterministic across runs"});
  }
}

/// steady-clock-only: the stage-4b grep ban, as a rule.
void rule_steady_clock_only(const FileUnit& f, const ProjectContext&,
                            std::vector<Finding>* out) {
  for (const Token& tk : f.lex.tokens) {
    if (id_is(tk, "system_clock")) {
      out->push_back({f.path, tk.line, tk.col, "steady-clock-only",
                      "std::chrono::system_clock is not monotonic"});
    }
  }
}

/// pointer-hash-order: pointer identity leaking into hashes or keys.
void rule_pointer_hash_order(const FileUnit& f, const ProjectContext&,
                             std::vector<Finding>* out) {
  if (!starts_with(f.path, "src/")) return;
  const Tokens& t = f.lex.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (id_is(t[i], "hash") && punct_is(t[i + 1], "<")) {
      const std::size_t end = skip_template_args(t, i + 1);
      for (std::size_t j = i + 2; j + 1 < end; ++j) {
        if (punct_is(t[j], "*")) {
          out->push_back({f.path, t[i].line, t[i].col, "pointer-hash-order",
                          "std::hash over a pointer type keys on addresses"});
          break;
        }
      }
    }
    if (id_is(t[i], "reinterpret_cast") && punct_is(t[i + 1], "<")) {
      const std::size_t end = skip_template_args(t, i + 1);
      for (std::size_t j = i + 2; j + 1 < end; ++j) {
        if (id_is(t[j], "uintptr_t") || id_is(t[j], "intptr_t")) {
          out->push_back({f.path, t[i].line, t[i].col, "pointer-hash-order",
                          "pointer identity cast into an integer key"});
          break;
        }
      }
    }
  }
}

/// policy-prototype-const: the stage-4 grep ban, as a rule.
void rule_policy_prototype_const(const FileUnit& f, const ProjectContext&,
                                 std::vector<Finding>* out) {
  const Tokens& t = f.lex.tokens;
  for (std::size_t i = 0; i + 3 < t.size(); ++i) {
    if (id_is(t[i], "vector") && punct_is(t[i + 1], "<") &&
        id_is(t[i + 2], "MigrationPolicy") && punct_is(t[i + 3], "*")) {
      out->push_back({f.path, t[i].line, t[i].col, "policy-prototype-const",
                      "mutable std::vector<MigrationPolicy*> policy list"});
    }
  }
}

// ---------------------------------------------------------------------------
// Domain rules
// ---------------------------------------------------------------------------

/// raw-index: untyped subscripts that bypass the StrongId layer.
void rule_raw_index(const FileUnit& f, const ProjectContext& ctx,
                    std::vector<Finding>* out) {
  if (!starts_with(f.path, "src/")) return;
  const Tokens& t = f.lex.tokens;
  const std::set<std::string> types = {"IndexedVector"};
  const std::set<std::string> vars =
      collect_typed_vars(t, types, ctx.indexed_vector_aliases, nullptr);
  if (vars.empty()) return;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdentifier || vars.count(t[i].text) == 0) {
      continue;
    }
    // var.raw()[...]: unwrapping the typed container just to subscript it.
    if (i + 5 < t.size() && punct_is(t[i + 1], ".") && id_is(t[i + 2], "raw") &&
        punct_is(t[i + 3], "(") && punct_is(t[i + 4], ")") &&
        punct_is(t[i + 5], "[")) {
      out->push_back({f.path, t[i].line, t[i].col, "raw-index",
                      "'" + t[i].text +
                          ".raw()[...]' bypasses the typed subscript"});
      continue;
    }
    // var[<integer literal>]: a bare number is never a StrongId.
    if (i + 2 < t.size() && punct_is(t[i + 1], "[") &&
        t[i + 2].kind == TokKind::kNumber) {
      out->push_back({f.path, t[i].line, t[i].col, "raw-index",
                      "untyped literal subscript into IndexedVector '" +
                          t[i].text + "'"});
    }
  }
}

/// no-new-delete: all ownership flows through containers / smart ptrs.
void rule_no_new_delete(const FileUnit& f, const ProjectContext&,
                        std::vector<Finding>* out) {
  if (!starts_with(f.path, "src/")) return;
  const Tokens& t = f.lex.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const bool is_new = id_is(t[i], "new");
    const bool is_delete = id_is(t[i], "delete");
    if (!is_new && !is_delete) continue;
    if (i > 0 && id_is(t[i - 1], "operator")) continue;  // operator new/delete
    if (is_delete && i > 0 && punct_is(t[i - 1], "=")) continue;  // = delete
    out->push_back({f.path, t[i].line, t[i].col, "no-new-delete",
                    std::string("raw '") + (is_new ? "new" : "delete") +
                        "' expression"});
  }
}

/// no-float: cost arithmetic is double-only.
void rule_no_float(const FileUnit& f, const ProjectContext&,
                   std::vector<Finding>* out) {
  if (!starts_with(f.path, "src/")) return;
  for (const Token& tk : f.lex.tokens) {
    if (id_is(tk, "float")) {
      out->push_back({f.path, tk.line, tk.col, "no-float",
                      "'float' narrows the double-only cost arithmetic"});
    }
  }
}

// ---------------------------------------------------------------------------
// Hygiene rules
// ---------------------------------------------------------------------------

/// include-spell: spelling a project type requires a direct include of
/// its declaring header (own-header includes count for a .cpp).
void rule_include_spell(const FileUnit& f, const ProjectContext& ctx,
                        std::vector<Finding>* out) {
  if (!starts_with(f.path, "src/")) return;
  const std::string self = f.path.substr(4);  // src-relative spelling
  std::set<std::string> direct;
  if (const auto it = ctx.direct_includes.find(f.path);
      it != ctx.direct_includes.end()) {
    direct = it->second;
  }
  if (self.size() > 4 && self.compare(self.size() - 4, 4, ".cpp") == 0) {
    const std::string own = self.substr(0, self.size() - 4) + ".hpp";
    if (direct.count(own) != 0) {
      if (const auto it = ctx.direct_includes.find("src/" + own);
          it != ctx.direct_includes.end()) {
        direct.insert(it->second.begin(), it->second.end());
      }
    }
  }
  const Tokens& t = f.lex.tokens;
  std::set<std::string> reported;  // one finding per missing header
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdentifier) continue;
    const auto it = ctx.symbol_header.find(t[i].text);
    if (it == ctx.symbol_header.end()) continue;
    const std::string& header = it->second;
    if (header == self || direct.count(header) != 0 ||
        reported.count(header) != 0) {
      continue;
    }
    // Declaration mentions (class X; / friend class X / enum class X)
    // are forward declarations, not uses of the definition.
    if (i > 0 && (id_is(t[i - 1], "class") || id_is(t[i - 1], "struct") ||
                  id_is(t[i - 1], "enum"))) {
      continue;
    }
    reported.insert(header);
    out->push_back({f.path, t[i].line, t[i].col, "include-spell",
                    "spells '" + t[i].text + "' but does not include \"" +
                        header + "\" directly"});
  }
}

/// include-layering: the committed directory DAG. A file under
/// src/<dir>/ may only include project headers from the listed
/// directories; everything else is a new architecture edge that needs a
/// deliberate decision (and a table update), not an accidental include.
/// Note the core -> workload edge deliberately carries the sharded cost
/// model's dependency on workload/streaming.hpp (FlowChurn), and sim ->
/// workload carries the streaming epoch loop — neither is a new edge.
void rule_include_layering(const FileUnit& f, const ProjectContext&,
                           std::vector<Finding>* out) {
  static const std::map<std::string, std::set<std::string>> kAllowed = {
      {"util", {"util"}},
      {"graph", {"graph", "util"}},
      {"flow", {"flow", "util"}},
      {"topology", {"topology", "graph", "util"}},
      {"workload", {"workload", "topology", "graph", "util"}},
      {"core", {"core", "workload", "topology", "graph", "util"}},
      {"net", {"net", "core", "workload", "topology", "graph", "util"}},
      {"baselines",
       {"baselines", "core", "flow", "workload", "topology", "graph", "util"}},
      {"fault", {"fault", "topology", "graph", "util"}},
      {"io", {"io", "core", "workload", "topology", "graph", "util"}},
      {"sim",
       {"sim", "baselines", "core", "fault", "flow", "io", "workload",
        "topology", "graph", "util"}},
  };
  // Private libstdc++ headers are banned everywhere we scan.
  for (const Include& inc : f.lex.includes) {
    if (inc.angled && starts_with(inc.path, "bits/")) {
      out->push_back({f.path, inc.line, 1, "include-layering",
                      "private <bits/...> header"});
    }
  }
  if (!starts_with(f.path, "src/")) return;
  const std::string rest = f.path.substr(4);
  const std::size_t slash = rest.find('/');
  if (slash == std::string::npos) return;
  const std::string dir = rest.substr(0, slash);
  const auto allowed = kAllowed.find(dir);
  if (allowed == kAllowed.end()) return;
  for (const Include& inc : f.lex.includes) {
    if (inc.angled) continue;
    const std::size_t s = inc.path.find('/');
    if (s == std::string::npos) continue;
    const std::string target = inc.path.substr(0, s);
    if (kAllowed.count(target) == 0) continue;  // not a project dir
    if (allowed->second.count(target) == 0) {
      out->push_back({f.path, inc.line, 1, "include-layering",
                      "src/" + dir + " may not include \"" + inc.path +
                          "\" (layer '" + target + "' is above it)"});
    }
  }
}

struct Rule {
  RuleInfo info;
  std::function<void(const FileUnit&, const ProjectContext&,
                     std::vector<Finding>*)>
      fn;
};

const std::vector<Rule>& rules() {
  static const std::vector<Rule> kRules = {
      {{"unordered-iteration",
        "hash-container iteration order varies across libraries and runs; "
        "accumulating in it breaks bit-identical results (DESIGN.md §9)"},
       rule_unordered_iteration},
      {{"nondet-source",
        "host entropy / wall-clock reads make runs non-reproducible; use "
        "util/rng.hpp streams and steady_clock"},
       rule_nondet_source},
      {{"steady-clock-only",
        "deadlines must use std::chrono::steady_clock — system_clock jumps "
        "under NTP slews and manual clock changes"},
       rule_steady_clock_only},
      {{"pointer-hash-order",
        "allocation addresses differ run to run; hashing or keying on them "
        "makes iteration and tie-breaks nondeterministic"},
       rule_pointer_hash_order},
      {{"policy-prototype-const",
        "pass policies as std::vector<const MigrationPolicy*> prototypes — "
        "each SimJob clones its own instance (sim/policy.hpp)"},
       rule_policy_prototype_const},
      {{"raw-index",
        "IndexedVector subscripts carry the index domain in the type; "
        "untyped access reintroduces cross-domain mixups (DESIGN.md §8)"},
       rule_raw_index},
      {{"no-new-delete",
        "raw new/delete bypasses the containers-and-values ownership model; "
        "leaks surface only under ASan"},
       rule_no_new_delete},
      {{"no-float",
        "cost arithmetic is double-only: float intermediates change "
        "tie-breaks and break bit-exact equivalence tests"},
       rule_no_float},
      {{"include-spell",
        "types must be included from their declaring header, not picked up "
        "transitively — refactors of an unrelated header break the build"},
       rule_include_spell},
      {{"include-layering",
        "the src directory DAG (util < graph < ... < sim) keeps lower "
        "layers reusable; new upward edges need a deliberate decision"},
       rule_include_layering},
  };
  return kRules;
}

}  // namespace

const std::vector<RuleInfo>& rule_registry() {
  static const std::vector<RuleInfo> kInfos = [] {
    std::vector<RuleInfo> v;
    for (const Rule& r : rules()) v.push_back(r.info);
    return v;
  }();
  return kInfos;
}

std::vector<Finding> run_rules(const FileUnit& file, const ProjectContext& ctx,
                               const std::set<std::string>& enabled) {
  std::vector<Finding> out;
  for (const Rule& r : rules()) {
    if (!enabled.empty() && enabled.count(r.info.name) == 0) continue;
    r.fn(file, ctx, &out);
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    if (a.col != b.col) return a.col < b.col;
    return a.rule < b.rule;
  });
  return out;
}

}  // namespace ppdc::lint
