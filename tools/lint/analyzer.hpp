// ppdc_lint — the repo's dependency-free determinism & domain-rule
// static analyzer (DESIGN.md §13).
//
// The tool lexes every project source file (tools/lint/lex.hpp) and runs
// a registry of token-level rules enforcing contracts the compiler
// cannot: determinism (no unordered iteration in solver/sim accumulation
// paths, no wall-clock or libc entropy sources), index-domain hygiene
// (no untyped subscripts through the StrongId layer), and include
// hygiene (spell what you use, respect the directory layering DAG).
// Findings can be silenced inline with
//     // ppdc-lint: allow(rule-name reason)
// on the offending line or the line above, or grandfathered in a
// committed baseline file of `path:line:rule` entries.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lex.hpp"

namespace ppdc::lint {

struct Finding {
  std::string path;  // root-relative, '/' separators
  int line = 0;
  int col = 0;
  std::string rule;
  std::string message;
};

struct RuleInfo {
  std::string name;
  std::string rationale;  // one line, printed with every finding
};

/// One lexed source file, path normalised relative to the lint root.
struct FileUnit {
  std::string path;
  LexedFile lex;
};

/// Cross-file state shared by the rules.
struct ProjectContext {
  /// include-spell: project type symbol -> src-relative declaring header
  /// (e.g. "CostModel" -> "core/cost_model.hpp").
  std::map<std::string, std::string> symbol_header;
  /// Direct project includes per root-relative file path (own-header
  /// credit: a .cpp inherits its own .hpp's direct includes).
  std::map<std::string, std::set<std::string>> direct_includes;
  /// Namespace-scope aliases of IndexedVector found in src headers
  /// (e.g. "ExtraMatrix"), so consumers of the alias are covered too.
  std::set<std::string> indexed_vector_aliases;
  /// Same for unordered containers (none expected; defensive).
  std::set<std::string> unordered_aliases;
};

struct LintOptions {
  std::string root = ".";
  /// Files or directories, relative to root. Empty = the default scan
  /// set: src tests bench tools examples.
  std::vector<std::string> paths;
  /// Rule names to run. Empty = every registered rule.
  std::vector<std::string> rules;
  /// Baseline file (root-relative or absolute); "" = no baseline.
  std::string baseline_path;
  bool apply_suppressions = true;
};

struct LintResult {
  std::vector<Finding> findings;   // active: fail the gate
  std::vector<Finding> suppressed; // silenced by ppdc-lint: allow(...)
  std::vector<Finding> baselined;  // grandfathered by the baseline file
  /// Baseline entries that matched no finding (candidates for removal).
  std::vector<std::string> stale_baseline;
};

/// Every registered rule, in deterministic registry order.
const std::vector<RuleInfo>& rule_registry();

/// Runs the selected rules over one lexed file. Exposed for the fixture
/// self-test; run_lint is the end-to-end entry point.
std::vector<Finding> run_rules(const FileUnit& file, const ProjectContext& ctx,
                               const std::set<std::string>& enabled);

/// Builds the cross-file context (symbol map) from `root`/src headers.
ProjectContext build_context(const std::string& root);

LintResult run_lint(const LintOptions& options);

/// Renders findings as a SARIF 2.1.0 log (one run, one ppdc_lint driver).
std::string to_sarif(const std::vector<Finding>& findings);

/// `path:line:col: rule: message` + the rule's one-line rationale.
std::string format_text(const Finding& finding);

/// Serialises findings in baseline format (`path:line:rule`, sorted).
std::string to_baseline(const std::vector<Finding>& findings);

}  // namespace ppdc::lint
