#include "lex.hpp"

#include <cctype>
#include <cstddef>

namespace ppdc::lint {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Cursor over the source with line/column tracking.
class Cursor {
 public:
  explicit Cursor(const std::string& s) : s_(s) {}

  bool eof() const { return i_ >= s_.size(); }
  char peek(std::size_t ahead = 0) const {
    return i_ + ahead < s_.size() ? s_[i_ + ahead] : '\0';
  }
  int line() const { return line_; }
  int col() const { return col_; }

  char advance() {
    const char c = s_[i_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
      at_line_start_ = true;
    } else {
      ++col_;
      if (!std::isspace(static_cast<unsigned char>(c))) {
        at_line_start_ = false;
      }
    }
    return c;
  }

  /// True while only whitespace has been consumed on the current line —
  /// the position where a '#' starts a preprocessor directive.
  bool at_line_start() const { return at_line_start_; }

 private:
  const std::string& s_;
  std::size_t i_ = 0;
  int line_ = 1;
  int col_ = 1;
  bool at_line_start_ = true;
};

/// Consumes a quoted literal (after the opening quote) honouring escapes.
void skip_quoted(Cursor& c, char quote) {
  while (!c.eof()) {
    const char ch = c.advance();
    if (ch == '\\' && !c.eof()) {
      c.advance();
      continue;
    }
    if (ch == quote || ch == '\n') return;  // newline: unterminated literal
  }
}

/// Consumes a raw string R"delim( ... )delim" after the opening R".
void skip_raw_string(Cursor& c) {
  std::string delim;
  while (!c.eof() && c.peek() != '(') {
    delim += c.advance();
  }
  if (!c.eof()) c.advance();  // '('
  const std::string closer = ")" + delim + "\"";
  std::string tail;
  while (!c.eof()) {
    tail += c.advance();
    if (tail.size() > closer.size()) tail.erase(0, tail.size() - closer.size());
    if (tail == closer) return;
  }
}

}  // namespace

LexedFile lex(const std::string& source) {
  LexedFile out;
  Cursor c(source);
  while (!c.eof()) {
    const char ch = c.peek();
    const int line = c.line();
    const int col = c.col();

    // Whitespace.
    if (std::isspace(static_cast<unsigned char>(ch))) {
      c.advance();
      continue;
    }

    // Comments.
    if (ch == '/' && c.peek(1) == '/') {
      c.advance();
      c.advance();
      std::string text;
      while (!c.eof() && c.peek() != '\n') text += c.advance();
      out.comments.push_back({text, line, line});
      continue;
    }
    if (ch == '/' && c.peek(1) == '*') {
      c.advance();
      c.advance();
      std::string text;
      while (!c.eof() && !(c.peek() == '*' && c.peek(1) == '/')) {
        text += c.advance();
      }
      const int end_line = c.line();
      if (!c.eof()) {
        c.advance();
        c.advance();
      }
      out.comments.push_back({text, line, end_line});
      continue;
    }

    // Preprocessor directive at start of line: recognise #include, skip
    // the rest of the directive line (honouring \-continuations) so macro
    // bodies don't produce phantom identifier tokens.
    if (ch == '#' && c.at_line_start()) {
      c.advance();  // '#'
      while (!c.eof() && (c.peek() == ' ' || c.peek() == '\t')) c.advance();
      std::string word;
      while (!c.eof() && is_ident_char(c.peek())) word += c.advance();
      if (word == "include") {
        while (!c.eof() && (c.peek() == ' ' || c.peek() == '\t')) c.advance();
        const char open = c.peek();
        if (open == '"' || open == '<') {
          c.advance();
          const char close = open == '"' ? '"' : '>';
          std::string path;
          while (!c.eof() && c.peek() != close && c.peek() != '\n') {
            path += c.advance();
          }
          if (!c.eof() && c.peek() == close) c.advance();
          out.includes.push_back({path, open == '<', line});
        }
      }
      // Consume to end of directive (with line continuations). #include
      // lines have no continuations in practice; harmless if they do.
      while (!c.eof()) {
        if (c.peek() == '\\' && c.peek(1) == '\n') {
          c.advance();
          c.advance();
          continue;
        }
        if (c.peek() == '\n') break;
        if (c.peek() == '/' && c.peek(1) == '/') break;  // trailing comment
        if (c.peek() == '/' && c.peek(1) == '*') break;
        c.advance();
      }
      continue;
    }

    // Identifiers (and keywords — rules match on spelling). A leading
    // R/L/u/U/u8 immediately followed by a quote is a literal prefix.
    if (is_ident_start(ch)) {
      std::string text;
      while (!c.eof() && is_ident_char(c.peek())) text += c.advance();
      if ((text == "R" || text == "LR" || text == "uR" || text == "UR" ||
           text == "u8R") &&
          c.peek() == '"') {
        c.advance();  // '"'
        skip_raw_string(c);
        out.tokens.push_back({TokKind::kString, "R\"...\"", line, col});
        continue;
      }
      if ((text == "L" || text == "u" || text == "U" || text == "u8") &&
          (c.peek() == '"' || c.peek() == '\'')) {
        const char q = c.advance();
        skip_quoted(c, q);
        out.tokens.push_back({TokKind::kString, "...", line, col});
        continue;
      }
      out.tokens.push_back({TokKind::kIdentifier, std::move(text), line, col});
      continue;
    }

    // Numbers (incl. hex, floats, digit separators; pp-number is a
    // superset but this covers real code).
    if (std::isdigit(static_cast<unsigned char>(ch)) ||
        (ch == '.' && std::isdigit(static_cast<unsigned char>(c.peek(1))))) {
      std::string text;
      while (!c.eof()) {
        const char n = c.peek();
        if (is_ident_char(n) || n == '.' || n == '\'') {
          text += c.advance();
          // Exponent sign: 1e-9, 0x1p+3.
          if ((n == 'e' || n == 'E' || n == 'p' || n == 'P') &&
              (c.peek() == '+' || c.peek() == '-') && text.size() > 1) {
            text += c.advance();
          }
          continue;
        }
        break;
      }
      out.tokens.push_back({TokKind::kNumber, std::move(text), line, col});
      continue;
    }

    // String / char literals.
    if (ch == '"' || ch == '\'') {
      const char q = c.advance();
      skip_quoted(c, q);
      out.tokens.push_back({TokKind::kString, "...", line, col});
      continue;
    }

    // Punctuation; fuse '::' and '->' (the two digraphs rules care about).
    c.advance();
    if (ch == ':' && c.peek() == ':') {
      c.advance();
      out.tokens.push_back({TokKind::kPunct, "::", line, col});
      continue;
    }
    if (ch == '-' && c.peek() == '>') {
      c.advance();
      out.tokens.push_back({TokKind::kPunct, "->", line, col});
      continue;
    }
    out.tokens.push_back({TokKind::kPunct, std::string(1, ch), line, col});
  }
  return out;
}

}  // namespace ppdc::lint
