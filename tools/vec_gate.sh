#!/usr/bin/env bash
# Vectorization gate over the PR-6 flat kernels (ROADMAP follow-up):
# every loop tagged `// ppdc-vec: <name>` in the files below must be
# reported as "loop vectorized" by the compiler at -O3. The tags sit on
# the `for` line, which is exactly where GCC's -fopt-info-vec attributes
# its records, so the match is by (file, line).
#
# The gate is compile-only — nothing is executed — so it pins a fixed
# ISA (-march=x86-64-v3: AVX2+FMA, the gathers need it) regardless of
# the build machine. A kernel refactor that silently drops back to
# scalar code fails here instead of surfacing as a bench regression
# three PRs later.
#
# Exit: 0 all pinned loops vectorize, 1 regression (or tags missing),
# 77 skipped (non-GNU compiler or non-x86 target, same SKIPPED
# degradation as the other optional check.sh stages).
set -u

cd "$(dirname "$0")/.." || exit 1

CXX=${CXX:-g++}
FILES="src/core/stroll_dp.cpp src/core/cost_model.cpp"
FLAGS="-std=c++20 -O3 -march=x86-64-v3 -I. -Isrc"

if ! command -v "$CXX" >/dev/null 2>&1; then
  echo "vec_gate: SKIPPED ($CXX not found)"
  exit 77
fi
if ! "$CXX" --version 2>/dev/null | head -1 | grep -qiE 'g\+\+|\(GCC\)|gcc'; then
  echo "vec_gate: SKIPPED ($CXX is not GCC; -fopt-info-vec unavailable)"
  exit 77
fi
# Non-x86 hosts cannot target x86-64-v3 even for a compile-only check.
probe=$(mktemp --suffix=.cpp)
trap 'rm -f "$probe"' EXIT
echo 'int main(){return 0;}' > "$probe"
if ! "$CXX" -march=x86-64-v3 -fsyntax-only "$probe" 2>/dev/null; then
  echo "vec_gate: SKIPPED (target does not accept -march=x86-64-v3)"
  exit 77
fi

failures=0
checked=0
for f in $FILES; do
  pins=$(grep -n 'ppdc-vec:' "$f" |
         sed -E 's/^([0-9]+):.*ppdc-vec: *([A-Za-z0-9-]+).*/\1 \2/')
  if [ -z "$pins" ]; then
    echo "vec_gate: FAIL: no ppdc-vec pins found in $f (tags removed?)" >&2
    failures=$((failures + 1))
    continue
  fi
  report=$(mktemp)
  if ! "$CXX" $FLAGS -c "$f" -o /dev/null \
       -fopt-info-vec-optimized="$report" 2>/dev/null; then
    echo "vec_gate: FAIL: $f does not compile with $FLAGS" >&2
    failures=$((failures + 1))
    rm -f "$report"
    continue
  fi
  while read -r line name; do
    checked=$((checked + 1))
    if grep -q "^$f:$line:[0-9]*: optimized: loop vectorized" "$report"; then
      echo "vec_gate: OK   $name ($f:$line)"
    else
      echo "vec_gate: FAIL $name ($f:$line) no longer vectorizes" >&2
      failures=$((failures + 1))
    fi
  done <<EOF
$pins
EOF
  rm -f "$report"
done

if [ "$failures" -ne 0 ]; then
  echo "vec_gate: $failures pinned loop(s) regressed" >&2
  exit 1
fi
echo "vec_gate: all $checked pinned loop(s) vectorize"
exit 0
