#!/usr/bin/env bash
# Perf-trajectory regression gate (EXPERIMENTS.md "BENCH artifacts").
#
# Runs the pinned micro-kernel scenarios in smoke mode from the Release
# bench build and compares the fresh BENCH_*.json artifacts against the
# committed baselines in bench/baselines/ with tools/bench_compare.
#
# Degrades to SKIPPED (exit 77, CTest's skip code) when any ingredient is
# missing — the bench-preset binary, the comparator, or committed
# baselines — so the gate never fails a box that simply has not built the
# bench preset. It fails loudly (exit 1) on a >tolerance regression, an
# output-checksum drift, or incomparable build metadata (bench_compare
# exit 3): a mismatched baseline must be refreshed, never ignored.
#
# Usage: tools/bench_gate.sh [--bench-dir DIR] [--compare BIN]
#   --bench-dir DIR  bench-preset build dir (default: build-bench)
#   --compare BIN    bench_compare binary (default: first of
#                    build-bench/tools/bench_compare, build/tools/bench_compare)
set -u

cd "$(dirname "$0")/.." || exit 2

BENCH_DIR=build-bench
COMPARE=
while [ $# -gt 0 ]; do
  case "$1" in
    --bench-dir) BENCH_DIR=$2; shift 2 ;;
    --compare)   COMPARE=$2;   shift 2 ;;
    *) echo "unknown option: $1" >&2; exit 2 ;;
  esac
done

MICRO=$BENCH_DIR/bench/micro_kernels
BASELINES=bench/baselines
if [ -z "$COMPARE" ]; then
  for c in "$BENCH_DIR/tools/bench_compare" build/tools/bench_compare; do
    [ -x "$c" ] && COMPARE=$c && break
  done
fi

skip() { echo "bench_gate: SKIPPED ($*)"; exit 77; }

[ -x "$MICRO" ] || skip "no $MICRO — cmake --preset bench && cmake --build --preset bench"
[ -n "$COMPARE" ] && [ -x "$COMPARE" ] || skip "no bench_compare binary"
ls "$BASELINES"/BENCH_*.json >/dev/null 2>&1 || skip "no committed baselines in $BASELINES"

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "bench_gate: emitting smoke artifacts from $MICRO"
if ! "$MICRO" --bench_json "$tmp" --smoke; then
  echo "bench_gate: FAIL — pinned scenario emission failed" >&2
  exit 1
fi

"$COMPARE" "$BASELINES" "$tmp"
rc=$?
case "$rc" in
  0) echo "bench_gate: OK" ;;
  3) echo "bench_gate: FAIL — artifacts incomparable with committed" \
          "baselines (build metadata mismatch); refresh bench/baselines" \
          "from the bench preset" >&2 ;;
  *) echo "bench_gate: FAIL — see bench_compare output above" >&2 ;;
esac
exit "$rc"
