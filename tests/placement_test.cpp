#include "core/placement_dp.hpp"

#include <gtest/gtest.h>

#include "baselines/greedy_liu.hpp"
#include "baselines/steering.hpp"
#include "core/chain_search.hpp"
#include "test_support.hpp"
#include "topology/fat_tree.hpp"
#include "topology/linear.hpp"
#include "topology/misc.hpp"
#include "workload/vm_placement.hpp"

namespace ppdc {
namespace {

std::vector<VmFlow> random_flows(const Topology& topo, int l,
                                 std::uint64_t seed) {
  VmPlacementConfig cfg;
  cfg.num_pairs = l;
  Rng rng(seed);
  return generate_vm_flows(topo, cfg, rng);
}

TEST(PlacementDp, Fig3InitialPlacement) {
  const Topology topo = build_linear(5);
  const AllPairs apsp(topo.graph);
  const NodeId h1 = topo.graph.hosts()[0];
  const NodeId h2 = topo.graph.hosts()[1];
  const std::vector<VmFlow> flows{{h1, h1, 100.0}, {h2, h2, 1.0}};
  CostModel cm(apsp, flows);
  const PlacementResult r = solve_top_dp(cm, 2);
  EXPECT_DOUBLE_EQ(r.comm_cost, 410.0);
}

TEST(PlacementDp, SingleVnfEqualsExhaustive) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 10, 41);
  CostModel cm(apsp, flows);
  const PlacementResult dp = solve_top_dp(cm, 1);
  const ChainSearchResult ex = solve_top_exhaustive(cm, 1);
  EXPECT_NEAR(dp.comm_cost, ex.objective, 1e-9);
}

TEST(PlacementDp, TwoVnfsEqualExhaustive) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 10, 43);
  CostModel cm(apsp, flows);
  const PlacementResult dp = solve_top_dp(cm, 2);
  const ChainSearchResult ex = solve_top_exhaustive(cm, 2);
  EXPECT_NEAR(dp.comm_cost, ex.objective, 1e-9);
}

class PlacementDpVsOptimal
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(PlacementDpVsOptimal, WithinTenPercentOfOptimal) {
  // §VI: "DP performs very close to Optimal" — Fig. 7 reports ~8% gap,
  // Fig. 10 reports 6-12%. Enforce a 15% ceiling across seeds.
  const auto [n, seed] = GetParam();
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 8, seed);
  CostModel cm(apsp, flows);
  const PlacementResult dp = solve_top_dp(cm, n);
  const ChainSearchResult opt = solve_top_exhaustive(cm, n);
  ASSERT_TRUE(opt.proven_optimal);
  EXPECT_GE(dp.comm_cost + 1e-9, opt.objective);
  EXPECT_LE(dp.comm_cost, 1.15 * opt.objective + 1e-9)
      << "n=" << n << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlacementDpVsOptimal,
    ::testing::Combine(::testing::Values(3, 4, 5, 6),
                       ::testing::Values<std::uint64_t>(1, 2, 3, 4, 5)));

TEST(PlacementDp, ValidPlacementAcrossSfcLengths) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 12, 51);
  CostModel cm(apsp, flows);
  for (int n = 1; n <= 13; ++n) {
    const PlacementResult r = solve_top_dp(cm, n);
    EXPECT_NO_THROW(validate_placement(topo.graph, r.placement));
    EXPECT_EQ(r.placement.size(), static_cast<std::size_t>(n));
    EXPECT_NEAR(cm.communication_cost(r.placement), r.comm_cost, 1e-9);
  }
}

TEST(PlacementDp, CandidateLimitKeepsQualityOnFatTree) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 10, 61);
  CostModel cm(apsp, flows);
  const PlacementResult full = solve_top_dp(cm, 4);
  TopDpOptions limited;
  limited.candidate_limit = 8;
  const PlacementResult pruned = solve_top_dp(cm, 4, limited);
  EXPECT_GE(pruned.comm_cost + 1e-9, full.comm_cost);
  EXPECT_LE(pruned.comm_cost, 1.3 * full.comm_cost + 1e-9);
}

TEST(PlacementDp, CandidateLimitAppliesToLengthTwoChains) {
  // Regression: the n == 2 branch used to ignore candidate_limit and scan
  // all O(|V_s|²) ordered pairs.
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 10, 61);
  CostModel cm(apsp, flows);
  const PlacementResult full = solve_top_dp(cm, 2);
  TopDpOptions limited;
  limited.candidate_limit = 6;
  const PlacementResult pruned = solve_top_dp(cm, 2, limited);
  EXPECT_NO_THROW(validate_placement(topo.graph, pruned.placement));
  EXPECT_EQ(pruned.placement.size(), 2u);
  EXPECT_GE(pruned.comm_cost + 1e-9, full.comm_cost);
  EXPECT_LE(pruned.comm_cost, 1.3 * full.comm_cost + 1e-9);
}

TEST(PlacementDp, DegenerateLengthTwoPruningFallsBackUnpruned) {
  // All traffic under one rack switch: limit 1 selects that switch for
  // both roles, so the pruned scan is infeasible and must fall back to the
  // full scan (returning the true optimum).
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const std::vector<VmFlow> flows{{topo.racks[RackIdx{0}][0], topo.racks[RackIdx{0}][1], 9.0}};
  CostModel cm(apsp, flows);
  const PlacementResult full = solve_top_dp(cm, 2);
  TopDpOptions limited;
  limited.candidate_limit = 1;
  const PlacementResult pruned = solve_top_dp(cm, 2, limited);
  EXPECT_DOUBLE_EQ(pruned.comm_cost, full.comm_cost);
}

TEST(PlacementDp, RejectsBadInput) {
  const Topology topo = build_linear(3);
  const AllPairs apsp(topo.graph);
  const NodeId h1 = topo.graph.hosts()[0];
  const std::vector<VmFlow> flows{{h1, h1, 1.0}};
  CostModel cm(apsp, flows);
  EXPECT_THROW(solve_top_dp(cm, 0), PpdcError);
  EXPECT_THROW(solve_top_dp(cm, 4), PpdcError);
}

TEST(Baselines, SteeringProducesValidPlacements) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 10, 71);
  CostModel cm(apsp, flows);
  for (int n = 1; n <= 10; ++n) {
    const PlacementResult r = solve_top_steering(cm, n);
    EXPECT_NO_THROW(validate_placement(topo.graph, r.placement));
    EXPECT_NEAR(cm.communication_cost(r.placement), r.comm_cost, 1e-9);
  }
}

TEST(Baselines, GreedyLiuProducesValidPlacements) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 10, 73);
  CostModel cm(apsp, flows);
  for (int n = 1; n <= 10; ++n) {
    const PlacementResult r = solve_top_greedy_liu(cm, n);
    EXPECT_NO_THROW(validate_placement(topo.graph, r.placement));
    EXPECT_NEAR(cm.communication_cost(r.placement), r.comm_cost, 1e-9);
  }
}

TEST(Baselines, DpBeatsOrTiesBaselinesTypically) {
  // Headline shape of Figs. 9/10: DP placement costs less than Steering
  // and Greedy. Averaged over seeds so a single lucky greedy run cannot
  // flip the comparison.
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  double dp_total = 0.0, steering_total = 0.0, greedy_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto flows = random_flows(topo, 10, seed);
    CostModel cm(apsp, flows);
    dp_total += solve_top_dp(cm, 5).comm_cost;
    steering_total += solve_top_steering(cm, 5).comm_cost;
    greedy_total += solve_top_greedy_liu(cm, 5).comm_cost;
  }
  EXPECT_LT(dp_total, steering_total);
  EXPECT_LT(dp_total, greedy_total);
}

TEST(Baselines, SteeringFirstVnfMinimizesRoundTripAttraction) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 6, 83);
  CostModel cm(apsp, flows);
  const PlacementResult r = solve_top_steering(cm, 3);
  for (const NodeId w : topo.graph.switches()) {
    EXPECT_LE(cm.ingress_attraction(r.placement.front()) +
                  cm.egress_attraction(r.placement.front()),
              cm.ingress_attraction(w) + cm.egress_attraction(w) + 1e-9);
  }
}

}  // namespace
}  // namespace ppdc
