#include "graph/graph.hpp"

#include <gtest/gtest.h>

namespace ppdc {
namespace {

Graph two_switch_one_host() {
  Graph g;
  const NodeId s1 = g.add_node(NodeKind::kSwitch);
  const NodeId s2 = g.add_node(NodeKind::kSwitch);
  const NodeId h = g.add_node(NodeKind::kHost);
  g.add_edge(s1, s2, 2.0);
  g.add_edge(s2, h, 1.0);
  return g;
}

TEST(Graph, NodeBookkeeping) {
  Graph g;
  const NodeId s = g.add_node(NodeKind::kSwitch, "sw");
  const NodeId h = g.add_node(NodeKind::kHost, "host");
  EXPECT_EQ(g.num_nodes(), 2);
  EXPECT_TRUE(g.is_switch(s));
  EXPECT_TRUE(g.is_host(h));
  EXPECT_FALSE(g.is_host(s));
  EXPECT_EQ(g.label(s), "sw");
  EXPECT_EQ(g.label(h), "host");
  ASSERT_EQ(g.switches().size(), 1u);
  ASSERT_EQ(g.hosts().size(), 1u);
  EXPECT_EQ(g.switches()[0], s);
  EXPECT_EQ(g.hosts()[0], h);
}

TEST(Graph, DefaultLabels) {
  Graph g;
  const NodeId s = g.add_node(NodeKind::kSwitch);
  const NodeId h = g.add_node(NodeKind::kHost);
  EXPECT_EQ(g.label(s), "s0");
  EXPECT_EQ(g.label(h), "h1");
}

TEST(Graph, EdgeBookkeeping) {
  const Graph g = two_switch_one_host();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(g.edge_weight(1, 2), 1.0);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_DOUBLE_EQ(g.total_edge_weight(), 3.0);
}

TEST(Graph, NeighborsAreSymmetric) {
  const Graph g = two_switch_one_host();
  const auto n1 = g.neighbors(1);
  ASSERT_EQ(n1.size(), 2u);
  bool saw0 = false, saw2 = false;
  for (const auto& a : n1) {
    if (a.to == 0) saw0 = true;
    if (a.to == 2) saw2 = true;
  }
  EXPECT_TRUE(saw0);
  EXPECT_TRUE(saw2);
}

TEST(Graph, RejectsSelfLoop) {
  Graph g;
  const NodeId s = g.add_node(NodeKind::kSwitch);
  EXPECT_THROW(g.add_edge(s, s), PpdcError);
}

TEST(Graph, RejectsParallelEdge) {
  Graph g;
  const NodeId a = g.add_node(NodeKind::kSwitch);
  const NodeId b = g.add_node(NodeKind::kSwitch);
  g.add_edge(a, b);
  EXPECT_THROW(g.add_edge(a, b), PpdcError);
  EXPECT_THROW(g.add_edge(b, a), PpdcError);
}

TEST(Graph, RejectsNonPositiveWeight) {
  Graph g;
  const NodeId a = g.add_node(NodeKind::kSwitch);
  const NodeId b = g.add_node(NodeKind::kSwitch);
  EXPECT_THROW(g.add_edge(a, b, 0.0), PpdcError);
  EXPECT_THROW(g.add_edge(a, b, -1.0), PpdcError);
}

TEST(Graph, RejectsOutOfRangeNodes) {
  Graph g;
  g.add_node(NodeKind::kSwitch);
  EXPECT_THROW(g.add_edge(0, 5), PpdcError);
  EXPECT_THROW(g.kind(7), PpdcError);
  EXPECT_THROW((void)g.neighbors(-1), PpdcError);
}

TEST(Graph, SetEdgeWeightUpdatesBothDirections) {
  Graph g = two_switch_one_host();
  g.set_edge_weight(0, 1, 5.0);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(g.edge_weight(1, 0), 5.0);
}

TEST(Graph, SetEdgeWeightRejectsMissingEdge) {
  Graph g = two_switch_one_host();
  EXPECT_THROW(g.set_edge_weight(0, 2, 1.0), PpdcError);
}

TEST(Graph, EdgeWeightThrowsOnMissingEdge) {
  const Graph g = two_switch_one_host();
  EXPECT_THROW((void)g.edge_weight(0, 2), PpdcError);
}

TEST(Graph, Connectivity) {
  Graph g = two_switch_one_host();
  EXPECT_TRUE(g.is_connected());
  g.add_node(NodeKind::kHost);  // isolated
  EXPECT_FALSE(g.is_connected());
}

TEST(Graph, EmptyGraphIsConnected) {
  Graph g;
  EXPECT_TRUE(g.is_connected());
}

}  // namespace
}  // namespace ppdc
