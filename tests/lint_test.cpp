// Self-test for ppdc_lint (DESIGN.md §13), driving the analyzer library
// over the annotated fixture tree in tests/lint_corpus/. The corpus is
// its own lint root: every `// expect-finding(rule)` annotation must
// match exactly one finding on that line, and every finding must be
// annotated — so false negatives AND false positives fail the same
// equality check. Separate cases pin the suppression and baseline
// filters, SARIF well-formedness, and — explicitly — that the two
// check.sh grep bans this tool replaced (stage 4's mutable
// vector<MigrationPolicy*>, stage 4b's system_clock) are still caught.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer.hpp"

namespace {

namespace fs = std::filesystem;
using ppdc::lint::Finding;
using ppdc::lint::LintOptions;
using ppdc::lint::LintResult;

std::string corpus_root() { return PPDC_LINT_CORPUS_DIR; }

LintResult run_corpus(bool apply_suppressions = true,
                      const std::string& baseline = "") {
  LintOptions options;
  options.root = corpus_root();
  options.apply_suppressions = apply_suppressions;
  options.baseline_path = baseline;
  return ppdc::lint::run_lint(options);
}

std::string key_of(const Finding& f) {
  return f.path + ":" + std::to_string(f.line) + ":" + f.rule;
}

std::vector<std::string> keys_of(const std::vector<Finding>& findings) {
  std::vector<std::string> out;
  out.reserve(findings.size());
  for (const Finding& f : findings) out.push_back(key_of(f));
  std::sort(out.begin(), out.end());
  return out;
}

/// Scans every fixture for `expect-finding(rule)` annotations and
/// returns their `path:line:rule` keys, sorted like keys_of().
std::vector<std::string> expected_keys() {
  std::vector<std::string> out;
  const fs::path root(corpus_root());
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".hpp" && ext != ".cpp") continue;
    const std::string rel =
        fs::relative(entry.path(), root).generic_string();
    std::ifstream in(entry.path());
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      static const std::string marker = "expect-finding(";
      std::size_t pos = 0;
      while ((pos = line.find(marker, pos)) != std::string::npos) {
        pos += marker.size();
        const std::size_t end = line.find(')', pos);
        if (end == std::string::npos) {  // ASSERT_* needs a void function
          ADD_FAILURE() << rel << ":" << lineno << ": unterminated annotation";
          break;
        }
        out.push_back(rel + ":" + std::to_string(lineno) + ":" +
                      line.substr(pos, end - pos));
        pos = end;
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Minimal JSON validity checker (objects, arrays, strings, numbers,
/// keywords) — enough to prove the SARIF renderer emits parseable
/// output without pulling in a JSON dependency.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse_document() {
    if (!parse_value()) return false;
    skip_ws();
    return i_ == s_.size();
  }

 private:
  void skip_ws() {
    while (i_ < s_.size() &&
           (s_[i_] == ' ' || s_[i_] == '\n' || s_[i_] == '\r' ||
            s_[i_] == '\t')) {
      ++i_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }

  bool parse_string() {
    skip_ws();
    if (i_ >= s_.size() || s_[i_] != '"') return false;
    ++i_;
    while (i_ < s_.size() && s_[i_] != '"') {
      if (s_[i_] == '\\') ++i_;
      ++i_;
    }
    if (i_ >= s_.size()) return false;
    ++i_;
    return true;
  }

  bool parse_keyword(const std::string& word) {
    if (s_.compare(i_, word.size(), word) != 0) return false;
    i_ += word.size();
    return true;
  }

  bool parse_value() {
    skip_ws();
    if (i_ >= s_.size()) return false;
    const char c = s_[i_];
    if (c == '{') {
      ++i_;
      if (consume('}')) return true;
      do {
        if (!parse_string() || !consume(':') || !parse_value()) return false;
      } while (consume(','));
      return consume('}');
    }
    if (c == '[') {
      ++i_;
      if (consume(']')) return true;
      do {
        if (!parse_value()) return false;
      } while (consume(','));
      return consume(']');
    }
    if (c == '"') return parse_string();
    if (c == 't') return parse_keyword("true");
    if (c == 'f') return parse_keyword("false");
    if (c == 'n') return parse_keyword("null");
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c)) != 0) {
      ++i_;
      while (i_ < s_.size() &&
             (std::isdigit(static_cast<unsigned char>(s_[i_])) != 0 ||
              s_[i_] == '.' || s_[i_] == 'e' || s_[i_] == 'E' ||
              s_[i_] == '+' || s_[i_] == '-')) {
        ++i_;
      }
      return true;
    }
    return false;
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

TEST(LintCorpus, FindingsMatchAnnotationsExactly) {
  const LintResult result = run_corpus();
  const std::vector<std::string> expected = expected_keys();
  ASSERT_FALSE(expected.empty()) << "annotation scan found nothing — is "
                                 << corpus_root() << " the fixture tree?";
  // Equality both ways: a missed annotation is a false negative, an
  // unannotated finding is a false positive.
  EXPECT_EQ(keys_of(result.findings), expected);
}

TEST(LintCorpus, FormerGrepBansStillCaught) {
  const LintResult result = run_corpus();
  bool stage4 = false;
  bool stage4b = false;
  for (const Finding& f : result.findings) {
    if (f.rule == "policy-prototype-const" &&
        f.path == "src/sim/policy_list.cpp") {
      stage4 = true;
    }
    if (f.rule == "steady-clock-only" && f.path == "src/core/clocks.cpp") {
      stage4b = true;
    }
  }
  EXPECT_TRUE(stage4) << "stage-4 grep pattern (mutable "
                         "vector<MigrationPolicy*>) no longer caught";
  EXPECT_TRUE(stage4b) << "stage-4b grep pattern (system_clock) "
                          "no longer caught";
}

TEST(LintCorpus, SuppressionMovesFindingAside) {
  const LintResult result = run_corpus();
  for (const Finding& f : result.findings) {
    EXPECT_NE(f.path, "src/core/suppressed.cpp")
        << "suppressed fixture leaked into active findings: " << key_of(f);
  }
  bool found = false;
  for (const Finding& f : result.suppressed) {
    if (f.path == "src/core/suppressed.cpp" && f.rule == "no-float") {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "allow(no-float ...) comment was not honoured";
}

TEST(LintCorpus, NoSuppressResurfacesTheFinding) {
  const LintResult result = run_corpus(/*apply_suppressions=*/false);
  bool found = false;
  for (const Finding& f : result.findings) {
    if (f.path == "src/core/suppressed.cpp" && f.rule == "no-float") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(result.suppressed.empty());
}

TEST(LintCorpus, BaselineFiltersAndFlagsStaleEntries) {
  const LintResult base = run_corpus();
  const Finding* grandfathered = nullptr;
  for (const Finding& f : base.findings) {
    if (f.path == "src/util/precision.cpp" && f.rule == "no-float") {
      grandfathered = &f;
    }
  }
  ASSERT_NE(grandfathered, nullptr);
  const std::string live_key = key_of(*grandfathered);
  const std::string stale_key = "src/never/exists.cpp:1:no-float";

  const fs::path tmp =
      fs::temp_directory_path() / "ppdc_lint_test.baseline";
  {
    std::ofstream out(tmp);
    out << "# test baseline\n" << live_key << "\n" << stale_key << "\n";
  }
  const LintResult filtered = run_corpus(true, tmp.string());
  fs::remove(tmp);

  EXPECT_EQ(filtered.findings.size(), base.findings.size() - 1);
  for (const Finding& f : filtered.findings) {
    EXPECT_NE(key_of(f), live_key);
  }
  ASSERT_EQ(filtered.baselined.size(), 1u);
  EXPECT_EQ(key_of(filtered.baselined.front()), live_key);
  ASSERT_EQ(filtered.stale_baseline.size(), 1u);
  EXPECT_EQ(filtered.stale_baseline.front(), stale_key);
}

TEST(LintCorpus, SarifIsWellFormed) {
  const LintResult result = run_corpus();
  const std::string sarif = ppdc::lint::to_sarif(result.findings);
  JsonParser parser(sarif);
  EXPECT_TRUE(parser.parse_document()) << sarif;
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  // Every registered rule is described in the driver block, and every
  // finding's ruleId appears in the results block.
  for (const auto& rule : ppdc::lint::rule_registry()) {
    EXPECT_NE(sarif.find("\"id\": \"" + rule.name + "\""), std::string::npos)
        << rule.name;
  }
  for (const Finding& f : result.findings) {
    EXPECT_NE(sarif.find("\"ruleId\": \"" + f.rule + "\""),
              std::string::npos);
  }
}

TEST(LintRegistry, NamesAreStable) {
  const std::vector<std::string> expected = {
      "unordered-iteration",    "nondet-source", "steady-clock-only",
      "pointer-hash-order",     "policy-prototype-const",
      "raw-index",              "no-new-delete", "no-float",
      "include-spell",          "include-layering",
  };
  std::vector<std::string> actual;
  for (const auto& rule : ppdc::lint::rule_registry()) {
    actual.push_back(rule.name);
    EXPECT_FALSE(rule.rationale.empty()) << rule.name;
  }
  EXPECT_EQ(actual, expected);
}

TEST(LintRegistry, FormatTextCarriesRationale) {
  Finding f;
  f.path = "src/util/precision.cpp";
  f.line = 5;
  f.col = 3;
  f.rule = "no-float";
  f.message = "'float' narrows the double-only cost arithmetic";
  const std::string text = ppdc::lint::format_text(f);
  EXPECT_NE(text.find("src/util/precision.cpp:5:3: no-float:"),
            std::string::npos);
  EXPECT_NE(text.find("rationale:"), std::string::npos);
}

}  // namespace
