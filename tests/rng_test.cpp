#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace ppdc {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.uniform_int(42, 42), 42);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.uniform_int(0, 9));
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntRejectsEmptyRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(3, 2), PpdcError);
}

TEST(Rng, UniformRealInHalfOpenInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_real(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformRealMeanIsCentered) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform_real(0.0, 1.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliRejectsBadProbability) {
  Rng rng(1);
  EXPECT_THROW(rng.bernoulli(-0.1), PpdcError);
  EXPECT_THROW(rng.bernoulli(1.1), PpdcError);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, WeightedIndexHonoursWeights) {
  Rng rng(21);
  std::vector<double> w{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.weighted_index(w)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, WeightedIndexRejectsBadInput) {
  Rng rng(1);
  std::vector<double> empty;
  EXPECT_THROW(rng.weighted_index(empty), PpdcError);
  std::vector<double> zeros{0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(zeros), PpdcError);
  std::vector<double> negative{1.0, -1.0};
  EXPECT_THROW(rng.weighted_index(negative), PpdcError);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(31);
  Rng child = a.split();
  // The child stream should not replay the parent stream.
  Rng parent_copy(31);
  (void)parent_copy();  // consume the value used to derive the child
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child() == parent_copy()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Splitmix, KnownSequenceIsStable) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
  // Regression pin: documented first output of splitmix64 with seed 0.
  EXPECT_EQ(a, 0xE220A8397B1DCDAFULL);
}

}  // namespace
}  // namespace ppdc
