#include "core/replication.hpp"

#include <gtest/gtest.h>

#include "topology/fat_tree.hpp"
#include "topology/linear.hpp"
#include "workload/vm_placement.hpp"

namespace ppdc {
namespace {

std::vector<VmFlow> random_flows(const Topology& topo, int l,
                                 std::uint64_t seed, double zipf = 0.0) {
  VmPlacementConfig cfg;
  cfg.num_pairs = l;
  cfg.rack_zipf_s = zipf;
  Rng rng(seed);
  return generate_vm_flows(topo, cfg, rng);
}

TEST(Replication, SingleReplicaMatchesPlainTop) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 10, 1);
  CostModel cm(apsp, flows);
  const ReplicatedPlacement rep = solve_replicated_top(cm, 3, 1);
  ASSERT_EQ(rep.num_replicas(), 1);
  const PlacementResult plain = solve_top_dp(cm, 3);
  EXPECT_NEAR(replicated_communication_cost(apsp, flows, rep),
              cm.communication_cost(rep.chains[0]), 1e-9);
  // The clustered single replica is the plain DP run on all flows.
  EXPECT_NEAR(cm.communication_cost(rep.chains[0]), plain.comm_cost, 1e-9);
}

TEST(Replication, FlowCostIsViterbiOptimum) {
  // Hand-checkable instance on the linear PPDC: two chains at opposite
  // ends; a flow at h2 must pick the near chain.
  const Topology topo = build_linear(6);
  const AllPairs apsp(topo.graph);
  const auto& s = topo.graph.switches();
  const NodeId h2 = topo.graph.hosts()[1];  // attached to s6
  ReplicatedPlacement rep;
  rep.chains = {{s[0], s[1]}, {s[5], s[4]}};
  const VmFlow f{h2, h2, 2.0, 0};
  // Near chain: h2 -> s6 (1) -> s5 (1) -> back to h2 (2) = 4 hops * rate 2.
  EXPECT_DOUBLE_EQ(replicated_flow_cost(apsp, f, rep), 8.0);
}

TEST(Replication, MixedStageChoiceBeatsWholeChainChoice) {
  // The Viterbi may hop between replica columns mid-chain; its cost can
  // never exceed the best whole-chain cost.
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 12, 3, 2.0);
  CostModel cm(apsp, flows);
  const ReplicatedPlacement rep = solve_replicated_top(cm, 3, 2);
  ASSERT_EQ(rep.num_replicas(), 2);
  for (const auto& f : flows) {
    const double viterbi = replicated_flow_cost(apsp, f, rep);
    double whole = std::numeric_limits<double>::infinity();
    for (const auto& chain : rep.chains) {
      whole = std::min(whole, cm.flow_cost(f, chain));
    }
    EXPECT_LE(viterbi, whole + 1e-9);
  }
}

TEST(Replication, MoreReplicasNeverHurt) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 16, 5, 2.0);
  CostModel cm(apsp, flows);
  double prev = std::numeric_limits<double>::infinity();
  for (int r = 1; r <= 4; ++r) {
    const ReplicatedPlacement rep = solve_replicated_top(cm, 3, r);
    const double cost = replicated_communication_cost(apsp, flows, rep);
    // Clustered placement is heuristic, so enforce a soft monotonicity:
    // within 5% of the best seen so far.
    EXPECT_LE(cost, 1.05 * prev + 1e-9) << "r=" << r;
    prev = std::min(prev, cost);
  }
}

TEST(Replication, EveryChainIsAValidPlacement) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 10, 7, 1.5);
  CostModel cm(apsp, flows);
  const ReplicatedPlacement rep = solve_replicated_top(cm, 4, 3);
  for (const auto& chain : rep.chains) {
    EXPECT_NO_THROW(validate_placement(topo.graph, chain));
    EXPECT_EQ(chain.size(), 4u);
  }
}

TEST(Replication, ReplicaCountClampsToDistinctSourceRacks) {
  const Topology topo = build_linear(5);  // 2 racks only
  const AllPairs apsp(topo.graph);
  const NodeId h1 = topo.graph.hosts()[0];
  const std::vector<VmFlow> flows{{h1, h1, 1.0, 0}};
  CostModel cm(apsp, flows);
  const ReplicatedPlacement rep = solve_replicated_top(cm, 2, 5);
  EXPECT_EQ(rep.num_replicas(), 1);  // only one source rack carries mass
}

TEST(Replication, RejectsBadInput) {
  const Topology topo = build_linear(5);
  const AllPairs apsp(topo.graph);
  const NodeId h1 = topo.graph.hosts()[0];
  const std::vector<VmFlow> flows{{h1, h1, 1.0, 0}};
  CostModel cm(apsp, flows);
  EXPECT_THROW(solve_replicated_top(cm, 2, 0), PpdcError);
  ReplicatedPlacement empty;
  EXPECT_THROW(replicated_flow_cost(apsp, flows[0], empty), PpdcError);
}

}  // namespace
}  // namespace ppdc
