#include "net/link_load.hpp"

#include <gtest/gtest.h>

#include "core/placement_dp.hpp"
#include "topology/fat_tree.hpp"
#include "topology/linear.hpp"
#include "workload/vm_placement.hpp"

namespace ppdc {
namespace {

TEST(LinkLoad, SinglePathCarriesAllMass) {
  const Topology t = build_linear(4);
  const AllPairs apsp(t.graph);
  LinkLoadMap m(t.graph);
  const NodeId h1 = t.graph.hosts()[0];
  const NodeId h2 = t.graph.hosts()[1];
  route_ecmp(apsp, h1, h2, 10.0, m);
  // Linear topology: a unique path, every edge on it carries 10.
  const auto& s = t.graph.switches();
  EXPECT_DOUBLE_EQ(m.load(h1, s[0]), 10.0);
  EXPECT_DOUBLE_EQ(m.load(s[0], s[1]), 10.0);
  EXPECT_DOUBLE_EQ(m.load(s[2], s[3]), 10.0);
  EXPECT_DOUBLE_EQ(m.load(s[3], h2), 10.0);
  EXPECT_DOUBLE_EQ(m.max_load(), 10.0);
}

TEST(LinkLoad, TotalLoadEqualsAmountTimesHops) {
  const Topology t = build_fat_tree(4);
  const AllPairs apsp(t.graph);
  LinkLoadMap m(t.graph);
  const NodeId a = t.racks[RackIdx{0}][0];
  const NodeId b = t.racks[RackIdx{5}][1];  // cross-pod: 6 hops
  route_ecmp(apsp, a, b, 7.0, m);
  EXPECT_NEAR(m.total_load(), 7.0 * apsp.cost(a, b), 1e-9);
}

TEST(LinkLoad, EcmpSplitsEquallyAcrossFatTreeUplinks) {
  const Topology t = build_fat_tree(4);
  const AllPairs apsp(t.graph);
  LinkLoadMap m(t.graph);
  const NodeId a = t.racks[RackIdx{0}][0];   // pod 0
  const NodeId b = t.racks[RackIdx{7}][1];   // pod 3
  route_ecmp(apsp, a, b, 8.0, m);
  // The first hop (host -> edge) carries everything; the edge switch then
  // splits across its two aggregation uplinks.
  NodeId edge = kInvalidNode;
  for (const auto& adj : t.graph.neighbors(a)) edge = adj.to;
  double up = 0.0;
  int uplinks = 0;
  for (const auto& adj : t.graph.neighbors(edge)) {
    if (t.graph.is_switch(adj.to)) {
      up += m.load(edge, adj.to);
      ++uplinks;
      EXPECT_NEAR(m.load(edge, adj.to), 4.0, 1e-9);  // 8 split over 2
    }
  }
  EXPECT_EQ(uplinks, 2);
  EXPECT_NEAR(up, 8.0, 1e-9);
}

TEST(LinkLoad, SelfRouteAndZeroAmountAreNoOps) {
  const Topology t = build_linear(3);
  const AllPairs apsp(t.graph);
  LinkLoadMap m(t.graph);
  route_ecmp(apsp, t.graph.hosts()[0], t.graph.hosts()[0], 5.0, m);
  route_ecmp(apsp, t.graph.hosts()[0], t.graph.hosts()[1], 0.0, m);
  EXPECT_DOUBLE_EQ(m.total_load(), 0.0);
}

TEST(LinkLoad, PolicyLoadEqualsEq1OnUnitGraphs) {
  // On unit-weight fabrics, Σ_links load == Σ_i λ_i x (policy path
  // length) == C_a — the bandwidth reading of Eq. 1.
  const Topology t = build_fat_tree(4);
  const AllPairs apsp(t.graph);
  VmPlacementConfig cfg;
  cfg.num_pairs = 10;
  Rng rng(3);
  const auto flows = generate_vm_flows(t, cfg, rng);
  CostModel cm(apsp, flows);
  const Placement p = solve_top_dp(cm, 3).placement;
  const LinkLoadMap m = policy_link_load(apsp, flows, p);
  EXPECT_NEAR(m.total_load(), cm.communication_cost(p), 1e-6);
}

TEST(LinkLoad, HottestIsSortedDescending) {
  const Topology t = build_fat_tree(4);
  const AllPairs apsp(t.graph);
  VmPlacementConfig cfg;
  cfg.num_pairs = 10;
  Rng rng(5);
  const auto flows = generate_vm_flows(t, cfg, rng);
  CostModel cm(apsp, flows);
  const LinkLoadMap m =
      policy_link_load(apsp, flows, solve_top_dp(cm, 3).placement);
  const auto top = m.hottest(5);
  ASSERT_EQ(top.size(), 5u);
  for (std::size_t i = 0; i + 1 < top.size(); ++i) {
    EXPECT_GE(std::get<2>(top[i]), std::get<2>(top[i + 1]));
  }
  EXPECT_DOUBLE_EQ(std::get<2>(top[0]), m.max_load());
}

TEST(LinkLoad, UtilizationScalesWithCapacity) {
  const Topology t = build_linear(3);
  const AllPairs apsp(t.graph);
  LinkLoadMap m(t.graph);
  route_ecmp(apsp, t.graph.hosts()[0], t.graph.hosts()[1], 40.0, m);
  EXPECT_DOUBLE_EQ(m.max_utilization(100.0), 0.4);
  EXPECT_DOUBLE_EQ(m.max_utilization(40.0), 1.0);
  EXPECT_THROW(m.max_utilization(0.0), PpdcError);
}

TEST(LinkLoad, RejectsUnknownLinksAndNegativeLoads) {
  const Topology t = build_linear(3);
  LinkLoadMap m(t.graph);
  EXPECT_THROW(m.add(0, 2, 1.0), PpdcError);  // s1-s3 not adjacent
  EXPECT_THROW(m.add(0, 1, -1.0), PpdcError);
  EXPECT_THROW((void)m.load(0, 2), PpdcError);
}

TEST(LinkLoad, MeanAndCountConsistent) {
  const Topology t = build_linear(4);
  const AllPairs apsp(t.graph);
  LinkLoadMap m(t.graph);
  EXPECT_EQ(m.num_links(), t.graph.num_edges());
  route_ecmp(apsp, t.graph.hosts()[0], t.graph.hosts()[1], 5.0, m);
  EXPECT_NEAR(m.mean_load() * static_cast<double>(m.num_links()),
              m.total_load(), 1e-12);
}

}  // namespace
}  // namespace ppdc
