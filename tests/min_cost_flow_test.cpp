#include "flow/min_cost_flow.hpp"

#include <gtest/gtest.h>

namespace ppdc {
namespace {

TEST(MinCostFlow, SingleArc) {
  MinCostFlow f(2);
  f.add_arc(0, 1, 5, 2.0);
  const auto r = f.solve(0, 1);
  EXPECT_EQ(r.flow, 5);
  EXPECT_DOUBLE_EQ(r.cost, 10.0);
}

TEST(MinCostFlow, PrefersCheaperPath) {
  MinCostFlow f(4);
  f.add_arc(0, 1, 1, 1.0);
  f.add_arc(1, 3, 1, 1.0);
  f.add_arc(0, 2, 1, 5.0);
  f.add_arc(2, 3, 1, 5.0);
  const auto r = f.solve(0, 3, 1);
  EXPECT_EQ(r.flow, 1);
  EXPECT_DOUBLE_EQ(r.cost, 2.0);
}

TEST(MinCostFlow, SplitsWhenCheapPathSaturates) {
  MinCostFlow f(4);
  f.add_arc(0, 1, 1, 1.0);
  f.add_arc(1, 3, 1, 1.0);
  f.add_arc(0, 2, 1, 5.0);
  f.add_arc(2, 3, 1, 5.0);
  const auto r = f.solve(0, 3);
  EXPECT_EQ(r.flow, 2);
  EXPECT_DOUBLE_EQ(r.cost, 12.0);
}

TEST(MinCostFlow, RespectsMaxFlowLimit) {
  MinCostFlow f(2);
  f.add_arc(0, 1, 10, 1.0);
  const auto r = f.solve(0, 1, 3);
  EXPECT_EQ(r.flow, 3);
  EXPECT_DOUBLE_EQ(r.cost, 3.0);
}

TEST(MinCostFlow, FlowOnReportsPerArcFlow) {
  MinCostFlow f(3);
  const int a = f.add_arc(0, 1, 2, 1.0);
  const int b = f.add_arc(1, 2, 1, 1.0);
  const int c = f.add_arc(0, 2, 1, 10.0);
  const auto r = f.solve(0, 2);
  EXPECT_EQ(r.flow, 2);
  EXPECT_EQ(f.flow_on(a), 1);
  EXPECT_EQ(f.flow_on(b), 1);
  EXPECT_EQ(f.flow_on(c), 1);
}

TEST(MinCostFlow, ZeroWhenDisconnected) {
  MinCostFlow f(3);
  f.add_arc(0, 1, 1, 1.0);
  const auto r = f.solve(0, 2);
  EXPECT_EQ(r.flow, 0);
  EXPECT_DOUBLE_EQ(r.cost, 0.0);
}

TEST(MinCostFlow, HandlesNegativeCosts) {
  MinCostFlow f(3);
  f.add_arc(0, 1, 1, -2.0);
  f.add_arc(1, 2, 1, 1.0);
  f.add_arc(0, 2, 1, 0.5);
  const auto r = f.solve(0, 2);
  EXPECT_EQ(r.flow, 2);
  EXPECT_DOUBLE_EQ(r.cost, -0.5);
}

TEST(MinCostFlow, AssignmentProblem) {
  // 2 workers x 2 jobs; optimal assignment cost 1 + 2 = 3.
  // Node layout: 0 source, 1 sink, 2-3 workers, 4-5 jobs.
  MinCostFlow f(6);
  f.add_arc(0, 2, 1, 0.0);
  f.add_arc(0, 3, 1, 0.0);
  f.add_arc(2, 4, 1, 1.0);
  f.add_arc(2, 5, 1, 4.0);
  f.add_arc(3, 4, 1, 3.0);
  f.add_arc(3, 5, 1, 2.0);
  f.add_arc(4, 1, 1, 0.0);
  f.add_arc(5, 1, 1, 0.0);
  const auto r = f.solve(0, 1);
  EXPECT_EQ(r.flow, 2);
  EXPECT_DOUBLE_EQ(r.cost, 3.0);
}

TEST(MinCostFlow, AssignmentNeedsSuboptimalLocalChoice) {
  // Greedy per-worker assignment would pick (w0 -> j0) at cost 1 leaving
  // (w1 -> j1) at cost 10; the optimum crosses: 2 + 2 = 4.
  MinCostFlow f(6);
  f.add_arc(0, 2, 1, 0.0);
  f.add_arc(0, 3, 1, 0.0);
  f.add_arc(2, 4, 1, 1.0);
  f.add_arc(2, 5, 1, 2.0);
  f.add_arc(3, 4, 1, 2.0);
  f.add_arc(3, 5, 1, 10.0);
  f.add_arc(4, 1, 1, 0.0);
  f.add_arc(5, 1, 1, 0.0);
  const auto r = f.solve(0, 1);
  EXPECT_EQ(r.flow, 2);
  EXPECT_DOUBLE_EQ(r.cost, 4.0);
}

TEST(MinCostFlow, RejectsBadInputs) {
  EXPECT_THROW(MinCostFlow{0}, PpdcError);
  MinCostFlow f(2);
  EXPECT_THROW(f.add_arc(0, 5, 1, 0.0), PpdcError);
  EXPECT_THROW(f.add_arc(0, 1, -1, 0.0), PpdcError);
  EXPECT_THROW(f.solve(0, 0), PpdcError);
  EXPECT_THROW(f.solve(0, 9), PpdcError);
  EXPECT_THROW(f.flow_on(3), PpdcError);
}

TEST(MinCostFlow, LargerRandomishInstanceConserved) {
  // Layered network; verify flow conservation via arc flows.
  MinCostFlow f(8);
  std::vector<int> arcs;
  for (int i = 1; i <= 3; ++i) {
    arcs.push_back(f.add_arc(0, i, 2, static_cast<double>(i)));
    for (int j = 4; j <= 6; ++j) {
      arcs.push_back(f.add_arc(i, j, 1, static_cast<double>(i * j % 5)));
    }
  }
  for (int j = 4; j <= 6; ++j) {
    arcs.push_back(f.add_arc(j, 7, 2, 0.5));
  }
  const auto r = f.solve(0, 7);
  EXPECT_GT(r.flow, 0);
  // Conservation at middle nodes.
  for (int i = 1; i <= 3; ++i) {
    std::int64_t in = 0, out = 0;
    int idx = 0;
    for (int src = 1; src <= 3; ++src) {
      in += (src == i) ? f.flow_on(idx) : 0;
      ++idx;
      for (int j = 4; j <= 6; ++j) {
        out += (src == i) ? f.flow_on(idx) : 0;
        ++idx;
      }
    }
    EXPECT_EQ(in, out);
  }
}

}  // namespace
}  // namespace ppdc
