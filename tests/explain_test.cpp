#include "core/explain.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "topology/linear.hpp"

namespace ppdc {
namespace {

struct World {
  Topology topo = build_linear(5);
  AllPairs apsp{topo.graph};
  NodeId h1 = topo.graph.hosts()[0];
  NodeId h2 = topo.graph.hosts()[1];
  std::vector<NodeId> s = topo.graph.switches();
};

TEST(Explain, BreakdownSumsToEq1) {
  World w;
  const std::vector<VmFlow> flows{{w.h1, w.h1, 100.0, 0},
                                  {w.h2, w.h2, 1.0, 0}};
  CostModel cm(w.apsp, flows);
  const Placement p{w.s[0], w.s[1]};
  const CostBreakdown b = explain_placement(cm, p);
  EXPECT_NEAR(b.total, cm.communication_cost(p), 1e-9);
  EXPECT_NEAR(b.ingress + b.chain + b.egress, b.total, 1e-9);
  EXPECT_DOUBLE_EQ(b.total, 410.0);
}

TEST(Explain, FlowExtremesAreOrdered) {
  World w;
  const std::vector<VmFlow> flows{{w.h1, w.h1, 100.0, 0},
                                  {w.h2, w.h2, 1.0, 0}};
  CostModel cm(w.apsp, flows);
  const CostBreakdown b = explain_placement(cm, {w.s[0], w.s[1]});
  EXPECT_DOUBLE_EQ(b.heaviest_flow, 400.0);
  EXPECT_DOUBLE_EQ(b.lightest_flow, 10.0);
  EXPECT_GE(b.heaviest_flow, b.lightest_flow);
}

TEST(Explain, MeanPathLengthIsRateWeighted) {
  World w;
  const std::vector<VmFlow> flows{{w.h1, w.h1, 100.0, 0},
                                  {w.h2, w.h2, 1.0, 0}};
  CostModel cm(w.apsp, flows);
  const CostBreakdown b = explain_placement(cm, {w.s[0], w.s[1]});
  // (100*4 + 1*10) / 101.
  EXPECT_NEAR(b.mean_flow_hops, 410.0 / 101.0, 1e-9);
}

TEST(Explain, PrintsPercentages) {
  World w;
  const std::vector<VmFlow> flows{{w.h1, w.h2, 10.0, 0}};
  CostModel cm(w.apsp, flows);
  std::ostringstream os;
  print_breakdown(os, cm, {w.s[1], w.s[2]}, "demo");
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("ingress"), std::string::npos);
  EXPECT_NE(out.find("%"), std::string::npos);
}

TEST(Explain, RejectsInvalidPlacement) {
  World w;
  const std::vector<VmFlow> flows{{w.h1, w.h2, 1.0, 0}};
  CostModel cm(w.apsp, flows);
  EXPECT_THROW(explain_placement(cm, {}), PpdcError);
  EXPECT_THROW(explain_placement(cm, {w.s[0], w.s[0]}), PpdcError);
}

TEST(Explain, ZeroRateWorkload) {
  World w;
  const std::vector<VmFlow> flows{{w.h1, w.h2, 0.0, 0}};
  CostModel cm(w.apsp, flows);
  const CostBreakdown b = explain_placement(cm, {w.s[0], w.s[1]});
  EXPECT_DOUBLE_EQ(b.total, 0.0);
  EXPECT_DOUBLE_EQ(b.mean_flow_hops, 0.0);
}

}  // namespace
}  // namespace ppdc
