#include "core/cost_model.hpp"

#include <gtest/gtest.h>

#include "topology/fat_tree.hpp"
#include "topology/linear.hpp"

namespace ppdc {
namespace {

/// Fig. 1 / Fig. 3 fixture: linear PPDC s1..s5, both VMs of flow 1 on h1,
/// both VMs of flow 2 on h2.
struct Fig3 {
  Topology topo = build_linear(5);
  AllPairs apsp{topo.graph};
  NodeId h1 = topo.graph.hosts()[0];
  NodeId h2 = topo.graph.hosts()[1];
  std::vector<NodeId> s = topo.graph.switches();  // s[0] = s1 .. s[4] = s5

  std::vector<VmFlow> flows(double l1, double l2) const {
    return {{h1, h1, l1}, {h2, h2, l2}};
  }
};

TEST(CostModel, Fig3InitialPlacementCosts410) {
  Fig3 f;
  const auto flows = f.flows(100.0, 1.0);
  CostModel cm(f.apsp, flows);
  // Example 1: f1 at s1, f2 at s2 gives 100*4 + 1*10 = 410.
  EXPECT_DOUBLE_EQ(cm.communication_cost({f.s[0], f.s[1]}), 410.0);
}

TEST(CostModel, Fig3AfterTrafficFlipCosts1004) {
  Fig3 f;
  const auto flows = f.flows(1.0, 100.0);
  CostModel cm(f.apsp, flows);
  EXPECT_DOUBLE_EQ(cm.communication_cost({f.s[0], f.s[1]}), 1004.0);
}

TEST(CostModel, Fig3MigratedPlacementCosts410Plus6) {
  Fig3 f;
  const auto flows = f.flows(1.0, 100.0);
  CostModel cm(f.apsp, flows);
  const Placement from{f.s[0], f.s[1]};
  const Placement to{f.s[4], f.s[3]};  // f1 -> s5, f2 -> s4
  EXPECT_DOUBLE_EQ(cm.migration_cost(from, to, 1.0), 6.0);
  EXPECT_DOUBLE_EQ(cm.communication_cost(to), 410.0);
  EXPECT_DOUBLE_EQ(cm.total_cost(from, to, 1.0), 416.0);
}

TEST(CostModel, Eq1MatchesPerFlowSum) {
  const Topology t = build_fat_tree(4);
  const AllPairs apsp(t.graph);
  const std::vector<VmFlow> flows{{t.racks[RackIdx{0}][0], t.racks[RackIdx{2}][1], 7.0},
                                  {t.racks[RackIdx{1}][0], t.racks[RackIdx{1}][1], 3.0},
                                  {t.racks[RackIdx{3}][0], t.racks[RackIdx{0}][0], 11.0}};
  CostModel cm(apsp, flows);
  const auto& sw = t.graph.switches();
  const Placement p{sw[0], sw[5], sw[9]};
  double per_flow = 0.0;
  for (const auto& f : flows) per_flow += cm.flow_cost(f, p);
  EXPECT_NEAR(cm.communication_cost(p), per_flow, 1e-9);
}

TEST(CostModel, AttractionsMatchDefinition) {
  const Topology t = build_fat_tree(4);
  const AllPairs apsp(t.graph);
  const std::vector<VmFlow> flows{{t.racks[RackIdx{0}][0], t.racks[RackIdx{2}][1], 5.0},
                                  {t.racks[RackIdx{1}][0], t.racks[RackIdx{3}][1], 2.0}};
  CostModel cm(apsp, flows);
  for (const NodeId w : t.graph.switches()) {
    double a = 0.0, b = 0.0;
    for (const auto& f : flows) {
      a += f.rate * apsp.cost(f.src_host, w);
      b += f.rate * apsp.cost(w, f.dst_host);
    }
    EXPECT_NEAR(cm.ingress_attraction(w), a, 1e-9);
    EXPECT_NEAR(cm.egress_attraction(w), b, 1e-9);
  }
  EXPECT_DOUBLE_EQ(cm.total_rate(), 7.0);
}

TEST(CostModel, BestEndpointsMinimizeAttractions) {
  const Topology t = build_fat_tree(4);
  const AllPairs apsp(t.graph);
  const std::vector<VmFlow> flows{{t.racks[RackIdx{0}][0], t.racks[RackIdx{0}][1], 10.0}};
  CostModel cm(apsp, flows);
  for (const NodeId w : t.graph.switches()) {
    EXPECT_LE(cm.min_ingress_attraction(), cm.ingress_attraction(w));
    EXPECT_LE(cm.min_egress_attraction(), cm.egress_attraction(w));
  }
  // Both VMs are under rack switch 0, so it attracts both roles.
  EXPECT_EQ(cm.best_ingress(), t.rack_switches[RackIdx{0}]);
  EXPECT_EQ(cm.best_egress(), t.rack_switches[RackIdx{0}]);
}

TEST(CostModel, RefreshTracksRateChanges) {
  Fig3 f;
  auto flows = f.flows(100.0, 1.0);
  CostModel cm(f.apsp, flows);
  const double before = cm.communication_cost({f.s[0], f.s[1]});
  set_rates(flows, {1.0, 100.0});
  cm.refresh();
  const double after = cm.communication_cost({f.s[0], f.s[1]});
  EXPECT_DOUBLE_EQ(before, 410.0);
  EXPECT_DOUBLE_EQ(after, 1004.0);
}

TEST(CostModel, MigrationCostZeroWhenStaying) {
  Fig3 f;
  const auto flows = f.flows(1.0, 1.0);
  CostModel cm(f.apsp, flows);
  const Placement p{f.s[1], f.s[2]};
  EXPECT_DOUBLE_EQ(cm.migration_cost(p, p, 1e5), 0.0);
}

TEST(CostModel, MigrationCostScalesWithMu) {
  Fig3 f;
  const auto flows = f.flows(1.0, 1.0);
  CostModel cm(f.apsp, flows);
  const Placement from{f.s[0], f.s[1]};
  const Placement to{f.s[2], f.s[3]};
  const double c1 = cm.migration_cost(from, to, 1.0);
  EXPECT_DOUBLE_EQ(cm.migration_cost(from, to, 1e4), 1e4 * c1);
}

TEST(ValidatePlacement, RejectsBadPlacements) {
  Fig3 f;
  EXPECT_THROW(validate_placement(f.topo.graph, {}), PpdcError);
  EXPECT_THROW(validate_placement(f.topo.graph, {f.h1}), PpdcError);
  EXPECT_THROW(validate_placement(f.topo.graph, {f.s[0], f.s[0]}),
               PpdcError);
  EXPECT_NO_THROW(validate_placement(f.topo.graph, {f.s[0], f.s[1]}));
}

TEST(CostModel, FlowCostValidatesPlacementLikeCommunicationCost) {
  // Regression: flow_cost used to skip placement validation entirely.
  Fig3 f;
  const auto flows = f.flows(2.0, 3.0);
  CostModel cm(f.apsp, flows);
  EXPECT_THROW(cm.flow_cost(flows[0], {}), PpdcError);
  EXPECT_THROW(cm.flow_cost(flows[0], {f.s[0], f.s[0]}), PpdcError);
  EXPECT_THROW(cm.flow_cost(flows[0], {f.h1}), PpdcError);
  // Valid placement: rate * (ingress hop + chain + egress hop).
  EXPECT_DOUBLE_EQ(cm.flow_cost(flows[0], {f.s[0], f.s[1]}),
                   2.0 * (1.0 + 1.0 + 2.0));
}

TEST(CostModel, SingleVnfPlacement) {
  Fig3 f;
  const auto flows = f.flows(10.0, 1.0);
  CostModel cm(f.apsp, flows);
  // With one VNF at s1: flow1 pays 10*(1+1)=20, flow2 pays 1*(5+5)=10.
  EXPECT_DOUBLE_EQ(cm.communication_cost({f.s[0]}), 30.0);
}

TEST(CostModel, ZeroRatesGiveZeroCommunicationCost) {
  Fig3 f;
  const auto flows = f.flows(0.0, 0.0);
  CostModel cm(f.apsp, flows);
  EXPECT_DOUBLE_EQ(cm.communication_cost({f.s[0], f.s[1]}), 0.0);
  EXPECT_DOUBLE_EQ(cm.total_rate(), 0.0);
}

TEST(CostModel, NegativeRateRejected) {
  Fig3 f;
  auto flows = f.flows(1.0, 1.0);
  flows[0].rate = -1.0;
  EXPECT_THROW(CostModel(f.apsp, flows), PpdcError);
}

TEST(CostModel, MismatchedMigrationSizesRejected) {
  Fig3 f;
  const auto flows = f.flows(1.0, 1.0);
  CostModel cm(f.apsp, flows);
  EXPECT_THROW(cm.migration_cost({f.s[0]}, {f.s[0], f.s[1]}, 1.0),
               PpdcError);
  EXPECT_THROW(cm.migration_cost({f.s[0]}, {f.s[1]}, -1.0), PpdcError);
}

}  // namespace
}  // namespace ppdc
