// EpochObserver contract (DESIGN.md §9): an external observer attached to
// run_simulation must see the exact event stream the engine's own
// TraceRecorder turns into the returned SimTrace — same epoch boundaries,
// same fault/recovery/quarantine/truncation totals, in order.
#include <gtest/gtest.h>

#include "fault/fault.hpp"
#include "sim/engine.hpp"
#include "topology/fat_tree.hpp"
#include "workload/vm_placement.hpp"

namespace ppdc {
namespace {

std::vector<VmFlow> random_flows(const Topology& topo, int l,
                                 std::uint64_t seed) {
  VmPlacementConfig cfg;
  cfg.num_pairs = l;
  cfg.intra_rack_fraction = 0.8;
  Rng rng(seed);
  return generate_vm_flows(topo, cfg, rng);
}

/// Logs every callback so tests can replay the stream against the trace.
class EventLog final : public EpochObserver {
 public:
  void on_run_begin(Hour horizon, const Placement& initial) override {
    ++run_begins;
    seen_horizon = horizon;
    seen_initial = initial;
  }
  void on_epoch_begin(Hour hour) override { begins.push_back(hour); }
  void on_faults(Hour hour, const EpochFaults& events) override {
    fault_hours.push_back(hour);
    switch_failures += events.switch_failures;
    link_failures += events.link_failures;
    repairs += events.repairs;
  }
  void on_quarantine(Hour /*hour*/, int flows, double unserved_rate,
                     double penalty) override {
    quarantined_flows += flows;
    EXPECT_GT(flows, 0);
    EXPECT_GE(unserved_rate, 0.0);
    quarantine_penalty += penalty;
  }
  void on_blackout(Hour /*hour*/) override { ++blackouts; }
  void on_recovery(Hour /*hour*/, int migrations, double cost) override {
    EXPECT_GT(migrations, 0);
    recovery_migrations += migrations;
    recovery_cost += cost;
  }
  void on_budget_truncation(Hour /*hour*/, int truncated_solves) override {
    EXPECT_GT(truncated_solves, 0);
    truncations += truncated_solves;
  }
  void on_epoch_end(Hour hour, const EpochDecision& d) override {
    ends.push_back(hour);
    comm_cost += d.comm_cost;
    migration_cost += d.migration_cost;
  }
  void on_run_end() override { ++run_ends; }

  int run_begins = 0, run_ends = 0;
  Hour seen_horizon{0};
  Placement seen_initial;
  std::vector<Hour> begins, ends, fault_hours;
  int switch_failures = 0, link_failures = 0, repairs = 0;
  int quarantined_flows = 0, recovery_migrations = 0;
  int blackouts = 0, truncations = 0;
  double quarantine_penalty = 0.0, recovery_cost = 0.0, comm_cost = 0.0,
         migration_cost = 0.0;
};

TEST(EpochObserver, StreamMatchesTraceOnFaultyRun) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 8, 7);

  SimConfig cfg;
  cfg.hours = 24;
  FaultScheduleConfig fcfg;
  fcfg.hours = cfg.hours;
  fcfg.switch_mtbf = 12.0;
  fcfg.switch_mttr = 2.0;
  fcfg.link_mtbf = 24.0;
  fcfg.link_mttr = 2.0;
  fcfg.seed = 7;
  cfg.faults = generate_fault_schedule(topo.graph, fcfg);
  cfg.fault.quarantine_penalty = 50.0;

  ParetoMigrationPolicy policy(1e4);
  EventLog log;
  const SimTrace trace = run_simulation(apsp, flows, 3, cfg, policy, &log);

  // Run framing.
  EXPECT_EQ(log.run_begins, 1);
  EXPECT_EQ(log.run_ends, 1);
  EXPECT_EQ(log.seen_horizon, Hour{cfg.hours});
  EXPECT_EQ(log.seen_initial, trace.initial_placement);

  // One begin/end pair per epoch, hours strictly in order.
  ASSERT_EQ(log.begins.size(), static_cast<std::size_t>(cfg.hours));
  ASSERT_EQ(log.ends.size(), trace.epochs.size());
  for (int h = 0; h < cfg.hours; ++h) {
    EXPECT_EQ(log.begins[static_cast<std::size_t>(h)], Hour{h});
    EXPECT_EQ(log.ends[static_cast<std::size_t>(h)], Hour{h});
  }

  // The external sink accumulates the same totals as the TraceRecorder.
  EXPECT_EQ(log.switch_failures, trace.total_switch_failures);
  EXPECT_EQ(log.link_failures, trace.total_link_failures);
  EXPECT_EQ(log.repairs, trace.total_repairs);
  EXPECT_EQ(log.recovery_migrations, trace.total_recovery_migrations);
  EXPECT_DOUBLE_EQ(log.recovery_cost, trace.total_recovery_cost);
  EXPECT_EQ(log.quarantined_flows, trace.quarantined_flow_epochs);
  EXPECT_DOUBLE_EQ(log.quarantine_penalty, trace.total_quarantine_penalty);
  EXPECT_EQ(log.blackouts, trace.downtime_epochs);
  EXPECT_EQ(log.truncations, trace.total_truncated_solves);
  EXPECT_DOUBLE_EQ(log.comm_cost, trace.total_comm_cost);
  EXPECT_DOUBLE_EQ(log.migration_cost, trace.total_migration_cost);

  // The schedule is dense enough that the fault path actually ran.
  EXPECT_GT(log.switch_failures + log.link_failures, 0);
  EXPECT_GT(log.recovery_migrations + log.quarantined_flows, 0);
}

TEST(EpochObserver, PristineRunEmitsNoFaultEvents) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 6, 3);
  SimConfig cfg;
  cfg.hours = 6;
  NoMigrationPolicy policy;
  EventLog log;
  const SimTrace trace = run_simulation(apsp, flows, 3, cfg, policy, &log);
  EXPECT_EQ(log.fault_hours.size(), 0u);
  EXPECT_EQ(log.switch_failures + log.link_failures + log.repairs, 0);
  EXPECT_EQ(log.quarantined_flows, 0);
  EXPECT_EQ(log.recovery_migrations, 0);
  EXPECT_EQ(log.blackouts, 0);
  EXPECT_EQ(log.truncations, 0);
  EXPECT_DOUBLE_EQ(log.comm_cost, trace.total_comm_cost);
}

TEST(EpochObserver, BudgetTruncationSurfacesThroughStreamAndTrace) {
  // An exhaustive policy with a 1-node search budget can never prove
  // optimality: every decision epoch is a truncated solve.
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 6, 5);
  SimConfig cfg;
  cfg.hours = 4;
  ChainSearchConfig search;
  search.node_budget = 1;
  ExhaustiveMigrationPolicy policy(1e4, search);
  EventLog log;
  const SimTrace trace = run_simulation(apsp, flows, 3, cfg, policy, &log);
  EXPECT_GT(trace.total_truncated_solves, 0);
  EXPECT_EQ(log.truncations, trace.total_truncated_solves);
  double from_epochs = 0;
  for (const auto& e : trace.epochs) from_epochs += e.truncated_solves;
  EXPECT_EQ(static_cast<double>(trace.total_truncated_solves), from_epochs);
}

TEST(EpochObserver, TraceRecorderStandaloneMatchesEngineTrace) {
  // TraceRecorder is public: replaying the engine's stream into a second
  // recorder must reproduce the returned trace (SimTrace is *defined* by
  // the stream).
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 6, 9);
  SimConfig cfg;
  cfg.hours = 8;
  ParetoMigrationPolicy policy(1e4);
  TraceRecorder external;
  const SimTrace trace = run_simulation(apsp, flows, 3, cfg, policy, &external);
  const SimTrace replayed = external.take();
  EXPECT_EQ(replayed.epochs.size(), trace.epochs.size());
  EXPECT_EQ(replayed.initial_placement, trace.initial_placement);
  EXPECT_DOUBLE_EQ(replayed.total_cost, trace.total_cost);
  EXPECT_DOUBLE_EQ(replayed.total_comm_cost, trace.total_comm_cost);
  EXPECT_DOUBLE_EQ(replayed.total_migration_cost, trace.total_migration_cost);
  EXPECT_EQ(replayed.total_vnf_migrations, trace.total_vnf_migrations);
}

}  // namespace
}  // namespace ppdc
