#include "core/colocation.hpp"

#include <gtest/gtest.h>

#include "core/chain_search.hpp"
#include "topology/fat_tree.hpp"
#include "topology/linear.hpp"
#include "workload/vm_placement.hpp"

namespace ppdc {
namespace {

std::vector<VmFlow> random_flows(const Topology& topo, int l,
                                 std::uint64_t seed) {
  VmPlacementConfig cfg;
  cfg.num_pairs = l;
  Rng rng(seed);
  return generate_vm_flows(topo, cfg, rng);
}

TEST(Colocation, CapacityOneMatchesPlainDp) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 8, 1);
  CostModel cm(apsp, flows);
  const ColocatedPlacement co = solve_top_colocated(cm, 4, 1);
  const PlacementResult dp = solve_top_dp(cm, 4);
  EXPECT_NEAR(co.comm_cost, dp.comm_cost, 1e-9);
  EXPECT_NO_THROW(validate_placement(topo.graph, co.placement));
}

TEST(Colocation, FullCapacityCollapsesChainCost) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 8, 2);
  CostModel cm(apsp, flows);
  const ColocatedPlacement co = solve_top_colocated(cm, 5, 5);
  // All VNFs share one switch: cost = A(w) + B(w) at the best switch.
  for (std::size_t j = 1; j < co.placement.size(); ++j) {
    EXPECT_EQ(co.placement[j], co.placement[0]);
  }
  double best = std::numeric_limits<double>::infinity();
  for (const NodeId w : topo.graph.switches()) {
    best = std::min(best,
                    cm.ingress_attraction(w) + cm.egress_attraction(w));
  }
  EXPECT_NEAR(co.comm_cost, best, 1e-9);
}

TEST(Colocation, CostMonotoneNonIncreasingInCapacity) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 10, 3);
  CostModel cm(apsp, flows);
  double prev = std::numeric_limits<double>::infinity();
  for (const int cap : {1, 2, 3, 6}) {
    const double cost = solve_top_colocated(cm, 6, cap).comm_cost;
    EXPECT_LE(cost, prev + 1e-9) << "capacity=" << cap;
    prev = cost;
  }
}

TEST(Colocation, BlocksRespectCapacity) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 6, 5);
  CostModel cm(apsp, flows);
  const ColocatedPlacement co = solve_top_colocated(cm, 7, 3);
  // Runs of equal switches are at most 3 long; 3 distinct blocks total.
  int run = 1, max_run = 1, blocks = 1;
  for (std::size_t j = 1; j < co.placement.size(); ++j) {
    if (co.placement[j] == co.placement[j - 1]) {
      max_run = std::max(max_run, ++run);
    } else {
      run = 1;
      ++blocks;
    }
  }
  EXPECT_LE(max_run, 3);
  EXPECT_EQ(blocks, 3);
}

TEST(Colocation, RelaxationNeverBeatsItselfWithLessCapacity) {
  // Sanity vs the strict optimum: co-located cost with cap 2 is <= the
  // distinct-switch optimum (it is a relaxation of the constraint).
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 8, 7);
  CostModel cm(apsp, flows);
  const double strict = solve_top_exhaustive(cm, 4).objective;
  const double relaxed = solve_top_colocated(cm, 4, 2).comm_cost;
  EXPECT_LE(relaxed, strict + 1e-9);
}

TEST(Colocation, UncheckedCostMatchesManualSum) {
  const Topology topo = build_linear(5);
  const AllPairs apsp(topo.graph);
  const NodeId h1 = topo.graph.hosts()[0];
  const std::vector<VmFlow> flows{{h1, h1, 10.0, 0}};
  CostModel cm(apsp, flows);
  const auto& s = topo.graph.switches();
  const Placement repeated{s[1], s[1], s[2]};
  // A(s2)=10*2, legs: 0 + 1 -> 10, B(s3)=10*3.
  EXPECT_DOUBLE_EQ(colocated_communication_cost(cm, repeated), 60.0);
}

TEST(Colocation, RejectsBadInput) {
  const Topology topo = build_linear(3);
  const AllPairs apsp(topo.graph);
  const NodeId h1 = topo.graph.hosts()[0];
  const std::vector<VmFlow> flows{{h1, h1, 1.0, 0}};
  CostModel cm(apsp, flows);
  EXPECT_THROW(solve_top_colocated(cm, 0, 1), PpdcError);
  EXPECT_THROW(solve_top_colocated(cm, 2, 0), PpdcError);
  EXPECT_THROW(colocated_communication_cost(cm, {}), PpdcError);
  EXPECT_THROW(colocated_communication_cost(cm, {h1}), PpdcError);
}

}  // namespace
}  // namespace ppdc
