#include "core/migration_pareto.hpp"

#include <gtest/gtest.h>

#include "core/chain_search.hpp"
#include "core/pareto_front.hpp"
#include "test_support.hpp"
#include "topology/fat_tree.hpp"
#include "topology/linear.hpp"
#include "topology/misc.hpp"
#include "workload/vm_placement.hpp"

namespace ppdc {
namespace {

std::vector<VmFlow> random_flows(const Topology& topo, int l,
                                 std::uint64_t seed) {
  VmPlacementConfig cfg;
  cfg.num_pairs = l;
  Rng rng(seed);
  return generate_vm_flows(topo, cfg, rng);
}

TEST(MPareto, Fig3EndToEnd) {
  // Example 1: traffic flips from <100,1> to <1,100>; mPareto must migrate
  // f1 to s5 and f2 to s4 for migration cost 6 and communication cost 410.
  const Topology topo = build_linear(5);
  const AllPairs apsp(topo.graph);
  const auto& s = topo.graph.switches();
  const NodeId h1 = topo.graph.hosts()[0];
  const NodeId h2 = topo.graph.hosts()[1];
  std::vector<VmFlow> flows{{h1, h1, 1.0}, {h2, h2, 100.0}};
  CostModel cm(apsp, flows);
  const Placement from{s[0], s[1]};
  const MigrationResult r = solve_tom_pareto(cm, from, 1.0);
  // The paper migrates to (s5, s4); (s4, s5) ties at the same total cost
  // 416 (C_b = 6 either way, C_a = 410 either way) — accept both optima.
  const bool matches_paper = r.migration == Placement{s[4], s[3]} ||
                             r.migration == Placement{s[3], s[4]};
  EXPECT_TRUE(matches_paper);
  EXPECT_DOUBLE_EQ(r.migration_cost, 6.0);
  EXPECT_DOUBLE_EQ(r.comm_cost, 410.0);
  EXPECT_DOUBLE_EQ(r.total_cost, 416.0);
  EXPECT_EQ(r.vnfs_moved, 2);
  // 58.6% total-cost reduction quoted in the paper: 1 - 416/1004.
  EXPECT_NEAR(1.0 - r.total_cost / cm.communication_cost(from), 0.586, 0.01);
}

TEST(MPareto, NeverWorseThanStayingPut) {
  // The first parallel frontier row is the current placement, so mPareto's
  // total cost is bounded by the no-migration communication cost.
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto flows = random_flows(topo, 8, seed);
    CostModel cm(apsp, flows);
    const Placement from = solve_top_dp(cm, 4).placement;
    // Perturb rates to force a re-optimization.
    auto flows2 = flows;
    for (std::size_t i = 0; i < flows2.size(); ++i) {
      flows2[i].rate = flows[flows.size() - 1 - i].rate;
    }
    CostModel cm2(apsp, flows2);
    const MigrationResult r = solve_tom_pareto(cm2, from, 100.0);
    EXPECT_LE(r.total_cost, cm2.communication_cost(from) + 1e-9);
  }
}

TEST(MPareto, ZeroMuJumpsToFreshOptimumCost) {
  // With free migration the chosen frontier must reach the communication
  // cost of the fresh Algorithm 3 placement.
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 6, 4);
  CostModel cm(apsp, flows);
  const auto& s = topo.graph.switches();
  const Placement from{s[0], s[1], s[2]};
  const MigrationResult r = solve_tom_pareto(cm, from, 0.0);
  const PlacementResult fresh = solve_top_dp(cm, 3);
  EXPECT_LE(r.total_cost, fresh.comm_cost + 1e-9);
}

TEST(MPareto, HugeMuStaysPut) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 6, 5);
  CostModel cm(apsp, flows);
  const auto& s = topo.graph.switches();
  const Placement from{s[0], s[8], s[15]};
  const MigrationResult r = solve_tom_pareto(cm, from, 1e12);
  EXPECT_EQ(r.migration, from);
  EXPECT_EQ(r.vnfs_moved, 0);
  EXPECT_DOUBLE_EQ(r.migration_cost, 0.0);
}

TEST(MPareto, MigrationIsCollisionFree) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto flows = random_flows(topo, 8, seed * 3);
    CostModel cm(apsp, flows);
    const auto& s = topo.graph.switches();
    const Placement from{s[0], s[5], s[10], s[15]};
    const MigrationResult r = solve_tom_pareto(cm, from, 10.0);
    EXPECT_NO_THROW(validate_placement(topo.graph, r.migration));
  }
}

TEST(MPareto, TotalCostDecomposes) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 8, 9);
  CostModel cm(apsp, flows);
  const auto& s = topo.graph.switches();
  const Placement from{s[1], s[6], s[12]};
  const MigrationResult r = solve_tom_pareto(cm, from, 25.0);
  EXPECT_NEAR(r.total_cost, r.migration_cost + r.comm_cost, 1e-9);
  EXPECT_NEAR(r.migration_cost, cm.migration_cost(from, r.migration, 25.0),
              1e-9);
  EXPECT_NEAR(r.comm_cost, cm.communication_cost(r.migration), 1e-9);
}

TEST(MPareto, FrontierPointsTradeOffMonotonically) {
  // Along the parallel frontiers, migration cost grows row by row; the
  // first point has zero C_b.
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 10, 11);
  CostModel cm(apsp, flows);
  const auto& s = topo.graph.switches();
  const Placement from{s[0], s[7], s[14]};
  const MigrationResult r = solve_tom_pareto(cm, from, 5.0);
  ASSERT_FALSE(r.frontier_points.empty());
  EXPECT_DOUBLE_EQ(r.frontier_points.front().migration_cost, 0.0);
  for (std::size_t i = 0; i + 1 < r.frontier_points.size(); ++i) {
    EXPECT_LE(r.frontier_points[i].migration_cost,
              r.frontier_points[i + 1].migration_cost + 1e-9);
  }
}

TEST(MPareto, ExhaustiveFrontiersNeverWorseThanParallel) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto flows = random_flows(topo, 6, seed + 20);
    CostModel cm(apsp, flows);
    const auto& s = topo.graph.switches();
    const Placement from{s[2], s[9], s[17]};
    const MigrationResult parallel = solve_tom_pareto(cm, from, 10.0);
    ParetoMigrationOptions opt;
    opt.exhaustive_frontiers = true;
    const MigrationResult full = solve_tom_pareto(cm, from, 10.0, opt);
    EXPECT_LE(full.total_cost, parallel.total_cost + 1e-9) << "seed=" << seed;
  }
}

TEST(MPareto, CloseToExhaustiveOptimalOnSmallInstances) {
  // Fig. 11(a): mPareto performs within 5-10% of Optimal. Allow 20% slack
  // on adversarial random topologies.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Topology topo = build_random_connected(8, 6, 6, 0.5, 2.0, seed);
    const AllPairs apsp(topo.graph);
    const auto flows = random_flows(topo, 5, seed + 31);
    CostModel cm(apsp, flows);
    const auto& s = topo.graph.switches();
    const Placement from{s[0], s[1], s[2]};
    const MigrationResult pareto = solve_tom_pareto(cm, from, 1.0);
    const double opt = testing::brute_force_tom_cost(cm, from, 1.0);
    EXPECT_GE(pareto.total_cost + 1e-9, opt);
    EXPECT_LE(pareto.total_cost, 1.2 * opt + 1e-9) << "seed=" << seed;
  }
}

TEST(EvaluateMigration, CountsAndCosts) {
  const Topology topo = build_linear(5);
  const AllPairs apsp(topo.graph);
  const auto& s = topo.graph.switches();
  const NodeId h1 = topo.graph.hosts()[0];
  const std::vector<VmFlow> flows{{h1, h1, 2.0}};
  CostModel cm(apsp, flows);
  const MigrationResult r =
      evaluate_migration(cm, {s[0], s[1]}, {s[0], s[2]}, 10.0);
  EXPECT_EQ(r.vnfs_moved, 1);
  EXPECT_DOUBLE_EQ(r.migration_cost, 10.0);
  EXPECT_NEAR(r.total_cost, r.migration_cost + r.comm_cost, 1e-12);
}

TEST(ParetoFrontTest, ExtractsNonDominatedSubset) {
  std::vector<FrontierPoint> pts{{0.0, 10.0, true},
                                 {1.0, 8.0, true},
                                 {2.0, 9.0, true},   // dominated by (1,8)
                                 {3.0, 5.0, true},
                                 {4.0, 5.0, true}};  // dominated by (3,5)
  const auto front = pareto_front(pts);
  ASSERT_EQ(front.size(), 3u);
  EXPECT_DOUBLE_EQ(front[0].migration_cost, 0.0);
  EXPECT_DOUBLE_EQ(front[1].migration_cost, 1.0);
  EXPECT_DOUBLE_EQ(front[2].migration_cost, 3.0);
  EXPECT_TRUE(is_mutually_nondominated(front));
}

TEST(ParetoFrontTest, DetectsConvexityAndConcavity) {
  // Convex: slopes -4, -1 (increasing).
  std::vector<FrontierPoint> convex{{0, 10, true}, {1, 6, true}, {3, 4, true}};
  EXPECT_TRUE(is_convex_front(pareto_front(convex)));
  // Concave kink: slopes -1 then -4.
  std::vector<FrontierPoint> concave{{0, 10, true}, {2, 8, true}, {3, 2, true}};
  EXPECT_FALSE(is_convex_front(pareto_front(concave)));
}

TEST(ParetoFrontTest, SmallFrontsAreTriviallyConvex) {
  EXPECT_TRUE(is_convex_front({}));
  EXPECT_TRUE(is_convex_front({{0, 1, true}}));
  EXPECT_TRUE(is_convex_front({{0, 1, true}, {1, 0, true}}));
}

TEST(ParetoFrontTest, MigrationFrontierCloudYieldsNondominatedFront) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 12, 55);
  CostModel cm(apsp, flows);
  const auto& s = topo.graph.switches();
  const Placement from{s[0], s[6], s[12], s[18]};
  const MigrationResult r = solve_tom_pareto(cm, from, 50.0);
  const auto front = pareto_front(r.frontier_points);
  EXPECT_FALSE(front.empty());
  EXPECT_TRUE(is_mutually_nondominated(front));
}

}  // namespace
}  // namespace ppdc
