#include "core/stroll_primal_dual.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "topology/fat_tree.hpp"
#include "topology/linear.hpp"
#include "topology/misc.hpp"

namespace ppdc {
namespace {

TEST(PrimalDual, ZeroQuotaIsShortestPath) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const NodeId s = topo.racks[RackIdx{0}][0];
  const NodeId t = topo.racks[RackIdx{4}][1];
  const StrollResult r = solve_top1_primal_dual(apsp, s, t, 0);
  EXPECT_DOUBLE_EQ(r.cost, apsp.cost(s, t));
}

TEST(PrimalDual, ProducesValidPlacements) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const NodeId s = topo.racks[RackIdx{0}][0];
  const NodeId t = topo.racks[RackIdx{5}][0];
  for (int n = 1; n <= 8; ++n) {
    const StrollResult r = solve_top1_primal_dual(apsp, s, t, n);
    ASSERT_EQ(r.placement.size(), static_cast<std::size_t>(n)) << "n=" << n;
    std::vector<NodeId> sorted = r.placement;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
    for (const NodeId w : r.placement) {
      EXPECT_TRUE(topo.graph.is_switch(w));
      EXPECT_NE(w, s);
      EXPECT_NE(w, t);
    }
    EXPECT_EQ(r.walk.front(), s);
    EXPECT_EQ(r.walk.back(), t);
  }
}

TEST(PrimalDual, CostIsWalkLength) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const NodeId s = topo.racks[RackIdx{1}][0];
  const NodeId t = topo.racks[RackIdx{6}][1];
  const StrollResult r = solve_top1_primal_dual(apsp, s, t, 5, 3.0);
  double len = 0.0;
  for (std::size_t i = 0; i + 1 < r.walk.size(); ++i) {
    len += 3.0 * apsp.cost(r.walk[i], r.walk[i + 1]);
  }
  EXPECT_NEAR(r.cost, len, 1e-9);
}

TEST(PrimalDual, WithinGuaranteeOnSmallInstances) {
  // Theorem 2: the stroll is within 2+ε of optimal. Our grow/prune variant
  // is checked against brute force with the paper's factor plus ε slack.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Topology topo = build_random_connected(7, 2, 6, 0.5, 3.0, seed);
    const AllPairs apsp(topo.graph);
    const NodeId s = topo.graph.hosts()[0];
    const NodeId t = topo.graph.hosts()[1];
    for (int n = 1; n <= 4; ++n) {
      const StrollResult r = solve_top1_primal_dual(apsp, s, t, n);
      const double opt = testing::brute_force_stroll_cost(apsp, s, t, n);
      EXPECT_GE(r.cost + 1e-9, opt) << "seed=" << seed << " n=" << n;
      EXPECT_LE(r.cost, 2.5 * opt + 1e-9) << "seed=" << seed << " n=" << n;
    }
  }
}

TEST(PrimalDual, HandlesNTour) {
  const Topology topo = build_linear(5);
  const AllPairs apsp(topo.graph);
  const NodeId h1 = topo.graph.hosts()[0];
  const StrollResult r = solve_top1_primal_dual(apsp, h1, h1, 2);
  EXPECT_EQ(r.placement.size(), 2u);
  // Optimal 2-tour costs 4 (via s1, s2); allow the 2x factor.
  EXPECT_LE(r.cost, 8.0 + 1e-9);
  EXPECT_GE(r.cost, 4.0 - 1e-9);
}

TEST(PrimalDual, RateScaling) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const NodeId s = topo.racks[RackIdx{0}][0];
  const NodeId t = topo.racks[RackIdx{3}][0];
  const StrollResult r1 = solve_top1_primal_dual(apsp, s, t, 4, 1.0);
  const StrollResult r7 = solve_top1_primal_dual(apsp, s, t, 4, 7.0);
  EXPECT_NEAR(r7.cost, 7.0 * r1.cost, 1e-6);
}

TEST(PrimalDual, RejectsBadInput) {
  const Topology topo = build_linear(3);
  const AllPairs apsp(topo.graph);
  const NodeId h1 = topo.graph.hosts()[0];
  const NodeId h2 = topo.graph.hosts()[1];
  EXPECT_THROW(solve_top1_primal_dual(apsp, h1, h2, 9), PpdcError);
  EXPECT_THROW(solve_top1_primal_dual(apsp, h1, h2, -1), PpdcError);
  EXPECT_THROW(solve_top1_primal_dual(apsp, h1, h2, 1, 0.0), PpdcError);
}

TEST(PrimalDual, DpStrollTypicallyNoWorse) {
  // §VI: DP-Stroll "solidly outperforms" the primal-dual guarantee; in
  // practice the DP beats or ties the grow/prune result on fat-trees.
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const NodeId s = topo.racks[RackIdx{0}][0];
  const NodeId t = topo.racks[RackIdx{7}][1];
  double dp_total = 0.0, pd_total = 0.0;
  for (int n = 2; n <= 8; ++n) {
    dp_total += solve_top1_dp(apsp, s, t, n).cost;
    pd_total += solve_top1_primal_dual(apsp, s, t, n).cost;
  }
  EXPECT_LE(dp_total, pd_total + 1e-9);
}

}  // namespace
}  // namespace ppdc
