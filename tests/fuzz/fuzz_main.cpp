// Deterministic replay driver for the serialize fuzz entry: feeds every
// file under the given corpus directory (sorted by name, so runs are
// reproducible) through all three loader modes of
// LLVMFuzzerTestOneInput. Registered as the tier1 fuzz_smoke CTest —
// under the sanitize preset this replays the whole malformed-artifact
// corpus through the loaders with ASan+UBSan watching. A crash or
// sanitizer abort fails the test; clean rejection is silent.
//
// Usage: fuzz_replay <corpus-dir>
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: fuzz_replay <corpus-dir>\n";
    return 2;
  }
  const std::filesystem::path dir(argv[1]);
  if (!std::filesystem::is_directory(dir)) {
    std::cerr << "fuzz_replay: not a directory: " << dir << "\n";
    return 2;
  }
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".txt") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::cerr << "fuzz_replay: no .txt corpus files in " << dir << "\n";
    return 2;
  }

  // Footer-less corpus entries make the loaders warn on stderr; that
  // chatter is expected here, so keep only this driver's own summary.
  std::size_t replayed = 0;
  for (const auto& path : files) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string body = std::move(buf).str();
    // Each artifact goes through every loader: its own (exercises the
    // deep parse paths) and the two mismatched ones (exercises the
    // header rejection paths).
    for (std::uint8_t mode = 0; mode < 3; ++mode) {
      std::string input;
      input.reserve(body.size() + 1);
      input.push_back(static_cast<char>(mode));
      input += body;
      LLVMFuzzerTestOneInput(
          reinterpret_cast<const std::uint8_t*>(input.data()), input.size());
      ++replayed;
    }
  }
  std::cout << "fuzz_replay: " << replayed << " replays over " << files.size()
            << " corpus file(s), no crashes\n";
  return 0;
}
