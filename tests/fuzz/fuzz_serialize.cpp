// Fuzz entry over the io/serialize loaders (DESIGN.md §13). The first
// input byte selects the loader (topology / flows / placement); the rest
// is the artifact text. The loaders' contract (error_contract_test) is
// that every malformed input is rejected with a PpdcError naming the
// offending line — so that exception is swallowed here, and anything
// else that escapes (a crash, a sanitizer abort, a different exception
// type) is a finding.
//
// Two drivers share this entry point:
//   - fuzz_replay (always built): deterministically replays every file
//     in tests/corpus/ through all three loaders — the tier1 fuzz_smoke
//     CTest, which the sanitize preset runs under ASan+UBSan.
//   - fuzz_serialize (-DPPDC_FUZZ=ON, clang only): the libFuzzer binary
//     for open-ended exploration, seeded from the same corpus.
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "io/serialize.hpp"
#include "util/require.hpp"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  const int mode = data[0] % 3;
  std::istringstream is(
      std::string(reinterpret_cast<const char*>(data + 1), size - 1));
  try {
    switch (mode) {
      case 0:
        ppdc::load_topology(is);
        break;
      case 1:
        ppdc::load_flows(is);
        break;
      default:
        ppdc::load_placement(is);
        break;
    }
  } catch (const ppdc::PpdcError&) {
    // Documented rejection path — not a finding.
  }
  return 0;
}
