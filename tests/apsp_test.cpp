#include "graph/apsp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "topology/fat_tree.hpp"
#include "topology/linear.hpp"
#include "topology/misc.hpp"

namespace ppdc {
namespace {

TEST(AllPairs, SymmetricAndZeroDiagonal) {
  const Topology t = build_fat_tree(4);
  const AllPairs apsp(t.graph);
  for (NodeId u = 0; u < t.graph.num_nodes(); u += 3) {
    EXPECT_DOUBLE_EQ(apsp.cost(u, u), 0.0);
    for (NodeId v = 0; v < t.graph.num_nodes(); v += 5) {
      EXPECT_DOUBLE_EQ(apsp.cost(u, v), apsp.cost(v, u));
    }
  }
}

TEST(AllPairs, FatTreeHostDistances) {
  const Topology t = build_fat_tree(4);
  const AllPairs apsp(t.graph);
  // Same rack: host - edge - host = 2 hops.
  const NodeId h0 = t.racks[RackIdx{0}][0];
  const NodeId h1 = t.racks[RackIdx{0}][1];
  EXPECT_DOUBLE_EQ(apsp.cost(h0, h1), 2.0);
  // Same pod, different rack: host-edge-agg-edge-host = 4 hops.
  const NodeId h2 = t.racks[RackIdx{1}][0];
  EXPECT_DOUBLE_EQ(apsp.cost(h0, h2), 4.0);
  // Different pods: host-edge-agg-core-agg-edge-host = 6 hops.
  const NodeId h3 = t.racks[RackIdx{2}][0];
  EXPECT_DOUBLE_EQ(apsp.cost(h0, h3), 6.0);
}

TEST(AllPairs, DiameterOfFatTree) {
  const Topology t = build_fat_tree(4);
  const AllPairs apsp(t.graph);
  EXPECT_DOUBLE_EQ(apsp.diameter(), 6.0);
}

TEST(AllPairs, MinSwitchDistanceIsOneHop) {
  const Topology t = build_fat_tree(4);
  const AllPairs apsp(t.graph);
  EXPECT_DOUBLE_EQ(apsp.min_switch_distance(), 1.0);
}

TEST(AllPairs, MinSwitchDistanceZeroOnSingleSwitchTopologies) {
  // Regression: with a single switch there is no inter-switch pair, and
  // the bound used to stay +inf — sending every B&B lower bound that
  // multiplies by it to infinity and pruning all feasible chains.
  const Topology linear = build_linear(1);  // h1 - s1 - h2
  const AllPairs a1(linear.graph);
  EXPECT_DOUBLE_EQ(a1.min_switch_distance(), 0.0);
  EXPECT_TRUE(std::isfinite(100.0 * a1.min_switch_distance()));

  const Topology star = build_star(1);  // hub + one leaf: two switches
  const AllPairs a2(star.graph);
  EXPECT_DOUBLE_EQ(a2.min_switch_distance(), 1.0);
}

TEST(AllPairs, PathEndpointsAndContinuity) {
  const Topology t = build_fat_tree(4);
  const AllPairs apsp(t.graph);
  const NodeId a = t.racks[RackIdx{0}][0];
  const NodeId b = t.racks[RackIdx{3}][1];
  const auto path = apsp.path(a, b);
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(path.front(), a);
  EXPECT_EQ(path.back(), b);
  double len = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    ASSERT_TRUE(t.graph.has_edge(path[i], path[i + 1]));
    len += t.graph.edge_weight(path[i], path[i + 1]);
  }
  EXPECT_DOUBLE_EQ(len, apsp.cost(a, b));
}

TEST(AllPairs, PathLengthNodes) {
  const Topology t = build_fat_tree(4);
  const AllPairs apsp(t.graph);
  EXPECT_EQ(apsp.path_length_nodes(0, 0), 1);
  const NodeId h0 = t.racks[RackIdx{0}][0];
  const NodeId h1 = t.racks[RackIdx{0}][1];
  EXPECT_EQ(apsp.path_length_nodes(h0, h1), 3);  // h - edge - h
}

TEST(AllPairs, WeightedGraphUsesDijkstra) {
  const Topology t = build_random_connected(12, 4, 10, 0.5, 3.0, 99);
  const AllPairs apsp(t.graph);
  // Spot check against a direct Dijkstra run.
  const auto ref = dijkstra(t.graph, 0);
  for (NodeId v = 0; v < t.graph.num_nodes(); ++v) {
    EXPECT_NEAR(apsp.cost(0, v), ref.dist[static_cast<std::size_t>(v)],
                1e-12);
  }
}

TEST(AllPairs, TriangleInequalityHolds) {
  const Topology t = build_random_connected(20, 8, 18, 0.5, 4.0, 7);
  const AllPairs apsp(t.graph);
  EXPECT_TRUE(apsp.check_triangle_inequality(2000, 13));
}

TEST(AllPairs, RejectsDisconnectedGraph) {
  Graph g;
  g.add_node(NodeKind::kSwitch);
  g.add_node(NodeKind::kSwitch);
  EXPECT_THROW(AllPairs{g}, PpdcError);
}

TEST(AllPairs, RejectsEmptyGraph) {
  Graph g;
  EXPECT_THROW(AllPairs{g}, PpdcError);
}

}  // namespace
}  // namespace ppdc
