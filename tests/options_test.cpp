#include "util/options.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace ppdc {
namespace {

Options parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Options::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Options, EqualsSyntax) {
  const auto o = parse({"--k=8", "--name=test"});
  EXPECT_EQ(o.get_int("k", 0), 8);
  EXPECT_EQ(o.get_string("name", ""), "test");
}

TEST(Options, SpaceSyntax) {
  const auto o = parse({"--trials", "20"});
  EXPECT_EQ(o.get_int("trials", 0), 20);
}

TEST(Options, BareFlagIsTrue) {
  const auto o = parse({"--verbose"});
  EXPECT_TRUE(o.get_bool("verbose", false));
}

TEST(Options, Fallbacks) {
  const auto o = parse({});
  EXPECT_EQ(o.get_int("missing", 7), 7);
  EXPECT_EQ(o.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(o.get_string("missing", "x"), "x");
  EXPECT_FALSE(o.get_bool("missing", false));
  EXPECT_FALSE(o.has("missing"));
}

TEST(Options, DoubleParsing) {
  const auto o = parse({"--mu=1e4"});
  EXPECT_DOUBLE_EQ(o.get_double("mu", 0.0), 1e4);
}

TEST(Options, RejectsNonInteger) {
  const auto o = parse({"--k=abc"});
  EXPECT_THROW(o.get_int("k", 0), PpdcError);
}

TEST(Options, RejectsNonBoolean) {
  const auto o = parse({"--flag=maybe"});
  EXPECT_THROW(o.get_bool("flag", false), PpdcError);
}

TEST(Options, BooleanSpellings) {
  EXPECT_TRUE(parse({"--a=yes"}).get_bool("a", false));
  EXPECT_TRUE(parse({"--a=1"}).get_bool("a", false));
  EXPECT_TRUE(parse({"--a=on"}).get_bool("a", false));
  EXPECT_FALSE(parse({"--a=no"}).get_bool("a", true));
  EXPECT_FALSE(parse({"--a=0"}).get_bool("a", true));
  EXPECT_FALSE(parse({"--a=off"}).get_bool("a", true));
}

TEST(Options, RejectsPositionalArgument) {
  std::vector<const char*> argv{"prog", "positional"};
  EXPECT_THROW(Options::parse(2, argv.data()), PpdcError);
}

TEST(Options, RestrictToCatchesTypos) {
  const auto o = parse({"--trils=20"});
  EXPECT_THROW(o.restrict_to({"trials"}), PpdcError);
  EXPECT_NO_THROW(o.restrict_to({"trils"}));
}

TEST(Options, KeysLists) {
  const auto o = parse({"--b=2", "--a=1"});
  const auto ks = o.keys();
  ASSERT_EQ(ks.size(), 2u);
  EXPECT_EQ(ks[0], "a");
  EXPECT_EQ(ks[1], "b");
}

}  // namespace
}  // namespace ppdc
