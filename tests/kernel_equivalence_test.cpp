// Bit-exact equivalence suite for the flattened hot kernels (DESIGN.md
// §11). The flat structure-of-arrays rewrite of StrollTable and the
// blocked attraction rescans of CostModel were engineered to preserve
// floating-point results to the last ulp: every candidate argmin keeps
// the strict-< first-win tie-break of an increasing-index scan, and
// every accumulator adds its terms in the original flow (or group)
// order. This suite pins that contract with == comparisons against
//
//   * RefStrollTable / ref_solve_top_dp / ref_solve_tom_pareto — the
//     pre-flattening (seed) implementations, embedded here verbatim so
//     they stay compilable as the production code evolves;
//   * naive per-switch flow-order attraction sums for CostModel.
//
// Any EXPECT_EQ failure on a double below is a behaviour change, not
// noise: tolerances would defeat the purpose.
#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/cost_model.hpp"
#include "core/frontier.hpp"
#include "core/migration_pareto.hpp"
#include "core/placement_dp.hpp"
#include "core/stroll_dp.hpp"
#include "graph/apsp.hpp"
#include "topology/fat_tree.hpp"
#include "util/indexed_vector.hpp"
#include "workload/vm_placement.hpp"

namespace ppdc {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------------
// Reference: the seed StrollTable (per-level IndexedVectors, linear-scan
// dedup, per-use metric products). Verbatim from the pre-flattening
// implementation, except that the n_distinct == 0 && s == t query returns
// the fixed single-node walk {s} — that bugfix changed the *contract*
// (walks never repeat consecutive nodes) and is regression-tested in
// stroll_dp_test.cpp, so the reference follows the fixed contract here.
// ---------------------------------------------------------------------------
class RefStrollTable {
 public:
  RefStrollTable(const AllPairs& apsp, NodeId destination, double rate = 1.0,
                 std::vector<NodeId> universe = {})
      : apsp_(&apsp), t_(destination), rate_(rate) {
    const Graph& g = apsp.graph();
    if (universe.empty()) {
      switches_ = IndexedVector<CandidateIdx, NodeId>(g.switches());
    } else {
      switches_ = IndexedVector<CandidateIdx, NodeId>(std::move(universe));
    }
    switch_index_.assign(static_cast<std::size_t>(g.num_nodes()),
                         CandidateIdx::invalid());
    for (const CandidateIdx i : switches_.ids()) {
      switch_index_[static_cast<std::size_t>(switches_[i])] = i;
    }
  }

  StrollResult find(NodeId s, int n_distinct) {
    const Graph& g = apsp_->graph();
    StrollResult out;
    if (n_distinct == 0) {
      if (s == t_) {
        out.cost = 0.0;
        out.walk = {s};
        out.edges_used = 0;
        return out;
      }
      out.cost = metric(s, t_);
      out.walk = {s, t_};
      out.edges_used = 1;
      return out;
    }

    const int r_cap = n_distinct + 1 + std::max(16, n_distinct * 2);
    std::vector<NodeId> best_partial;

    for (int r = n_distinct + 1; r <= r_cap; ++r) {
      extend(r);
      const auto [total, first_hop] = source_row(s, r);
      if (total == kInf) continue;

      std::vector<NodeId> walk{s};
      std::vector<NodeId> distinct;
      NodeId cur = first_hop;
      int budget = r - 1;
      while (true) {
        walk.push_back(cur);
        if (cur != s && cur != t_ && g.is_switch(cur) &&
            std::find(distinct.begin(), distinct.end(), cur) ==
                distinct.end()) {
          distinct.push_back(cur);
        }
        if (budget == 0) break;
        const CandidateIdx row =
            switch_index_[static_cast<std::size_t>(cur)];
        cur = succ_[static_cast<std::size_t>(budget - 1)][row];
        --budget;
      }

      if (static_cast<int>(distinct.size()) >
          static_cast<int>(best_partial.size())) {
        best_partial = distinct;
      }
      if (static_cast<int>(distinct.size()) >= n_distinct) {
        out.cost = total;
        out.walk = std::move(walk);
        distinct.resize(static_cast<std::size_t>(n_distinct));
        out.placement = std::move(distinct);
        out.edges_used = r;
        return out;
      }
    }

    out.used_fallback = true;
    std::vector<NodeId> seq = best_partial;
    while (static_cast<int>(seq.size()) < n_distinct) {
      const NodeId from = seq.empty() ? s : seq.back();
      double best_d = kInf;
      NodeId best_sw = kInvalidNode;
      for (const NodeId w : switches_) {
        if (w == s || w == t_) continue;
        if (std::find(seq.begin(), seq.end(), w) != seq.end()) continue;
        const double d = apsp_->cost(from, w);
        if (d < best_d) {
          best_d = d;
          best_sw = w;
        }
      }
      seq.push_back(best_sw);
    }
    out.walk = {s};
    out.walk.insert(out.walk.end(), seq.begin(), seq.end());
    out.walk.push_back(t_);
    out.cost = 0.0;
    for (std::size_t i = 0; i + 1 < out.walk.size(); ++i) {
      out.cost += metric(out.walk[i], out.walk[i + 1]);
    }
    out.placement = std::move(seq);
    out.edges_used = static_cast<int>(out.walk.size()) - 1;
    return out;
  }

  bool satisfies_theorem3(const StrollResult& result) const {
    if (result.used_fallback || result.walk.size() < 2) return false;
    const int r = result.edges_used;
    if (r > static_cast<int>(cost_.size())) return false;
    for (int i = 1; i < r; ++i) {
      const NodeId u = result.walk[static_cast<std::size_t>(i)];
      const CandidateIdx row = switch_index_[static_cast<std::size_t>(u)];
      if (!row.valid()) return false;
      const auto& level = cost_[static_cast<std::size_t>(r - i - 1)];
      const double suffix = level[row];
      const double global_min =
          *std::min_element(level.begin(), level.end());
      if (suffix > global_min + 1e-9) return false;
    }
    return true;
  }

 private:
  void extend(int e_max) {
    const std::size_t rows = switches_.size();
    while (static_cast<int>(cost_.size()) < e_max) {
      const int e = static_cast<int>(cost_.size()) + 1;
      IndexedVector<CandidateIdx, double> ce(rows, kInf);
      IndexedVector<CandidateIdx, NodeId> se(rows, kInvalidNode);
      if (e == 1) {
        for (const CandidateIdx i : switches_.ids()) {
          const NodeId u = switches_[i];
          if (u == t_) continue;
          ce[i] = metric(u, t_);
          se[i] = t_;
        }
      } else {
        const auto& prev_cost = cost_.back();
        const auto& prev_succ = succ_.back();
        for (const CandidateIdx i : switches_.ids()) {
          const NodeId u = switches_[i];
          double best = kInf;
          NodeId best_w = kInvalidNode;
          for (const CandidateIdx k : switches_.ids()) {
            const NodeId w = switches_[k];
            if (w == u || w == t_) continue;
            if (prev_succ[k] == u) continue;
            if (prev_cost[k] == kInf) continue;
            const double cand = metric(u, w) + prev_cost[k];
            if (cand < best) {
              best = cand;
              best_w = w;
            }
          }
          ce[i] = best;
          se[i] = best_w;
        }
      }
      cost_.push_back(std::move(ce));
      succ_.push_back(std::move(se));
    }
  }

  std::pair<double, NodeId> source_row(NodeId s, int e) const {
    if (e == 1) {
      if (s == t_) return {kInf, kInvalidNode};
      return {metric(s, t_), t_};
    }
    const auto& prev_cost = cost_[static_cast<std::size_t>(e - 2)];
    const auto& prev_succ = succ_[static_cast<std::size_t>(e - 2)];
    double best = kInf;
    NodeId best_w = kInvalidNode;
    for (const CandidateIdx k : switches_.ids()) {
      const NodeId w = switches_[k];
      if (w == s || w == t_) continue;
      if (prev_succ[k] == s) continue;
      if (prev_cost[k] == kInf) continue;
      const double cand = metric(s, w) + prev_cost[k];
      if (cand < best) {
        best = cand;
        best_w = w;
      }
    }
    return {best, best_w};
  }

  double metric(NodeId u, NodeId v) const { return rate_ * apsp_->cost(u, v); }

  const AllPairs* apsp_;
  NodeId t_;
  double rate_;
  IndexedVector<CandidateIdx, NodeId> switches_;
  std::vector<CandidateIdx> switch_index_;
  std::vector<IndexedVector<CandidateIdx, double>> cost_;
  std::vector<IndexedVector<CandidateIdx, NodeId>> succ_;
};

// ---------------------------------------------------------------------------
// Reference: the seed Algorithm 3 driver, on top of RefStrollTable.
// solve_top_dp's own source is unchanged by the flattening; what this
// pins is that swapping the stroll engine underneath cannot change any
// placement or cost bit.
// ---------------------------------------------------------------------------
std::vector<NodeId> ref_top_candidates(const std::vector<NodeId>& switches,
                                       int limit, auto&& key) {
  if (limit <= 0 || static_cast<std::size_t>(limit) >= switches.size()) {
    return switches;
  }
  std::vector<NodeId> out = switches;
  std::nth_element(out.begin(), out.begin() + limit, out.end(),
                   [&](NodeId a, NodeId b) { return key(a) < key(b); });
  out.resize(static_cast<std::size_t>(limit));
  return out;
}

PlacementResult ref_solve_top_dp(const CostModel& model, int n,
                                 const TopDpOptions& options = {}) {
  const AllPairs& apsp = model.apsp();
  const auto& switches = model.placement_candidates();
  PlacementResult best;
  double best_cost = kInf;

  if (n == 1) {
    for (const NodeId w : switches) {
      const double c =
          model.ingress_attraction(w) + model.egress_attraction(w);
      if (c < best_cost) {
        best_cost = c;
        best.placement = {w};
      }
    }
    best.comm_cost = best_cost;
    return best;
  }

  if (n == 2) {
    const std::vector<NodeId> ingress_candidates = ref_top_candidates(
        switches, options.candidate_limit,
        [&](NodeId w) { return model.ingress_attraction(w); });
    const std::vector<NodeId> egress_candidates = ref_top_candidates(
        switches, options.candidate_limit,
        [&](NodeId w) { return model.egress_attraction(w); });
    for (const NodeId a : ingress_candidates) {
      for (const NodeId b : egress_candidates) {
        if (a == b) continue;
        const double c = model.ingress_attraction(a) +
                         model.total_rate() * apsp.cost(a, b) +
                         model.egress_attraction(b);
        if (c < best_cost) {
          best_cost = c;
          best.placement = {a, b};
        }
      }
    }
    if (best_cost == kInf && options.candidate_limit > 0) {
      return ref_solve_top_dp(model, n, TopDpOptions{});
    }
    best.comm_cost = best_cost;
    return best;
  }

  const double rate = model.total_rate() > 0.0 ? model.total_rate() : 1.0;
  const std::vector<NodeId> egress_candidates = ref_top_candidates(
      switches, options.candidate_limit,
      [&](NodeId w) { return model.egress_attraction(w); });
  const std::vector<NodeId> ingress_candidates = ref_top_candidates(
      switches, options.candidate_limit,
      [&](NodeId w) { return model.ingress_attraction(w); });
  for (const NodeId egress : egress_candidates) {
    RefStrollTable table(apsp, egress, rate, switches);
    for (const NodeId ingress : ingress_candidates) {
      if (ingress == egress) continue;
      StrollResult stroll = table.find(ingress, n - 2);
      Placement p;
      p.reserve(static_cast<std::size_t>(n));
      p.push_back(ingress);
      p.insert(p.end(), stroll.placement.begin(), stroll.placement.end());
      p.push_back(egress);
      const double c = model.communication_cost(p);
      if (c < best_cost) {
        best_cost = c;
        best.placement = std::move(p);
        best.used_fallback = stroll.used_fallback;
      }
    }
  }
  if (best_cost == kInf && options.candidate_limit > 0) {
    return ref_solve_top_dp(model, n, TopDpOptions{});
  }
  best.comm_cost = best_cost;
  return best;
}

// Reference Algorithm 5 on top of ref_solve_top_dp and the public
// frontier API. The deadline poll of the production scan is omitted: the
// suite only runs it with the default (unlimited) budget, where the poll
// never stops the enumeration.
MigrationResult ref_solve_tom_pareto(
    const CostModel& model, const Placement& from, double mu,
    const ParetoMigrationOptions& options = {}) {
  const PlacementResult fresh =
      ref_solve_top_dp(model, static_cast<int>(from.size()),
                       options.placement);
  const MigrationFrontiers frontiers(model.apsp(), from, fresh.placement);

  MigrationResult best;
  double best_total = kInf;
  std::vector<FrontierPoint> points;
  auto consider = [&](const Placement& fr, bool record_point) {
    const bool free = is_collision_free(fr);
    const double cb = model.migration_cost(from, fr, mu);
    const double ca = model.total_rate() * model.chain_cost(fr) +
                      model.ingress_attraction(fr.front()) +
                      model.egress_attraction(fr.back());
    if (record_point) {
      points.push_back(FrontierPoint{cb, ca, free});
    }
    if (free && cb + ca < best_total) {
      best_total = cb + ca;
      best.migration = fr;
      best.migration_cost = cb;
      best.comm_cost = ca;
    }
  };

  for (const Placement& fr : frontiers.all_parallel_frontiers()) {
    consider(fr, /*record_point=*/true);
  }
  if (options.exhaustive_frontiers &&
      frontiers.frontier_count() <= options.frontier_budget) {
    frontiers.for_each_frontier_until(
        options.frontier_budget, [&](const Placement& fr) {
          consider(fr, /*record_point=*/false);
          return true;
        });
  }

  best.total_cost = best_total;
  int moved = 0;
  for (std::size_t j = 0; j < from.size(); ++j) {
    if (from[j] != best.migration[j]) ++moved;
  }
  best.vnfs_moved = moved;
  best.frontier_points = std::move(points);
  return best;
}

// ---------------------------------------------------------------------------
// Comparison helpers: every double compares with ==.
// ---------------------------------------------------------------------------
void expect_stroll_eq(const StrollResult& got, const StrollResult& want) {
  EXPECT_EQ(got.cost, want.cost);
  EXPECT_EQ(got.walk, want.walk);
  EXPECT_EQ(got.placement, want.placement);
  EXPECT_EQ(got.edges_used, want.edges_used);
  EXPECT_EQ(got.used_fallback, want.used_fallback);
}

void expect_placement_eq(const PlacementResult& got,
                         const PlacementResult& want) {
  EXPECT_EQ(got.placement, want.placement);
  EXPECT_EQ(got.comm_cost, want.comm_cost);
  EXPECT_EQ(got.used_fallback, want.used_fallback);
}

void expect_migration_eq(const MigrationResult& got,
                         const MigrationResult& want) {
  EXPECT_EQ(got.migration, want.migration);
  EXPECT_EQ(got.total_cost, want.total_cost);
  EXPECT_EQ(got.migration_cost, want.migration_cost);
  EXPECT_EQ(got.comm_cost, want.comm_cost);
  EXPECT_EQ(got.vnfs_moved, want.vnfs_moved);
  ASSERT_EQ(got.frontier_points.size(), want.frontier_points.size());
  for (std::size_t i = 0; i < got.frontier_points.size(); ++i) {
    EXPECT_EQ(got.frontier_points[i].migration_cost,
              want.frontier_points[i].migration_cost);
    EXPECT_EQ(got.frontier_points[i].comm_cost,
              want.frontier_points[i].comm_cost);
    EXPECT_EQ(got.frontier_points[i].collision_free,
              want.frontier_points[i].collision_free);
  }
}

std::vector<VmFlow> workload(const Topology& topo, int l,
                             std::uint64_t seed) {
  VmPlacementConfig cfg;
  cfg.num_pairs = l;
  Rng rng(seed);
  return generate_vm_flows(topo, cfg, rng);
}

// ---------------------------------------------------------------------------
// DP-Stroll equivalence: fat-trees k ∈ {4, 8}, non-unit rates, host and
// switch sources, n from the degenerate 0 up past the metric-closure
// sweet spot. Queries run in identical order on both tables so the lazily
// grown DP state matches level by level.
// ---------------------------------------------------------------------------
TEST(KernelEquivalence, StrollFindMatchesSeed) {
  for (const int k : {4, 8}) {
    const Topology topo = build_fat_tree(k);
    const AllPairs apsp(topo.graph);
    const auto& switches = topo.graph.switches();
    const auto& hosts = topo.graph.hosts();
    const std::vector<NodeId> destinations = {
        switches.front(), switches[switches.size() / 2]};
    const std::vector<NodeId> sources = {hosts[1], hosts.back(),
                                         switches[3]};
    for (const double rate : {0.75, 3.5}) {
      for (const NodeId t : destinations) {
        StrollTable cur(apsp, t, rate);
        RefStrollTable ref(apsp, t, rate);
        for (const NodeId s : sources) {
          for (const int n : {0, 1, 2, 3, 5}) {
            SCOPED_TRACE(::testing::Message()
                         << "k=" << k << " rate=" << rate << " t=" << t
                         << " s=" << s << " n=" << n);
            const StrollResult got = cur.find(s, n);
            const StrollResult want = ref.find(s, n);
            expect_stroll_eq(got, want);
            EXPECT_EQ(cur.satisfies_theorem3(got),
                      ref.satisfies_theorem3(want));
          }
        }
      }
    }
  }
}

TEST(KernelEquivalence, RestrictedUniverseStrollMatchesSeed) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto& switches = topo.graph.switches();
  std::vector<NodeId> universe;
  for (std::size_t i = 0; i < switches.size(); i += 2) {
    universe.push_back(switches[i]);
  }
  const NodeId t = universe.back();
  StrollTable cur(apsp, t, 1.25, universe);
  RefStrollTable ref(apsp, t, 1.25, universe);
  for (const NodeId s : {topo.graph.hosts()[0], universe.front()}) {
    for (const int n : {0, 1, 2, 3}) {
      SCOPED_TRACE(::testing::Message() << "s=" << s << " n=" << n);
      const StrollResult got = cur.find(s, n);
      const StrollResult want = ref.find(s, n);
      expect_stroll_eq(got, want);
      // Every intermediate must come from the restricted universe.
      for (std::size_t i = 1; i + 1 < got.walk.size(); ++i) {
        EXPECT_NE(std::find(universe.begin(), universe.end(), got.walk[i]),
                  universe.end());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// The greedy cap fallback, exercised for real: switches A, B, C form a
// unit-weight triangle, so the anti-backtrack rule still allows the
// 3-cycle A→B→C→A and the min-cost r-edge stroll oscillates inside it for
// every r — the far switch F (weight 1000) never enters an optimal
// stroll. Requesting 4 distinct switches therefore exhausts the r cap,
// and the greedy completion must deliver F (flagged via used_fallback).
// Both implementations must agree bit-exactly on the completed result.
// ---------------------------------------------------------------------------
TEST(KernelEquivalence, FallbackCapPathMatchesSeed) {
  Graph g;
  const NodeId a = g.add_node(NodeKind::kSwitch, "A");
  const NodeId b = g.add_node(NodeKind::kSwitch, "B");
  const NodeId c = g.add_node(NodeKind::kSwitch, "C");
  const NodeId f = g.add_node(NodeKind::kSwitch, "F");
  const NodeId s = g.add_node(NodeKind::kHost, "src");
  const NodeId t = g.add_node(NodeKind::kHost, "dst");
  g.add_edge(a, b, 1.0);
  g.add_edge(b, c, 1.0);
  g.add_edge(c, a, 1.0);
  g.add_edge(a, f, 1000.0);
  g.add_edge(s, a, 1.0);
  g.add_edge(t, a, 1.0);
  const AllPairs apsp(g);

  StrollTable cur(apsp, t, 2.0);
  RefStrollTable ref(apsp, t, 2.0);
  const StrollResult got = cur.find(s, 4);
  const StrollResult want = ref.find(s, 4);

  EXPECT_TRUE(got.used_fallback);
  expect_stroll_eq(got, want);
  ASSERT_EQ(got.placement.size(), 4u);
  EXPECT_NE(std::find(got.placement.begin(), got.placement.end(), f),
            got.placement.end());
  // The walk is s, <placement switches>, t with the recomputed cost.
  ASSERT_EQ(got.walk.size(), 6u);
  EXPECT_EQ(got.walk.front(), s);
  EXPECT_EQ(got.walk.back(), t);
  double cost = 0.0;
  for (std::size_t i = 0; i + 1 < got.walk.size(); ++i) {
    cost += 2.0 * apsp.cost(got.walk[i], got.walk[i + 1]);
  }
  EXPECT_EQ(got.cost, cost);
  EXPECT_FALSE(cur.satisfies_theorem3(got));
}

// ---------------------------------------------------------------------------
// Algorithm 3 equivalence across chain lengths (all three n branches),
// candidate pruning, and restricted candidate universes.
// ---------------------------------------------------------------------------
TEST(KernelEquivalence, PlacementDpMatchesSeed) {
  struct Scenario {
    int k, l;
    std::uint64_t seed;
  };
  for (const Scenario sc : {Scenario{4, 37, 5}, Scenario{8, 200, 11}}) {
    const Topology topo = build_fat_tree(sc.k);
    const AllPairs apsp(topo.graph);
    const auto flows = workload(topo, sc.l, sc.seed);
    const CostModel cm(apsp, flows);
    for (const int n : {1, 2, 3, 5, 7}) {
      for (const int limit : {0, 6}) {
        SCOPED_TRACE(::testing::Message() << "k=" << sc.k << " n=" << n
                                          << " limit=" << limit);
        TopDpOptions opt;
        opt.candidate_limit = limit;
        expect_placement_eq(solve_top_dp(cm, n, opt),
                            ref_solve_top_dp(cm, n, opt));
      }
    }
  }
}

TEST(KernelEquivalence, RestrictedCandidatesPlacementMatchesSeed) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = workload(topo, 60, 17);
  CostModel cm(apsp, flows);
  const auto& switches = topo.graph.switches();
  std::vector<NodeId> alive;
  for (std::size_t i = 0; i < switches.size(); ++i) {
    if (i % 3 != 0) alive.push_back(switches[i]);
  }
  cm.restrict_candidates(alive);
  for (const int n : {1, 3, 5}) {
    SCOPED_TRACE(::testing::Message() << "n=" << n);
    expect_placement_eq(solve_top_dp(cm, n), ref_solve_top_dp(cm, n));
  }
}

// ---------------------------------------------------------------------------
// Algorithm 5 equivalence, parallel rows and the exhaustive general-
// frontier scan, under shifted traffic (the migration trigger).
// ---------------------------------------------------------------------------
TEST(KernelEquivalence, ParetoMigrationMatchesSeed) {
  const Topology topo = build_fat_tree(8);
  const AllPairs apsp(topo.graph);
  auto flows = workload(topo, 200, 13);
  CostModel cm(apsp, flows);
  const Placement from = solve_top_dp(cm, 7).placement;
  std::vector<double> rates = rates_of(flows);
  std::reverse(rates.begin(), rates.end());
  set_rates(flows, rates);
  cm.refresh();
  for (const double mu : {0.0, 1e4}) {
    SCOPED_TRACE(::testing::Message() << "mu=" << mu);
    expect_migration_eq(solve_tom_pareto(cm, from, mu),
                        ref_solve_tom_pareto(cm, from, mu));
  }
}

TEST(KernelEquivalence, ExhaustiveFrontierMigrationMatchesSeed) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  auto flows = workload(topo, 30, 23);
  CostModel cm(apsp, flows);
  const Placement from = solve_top_dp(cm, 3).placement;
  std::vector<double> rates = rates_of(flows);
  for (double& r : rates) r *= 2.5;
  std::reverse(rates.begin(), rates.end());
  set_rates(flows, rates);
  cm.refresh();
  ParetoMigrationOptions opt;
  opt.exhaustive_frontiers = true;
  expect_migration_eq(solve_tom_pareto(cm, from, 5e2, opt),
                      ref_solve_tom_pareto(cm, from, 5e2, opt));
}

// ---------------------------------------------------------------------------
// CostModel attraction equivalence: the blocked (and OpenMP-parallel)
// rescans must reproduce a naive per-switch flow-order sum bit-exactly,
// because each accumulator still adds its terms in flow order.
// ---------------------------------------------------------------------------
TEST(KernelEquivalence, AttractionsMatchNaiveFlowOrderSums) {
  struct Scenario {
    int k, l;
    std::uint64_t seed;
  };
  for (const Scenario sc : {Scenario{4, 37, 3}, Scenario{8, 200, 19}}) {
    const Topology topo = build_fat_tree(sc.k);
    const AllPairs apsp(topo.graph);
    auto flows = workload(topo, sc.l, sc.seed);
    CostModel cm(apsp, flows);
    const auto check = [&] {
      double lambda = 0.0;
      for (const VmFlow& f : flows) lambda += f.rate;
      EXPECT_EQ(cm.total_rate(), lambda);
      for (const NodeId sw : topo.graph.switches()) {
        double a = 0.0, b = 0.0;
        for (const VmFlow& f : flows) {
          a += f.rate * apsp.cost(f.src_host, sw);
          b += f.rate * apsp.cost(sw, f.dst_host);
        }
        EXPECT_EQ(cm.ingress_attraction(sw), a) << "switch " << sw;
        EXPECT_EQ(cm.egress_attraction(sw), b) << "switch " << sw;
      }
    };
    check();
    // Shift the rate vector and rescan.
    std::vector<double> rates = rates_of(flows);
    for (double& r : rates) r *= 1.75;
    std::reverse(rates.begin(), rates.end());
    set_rates(flows, rates);
    cm.refresh();
    check();
  }
}

TEST(KernelEquivalence, GroupRecombineMatchesNaiveGroupOrderSums) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  auto flows = workload(topo, 45, 29);
  CostModel cm(apsp, flows);

  const std::vector<double> base_rates = rates_of(flows);
  std::vector<int> groups(flows.size());
  for (std::size_t i = 0; i < groups.size(); ++i) {
    groups[i] = static_cast<int>(i % 3);
  }
  cm.enable_group_refresh(base_rates, groups);
  const std::vector<double> scales = {1.0, 0.5, 2.25};
  // Keep the bound flow vector coherent, as refresh_scaled documents.
  std::vector<double> scaled = base_rates;
  for (std::size_t i = 0; i < scaled.size(); ++i) {
    scaled[i] *= scales[static_cast<std::size_t>(groups[i])];
  }
  set_rates(flows, scaled);
  cm.refresh_scaled(scales);

  // Λ recombines in *flow* order (bit-identical to refresh()).
  double lambda = 0.0;
  for (std::size_t i = 0; i < base_rates.size(); ++i) {
    lambda += base_rates[i] * scales[static_cast<std::size_t>(groups[i])];
  }
  EXPECT_EQ(cm.total_rate(), lambda);

  // Attractions recombine in *group* order over flow-order base vectors.
  for (const NodeId sw : topo.graph.switches()) {
    double a = 0.0, b = 0.0;
    for (std::size_t g = 0; g < scales.size(); ++g) {
      double ag = 0.0, bg = 0.0;
      for (std::size_t i = 0; i < flows.size(); ++i) {
        if (groups[i] != static_cast<int>(g)) continue;
        ag += base_rates[i] * apsp.cost(flows[i].src_host, sw);
        bg += base_rates[i] * apsp.cost(sw, flows[i].dst_host);
      }
      a += scales[g] * ag;
      b += scales[g] * bg;
    }
    EXPECT_EQ(cm.ingress_attraction(sw), a) << "switch " << sw;
    EXPECT_EQ(cm.egress_attraction(sw), b) << "switch " << sw;
  }
}

}  // namespace
}  // namespace ppdc
