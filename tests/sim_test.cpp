#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "topology/fat_tree.hpp"
#include "topology/linear.hpp"
#include "workload/vm_placement.hpp"

namespace ppdc {
namespace {

std::vector<VmFlow> random_flows(const Topology& topo, int l,
                                 std::uint64_t seed) {
  VmPlacementConfig cfg;
  cfg.num_pairs = l;
  Rng rng(seed);
  return generate_vm_flows(topo, cfg, rng);
}

TEST(SimEngine, TraceShapeAndAccounting) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 8, 1);
  NoMigrationPolicy policy;
  SimConfig cfg;
  cfg.hours = 12;
  const SimTrace t = run_simulation(apsp, flows, 3, cfg, policy);
  ASSERT_EQ(t.epochs.size(), 12u);
  double comm = 0.0, mig = 0.0;
  for (const auto& e : t.epochs) {
    comm += e.comm_cost;
    mig += e.migration_cost;
    EXPECT_GE(e.comm_cost, 0.0);
  }
  EXPECT_NEAR(t.total_comm_cost, comm, 1e-9);
  EXPECT_NEAR(t.total_migration_cost, mig, 1e-9);
  EXPECT_NEAR(t.total_cost, comm + mig, 1e-9);
  EXPECT_EQ(t.total_vnf_migrations, 0);
  EXPECT_EQ(t.total_vm_migrations, 0);
  EXPECT_EQ(t.initial_placement.size(), 3u);
}

TEST(SimEngine, NoMigrationPaysNoMigrationCost) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 6, 2);
  NoMigrationPolicy policy;
  SimConfig cfg;
  const SimTrace t = run_simulation(apsp, flows, 4, cfg, policy);
  EXPECT_DOUBLE_EQ(t.total_migration_cost, 0.0);
}

TEST(SimEngine, ParetoPolicyNeverWorseThanNoMigration) {
  // Algorithm 5 includes "stay put" as frontier row 1, so epoch-by-epoch
  // its total can never exceed NoMigration under identical traffic.
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto flows = random_flows(topo, 8, seed);
    NoMigrationPolicy none;
    ParetoMigrationPolicy pareto(10.0);
    SimConfig cfg;
    const SimTrace t_none = run_simulation(apsp, flows, 4, cfg, none);
    const SimTrace t_pareto = run_simulation(apsp, flows, 4, cfg, pareto);
    EXPECT_LE(t_pareto.total_cost, t_none.total_cost + 1e-6)
        << "seed=" << seed;
  }
}

TEST(SimEngine, DiurnalTrafficPeaksAtNoon) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 8, 4);
  NoMigrationPolicy policy;
  SimConfig cfg;
  const SimTrace t = run_simulation(apsp, flows, 3, cfg, policy);
  // With a fixed placement, cost scales with traffic: hour 6 >= hour 0.
  EXPECT_GT(t.epochs[6].comm_cost, t.epochs[0].comm_cost);
}

TEST(SimEngine, CustomRateSchedule) {
  const Topology topo = build_linear(5);
  const AllPairs apsp(topo.graph);
  const NodeId h1 = topo.graph.hosts()[0];
  const NodeId h2 = topo.graph.hosts()[1];
  const std::vector<VmFlow> flows{{h1, h1, 100.0}, {h2, h2, 1.0}};
  NoMigrationPolicy policy;
  SimConfig cfg;
  cfg.hours = 2;
  cfg.rate_schedule = [&](Hour hour) {
    return hour == Hour{0} ? std::vector<double>{100.0, 1.0}
                           : std::vector<double>{1.0, 100.0};
  };
  const SimTrace t = run_simulation(apsp, flows, 2, cfg, policy);
  // Fig. 3: hour 0 optimal is 410; after the flip the fixed placement
  // pays 1004.
  EXPECT_DOUBLE_EQ(t.epochs[0].comm_cost, 410.0);
  EXPECT_DOUBLE_EQ(t.epochs[1].comm_cost, 1004.0);
}

TEST(SimEngine, ParetoRecoversFig3Migration) {
  const Topology topo = build_linear(5);
  const AllPairs apsp(topo.graph);
  const NodeId h1 = topo.graph.hosts()[0];
  const NodeId h2 = topo.graph.hosts()[1];
  const std::vector<VmFlow> flows{{h1, h1, 100.0}, {h2, h2, 1.0}};
  ParetoMigrationPolicy policy(1.0);
  SimConfig cfg;
  cfg.hours = 2;
  cfg.rate_schedule = [&](Hour hour) {
    return hour == Hour{0} ? std::vector<double>{100.0, 1.0}
                           : std::vector<double>{1.0, 100.0};
  };
  const SimTrace t = run_simulation(apsp, flows, 2, cfg, policy);
  EXPECT_DOUBLE_EQ(t.epochs[1].comm_cost + t.epochs[1].migration_cost,
                   416.0);
  EXPECT_EQ(t.total_vnf_migrations, 2);
}

TEST(SimEngine, VmPoliciesMoveVmsNotVnfs) {
  // Skewed workload: under uniformly spread traffic the optimal chain
  // parks on core switches, which are equidistant from every host — then
  // no VM migration can ever help (a correct no-op). Rack skew moves the
  // chain to the busy pod and gives PLAN something to chase.
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  VmPlacementConfig wl;
  wl.num_pairs = 10;
  wl.rack_zipf_s = 2.5;
  Rng rng(9);
  const auto flows = generate_vm_flows(topo, wl, rng);
  VmMigrationConfig vm_cfg;
  vm_cfg.mu = 0.1;  // cheap moves so something definitely happens
  PlanPolicy plan(vm_cfg);
  SimConfig cfg;
  const SimTrace t = run_simulation(apsp, flows, 3, cfg, plan);
  EXPECT_EQ(t.total_vnf_migrations, 0);
  EXPECT_GT(t.total_vm_migrations, 0);
}

TEST(SimEngine, RejectsBadConfig) {
  const Topology topo = build_linear(3);
  const AllPairs apsp(topo.graph);
  NoMigrationPolicy policy;
  SimConfig cfg;
  cfg.hours = 0;
  const auto flows = random_flows(topo, 2, 1);
  EXPECT_THROW(run_simulation(apsp, flows, 2, cfg, policy), PpdcError);
  cfg.hours = 1;
  EXPECT_THROW(run_simulation(apsp, {}, 2, cfg, policy), PpdcError);
}

TEST(Experiment, AggregatesAcrossTrialsWithCi) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  ExperimentConfig cfg;
  cfg.trials = 5;
  cfg.workload.num_pairs = 6;
  cfg.sfc_length = 3;
  cfg.sim.hours = 6;
  NoMigrationPolicy none;
  ParetoMigrationPolicy pareto(10.0);
  const auto stats = run_experiment(topo, apsp, cfg, {&none, &pareto});
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].name, "NoMigration");
  EXPECT_EQ(stats[1].name, "mPareto");
  for (const auto& s : stats) {
    EXPECT_GT(s.total_cost.mean, 0.0);
    EXPECT_GE(s.total_cost.ci95, 0.0);
    EXPECT_EQ(s.hourly_cost.size(), 6u);
    EXPECT_EQ(s.hourly_migrations.size(), 6u);
  }
  // Paired comparison: mPareto <= NoMigration in the mean.
  EXPECT_LE(stats[1].total_cost.mean, stats[0].total_cost.mean + 1e-6);
}

TEST(Experiment, DeterministicForSameSeed) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  ExperimentConfig cfg;
  cfg.trials = 3;
  cfg.workload.num_pairs = 5;
  cfg.sfc_length = 2;
  cfg.sim.hours = 4;
  NoMigrationPolicy a1, a2;
  const auto s1 = run_experiment(topo, apsp, cfg, {&a1});
  const auto s2 = run_experiment(topo, apsp, cfg, {&a2});
  EXPECT_DOUBLE_EQ(s1[0].total_cost.mean, s2[0].total_cost.mean);
}

TEST(Experiment, RejectsBadConfig) {
  const Topology topo = build_linear(3);
  const AllPairs apsp(topo.graph);
  ExperimentConfig cfg;
  cfg.trials = 0;
  NoMigrationPolicy p;
  EXPECT_THROW(run_experiment(topo, apsp, cfg, {&p}), PpdcError);
  cfg.trials = 1;
  EXPECT_THROW(run_experiment(topo, apsp, cfg, {}), PpdcError);
}

}  // namespace
}  // namespace ppdc
