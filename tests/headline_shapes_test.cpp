// Paper-scale regression tests of the headline experimental *shapes*
// (§VI): who wins, by roughly what factor. These run on the k=8 fat-tree
// the paper actually evaluates (one seed each to stay fast) and guard the
// figures the bench harnesses print — if one of these fails, a figure's
// story has silently changed.
#include <gtest/gtest.h>

#include "baselines/greedy_liu.hpp"
#include "baselines/steering.hpp"
#include "core/chain_search.hpp"
#include "core/placement_dp.hpp"
#include "core/stroll_dp.hpp"
#include "core/stroll_primal_dual.hpp"
#include "sim/experiment.hpp"
#include "topology/fat_tree.hpp"
#include "topology/weights.hpp"
#include "workload/vm_placement.hpp"

namespace ppdc {
namespace {

std::vector<VmFlow> workload(const Topology& topo, int l, std::uint64_t seed,
                             double zipf = 0.0) {
  VmPlacementConfig cfg;
  cfg.num_pairs = l;
  cfg.rack_zipf_s = zipf;
  Rng rng(seed);
  return generate_vm_flows(topo, cfg, rng);
}

TEST(HeadlineShapes, Fig7DpStrollNearOptimalAndBelowGuarantee) {
  // Fig. 7: DP-Stroll tracks Optimal closely *on average* (the paper
  // reports ~8%; individual instances can run higher) and stays strictly
  // below the 2x guarantee for every n.
  const Topology topo = build_fat_tree(8);
  const AllPairs apsp(topo.graph);
  double dp_sum = 0.0, opt_sum = 0.0;
  for (std::uint64_t seed = 40; seed < 45; ++seed) {
    const auto flows = workload(topo, 1, seed);
    CostModel cm(apsp, flows);
    for (int n = 2; n <= 10; n += 2) {
      const StrollResult dp = solve_top1_dp(apsp, flows[0].src_host,
                                            flows[0].dst_host, n,
                                            flows[0].rate);
      ChainSearchConfig cfg;
      cfg.initial = dp.placement;
      cfg.node_budget = 20'000'000;
      const ChainSearchResult opt = solve_top_exhaustive(cm, n, cfg);
      // Budget-truncated instances would make "Optimal" an upper bound
      // only — skip those few rather than compare against a non-optimum.
      if (!opt.proven_optimal) continue;
      const double dp_cost = cm.communication_cost(dp.placement);
      EXPECT_LT(dp_cost, 2.0 * opt.objective) << "n=" << n;
      dp_sum += dp_cost;
      opt_sum += opt.objective;
    }
  }
  // Paper reports ~8% on its instances; we measure 10-17% on ours (see
  // EXPERIMENTS.md) — belt at 20%.
  EXPECT_LE(dp_sum, 1.20 * opt_sum);
}

TEST(HeadlineShapes, Fig7PrimalDualBetweenOptimalAndGuarantee) {
  const Topology topo = build_fat_tree(8);
  const AllPairs apsp(topo.graph);
  const auto flows = workload(topo, 1, 7);
  CostModel cm(apsp, flows);
  for (int n = 3; n <= 9; n += 3) {
    const StrollResult pd = solve_top1_primal_dual(
        apsp, flows[0].src_host, flows[0].dst_host, n, flows[0].rate,
        PrimalDualOptions{12});
    ChainSearchConfig cfg;
    cfg.initial = pd.placement;
    const ChainSearchResult opt = solve_top_exhaustive(cm, n, cfg);
    ASSERT_TRUE(opt.proven_optimal);
    const double pd_cost = cm.communication_cost(pd.placement);
    EXPECT_GE(pd_cost + 1e-9, opt.objective) << "n=" << n;
    EXPECT_LE(pd_cost, 2.5 * opt.objective + 1e-9) << "n=" << n;
  }
}

TEST(HeadlineShapes, Fig9DpFarBelowSteeringAndGreedy) {
  // Fig. 9: DP placement dramatically cheaper than Steering/Greedy at
  // paper scale (k=8, l=200, n=7). Require at least a 20% margin.
  const Topology topo = build_fat_tree(8);
  const AllPairs apsp(topo.graph);
  const auto flows = workload(topo, 200, 42);
  CostModel cm(apsp, flows);
  const double dp = solve_top_dp(cm, 7).comm_cost;
  const double steering = solve_top_steering(cm, 7).comm_cost;
  const double greedy = solve_top_greedy_liu(cm, 7).comm_cost;
  EXPECT_LT(dp, 0.8 * steering);
  EXPECT_LT(dp, 0.8 * greedy);
}

TEST(HeadlineShapes, Fig10WeightedDpNearOptimalFarBelowBaselines) {
  // Aggregate over three delay draws (Fig. 10 averages 20).
  double dp_sum = 0.0, opt_sum = 0.0, steering_sum = 0.0, greedy_sum = 0.0;
  for (std::uint64_t seed = 42; seed < 45; ++seed) {
    Topology topo = build_fat_tree(8);
    apply_uniform_delay_weights(topo.graph, seed, 1.5, 0.5);
    const AllPairs apsp(topo.graph);
    const auto flows = workload(topo, 200, seed);
    CostModel cm(apsp, flows);
    const PlacementResult dp = solve_top_dp(cm, 7);
    ChainSearchConfig cfg;
    cfg.initial = dp.placement;
    const ChainSearchResult opt = solve_top_exhaustive(cm, 7, cfg);
    ASSERT_TRUE(opt.proven_optimal);
    dp_sum += dp.comm_cost;
    opt_sum += opt.objective;
    steering_sum += solve_top_steering(cm, 7).comm_cost;
    greedy_sum += solve_top_greedy_liu(cm, 7).comm_cost;
  }
  EXPECT_LE(dp_sum, 1.15 * opt_sum);
  EXPECT_LT(dp_sum, 0.85 * steering_sum);
  EXPECT_LT(dp_sum, 0.85 * greedy_sum);
}

TEST(HeadlineShapes, Fig11OrderingUnderDynamicTraffic) {
  // Fig. 11(a): mPareto ~ frontier-Optimal <= PLAN/MCF and <= NoMigration
  // over a diurnal day with skewed tenants.
  const Topology topo = build_fat_tree(8);
  const AllPairs apsp(topo.graph);
  ExperimentConfig cfg;
  cfg.trials = 3;
  cfg.workload.num_pairs = 200;
  cfg.workload.rack_zipf_s = 2.2;
  cfg.sfc_length = 5;
  ParetoMigrationPolicy pareto(1e4);
  ParetoMigrationOptions full_opts;
  full_opts.exhaustive_frontiers = true;
  ParetoMigrationPolicy frontier_opt(1e4, full_opts, "Optimal(frontier)");
  VmMigrationConfig vm_cfg;
  vm_cfg.mu = 1e4;
  vm_cfg.horizon_hours = 4.0;
  vm_cfg.host_capacity = 4;  // as in bench_fig11 (PLAN's "available resources")
  PlanPolicy plan(vm_cfg);
  McfPolicy mcf(vm_cfg);
  NoMigrationPolicy none;
  const auto stats = run_experiment(
      topo, apsp, cfg, {&pareto, &frontier_opt, &plan, &mcf, &none});
  const double m_pareto = stats[0].total_cost.mean;
  const double optimal = stats[1].total_cost.mean;
  const double plan_c = stats[2].total_cost.mean;
  const double mcf_c = stats[3].total_cost.mean;
  const double nomig = stats[4].total_cost.mean;
  EXPECT_LE(optimal, m_pareto + 1e-6);       // wider search can only help
  EXPECT_LE(m_pareto, nomig + 1e-6);         // row 1 is "stay put"
  EXPECT_LE(m_pareto, plan_c * 1.001);       // VNF beats VM migration
  EXPECT_LE(m_pareto, mcf_c * 1.001);
  // VNF moves are far fewer than VM moves when VM policies engage, and
  // mPareto actually migrates on this workload.
  EXPECT_GT(stats[0].vnf_migrations.mean, 0.0);
  EXPECT_EQ(stats[0].vm_migrations.mean, 0.0);
}

TEST(HeadlineShapes, Fig11MigrationSavesAgainstNoMigration) {
  // Fig. 11(c)/(d): the reduction vs NoMigration is strictly positive on
  // the skewed workload (magnitude discussed in EXPERIMENTS.md).
  const Topology topo = build_fat_tree(8);
  const AllPairs apsp(topo.graph);
  ExperimentConfig cfg;
  cfg.trials = 3;
  cfg.workload.num_pairs = 100;
  cfg.workload.rack_zipf_s = 2.5;
  cfg.sfc_length = 3;
  ParetoMigrationPolicy pareto(1e4);
  NoMigrationPolicy none;
  const auto stats = run_experiment(topo, apsp, cfg, {&pareto, &none});
  EXPECT_LT(stats[0].total_cost.mean, stats[1].total_cost.mean);
}

}  // namespace
}  // namespace ppdc
