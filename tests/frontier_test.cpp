#include "core/frontier.hpp"

#include <gtest/gtest.h>

#include <set>

#include "topology/fat_tree.hpp"
#include "topology/linear.hpp"

namespace ppdc {
namespace {

TEST(Frontiers, Fig3MigrationPaths) {
  const Topology topo = build_linear(5);
  const AllPairs apsp(topo.graph);
  const auto& s = topo.graph.switches();
  // Fig. 3(c): f1 migrates s1 -> s5, f2 migrates s2 -> s4.
  const MigrationFrontiers fr(apsp, {s[0], s[1]}, {s[4], s[3]});
  EXPECT_EQ(fr.path_lengths().raw(), (std::vector<int>{5, 3}));
  EXPECT_EQ(fr.h_max(), 5);
  EXPECT_EQ(fr.frontier_count(), 15);
  EXPECT_EQ(fr.path(ChainPos{0}),
            (std::vector<NodeId>{s[0], s[1], s[2], s[3], s[4]}));
  EXPECT_EQ(fr.path(ChainPos{1}), (std::vector<NodeId>{s[1], s[2], s[3]}));
}

TEST(Frontiers, ParallelRowsClampAtArrival) {
  const Topology topo = build_linear(5);
  const AllPairs apsp(topo.graph);
  const auto& s = topo.graph.switches();
  const MigrationFrontiers fr(apsp, {s[0], s[1]}, {s[4], s[3]});
  EXPECT_EQ(fr.parallel_frontier(1), (Placement{s[0], s[1]}));  // = p
  EXPECT_EQ(fr.parallel_frontier(2), (Placement{s[1], s[2]}));
  EXPECT_EQ(fr.parallel_frontier(3), (Placement{s[2], s[3]}));
  EXPECT_EQ(fr.parallel_frontier(4), (Placement{s[3], s[3]}));  // f2 arrived
  EXPECT_EQ(fr.parallel_frontier(5), (Placement{s[4], s[3]}));  // = p'
}

TEST(Frontiers, FirstRowIsFromLastRowIsTo) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto& s = topo.graph.switches();
  const Placement from{s[0], s[5], s[11]};
  const Placement to{s[17], s[5], s[2]};
  const MigrationFrontiers fr(apsp, from, to);
  EXPECT_EQ(fr.parallel_frontier(1), from);
  EXPECT_EQ(fr.parallel_frontier(fr.h_max()), to);
  EXPECT_EQ(fr.all_parallel_frontiers().size(),
            static_cast<std::size_t>(fr.h_max()));
}

TEST(Frontiers, StationaryVnfHasUnitPath) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto& s = topo.graph.switches();
  const MigrationFrontiers fr(apsp, {s[3], s[7]}, {s[3], s[7]});
  EXPECT_EQ(fr.h_max(), 1);
  EXPECT_EQ(fr.frontier_count(), 1);
  EXPECT_EQ(fr.parallel_frontier(1), (Placement{s[3], s[7]}));
}

TEST(Frontiers, EnumerationVisitsExactlyTheProduct) {
  const Topology topo = build_linear(5);
  const AllPairs apsp(topo.graph);
  const auto& s = topo.graph.switches();
  const MigrationFrontiers fr(apsp, {s[0], s[1]}, {s[4], s[3]});
  std::set<Placement> seen;
  fr.for_each_frontier(1000, [&](const Placement& p) {
    EXPECT_EQ(p.size(), 2u);
    seen.insert(p);
  });
  EXPECT_EQ(seen.size(), 15u);  // 5 * 3 distinct combinations
}

TEST(Frontiers, EnumerationRespectsBudget) {
  const Topology topo = build_linear(5);
  const AllPairs apsp(topo.graph);
  const auto& s = topo.graph.switches();
  const MigrationFrontiers fr(apsp, {s[0], s[1]}, {s[4], s[3]});
  EXPECT_THROW(fr.for_each_frontier(10, [](const Placement&) {}),
               PpdcError);
}

TEST(Frontiers, EveryFrontierEntryLiesOnItsPath) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto& s = topo.graph.switches();
  const Placement from{s[0], s[6]};
  const Placement to{s[13], s[19]};
  const MigrationFrontiers fr(apsp, from, to);
  fr.for_each_frontier(100000, [&](const Placement& p) {
    for (const ChainPos j : id_range<ChainPos>(2)) {
      const auto& path = fr.path(j);
      EXPECT_NE(std::find(path.begin(), path.end(),
                          p[static_cast<std::size_t>(j.value())]),
                path.end());
    }
  });
}

TEST(Frontiers, RejectsBadInput) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto& s = topo.graph.switches();
  const NodeId host = topo.graph.hosts()[0];
  EXPECT_THROW(MigrationFrontiers(apsp, {}, {}), PpdcError);
  EXPECT_THROW(MigrationFrontiers(apsp, {s[0]}, {s[0], s[1]}), PpdcError);
  EXPECT_THROW(MigrationFrontiers(apsp, {host}, {s[0]}), PpdcError);
  const MigrationFrontiers fr(apsp, {s[0]}, {s[1]});
  EXPECT_THROW(fr.parallel_frontier(0), PpdcError);
  EXPECT_THROW(fr.parallel_frontier(99), PpdcError);
  EXPECT_THROW(fr.path(ChainPos{5}), PpdcError);
}

TEST(CollisionFree, DetectsDuplicates) {
  EXPECT_TRUE(is_collision_free({1, 2, 3}));
  EXPECT_FALSE(is_collision_free({1, 2, 1}));
  EXPECT_TRUE(is_collision_free({7}));
}

}  // namespace
}  // namespace ppdc
