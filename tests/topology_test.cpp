#include <gtest/gtest.h>

#include "graph/apsp.hpp"
#include "topology/fat_tree.hpp"
#include "topology/leaf_spine.hpp"
#include "topology/linear.hpp"
#include "topology/misc.hpp"
#include "topology/weights.hpp"

namespace ppdc {
namespace {

class FatTreeArity : public ::testing::TestWithParam<int> {};

TEST_P(FatTreeArity, CountsMatchFormulas) {
  const int k = GetParam();
  const Topology t = build_fat_tree(k);
  EXPECT_EQ(t.num_hosts(), fat_tree_num_hosts(k));
  EXPECT_EQ(t.num_switches(), fat_tree_num_switches(k));
  // Edges: core-agg k*(k/2)*(k/2)... = k^2/2 * k/2? Count directly instead:
  // pod mesh k*(k/2)^2, agg-core k*(k/2)*(k/2), host links k^3/4.
  const std::size_t expected_edges =
      static_cast<std::size_t>(k * (k / 2) * (k / 2) * 2 + k * k * k / 4);
  EXPECT_EQ(t.graph.num_edges(), expected_edges);
}

TEST_P(FatTreeArity, IsConnected) {
  const Topology t = build_fat_tree(GetParam());
  EXPECT_TRUE(t.graph.is_connected());
}

TEST_P(FatTreeArity, RackStructure) {
  const int k = GetParam();
  const Topology t = build_fat_tree(k);
  EXPECT_EQ(t.racks.size(), static_cast<std::size_t>(k * k / 2));
  for (const RackIdx r : t.racks.ids()) {
    EXPECT_EQ(t.racks[r].size(), static_cast<std::size_t>(k / 2));
    for (const NodeId h : t.racks[r]) {
      EXPECT_TRUE(t.graph.is_host(h));
      EXPECT_TRUE(t.graph.has_edge(h, t.rack_switches[r]));
    }
  }
}

TEST_P(FatTreeArity, HostsHaveDegreeOne) {
  const Topology t = build_fat_tree(GetParam());
  for (const NodeId h : t.graph.hosts()) {
    EXPECT_EQ(t.graph.degree(h), 1u);
  }
}

TEST_P(FatTreeArity, SwitchDegrees) {
  const int k = GetParam();
  const Topology t = build_fat_tree(k);
  // Every switch in a fat-tree has exactly k ports used.
  for (const NodeId s : t.graph.switches()) {
    EXPECT_EQ(t.graph.degree(s), static_cast<std::size_t>(k))
        << t.graph.label(s);
  }
}

INSTANTIATE_TEST_SUITE_P(Arities, FatTreeArity, ::testing::Values(2, 4, 6, 8));

TEST(FatTree, RejectsOddArity) {
  EXPECT_THROW(build_fat_tree(3), PpdcError);
  EXPECT_THROW(build_fat_tree(0), PpdcError);
}

TEST(FatTree, K2IsTheLinearPpdcOfFig1) {
  // §III Example 1: the k=2 fat tree is the 5-switch linear PPDC of Fig. 1.
  const Topology ft = build_fat_tree(2);
  EXPECT_EQ(ft.num_switches(), 5);
  EXPECT_EQ(ft.num_hosts(), 2);
  const AllPairs apsp(ft.graph);
  const NodeId h1 = ft.graph.hosts()[0];
  const NodeId h2 = ft.graph.hosts()[1];
  EXPECT_DOUBLE_EQ(apsp.cost(h1, h2), 6.0);  // h-e-a-c-a-e-h
  EXPECT_DOUBLE_EQ(apsp.diameter(), 6.0);
}

TEST(Linear, StructureAndDistances) {
  const Topology t = build_linear(5);
  EXPECT_EQ(t.num_switches(), 5);
  EXPECT_EQ(t.num_hosts(), 2);
  EXPECT_TRUE(t.graph.is_connected());
  const AllPairs apsp(t.graph);
  const NodeId h1 = t.graph.hosts()[0];
  const NodeId h2 = t.graph.hosts()[1];
  EXPECT_DOUBLE_EQ(apsp.cost(h1, h2), 6.0);
}

TEST(Linear, SingleSwitch) {
  const Topology t = build_linear(1);
  EXPECT_EQ(t.num_switches(), 1);
  EXPECT_TRUE(t.graph.is_connected());
}

TEST(Linear, RejectsZeroSwitches) {
  EXPECT_THROW(build_linear(0), PpdcError);
}

TEST(LeafSpine, StructureAndDistances) {
  const Topology t = build_leaf_spine(4, 2, 3);
  EXPECT_EQ(t.num_switches(), 6);
  EXPECT_EQ(t.num_hosts(), 12);
  EXPECT_TRUE(t.graph.is_connected());
  const AllPairs apsp(t.graph);
  // Hosts under the same leaf: 2 hops; different leaves: 4 hops.
  EXPECT_DOUBLE_EQ(apsp.cost(t.racks[RackIdx{0}][0], t.racks[RackIdx{0}][1]), 2.0);
  EXPECT_DOUBLE_EQ(apsp.cost(t.racks[RackIdx{0}][0], t.racks[RackIdx{1}][0]), 4.0);
}

TEST(LeafSpine, RejectsBadShape) {
  EXPECT_THROW(build_leaf_spine(0, 1, 1), PpdcError);
  EXPECT_THROW(build_leaf_spine(1, 0, 1), PpdcError);
  EXPECT_THROW(build_leaf_spine(1, 1, 0), PpdcError);
}

TEST(Ring, Distances) {
  const Topology t = build_ring(6);
  const AllPairs apsp(t.graph);
  const auto& sw = t.graph.switches();
  EXPECT_DOUBLE_EQ(apsp.cost(sw[0], sw[3]), 3.0);
  EXPECT_DOUBLE_EQ(apsp.cost(sw[0], sw[5]), 1.0);
}

TEST(Ring, RejectsTooSmall) { EXPECT_THROW(build_ring(2), PpdcError); }

TEST(Star, HubIsCenter) {
  const Topology t = build_star(5);
  const AllPairs apsp(t.graph);
  const auto& sw = t.graph.switches();
  // sw[0] is the hub; leaves are 1 hop away, leaf-to-leaf 2 hops.
  EXPECT_DOUBLE_EQ(apsp.cost(sw[0], sw[1]), 1.0);
  EXPECT_DOUBLE_EQ(apsp.cost(sw[1], sw[2]), 2.0);
}

TEST(RandomConnected, AlwaysConnectedAndSeedStable) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Topology t = build_random_connected(15, 6, 8, 1.0, 2.0, seed);
    EXPECT_TRUE(t.graph.is_connected());
  }
  const Topology a = build_random_connected(15, 6, 8, 1.0, 2.0, 5);
  const Topology b = build_random_connected(15, 6, 8, 1.0, 2.0, 5);
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
}

TEST(RandomConnected, RacksCoverAllHosts) {
  const Topology t = build_random_connected(10, 20, 5, 1.0, 2.0, 3);
  std::size_t count = 0;
  for (const auto& rack : t.racks) count += rack.size();
  EXPECT_EQ(count, static_cast<std::size_t>(t.num_hosts()));
}

TEST(Weights, UnitResetsEverything) {
  Topology t = build_random_connected(8, 3, 4, 2.0, 5.0, 1);
  apply_unit_weights(t.graph);
  for (NodeId u = 0; u < t.graph.num_nodes(); ++u) {
    for (const auto& a : t.graph.neighbors(u)) {
      EXPECT_DOUBLE_EQ(a.weight, 1.0);
    }
  }
}

TEST(Weights, UniformDelayMatchesMoments) {
  Topology t = build_fat_tree(8);  // plenty of edges for tight stats
  apply_uniform_delay_weights(t.graph, 42, 1.5, 0.5);
  double sum = 0.0, sq = 0.0;
  std::size_t count = 0;
  for (NodeId u = 0; u < t.graph.num_nodes(); ++u) {
    for (const auto& a : t.graph.neighbors(u)) {
      if (u < a.to) {
        sum += a.weight;
        sq += a.weight * a.weight;
        ++count;
        EXPECT_GT(a.weight, 0.0);
      }
    }
  }
  const double mean = sum / static_cast<double>(count);
  const double var = sq / static_cast<double>(count) - mean * mean;
  EXPECT_NEAR(mean, 1.5, 0.05);
  EXPECT_NEAR(var, 0.5, 0.06);
}

TEST(Weights, DelaysAreSymmetric) {
  Topology t = build_fat_tree(4);
  apply_uniform_delay_weights(t.graph, 7);
  for (NodeId u = 0; u < t.graph.num_nodes(); ++u) {
    for (const auto& a : t.graph.neighbors(u)) {
      EXPECT_DOUBLE_EQ(a.weight, t.graph.edge_weight(a.to, u));
    }
  }
}

TEST(Weights, RejectsBadParameters) {
  Topology t = build_fat_tree(2);
  EXPECT_THROW(apply_uniform_delay_weights(t.graph, 1, -1.0, 0.5), PpdcError);
  EXPECT_THROW(apply_uniform_delay_weights(t.graph, 1, 1.5, -0.5), PpdcError);
}

}  // namespace
}  // namespace ppdc
