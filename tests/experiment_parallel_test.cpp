// Determinism contract of the parallel experiment runner (DESIGN.md §9):
// the SimJob pool must produce bit-identical PolicyStats for every thread
// count, and policy prototypes handed to run_experiment must never be
// mutated — every job runs on its own clone().
#include <gtest/gtest.h>

#include "fault/fault.hpp"
#include "sim/experiment.hpp"
#include "topology/fat_tree.hpp"

namespace ppdc {
namespace {

/// Bit-exact comparison of two MeanCi (EXPECT_EQ on doubles is exact).
void expect_same(const MeanCi& a, const MeanCi& b, const std::string& what) {
  EXPECT_EQ(a.mean, b.mean) << what << ".mean";
  EXPECT_EQ(a.ci95, b.ci95) << what << ".ci95";
}

void expect_same(const PolicyStats& a, const PolicyStats& b) {
  EXPECT_EQ(a.name, b.name);
  expect_same(a.total_cost, b.total_cost, a.name + " total_cost");
  expect_same(a.comm_cost, b.comm_cost, a.name + " comm_cost");
  expect_same(a.migration_cost, b.migration_cost, a.name + " migration_cost");
  expect_same(a.vnf_migrations, b.vnf_migrations, a.name + " vnf_migrations");
  expect_same(a.vm_migrations, b.vm_migrations, a.name + " vm_migrations");
  expect_same(a.recovery_migrations, b.recovery_migrations,
              a.name + " recovery_migrations");
  expect_same(a.recovery_cost, b.recovery_cost, a.name + " recovery_cost");
  expect_same(a.quarantined_flow_epochs, b.quarantined_flow_epochs,
              a.name + " quarantined_flow_epochs");
  expect_same(a.quarantine_penalty, b.quarantine_penalty,
              a.name + " quarantine_penalty");
  expect_same(a.downtime_epochs, b.downtime_epochs,
              a.name + " downtime_epochs");
  expect_same(a.truncated_solves, b.truncated_solves,
              a.name + " truncated_solves");
  ASSERT_EQ(a.hourly_cost.size(), b.hourly_cost.size());
  ASSERT_EQ(a.hourly_migrations.size(), b.hourly_migrations.size());
  for (std::size_t h = 0; h < a.hourly_cost.size(); ++h) {
    expect_same(a.hourly_cost[h], b.hourly_cost[h],
                a.name + " hourly_cost[" + std::to_string(h) + "]");
    expect_same(a.hourly_migrations[h], b.hourly_migrations[h],
                a.name + " hourly_migrations[" + std::to_string(h) + "]");
  }
}

/// An experiment that exercises the fault machinery: recovery, quarantine
/// and repair events all fire within the horizon.
ExperimentConfig faulty_config(const Topology& topo) {
  ExperimentConfig cfg;
  cfg.trials = 4;
  cfg.seed = 7;
  cfg.workload.num_pairs = 8;
  cfg.workload.intra_rack_fraction = 0.8;
  cfg.sfc_length = 3;
  cfg.sim.hours = 24;
  FaultScheduleConfig fcfg;
  fcfg.hours = cfg.sim.hours;
  fcfg.switch_mtbf = 12.0;
  fcfg.switch_mttr = 2.0;
  fcfg.link_mtbf = 24.0;
  fcfg.link_mttr = 2.0;
  fcfg.seed = 7;
  cfg.sim.faults = generate_fault_schedule(topo.graph, fcfg);
  cfg.sim.fault.quarantine_penalty = 50.0;
  return cfg;
}

TEST(ExperimentParallel, FourThreadsBitIdenticalToSerialUnderFaults) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  ExperimentConfig cfg = faulty_config(topo);

  ParetoMigrationPolicy pareto(1e4);
  NoMigrationPolicy none;
  ResolvePlacementPolicy resolve(1e4);
  const std::vector<const MigrationPolicy*> policies{&pareto, &none, &resolve};

  cfg.threads = 1;
  const auto serial = run_experiment(topo, apsp, cfg, policies);
  cfg.threads = 4;
  const auto parallel = run_experiment(topo, apsp, cfg, policies);

  // The schedule must actually have fired, or this test proves nothing.
  bool saw_faults = false;
  for (const auto& s : serial) {
    if (s.recovery_migrations.mean > 0.0 || s.quarantine_penalty.mean > 0.0) {
      saw_faults = true;
    }
  }
  ASSERT_TRUE(saw_faults) << "fault schedule never hit the chain";

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_same(serial[i], parallel[i]);
  }
}

TEST(ExperimentParallel, MoreThreadsThanJobsBitIdentical) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  ExperimentConfig cfg;
  cfg.trials = 2;
  cfg.workload.num_pairs = 5;
  cfg.sfc_length = 2;
  cfg.sim.hours = 4;
  NoMigrationPolicy none;
  cfg.threads = 1;
  const auto serial = run_experiment(topo, apsp, cfg, {&none});
  cfg.threads = 16;  // pool is clamped to the 2 available jobs
  const auto wide = run_experiment(topo, apsp, cfg, {&none});
  ASSERT_EQ(serial.size(), wide.size());
  expect_same(serial[0], wide[0]);
}

TEST(ExperimentParallel, ThreadResolutionContract) {
  EXPECT_EQ(resolve_experiment_threads(1), 1);
  EXPECT_EQ(resolve_experiment_threads(3), 3);
#if defined(PPDC_TSAN)
  EXPECT_EQ(resolve_experiment_threads(0), 1);
#else
  EXPECT_GE(resolve_experiment_threads(0), 1);
#endif
}

/// Stateful policy: counts how many epochs each *instance* has seen. If
/// the runner shared one instance across trials the counter would keep
/// climbing past the horizon.
class CountingPolicy final : public MigrationPolicy {
 public:
  std::string name() const override { return "Counting"; }
  std::unique_ptr<MigrationPolicy> clone() const override {
    ++clones_made;
    return std::make_unique<CountingPolicy>(*this);
  }
  EpochDecision on_epoch(const CostModel& model, SimState& state) override {
    ++epochs_seen;
    EpochDecision d;
    d.comm_cost = model.communication_cost(state.placement);
    // Smuggle the per-instance counter out through a cost channel: if
    // state leaked across trials this would diverge between thread counts.
    d.migration_cost = static_cast<double>(epochs_seen);
    return d;
  }
  int epochs_seen = 0;
  mutable int clones_made = 0;
};

TEST(ExperimentParallel, StatefulPolicyClonesAreIsolated) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  ExperimentConfig cfg;
  cfg.trials = 3;
  cfg.workload.num_pairs = 5;
  cfg.sfc_length = 2;
  cfg.sim.hours = 5;

  CountingPolicy proto;
  cfg.threads = 1;
  const auto serial = run_experiment(topo, apsp, cfg, {&proto});
  // The prototype itself never ran an epoch; each trial got its own clone.
  EXPECT_EQ(proto.epochs_seen, 0);
  EXPECT_EQ(proto.clones_made, cfg.trials);

  CountingPolicy proto2;
  cfg.threads = 4;
  const auto parallel = run_experiment(topo, apsp, cfg, {&proto2});
  EXPECT_EQ(proto2.epochs_seen, 0);
  expect_same(serial[0], parallel[0]);
  // Every trial's clone starts from zero: its migration_cost channel sums
  // 1..hours-1 (the policy runs hours-1 decision epochs), so the
  // per-trial total is the same for all trials and the CI collapses.
  EXPECT_EQ(serial[0].migration_cost.ci95, 0.0);
}

TEST(ExperimentParallel, CloneStartsFromPrototypeState) {
  // clone() is a copy, not a reset: configuration (and any pre-seeded
  // state) carried by the prototype must survive into the clone.
  CountingPolicy proto;
  proto.epochs_seen = 41;
  const auto copy = proto.clone();
  CountingPolicy& concrete = dynamic_cast<CountingPolicy&>(*copy);
  EXPECT_EQ(concrete.epochs_seen, 41);
  concrete.epochs_seen = 0;  // clones diverge without touching the proto
  EXPECT_EQ(proto.epochs_seen, 41);
}

}  // namespace
}  // namespace ppdc
