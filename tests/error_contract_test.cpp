// Every documented PpdcError path of the public API, asserted with its
// message content where the message is part of the contract (line numbers
// in the loaders, policy/epoch attribution in the engine, hour/flow
// attribution in the rate-schedule validation).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/cost_model.hpp"
#include "core/sharded_cost_model.hpp"
#include "fault/fault.hpp"
#include "io/serialize.hpp"
#include "sim/engine.hpp"
#include "sim/sharded.hpp"
#include "topology/fat_tree.hpp"
#include "topology/linear.hpp"
#include "util/require.hpp"
#include "workload/streaming.hpp"
#include "workload/vm_placement.hpp"

namespace ppdc {
namespace {

/// Runs `fn`, expecting a PpdcError; returns its message.
template <typename Fn>
std::string error_of(Fn&& fn) {
  try {
    fn();
  } catch (const PpdcError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected a PpdcError";
  return {};
}

bool mentions(const std::string& message, const std::string& needle) {
  return message.find(needle) != std::string::npos;
}

std::vector<VmFlow> random_flows(const Topology& topo, int l,
                                 std::uint64_t seed) {
  VmPlacementConfig cfg;
  cfg.num_pairs = l;
  Rng rng(seed);
  return generate_vm_flows(topo, cfg, rng);
}

TEST(ErrorContract, RateScheduleWrongSizeNamesHourAndCounts) {
  const Topology topo = build_linear(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 3, 1);
  NoMigrationPolicy policy;
  SimConfig cfg;
  cfg.hours = 2;
  cfg.rate_schedule = [](Hour) { return std::vector<double>{1.0}; };
  const std::string msg = error_of(
      [&] { run_simulation(apsp, flows, 2, cfg, policy); });
  EXPECT_TRUE(mentions(msg, "rate_schedule(hour 0)")) << msg;
  EXPECT_TRUE(mentions(msg, "returned 1 rates for 3 flows")) << msg;
}

TEST(ErrorContract, RateScheduleNegativeRateNamesFlow) {
  const Topology topo = build_linear(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 3, 1);
  NoMigrationPolicy policy;
  SimConfig cfg;
  cfg.hours = 2;
  cfg.rate_schedule = [](Hour hour) {
    std::vector<double> r{1.0, 1.0, 1.0};
    if (hour == Hour{1}) r[2] = -0.5;
    return r;
  };
  const std::string msg = error_of(
      [&] { run_simulation(apsp, flows, 2, cfg, policy); });
  EXPECT_TRUE(mentions(msg, "rate_schedule(hour 1)")) << msg;
  EXPECT_TRUE(mentions(msg, "negative rate for flow 2")) << msg;
}

/// A policy that hands back a corrupt placement (duplicate switch).
class VandalPolicy final : public MigrationPolicy {
 public:
  std::string name() const override { return "Vandal"; }
  std::unique_ptr<MigrationPolicy> clone() const override {
    return std::make_unique<VandalPolicy>(*this);
  }
  EpochDecision on_epoch(const CostModel&, SimState& state) override {
    state.placement.back() = state.placement.front();
    return {};
  }
};

TEST(ErrorContract, EngineNamesPolicyAndEpochOnInvalidPlacement) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 5, 2);
  VandalPolicy vandal;
  SimConfig cfg;
  cfg.hours = 3;
  const std::string msg = error_of(
      [&] { run_simulation(apsp, flows, 3, cfg, vandal); });
  EXPECT_TRUE(mentions(msg, "policy 'Vandal'")) << msg;
  EXPECT_TRUE(mentions(msg, "invalid placement at epoch 1")) << msg;
}

TEST(ErrorContract, LoadersReportLineNumberAndOffendingText) {
  // Physical line 3 (header on 1, comment on 2) carries the bad flow.
  std::stringstream bad_flow;
  bad_flow << "ppdc-flows v1\n# ok\nflow 1 2\n";
  std::string msg = error_of([&] { load_flows(bad_flow); });
  EXPECT_TRUE(mentions(msg, "line 3")) << msg;
  EXPECT_TRUE(mentions(msg, "malformed flow line")) << msg;
  EXPECT_TRUE(mentions(msg, "'flow 1 2'")) << msg;

  std::stringstream bad_directive;
  bad_directive << "ppdc-topology v1\nnode 0 host h0\nfrobnicate 1 2\n";
  msg = error_of([&] { load_topology(bad_directive); });
  EXPECT_TRUE(mentions(msg, "line 3")) << msg;
  EXPECT_TRUE(mentions(msg, "unknown topology directive")) << msg;

  std::stringstream sparse;
  sparse << "ppdc-placement v1\nvnf 0 4\nvnf 2 5\n";
  msg = error_of([&] { load_placement(sparse); });
  EXPECT_TRUE(mentions(msg, "line 3")) << msg;
  EXPECT_TRUE(mentions(msg, "dense")) << msg;

  std::stringstream wrong_header;
  wrong_header << "# preamble\nppdc-flows v2\n";
  msg = error_of([&] { load_flows(wrong_header); });
  EXPECT_TRUE(mentions(msg, "line 2")) << msg;
  EXPECT_TRUE(mentions(msg, "expected header 'ppdc-flows v1'")) << msg;
}

// Every file of the committed malformed-artifact corpus
// (tests/corpus/README.md) must raise a PpdcError whose message carries a
// 1-based line number — truncated, bit-rotted, and hostile inputs all get
// the same diagnosable rejection. The loader is picked by filename
// prefix; an unknown prefix is itself a test failure so stray files
// cannot silently skip coverage.
TEST(ErrorContract, MalformedCorpusAllRaiseLineNumberedErrors) {
  namespace fs = std::filesystem;
  const fs::path dir(PPDC_CORPUS_DIR);
  ASSERT_TRUE(fs::is_directory(dir)) << dir;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".txt") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  ASSERT_GE(files.size(), 15u) << "corpus looks gutted";
  for (const auto& path : files) {
    SCOPED_TRACE(path.filename().string());
    const std::string name = path.filename().string();
    std::ifstream in(path);
    ASSERT_TRUE(in.is_open()) << path;
    const std::string msg = error_of([&] {
      if (name.rfind("topo_", 0) == 0) {
        load_topology(in);
      } else if (name.rfind("flows_", 0) == 0) {
        load_flows(in);
      } else if (name.rfind("placement_", 0) == 0) {
        load_placement(in);
      } else {
        FAIL() << "corpus file with unknown loader prefix: " << name;
      }
    });
    EXPECT_TRUE(mentions(msg, "line ")) << name << ": " << msg;
  }
}

TEST(ErrorContract, LoaderAnchorsGraphErrorsOnTheOffendingLine) {
  // The graph layer rejects the duplicate edge; the loader must re-anchor
  // that diagnostic on the file line so the artifact is fixable.
  std::stringstream dup;
  dup << "ppdc-topology v1\nnode 0 switch s0\nnode 1 switch s1\n"
      << "edge 0 1 1.0\nedge 1 0 2.0\n";
  const std::string msg = error_of([&] { load_topology(dup); });
  EXPECT_TRUE(mentions(msg, "line 5")) << msg;
  EXPECT_TRUE(mentions(msg, "bad edge")) << msg;
}

TEST(ErrorContract, FaultInjectorRejectsInconsistentSchedules) {
  const Topology topo = build_fat_tree(4);
  const Graph& g = topo.graph;
  const NodeId sw = topo.rack_switches[RackIdx{0}];
  const NodeId host = topo.racks[RackIdx{0}][0];
  const FaultEvent fail{Hour{1}, FaultKind::kSwitchFail, sw, kInvalidNode,
                        kInvalidNode};

  // Unsorted epochs are rejected at construction.
  EXPECT_THROW(FaultInjector(g, {{Hour{2}, FaultKind::kSwitchFail, sw,
                                  kInvalidNode, kInvalidNode},
                                 fail}),
               PpdcError);
  // Switch events must name a switch.
  EXPECT_THROW(FaultInjector(g, {{Hour{1}, FaultKind::kSwitchFail, host,
                                  kInvalidNode, kInvalidNode}}),
               PpdcError);
  // Link events must name an existing normalized edge.
  EXPECT_THROW(FaultInjector(g, {{Hour{1}, FaultKind::kLinkFail, kInvalidNode,
                                  g.num_nodes() - 1, g.num_nodes() - 2}}),
               PpdcError);

  // Double failure / repair-of-healthy surface as the events are applied.
  FaultInjector double_fail(g, {fail, {Hour{2}, FaultKind::kSwitchFail, sw,
                                       kInvalidNode, kInvalidNode}});
  double_fail.advance_to(Hour{1});
  EXPECT_THROW(double_fail.advance_to(Hour{2}), PpdcError);
  FaultInjector repair_healthy(
      g, {{Hour{1}, FaultKind::kSwitchRepair, sw, kInvalidNode, kInvalidNode}});
  EXPECT_THROW(repair_healthy.advance_to(Hour{1}), PpdcError);
}

TEST(ErrorContract, EngineRejectsBadFaultConfig) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 4, 3);
  NoMigrationPolicy policy;
  SimConfig cfg;
  cfg.hours = 4;
  // Events at epoch 0 would fault the initial placement's fabric.
  cfg.faults = {{Hour{0}, FaultKind::kSwitchFail, topo.rack_switches[RackIdx{0}],
                 kInvalidNode, kInvalidNode}};
  EXPECT_THROW(run_simulation(apsp, flows, 3, cfg, policy), PpdcError);
  cfg.faults.clear();
  cfg.fault.mu = -1.0;
  EXPECT_THROW(run_simulation(apsp, flows, 3, cfg, policy), PpdcError);
  cfg.fault.mu = 1.0;
  cfg.fault.quarantine_penalty = -0.1;
  EXPECT_THROW(run_simulation(apsp, flows, 3, cfg, policy), PpdcError);
}

/// A policy that relocates VM endpoints (reports moved_flows), standing
/// in for PLAN/MCF on the sharded engine.
class VmRelocatingPolicy final : public MigrationPolicy {
 public:
  std::string name() const override { return "VmRelocator"; }
  std::unique_ptr<MigrationPolicy> clone() const override {
    return std::make_unique<VmRelocatingPolicy>(*this);
  }
  EpochDecision on_epoch(const CostModel& model, SimState& state) override {
    EpochDecision d;
    d.comm_cost = model.communication_cost(state.placement);
    d.moved_flows.push_back(FlowId{0});
    return d;
  }
};

// Monolithic-only features rejected by the sharded engine must name the
// offending feature AND the nearest supported alternative — a user hitting
// the wall learns where to go, not just that they hit it.
TEST(ErrorContract, ShardedRateScheduleRejectionNamesAlternatives) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const ShardMap map = ShardMap::by_ingress_pod(topo);
  VmPlacementConfig wl;
  wl.num_pairs = 40;
  StreamingWorkload workload(topo, wl, StreamingChurnConfig{}, Rng(7));
  SimConfig cfg;
  cfg.hours = 3;
  cfg.rate_schedule = [](Hour) { return std::vector<double>{}; };
  ShardedStreamingConfig sharded;
  sharded.enabled = true;
  sharded.threads = 1;
  NoMigrationPolicy policy;
  const std::string msg = error_of([&] {
    run_sharded_simulation(apsp, map, workload, 3, cfg, sharded, policy);
  });
  EXPECT_TRUE(mentions(msg, "rate_schedule")) << msg;
  EXPECT_TRUE(mentions(msg, "monolithic run_simulation")) << msg;
  EXPECT_TRUE(mentions(msg, "DiurnalModel")) << msg;
}

TEST(ErrorContract, ShardedVmRelocationRejectionNamesAlternatives) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const ShardMap map = ShardMap::by_ingress_pod(topo);
  VmPlacementConfig wl;
  wl.num_pairs = 40;
  StreamingWorkload workload(topo, wl, StreamingChurnConfig{}, Rng(7));
  SimConfig cfg;
  cfg.hours = 3;
  // Reporting moved_flows is a contract violation, not a shard fault: the
  // rejection must fire even with the containment ladder enabled.
  cfg.ladder.enabled = true;
  ShardedStreamingConfig sharded;
  sharded.enabled = true;
  sharded.threads = 1;
  VmRelocatingPolicy policy;
  const std::string msg = error_of([&] {
    run_sharded_simulation(apsp, map, workload, 3, cfg, sharded, policy);
  });
  EXPECT_TRUE(mentions(msg, "policy 'VmRelocator'")) << msg;
  EXPECT_TRUE(mentions(msg, "moved_flows")) << msg;
  EXPECT_TRUE(mentions(msg, "at epoch 1")) << msg;
  EXPECT_TRUE(mentions(msg, "PLAN")) << msg;
  EXPECT_TRUE(mentions(msg, "monolithic run_simulation")) << msg;
  EXPECT_TRUE(mentions(msg, "NoMigration/mPareto/Optimal/Resolve")) << msg;
}

TEST(ErrorContract, RestrictCandidatesValidatesItsUniverse) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  auto flows = random_flows(topo, 4, 4);
  CostModel model(apsp, flows);
  const NodeId sw = topo.rack_switches[RackIdx{0}];
  EXPECT_THROW(model.restrict_candidates({}), PpdcError);
  EXPECT_THROW(model.restrict_candidates({topo.racks[RackIdx{0}][0]}), PpdcError);
  EXPECT_THROW(model.restrict_candidates({sw, sw}), PpdcError);
  // A valid restriction narrows the solver universe.
  model.restrict_candidates({sw, topo.rack_switches[RackIdx{1}]});
  EXPECT_EQ(model.placement_candidates().size(), 2u);
}

}  // namespace
}  // namespace ppdc
