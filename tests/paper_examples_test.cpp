// End-to-end reproduction of every worked example in the paper's text.
// These tests pin the library to the exact numbers printed in §I/§III/§IV
// (Fig. 1, Fig. 3/Example 1, Fig. 5, Example 3) — if any algorithm drifts,
// the reproduction is broken and these fail first.
#include <gtest/gtest.h>

#include "core/chain_search.hpp"
#include "core/migration_pareto.hpp"
#include "core/placement_dp.hpp"
#include "core/stroll_dp.hpp"
#include "topology/fat_tree.hpp"
#include "topology/linear.hpp"

namespace ppdc {
namespace {

/// Fig. 1 / Fig. 3 world: linear PPDC (== k=2 fat-tree), two co-located
/// VM pairs, SFC (f1, f2), μ = 1.
struct Fig3World {
  Topology topo = build_linear(5);
  AllPairs apsp{topo.graph};
  NodeId h1 = topo.graph.hosts()[0];
  NodeId h2 = topo.graph.hosts()[1];
  std::vector<NodeId> s = topo.graph.switches();
};

TEST(PaperExamples, Fig3aInitialOptimalPlacementCosts410) {
  Fig3World w;
  const std::vector<VmFlow> flows{{w.h1, w.h1, 100.0}, {w.h2, w.h2, 1.0}};
  CostModel cm(w.apsp, flows);
  // Both the DP heuristic and the exhaustive optimum find 410 here.
  EXPECT_DOUBLE_EQ(solve_top_dp(cm, 2).comm_cost, 410.0);
  EXPECT_DOUBLE_EQ(solve_top_exhaustive(cm, 2).objective, 410.0);
}

TEST(PaperExamples, Fig3bTrafficFlipRaisesCostTo1004) {
  Fig3World w;
  const std::vector<VmFlow> flows{{w.h1, w.h1, 1.0}, {w.h2, w.h2, 100.0}};
  CostModel cm(w.apsp, flows);
  EXPECT_DOUBLE_EQ(cm.communication_cost({w.s[0], w.s[1]}), 1004.0);
}

TEST(PaperExamples, Fig3cdMigrationAchieves58Point6PercentReduction) {
  Fig3World w;
  const std::vector<VmFlow> flows{{w.h1, w.h1, 1.0}, {w.h2, w.h2, 100.0}};
  CostModel cm(w.apsp, flows);
  const Placement initial{w.s[0], w.s[1]};
  const MigrationResult r = solve_tom_pareto(cm, initial, 1.0);
  // (s5, s4) as in Fig. 3(c), or the equal-cost mirror (s4, s5).
  const bool matches_paper = r.migration == Placement{w.s[4], w.s[3]} ||
                             r.migration == Placement{w.s[3], w.s[4]};
  EXPECT_TRUE(matches_paper);
  EXPECT_DOUBLE_EQ(r.migration_cost, 6.0);
  EXPECT_DOUBLE_EQ(r.comm_cost, 410.0);
  const double reduction =
      1.0 - r.total_cost / cm.communication_cost(initial);
  EXPECT_NEAR(reduction, 0.586, 0.005);  // "58.6% of total cost reduction"
}

TEST(PaperExamples, Fig3MigrationIsAlsoTheExhaustiveOptimum) {
  Fig3World w;
  const std::vector<VmFlow> flows{{w.h1, w.h1, 1.0}, {w.h2, w.h2, 100.0}};
  CostModel cm(w.apsp, flows);
  const Placement initial{w.s[0], w.s[1]};
  const ChainSearchResult opt = solve_tom_exhaustive(cm, initial, 1.0);
  ASSERT_TRUE(opt.proven_optimal);
  EXPECT_DOUBLE_EQ(opt.objective, 416.0);
}

TEST(PaperExamples, Fig5OptimalTwoTourFromH1) {
  // Fig. 5: with both VMs of the single flow on h1, the optimal s-t 2-tour
  // is h1, s1, s2, s1, h1: cost 1 + 1 + 1 + 1 = 4.
  Fig3World w;
  const StrollResult r = solve_top1_dp(w.apsp, w.h1, w.h1, 2);
  EXPECT_DOUBLE_EQ(r.cost, 4.0);
  EXPECT_EQ(r.placement, (Placement{w.s[0], w.s[1]}));
}

TEST(PaperExamples, Fig2PolicyPreservingRouteCost10) {
  // Fig. 2 caption: (v1, v1') traverses the SFC for a policy-preserving
  // cost of 1 x 10. We reproduce the *structure*: a flow whose endpoints
  // sit under the ingress rack pays exactly
  // c(h, f1) + chain + c(f3, h') on the k=4 fat-tree.
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const NodeId src = topo.racks[RackIdx{0}][0];
  const NodeId dst = topo.racks[RackIdx{0}][1];
  const std::vector<VmFlow> flows{{src, dst, 1.0}};
  CostModel cm(apsp, flows);
  // Place the SFC across pods like Fig. 2 (edge pod0, agg pod1, core):
  const auto& g = topo.graph;
  NodeId edge0 = kInvalidNode, agg1 = kInvalidNode, core = kInvalidNode;
  for (const NodeId sw : g.switches()) {
    if (g.label(sw) == "edge0_0") edge0 = sw;
    if (g.label(sw) == "agg1_0") agg1 = sw;
    if (g.label(sw) == "core0_0") core = sw;
  }
  ASSERT_NE(edge0, kInvalidNode);
  ASSERT_NE(agg1, kInvalidNode);
  ASSERT_NE(core, kInvalidNode);
  const double cost = cm.communication_cost({edge0, agg1, core});
  // h -> edge0 (1) + edge0 -> agg1 (3) + agg1 -> core (1) + core -> h' (3).
  EXPECT_DOUBLE_EQ(cost, 8.0);
}

TEST(PaperExamples, Example3SevenStrollOnK4FatTree) {
  // Example 3: placing 7 VNFs between hosts of different pods. The optimal
  // stroll uses 8 edges of one hop each; DP-Stroll avoids the lossy
  // s1-s2-s1-s2 style loops thanks to the anti-backtrack rule.
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const NodeId h4 = topo.racks[RackIdx{1}][1];  // pod 0
  const NodeId h5 = topo.racks[RackIdx{2}][0];  // pod 1
  const std::vector<VmFlow> flows{{h4, h5, 1.0}};
  CostModel cm(apsp, flows);
  const ChainSearchResult opt = solve_top_exhaustive(cm, 7);
  ASSERT_TRUE(opt.proven_optimal);
  EXPECT_DOUBLE_EQ(opt.objective, 8.0);
  const StrollResult dp = solve_top1_dp(apsp, h4, h5, 7);
  EXPECT_GE(dp.cost, 8.0);
  // §VI Fig. 7: DP-Stroll stays within ~8% of optimal on fat-trees; allow
  // a wider 25% belt for this single adversarial instance.
  EXPECT_LE(dp.cost, 10.0);
}

TEST(PaperExamples, Theorem4TopIsTomWithZeroMu) {
  Fig3World w;
  const std::vector<VmFlow> flows{{w.h1, w.h2, 5.0}, {w.h2, w.h1, 2.0}};
  CostModel cm(w.apsp, flows);
  const ChainSearchResult top = solve_top_exhaustive(cm, 3);
  const ChainSearchResult tom =
      solve_tom_exhaustive(cm, {w.s[0], w.s[1], w.s[2]}, 0.0);
  EXPECT_DOUBLE_EQ(top.objective, tom.objective);
}

}  // namespace
}  // namespace ppdc
