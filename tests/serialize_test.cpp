#include "io/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/apsp.hpp"
#include "topology/fat_tree.hpp"
#include "topology/misc.hpp"
#include "workload/vm_placement.hpp"

namespace ppdc {
namespace {

TEST(Serialize, TopologyRoundTripPreservesEverything) {
  const Topology original = build_fat_tree(4);
  std::stringstream buf;
  save_topology(buf, original);
  const Topology loaded = load_topology(buf);

  EXPECT_EQ(loaded.name, original.name);
  ASSERT_EQ(loaded.graph.num_nodes(), original.graph.num_nodes());
  EXPECT_EQ(loaded.graph.num_edges(), original.graph.num_edges());
  for (NodeId v = 0; v < original.graph.num_nodes(); ++v) {
    EXPECT_EQ(loaded.graph.kind(v), original.graph.kind(v));
    EXPECT_EQ(loaded.graph.label(v), original.graph.label(v));
  }
  EXPECT_EQ(loaded.racks, original.racks);
  EXPECT_EQ(loaded.rack_switches, original.rack_switches);
  // Distances agree — the fabric is functionally identical.
  const AllPairs a(original.graph), b(loaded.graph);
  EXPECT_DOUBLE_EQ(a.diameter(), b.diameter());
}

TEST(Serialize, WeightedTopologyKeepsWeights) {
  const Topology original = build_random_connected(8, 4, 5, 0.5, 3.0, 7);
  std::stringstream buf;
  save_topology(buf, original);
  const Topology loaded = load_topology(buf);
  for (NodeId u = 0; u < original.graph.num_nodes(); ++u) {
    for (const auto& adj : original.graph.neighbors(u)) {
      EXPECT_NEAR(loaded.graph.edge_weight(u, adj.to), adj.weight, 1e-9);
    }
  }
}

TEST(Serialize, FlowsRoundTrip) {
  const Topology topo = build_fat_tree(4);
  VmPlacementConfig cfg;
  cfg.num_pairs = 20;
  Rng rng(5);
  const auto flows = generate_vm_flows(topo, cfg, rng);
  std::stringstream buf;
  save_flows(buf, flows);
  const auto loaded = load_flows(buf);
  ASSERT_EQ(loaded.size(), flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_EQ(loaded[i].src_host, flows[i].src_host);
    EXPECT_EQ(loaded[i].dst_host, flows[i].dst_host);
    EXPECT_NEAR(loaded[i].rate, flows[i].rate, 1e-6);
    EXPECT_EQ(loaded[i].group, flows[i].group);
  }
}

TEST(Serialize, PlacementRoundTrip) {
  const Placement p{4, 17, 9};
  std::stringstream buf;
  save_placement(buf, p);
  EXPECT_EQ(load_placement(buf), p);
}

TEST(Serialize, SkipsCommentsAndBlankLines) {
  std::stringstream buf;
  buf << "# a comment\n\nppdc-flows v1\n# another\nflow 1 2 3.5 0\n\n";
  const auto flows = load_flows(buf);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].src_host, 1);
  EXPECT_DOUBLE_EQ(flows[0].rate, 3.5);
}

TEST(Serialize, RejectsWrongHeader) {
  std::stringstream buf;
  buf << "ppdc-flows v1\n";
  EXPECT_THROW(load_topology(buf), PpdcError);
  std::stringstream buf2;
  buf2 << "ppdc-topology v2\n";
  EXPECT_THROW(load_topology(buf2), PpdcError);
  std::stringstream empty;
  EXPECT_THROW(load_flows(empty), PpdcError);
}

TEST(Serialize, RejectsMalformedLines) {
  std::stringstream bad_node;
  bad_node << "ppdc-topology v1\nnode 0 gateway g0\n";
  EXPECT_THROW(load_topology(bad_node), PpdcError);

  std::stringstream sparse_ids;
  sparse_ids << "ppdc-topology v1\nnode 5 host h\n";
  EXPECT_THROW(load_topology(sparse_ids), PpdcError);

  std::stringstream bad_flow;
  bad_flow << "ppdc-flows v1\nflow 1 2\n";
  EXPECT_THROW(load_flows(bad_flow), PpdcError);

  std::stringstream bad_vnf;
  bad_vnf << "ppdc-placement v1\nvnf 3 7\n";
  EXPECT_THROW(load_placement(bad_vnf), PpdcError);
}

TEST(Serialize, SavedArtifactsEndWithACrcFooterLine) {
  std::stringstream buf;
  save_placement(buf, Placement{1, 2, 3});
  const std::string text = buf.str();
  // Final line is "# crc32 <8 hex digits>\n".
  const auto footer_at = text.rfind("# crc32 ");
  ASSERT_NE(footer_at, std::string::npos);
  EXPECT_EQ(text.size() - footer_at, std::string("# crc32 xxxxxxxx\n").size());
}

TEST(Serialize, CorruptByteIsDetectedWithLineAndRange) {
  std::stringstream buf;
  save_topology(buf, build_fat_tree(4));
  std::string text = buf.str();
  // Flip one bit in the body (well before the footer line).
  text[text.size() / 2] = static_cast<char>(text[text.size() / 2] ^ 0x01);
  std::stringstream corrupted(text);
  try {
    load_topology(corrupted);
    FAIL() << "corrupt topology loaded without error";
  } catch (const PpdcError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("crc32 mismatch"), std::string::npos) << msg;
    EXPECT_NE(msg.find("line "), std::string::npos) << msg;
    EXPECT_NE(msg.find("bytes [0, "), std::string::npos) << msg;
  }
}

TEST(Serialize, TruncatedArtifactFailsTheFooterCheck) {
  std::stringstream buf;
  save_flows(buf, {VmFlow{1, 2, 3.5, 0}});
  std::string text = buf.str();
  // Drop a line from the middle but keep the footer: the CRC no longer
  // covers what it claims to.
  const auto cut = text.find("flow ");
  ASSERT_NE(cut, std::string::npos);
  const auto line_end = text.find('\n', cut);
  text.erase(cut, line_end - cut + 1);
  std::stringstream truncated(text);
  EXPECT_THROW(load_flows(truncated), PpdcError);
}

TEST(Serialize, MalformedFooterHexIsRejected) {
  std::stringstream buf;
  save_placement(buf, Placement{4, 5});
  std::string text = buf.str();
  const auto footer_at = text.rfind("# crc32 ");
  ASSERT_NE(footer_at, std::string::npos);
  text[footer_at + 9] = 'z';  // not a hex digit
  std::stringstream mangled(text);
  try {
    load_placement(mangled);
    FAIL() << "malformed footer accepted";
  } catch (const PpdcError& e) {
    EXPECT_NE(std::string(e.what()).find("malformed crc32 footer"),
              std::string::npos)
        << e.what();
  }
}

TEST(Serialize, LegacyFooterlessFileLoadsWithAWarning) {
  std::stringstream buf;
  const Placement original{7, 3, 11};
  save_placement(buf, original);
  std::string text = buf.str();
  const auto footer_at = text.rfind("# crc32 ");
  ASSERT_NE(footer_at, std::string::npos);
  text.erase(footer_at);  // a file written before the footer existed
  std::stringstream legacy(text);
  testing::internal::CaptureStderr();
  const Placement loaded = load_placement(legacy);
  const std::string warning = testing::internal::GetCapturedStderr();
  EXPECT_EQ(loaded, original);
  EXPECT_NE(warning.find("no crc32 footer"), std::string::npos) << warning;
  EXPECT_NE(warning.find("legacy"), std::string::npos) << warning;
}

TEST(Serialize, RoundTripThroughTheFooterIsByteStable) {
  // save → load → save must reproduce the same bytes (and thus the same
  // CRC): the footer never feeds back into the body.
  const Topology topo = build_fat_tree(4);
  std::stringstream first;
  save_topology(first, topo);
  std::stringstream second;
  save_topology(second, load_topology(first));
  EXPECT_EQ(first.str(), second.str());
}

}  // namespace
}  // namespace ppdc
