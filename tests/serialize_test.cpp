#include "io/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/apsp.hpp"
#include "topology/fat_tree.hpp"
#include "topology/misc.hpp"
#include "workload/vm_placement.hpp"

namespace ppdc {
namespace {

TEST(Serialize, TopologyRoundTripPreservesEverything) {
  const Topology original = build_fat_tree(4);
  std::stringstream buf;
  save_topology(buf, original);
  const Topology loaded = load_topology(buf);

  EXPECT_EQ(loaded.name, original.name);
  ASSERT_EQ(loaded.graph.num_nodes(), original.graph.num_nodes());
  EXPECT_EQ(loaded.graph.num_edges(), original.graph.num_edges());
  for (NodeId v = 0; v < original.graph.num_nodes(); ++v) {
    EXPECT_EQ(loaded.graph.kind(v), original.graph.kind(v));
    EXPECT_EQ(loaded.graph.label(v), original.graph.label(v));
  }
  EXPECT_EQ(loaded.racks, original.racks);
  EXPECT_EQ(loaded.rack_switches, original.rack_switches);
  // Distances agree — the fabric is functionally identical.
  const AllPairs a(original.graph), b(loaded.graph);
  EXPECT_DOUBLE_EQ(a.diameter(), b.diameter());
}

TEST(Serialize, WeightedTopologyKeepsWeights) {
  const Topology original = build_random_connected(8, 4, 5, 0.5, 3.0, 7);
  std::stringstream buf;
  save_topology(buf, original);
  const Topology loaded = load_topology(buf);
  for (NodeId u = 0; u < original.graph.num_nodes(); ++u) {
    for (const auto& adj : original.graph.neighbors(u)) {
      EXPECT_NEAR(loaded.graph.edge_weight(u, adj.to), adj.weight, 1e-9);
    }
  }
}

TEST(Serialize, FlowsRoundTrip) {
  const Topology topo = build_fat_tree(4);
  VmPlacementConfig cfg;
  cfg.num_pairs = 20;
  Rng rng(5);
  const auto flows = generate_vm_flows(topo, cfg, rng);
  std::stringstream buf;
  save_flows(buf, flows);
  const auto loaded = load_flows(buf);
  ASSERT_EQ(loaded.size(), flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_EQ(loaded[i].src_host, flows[i].src_host);
    EXPECT_EQ(loaded[i].dst_host, flows[i].dst_host);
    EXPECT_NEAR(loaded[i].rate, flows[i].rate, 1e-6);
    EXPECT_EQ(loaded[i].group, flows[i].group);
  }
}

TEST(Serialize, PlacementRoundTrip) {
  const Placement p{4, 17, 9};
  std::stringstream buf;
  save_placement(buf, p);
  EXPECT_EQ(load_placement(buf), p);
}

TEST(Serialize, SkipsCommentsAndBlankLines) {
  std::stringstream buf;
  buf << "# a comment\n\nppdc-flows v1\n# another\nflow 1 2 3.5 0\n\n";
  const auto flows = load_flows(buf);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].src_host, 1);
  EXPECT_DOUBLE_EQ(flows[0].rate, 3.5);
}

TEST(Serialize, RejectsWrongHeader) {
  std::stringstream buf;
  buf << "ppdc-flows v1\n";
  EXPECT_THROW(load_topology(buf), PpdcError);
  std::stringstream buf2;
  buf2 << "ppdc-topology v2\n";
  EXPECT_THROW(load_topology(buf2), PpdcError);
  std::stringstream empty;
  EXPECT_THROW(load_flows(empty), PpdcError);
}

TEST(Serialize, RejectsMalformedLines) {
  std::stringstream bad_node;
  bad_node << "ppdc-topology v1\nnode 0 gateway g0\n";
  EXPECT_THROW(load_topology(bad_node), PpdcError);

  std::stringstream sparse_ids;
  sparse_ids << "ppdc-topology v1\nnode 5 host h\n";
  EXPECT_THROW(load_topology(sparse_ids), PpdcError);

  std::stringstream bad_flow;
  bad_flow << "ppdc-flows v1\nflow 1 2\n";
  EXPECT_THROW(load_flows(bad_flow), PpdcError);

  std::stringstream bad_vnf;
  bad_vnf << "ppdc-placement v1\nvnf 3 7\n";
  EXPECT_THROW(load_placement(bad_vnf), PpdcError);
}

}  // namespace
}  // namespace ppdc
