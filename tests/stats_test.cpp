#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ppdc {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMeanAndVariance) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: Σ(x-5)^2 = 32 -> 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, SumMatchesMeanTimesCount) {
  RunningStats s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_NEAR(s.sum(), 5050.0, 1e-9);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(static_cast<double>(i)) * 10.0;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeMatchesSequentialTo1e12) {
  // The experiment runner's determinism contract (DESIGN.md §9) leans on
  // Chan's pairwise combine being exact to high precision even for
  // ill-conditioned splits: samples of wildly different magnitude,
  // partitioned contiguously rather than interleaved.
  RunningStats front, back, all;
  for (int i = 0; i < 200; ++i) {
    const double x =
        std::cos(static_cast<double>(i)) * (i < 100 ? 1e6 : 1e-3) + 42.0;
    (i < 100 ? front : back).add(x);
    all.add(x);
  }
  front.merge(back);
  EXPECT_EQ(front.count(), all.count());
  EXPECT_NEAR(front.mean(), all.mean(), 1e-12 * std::abs(all.mean()));
  EXPECT_NEAR(front.variance(), all.variance(),
              1e-12 * std::abs(all.variance()));
  EXPECT_EQ(front.min(), all.min());
  EXPECT_EQ(front.max(), all.max());
}

TEST(RunningStats, MergingSingletonsMatchesAddingMeanBitExact) {
  // The experiment runner reduces per-job (single-sample) accumulators
  // with merge(). For nb = 1 Chan's mean update `delta * nb / nt`
  // degenerates to Welford's `delta / n` exactly — so the reported means
  // are *bit-identical* to the historical serial add loop. The m2 update
  // takes a different (equally stable) rounding path, so variance may
  // differ from sequential add by an ulp or two — but never more.
  const double samples[] = {3.25,      -17.5, 1e9,  0.1,
                            2.0 / 3.0, -1e-7, 42.0, 1.0 / 3.0};
  RunningStats sequential, merged;
  for (const double x : samples) {
    sequential.add(x);
    RunningStats single;
    single.add(x);
    merged.merge(single);
    EXPECT_EQ(merged.count(), sequential.count());
    EXPECT_EQ(merged.mean(), sequential.mean());  // exact, not NEAR
    EXPECT_EQ(merged.min(), sequential.min());
    EXPECT_EQ(merged.max(), sequential.max());
    EXPECT_NEAR(merged.variance(), sequential.variance(),
                4e-16 * sequential.variance());
  }
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.mean(), mean);
}

TEST(TQuantile, MatchesTableValues) {
  EXPECT_DOUBLE_EQ(t_quantile_975(1), 12.706);
  EXPECT_DOUBLE_EQ(t_quantile_975(19), 2.093);  // df for 20 paper runs
  EXPECT_DOUBLE_EQ(t_quantile_975(30), 2.042);
  EXPECT_DOUBLE_EQ(t_quantile_975(100), 1.960);
  EXPECT_TRUE(std::isinf(t_quantile_975(0)));
}

TEST(MeanCiTest, TwentySampleCiUsesStudentT) {
  std::vector<double> xs;
  for (int i = 0; i < 20; ++i) xs.push_back(static_cast<double>(i % 2));
  const MeanCi mc = mean_ci(xs);
  EXPECT_DOUBLE_EQ(mc.mean, 0.5);
  // stddev of alternating 0/1 with n-1: sqrt(5/19) approx 0.51299.
  const double se = std::sqrt(5.0 / 19.0) / std::sqrt(20.0);
  EXPECT_NEAR(mc.ci95, 2.093 * se, 1e-9);
}

TEST(MeanCiTest, EmptyAndSingle) {
  EXPECT_EQ(mean_ci({}).mean, 0.0);
  EXPECT_EQ(mean_ci({}).ci95, 0.0);
  EXPECT_EQ(mean_ci({7.0}).mean, 7.0);
  EXPECT_EQ(mean_ci({7.0}).ci95, 0.0);
}

TEST(MeanOf, Basics) {
  EXPECT_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
}

}  // namespace
}  // namespace ppdc
