// The compile-time index-safety layer: StrongId domain separation,
// IndexedVector typed subscripts with bounds checking, id ranges,
// hashing, and the FlowId-indexed serialization round trip.
//
// PPDC_CHECK_IDS is forced on before any include so operator[] is
// bounds-checked here even in release (NDEBUG) builds.
#define PPDC_CHECK_IDS 1

#include "util/strong_id.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>

#include "io/serialize.hpp"
#include "topology/linear.hpp"
#include "util/ids.hpp"
#include "util/indexed_vector.hpp"
#include "workload/traffic.hpp"

namespace ppdc {
namespace {

// --- Compile-time contract: domains do not mix. ---------------------------
// No conversion (implicit or explicit) between different tags, and no
// implicit conversion from / to the raw representation.
static_assert(!std::is_convertible_v<FlowId, Hour>);
static_assert(!std::is_constructible_v<FlowId, Hour>);
static_assert(!std::is_constructible_v<Hour, FlowId>);
static_assert(!std::is_constructible_v<CandidateIdx, SwitchIdx>);
static_assert(!std::is_constructible_v<RackIdx, ChainPos>);
static_assert(!std::is_assignable_v<FlowId&, Hour>);
static_assert(!std::is_convertible_v<int, FlowId>);  // explicit ctor only
static_assert(!std::is_convertible_v<FlowId, int>);  // value() is the exit
static_assert(std::is_constructible_v<FlowId, int>);
// Zero overhead: a typed id is layout-identical to its representation.
static_assert(sizeof(FlowId) == sizeof(std::int32_t));
static_assert(std::is_trivially_copyable_v<FlowId>);
// The trait constrains IndexedVector instantiation.
static_assert(is_strong_id_v<FlowId>);
static_assert(!is_strong_id_v<int>);

TEST(StrongId, DefaultIsInvalidSentinel) {
  const FlowId none;
  EXPECT_FALSE(none.valid());
  EXPECT_EQ(none, FlowId::invalid());
  EXPECT_EQ(none.value(), -1);
  EXPECT_TRUE(FlowId{0}.valid());
}

TEST(StrongId, ComparesAndIterates) {
  FlowId i{3};
  EXPECT_LT(FlowId{2}, i);
  EXPECT_EQ(i.next(), FlowId{4});
  EXPECT_EQ(++i, FlowId{4});
  EXPECT_EQ(i++, FlowId{4});
  EXPECT_EQ(i, FlowId{5});
  EXPECT_EQ(--i, FlowId{4});
}

TEST(StrongId, StreamsAsRawValue) {
  std::ostringstream os;
  os << FlowId{42};
  EXPECT_EQ(os.str(), "42");
}

TEST(StrongId, HashesIntoUnorderedContainers) {
  std::unordered_set<FlowId> seen;
  for (const FlowId i : id_range<FlowId>(100)) seen.insert(i);
  seen.insert(FlowId{7});  // duplicate
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_TRUE(seen.contains(FlowId{99}));
  EXPECT_FALSE(seen.contains(FlowId{100}));

  std::unordered_map<Hour, double> scale;
  scale[Hour{6}] = 1.0;
  scale[Hour{0}] = 0.2;
  EXPECT_DOUBLE_EQ(scale.at(Hour{6}), 1.0);
}

TEST(StrongId, IdRangeCoversHalfOpenInterval) {
  std::vector<int> values;
  for (const Hour h : id_range(Hour{2}, Hour{5})) values.push_back(h.value());
  EXPECT_EQ(values, (std::vector<int>{2, 3, 4}));
  EXPECT_TRUE(id_range(Hour{3}, Hour{3}).empty());
  EXPECT_TRUE(id_range(Hour{4}, Hour{3}).empty());
  std::size_t count = 0;
  for ([[maybe_unused]] const FlowId i : id_range<FlowId>(std::size_t{4})) {
    ++count;
  }
  EXPECT_EQ(count, 4u);
}

TEST(StrongId, CheckedCastIdGuardsOverflow) {
  EXPECT_EQ(checked_cast_id<FlowId>(std::size_t{12}), FlowId{12});
  EXPECT_THROW(checked_cast_id<FlowId>(std::size_t{1} << 40, "flow count"),
               PpdcError);
}

TEST(IndexedVector, TypedSubscriptAndGrowth) {
  IndexedVector<FlowId, double> rates;
  EXPECT_TRUE(rates.empty());
  EXPECT_EQ(rates.push_back(10.0), FlowId{0});
  EXPECT_EQ(rates.emplace_back(20.0), FlowId{1});
  EXPECT_EQ(rates.size(), 2u);
  EXPECT_EQ(rates.end_id(), FlowId{2});
  rates[FlowId{0}] = 15.0;
  EXPECT_DOUBLE_EQ(rates[FlowId{0}], 15.0);
  EXPECT_DOUBLE_EQ(rates.at(FlowId{1}), 20.0);
  EXPECT_DOUBLE_EQ(rates.front(), 15.0);
  EXPECT_DOUBLE_EQ(rates.back(), 20.0);
}

TEST(IndexedVector, BoundsCheckedWhenEnabled) {
  // PPDC_CHECK_IDS is defined 1 above: operator[] and at() both throw the
  // library's PpdcError on any out-of-domain id, including the sentinel.
  IndexedVector<FlowId, int> v(3, 0);
  EXPECT_THROW(v[FlowId{3}], PpdcError);
  EXPECT_THROW(v[FlowId{-2}], PpdcError);
  EXPECT_THROW(v[FlowId::invalid()], PpdcError);
  EXPECT_THROW(v.at(FlowId{99}), PpdcError);
  EXPECT_NO_THROW(v.at(FlowId{2}));
  // The error names the offending index and the valid domain.
  try {
    v.at(FlowId{5});
    FAIL() << "expected a PpdcError";
  } catch (const PpdcError& e) {
    EXPECT_NE(std::string(e.what()).find("index 5"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("[0, 3)"), std::string::npos);
  }
}

TEST(IndexedVector, ContainsAndIds) {
  IndexedVector<ChainPos, int> v(4, 7);
  EXPECT_TRUE(v.contains(ChainPos{0}));
  EXPECT_TRUE(v.contains(ChainPos{3}));
  EXPECT_FALSE(v.contains(ChainPos{4}));
  EXPECT_FALSE(v.contains(ChainPos::invalid()));
  int sum = 0;
  for (const ChainPos j : v.ids()) sum += v[j];
  EXPECT_EQ(sum, 28);
}

TEST(IndexedVector, AdoptsAndReleasesRawStorage) {
  IndexedVector<CandidateIdx, int> v(std::vector<int>{5, 6, 7});
  EXPECT_EQ(v[CandidateIdx{1}], 6);
  EXPECT_EQ(v.raw(), (std::vector<int>{5, 6, 7}));
  const std::vector<int> out = std::move(v).take();
  EXPECT_EQ(out, (std::vector<int>{5, 6, 7}));
}

TEST(IndexedVector, EqualityIsElementwise) {
  IndexedVector<FlowId, int> a(2, 1);
  IndexedVector<FlowId, int> b(2, 1);
  EXPECT_EQ(a, b);
  b[FlowId{1}] = 2;
  EXPECT_NE(a, b);
}

// --- Serialization round trip in the FlowId domain. -----------------------
// flow_count() is the typed size of the flow table; saving and loading
// must preserve every field at every FlowId.
TEST(StrongId, FlowSerializationRoundTripPreservesFlowIdIndexing) {
  const Topology topo = build_linear(5);
  const NodeId h1 = topo.graph.hosts()[0];
  const NodeId h2 = topo.graph.hosts()[1];
  const std::vector<VmFlow> flows{{h1, h2, 100.5, 0},
                                  {h2, h1, 1.25, 1},
                                  {h1, h1, 0.0, 2}};
  ASSERT_EQ(flow_count(flows), FlowId{3});

  std::stringstream ss;
  save_flows(ss, flows);
  const std::vector<VmFlow> loaded = load_flows(ss);
  ASSERT_EQ(flow_count(loaded), flow_count(flows));
  for (const FlowId i : id_range<FlowId>(flows.size())) {
    const auto k = static_cast<std::size_t>(i.value());
    EXPECT_EQ(loaded[k].src_host, flows[k].src_host) << i;
    EXPECT_EQ(loaded[k].dst_host, flows[k].dst_host) << i;
    EXPECT_DOUBLE_EQ(loaded[k].rate, flows[k].rate) << i;
    EXPECT_EQ(loaded[k].group, flows[k].group) << i;
  }
}

}  // namespace
}  // namespace ppdc
