// Chaos-layer contracts: the graceful-degradation ladder (engine rungs,
// containment of policy throws, deterministic trips) and the runtime
// invariant auditor (zero violations on healthy runs, named structured
// diagnostics on deliberately corrupted state) — plus the issue's
// acceptance soak: a pod-outage chaos run on a k=8 fat-tree under budget
// pressure with auditing on, bit-identical at 1 vs 4 threads, showing a
// full ladder down-and-back-up in the trace.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/chain_search.hpp"
#include "fault/fault.hpp"
#include "sim/audit.hpp"
#include "sim/engine.hpp"
#include "sim/experiment.hpp"
#include "topology/fat_tree.hpp"
#include "workload/vm_placement.hpp"

namespace ppdc {
namespace {

std::vector<VmFlow> random_flows(const Topology& topo, int l,
                                 std::uint64_t seed) {
  VmPlacementConfig cfg;
  cfg.num_pairs = l;
  cfg.intra_rack_fraction = 0.8;
  Rng rng(seed);
  return generate_vm_flows(topo, cfg, rng);
}

/// Deterministic budget pressure: a node budget of 1 truncates every
/// exponential re-solve (never the wall clock, which is nondeterministic).
ExhaustiveMigrationPolicy pressured_optimal(double mu = 10.0) {
  ChainSearchConfig tiny;
  tiny.node_budget = 1;
  return ExhaustiveMigrationPolicy(mu, tiny);
}

/// Throws on every epoch >= `from` while running at full service.
class FlakyPolicy final : public MigrationPolicy {
 public:
  explicit FlakyPolicy(int from) : from_(from) {}
  std::string name() const override { return "Flaky"; }
  std::unique_ptr<MigrationPolicy> clone() const override {
    return std::make_unique<FlakyPolicy>(*this);
  }
  EpochDecision on_epoch(const CostModel& model, SimState& state) override {
    ++calls_;
    if (calls_ >= from_) {
      // Mutate first: containment must restore the pre-policy state.
      state.placement.back() = state.placement.front();
      throw PpdcError("flaky policy exploded on purpose");
    }
    EpochDecision d;
    d.comm_cost = model.communication_cost(state.placement);
    return d;
  }

 private:
  int from_;
  int calls_ = 0;
};

TEST(Ladder, StepsDownOnTruncationAndRecovers) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 12, 3);
  SimConfig cfg;
  cfg.hours = 10;
  cfg.ladder.enabled = true;
  cfg.ladder.recovery_epochs = 2;
  cfg.audit.enabled = true;
  ExhaustiveMigrationPolicy policy = pressured_optimal();
  const SimTrace t = run_simulation(apsp, flows, 3, cfg, policy);

  ASSERT_EQ(t.epochs.size(), 10u);
  EXPECT_EQ(t.audited_epochs, 10);
  // Epoch 1 runs at kFull, truncates, trips; later epochs oscillate:
  // refresh-only epochs are trip-free, so a clean streak steps back up.
  EXPECT_EQ(t.epochs[1].rung, DegradationRung::kFull);
  EXPECT_GT(t.epochs[1].truncated_solves, 0);
  EXPECT_GE(t.ladder_transitions, 2);
  EXPECT_GE(t.refresh_only_epochs, 2);
  bool saw_down = false, saw_back_up = false;
  for (std::size_t h = 1; h < t.epochs.size(); ++h) {
    if (t.epochs[h].rung == DegradationRung::kRefreshOnly) saw_down = true;
    if (saw_down && t.epochs[h].rung == DegradationRung::kFull) {
      saw_back_up = true;
    }
  }
  EXPECT_TRUE(saw_down);
  EXPECT_TRUE(saw_back_up);
}

TEST(Ladder, ContainsPolicyThrowAndChargesHeldPlacement) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 10, 9);
  SimConfig cfg;
  cfg.hours = 8;
  cfg.ladder.enabled = true;
  cfg.audit.enabled = true;
  FlakyPolicy flaky(2);  // first epoch succeeds, then every call throws
  const SimTrace t = run_simulation(apsp, flows, 3, cfg, flaky);
  ASSERT_EQ(t.epochs.size(), 8u);
  EXPECT_GE(t.policy_failures, 1);
  // Containment restored the pre-throw placement; the auditor (enabled
  // above) would have flagged the vandalized duplicate-switch placement.
  for (std::size_t h = 0; h < t.epochs.size(); ++h) {
    EXPECT_GT(t.epochs[h].comm_cost, 0.0) << "h=" << h;
  }
  // The throw tripped the ladder.
  EXPECT_GE(t.ladder_transitions, 1);

  // Without the ladder the old abort contract holds.
  SimConfig off = cfg;
  off.ladder.enabled = false;
  off.audit.enabled = false;
  FlakyPolicy flaky2(2);
  EXPECT_THROW(run_simulation(apsp, flows, 3, off, flaky2), PpdcError);
}

TEST(Auditor, CorruptedPlacementTripsNamedDiagnostic) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 10, 4);
  SimConfig cfg;
  cfg.hours = 6;
  cfg.audit.enabled = true;
  cfg.audit.corrupt_placement_epoch = Hour{3};
  NoMigrationPolicy policy;
  try {
    run_simulation(apsp, flows, 3, cfg, policy);
    FAIL() << "corrupted placement escaped the auditor";
  } catch (const AuditError& e) {
    EXPECT_EQ(e.violation().invariant, "placement-feasibility");
    EXPECT_EQ(e.violation().epoch, Hour{3});
    EXPECT_EQ(e.violation().policy, "NoMigration");
    EXPECT_NE(e.violation().node, kInvalidNode);
    EXPECT_NE(std::string(e.what()).find("placement-feasibility"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("epoch 3"), std::string::npos)
        << e.what();
  }
}

TEST(Auditor, CleanRunsAuditEveryEpochWithZeroViolations) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 10, 6);
  // Faulty fabric + every built-in policy family: the conservation and
  // injector invariants must hold on degraded epochs too.
  FaultScheduleConfig fcfg;
  fcfg.hours = 16;
  fcfg.switch_mtbf = 10.0;
  fcfg.switch_mttr = 2.0;
  fcfg.link_mtbf = 20.0;
  fcfg.seed = 13;
  SimConfig cfg;
  cfg.hours = 16;
  cfg.faults = generate_fault_schedule(topo.graph, fcfg);
  ASSERT_FALSE(cfg.faults.empty());
  cfg.fault.quarantine_penalty = 5.0;
  cfg.audit.enabled = true;
  const auto audit_clean = [&](MigrationPolicy& p) {
    const SimTrace t = run_simulation(apsp, flows, 3, cfg, p);
    EXPECT_EQ(t.audited_epochs, 16) << p.name();
  };
  ParetoMigrationPolicy pareto(10.0);
  NoMigrationPolicy none;
  ResolvePlacementPolicy resolve(10.0);
  audit_clean(pareto);
  audit_clean(none);
  audit_clean(resolve);
}

// The issue's acceptance soak: pod-outage chaos on a k=8 fat-tree with
// budget pressure and per-epoch auditing. Completes with zero violations,
// shows a full down-and-back-up in the trace, and the experiment runner
// reproduces it bit-identically at 1 vs 4 threads (ladder counters
// included).
TEST(ChaosSoak, PodOutageAcceptanceRunIsCleanAndThreadInvariant) {
  const Topology topo = build_fat_tree(8);
  const AllPairs apsp(topo.graph);
  ASSERT_EQ(topo.power_domains.size(), 8u);

  FaultScheduleConfig fcfg;
  fcfg.hours = 24;
  fcfg.domain_mtbf = 24.0;  // ~one outage per pod over the horizon
  fcfg.domain_mttr = 3.0;
  fcfg.cascade_prob = 0.25;
  fcfg.switch_mtbf = 24.0;
  fcfg.switch_mttr = 2.0;
  fcfg.seed = 21;
  const FaultSchedule schedule = generate_fault_schedule(topo, fcfg);
  ASSERT_FALSE(schedule.empty());

  // Direct run: the trace must show the ladder stepping down and back up.
  {
    SimConfig cfg;
    cfg.hours = 24;
    cfg.faults = schedule;
    cfg.fault.quarantine_penalty = 50.0;
    cfg.ladder.enabled = true;
    cfg.audit.enabled = true;
    const auto flows = random_flows(topo, 60, 21);
    ExhaustiveMigrationPolicy policy = pressured_optimal(1e4);
    const SimTrace t = run_simulation(apsp, flows, 3, cfg, policy);
    EXPECT_EQ(t.audited_epochs, 24);  // zero violations, every epoch checked
    EXPECT_GT(t.total_switch_failures, 0);
    bool saw_down = false, saw_back_up = false;
    for (const EpochDecision& d : t.epochs) {
      if (d.rung != DegradationRung::kFull) saw_down = true;
      if (saw_down && d.rung == DegradationRung::kFull) saw_back_up = true;
    }
    EXPECT_TRUE(saw_down);
    EXPECT_TRUE(saw_back_up);
    EXPECT_GE(t.ladder_transitions, 2);
  }

  // Experiment grid: bit-identical at 1 vs 4 threads with ladder + audit.
  ExperimentConfig cfg;
  cfg.trials = 2;
  cfg.seed = 21;
  cfg.workload.num_pairs = 40;
  cfg.workload.intra_rack_fraction = 0.8;
  cfg.sfc_length = 3;
  cfg.sim.hours = 24;
  cfg.sim.faults = schedule;
  cfg.sim.fault.quarantine_penalty = 50.0;
  cfg.sim.ladder.enabled = true;
  cfg.sim.audit.enabled = true;
  ParetoMigrationPolicy pareto(1e4);
  ExhaustiveMigrationPolicy optimal = pressured_optimal(1e4);
  const std::vector<const MigrationPolicy*> policies{&pareto, &optimal};

  cfg.threads = 1;
  const auto serial = run_experiment(topo, apsp, cfg, policies);
  cfg.threads = 4;
  const auto parallel = run_experiment(topo, apsp, cfg, policies);
  ASSERT_EQ(serial.size(), parallel.size());
  const auto same = [](const MeanCi& a, const MeanCi& b,
                       const std::string& what) {
    EXPECT_EQ(a.mean, b.mean) << what;
    EXPECT_EQ(a.ci95, b.ci95) << what;
  };
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const PolicyStats& a = serial[i];
    const PolicyStats& b = parallel[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.completed_trials, cfg.trials) << a.name;
    EXPECT_EQ(b.completed_trials, cfg.trials) << a.name;
    same(a.total_cost, b.total_cost, a.name + " total_cost");
    same(a.quarantined_flow_epochs, b.quarantined_flow_epochs,
         a.name + " quarantined");
    same(a.downtime_epochs, b.downtime_epochs, a.name + " downtime");
    same(a.ladder_transitions, b.ladder_transitions,
         a.name + " ladder_transitions");
    same(a.refresh_only_epochs, b.refresh_only_epochs,
         a.name + " refresh_only_epochs");
    same(a.frozen_epochs, b.frozen_epochs, a.name + " frozen_epochs");
    same(a.policy_failures, b.policy_failures, a.name + " policy_failures");
  }
  // The soak actually degraded: the pressured policy's ladder moved.
  EXPECT_GT(serial[1].ladder_transitions.mean, 0.0);
}

TEST(Ladder, RejectsBadKnobs) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 6, 2);
  NoMigrationPolicy policy;
  SimConfig cfg;
  cfg.hours = 2;
  cfg.ladder.enabled = true;
  cfg.ladder.max_quarantined_fraction = 1.5;
  EXPECT_THROW(run_simulation(apsp, flows, 3, cfg, policy), PpdcError);
  cfg.ladder.max_quarantined_fraction = 0.5;
  cfg.ladder.recovery_epochs = 0;
  EXPECT_THROW(run_simulation(apsp, flows, 3, cfg, policy), PpdcError);
  cfg.ladder.recovery_epochs = 2;
  cfg.audit.enabled = true;
  cfg.audit.rel_tol = -1.0;
  EXPECT_THROW(run_simulation(apsp, flows, 3, cfg, policy), PpdcError);
}

}  // namespace
}  // namespace ppdc
