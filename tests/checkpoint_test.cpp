// Crash-safe checkpointing and failure containment of the experiment
// runner (DESIGN.md §10): interrupted-then-resumed campaigns must be
// bit-identical to uninterrupted ones at every thread count, corrupt
// journals must degrade to rerunning the affected cells, fingerprint
// mismatches must name the diverged component, and keep-going must
// quarantine a failing policy without perturbing anyone else's numbers.
#include "sim/checkpoint.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/sharded_cost_model.hpp"
#include "sim/experiment.hpp"
#include "sim/sharded.hpp"
#include "topology/fat_tree.hpp"
#include "util/require.hpp"
#include "workload/streaming.hpp"
#include "workload/vm_placement.hpp"

namespace ppdc {
namespace {

// ---------------------------------------------------------------------------
// Test policies.
// ---------------------------------------------------------------------------

/// Always throws a deterministic (non-retryable) error. The display name
/// is configurable so a test can impersonate a healthy policy (policy
/// lists are fingerprinted by name) and prove a resumed cell never reran.
class ThrowingPolicy final : public MigrationPolicy {
 public:
  explicit ThrowingPolicy(std::string name = "Thrower")
      : name_(std::move(name)) {}
  std::string name() const override { return name_; }
  std::unique_ptr<MigrationPolicy> clone() const override {
    return std::make_unique<ThrowingPolicy>(*this);
  }
  EpochDecision on_epoch(const CostModel&, SimState&) override {
    throw PpdcError("boom: deterministic policy failure");
  }

 private:
  std::string name_;
};

/// Fails with TransientError until the runner's retry path hands it a
/// fresh per-attempt stream via reseed() — the minimal "transient
/// condition that heals on retry".
class FlakyPolicy final : public MigrationPolicy {
 public:
  std::string name() const override { return "Flaky"; }
  std::unique_ptr<MigrationPolicy> clone() const override {
    return std::make_unique<FlakyPolicy>(*this);
  }
  void reseed(Rng& attempt_rng) override {
    attempt_rng.uniform_int(0, 100);  // consume the resplit stream
    healed_ = true;
  }
  EpochDecision on_epoch(const CostModel& model, SimState& state) override {
    if (!healed_) throw TransientError("flaky: transient hiccup");
    EpochDecision d;
    d.comm_cost = model.communication_cost(state.placement);
    return d;
  }

 private:
  bool healed_ = false;
};

/// Completes cleanly but reports budget-truncated solves, so its jobs
/// must journal as kTruncated rather than kOk.
class TruncatingPolicy final : public MigrationPolicy {
 public:
  std::string name() const override { return "Truncating"; }
  std::unique_ptr<MigrationPolicy> clone() const override {
    return std::make_unique<TruncatingPolicy>(*this);
  }
  EpochDecision on_epoch(const CostModel& model, SimState& state) override {
    EpochDecision d;
    d.comm_cost = model.communication_cost(state.placement);
    d.truncated_solves = 1;
    return d;
  }
};

// ---------------------------------------------------------------------------
// Fixture: a small grid whose full run takes well under a second.
// ---------------------------------------------------------------------------

class CheckpointTest : public ::testing::Test {
 protected:
  CheckpointTest() : topo_(build_fat_tree(4)), apsp_(topo_.graph) {}

  ExperimentConfig base_config() const {
    ExperimentConfig cfg;
    cfg.trials = 3;
    cfg.seed = 7;
    cfg.workload.num_pairs = 12;
    cfg.sfc_length = 2;
    cfg.threads = 1;
    cfg.sim.hours = 4;
    return cfg;
  }

  std::string journal_path(const std::string& name) const {
    const std::string path = ::testing::TempDir() + "ppdc_" + name + ".jnl";
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
    return path;
  }

  static void truncate_file(const std::string& path, std::size_t size) {
    std::filesystem::resize_file(path, size);
  }

  static void flip_byte(const std::string& path, std::size_t offset) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(static_cast<std::streamoff>(offset));
    char b = 0;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x40);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&b, 1);
  }

  Topology topo_;
  AllPairs apsp_;
  NoMigrationPolicy none_;
  ParetoMigrationPolicy pareto_{1e4};
};

/// Bit-exact PolicyStats comparison: EXPECT_EQ on every double.
void expect_same(const MeanCi& a, const MeanCi& b, const std::string& what) {
  EXPECT_EQ(a.mean, b.mean) << what << ".mean";
  EXPECT_EQ(a.ci95, b.ci95) << what << ".ci95";
}

void expect_same(const PolicyStats& a, const PolicyStats& b) {
  EXPECT_EQ(a.name, b.name);
  expect_same(a.total_cost, b.total_cost, a.name + " total_cost");
  expect_same(a.comm_cost, b.comm_cost, a.name + " comm_cost");
  expect_same(a.migration_cost, b.migration_cost, a.name + " migration_cost");
  expect_same(a.vnf_migrations, b.vnf_migrations, a.name + " vnf_migrations");
  expect_same(a.vm_migrations, b.vm_migrations, a.name + " vm_migrations");
  expect_same(a.recovery_migrations, b.recovery_migrations,
              a.name + " recovery_migrations");
  expect_same(a.recovery_cost, b.recovery_cost, a.name + " recovery_cost");
  expect_same(a.quarantined_flow_epochs, b.quarantined_flow_epochs,
              a.name + " quarantined_flow_epochs");
  expect_same(a.quarantine_penalty, b.quarantine_penalty,
              a.name + " quarantine_penalty");
  expect_same(a.downtime_epochs, b.downtime_epochs,
              a.name + " downtime_epochs");
  expect_same(a.truncated_solves, b.truncated_solves,
              a.name + " truncated_solves");
  expect_same(a.shard_resolves, b.shard_resolves,
              a.name + " shard_resolves");
  expect_same(a.shard_holds, b.shard_holds, a.name + " shard_holds");
  expect_same(a.quarantined_shard_epochs, b.quarantined_shard_epochs,
              a.name + " quarantined_shard_epochs");
  expect_same(a.shard_retries, b.shard_retries, a.name + " shard_retries");
  expect_same(a.shard_penalty, b.shard_penalty, a.name + " shard_penalty");
  ASSERT_EQ(a.hourly_cost.size(), b.hourly_cost.size());
  for (std::size_t h = 0; h < a.hourly_cost.size(); ++h) {
    expect_same(a.hourly_cost[h], b.hourly_cost[h],
                a.name + " hourly_cost[" + std::to_string(h) + "]");
    expect_same(a.hourly_migrations[h], b.hourly_migrations[h],
                a.name + " hourly_migrations[" + std::to_string(h) + "]");
  }
  EXPECT_EQ(a.completed_trials, b.completed_trials) << a.name;
  EXPECT_EQ(a.failures.size(), b.failures.size()) << a.name;
}

void expect_same(const std::vector<PolicyStats>& a,
                 const std::vector<PolicyStats>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) expect_same(a[i], b[i]);
}

// ---------------------------------------------------------------------------
// Journal contents after an uninterrupted checkpointed run.
// ---------------------------------------------------------------------------

TEST_F(CheckpointTest, JournalRecordsEveryCellOfTheGrid) {
  ExperimentConfig cfg = base_config();
  cfg.checkpoint_path = journal_path("full");
  const std::vector<const MigrationPolicy*> policies{&none_, &pareto_};
  run_experiment(topo_, apsp_, cfg, policies);

  const JournalContents contents = read_journal(cfg.checkpoint_path);
  EXPECT_FALSE(contents.tail_dropped);
  EXPECT_EQ(contents.dims.trials, 3u);
  EXPECT_EQ(contents.dims.policies, 2u);
  EXPECT_EQ(contents.dims.hours, 4u);
  EXPECT_EQ(contents.fingerprint, fingerprint_experiment(topo_, cfg, policies));
  ASSERT_EQ(contents.records.size(), 6u);
  ASSERT_EQ(contents.record_offsets.size(), 6u);
  for (const JobRecord& rec : contents.records) {
    EXPECT_EQ(rec.outcome, JobOutcome::kOk);
    EXPECT_EQ(rec.attempts, 1u);
    EXPECT_EQ(rec.policy_name,
              policies[rec.policy]->name());
    EXPECT_EQ(rec.stats.total.count(), 1u);  // single-trial bundle
    EXPECT_TRUE(rec.error.empty());
  }
}

// ---------------------------------------------------------------------------
// The headline contract: interrupt mid-grid, resume, bit-identical — at
// one worker and at four.
// ---------------------------------------------------------------------------

TEST_F(CheckpointTest, ResumeAfterMidRunInterruptionIsBitIdentical) {
  const std::vector<const MigrationPolicy*> policies{&none_, &pareto_};
  const std::vector<PolicyStats> reference =
      run_experiment(topo_, apsp_, base_config(), policies);

  // Produce a complete journal once; its record offsets let us simulate a
  // SIGKILL after exactly K durable appends (every prefix of a journal is
  // a valid journal — that is the atomic-append contract).
  ExperimentConfig cfg = base_config();
  cfg.checkpoint_path = journal_path("resume");
  run_experiment(topo_, apsp_, cfg, policies);
  const JournalContents full = read_journal(cfg.checkpoint_path);
  ASSERT_EQ(full.record_offsets.size(), 6u);
  std::string bytes;
  {
    std::ifstream in(cfg.checkpoint_path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = std::move(buf).str();
  }

  for (const int threads : {1, 4}) {
    for (const std::size_t survivors : {std::size_t{1}, std::size_t{4}}) {
      {
        std::ofstream out(cfg.checkpoint_path,
                          std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(
                      full.record_offsets[survivors]));
      }
      ExperimentConfig resumed = base_config();
      resumed.checkpoint_path = cfg.checkpoint_path;
      resumed.threads = threads;
      const std::vector<PolicyStats> stats =
          run_experiment(topo_, apsp_, resumed, policies);
      SCOPED_TRACE("threads=" + std::to_string(threads) + " survivors=" +
                   std::to_string(survivors));
      expect_same(stats, reference);

      // The resumed run re-journals the rerun cells: the journal is
      // complete again and a second resume runs zero jobs.
      const JournalContents after = read_journal(cfg.checkpoint_path);
      EXPECT_EQ(after.records.size(), 6u);
    }
  }
}

TEST_F(CheckpointTest, FullyJournaledRunResumesWithoutRunningAnyJob) {
  ExperimentConfig cfg = base_config();
  cfg.checkpoint_path = journal_path("noop");
  const std::vector<const MigrationPolicy*> policies{&none_, &pareto_};
  const std::vector<PolicyStats> first =
      run_experiment(topo_, apsp_, cfg, policies);
  // Resume with impostor prototypes that carry the same names (so the
  // fingerprint matches) but throw on first use: with every cell already
  // journaled, no job runs, nothing throws, and the result comes purely
  // from the journal — bit-identical to the first pass.
  ThrowingPolicy fake_none("NoMigration");
  ThrowingPolicy fake_pareto("mPareto");
  const std::vector<PolicyStats> second =
      run_experiment(topo_, apsp_, cfg, {&fake_none, &fake_pareto});
  expect_same(second, first);
}

// ---------------------------------------------------------------------------
// Cancellation (the SIGINT/SIGTERM path).
// ---------------------------------------------------------------------------

TEST_F(CheckpointTest, CancelledRunThrowsExperimentInterruptedAndResumes) {
  const std::vector<const MigrationPolicy*> policies{&none_, &pareto_};
  const std::vector<PolicyStats> reference =
      run_experiment(topo_, apsp_, base_config(), policies);

  ExperimentConfig cfg = base_config();
  cfg.checkpoint_path = journal_path("cancel");
  std::atomic<bool> cancel{true};  // flag already raised: stop immediately
  cfg.sim.cancel = &cancel;
  try {
    run_experiment(topo_, apsp_, cfg, policies);
    FAIL() << "expected ExperimentInterrupted";
  } catch (const ExperimentInterrupted& e) {
    EXPECT_NE(std::string(e.what()).find(cfg.checkpoint_path),
              std::string::npos)
        << "the interruption message must name the journal";
    EXPECT_NE(e.partial_summary().find("NoMigration"), std::string::npos);
    EXPECT_NE(e.partial_summary().find("0/3"), std::string::npos);
  }

  // Nothing completed, so nothing was journaled; the resume runs the full
  // grid and matches the uninterrupted reference bit for bit.
  EXPECT_TRUE(read_journal(cfg.checkpoint_path).records.empty());
  cancel.store(false);
  const std::vector<PolicyStats> resumed =
      run_experiment(topo_, apsp_, cfg, policies);
  expect_same(resumed, reference);
}

TEST_F(CheckpointTest, CancellationWithoutJournalSaysWorkIsLost) {
  ExperimentConfig cfg = base_config();
  std::atomic<bool> cancel{true};
  cfg.sim.cancel = &cancel;
  try {
    run_experiment(topo_, apsp_, cfg, {&none_});
    FAIL() << "expected ExperimentInterrupted";
  } catch (const ExperimentInterrupted& e) {
    EXPECT_NE(std::string(e.what()).find("no checkpoint journal"),
              std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Corruption handling.
// ---------------------------------------------------------------------------

TEST_F(CheckpointTest, CorruptRecordTailIsDroppedAndRerunOnResume) {
  const std::vector<const MigrationPolicy*> policies{&none_, &pareto_};
  const std::vector<PolicyStats> reference =
      run_experiment(topo_, apsp_, base_config(), policies);

  ExperimentConfig cfg = base_config();
  cfg.checkpoint_path = journal_path("corrupt");
  run_experiment(topo_, apsp_, cfg, policies);
  const JournalContents full = read_journal(cfg.checkpoint_path);
  ASSERT_EQ(full.records.size(), 6u);

  // Flip one byte inside the 5th record: records 5 and 6 must be dropped
  // (frame boundaries after a corrupt frame cannot be trusted).
  flip_byte(cfg.checkpoint_path, full.record_offsets[4] + 12);
  const JournalContents damaged = read_journal(cfg.checkpoint_path);
  EXPECT_TRUE(damaged.tail_dropped);
  EXPECT_EQ(damaged.records.size(), 4u);
  EXPECT_NE(damaged.warning.find("CRC32"), std::string::npos);
  EXPECT_NE(damaged.warning.find("byte offset"), std::string::npos);

  const std::vector<PolicyStats> resumed =
      run_experiment(topo_, apsp_, cfg, policies);
  expect_same(resumed, reference);
  EXPECT_FALSE(read_journal(cfg.checkpoint_path).tail_dropped);
}

TEST_F(CheckpointTest, CorruptHeaderIsNotRecoverable) {
  ExperimentConfig cfg = base_config();
  cfg.checkpoint_path = journal_path("badheader");
  const std::vector<const MigrationPolicy*> policies{&none_};
  run_experiment(topo_, apsp_, cfg, policies);
  flip_byte(cfg.checkpoint_path, 16);  // inside the header frame
  EXPECT_THROW(read_journal(cfg.checkpoint_path), PpdcError);
  EXPECT_THROW(run_experiment(topo_, apsp_, cfg, policies), PpdcError);
}

TEST_F(CheckpointTest, NonJournalFileIsRejectedByMagic) {
  const std::string path = journal_path("notajournal");
  std::ofstream(path) << "this is not a journal\n";
  EXPECT_THROW(read_journal(path), PpdcError);
}

// ---------------------------------------------------------------------------
// Fingerprint validation.
// ---------------------------------------------------------------------------

TEST_F(CheckpointTest, FingerprintMismatchNamesTheDivergedComponent) {
  ExperimentConfig cfg = base_config();
  cfg.checkpoint_path = journal_path("fingerprint");
  const std::vector<const MigrationPolicy*> policies{&none_, &pareto_};
  run_experiment(topo_, apsp_, cfg, policies);

  {
    ExperimentConfig other = cfg;
    other.workload.num_pairs = 13;  // different workload, same everything else
    try {
      run_experiment(topo_, apsp_, other, policies);
      FAIL() << "expected CheckpointMismatchError";
    } catch (const CheckpointMismatchError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("workload"), std::string::npos) << what;
      EXPECT_EQ(what.find("topology"), std::string::npos) << what;
      EXPECT_EQ(what.find("policy list"), std::string::npos) << what;
    }
  }
  {
    try {
      run_experiment(topo_, apsp_, cfg, {&pareto_, &none_});  // reordered
      FAIL() << "expected CheckpointMismatchError";
    } catch (const CheckpointMismatchError& e) {
      EXPECT_NE(std::string(e.what()).find("policy list"), std::string::npos);
    }
  }
  {
    ExperimentConfig other = cfg;
    other.sim.hours = 5;
    EXPECT_THROW(run_experiment(topo_, apsp_, other, policies),
                 CheckpointMismatchError);
  }
  {
    // Thread count is wall-clock-only: it must NOT invalidate the journal.
    ExperimentConfig other = cfg;
    other.threads = 4;
    other.keep_going = true;
    other.retry_limit = 2;
    EXPECT_NO_THROW(run_experiment(topo_, apsp_, other, policies));
  }
}

TEST_F(CheckpointTest, ShardedConfigIsFingerprintedExceptThreads) {
  ExperimentConfig cfg = base_config();
  cfg.checkpoint_path = journal_path("sharded-fp");
  const std::vector<const MigrationPolicy*> policies{&none_, &pareto_};
  run_experiment(topo_, apsp_, cfg, policies);

  {
    // Turning the sharded streaming engine on is a different experiment.
    ExperimentConfig other = cfg;
    other.sharded.enabled = true;
    try {
      run_experiment(topo_, apsp_, other, policies);
      FAIL() << "expected CheckpointMismatchError";
    } catch (const CheckpointMismatchError& e) {
      EXPECT_NE(std::string(e.what()).find("sim config"), std::string::npos)
          << e.what();
    }
  }
  {
    // So is any churn / staleness knob, even with the engine off — stale
    // journals must be rejected by name, never silently merged.
    ExperimentConfig other = cfg;
    other.sharded.churn.departure_prob = 0.1;
    EXPECT_THROW(run_experiment(topo_, apsp_, other, policies),
                 CheckpointMismatchError);
    other = cfg;
    other.sharded.resolve_churn_fraction = 0.5;
    EXPECT_THROW(run_experiment(topo_, apsp_, other, policies),
                 CheckpointMismatchError);
    other = cfg;
    other.sharded.max_staleness = 9;
    EXPECT_THROW(run_experiment(topo_, apsp_, other, policies),
                 CheckpointMismatchError);
    other = cfg;
    other.sharded.quarantine_sla = 1.5;  // shapes total cost
    EXPECT_THROW(run_experiment(topo_, apsp_, other, policies),
                 CheckpointMismatchError);
  }
  {
    // Shard worker threads and the epoch-journal knobs are wall-clock-only
    // (bit-identical results): they must NOT invalidate the journal.
    ExperimentConfig other = cfg;
    other.sharded.threads = 8;
    other.sharded.epoch_journal = journal_path("sharded-fp-epoch");
    other.sharded.epoch_checkpoint_every = 3;
    EXPECT_NO_THROW(run_experiment(topo_, apsp_, other, policies));
  }
}

TEST_F(CheckpointTest, FingerprintDiffReportsComponentsInFixedOrder) {
  ExperimentFingerprint a;
  ExperimentFingerprint b;
  EXPECT_TRUE(a.diff(b).empty());
  b.topology = 1;
  b.sim_config = 2;
  const std::vector<std::string> names = a.diff(b);
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "topology");
  EXPECT_EQ(names[1], "sim config");
}

// ---------------------------------------------------------------------------
// Failure containment: keep-going quarantine and retries.
// ---------------------------------------------------------------------------

TEST_F(CheckpointTest, KeepGoingQuarantinesOnlyTheFailingPolicy) {
  ThrowingPolicy thrower;
  const std::vector<PolicyStats> solo =
      run_experiment(topo_, apsp_, base_config(), {&none_, &pareto_});

  ExperimentConfig cfg = base_config();
  cfg.keep_going = true;
  const std::vector<PolicyStats> stats =
      run_experiment(topo_, apsp_, cfg, {&none_, &thrower, &pareto_});
  ASSERT_EQ(stats.size(), 3u);

  // The healthy policies are bit-identical to a run without the thrower.
  expect_same(stats[0], solo[0]);
  expect_same(stats[2], solo[1]);

  // The thrower is fully quarantined: no samples, every trial recorded.
  EXPECT_EQ(stats[1].completed_trials, 0);
  ASSERT_EQ(stats[1].failures.size(), 3u);
  for (int trial = 0; trial < 3; ++trial) {
    EXPECT_EQ(stats[1].failures[static_cast<std::size_t>(trial)].trial, trial);
    EXPECT_EQ(stats[1].failures[static_cast<std::size_t>(trial)].attempts, 1);
    EXPECT_NE(stats[1].failures[static_cast<std::size_t>(trial)].error.find(
                  "boom"),
              std::string::npos);
  }
}

TEST_F(CheckpointTest, WithoutKeepGoingTheFirstGridOrderErrorSurfaces) {
  ThrowingPolicy thrower;
  ExperimentConfig cfg = base_config();
  try {
    run_experiment(topo_, apsp_, cfg, {&none_, &thrower});
    FAIL() << "expected PpdcError";
  } catch (const PpdcError& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
}

TEST_F(CheckpointTest, FailedCellsJournalAsFailedAndRerunOnResume) {
  ThrowingPolicy thrower;
  ExperimentConfig cfg = base_config();
  cfg.keep_going = true;
  cfg.checkpoint_path = journal_path("failed");
  const std::vector<const MigrationPolicy*> policies{&none_, &thrower};
  run_experiment(topo_, apsp_, cfg, policies);

  const JournalContents contents = read_journal(cfg.checkpoint_path);
  ASSERT_EQ(contents.records.size(), 6u);
  int failed = 0;
  for (const JobRecord& rec : contents.records) {
    if (rec.outcome != JobOutcome::kFailed) continue;
    ++failed;
    EXPECT_EQ(rec.policy, 1u);
    EXPECT_NE(rec.error.find("boom"), std::string::npos);
    EXPECT_EQ(rec.stats.total.count(), 0u);  // stats absent, not zero
  }
  EXPECT_EQ(failed, 3);

  // Failed records are rerun on resume (they might have been transient);
  // here they deterministically fail again and the result is unchanged.
  const std::vector<PolicyStats> resumed =
      run_experiment(topo_, apsp_, cfg, policies);
  EXPECT_EQ(resumed[1].completed_trials, 0);
  EXPECT_EQ(resumed[1].failures.size(), 3u);
}

TEST_F(CheckpointTest, TransientErrorRetriesWithReseedAndSucceeds) {
  FlakyPolicy flaky;
  ExperimentConfig cfg = base_config();
  cfg.retry_limit = 1;
  cfg.checkpoint_path = journal_path("retry");
  const std::vector<const MigrationPolicy*> policies{&none_, &flaky};
  const std::vector<PolicyStats> stats =
      run_experiment(topo_, apsp_, cfg, policies);
  EXPECT_EQ(stats[1].completed_trials, 3);
  EXPECT_TRUE(stats[1].failures.empty());

  const JournalContents contents = read_journal(cfg.checkpoint_path);
  for (const JobRecord& rec : contents.records) {
    if (rec.policy_name != "Flaky") continue;
    EXPECT_EQ(rec.outcome, JobOutcome::kOk);
    EXPECT_EQ(rec.attempts, 2u);  // attempt 0 threw, attempt 1 healed
  }
}

TEST_F(CheckpointTest, TransientErrorWithoutRetryBudgetFails) {
  FlakyPolicy flaky;
  ExperimentConfig cfg = base_config();
  cfg.keep_going = true;  // retry_limit stays 0
  const std::vector<PolicyStats> stats =
      run_experiment(topo_, apsp_, cfg, {&flaky});
  EXPECT_EQ(stats[0].completed_trials, 0);
  ASSERT_EQ(stats[0].failures.size(), 3u);
  EXPECT_EQ(stats[0].failures[0].attempts, 1);
  EXPECT_NE(stats[0].failures[0].error.find("flaky"), std::string::npos);
}

TEST_F(CheckpointTest, BudgetTruncatedJobsJournalAsTruncated) {
  TruncatingPolicy truncating;
  ExperimentConfig cfg = base_config();
  cfg.checkpoint_path = journal_path("truncated");
  run_experiment(topo_, apsp_, cfg, {&truncating});
  const JournalContents contents = read_journal(cfg.checkpoint_path);
  ASSERT_EQ(contents.records.size(), 3u);
  for (const JobRecord& rec : contents.records) {
    EXPECT_EQ(rec.outcome, JobOutcome::kTruncated);
    EXPECT_EQ(rec.stats.total.count(), 1u);  // truncated still has stats
  }
  EXPECT_STREQ(to_string(JobOutcome::kTruncated), "truncated");
  EXPECT_STREQ(to_string(JobOutcome::kOk), "ok");
  EXPECT_STREQ(to_string(JobOutcome::kFailed), "failed");
}

// ---------------------------------------------------------------------------
// Epoch-granular journal of the sharded engine (DESIGN.md §15).
// ---------------------------------------------------------------------------

TEST_F(CheckpointTest, EpochJournalRoundTripAndFingerprint) {
  const ShardMap map = ShardMap::by_ingress_pod(topo_);
  const std::string path = ::testing::TempDir() + "ppdc_epoch_rt.ejl";
  remove_epoch_journal(path);

  SimConfig sim;
  sim.hours = 6;
  ShardedStreamingConfig sharded;
  sharded.enabled = true;
  sharded.threads = 1;
  sharded.epoch_journal = path;
  VmPlacementConfig wl;
  wl.num_pairs = 40;

  NoMigrationPolicy proto;
  StreamingWorkload workload(topo_, wl, StreamingChurnConfig{}, Rng(3));
  const std::uint64_t fp = fingerprint_sharded_run(
      workload.snapshot(), sim, sharded, 3, map.num_shards(), proto.name());
  run_sharded_simulation(apsp_, map, workload, 3, sim, sharded, proto);

  EpochJournalState state;
  ASSERT_TRUE(read_epoch_journal(path, state));
  EXPECT_EQ(state.fingerprint, fp);
  EXPECT_EQ(state.hours, 6u);
  // Written after every epoch but the last (the run was about to finish).
  EXPECT_EQ(state.epochs.size(), 5u);
  ASSERT_EQ(state.shards.size(), static_cast<std::size_t>(map.num_shards()));
  for (const ShardResumeState& st : state.shards) {
    EXPECT_EQ(st.placement.size(), 3u);
    EXPECT_EQ(st.rung, 0u);
    EXPECT_EQ(st.fail_streak, 0);
  }
  EXPECT_FALSE(state.workload.flows.empty());
  EXPECT_FALSE(state.merged_initial.empty());

  // Byte-level round trip: writing the parsed state back and re-reading
  // reproduces every field.
  write_epoch_journal(path, state);
  EpochJournalState again;
  ASSERT_TRUE(read_epoch_journal(path, again));
  EXPECT_EQ(again.fingerprint, state.fingerprint);
  EXPECT_EQ(again.merged_initial, state.merged_initial);
  ASSERT_EQ(again.epochs.size(), state.epochs.size());
  for (std::size_t e = 0; e < state.epochs.size(); ++e) {
    EXPECT_EQ(again.epochs[e].decision.comm_cost,
              state.epochs[e].decision.comm_cost);
    EXPECT_EQ(again.epochs[e].ladder_steps, state.epochs[e].ladder_steps);
  }
  EXPECT_EQ(again.shards[0].placement, state.shards[0].placement);
  EXPECT_EQ(again.workload.rng, state.workload.rng);
  EXPECT_EQ(again.workload.next_index, state.workload.next_index);

  remove_epoch_journal(path);
  EXPECT_FALSE(read_epoch_journal(path, again));  // gone: fresh start
}

TEST_F(CheckpointTest, EpochJournalMismatchOrCorruptionStartsFresh) {
  const ShardMap map = ShardMap::by_ingress_pod(topo_);
  const std::string path = ::testing::TempDir() + "ppdc_epoch_stale.ejl";
  remove_epoch_journal(path);

  SimConfig sim;
  sim.hours = 8;
  sim.ladder.enabled = true;
  StreamingChurnConfig churn;
  churn.arrivals_per_epoch = 4;
  churn.departure_prob = 0.05;
  churn.rerate_prob = 0.1;
  ShardedStreamingConfig sharded;
  sharded.enabled = true;
  sharded.threads = 2;
  sharded.churn = churn;
  sharded.epoch_journal = path;
  VmPlacementConfig wl;
  wl.num_pairs = 40;
  ParetoMigrationPolicy proto(1e3);

  auto run = [&](std::uint64_t seed, bool with_journal) {
    ShardedStreamingConfig cfg = sharded;
    if (!with_journal) cfg.epoch_journal.clear();
    StreamingWorkload w(topo_, wl, churn, Rng(seed));
    return run_sharded_simulation(apsp_, map, w, 3, sim, cfg, proto);
  };

  const SimTrace reference = run(5, false);

  // A completed seed-9 run leaves its journal behind (the bare engine
  // never deletes it; the experiment runner does). A seed-5 run handed
  // that stale journal must detect the fingerprint mismatch and start
  // fresh — bit-identical to the journal-free reference.
  run(9, true);
  const SimTrace after_mismatch = run(5, true);
  EXPECT_EQ(after_mismatch.total_cost, reference.total_cost);
  EXPECT_EQ(after_mismatch.total_comm_cost, reference.total_comm_cost);

  // Corrupt tail (the previous run refreshed the journal to seed-5): a
  // torn write must degrade to a fresh start, never a poisoned resume.
  flip_byte(path, std::filesystem::file_size(path) - 3);
  const SimTrace after_corruption = run(5, true);
  EXPECT_EQ(after_corruption.total_cost, reference.total_cost);
  EXPECT_EQ(after_corruption.total_comm_cost, reference.total_comm_cost);
  remove_epoch_journal(path);
}

TEST_F(CheckpointTest, ExperimentRunnerDerivesAndCleansEpochJournals) {
  ExperimentConfig cfg = base_config();
  cfg.sharded.enabled = true;
  cfg.sharded.churn.arrivals_per_epoch = 3;
  cfg.sharded.churn.departure_prob = 0.05;
  const std::vector<const MigrationPolicy*> policies{&none_, &pareto_};
  const std::vector<PolicyStats> reference =
      run_experiment(topo_, apsp_, cfg, policies);

  ExperimentConfig with = cfg;
  with.sharded.epoch_journal = ::testing::TempDir() + "ppdc_cell.ejl";
  // Pre-seed one derived cell path with garbage: that cell must warn,
  // start fresh, and the campaign still matches bit for bit.
  std::ofstream(with.sharded.epoch_journal + ".t1p0") << "not a journal";
  const std::vector<PolicyStats> stats =
      run_experiment(topo_, apsp_, with, policies);
  expect_same(stats, reference);
  // Epoch journals are per-cell scratch: every derived path is removed
  // once its cell's terminal record lands.
  for (int trial = 0; trial < 3; ++trial) {
    for (int p = 0; p < 2; ++p) {
      const std::string cell = with.sharded.epoch_journal + ".t" +
                               std::to_string(trial) + "p" +
                               std::to_string(p);
      EXPECT_FALSE(std::filesystem::exists(cell)) << cell;
    }
  }
}

}  // namespace
}  // namespace ppdc
