// Shared helpers for the ppdc test suite: tiny brute-force references the
// optimized algorithms are validated against, and instance builders.
#pragma once

#include <algorithm>
#include <functional>
#include <limits>
#include <vector>

#include "core/cost_model.hpp"
#include "graph/apsp.hpp"

namespace ppdc::testing {

/// Brute-force optimal n-stroll on the metric closure: the cheapest simple
/// sequence of n distinct switches between s and t (triangle inequality
/// makes simple sequences optimal among walks). Exponential — use only on
/// tiny instances.
inline double brute_force_stroll_cost(const AllPairs& apsp, NodeId s,
                                      NodeId t, int n, double rate = 1.0) {
  std::vector<NodeId> switches;
  for (const NodeId w : apsp.graph().switches()) {
    if (w != s && w != t) switches.push_back(w);
  }
  double best = std::numeric_limits<double>::infinity();
  std::vector<NodeId> seq(static_cast<std::size_t>(n));
  std::vector<char> used(switches.size(), 0);
  const std::function<void(int, double, NodeId)> rec =
      [&](int depth, double cost, NodeId last) {
        if (cost >= best) return;
        if (depth == n) {
          const double total = cost + rate * apsp.cost(last, t);
          best = std::min(best, total);
          return;
        }
        for (std::size_t i = 0; i < switches.size(); ++i) {
          if (used[i]) continue;
          used[i] = 1;
          rec(depth + 1, cost + rate * apsp.cost(last, switches[i]),
              switches[i]);
          used[i] = 0;
        }
      };
  rec(0, 0.0, s);
  return best;
}

/// Brute-force optimal TOP: min over ordered distinct switch tuples of the
/// Eq. 1 cost. Exponential — tiny instances only.
inline double brute_force_top_cost(const CostModel& model, int n) {
  const auto& switches = model.apsp().graph().switches();
  double best = std::numeric_limits<double>::infinity();
  Placement p;
  std::vector<char> used(switches.size(), 0);
  const std::function<void(int)> rec = [&](int depth) {
    if (depth == n) {
      best = std::min(best, model.communication_cost(p));
      return;
    }
    for (std::size_t i = 0; i < switches.size(); ++i) {
      if (used[i]) continue;
      used[i] = 1;
      p.push_back(switches[i]);
      rec(depth + 1);
      p.pop_back();
      used[i] = 0;
    }
  };
  rec(0);
  return best;
}

/// Brute-force optimal TOM: min over ordered distinct switch tuples of the
/// Eq. 8 cost C_t(from, m). Exponential — tiny instances only.
inline double brute_force_tom_cost(const CostModel& model,
                                   const Placement& from, double mu) {
  const auto& switches = model.apsp().graph().switches();
  const int n = static_cast<int>(from.size());
  double best = std::numeric_limits<double>::infinity();
  Placement p;
  std::vector<char> used(switches.size(), 0);
  const std::function<void(int)> rec = [&](int depth) {
    if (depth == n) {
      best = std::min(best, model.total_cost(from, p, mu));
      return;
    }
    for (std::size_t i = 0; i < switches.size(); ++i) {
      if (used[i]) continue;
      used[i] = 1;
      p.push_back(switches[i]);
      rec(depth + 1);
      p.pop_back();
      used[i] = 0;
    }
  };
  rec(0);
  return best;
}

}  // namespace ppdc::testing
