// Tests of the optional migration-downtime model (SimConfig::downtime_factor)
// and of the migration_distance plumbing it relies on.
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "topology/linear.hpp"
#include "topology/fat_tree.hpp"
#include "workload/vm_placement.hpp"

namespace ppdc {
namespace {

TEST(Downtime, ZeroFactorReproducesPaperModel) {
  const Topology topo = build_linear(5);
  const AllPairs apsp(topo.graph);
  const NodeId h1 = topo.graph.hosts()[0];
  const NodeId h2 = topo.graph.hosts()[1];
  const std::vector<VmFlow> flows{{h1, h1, 100.0, 0}, {h2, h2, 1.0, 0}};
  auto schedule = [&](Hour hour) {
    return hour == Hour{0} ? std::vector<double>{100.0, 1.0}
                           : std::vector<double>{1.0, 100.0};
  };
  SimConfig cfg;
  cfg.hours = 2;
  cfg.rate_schedule = schedule;
  ParetoMigrationPolicy p0(1.0), p1(1.0);
  const SimTrace base = run_simulation(apsp, flows, 2, cfg, p0);
  cfg.downtime_factor = 0.0;
  const SimTrace same = run_simulation(apsp, flows, 2, cfg, p1);
  EXPECT_DOUBLE_EQ(base.total_cost, same.total_cost);
}

TEST(Downtime, ChargesFactorTimesRateTimesDistance) {
  // Fig. 3 world: the hour-1 migration covers distance 6 at Λ = 101.
  const Topology topo = build_linear(5);
  const AllPairs apsp(topo.graph);
  const NodeId h1 = topo.graph.hosts()[0];
  const NodeId h2 = topo.graph.hosts()[1];
  const std::vector<VmFlow> flows{{h1, h1, 100.0, 0}, {h2, h2, 1.0, 0}};
  SimConfig cfg;
  cfg.hours = 2;
  cfg.rate_schedule = [&](Hour hour) {
    return hour == Hour{0} ? std::vector<double>{100.0, 1.0}
                           : std::vector<double>{1.0, 100.0};
  };
  ParetoMigrationPolicy plain(1.0), charged(1.0);
  const SimTrace base = run_simulation(apsp, flows, 2, cfg, plain);
  cfg.downtime_factor = 0.5;
  const SimTrace with_downtime = run_simulation(apsp, flows, 2, cfg, charged);
  // Same decisions (downtime is charged after the fact), extra cost
  // = 0.5 * 101 * 6 = 303.
  EXPECT_NEAR(with_downtime.total_cost, base.total_cost + 0.5 * 101.0 * 6.0,
              1e-9);
}

TEST(Downtime, MigrationDistanceTracksVnfMoves) {
  const Topology topo = build_linear(5);
  const AllPairs apsp(topo.graph);
  const NodeId h1 = topo.graph.hosts()[0];
  const NodeId h2 = topo.graph.hosts()[1];
  const std::vector<VmFlow> flows{{h1, h1, 100.0, 0}, {h2, h2, 1.0, 0}};
  SimConfig cfg;
  cfg.hours = 2;
  cfg.rate_schedule = [&](Hour hour) {
    return hour == Hour{0} ? std::vector<double>{100.0, 1.0}
                           : std::vector<double>{1.0, 100.0};
  };
  ParetoMigrationPolicy policy(1.0);
  const SimTrace t = run_simulation(apsp, flows, 2, cfg, policy);
  // Fig. 3: f1 travels 4 and f2 travels 2 (or the mirror) — distance 6.
  EXPECT_DOUBLE_EQ(t.epochs[1].migration_distance, 6.0);
  EXPECT_DOUBLE_EQ(t.epochs[0].migration_distance, 0.0);
}

TEST(Downtime, VmPoliciesReportDistanceToo) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  VmPlacementConfig wl;
  wl.num_pairs = 10;
  wl.rack_zipf_s = 2.5;
  Rng rng(9);
  const auto flows = generate_vm_flows(topo, wl, rng);
  VmMigrationConfig vm_cfg;
  vm_cfg.mu = 2.0;
  PlanPolicy plan(vm_cfg);
  SimConfig cfg;
  const SimTrace t = run_simulation(apsp, flows, 3, cfg, plan);
  double distance = 0.0;
  for (const auto& e : t.epochs) distance += e.migration_distance;
  // mu * distance == migration cost for VM moves.
  EXPECT_NEAR(2.0 * distance, t.total_migration_cost, 1e-9);
}

TEST(Downtime, HighDowntimeOnlyAddsObservedCostNotBehaviour) {
  // The downtime model charges the operator but (by design) does not
  // change the policy's decisions — decisions are made by the policy's
  // own objective, matching how downtime studies evaluate plans post hoc.
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  VmPlacementConfig wl;
  wl.num_pairs = 8;
  wl.rack_zipf_s = 2.0;
  Rng rng(4);
  const auto flows = generate_vm_flows(topo, wl, rng);
  SimConfig cfg;
  ParetoMigrationPolicy a(10.0), b(10.0);
  const SimTrace t0 = run_simulation(apsp, flows, 3, cfg, a);
  cfg.downtime_factor = 2.0;
  const SimTrace t1 = run_simulation(apsp, flows, 3, cfg, b);
  EXPECT_EQ(t0.total_vnf_migrations, t1.total_vnf_migrations);
  EXPECT_GE(t1.total_cost, t0.total_cost);
}

}  // namespace
}  // namespace ppdc
