#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "core/chain_search.hpp"
#include "core/cost_model.hpp"
#include "core/placement_dp.hpp"
#include "fault/degraded.hpp"
#include "sim/engine.hpp"
#include "topology/fat_tree.hpp"
#include "workload/vm_placement.hpp"

namespace ppdc {
namespace {

std::vector<VmFlow> random_flows(const Topology& topo, int l,
                                 std::uint64_t seed) {
  VmPlacementConfig cfg;
  cfg.num_pairs = l;
  Rng rng(seed);
  return generate_vm_flows(topo, cfg, rng);
}

bool contains(const Placement& p, NodeId v) {
  return std::find(p.begin(), p.end(), v) != p.end();
}

TEST(FaultSchedule, DeterministicAndWellFormed) {
  const Topology topo = build_fat_tree(4);
  FaultScheduleConfig cfg;
  cfg.hours = 48;
  cfg.switch_mtbf = 12.0;
  cfg.link_mtbf = 24.0;
  cfg.seed = 7;
  const FaultSchedule a = generate_fault_schedule(topo.graph, cfg);
  const FaultSchedule b = generate_fault_schedule(topo.graph, cfg);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_FALSE(a.empty());  // MTBF 12 over 48h on 20 switches: events fire
  Hour prev_epoch{0};
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].epoch, b[i].epoch);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_EQ(a[i].u, b[i].u);
    EXPECT_EQ(a[i].v, b[i].v);
    EXPECT_GE(a[i].epoch, Hour{1});  // epoch 0 is always fault-free
    EXPECT_GE(a[i].epoch, prev_epoch);
    prev_epoch = a[i].epoch;
  }
  // The injector accepts its own generator's output (alternation is
  // consistent by construction).
  FaultInjector injector(topo.graph, a);
  for (const Hour epoch : id_range(Hour{1}, Hour{cfg.hours})) {
    injector.advance_to(epoch);
  }
}

TEST(FaultSchedule, ZeroMtbfDisablesFaults) {
  const Topology topo = build_fat_tree(4);
  FaultScheduleConfig cfg;
  cfg.hours = 48;  // both MTBFs default to 0
  EXPECT_TRUE(generate_fault_schedule(topo.graph, cfg).empty());
}

TEST(FaultInjector, TracksDeadSetAcrossEpochs) {
  const Topology topo = build_fat_tree(4);
  const NodeId sw = topo.rack_switches[RackIdx{0}];
  // A switch-switch fabric link not touching `sw`.
  const NodeId sw2 = topo.rack_switches[RackIdx{1}];
  NodeId lu = kInvalidNode, lv = kInvalidNode;
  for (const auto& adj : topo.graph.neighbors(sw2)) {
    if (topo.graph.is_switch(adj.to)) {
      const EdgeKey key = make_edge_key(sw2, adj.to);
      lu = key.first;
      lv = key.second;
      break;
    }
  }
  ASSERT_NE(lu, kInvalidNode);

  FaultSchedule schedule{
      {Hour{1}, FaultKind::kSwitchFail, sw, kInvalidNode, kInvalidNode},
      {Hour{2}, FaultKind::kLinkFail, kInvalidNode, lu, lv},
      {Hour{3}, FaultKind::kSwitchRepair, sw, kInvalidNode, kInvalidNode},
      {Hour{4}, FaultKind::kLinkRepair, kInvalidNode, lu, lv},
  };
  FaultInjector injector(topo.graph, schedule);
  EXPECT_FALSE(injector.any_faults_active());

  EpochFaults e1 = injector.advance_to(Hour{1});
  EXPECT_EQ(e1.switch_failures, 1);
  EXPECT_TRUE(e1.topology_changed);
  EXPECT_TRUE(injector.any_faults_active());
  EXPECT_EQ(injector.dead_switch_count(), 1);
  EXPECT_EQ(injector.dead_nodes()[static_cast<std::size_t>(sw)], 1);

  EpochFaults e2 = injector.advance_to(Hour{2});
  EXPECT_EQ(e2.link_failures, 1);
  ASSERT_EQ(injector.dead_edges().size(), 1u);
  EXPECT_EQ(injector.dead_edges()[0], (EdgeKey{lu, lv}));

  // Skipping an epoch still applies its events (the repair of `sw`).
  EpochFaults e4 = injector.advance_to(Hour{4});
  EXPECT_EQ(e4.repairs, 2);
  EXPECT_TRUE(e4.topology_changed);
  EXPECT_FALSE(injector.any_faults_active());
  EXPECT_EQ(injector.dead_switch_count(), 0);
  EXPECT_TRUE(injector.dead_edges().empty());

  // Epochs must strictly increase.
  EXPECT_THROW(injector.advance_to(Hour{4}), PpdcError);
}

TEST(DegradedNetwork, MasksAndPicksLargestCore) {
  const Topology topo = build_fat_tree(4);
  const Graph& g = topo.graph;
  // Kill rack 0's ToR: its hosts become an isolated island each, and the
  // big component keeps every other switch.
  std::vector<char> dead(static_cast<std::size_t>(g.num_nodes()), 0);
  const NodeId tor = topo.rack_switches[RackIdx{0}];
  dead[static_cast<std::size_t>(tor)] = 1;
  DegradedNetwork net(g, dead, {});

  EXPECT_EQ(net.graph().num_nodes(), g.num_nodes());  // ids preserved
  EXPECT_EQ(net.graph().degree(tor), 0u);             // fully isolated
  EXPECT_FALSE(net.apsp().fully_connected());
  EXPECT_FALSE(net.in_core(tor));
  for (const NodeId h : topo.racks[RackIdx{0}]) {
    EXPECT_FALSE(net.in_core(h));
    EXPECT_FALSE(net.apsp().reachable(h, topo.racks[RackIdx{1}][0]));
    EXPECT_TRUE(std::isinf(net.apsp().cost(h, topo.racks[RackIdx{1}][0])));
  }
  // Every other switch survives in the serving core, sorted ascending.
  const auto& core = net.core_switches();
  EXPECT_EQ(core.size(), g.switches().size() - 1);
  EXPECT_TRUE(std::is_sorted(core.begin(), core.end()));
  EXPECT_FALSE(contains(core, tor));
  EXPECT_TRUE(net.in_core(topo.racks[RackIdx{1}][0]));
  EXPECT_TRUE(net.core_can_host(3));
  EXPECT_FALSE(net.core_can_host(static_cast<int>(core.size()) + 1));
}

TEST(DegradedNetwork, LinkMaskOnly) {
  const Topology topo = build_fat_tree(4);
  const Graph& g = topo.graph;
  const NodeId sw = topo.rack_switches[RackIdx{0}];
  std::vector<EdgeKey> dead_links;
  for (const auto& adj : g.neighbors(sw)) {
    if (g.is_switch(adj.to)) dead_links.push_back(make_edge_key(sw, adj.to));
  }
  ASSERT_FALSE(dead_links.empty());
  // All uplinks of rack 0's ToR die: the rack hangs off an island with its
  // alive ToR, but the core component holds more switches.
  std::vector<char> dead(static_cast<std::size_t>(g.num_nodes()), 0);
  DegradedNetwork net(g, dead, dead_links);
  EXPECT_FALSE(net.in_core(sw));  // alive but outside the serving core
  EXPECT_TRUE(net.in_core(topo.rack_switches[RackIdx{1}]));
  EXPECT_EQ(net.core_switches().size(), g.switches().size() - 1);
}

// Acceptance scenario of the issue: a switch failure that hits a placed
// VNF, a ToR failure that quarantines flows, a link failure, and repairs —
// the run completes and every fault counter is populated.
TEST(FaultSimulation, SurvivesFailuresOfPlacedSwitchAndRack) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  // Deliberate traffic in racks 0 and 1 so a ToR kill quarantines flows.
  std::vector<VmFlow> flows{
      {topo.racks[RackIdx{0}][0], topo.racks[RackIdx{0}][1], 10.0},
      {topo.racks[RackIdx{1}][0], topo.racks[RackIdx{1}][1], 50.0},
      {topo.racks[RackIdx{2}][0], topo.racks[RackIdx{3}][0], 20.0},
      {topo.racks[RackIdx{1}][1], topo.racks[RackIdx{2}][1], 5.0},
  };

  // Learn where the initial chain sits, then craft the schedule around it.
  Placement initial;
  {
    NoMigrationPolicy probe;
    SimConfig cfg;
    cfg.hours = 1;
    initial = run_simulation(apsp, flows, 3, cfg, probe).initial_placement;
  }
  ASSERT_EQ(initial.size(), 3u);

  // A ToR (every rack above carries traffic) not used by the chain.
  NodeId tor = kInvalidNode;
  for (const NodeId candidate : topo.rack_switches) {
    if (!contains(initial, candidate)) {
      tor = candidate;
      break;
    }
  }
  ASSERT_NE(tor, kInvalidNode);
  // A fabric link avoiding both planned switch victims.
  NodeId lu = kInvalidNode, lv = kInvalidNode;
  for (const NodeId u : topo.graph.switches()) {
    if (u == initial[0] || u == tor) continue;
    for (const auto& adj : topo.graph.neighbors(u)) {
      if (!topo.graph.is_switch(adj.to)) continue;
      if (adj.to == initial[0] || adj.to == tor) continue;
      const EdgeKey key = make_edge_key(u, adj.to);
      lu = key.first;
      lv = key.second;
      break;
    }
    if (lu != kInvalidNode) break;
  }
  ASSERT_NE(lu, kInvalidNode);

  SimConfig cfg;
  cfg.hours = 8;
  cfg.fault.mu = 2.0;
  cfg.fault.quarantine_penalty = 3.0;
  cfg.faults = {
      {Hour{2}, FaultKind::kSwitchFail, initial[0], kInvalidNode, kInvalidNode},
      {Hour{3}, FaultKind::kSwitchFail, tor, kInvalidNode, kInvalidNode},
      {Hour{3}, FaultKind::kLinkFail, kInvalidNode, lu, lv},
      {Hour{4}, FaultKind::kLinkRepair, kInvalidNode, lu, lv},
      {Hour{5}, FaultKind::kSwitchRepair, initial[0], kInvalidNode, kInvalidNode},
      {Hour{6}, FaultKind::kSwitchRepair, tor, kInvalidNode, kInvalidNode},
  };
  // NoMigration keeps the chain parked on initial[0] until the failure
  // hits it, so the emergency-recovery path is guaranteed to fire.
  NoMigrationPolicy policy;
  const SimTrace t = run_simulation(apsp, flows, 3, cfg, policy);

  ASSERT_EQ(t.epochs.size(), 8u);
  EXPECT_EQ(t.total_switch_failures, 2);
  EXPECT_EQ(t.total_link_failures, 1);
  EXPECT_EQ(t.total_repairs, 3);
  EXPECT_EQ(t.epochs[2].switch_failures, 1);
  EXPECT_EQ(t.epochs[3].link_failures, 1);
  EXPECT_EQ(t.epochs[4].repairs, 1);
  // The chain lost a switch at epoch 2: at least one emergency move.
  EXPECT_GE(t.epochs[2].recovery_migrations, 1);
  EXPECT_GE(t.total_recovery_migrations, 1);
  EXPECT_GT(t.total_recovery_cost, 0.0);
  // Rack `tor` is cut off for epochs 3..5: its flow is quarantined.
  EXPECT_GE(t.quarantined_flow_epochs, 3);
  EXPECT_GT(t.total_quarantine_penalty, 0.0);
  EXPECT_EQ(t.downtime_epochs, 0);
  EXPECT_NEAR(t.total_cost,
              t.total_comm_cost + t.total_migration_cost +
                  t.total_recovery_cost + t.total_quarantine_penalty,
              1e-9);
  // Post-repair epochs serve everything again.
  EXPECT_EQ(t.epochs[7].quarantined_flows, 0);
  EXPECT_FALSE(t.epochs[7].service_down);
}

// Migration policies keep working on a fabric degraded by a generated
// (renewal-process) schedule: the run completes and the ledger adds up.
TEST(FaultSimulation, ParetoPolicySurvivesGeneratedSchedule) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 10, 17);
  FaultScheduleConfig fcfg;
  fcfg.hours = 24;
  fcfg.switch_mtbf = 20.0;
  fcfg.switch_mttr = 2.0;
  fcfg.link_mtbf = 30.0;
  fcfg.seed = 4;
  SimConfig cfg;
  cfg.hours = 24;
  cfg.faults = generate_fault_schedule(topo.graph, fcfg);
  ASSERT_FALSE(cfg.faults.empty());
  cfg.fault.mu = 5.0;
  cfg.fault.quarantine_penalty = 1.0;
  ParetoMigrationPolicy policy(10.0);
  const SimTrace t = run_simulation(apsp, flows, 3, cfg, policy);
  ASSERT_EQ(t.epochs.size(), 24u);
  EXPECT_GT(t.total_switch_failures + t.total_link_failures, 0);
  EXPECT_NEAR(t.total_cost,
              t.total_comm_cost + t.total_migration_cost +
                  t.total_recovery_cost + t.total_quarantine_penalty,
              1e-9);
}

TEST(FaultSimulation, EmptyScheduleIsBitIdenticalToPristineRun) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 8, 11);
  NoMigrationPolicy a, b;
  SimConfig plain;
  plain.hours = 10;
  SimConfig faulty = plain;  // empty schedule; knobs set but never consulted
  faulty.fault.mu = 123.0;
  faulty.fault.quarantine_penalty = 9.0;
  faulty.fault.exhaustive_recovery = true;
  const SimTrace ta = run_simulation(apsp, flows, 3, plain, a);
  const SimTrace tb = run_simulation(apsp, flows, 3, faulty, b);
  ASSERT_EQ(ta.epochs.size(), tb.epochs.size());
  for (std::size_t h = 0; h < ta.epochs.size(); ++h) {
    EXPECT_EQ(ta.epochs[h].comm_cost, tb.epochs[h].comm_cost) << "h=" << h;
    EXPECT_EQ(ta.epochs[h].quarantined_flows, 0);
  }
  EXPECT_EQ(ta.total_cost, tb.total_cost);
  EXPECT_EQ(tb.total_switch_failures, 0);
  EXPECT_EQ(tb.total_recovery_migrations, 0);
  EXPECT_EQ(tb.downtime_epochs, 0);
}

// After every fault is repaired the engine resyncs the incremental
// group-refresh bases: epochs past the heal must match the fault-free run
// exactly (same placement under NoMigration, same diurnal rates).
TEST(FaultSimulation, HealedFabricMatchesPristineEpochsExactly) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 8, 3);
  Placement initial;
  {
    NoMigrationPolicy probe;
    SimConfig cfg;
    cfg.hours = 1;
    initial = run_simulation(apsp, flows, 3, cfg, probe).initial_placement;
  }
  // A non-ToR fabric switch the chain does not use: killing it disconnects
  // nothing (fat-tree path redundancy), so no flow is quarantined and no
  // recovery fires — only the metric degrades for two epochs.
  NodeId victim = kInvalidNode;
  for (const NodeId s : topo.graph.switches()) {
    const bool is_tor = std::find(topo.rack_switches.begin(),
                                  topo.rack_switches.end(),
                                  s) != topo.rack_switches.end();
    if (!is_tor && !contains(initial, s)) {
      victim = s;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidNode);

  NoMigrationPolicy a, b;
  SimConfig plain;
  plain.hours = 8;
  SimConfig faulty = plain;
  faulty.faults = {
      {Hour{2}, FaultKind::kSwitchFail, victim, kInvalidNode, kInvalidNode},
      {Hour{4}, FaultKind::kSwitchRepair, victim, kInvalidNode, kInvalidNode},
  };
  const SimTrace ta = run_simulation(apsp, flows, 3, plain, a);
  const SimTrace tb = run_simulation(apsp, flows, 3, faulty, b);
  ASSERT_EQ(tb.epochs.size(), 8u);
  EXPECT_EQ(tb.total_recovery_migrations, 0);
  EXPECT_EQ(tb.quarantined_flow_epochs, 0);
  for (std::size_t h = 0; h < 2; ++h) {
    EXPECT_EQ(ta.epochs[h].comm_cost, tb.epochs[h].comm_cost) << "h=" << h;
  }
  for (std::size_t h = 4; h < 8; ++h) {
    // Bit-identical: the healed path recombines the same base vectors.
    EXPECT_EQ(ta.epochs[h].comm_cost, tb.epochs[h].comm_cost) << "h=" << h;
  }
}

// Satellite contract: a mean in (0,1) would demand a per-epoch
// probability above 1. The generator must fail fast with a PpdcError
// naming the offending field — silent clamping would quietly change the
// fault intensity of a study.
TEST(FaultSchedule, SubEpochMeansAreRejectedByName) {
  const Topology topo = build_fat_tree(4);
  const std::vector<std::pair<std::string,
                              std::function<void(FaultScheduleConfig&)>>>
      cases{
          {"switch_mtbf", [](FaultScheduleConfig& c) { c.switch_mtbf = 0.5; }},
          {"switch_mttr", [](FaultScheduleConfig& c) {
             c.switch_mtbf = 4.0;
             c.switch_mttr = 0.25;
           }},
          {"link_mtbf", [](FaultScheduleConfig& c) { c.link_mtbf = 0.9; }},
          {"link_mttr", [](FaultScheduleConfig& c) {
             c.link_mtbf = 4.0;
             c.link_mttr = 0.1;
           }},
          {"domain_mtbf", [](FaultScheduleConfig& c) { c.domain_mtbf = 0.3; }},
          {"domain_mttr", [](FaultScheduleConfig& c) {
             c.domain_mtbf = 4.0;
             c.domain_mttr = 0.7;
           }},
          {"flap_mtbf", [](FaultScheduleConfig& c) { c.flap_mtbf = 0.5; }},
      };
  for (const auto& [field, mutate] : cases) {
    FaultScheduleConfig cfg;
    cfg.hours = 8;
    mutate(cfg);
    try {
      generate_fault_schedule(topo, cfg);
      ADD_FAILURE() << field << " in (0,1) was accepted";
    } catch (const PpdcError& e) {
      EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
          << field << " not named in: " << e.what();
    }
    // Negative means are rejected the same way.
    FaultScheduleConfig neg;
    neg.hours = 8;
    mutate(neg);
    EXPECT_THROW(generate_fault_schedule(topo, neg), PpdcError);
  }
}

// A pod-scale power outage must take the whole domain down in one epoch
// and bring the whole domain back in one epoch — never a partial pod.
// With only the domain process enabled, every switch event belongs to a
// domain cycle, so the per-epoch event groups must be exact domain sets.
TEST(FaultSchedule, PodOutagesAreDomainCompleteAndEpochConsistent) {
  const Topology topo = build_fat_tree(4);
  ASSERT_EQ(topo.power_domains.size(), 4u);  // one domain per pod
  std::map<NodeId, std::size_t> domain_of;
  for (std::size_t d = 0; d < topo.power_domains.size(); ++d) {
    for (const NodeId s : topo.power_domains[d].switches) {
      domain_of[s] = d;
    }
  }

  FaultScheduleConfig cfg;
  cfg.hours = 96;
  cfg.domain_mtbf = 12.0;
  cfg.domain_mttr = 3.0;
  cfg.seed = 11;
  const FaultSchedule schedule = generate_fault_schedule(topo, cfg);
  ASSERT_FALSE(schedule.empty());

  // Group the switch events per (epoch, domain) and demand completeness.
  std::map<std::pair<int, std::size_t>, std::set<NodeId>> fails, repairs;
  for (const FaultEvent& e : schedule) {
    ASSERT_TRUE(e.kind == FaultKind::kSwitchFail ||
                e.kind == FaultKind::kSwitchRepair);
    ASSERT_TRUE(domain_of.count(e.node));
    const auto key = std::make_pair(static_cast<int>(e.epoch.value()),
                                    domain_of.at(e.node));
    if (e.kind == FaultKind::kSwitchFail) {
      EXPECT_EQ(e.cause, FaultCause::kDomainOutage);
      fails[key].insert(e.node);
    } else {
      repairs[key].insert(e.node);
    }
  }
  ASSERT_FALSE(fails.empty());
  for (const auto& [key, members] : fails) {
    const auto& domain = topo.power_domains[key.second].switches;
    EXPECT_EQ(members.size(), domain.size())
        << "partial outage of " << topo.power_domains[key.second].name
        << " at epoch " << key.first;
  }
  for (const auto& [key, members] : repairs) {
    const auto& domain = topo.power_domains[key.second].switches;
    EXPECT_EQ(members.size(), domain.size())
        << "partial repair of " << topo.power_domains[key.second].name
        << " at epoch " << key.first;
  }

  // The injector accepts the whole correlated timeline.
  FaultInjector injector(topo.graph, schedule);
  for (const Hour epoch : id_range(Hour{1}, Hour{cfg.hours})) {
    injector.advance_to(epoch);
  }
  EXPECT_LE(injector.dead_switch_count(),
            static_cast<int>(topo.graph.switches().size()));
}

// Gray links: flap bursts toggle fail/repair every epoch, always starting
// with a failure, never double-failing — the injector replay is the
// legality oracle, the per-link scan the alternation check.
TEST(FaultSchedule, FlappingLinksAlternateLegallyThroughInjector) {
  const Topology topo = build_fat_tree(4);
  FaultScheduleConfig cfg;
  cfg.hours = 96;
  cfg.flap_mtbf = 8.0;
  cfg.flap_cycles = 2;
  cfg.seed = 5;
  // The flap process is link-level and available on the Graph overload.
  const FaultSchedule schedule = generate_fault_schedule(topo.graph, cfg);
  ASSERT_FALSE(schedule.empty());
  bool saw_flap = false;
  std::map<EdgeKey, bool> down;  // per-link state oracle
  std::map<EdgeKey, Hour> last_epoch;
  for (const FaultEvent& e : schedule) {
    ASSERT_TRUE(e.kind == FaultKind::kLinkFail ||
                e.kind == FaultKind::kLinkRepair);
    if (e.cause == FaultCause::kFlap) saw_flap = true;
    const EdgeKey key{e.u, e.v};
    const bool fail = e.kind == FaultKind::kLinkFail;
    EXPECT_NE(down[key], fail) << "illegal alternation on link " << e.u
                               << "-" << e.v << " at epoch "
                               << e.epoch.value();
    down[key] = fail;
    // Mid-burst toggles are one epoch apart.
    if (last_epoch.count(key) && e.cause == FaultCause::kFlap &&
        !fail) {
      EXPECT_EQ(e.epoch.value(), last_epoch[key].value() + 1)
          << "flap repair not adjacent to its failure";
    }
    last_epoch[key] = e.epoch;
  }
  EXPECT_TRUE(saw_flap);
  FaultInjector injector(topo.graph, schedule);
  for (const Hour epoch : id_range(Hour{1}, Hour{cfg.hours})) {
    injector.advance_to(epoch);
  }
}

// Back-compat: with every domain knob at its default, the Topology
// overload must reproduce the Graph overload bit for bit (no extra RNG
// draws, same event order, same causes).
TEST(FaultSchedule, TopologyOverloadDefaultsMatchGraphOverload) {
  const Topology topo = build_fat_tree(4);
  FaultScheduleConfig cfg;
  cfg.hours = 48;
  cfg.switch_mtbf = 12.0;
  cfg.switch_mttr = 2.0;
  cfg.link_mtbf = 24.0;
  cfg.link_mttr = 2.0;
  cfg.seed = 7;
  const FaultSchedule a = generate_fault_schedule(topo.graph, cfg);
  const FaultSchedule b = generate_fault_schedule(topo, cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].epoch, b[i].epoch);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_EQ(a[i].u, b[i].u);
    EXPECT_EQ(a[i].v, b[i].v);
    EXPECT_EQ(a[i].cause, b[i].cause);
  }
}

// The Graph overload cannot honor domain-level knobs (it has no
// PowerDomain metadata) and must say so instead of silently ignoring
// them; maintenance windows validate their domain names and shape.
TEST(FaultSchedule, DomainKnobsRequireTopologyAndValidate) {
  const Topology topo = build_fat_tree(4);
  FaultScheduleConfig cfg;
  cfg.hours = 24;
  cfg.domain_mtbf = 8.0;
  EXPECT_THROW(generate_fault_schedule(topo.graph, cfg), PpdcError);
  cfg.domain_mtbf = 0.0;
  cfg.cascade_prob = 0.5;
  EXPECT_THROW(generate_fault_schedule(topo.graph, cfg), PpdcError);
  cfg.cascade_prob = 0.0;
  cfg.maintenance = {{"pod0", Hour{2}, Hour{4}}};
  EXPECT_THROW(generate_fault_schedule(topo.graph, cfg), PpdcError);
  // Unknown domain name / inverted window / epoch-0 start are rejected.
  cfg.maintenance = {{"podX", Hour{2}, Hour{4}}};
  EXPECT_THROW(generate_fault_schedule(topo, cfg), PpdcError);
  cfg.maintenance = {{"pod0", Hour{4}, Hour{2}}};
  EXPECT_THROW(generate_fault_schedule(topo, cfg), PpdcError);
  cfg.maintenance = {{"pod0", Hour{0}, Hour{2}}};
  EXPECT_THROW(generate_fault_schedule(topo, cfg), PpdcError);
  // A well-formed drain fails the whole pod at start and repairs at end.
  cfg.maintenance = {{"pod0", Hour{2}, Hour{4}}};
  const FaultSchedule s = generate_fault_schedule(topo, cfg);
  const std::size_t pod_size = topo.power_domains[0].switches.size();
  ASSERT_EQ(s.size(), 2 * pod_size);
  for (std::size_t i = 0; i < pod_size; ++i) {
    EXPECT_EQ(s[i].epoch, Hour{2});
    EXPECT_EQ(s[i].kind, FaultKind::kSwitchFail);
    EXPECT_EQ(s[i].cause, FaultCause::kMaintenance);
  }
  for (std::size_t i = pod_size; i < 2 * pod_size; ++i) {
    EXPECT_EQ(s[i].epoch, Hour{4});
    EXPECT_EQ(s[i].kind, FaultKind::kSwitchRepair);
  }
}

TEST(SolveBudget, UnlimitedByDefault) {
  const SolveBudget unlimited;
  EXPECT_TRUE(unlimited.unlimited());
  EXPECT_FALSE(Deadline(unlimited).expired());
  SolveBudget tight;
  tight.wall_ms = 1e-9;
  EXPECT_FALSE(tight.unlimited());
}

TEST(SolveBudget, ExpiredDeadlineStillReturnsValidPlacement) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  auto flows = random_flows(topo, 10, 5);
  const CostModel model(apsp, flows);
  const PlacementResult dp = solve_top_dp(model, 3);

  ChainSearchConfig cc;
  cc.budget.wall_ms = 1e-9;  // expires essentially immediately
  cc.initial = dp.placement;
  const ChainSearchResult res = solve_top_exhaustive(model, 3, cc);
  ASSERT_EQ(res.placement.size(), 3u);
  for (const NodeId s : res.placement) {
    EXPECT_TRUE(topo.graph.is_switch(s));
  }
  // Warm-started at the DP answer, truncation can never do worse than it.
  EXPECT_LE(res.objective, dp.comm_cost + 1e-9);
}

TEST(SolveBudget, ExhaustivePolicyDegradesGracefullyUnderTinyBudget) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 8, 6);
  SimConfig cfg;
  cfg.hours = 6;
  NoMigrationPolicy none;
  ChainSearchConfig tiny;
  tiny.budget.wall_ms = 1e-9;
  ExhaustiveMigrationPolicy truncated(10.0, tiny);
  const SimTrace t_none = run_simulation(apsp, flows, 3, cfg, none);
  const SimTrace t_trunc = run_simulation(apsp, flows, 3, cfg, truncated);
  // Fallback keeps the cheaper of the truncated search and mPareto, both
  // warm-started at "stay put" — never worse than doing nothing.
  EXPECT_LE(t_trunc.total_cost, t_none.total_cost + 1e-6);
}

}  // namespace
}  // namespace ppdc
