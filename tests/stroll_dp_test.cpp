#include "core/stroll_dp.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "topology/fat_tree.hpp"
#include "topology/linear.hpp"
#include "topology/misc.hpp"

namespace ppdc {
namespace {

/// The Fig. 4 instance of the paper. Raw-graph DP would find the 3-edge
/// path s,A,B,t of cost 7; the metric-closure DP must find the cheaper
/// walk-equivalent s,D,C,t of cost 6 (Example 2).
struct Fig4 {
  Graph g;
  NodeId s, t, a, b, c, d;
  Fig4() {
    s = g.add_node(NodeKind::kHost, "s");
    t = g.add_node(NodeKind::kHost, "t");
    a = g.add_node(NodeKind::kSwitch, "A");
    b = g.add_node(NodeKind::kSwitch, "B");
    c = g.add_node(NodeKind::kSwitch, "C");
    d = g.add_node(NodeKind::kSwitch, "D");
    g.add_edge(s, a, 3.0);
    g.add_edge(a, b, 2.0);
    g.add_edge(b, t, 2.0);
    g.add_edge(s, d, 2.0);
    g.add_edge(d, t, 2.0);
    g.add_edge(t, c, 1.0);
  }
};

TEST(StrollDp, Fig4Example2FindsCost6ViaClosure) {
  Fig4 f;
  const AllPairs apsp(f.g);
  const StrollResult r = solve_top1_dp(apsp, f.s, f.t, 2);
  EXPECT_DOUBLE_EQ(r.cost, 6.0);
  ASSERT_EQ(r.placement.size(), 2u);
  EXPECT_EQ(r.placement[0], f.d);
  EXPECT_EQ(r.placement[1], f.c);
  EXPECT_FALSE(r.used_fallback);
}

TEST(StrollDp, Fig4MatchesBruteForce) {
  Fig4 f;
  const AllPairs apsp(f.g);
  for (int n = 1; n <= 4; ++n) {
    const StrollResult r = solve_top1_dp(apsp, f.s, f.t, n);
    const double opt = testing::brute_force_stroll_cost(apsp, f.s, f.t, n);
    EXPECT_GE(r.cost + 1e-9, opt) << "n=" << n;
    EXPECT_LE(r.cost, 2.0 * opt + 1e-9) << "n=" << n;
  }
}

TEST(StrollDp, ZeroQuotaIsDirectEdge) {
  Fig4 f;
  const AllPairs apsp(f.g);
  const StrollResult r = solve_top1_dp(apsp, f.s, f.t, 0);
  EXPECT_DOUBLE_EQ(r.cost, 4.0);  // s-D-t shortest path
  EXPECT_TRUE(r.placement.empty());
  EXPECT_EQ(r.edges_used, 1);
}

TEST(StrollDp, RateScalesCostLinearly) {
  Fig4 f;
  const AllPairs apsp(f.g);
  const StrollResult r1 = solve_top1_dp(apsp, f.s, f.t, 2, 1.0);
  const StrollResult r5 = solve_top1_dp(apsp, f.s, f.t, 2, 5.0);
  EXPECT_DOUBLE_EQ(r5.cost, 5.0 * r1.cost);
  EXPECT_EQ(r1.placement, r5.placement);
}

TEST(StrollDp, PlacementIsDistinctSwitchesExcludingEndpoints) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const NodeId s = topo.racks[RackIdx{0}][0];
  const NodeId t = topo.racks[RackIdx{5}][1];
  for (int n = 1; n <= 10; ++n) {
    const StrollResult r = solve_top1_dp(apsp, s, t, n);
    ASSERT_EQ(r.placement.size(), static_cast<std::size_t>(n));
    std::vector<NodeId> sorted = r.placement;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
    for (const NodeId w : r.placement) {
      EXPECT_TRUE(topo.graph.is_switch(w));
      EXPECT_NE(w, s);
      EXPECT_NE(w, t);
    }
  }
}

TEST(StrollDp, WalkConnectsSourceToDestination) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const NodeId s = topo.racks[RackIdx{0}][0];
  const NodeId t = topo.racks[RackIdx{7}][0];
  const StrollResult r = solve_top1_dp(apsp, s, t, 5);
  ASSERT_GE(r.walk.size(), 2u);
  EXPECT_EQ(r.walk.front(), s);
  EXPECT_EQ(r.walk.back(), t);
  // The reported cost equals the metric length of the walk.
  double len = 0.0;
  for (std::size_t i = 0; i + 1 < r.walk.size(); ++i) {
    len += apsp.cost(r.walk[i], r.walk[i + 1]);
  }
  EXPECT_NEAR(r.cost, len, 1e-9);
}

TEST(StrollDp, Example3SevenStrollAcrossPods) {
  // §IV Example 3 shape: a 7-stroll between hosts of different pods in a
  // k=4 fat-tree admits an 8-edge all-unit-hop path, so the optimum is 8.
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const NodeId h4 = topo.racks[RackIdx{1}][1];  // pod 0
  const NodeId h5 = topo.racks[RackIdx{2}][0];  // pod 1
  const StrollResult r = solve_top1_dp(apsp, h4, h5, 7);
  EXPECT_GE(r.cost, 8.0);   // 8 legs, each at least one hop
  EXPECT_LE(r.cost, 12.0);  // DP stays near the optimum
  EXPECT_EQ(r.placement.size(), 7u);
}

TEST(StrollDp, NTourSameEndpointHost) {
  // s == t (Fig. 5: both VMs on h1) — the n-tour case Algorithm 2 covers.
  const Topology topo = build_linear(5);
  const AllPairs apsp(topo.graph);
  const NodeId h1 = topo.graph.hosts()[0];
  const StrollResult r = solve_top1_dp(apsp, h1, h1, 2);
  // Optimal 2-tour: h1, s1, s2, s1, h1 -> shortcut h1,s1,s2 + s2->h1 = 1+1+2.
  EXPECT_DOUBLE_EQ(r.cost, 4.0);
  EXPECT_EQ(r.placement.size(), 2u);
}

TEST(StrollDp, ZeroQuotaSameEndpointIsSingleNodeWalk) {
  // Degenerate n-tour base: s == t with nothing to place needs no edge at
  // all. The walk must be the single node {s} — the old {s, s} answer
  // broke the "consecutive walk nodes are distinct" invariant downstream
  // consumers rely on.
  const Topology topo = build_linear(5);
  const AllPairs apsp(topo.graph);
  const NodeId h1 = topo.graph.hosts()[0];
  const StrollResult r = solve_top1_dp(apsp, h1, h1, 0);
  EXPECT_EQ(r.cost, 0.0);
  EXPECT_EQ(r.walk, std::vector<NodeId>{h1});
  EXPECT_TRUE(r.placement.empty());
  EXPECT_EQ(r.edges_used, 0);
  EXPECT_FALSE(r.used_fallback);
  for (std::size_t i = 0; i + 1 < r.walk.size(); ++i) {
    EXPECT_NE(r.walk[i], r.walk[i + 1]);
  }
}

TEST(StrollDp, MatchesBruteForceOnRandomWeightedGraphs) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Topology topo = build_random_connected(7, 2, 6, 0.5, 3.0, seed);
    const AllPairs apsp(topo.graph);
    const NodeId s = topo.graph.hosts()[0];
    const NodeId t = topo.graph.hosts()[1];
    for (int n = 1; n <= 4; ++n) {
      const StrollResult r = solve_top1_dp(apsp, s, t, n);
      const double opt = testing::brute_force_stroll_cost(apsp, s, t, n);
      EXPECT_GE(r.cost + 1e-9, opt) << "seed=" << seed << " n=" << n;
      EXPECT_LE(r.cost, 2.0 * opt + 1e-9) << "seed=" << seed << " n=" << n;
    }
  }
}

TEST(StrollDp, Theorem3CertifiesOptimality) {
  // Whenever the sufficient condition of Theorem 3 holds, the DP result
  // must equal the brute-force optimum.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Topology topo = build_random_connected(6, 2, 5, 0.5, 2.0, seed);
    const AllPairs apsp(topo.graph);
    const NodeId s = topo.graph.hosts()[0];
    const NodeId t = topo.graph.hosts()[1];
    for (int n = 1; n <= 3; ++n) {
      StrollTable table(apsp, t, 1.0);
      const StrollResult r = table.find(s, n);
      if (table.satisfies_theorem3(r)) {
        const double opt = testing::brute_force_stroll_cost(apsp, s, t, n);
        EXPECT_NEAR(r.cost, opt, 1e-9) << "seed=" << seed << " n=" << n;
      }
    }
  }
}

TEST(StrollDp, TableIsReusableAcrossSources) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto& sw = topo.graph.switches();
  StrollTable table(apsp, sw[10], 2.0);
  for (const NodeId s : {sw[0], sw[3], sw[7]}) {
    const StrollResult shared = table.find(s, 3);
    const StrollResult fresh = solve_top1_dp(apsp, s, sw[10], 3, 2.0);
    EXPECT_DOUBLE_EQ(shared.cost, fresh.cost);
  }
}

TEST(StrollDp, RejectsImpossibleQuota) {
  const Topology topo = build_linear(3);
  const AllPairs apsp(topo.graph);
  const NodeId h1 = topo.graph.hosts()[0];
  const NodeId h2 = topo.graph.hosts()[1];
  EXPECT_THROW(solve_top1_dp(apsp, h1, h2, 4), PpdcError);  // only 3 switches
  EXPECT_THROW(solve_top1_dp(apsp, h1, h2, -1), PpdcError);
  EXPECT_THROW(solve_top1_dp(apsp, h1, h2, 2, 0.0), PpdcError);
}

TEST(StrollDp, CostNondecreasingInQuota) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const NodeId s = topo.racks[RackIdx{0}][0];
  const NodeId t = topo.racks[RackIdx{6}][1];
  double prev = 0.0;
  for (int n = 1; n <= 12; ++n) {
    const StrollResult r = solve_top1_dp(apsp, s, t, n);
    EXPECT_GE(r.cost + 1e-9, prev) << "n=" << n;
    prev = r.cost;
  }
}

}  // namespace
}  // namespace ppdc
