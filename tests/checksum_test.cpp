// util/checksum.hpp: the CRC-32 and Hash64 primitives under the
// checkpoint journal and the serialize footers. The CRC check vector is
// the classic IEEE 802.3 one; the Hash64 tests pin the properties the
// fingerprint layer relies on (field separation, bit-pattern doubles).
#include "util/checksum.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ppdc {
namespace {

TEST(Crc32, MatchesTheIeeeCheckVector) {
  // Every CRC-32/IEEE implementation must map "123456789" to 0xCBF43926.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
}

TEST(Crc32, EmptyInputHasCrcZero) { EXPECT_EQ(crc32(""), 0u); }

TEST(Crc32, IncrementalEqualsOneShotForEveryChunking) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t oneshot = crc32(data);
  for (std::size_t cut = 0; cut <= data.size(); ++cut) {
    Crc32 c;
    c.update(data.substr(0, cut));
    c.update(data.substr(cut));
    EXPECT_EQ(c.value(), oneshot) << "split at " << cut;
  }
}

TEST(Crc32, ValueIsReadableMidStream) {
  Crc32 c;
  c.update("12345");
  const std::uint32_t mid = c.value();
  c.update("6789");
  EXPECT_EQ(c.value(), 0xCBF43926u);  // reading value() did not disturb it
  EXPECT_NE(mid, c.value());
}

TEST(Crc32, DetectsSingleBitFlips) {
  std::string data(64, 'x');
  const std::uint32_t clean = crc32(data);
  data[17] = static_cast<char>(data[17] ^ 0x04);
  EXPECT_NE(crc32(data), clean);
}

TEST(Hash64, IsDeterministicAndOrderSensitive) {
  EXPECT_EQ(Hash64().u64(1).u64(2).value(), Hash64().u64(1).u64(2).value());
  EXPECT_NE(Hash64().u64(1).u64(2).value(), Hash64().u64(2).u64(1).value());
}

TEST(Hash64, StringFieldsCannotAlias) {
  // Length-prefixing: ("ab","c") must not collide with ("a","bc").
  const std::uint64_t ab_c = Hash64().str("ab").str("c").value();
  const std::uint64_t a_bc = Hash64().str("a").str("bc").value();
  EXPECT_NE(ab_c, a_bc);
}

TEST(Hash64, DoublesHashByBitPattern) {
  // 0.0 and -0.0 compare equal but have distinct IEEE bits — the
  // fingerprint contract is bit-exactness, so they must hash apart.
  EXPECT_NE(Hash64().f64(0.0).value(), Hash64().f64(-0.0).value());
  EXPECT_EQ(Hash64().f64(1.5).value(), Hash64().f64(1.5).value());
}

TEST(Hash64, BoolAndIntegerFieldsAreDistinct) {
  EXPECT_NE(Hash64().b(true).value(), Hash64().b(false).value());
  EXPECT_NE(Hash64().i64(-1).value(), Hash64().i64(1).value());
}

TEST(Hash64, ValueIsStableAcrossReads) {
  Hash64 h;
  h.u64(42);
  EXPECT_EQ(h.value(), h.value());
}

}  // namespace
}  // namespace ppdc
