#include "core/local_search.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/steering.hpp"
#include "core/chain_search.hpp"
#include "core/placement_dp.hpp"
#include "topology/fat_tree.hpp"
#include "topology/linear.hpp"
#include "topology/misc.hpp"
#include "workload/vm_placement.hpp"

namespace ppdc {
namespace {

std::vector<VmFlow> random_flows(const Topology& topo, int l,
                                 std::uint64_t seed) {
  VmPlacementConfig cfg;
  cfg.num_pairs = l;
  Rng rng(seed);
  return generate_vm_flows(topo, cfg, rng);
}

TEST(LocalSearch, NeverWorsensAndStaysValid) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto flows = random_flows(topo, 10, seed);
    CostModel cm(apsp, flows);
    const Placement start = solve_top_steering(cm, 4).placement;
    const LocalSearchResult r = improve_placement(cm, start);
    EXPECT_LE(r.comm_cost, cm.communication_cost(start) + 1e-9);
    EXPECT_NO_THROW(validate_placement(topo.graph, r.placement));
    EXPECT_NEAR(cm.communication_cost(r.placement), r.comm_cost, 1e-9);
  }
}

TEST(LocalSearch, OptimalPlacementIsAFixedPoint) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 8, 3);
  CostModel cm(apsp, flows);
  const ChainSearchResult opt = solve_top_exhaustive(cm, 3);
  ASSERT_TRUE(opt.proven_optimal);
  const LocalSearchResult r = improve_placement(cm, opt.placement);
  EXPECT_EQ(r.moves_applied, 0);
  EXPECT_NEAR(r.comm_cost, opt.objective, 1e-9);
}

TEST(LocalSearch, ImprovesSteeringTowardOptimal) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  double steering_total = 0.0, polished_total = 0.0, opt_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto flows = random_flows(topo, 10, seed + 40);
    CostModel cm(apsp, flows);
    const Placement start = solve_top_steering(cm, 4).placement;
    const LocalSearchResult r = improve_placement(cm, start);
    steering_total += cm.communication_cost(start);
    polished_total += r.comm_cost;
    opt_total += solve_top_exhaustive(cm, 4).objective;
  }
  EXPECT_LT(polished_total, steering_total);           // strictly helps
  EXPECT_LE(polished_total, 1.1 * opt_total + 1e-9);   // lands near optimal
}

TEST(LocalSearch, FindsOptimumOnTinyInstances) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Topology topo = build_random_connected(6, 4, 5, 0.5, 2.0, seed);
    const AllPairs apsp(topo.graph);
    const auto flows = random_flows(topo, 4, seed);
    CostModel cm(apsp, flows);
    // Start from the lexicographically first placement.
    const auto& s = topo.graph.switches();
    const Placement start{s[0], s[1]};
    const LocalSearchResult r = improve_placement(cm, start);
    const double opt = solve_top_exhaustive(cm, 2).objective;
    // Replace+swap is a complete neighbourhood for n=2 on tiny graphs —
    // the local optimum matches the global one here.
    EXPECT_NEAR(r.comm_cost, opt, 1e-6) << "seed=" << seed;
  }
}

TEST(LocalSearch, MoveCapIsRespected) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 10, 9);
  CostModel cm(apsp, flows);
  const Placement start = solve_top_steering(cm, 5).placement;
  LocalSearchOptions opts;
  opts.max_moves = 1;
  const LocalSearchResult r = improve_placement(cm, start, opts);
  EXPECT_LE(r.moves_applied, 1);
}

TEST(BreakEvenMu, Fig3Example) {
  // Fig. 3: migrating (s1,s2) -> (s5,s4) saves 1004-410 = 594 over
  // distance 6 => break-even mu = 99.
  const Topology topo = build_linear(5);
  const AllPairs apsp(topo.graph);
  const NodeId h1 = topo.graph.hosts()[0];
  const NodeId h2 = topo.graph.hosts()[1];
  const std::vector<VmFlow> flows{{h1, h1, 1.0, 0}, {h2, h2, 100.0, 0}};
  CostModel cm(apsp, flows);
  const auto& s = topo.graph.switches();
  const double mu_star = break_even_mu(cm, {s[0], s[1]}, {s[4], s[3]});
  EXPECT_DOUBLE_EQ(mu_star, 594.0 / 6.0);
}

TEST(BreakEvenMu, EdgeCases) {
  const Topology topo = build_linear(5);
  const AllPairs apsp(topo.graph);
  const NodeId h1 = topo.graph.hosts()[0];
  const std::vector<VmFlow> flows{{h1, h1, 10.0, 0}};
  CostModel cm(apsp, flows);
  const auto& s = topo.graph.switches();
  // Identity migration: infinite break-even.
  EXPECT_TRUE(std::isinf(break_even_mu(cm, {s[0], s[1]}, {s[0], s[1]})));
  // Worse target: zero.
  EXPECT_DOUBLE_EQ(break_even_mu(cm, {s[0], s[1]}, {s[3], s[4]}), 0.0);
}

}  // namespace
}  // namespace ppdc
