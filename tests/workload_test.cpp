#include <gtest/gtest.h>

#include "topology/fat_tree.hpp"
#include "workload/diurnal.hpp"
#include "workload/traffic.hpp"
#include "workload/vm_placement.hpp"
#include "workload/zoom.hpp"

namespace ppdc {
namespace {

TEST(RateDistributionTest, SamplesStayInRange) {
  RateDistribution d;
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double r = d.sample(rng);
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 10000.0);
  }
}

TEST(RateDistributionTest, BucketFrequenciesMatchPaper) {
  // §VI: 25% light [0,3000), 70% medium [3000,7000], 5% heavy (7000,10000].
  RateDistribution d;
  Rng rng(2);
  int light = 0, medium = 0, heavy = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    switch (d.classify(d.sample(rng))) {
      case RateClass::kLight: ++light; break;
      case RateClass::kMedium: ++medium; break;
      case RateClass::kHeavy: ++heavy; break;
    }
  }
  EXPECT_NEAR(static_cast<double>(light) / n, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(medium) / n, 0.70, 0.01);
  EXPECT_NEAR(static_cast<double>(heavy) / n, 0.05, 0.01);
}

TEST(RateDistributionTest, ClassifyBoundaries) {
  RateDistribution d;
  EXPECT_EQ(d.classify(0.0), RateClass::kLight);
  EXPECT_EQ(d.classify(2999.9), RateClass::kLight);
  EXPECT_EQ(d.classify(3000.0), RateClass::kMedium);
  EXPECT_EQ(d.classify(7000.0), RateClass::kMedium);
  EXPECT_EQ(d.classify(7000.1), RateClass::kHeavy);
}

TEST(RateDistributionTest, RejectsDegenerateFractions) {
  RateDistribution d;
  d.light_fraction = d.medium_fraction = d.heavy_fraction = 0.0;
  Rng rng(1);
  EXPECT_THROW(d.sample(rng), PpdcError);
}

TEST(Rates, HelpersRoundTrip) {
  std::vector<VmFlow> flows(3);
  set_rates(flows, {1.0, 2.0, 3.0});
  EXPECT_EQ(rates_of(flows), (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_DOUBLE_EQ(total_rate(flows), 6.0);
  EXPECT_THROW(set_rates(flows, {1.0}), PpdcError);
}

TEST(SampleRates, CountAndDeterminism) {
  RateDistribution d;
  Rng a(5), b(5);
  const auto ra = sample_rates(d, 50, a);
  const auto rb = sample_rates(d, 50, b);
  EXPECT_EQ(ra.size(), 50u);
  EXPECT_EQ(ra, rb);
}

TEST(VmPlacement, RespectsIntraRackFraction) {
  const Topology t = build_fat_tree(8);
  VmPlacementConfig cfg;
  cfg.num_pairs = 4000;
  cfg.intra_rack_fraction = 0.8;
  Rng rng(11);
  const auto flows = generate_vm_flows(t, cfg, rng);
  EXPECT_EQ(flows.size(), 4000u);
  EXPECT_NEAR(measured_intra_rack_fraction(t, flows), 0.8, 0.03);
}

TEST(VmPlacement, AllEndpointsAreHosts) {
  const Topology t = build_fat_tree(4);
  VmPlacementConfig cfg;
  cfg.num_pairs = 200;
  Rng rng(3);
  for (const auto& f : generate_vm_flows(t, cfg, rng)) {
    EXPECT_TRUE(t.graph.is_host(f.src_host));
    EXPECT_TRUE(t.graph.is_host(f.dst_host));
    EXPECT_GE(f.rate, 0.0);
    EXPECT_LE(f.rate, 10000.0);
  }
}

TEST(VmPlacement, ExtremeFractions) {
  const Topology t = build_fat_tree(4);
  VmPlacementConfig cfg;
  cfg.num_pairs = 300;
  cfg.intra_rack_fraction = 1.0;
  Rng rng(5);
  EXPECT_DOUBLE_EQ(
      measured_intra_rack_fraction(t, generate_vm_flows(t, cfg, rng)), 1.0);
  cfg.intra_rack_fraction = 0.0;
  EXPECT_DOUBLE_EQ(
      measured_intra_rack_fraction(t, generate_vm_flows(t, cfg, rng)), 0.0);
}

TEST(VmPlacement, RejectsBadConfig) {
  const Topology t = build_fat_tree(2);
  VmPlacementConfig cfg;
  cfg.intra_rack_fraction = 1.5;
  Rng rng(1);
  EXPECT_THROW(generate_vm_flows(t, cfg, rng), PpdcError);
}

TEST(Diurnal, Eq9Endpoints) {
  DiurnalModel m;  // N = 12, tau_min = 0.2
  EXPECT_DOUBLE_EQ(m.tau(Hour{0}), 0.0);
  EXPECT_DOUBLE_EQ(m.tau(Hour{6}), 0.8);       // peak at noon: 2*(6/12)*0.8
  EXPECT_DOUBLE_EQ(m.tau(Hour{12}), 0.0);      // wraps to h=0
  EXPECT_DOUBLE_EQ(m.scale(Hour{0}), 0.2);     // floor
  EXPECT_DOUBLE_EQ(m.scale(Hour{6}), 1.0);     // peak
}

TEST(Diurnal, SymmetricAroundNoon) {
  DiurnalModel m;
  for (int h = 1; h <= 5; ++h) {
    EXPECT_DOUBLE_EQ(m.tau(Hour{h}), m.tau(Hour{12 - h}));
  }
}

TEST(Diurnal, MonotoneRampUp) {
  DiurnalModel m;
  for (int h = 1; h < 6; ++h) {
    EXPECT_LT(m.tau(Hour{h}), m.tau(Hour{h + 1}));
  }
}

TEST(Diurnal, CoastOffsetShiftsWestFlows) {
  DiurnalModel m;
  // Flow 0 = east (no lag), flow 1 = west (3 h lag).
  EXPECT_DOUBLE_EQ(m.scale_for_flow(Hour{6}, FlowId{0}), 1.0);
  EXPECT_DOUBLE_EQ(m.scale_for_flow(Hour{9}, FlowId{1}), 1.0);
  EXPECT_DOUBLE_EQ(m.scale_for_flow(Hour{6}, FlowId{1}), m.scale(Hour{3}));
}

TEST(Diurnal, RatesApplyPerFlow) {
  DiurnalModel m;
  const auto rates = diurnal_rates(m, {100.0, 100.0}, Hour{6});
  EXPECT_DOUBLE_EQ(rates[0], 100.0);              // east at peak
  EXPECT_DOUBLE_EQ(rates[1], 100.0 * m.scale(Hour{3})); // west 3h behind
}

TEST(Diurnal, RejectsBadModel) {
  DiurnalModel m;
  m.hours_per_day = 7;  // odd
  EXPECT_THROW(m.tau(Hour{1}), PpdcError);
  m.hours_per_day = 12;
  m.tau_min = 1.5;
  EXPECT_THROW(m.tau(Hour{1}), PpdcError);
}

TEST(Zoom, RatesAreNonNegativeAndBursty) {
  ZoomWorkload wl(20, ZoomModel{}, 77);
  double min_total = 1e18, max_total = 0.0;
  for (int hour = 0; hour < 24; ++hour) {
    const auto rates = wl.rates();
    EXPECT_EQ(rates.size(), 20u);
    double total = 0.0;
    for (const double r : rates) {
      EXPECT_GE(r, 0.0);
      total += r;
    }
    min_total = std::min(min_total, total);
    max_total = std::max(max_total, total);
    wl.advance_hour();
  }
  EXPECT_GT(max_total, min_total);  // traffic actually varies
}

TEST(Zoom, SessionsChurn) {
  ZoomWorkload wl(5, ZoomModel{}, 3);
  const int before = wl.live_sessions();
  EXPECT_GT(before, 0);
  for (int i = 0; i < 48; ++i) wl.advance_hour();
  EXPECT_GT(wl.live_sessions(), 0);
}

TEST(Zoom, Deterministic) {
  ZoomWorkload a(10, ZoomModel{}, 5), b(10, ZoomModel{}, 5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.rates(), b.rates());
    a.advance_hour();
    b.advance_hour();
  }
}

TEST(Zoom, RejectsBadModel) {
  ZoomModel m;
  m.mean_duration_hours = 0.5;
  EXPECT_THROW(ZoomWorkload(1, m, 1), PpdcError);
  EXPECT_THROW(ZoomWorkload(0, ZoomModel{}, 1), PpdcError);
}

}  // namespace
}  // namespace ppdc
