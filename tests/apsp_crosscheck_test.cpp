// Independent cross-check of AllPairs against a from-scratch
// Floyd-Warshall implemented inside the test (different algorithm,
// different code path — a real oracle, not a mirror).
#include <gtest/gtest.h>

#include <vector>

#include "graph/apsp.hpp"
#include "topology/fat_tree.hpp"
#include "topology/leaf_spine.hpp"
#include "topology/misc.hpp"

namespace ppdc {
namespace {

std::vector<double> floyd_warshall(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> d(n * n, kInf);
  for (std::size_t v = 0; v < n; ++v) d[v * n + v] = 0.0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const auto& a : g.neighbors(u)) {
      auto& cell = d[static_cast<std::size_t>(u) * n +
                     static_cast<std::size_t>(a.to)];
      cell = std::min(cell, a.weight);
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      const double dik = d[i * n + k];
      if (dik == kInf) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (dik + d[k * n + j] < d[i * n + j]) {
          d[i * n + j] = dik + d[k * n + j];
        }
      }
    }
  }
  return d;
}

class ApspCrossCheck : public ::testing::TestWithParam<int> {};

TEST_P(ApspCrossCheck, MatchesFloydWarshallOnRandomGraphs) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Topology t = build_random_connected(14, 6, 12, 0.25, 4.0, seed);
  const AllPairs apsp(t.graph);
  const auto ref = floyd_warshall(t.graph);
  const auto n = static_cast<std::size_t>(t.graph.num_nodes());
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) {
      EXPECT_NEAR(apsp.cost(static_cast<NodeId>(u), static_cast<NodeId>(v)),
                  ref[u * n + v], 1e-9)
          << "u=" << u << " v=" << v << " seed=" << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApspCrossCheck,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(ApspCrossCheck, MatchesFloydWarshallOnFatTree) {
  const Topology t = build_fat_tree(4);
  const AllPairs apsp(t.graph);
  const auto ref = floyd_warshall(t.graph);
  const auto n = static_cast<std::size_t>(t.graph.num_nodes());
  for (std::size_t u = 0; u < n; u += 3) {
    for (std::size_t v = 0; v < n; v += 2) {
      EXPECT_DOUBLE_EQ(
          apsp.cost(static_cast<NodeId>(u), static_cast<NodeId>(v)),
          ref[u * n + v]);
    }
  }
}

TEST(ApspCrossCheck, MatchesFloydWarshallOnLeafSpine) {
  const Topology t = build_leaf_spine(4, 3, 2);
  const AllPairs apsp(t.graph);
  const auto ref = floyd_warshall(t.graph);
  const auto n = static_cast<std::size_t>(t.graph.num_nodes());
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) {
      EXPECT_DOUBLE_EQ(
          apsp.cost(static_cast<NodeId>(u), static_cast<NodeId>(v)),
          ref[u * n + v]);
    }
  }
}

}  // namespace
}  // namespace ppdc
