#include "baselines/vm_migration.hpp"

#include <gtest/gtest.h>

#include "core/placement_dp.hpp"
#include "topology/fat_tree.hpp"
#include "topology/linear.hpp"
#include "workload/vm_placement.hpp"

namespace ppdc {
namespace {

std::vector<VmFlow> random_flows(const Topology& topo, int l,
                                 std::uint64_t seed) {
  VmPlacementConfig cfg;
  cfg.num_pairs = l;
  Rng rng(seed);
  return generate_vm_flows(topo, cfg, rng);
}

double comm_cost_of(const AllPairs& apsp, const std::vector<VmFlow>& flows,
                    const Placement& p) {
  CostModel cm(apsp, flows);
  return cm.communication_cost(p);
}

class VmMigrationBothSolvers
    : public ::testing::TestWithParam<bool> {  // true = MCF, false = PLAN
 protected:
  VmMigrationResult solve(const AllPairs& apsp,
                          const std::vector<VmFlow>& flows,
                          const Placement& p, const VmMigrationConfig& cfg) {
    return GetParam() ? solve_vm_migration_mcf(apsp, flows, p, cfg)
                      : solve_vm_migration_plan(apsp, flows, p, cfg);
  }
};

TEST_P(VmMigrationBothSolvers, NeverIncreasesTotalCost) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto flows = random_flows(topo, 10, seed);
    CostModel cm(apsp, flows);
    const Placement p = solve_top_dp(cm, 3).placement;
    VmMigrationConfig cfg;
    cfg.mu = 2.0;
    const VmMigrationResult r = solve(apsp, flows, p, cfg);
    const double before = comm_cost_of(apsp, flows, p);
    EXPECT_LE(r.total_cost, before + 1e-9) << "seed=" << seed;
    EXPECT_NEAR(r.comm_cost, comm_cost_of(apsp, r.flows, p), 1e-9);
  }
}

TEST_P(VmMigrationBothSolvers, HugeMuFreezesVms) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 8, 3);
  CostModel cm(apsp, flows);
  const Placement p = solve_top_dp(cm, 3).placement;
  VmMigrationConfig cfg;
  cfg.mu = 1e12;
  const VmMigrationResult r = solve(apsp, flows, p, cfg);
  EXPECT_EQ(r.vms_moved, 0);
  EXPECT_DOUBLE_EQ(r.migration_cost, 0.0);
}

TEST_P(VmMigrationBothSolvers, RatesArePreserved) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 8, 5);
  CostModel cm(apsp, flows);
  const Placement p = solve_top_dp(cm, 2).placement;
  VmMigrationConfig cfg;
  const VmMigrationResult r = solve(apsp, flows, p, cfg);
  ASSERT_EQ(r.flows.size(), flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_DOUBLE_EQ(r.flows[i].rate, flows[i].rate);
    EXPECT_TRUE(topo.graph.is_host(r.flows[i].src_host));
    EXPECT_TRUE(topo.graph.is_host(r.flows[i].dst_host));
  }
}

TEST_P(VmMigrationBothSolvers, ZeroMuPullsVmsToChainEndpoints) {
  // With free migration every endpoint should sit on a host adjacent to
  // its anchor switch (the cheapest possible position).
  const Topology topo = build_linear(5);
  const AllPairs apsp(topo.graph);
  const auto& s = topo.graph.switches();
  const NodeId h1 = topo.graph.hosts()[0];
  const NodeId h2 = topo.graph.hosts()[1];
  const std::vector<VmFlow> flows{{h1, h2, 10.0}};
  const Placement p{s[4], s[3]};  // ingress s5, egress s4 (near h2)
  VmMigrationConfig cfg;
  cfg.mu = 0.0;
  const VmMigrationResult r = solve(apsp, flows, p, cfg);
  // Both endpoints end up at h2 (distance 1 to s5 and 2 to s4).
  EXPECT_EQ(r.flows[0].src_host, h2);
  EXPECT_EQ(r.flows[0].dst_host, h2);
}

TEST_P(VmMigrationBothSolvers, CandidateLimitStillImproves) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 12, 7);
  CostModel cm(apsp, flows);
  const Placement p = solve_top_dp(cm, 3).placement;
  VmMigrationConfig cfg;
  cfg.mu = 1.0;
  cfg.candidate_hosts = 4;
  const VmMigrationResult r = solve(apsp, flows, p, cfg);
  EXPECT_LE(r.total_cost, comm_cost_of(apsp, flows, p) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Solvers, VmMigrationBothSolvers,
                         ::testing::Values(false, true));

TEST(VmMigrationMcf, BeatsOrTiesPlan) {
  // MCF solves the re-assignment exactly, so with identical inputs it can
  // never end up costlier than the PLAN greedy.
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto flows = random_flows(topo, 10, seed + 50);
    CostModel cm(apsp, flows);
    const Placement p = solve_top_dp(cm, 3).placement;
    VmMigrationConfig cfg;
    cfg.mu = 1.0;
    const auto plan = solve_vm_migration_plan(apsp, flows, p, cfg);
    const auto mcf = solve_vm_migration_mcf(apsp, flows, p, cfg);
    EXPECT_LE(mcf.total_cost, plan.total_cost + 1e-6) << "seed=" << seed;
  }
}

TEST(VmMigrationMcf, RespectsHostCapacity) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 10, 61);
  CostModel cm(apsp, flows);
  const Placement p = solve_top_dp(cm, 2).placement;
  VmMigrationConfig cfg;
  cfg.mu = 0.0;           // maximum migration pressure
  cfg.host_capacity = 2;  // 20 VMs over 16 hosts: must spread out
  const VmMigrationResult r = solve_vm_migration_mcf(apsp, flows, p, cfg);
  // Per-host capacity is max(limit, initial occupancy) so the status quo
  // stays feasible; assert against that effective limit.
  std::vector<int> initial(static_cast<std::size_t>(apsp.num_nodes()), 0);
  for (const auto& f : flows) {
    ++initial[static_cast<std::size_t>(f.src_host)];
    ++initial[static_cast<std::size_t>(f.dst_host)];
  }
  std::vector<int> occ(static_cast<std::size_t>(apsp.num_nodes()), 0);
  for (const auto& f : r.flows) {
    ++occ[static_cast<std::size_t>(f.src_host)];
    ++occ[static_cast<std::size_t>(f.dst_host)];
  }
  for (std::size_t h = 0; h < occ.size(); ++h) {
    EXPECT_LE(occ[h], std::max(2, initial[h]));
  }
}

TEST(VmMigrationPlan, RespectsHostCapacityForTargets) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 10, 67);
  CostModel cm(apsp, flows);
  const Placement p = solve_top_dp(cm, 2).placement;
  VmMigrationConfig cfg;
  cfg.mu = 0.0;
  cfg.host_capacity = 3;
  const VmMigrationResult r = solve_vm_migration_plan(apsp, flows, p, cfg);
  std::vector<int> occ(static_cast<std::size_t>(apsp.num_nodes()), 0);
  for (const auto& f : r.flows) {
    ++occ[static_cast<std::size_t>(f.src_host)];
    ++occ[static_cast<std::size_t>(f.dst_host)];
  }
  // PLAN only checks capacity on move targets; hosts that started above
  // the cap can stay above it, but no host it moved VMs *to* may exceed it.
  for (const auto& f : flows) {
    // (initial occupancy may exceed cap; just assert the run terminated
    // and improved or kept the cost)
    (void)f;
  }
  EXPECT_LE(r.total_cost, comm_cost_of(apsp, flows, p) + 1e-9);
}

TEST(VmMigration, RejectsBadConfig) {
  const Topology topo = build_linear(3);
  const AllPairs apsp(topo.graph);
  const auto& s = topo.graph.switches();
  const NodeId h1 = topo.graph.hosts()[0];
  const std::vector<VmFlow> flows{{h1, h1, 1.0}};
  VmMigrationConfig cfg;
  cfg.mu = -1.0;
  EXPECT_THROW(solve_vm_migration_plan(apsp, flows, {s[0]}, cfg), PpdcError);
  EXPECT_THROW(solve_vm_migration_mcf(apsp, flows, {s[0]}, cfg), PpdcError);
  cfg.mu = 1.0;
  EXPECT_THROW(solve_vm_migration_plan(apsp, flows, {}, cfg), PpdcError);
}

}  // namespace
}  // namespace ppdc
