// Cross-cutting property tests: invariants that must hold on randomized
// instances across topologies, seeds, and parameters. These are the
// paper's structural claims turned into executable checks.
#include <gtest/gtest.h>

#include "baselines/greedy_liu.hpp"
#include "baselines/steering.hpp"
#include "core/chain_search.hpp"
#include "core/migration_pareto.hpp"
#include "core/pareto_front.hpp"
#include "core/placement_dp.hpp"
#include "core/stroll_dp.hpp"
#include "topology/bcube.hpp"
#include "topology/dcell.hpp"
#include "topology/fat_tree.hpp"
#include "topology/leaf_spine.hpp"
#include "topology/misc.hpp"
#include "topology/vl2.hpp"
#include "topology/weights.hpp"
#include "workload/vm_placement.hpp"

namespace ppdc {
namespace {

/// Topology factory keyed by name so one parameterized suite covers all
/// fabric shapes — including the server-centric BCube/DCell, where
/// shortest paths run through hosts.
Topology make_topology(const std::string& kind, std::uint64_t seed) {
  if (kind == "fat4") return build_fat_tree(4);
  if (kind == "leafspine") return build_leaf_spine(5, 3, 3);
  if (kind == "ring") return build_ring(8);
  if (kind == "vl2") return build_vl2(3, 4, 6, 2);
  if (kind == "bcube") return build_bcube(4, 1);
  if (kind == "dcell") return build_dcell1(4);
  if (kind == "random") {
    return build_random_connected(10, 8, 8, 0.5, 3.0, seed);
  }
  throw PpdcError("unknown topology kind " + kind);
}

using PropertyParam = std::tuple<std::string, std::uint64_t>;

class PlacementProperties : public ::testing::TestWithParam<PropertyParam> {
 protected:
  void SetUp() override {
    const auto& [kind, seed] = GetParam();
    topo_ = make_topology(kind, seed);
    apsp_.emplace(topo_.graph);
    VmPlacementConfig cfg;
    cfg.num_pairs = 8;
    Rng rng(seed * 7 + 1);
    flows_ = generate_vm_flows(topo_, cfg, rng);
    model_.emplace(*apsp_, flows_);
  }

  Topology topo_;
  std::optional<AllPairs> apsp_;
  std::vector<VmFlow> flows_;
  std::optional<CostModel> model_;
};

TEST_P(PlacementProperties, DpNeverBeatsOptimalAndBaselinesNeverBeatDp) {
  // Ordering invariant: Optimal <= DP (allowing fp noise), and the
  // paper's Figs. 9/10 ordering DP <= Steering/Greedy holds on average —
  // here we only assert the side that is a hard invariant.
  for (int n = 2; n <= 4; ++n) {
    const double opt = solve_top_exhaustive(*model_, n).objective;
    const double dp = solve_top_dp(*model_, n).comm_cost;
    EXPECT_LE(opt, dp + 1e-9) << "n=" << n;
  }
}

TEST_P(PlacementProperties, AllPlacersReturnValidDistinctSwitchChains) {
  for (int n = 1; n <= 5; ++n) {
    for (const auto& r :
         {solve_top_dp(*model_, n), solve_top_steering(*model_, n),
          solve_top_greedy_liu(*model_, n)}) {
      EXPECT_NO_THROW(validate_placement(topo_.graph, r.placement));
      EXPECT_NEAR(model_->communication_cost(r.placement), r.comm_cost,
                  1e-9);
    }
  }
}

TEST_P(PlacementProperties, CommunicationCostMonotoneInRates) {
  // Scaling every rate up scales Eq. 1 linearly.
  const Placement p = solve_top_dp(*model_, 3).placement;
  const double base = model_->communication_cost(p);
  auto scaled = flows_;
  for (auto& f : scaled) f.rate *= 3.0;
  CostModel cm2(*apsp_, scaled);
  EXPECT_NEAR(cm2.communication_cost(p), 3.0 * base, 1e-6);
}

TEST_P(PlacementProperties, ParetoMigrationInvariants) {
  const Placement from = solve_top_dp(*model_, 3).placement;
  // Shuffle the rates to emulate a traffic change.
  auto changed = flows_;
  for (std::size_t i = 0; i + 1 < changed.size(); i += 2) {
    std::swap(changed[i].rate, changed[i + 1].rate);
  }
  CostModel cm2(*apsp_, changed);
  for (const double mu : {0.0, 1.0, 100.0}) {
    const MigrationResult r = solve_tom_pareto(cm2, from, mu);
    // (1) valid target, (2) decomposition, (3) no worse than staying.
    EXPECT_NO_THROW(validate_placement(topo_.graph, r.migration));
    EXPECT_NEAR(r.total_cost, r.migration_cost + r.comm_cost, 1e-9);
    EXPECT_LE(r.total_cost, cm2.communication_cost(from) + 1e-9);
    // (4) the frontier cloud's Pareto front is mutually non-dominated.
    EXPECT_TRUE(is_mutually_nondominated(pareto_front(r.frontier_points)));
  }
}

TEST_P(PlacementProperties, MigrationCostMonotoneInMu) {
  const Placement from = solve_top_dp(*model_, 3).placement;
  auto changed = flows_;
  std::reverse(changed.begin(), changed.end());
  CostModel cm2(*apsp_, changed);
  double prev_migration = 1e300;
  for (const double mu : {0.0, 0.5, 5.0, 500.0, 5e6}) {
    const MigrationResult r = solve_tom_pareto(cm2, from, mu);
    // Raising μ can only reduce how much raw distance the VNFs travel.
    const double distance = mu > 0 ? r.migration_cost / mu
                                   : cm2.migration_cost(from, r.migration, 1.0);
    EXPECT_LE(distance, prev_migration + 1e-9) << "mu=" << mu;
    prev_migration = distance;
  }
}

TEST_P(PlacementProperties, StrollPlacementsAgreeWithReportedCosts) {
  const NodeId s = flows_[0].src_host;
  const NodeId t = flows_[0].dst_host;
  for (int n = 1; n <= 4; ++n) {
    const StrollResult r = solve_top1_dp(*apsp_, s, t, n);
    // Shortcutting the walk through just the placement can only help.
    double placed = apsp_->cost(s, r.placement.front());
    for (std::size_t j = 0; j + 1 < r.placement.size(); ++j) {
      placed += apsp_->cost(r.placement[j], r.placement[j + 1]);
    }
    placed += apsp_->cost(r.placement.back(), t);
    EXPECT_LE(placed, r.cost + 1e-9) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlacementProperties,
    ::testing::Combine(::testing::Values("fat4", "leafspine", "ring", "vl2",
                                         "bcube", "dcell", "random"),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

TEST(WeightedProperties, WeightedTopologiesKeepInvariants) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Topology topo = build_fat_tree(4);
    apply_uniform_delay_weights(topo.graph, seed, 1.5, 0.5);
    const AllPairs apsp(topo.graph);
    VmPlacementConfig cfg;
    cfg.num_pairs = 8;
    Rng rng(seed);
    const auto flows = generate_vm_flows(topo, cfg, rng);
    CostModel cm(apsp, flows);
    const double opt = solve_top_exhaustive(cm, 3).objective;
    const double dp = solve_top_dp(cm, 3).comm_cost;
    const double steering = solve_top_steering(cm, 3).comm_cost;
    EXPECT_LE(opt, dp + 1e-9);
    // DP is not provably below Steering instance-by-instance, but on
    // weighted fat-trees it should never lose by more than a whisker.
    EXPECT_LE(dp, 1.05 * steering + 1e-9);
  }
}

}  // namespace
}  // namespace ppdc
