#include "graph/dot.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "topology/linear.hpp"

namespace ppdc {
namespace {

TEST(Dot, EmitsEveryNodeAndEdge) {
  const Topology topo = build_linear(3);
  std::ostringstream os;
  to_dot(os, topo);
  const std::string out = os.str();
  EXPECT_NE(out.find("graph \"linear-3\""), std::string::npos);
  for (NodeId v = 0; v < topo.graph.num_nodes(); ++v) {
    EXPECT_NE(out.find("n" + std::to_string(v) + " ["), std::string::npos);
    EXPECT_NE(out.find("\"" + topo.graph.label(v) + "\""),
              std::string::npos);
  }
  // 2 switch-switch + 2 host links.
  std::size_t edges = 0, pos = 0;
  while ((pos = out.find(" -- ", pos)) != std::string::npos) {
    ++edges;
    pos += 4;
  }
  EXPECT_EQ(edges, topo.graph.num_edges());
}

TEST(Dot, HighlightsPlacement) {
  const Topology topo = build_linear(3);
  DotOptions opts;
  opts.placement = {topo.graph.switches()[1]};
  std::ostringstream os;
  to_dot(os, topo, opts);
  EXPECT_NE(os.str().find("f1"), std::string::npos);
  EXPECT_NE(os.str().find("#ffd27f"), std::string::npos);
}

TEST(Dot, DrawsFlowsDashed) {
  const Topology topo = build_linear(3);
  DotOptions opts;
  opts.flows = {{topo.graph.hosts()[0], topo.graph.hosts()[1], 5.0, 0}};
  std::ostringstream os;
  to_dot(os, topo, opts);
  EXPECT_NE(os.str().find("style=dashed"), std::string::npos);
}

TEST(Dot, EdgeWeightLabelsOptional) {
  Topology topo = build_linear(3);
  topo.graph.set_edge_weight(topo.graph.switches()[0],
                             topo.graph.switches()[1], 2.5);
  DotOptions opts;
  opts.edge_weights = true;
  std::ostringstream os;
  to_dot(os, topo, opts);
  EXPECT_NE(os.str().find("2.5"), std::string::npos);
}

TEST(Dot, OutputIsWellFormed) {
  const Topology topo = build_linear(4);
  std::ostringstream os;
  to_dot(os, topo);
  const std::string out = os.str();
  EXPECT_EQ(out.front(), 'g');
  EXPECT_EQ(out.substr(out.size() - 2), "}\n");
}

}  // namespace
}  // namespace ppdc
