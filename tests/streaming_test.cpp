// StreamingWorkload contract (workload/streaming.hpp): epoch 0 is
// bit-identical to the one-shot generator, churn is a deterministic
// function of the seed, freed slots are re-used smallest-first, and the
// per-epoch churn lists are sorted, disjoint, and consistent with the
// slot-dense flow vector.
#include <gtest/gtest.h>

#include <algorithm>

#include "topology/fat_tree.hpp"
#include "util/require.hpp"
#include "workload/streaming.hpp"
#include "workload/vm_placement.hpp"

namespace ppdc {
namespace {

VmPlacementConfig small_config(int pairs) {
  VmPlacementConfig cfg;
  cfg.num_pairs = pairs;
  cfg.intra_rack_fraction = 0.8;
  return cfg;
}

StreamingChurnConfig busy_churn() {
  StreamingChurnConfig churn;
  churn.arrivals_per_epoch = 30;
  churn.departure_prob = 0.1;
  churn.rerate_prob = 0.25;
  return churn;
}

void expect_same_flows(const std::vector<VmFlow>& a,
                       const std::vector<VmFlow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src_host, b[i].src_host) << "flow " << i;
    EXPECT_EQ(a[i].dst_host, b[i].dst_host) << "flow " << i;
    EXPECT_EQ(a[i].rate, b[i].rate) << "flow " << i;
    EXPECT_EQ(a[i].group, b[i].group) << "flow " << i;
  }
}

TEST(StreamingWorkload, EpochZeroMatchesOneShotGenerator) {
  const Topology topo = build_fat_tree(4);
  const VmPlacementConfig cfg = small_config(200);

  Rng gen_rng(7);
  const std::vector<VmFlow> expected = generate_vm_flows(topo, cfg, gen_rng);

  const StreamingWorkload workload(topo, cfg, busy_churn(), Rng(7));
  expect_same_flows(workload.flows(), expected);
  EXPECT_EQ(workload.live_flows(), 200);
}

TEST(StreamingWorkload, SamplerMatchesGeneratorPerIndex) {
  const Topology topo = build_fat_tree(4);
  VmPlacementConfig cfg = small_config(64);
  cfg.spatial_coasts = false;  // exercise the index-alternating group path

  Rng gen_rng(11);
  const std::vector<VmFlow> expected = generate_vm_flows(topo, cfg, gen_rng);

  const VmFlowSampler sampler(topo, cfg);
  Rng sample_rng(11);
  for (int i = 0; i < 64; ++i) {
    const VmFlow f = sampler.sample(i, sample_rng);
    EXPECT_EQ(f.src_host, expected[static_cast<std::size_t>(i)].src_host);
    EXPECT_EQ(f.rate, expected[static_cast<std::size_t>(i)].rate);
    EXPECT_EQ(f.group, i % 2);
  }
}

TEST(StreamingWorkload, AdvanceIsDeterministic) {
  const Topology topo = build_fat_tree(4);
  const VmPlacementConfig cfg = small_config(150);

  StreamingWorkload a(topo, cfg, busy_churn(), Rng(42));
  StreamingWorkload b(topo, cfg, busy_churn(), Rng(42));
  for (int epoch = 0; epoch < 8; ++epoch) {
    const FlowChurn ca = a.advance();
    const FlowChurn cb = b.advance();
    EXPECT_EQ(ca.departed, cb.departed) << "epoch " << epoch;
    EXPECT_EQ(ca.arrived, cb.arrived) << "epoch " << epoch;
    EXPECT_EQ(ca.rerated, cb.rerated) << "epoch " << epoch;
    expect_same_flows(a.flows(), b.flows());
    EXPECT_EQ(a.live_flows(), b.live_flows());
  }
}

TEST(StreamingWorkload, ChurnListsSortedDisjointAndConsistent) {
  const Topology topo = build_fat_tree(4);
  StreamingWorkload workload(topo, small_config(120), busy_churn(), Rng(3));

  for (int epoch = 0; epoch < 10; ++epoch) {
    const FlowChurn churn = workload.advance();
    EXPECT_TRUE(std::is_sorted(churn.departed.begin(), churn.departed.end()));
    EXPECT_TRUE(std::is_sorted(churn.arrived.begin(), churn.arrived.end()));
    EXPECT_TRUE(std::is_sorted(churn.rerated.begin(), churn.rerated.end()));
    for (const FlowId id : churn.departed) {
      // A same-epoch depart+arrive slot is reported only as arrived.
      EXPECT_FALSE(std::binary_search(churn.arrived.begin(),
                                      churn.arrived.end(), id));
      EXPECT_EQ(workload.flows()[id.value()].rate, 0.0);
    }
    for (const FlowId id : churn.arrived) {
      EXPECT_GT(workload.flows()[id.value()].rate, 0.0);
    }
    // live_flows() tracks exactly the slots carrying traffic.
    int live = 0;
    for (const VmFlow& f : workload.flows()) {
      if (f.rate > 0.0) ++live;
    }
    EXPECT_EQ(workload.live_flows(), live);
  }
}

TEST(StreamingWorkload, FreedSlotsReusedSmallestFirst) {
  const Topology topo = build_fat_tree(4);
  // Everything departs each epoch, fewer arrivals than departures: the
  // arrivals must land in the smallest vacated slots, never extend the
  // vector.
  StreamingChurnConfig churn;
  churn.arrivals_per_epoch = 5;
  churn.departure_prob = 1.0;
  StreamingWorkload workload(topo, small_config(40), churn, Rng(9));

  const FlowChurn first = workload.advance();
  ASSERT_EQ(static_cast<int>(first.arrived.size()), 5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(first.arrived[static_cast<std::size_t>(i)], FlowId{i});
  }
  EXPECT_EQ(workload.flows().size(), 40u);
  EXPECT_EQ(workload.live_flows(), 5);

  // With no free slots left, arrivals extend the vector densely.
  StreamingChurnConfig grow;
  grow.arrivals_per_epoch = 3;
  StreamingWorkload growing(topo, small_config(10), grow, Rng(9));
  const FlowChurn grown = growing.advance();
  ASSERT_EQ(static_cast<int>(grown.arrived.size()), 3);
  EXPECT_EQ(grown.arrived[0], FlowId{10});
  EXPECT_EQ(grown.arrived[2], FlowId{12});
  EXPECT_EQ(growing.flows().size(), 13u);
}

TEST(StreamingWorkload, RejectsInvalidChurnConfig) {
  const Topology topo = build_fat_tree(4);
  StreamingChurnConfig churn;
  churn.departure_prob = 1.5;
  EXPECT_THROW(StreamingWorkload(topo, small_config(10), churn, Rng(1)),
               PpdcError);
  churn.departure_prob = 0.0;
  churn.arrivals_per_epoch = -1;
  EXPECT_THROW(StreamingWorkload(topo, small_config(10), churn, Rng(1)),
               PpdcError);
  churn.arrivals_per_epoch = 0;
  churn.rerate_prob = -0.1;
  EXPECT_THROW(StreamingWorkload(topo, small_config(10), churn, Rng(1)),
               PpdcError);
}

}  // namespace
}  // namespace ppdc
