// Equivalence suite for the incremental group-scaled cost-model refresh:
// refresh_scaled()/endpoints_moved() must match a from-scratch rebuild to
// 1e-9 (relative) across diurnal schedules, grouped offsets, degenerate
// Λ = 0 rates, and after PLAN/MCF endpoint moves — plus a property test
// over random topologies and seeds, and an engine-level check that the
// grouped fast path reproduces the full-rescan trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "baselines/vm_migration.hpp"
#include "core/placement_dp.hpp"
#include "sim/engine.hpp"
#include "topology/fat_tree.hpp"
#include "topology/linear.hpp"
#include "topology/misc.hpp"
#include "workload/diurnal.hpp"
#include "workload/vm_placement.hpp"

namespace ppdc {
namespace {

double rel_tol(double a, double b) {
  return 1e-9 * std::max({1.0, std::abs(a), std::abs(b)});
}

/// Asserts that `inc` (incrementally maintained) agrees with a cost model
/// rebuilt from scratch over the same flow vector.
void expect_matches_rebuild(const AllPairs& apsp,
                            const std::vector<VmFlow>& flows,
                            const CostModel& inc) {
  const CostModel ref(apsp, flows);
  ASSERT_NEAR(inc.total_rate(), ref.total_rate(),
              rel_tol(inc.total_rate(), ref.total_rate()));
  for (const NodeId sw : apsp.graph().switches()) {
    const double ai = inc.ingress_attraction(sw);
    const double ar = ref.ingress_attraction(sw);
    ASSERT_NEAR(ai, ar, rel_tol(ai, ar)) << "ingress at switch " << sw;
    const double bi = inc.egress_attraction(sw);
    const double br = ref.egress_attraction(sw);
    ASSERT_NEAR(bi, br, rel_tol(bi, br)) << "egress at switch " << sw;
  }
  ASSERT_NEAR(inc.min_ingress_attraction(), ref.min_ingress_attraction(),
              rel_tol(inc.min_ingress_attraction(),
                      ref.min_ingress_attraction()));
  ASSERT_NEAR(inc.min_egress_attraction(), ref.min_egress_attraction(),
              rel_tol(inc.min_egress_attraction(),
                      ref.min_egress_attraction()));
}

std::vector<VmFlow> spatial_workload(const Topology& topo, int l,
                                     std::uint64_t seed,
                                     double zipf = 2.0) {
  VmPlacementConfig cfg;
  cfg.num_pairs = l;
  cfg.rack_zipf_s = zipf;
  Rng rng(seed);
  return generate_vm_flows(topo, cfg, rng);
}

TEST(IncrementalRefresh, MatchesFullRebuildAcrossDiurnalSchedule) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  std::vector<VmFlow> flows = spatial_workload(topo, 40, 3);
  const std::vector<double> base = rates_of(flows);
  const std::vector<int> groups = groups_of(flows);
  const int n_groups = num_groups(groups);

  CostModel inc(apsp, flows);
  inc.enable_group_refresh(base, groups);
  const DiurnalModel diurnal;
  for (const Hour hour : id_range(Hour{0}, Hour{25})) {
    set_rates(flows, diurnal_rates_grouped(diurnal, base, groups, hour));
    inc.refresh_scaled(diurnal.group_scales(hour, n_groups));
    expect_matches_rebuild(apsp, flows, inc);
  }
}

TEST(IncrementalRefresh, GroupedOffsetsBeyondTwoCoasts) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  std::vector<VmFlow> flows = spatial_workload(topo, 30, 5);
  // Spread the flows over five lagged groups instead of two coasts.
  for (std::size_t i = 0; i < flows.size(); ++i) {
    flows[i].group = static_cast<int>(i % 5);
  }
  const std::vector<double> base = rates_of(flows);
  const std::vector<int> groups = groups_of(flows);

  CostModel inc(apsp, flows);
  inc.enable_group_refresh(base, groups);
  DiurnalModel diurnal;
  diurnal.coast_offset = 2;
  for (const Hour hour : id_range(Hour{0}, Hour{12})) {
    set_rates(flows, diurnal_rates_grouped(diurnal, base, groups, hour));
    inc.refresh_scaled(diurnal.group_scales(hour, num_groups(groups)));
    expect_matches_rebuild(apsp, flows, inc);
  }
}

TEST(IncrementalRefresh, DegenerateZeroRates) {
  const Topology topo = build_linear(5);
  const AllPairs apsp(topo.graph);
  const NodeId h1 = topo.graph.hosts()[0];
  const NodeId h2 = topo.graph.hosts()[1];
  std::vector<VmFlow> flows{{h1, h2, 0.0, 0}, {h2, h1, 0.0, 1}};
  CostModel inc(apsp, flows);
  inc.enable_group_refresh({0.0, 0.0}, {0, 1});
  inc.refresh_scaled({1.0, 0.5});
  expect_matches_rebuild(apsp, flows, inc);
  EXPECT_DOUBLE_EQ(inc.total_rate(), 0.0);

  // Non-zero base rates, all-zero scales: Λ must collapse to 0 too.
  std::vector<VmFlow> live{{h1, h2, 7.0, 0}, {h2, h1, 3.0, 0}};
  CostModel inc2(apsp, live);
  inc2.enable_group_refresh({7.0, 3.0}, {0, 0});
  inc2.refresh_scaled({0.0});
  set_rates(live, {0.0, 0.0});
  expect_matches_rebuild(apsp, live, inc2);
  EXPECT_DOUBLE_EQ(inc2.total_rate(), 0.0);
}

TEST(IncrementalRefresh, EndpointMovesFromPlanAndMcf) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  for (const bool use_mcf : {false, true}) {
    std::vector<VmFlow> flows = spatial_workload(topo, 25, 11, 2.5);
    const std::vector<double> base = rates_of(flows);
    const std::vector<int> groups = groups_of(flows);

    CostModel inc(apsp, flows);
    inc.enable_group_refresh(base, groups);
    const DiurnalModel diurnal;
    set_rates(flows, diurnal_rates_grouped(diurnal, base, groups, Hour{4}));
    inc.refresh_scaled(diurnal.group_scales(Hour{4}, num_groups(groups)));
    const Placement p = solve_top_dp(inc, 3).placement;

    VmMigrationConfig cfg;
    cfg.mu = 0.1;  // cheap moves so endpoints definitely change
    const VmMigrationResult r =
        use_mcf ? solve_vm_migration_mcf(apsp, flows, p, cfg)
                : solve_vm_migration_plan(apsp, flows, p, cfg);
    ASSERT_GT(r.vms_moved, 0) << (use_mcf ? "MCF" : "PLAN");
    flows = r.flows;
    inc.endpoints_moved(r.moved_flow_indices);
    expect_matches_rebuild(apsp, flows, inc);
  }
}

TEST(IncrementalRefresh, LargeDirtySetTriggersRebuildFallback) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  std::vector<VmFlow> flows = spatial_workload(topo, 20, 13);
  const std::vector<double> base = rates_of(flows);
  const std::vector<int> groups = groups_of(flows);

  CostModel inc(apsp, flows);
  inc.enable_group_refresh(base, groups);
  inc.refresh_scaled(DiurnalModel{}.group_scales(Hour{6}, num_groups(groups)));
  set_rates(flows,
            diurnal_rates_grouped(DiurnalModel{}, base, groups, Hour{6}));

  // Move every flow to a fresh host: the dirty set covers the whole
  // population, exercising the full-rebuild fallback.
  const auto& hosts = topo.graph.hosts();
  std::vector<FlowId> moved;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    flows[i].src_host = hosts[(i * 3) % hosts.size()];
    flows[i].dst_host = hosts[(i * 5 + 1) % hosts.size()];
    moved.push_back(FlowId{static_cast<int>(i)});
  }
  inc.endpoints_moved(moved);
  expect_matches_rebuild(apsp, flows, inc);
}

TEST(IncrementalRefresh, PropertyRandomTopologiesScalesAndMoves) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 977);
    const int shape = static_cast<int>(rng.uniform_int(0, 2));
    const Topology topo =
        shape == 0   ? build_fat_tree(4)
        : shape == 1 ? build_linear(6)
                     : build_random_connected(10, 8, 14, 0.5, 3.0,
                                              seed * 31 + 7);
    const AllPairs apsp(topo.graph);
    const auto& hosts = topo.graph.hosts();

    const int l = static_cast<int>(rng.uniform_int(1, 30));
    const int n_groups = static_cast<int>(rng.uniform_int(1, 4));
    std::vector<VmFlow> flows;
    for (int i = 0; i < l; ++i) {
      VmFlow f;
      f.src_host = hosts[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(hosts.size()) - 1))];
      f.dst_host = hosts[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(hosts.size()) - 1))];
      f.rate = rng.uniform_real(0.0, 10000.0);
      f.group = static_cast<int>(rng.uniform_int(0, n_groups - 1));
      flows.push_back(f);
    }
    const std::vector<double> base = rates_of(flows);
    const std::vector<int> groups = groups_of(flows);

    CostModel inc(apsp, flows);
    inc.enable_group_refresh(base, groups);
    for (int step = 0; step < 10; ++step) {
      std::vector<double> scales;
      for (int g = 0; g < n_groups; ++g) {
        scales.push_back(rng.uniform_real(0.0, 2.0));
      }
      for (int i = 0; i < l; ++i) {
        flows[static_cast<std::size_t>(i)].rate =
            base[static_cast<std::size_t>(i)] *
            scales[static_cast<std::size_t>(
                groups[static_cast<std::size_t>(i)])];
      }
      inc.refresh_scaled(scales);
      expect_matches_rebuild(apsp, flows, inc);

      // Occasionally relocate a random subset of endpoints.
      if (rng.uniform_int(0, 1) == 0) {
        std::vector<FlowId> moved;
        const int k = static_cast<int>(rng.uniform_int(1, l));
        for (int j = 0; j < k; ++j) {
          const int i = static_cast<int>(rng.uniform_int(0, l - 1));
          auto& f = flows[static_cast<std::size_t>(i)];
          f.src_host = hosts[static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<int>(hosts.size()) - 1))];
          f.dst_host = hosts[static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<int>(hosts.size()) - 1))];
          moved.push_back(FlowId{i});
        }
        inc.endpoints_moved(moved);
        expect_matches_rebuild(apsp, flows, inc);
      }
    }
  }
}

TEST(IncrementalRefresh, EngineGroupedPathMatchesFullRescanTrace) {
  // The diurnal fast path must reproduce the trace of an engine run whose
  // custom rate_schedule emits the *same* rates but forces the full
  // per-flow rescan on every epoch.
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = spatial_workload(topo, 15, 9, 2.5);
  const std::vector<double> base = rates_of(flows);
  const std::vector<int> groups = groups_of(flows);

  SimConfig grouped_cfg;
  SimConfig rescan_cfg;
  rescan_cfg.rate_schedule = [&](Hour hour) {
    return diurnal_rates_grouped(grouped_cfg.diurnal, base, groups, hour);
  };

  struct Case {
    const char* name;
    std::unique_ptr<MigrationPolicy> a, b;
  };
  VmMigrationConfig vm_cfg;
  vm_cfg.mu = 0.1;
  Case cases[] = {
      {"NoMigration", std::make_unique<NoMigrationPolicy>(),
       std::make_unique<NoMigrationPolicy>()},
      {"mPareto", std::make_unique<ParetoMigrationPolicy>(10.0),
       std::make_unique<ParetoMigrationPolicy>(10.0)},
      {"PLAN", std::make_unique<PlanPolicy>(vm_cfg),
       std::make_unique<PlanPolicy>(vm_cfg)},
      {"MCF", std::make_unique<McfPolicy>(vm_cfg),
       std::make_unique<McfPolicy>(vm_cfg)},
  };
  for (auto& c : cases) {
    const SimTrace fast = run_simulation(apsp, flows, 3, grouped_cfg, *c.a);
    const SimTrace full = run_simulation(apsp, flows, 3, rescan_cfg, *c.b);
    ASSERT_EQ(fast.epochs.size(), full.epochs.size()) << c.name;
    for (std::size_t h = 0; h < fast.epochs.size(); ++h) {
      EXPECT_NEAR(fast.epochs[h].comm_cost, full.epochs[h].comm_cost,
                  rel_tol(fast.epochs[h].comm_cost, full.epochs[h].comm_cost))
          << c.name << " hour " << h;
      EXPECT_NEAR(fast.epochs[h].migration_cost, full.epochs[h].migration_cost,
                  rel_tol(fast.epochs[h].migration_cost,
                          full.epochs[h].migration_cost))
          << c.name << " hour " << h;
    }
    EXPECT_NEAR(fast.total_cost, full.total_cost,
                rel_tol(fast.total_cost, full.total_cost))
        << c.name;
    EXPECT_EQ(fast.total_vnf_migrations, full.total_vnf_migrations) << c.name;
    EXPECT_EQ(fast.total_vm_migrations, full.total_vm_migrations) << c.name;
  }
}

TEST(IncrementalRefresh, SparseGroupIdsCompactAndMatchRebuild) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  std::vector<VmFlow> flows = spatial_workload(topo, 60, 17);
  // Sparse, non-contiguous group ids: rows are compacted per distinct id
  // while scale vectors keep indexing by raw id (num_groups = 10).
  const int sparse_ids[3] = {1, 4, 9};
  std::vector<double> bases(flows.size());
  std::vector<int> groups(flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    bases[i] = flows[i].rate;
    groups[i] = sparse_ids[i % 3];
    flows[i].group = groups[i];
  }
  CostModel cm(apsp, flows);
  cm.enable_group_refresh(bases, groups);

  std::vector<double> scales(10, 1.0);
  scales[1] = 0.25;
  scales[4] = 2.0;
  scales[9] = 0.0;
  cm.refresh_scaled(scales);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    flows[i].rate = bases[i] * scales[static_cast<std::size_t>(groups[i])];
  }
  expect_matches_rebuild(apsp, flows, cm);
}

TEST(IncrementalRefresh, MinGroupsWidensScaleDomain) {
  const Topology topo = build_linear(4);
  const AllPairs apsp(topo.graph);
  const NodeId h0 = topo.graph.hosts()[0];
  const NodeId h1 = topo.graph.hosts()[1];
  std::vector<VmFlow> flows{{h0, h1, 2.0, 0}, {h1, h0, 3.0, 0}};
  CostModel cm(apsp, flows);
  // The local subset only mentions group 0, but the caller's global
  // domain has 4 groups (sharded views): scale vectors must be length 4.
  cm.enable_group_refresh({2.0, 3.0}, {0, 0}, 4);
  EXPECT_THROW(cm.refresh_scaled({1.0}), PpdcError);
  cm.refresh_scaled({0.5, 1.0, 1.0, 1.0});
  flows[0].rate = 1.0;
  flows[1].rate = 1.5;
  expect_matches_rebuild(apsp, flows, cm);
}

TEST(IncrementalRefresh, RebaseFlowPatchesBaseVectors) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  std::vector<VmFlow> flows = spatial_workload(topo, 40, 23);
  std::vector<double> bases(flows.size());
  std::vector<int> groups(flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    bases[i] = flows[i].rate;
    groups[i] = flows[i].group;
  }
  CostModel cm(apsp, flows);
  cm.enable_group_refresh(bases, groups);

  // Departure: slot 3's base drops to 0 in place.
  flows[3].rate = 0.0;
  cm.rebase_flow(FlowId{3}, 0.0, groups[3]);
  // Re-rate: slot 5 keeps endpoints and group, new base.
  flows[5].rate = 2.5;
  cm.rebase_flow(FlowId{5}, 2.5, groups[5]);
  // Re-spawn: slot 3 is re-used by a fresh flow — new endpoints, new
  // group, new base.
  flows[3].src_host = topo.graph.hosts()[0];
  flows[3].dst_host = topo.graph.hosts().back();
  flows[3].group = 1 - groups[3];
  flows[3].rate = 1.7;
  cm.rebase_flow(FlowId{3}, 1.7, flows[3].group);

  // Batched-churn contract: recombine once, then query.
  cm.refresh_scaled({1.0, 1.0});
  expect_matches_rebuild(apsp, flows, cm);
}

TEST(IncrementalRefresh, FlowsAppendedExtendsModel) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  std::vector<VmFlow> flows = spatial_workload(topo, 30, 31);
  std::vector<double> bases(flows.size());
  std::vector<int> groups(flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    bases[i] = flows[i].rate;
    groups[i] = flows[i].group;
  }
  CostModel cm(apsp, flows);
  cm.enable_group_refresh(bases, groups);

  const auto& hosts = topo.graph.hosts();
  std::vector<double> new_bases{1.25, 0.75, 3.5};
  std::vector<int> new_groups{1, 0, 1};
  for (std::size_t j = 0; j < new_bases.size(); ++j) {
    VmFlow f;
    f.src_host = hosts[j];
    f.dst_host = hosts[hosts.size() - 1 - j];
    f.rate = new_bases[j];
    f.group = new_groups[j];
    flows.push_back(f);
  }
  cm.flows_appended(new_bases, new_groups);
  cm.refresh_scaled({1.0, 1.0});
  expect_matches_rebuild(apsp, flows, cm);

  // Size mismatch between the grown vector and the registration fails.
  flows.push_back(flows.back());
  EXPECT_THROW(cm.flows_appended({1.0, 1.0}, {0, 0}), PpdcError);
}

TEST(IncrementalRefresh, RebaseRejectsBadIdsByName) {
  const Topology topo = build_linear(3);
  const AllPairs apsp(topo.graph);
  const NodeId h1 = topo.graph.hosts()[0];
  std::vector<VmFlow> flows{{h1, h1, 1.0, 0}};
  CostModel cm(apsp, flows);
  cm.enable_group_refresh({1.0}, {0});
  EXPECT_THROW(cm.rebase_flow(FlowId{7}, 1.0, 0), PpdcError);
  EXPECT_THROW(cm.rebase_flow(FlowId{0}, -1.0, 0), PpdcError);
  EXPECT_THROW(cm.rebase_flow(FlowId{0}, 1.0, -2), PpdcError);
}

TEST(IncrementalRefresh, RejectsBadInput) {
  const Topology topo = build_linear(3);
  const AllPairs apsp(topo.graph);
  const NodeId h1 = topo.graph.hosts()[0];
  std::vector<VmFlow> flows{{h1, h1, 1.0, 0}};
  CostModel cm(apsp, flows);
  EXPECT_THROW(cm.refresh_scaled({1.0}), PpdcError);  // not enabled
  EXPECT_THROW(cm.enable_group_refresh({1.0, 2.0}, {0, 0}), PpdcError);
  EXPECT_THROW(cm.enable_group_refresh({1.0}, {-1}), PpdcError);
  EXPECT_THROW(cm.enable_group_refresh({-1.0}, {0}), PpdcError);
  cm.enable_group_refresh({1.0}, {0});
  EXPECT_THROW(cm.refresh_scaled({1.0, 2.0}), PpdcError);  // wrong arity
  EXPECT_THROW(cm.refresh_scaled({-0.5}), PpdcError);
  cm.refresh_scaled({0.5});
  EXPECT_THROW(cm.endpoints_moved({FlowId{7}}), PpdcError);  // index out of range
}

}  // namespace
}  // namespace ppdc
