// Integration of the diurnal model with the simulation engine: spatial
// coast groups must drive per-flow rate scaling inside run_simulation.
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "topology/fat_tree.hpp"

namespace ppdc {
namespace {

/// Policy that records the observed total rate each epoch.
class RateProbe final : public MigrationPolicy {
 public:
  std::string name() const override { return "probe"; }
  std::unique_ptr<MigrationPolicy> clone() const override {
    return std::make_unique<RateProbe>(*this);
  }
  EpochDecision on_epoch(const CostModel& model, SimState& state) override {
    rates.push_back(model.total_rate());
    EpochDecision d;
    d.comm_cost = model.communication_cost(state.placement);
    return d;
  }
  std::vector<double> rates;
};

TEST(DiurnalEngine, EastFlowPeaksAtNoonWestThreeHoursLater) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  // One pure east flow (group 0) and one pure west flow (group 1) with
  // equal base rates.
  std::vector<VmFlow> flows{{topo.racks[RackIdx{0}][0], topo.racks[RackIdx{0}][1], 100.0, 0},
                            {topo.racks[RackIdx{7}][0], topo.racks[RackIdx{7}][1], 100.0, 1}};
  RateProbe probe;
  SimConfig cfg;
  const SimTrace t = run_simulation(apsp, flows, 2, cfg, probe);
  ASSERT_EQ(probe.rates.size(), 11u);  // hours 1..11 (hour 0 is placement)
  // Probe sees hours 1..11; total rate = east(h) + west(h). The fleet
  // total peaks between the two coast peaks (hours 6-9) where both
  // scales overlap at their maximum sum.
  const DiurnalModel model;
  for (std::size_t i = 0; i < probe.rates.size(); ++i) {
    const Hour hour{static_cast<int>(i) + 1};
    const double expected = 100.0 * model.scale_for_group(hour, 0) +
                            100.0 * model.scale_for_group(hour, 1);
    EXPECT_NEAR(probe.rates[i], expected, 1e-9) << "hour " << hour;
  }
}

TEST(DiurnalEngine, GroupsComeFromFlowsNotFromIndexParity) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  // Both flows in group 1: identical scaling regardless of index.
  std::vector<VmFlow> flows{{topo.racks[RackIdx{0}][0], topo.racks[RackIdx{0}][1], 50.0, 1},
                            {topo.racks[RackIdx{1}][0], topo.racks[RackIdx{1}][1], 50.0, 1}};
  RateProbe probe;
  SimConfig cfg;
  run_simulation(apsp, flows, 2, cfg, probe);
  const DiurnalModel model;
  for (std::size_t i = 0; i < probe.rates.size(); ++i) {
    const Hour hour{static_cast<int>(i) + 1};
    EXPECT_NEAR(probe.rates[i], 100.0 * model.scale_for_group(hour, 1),
                1e-9);
  }
}

}  // namespace
}  // namespace ppdc
