#include "core/chain_search.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "topology/fat_tree.hpp"
#include "topology/linear.hpp"
#include "topology/misc.hpp"
#include "workload/vm_placement.hpp"

namespace ppdc {
namespace {

std::vector<VmFlow> random_flows(const Topology& topo, int l,
                                 std::uint64_t seed) {
  VmPlacementConfig cfg;
  cfg.num_pairs = l;
  Rng rng(seed);
  return generate_vm_flows(topo, cfg, rng);
}

TEST(ChainSearch, MatchesBruteForceTopOnSmallInstances) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Topology topo = build_random_connected(7, 6, 5, 0.5, 3.0, seed);
    const AllPairs apsp(topo.graph);
    const auto flows = random_flows(topo, 4, seed + 100);
    CostModel cm(apsp, flows);
    for (int n = 1; n <= 4; ++n) {
      const ChainSearchResult r = solve_top_exhaustive(cm, n);
      EXPECT_TRUE(r.proven_optimal);
      const double opt = testing::brute_force_top_cost(cm, n);
      EXPECT_NEAR(r.objective, opt, 1e-9) << "seed=" << seed << " n=" << n;
      EXPECT_NEAR(cm.communication_cost(r.placement), r.objective, 1e-9);
    }
  }
}

TEST(ChainSearch, MatchesBruteForceTomOnSmallInstances) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Topology topo = build_random_connected(6, 4, 6, 0.5, 2.0, seed);
    const AllPairs apsp(topo.graph);
    const auto flows = random_flows(topo, 3, seed + 7);
    CostModel cm(apsp, flows);
    const auto& sw = topo.graph.switches();
    const Placement from{sw[0], sw[1], sw[2]};
    for (const double mu : {0.0, 1.0, 50.0}) {
      const ChainSearchResult r = solve_tom_exhaustive(cm, from, mu);
      EXPECT_TRUE(r.proven_optimal);
      const double opt = testing::brute_force_tom_cost(cm, from, mu);
      EXPECT_NEAR(r.objective, opt, 1e-9) << "seed=" << seed << " mu=" << mu;
      EXPECT_NEAR(cm.total_cost(from, r.placement, mu), r.objective, 1e-9);
    }
  }
}

TEST(ChainSearch, Theorem4TomWithZeroMuEqualsTop) {
  // TOP is the special case of TOM with μ = 0 (Theorem 4).
  const Topology topo = build_random_connected(8, 5, 6, 1.0, 2.0, 9);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 4, 2);
  CostModel cm(apsp, flows);
  const auto& sw = topo.graph.switches();
  const Placement from{sw[0], sw[3], sw[5]};
  const ChainSearchResult top = solve_top_exhaustive(cm, 3);
  const ChainSearchResult tom = solve_tom_exhaustive(cm, from, 0.0);
  EXPECT_NEAR(top.objective, tom.objective, 1e-9);
}

TEST(ChainSearch, HugeMuKeepsPlacementInPlace) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 5, 3);
  CostModel cm(apsp, flows);
  const auto& sw = topo.graph.switches();
  const Placement from{sw[2], sw[9], sw[14]};
  const ChainSearchResult r = solve_tom_exhaustive(cm, from, 1e12);
  EXPECT_EQ(r.placement, from);
}

TEST(ChainSearch, Fig3ExampleOptimalIs410) {
  const Topology topo = build_linear(5);
  const AllPairs apsp(topo.graph);
  const NodeId h1 = topo.graph.hosts()[0];
  const NodeId h2 = topo.graph.hosts()[1];
  const std::vector<VmFlow> flows{{h1, h1, 100.0}, {h2, h2, 1.0}};
  CostModel cm(apsp, flows);
  const ChainSearchResult r = solve_top_exhaustive(cm, 2);
  EXPECT_DOUBLE_EQ(r.objective, 410.0);
  const auto& sw = topo.graph.switches();
  EXPECT_EQ(r.placement, (Placement{sw[0], sw[1]}));
}

TEST(ChainSearch, SingleFlowAllUnitHopsAchievesLowerBound) {
  // Example 3 shape: optimal 7-VNF chain between different pods of a k=4
  // fat-tree costs exactly 8 (every leg one hop).
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const std::vector<VmFlow> flows{{topo.racks[RackIdx{1}][1], topo.racks[RackIdx{2}][0], 1.0}};
  CostModel cm(apsp, flows);
  const ChainSearchResult r = solve_top_exhaustive(cm, 7);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_DOUBLE_EQ(r.objective, 8.0);
}

TEST(ChainSearch, WarmStartNeverHurts) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 8, 17);
  CostModel cm(apsp, flows);
  const ChainSearchResult cold = solve_top_exhaustive(cm, 3);
  ChainSearchConfig cfg;
  cfg.initial = cold.placement;
  const ChainSearchResult warm = solve_top_exhaustive(cm, 3, cfg);
  EXPECT_NEAR(cold.objective, warm.objective, 1e-9);
  EXPECT_LE(warm.nodes_explored, cold.nodes_explored);
}

TEST(ChainSearch, NodeBudgetTruncatesButStillReturns) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 8, 23);
  CostModel cm(apsp, flows);
  ChainSearchConfig cfg;
  cfg.node_budget = 10;
  cfg.initial = Placement{topo.graph.switches()[0],
                          topo.graph.switches()[1],
                          topo.graph.switches()[2]};
  const ChainSearchResult r = solve_top_exhaustive(cm, 3, cfg);
  EXPECT_FALSE(r.proven_optimal);
  EXPECT_EQ(r.placement.size(), 3u);
  // Budget-limited search can never be worse than its warm start.
  EXPECT_LE(r.objective, cm.communication_cost(*cfg.initial) + 1e-9);
}

TEST(ChainSearch, RejectsBadShapes) {
  const Topology topo = build_linear(3);
  const AllPairs apsp(topo.graph);
  const NodeId h1 = topo.graph.hosts()[0];
  const std::vector<VmFlow> flows{{h1, h1, 1.0}};
  CostModel cm(apsp, flows);
  EXPECT_THROW(solve_top_exhaustive(cm, 0), PpdcError);
  EXPECT_THROW(solve_top_exhaustive(cm, 4), PpdcError);
  const auto& sw = topo.graph.switches();
  EXPECT_THROW(solve_tom_exhaustive(cm, {sw[0]}, -1.0), PpdcError);
}

TEST(ChainSearch, PlacementIsAlwaysValid) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto flows = random_flows(topo, 6, 31);
  CostModel cm(apsp, flows);
  for (int n = 1; n <= 6; ++n) {
    const ChainSearchResult r = solve_top_exhaustive(cm, n);
    EXPECT_NO_THROW(validate_placement(topo.graph, r.placement));
    EXPECT_EQ(r.placement.size(), static_cast<std::size_t>(n));
  }
}

}  // namespace
}  // namespace ppdc
