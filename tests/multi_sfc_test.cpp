#include "core/multi_sfc.hpp"

#include <gtest/gtest.h>

#include "core/chain_search.hpp"
#include "topology/fat_tree.hpp"
#include "topology/linear.hpp"
#include "topology/misc.hpp"
#include "workload/vm_placement.hpp"

namespace ppdc {
namespace {

std::vector<RangedFlow> ranged_workload(const Topology& topo, int l, int n,
                                        std::uint64_t seed) {
  VmPlacementConfig cfg;
  cfg.num_pairs = l;
  Rng rng(seed);
  std::vector<RangedFlow> out;
  for (const auto& f : generate_vm_flows(topo, cfg, rng)) {
    RangedFlow rf;
    rf.flow = f;
    rf.first = static_cast<int>(rng.uniform_int(0, n - 1));
    rf.last = static_cast<int>(rng.uniform_int(rf.first, n - 1));
    out.push_back(rf);
  }
  return out;
}

TEST(MultiSfc, FullRangeFlowsReproduceEq1) {
  // When every flow requests the whole catalogue, the generalized cost
  // must equal the plain Eq. 1 CostModel.
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  VmPlacementConfig cfg;
  cfg.num_pairs = 8;
  Rng rng(1);
  const auto flows = generate_vm_flows(topo, cfg, rng);
  std::vector<RangedFlow> ranged;
  for (const auto& f : flows) ranged.push_back({f, 0, 3});
  const MultiSfcCostModel msm(apsp, ranged, 4);
  CostModel cm(apsp, flows);
  const auto& s = topo.graph.switches();
  const Placement p{s[0], s[5], s[10], s[15]};
  EXPECT_NEAR(msm.communication_cost(p), cm.communication_cost(p), 1e-9);
}

TEST(MultiSfc, LegLoadsCountOnlyCoveringFlows) {
  const Topology topo = build_linear(5);
  const AllPairs apsp(topo.graph);
  const NodeId h1 = topo.graph.hosts()[0];
  const NodeId h2 = topo.graph.hosts()[1];
  std::vector<RangedFlow> ranged{{{h1, h2, 5.0, 0}, 0, 2},
                                 {{h2, h1, 3.0, 0}, 1, 2},
                                 {{h1, h1, 2.0, 0}, 0, 0}};
  const MultiSfcCostModel msm(apsp, ranged, 3);
  EXPECT_DOUBLE_EQ(msm.leg_load(0), 5.0);        // only the first flow
  EXPECT_DOUBLE_EQ(msm.leg_load(1), 8.0);        // first two flows
}

TEST(MultiSfc, EntryExitAttractionsAnchorAtRangeEnds) {
  const Topology topo = build_linear(5);
  const AllPairs apsp(topo.graph);
  const NodeId h1 = topo.graph.hosts()[0];
  std::vector<RangedFlow> ranged{{{h1, h1, 4.0, 0}, 1, 2}};
  const MultiSfcCostModel msm(apsp, ranged, 3);
  const auto& s = topo.graph.switches();
  EXPECT_DOUBLE_EQ(msm.entry_attraction(0, s[0]), 0.0);
  EXPECT_DOUBLE_EQ(msm.entry_attraction(1, s[0]), 4.0 * 1.0);
  EXPECT_DOUBLE_EQ(msm.exit_attraction(2, s[1]), 4.0 * 2.0);
  EXPECT_DOUBLE_EQ(msm.exit_attraction(0, s[1]), 0.0);
}

TEST(MultiSfc, RelaxedSolverProducesValidDistinctPlacement) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto ranged = ranged_workload(topo, 10, 5, seed);
    const MultiSfcCostModel msm(apsp, ranged, 5);
    const MultiSfcResult r = solve_multi_sfc_relaxed(msm);
    EXPECT_NO_THROW(validate_placement(topo.graph, r.placement));
    EXPECT_NEAR(msm.communication_cost(r.placement), r.comm_cost, 1e-9);
  }
}

TEST(MultiSfc, ExhaustiveMatchesRelaxedLowerBoundOrdering) {
  // relaxed-without-repair <= exact <= relaxed-with-repair.
  const Topology topo = build_random_connected(8, 6, 6, 0.5, 2.0, 3);
  const AllPairs apsp(topo.graph);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto ranged = ranged_workload(topo, 6, 3, seed);
    const MultiSfcCostModel msm(apsp, ranged, 3);
    const MultiSfcResult relaxed = solve_multi_sfc_relaxed(msm);
    const MultiSfcResult exact = solve_multi_sfc_exhaustive(msm);
    ASSERT_TRUE(exact.proven_optimal);
    EXPECT_LE(exact.comm_cost, relaxed.comm_cost + 1e-9) << "seed=" << seed;
  }
}

TEST(MultiSfc, ExhaustiveMatchesChainSearchOnFullRanges) {
  // With all-full ranges the generalized exhaustive solver and the plain
  // Algorithm 4 branch-and-bound must agree exactly.
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  VmPlacementConfig cfg;
  cfg.num_pairs = 6;
  Rng rng(9);
  const auto flows = generate_vm_flows(topo, cfg, rng);
  std::vector<RangedFlow> ranged;
  for (const auto& f : flows) ranged.push_back({f, 0, 2});
  const MultiSfcCostModel msm(apsp, ranged, 3);
  CostModel cm(apsp, flows);
  const MultiSfcResult general = solve_multi_sfc_exhaustive(msm);
  const ChainSearchResult plain = solve_top_exhaustive(cm, 3);
  EXPECT_NEAR(general.comm_cost, plain.objective, 1e-9);
}

TEST(MultiSfc, ShortRangesMakePlacementCheaperThanFullChains) {
  // Serving each flow only its requested range can never cost more than
  // forcing everyone through the full catalogue on the same placement.
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto ranged = ranged_workload(topo, 10, 4, 11);
  std::vector<RangedFlow> full;
  for (const auto& rf : ranged) full.push_back({rf.flow, 0, 3});
  const MultiSfcCostModel short_model(apsp, ranged, 4);
  const MultiSfcCostModel full_model(apsp, full, 4);
  const Placement p = solve_multi_sfc_relaxed(full_model).placement;
  EXPECT_LE(short_model.communication_cost(p),
            full_model.communication_cost(p) + 1e-9);
}

TEST(MultiSfc, WarmStartRespected) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const auto ranged = ranged_workload(topo, 6, 3, 13);
  const MultiSfcCostModel msm(apsp, ranged, 3);
  const MultiSfcResult relaxed = solve_multi_sfc_relaxed(msm);
  const MultiSfcResult exact =
      solve_multi_sfc_exhaustive(msm, 50'000'000, relaxed.placement);
  EXPECT_LE(exact.comm_cost, relaxed.comm_cost + 1e-9);
  ASSERT_TRUE(exact.proven_optimal);
}

TEST(MultiSfc, RejectsBadRanges) {
  const Topology topo = build_linear(4);
  const AllPairs apsp(topo.graph);
  const NodeId h1 = topo.graph.hosts()[0];
  EXPECT_THROW(MultiSfcCostModel(apsp, {{{h1, h1, 1.0, 0}, 2, 1}}, 3),
               PpdcError);
  EXPECT_THROW(MultiSfcCostModel(apsp, {{{h1, h1, 1.0, 0}, 0, 5}}, 3),
               PpdcError);
  EXPECT_THROW(MultiSfcCostModel(apsp, {{{h1, h1, -1.0, 0}, 0, 1}}, 3),
               PpdcError);
  const MultiSfcCostModel ok(apsp, {{{h1, h1, 1.0, 0}, 0, 1}}, 2);
  EXPECT_THROW(ok.communication_cost({h1}), PpdcError);
}

}  // namespace
}  // namespace ppdc
