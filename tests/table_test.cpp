#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/require.hpp"

namespace ppdc {
namespace {

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinter, RejectsMismatchedRow) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PpdcError);
}

TEST(TablePrinter, RejectsEmptyHeader) {
  EXPECT_THROW(TablePrinter({}), PpdcError);
}

TEST(TablePrinter, NumFormatting) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::num(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::num_ci(10.0, 0.5, 1), "10.0 ± 0.5");
}

TEST(TablePrinter, CsvOutput) {
  TablePrinter t({"x", "y"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n3,4\n");
}

TEST(TablePrinter, RowCount) {
  TablePrinter t({"x"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1"});
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(Banner, ContainsTitle) {
  std::ostringstream os;
  print_banner(os, "Fig. 7");
  EXPECT_NE(os.str().find("Fig. 7"), std::string::npos);
}

}  // namespace
}  // namespace ppdc
