// Determinism contract of the sharded streaming engine (sim/sharded.hpp):
//
//   * Over ShardMap::single with a churn-free workload, the sharded loop
//     transcribes run_simulation exactly — every trace total and every
//     per-epoch decision field is bit-identical, pristine and faulted.
//   * Over the multi-shard pod map, the trace is a pure function of the
//     seed: 1 worker thread and 4 worker threads produce bit-identical
//     traces under churn, faults, and bounded-staleness holds.
//   * Held shards charge exact costs: with a hold-everything threshold and
//     a placement-stable policy, the trace matches the resolve-every-epoch
//     run bit for bit.
//   * run_experiment's sharded path inherits the same thread invariance.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/sharded_cost_model.hpp"
#include "fault/fault.hpp"
#include "sim/engine.hpp"
#include "sim/experiment.hpp"
#include "sim/sharded.hpp"
#include "topology/fat_tree.hpp"
#include "workload/streaming.hpp"
#include "workload/vm_placement.hpp"

namespace ppdc {
namespace {

VmPlacementConfig workload_config(int pairs) {
  VmPlacementConfig cfg;
  cfg.num_pairs = pairs;
  cfg.intra_rack_fraction = 0.8;
  return cfg;
}

void expect_equal_decisions(const EpochDecision& a, const EpochDecision& b,
                            int hour) {
  EXPECT_EQ(a.comm_cost, b.comm_cost) << "hour " << hour;
  EXPECT_EQ(a.migration_cost, b.migration_cost) << "hour " << hour;
  EXPECT_EQ(a.migration_distance, b.migration_distance) << "hour " << hour;
  EXPECT_EQ(a.vnf_migrations, b.vnf_migrations) << "hour " << hour;
  EXPECT_EQ(a.vm_migrations, b.vm_migrations) << "hour " << hour;
  EXPECT_EQ(a.truncated_solves, b.truncated_solves) << "hour " << hour;
  EXPECT_EQ(a.switch_failures, b.switch_failures) << "hour " << hour;
  EXPECT_EQ(a.link_failures, b.link_failures) << "hour " << hour;
  EXPECT_EQ(a.repairs, b.repairs) << "hour " << hour;
  EXPECT_EQ(a.recovery_migrations, b.recovery_migrations) << "hour " << hour;
  EXPECT_EQ(a.recovery_cost, b.recovery_cost) << "hour " << hour;
  EXPECT_EQ(a.quarantined_flows, b.quarantined_flows) << "hour " << hour;
  EXPECT_EQ(a.quarantine_penalty, b.quarantine_penalty) << "hour " << hour;
  EXPECT_EQ(a.service_down, b.service_down) << "hour " << hour;
  EXPECT_EQ(a.rung, b.rung) << "hour " << hour;
  EXPECT_EQ(a.policy_failed, b.policy_failed) << "hour " << hour;
  EXPECT_EQ(a.resolved_shards, b.resolved_shards) << "hour " << hour;
  EXPECT_EQ(a.held_shards, b.held_shards) << "hour " << hour;
}

void expect_equal_traces(const SimTrace& a, const SimTrace& b) {
  EXPECT_EQ(a.initial_placement, b.initial_placement);
  EXPECT_EQ(a.total_comm_cost, b.total_comm_cost);
  EXPECT_EQ(a.total_migration_cost, b.total_migration_cost);
  EXPECT_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.total_vnf_migrations, b.total_vnf_migrations);
  EXPECT_EQ(a.total_vm_migrations, b.total_vm_migrations);
  EXPECT_EQ(a.total_switch_failures, b.total_switch_failures);
  EXPECT_EQ(a.total_link_failures, b.total_link_failures);
  EXPECT_EQ(a.total_repairs, b.total_repairs);
  EXPECT_EQ(a.total_recovery_migrations, b.total_recovery_migrations);
  EXPECT_EQ(a.total_recovery_cost, b.total_recovery_cost);
  EXPECT_EQ(a.quarantined_flow_epochs, b.quarantined_flow_epochs);
  EXPECT_EQ(a.total_quarantine_penalty, b.total_quarantine_penalty);
  EXPECT_EQ(a.downtime_epochs, b.downtime_epochs);
  EXPECT_EQ(a.total_truncated_solves, b.total_truncated_solves);
  EXPECT_EQ(a.ladder_transitions, b.ladder_transitions);
  EXPECT_EQ(a.refresh_only_epochs, b.refresh_only_epochs);
  EXPECT_EQ(a.frozen_epochs, b.frozen_epochs);
  EXPECT_EQ(a.policy_failures, b.policy_failures);
  EXPECT_EQ(a.total_shard_resolves, b.total_shard_resolves);
  EXPECT_EQ(a.total_shard_holds, b.total_shard_holds);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t h = 0; h < a.epochs.size(); ++h) {
    expect_equal_decisions(a.epochs[h], b.epochs[h], static_cast<int>(h));
  }
}

FaultSchedule some_faults(const Topology& topo, int hours) {
  FaultScheduleConfig cfg;
  cfg.hours = hours;
  cfg.switch_mtbf = 5.0;
  cfg.switch_mttr = 2.0;
  cfg.link_mtbf = 8.0;
  cfg.seed = 99;
  return generate_fault_schedule(topo.graph, cfg);
}

/// Single-shard, churn-free: the sharded loop must transcribe the
/// monolithic engine bit for bit.
void check_single_shard(int k, bool with_faults, const MigrationPolicy& proto,
                        std::unique_ptr<MigrationPolicy> mono_policy) {
  const Topology topo = build_fat_tree(k);
  const AllPairs apsp(topo.graph);
  const int hours = 8;
  const int pairs = 120;

  SimConfig sim;
  sim.hours = hours;
  if (with_faults) sim.faults = some_faults(topo, hours);

  Rng mono_rng(13);
  const std::vector<VmFlow> flows =
      generate_vm_flows(topo, workload_config(pairs), mono_rng);
  const SimTrace mono = run_simulation(apsp, flows, 5, sim, *mono_policy);

  const ShardMap map = ShardMap::single(topo);
  StreamingWorkload workload(topo, workload_config(pairs),
                             StreamingChurnConfig{}, Rng(13));
  ShardedStreamingConfig sharded;
  sharded.enabled = true;
  sharded.threads = 1;
  const SimTrace shard_trace =
      run_sharded_simulation(apsp, map, workload, 5, sim, sharded, proto);

  expect_equal_traces(shard_trace, mono);
}

TEST(ShardedEquivalence, SingleShardPristineNoMigration) {
  NoMigrationPolicy proto;
  check_single_shard(4, false, proto, std::make_unique<NoMigrationPolicy>());
}

TEST(ShardedEquivalence, SingleShardPristineMPareto) {
  ParetoMigrationPolicy proto(1e3);
  check_single_shard(4, false, proto,
                     std::make_unique<ParetoMigrationPolicy>(1e3));
}

TEST(ShardedEquivalence, SingleShardFaultedMPareto) {
  ParetoMigrationPolicy proto(1e3);
  check_single_shard(4, true, proto,
                     std::make_unique<ParetoMigrationPolicy>(1e3));
}

TEST(ShardedEquivalence, SingleShardFaultedK8) {
  ParetoMigrationPolicy proto(1e4);
  check_single_shard(8, true, proto,
                     std::make_unique<ParetoMigrationPolicy>(1e4));
}

SimTrace run_pod_sharded(int threads, double resolve_fraction,
                         int max_staleness, bool with_faults,
                         const StreamingChurnConfig& churn) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const int hours = 10;

  SimConfig sim;
  sim.hours = hours;
  if (with_faults) sim.faults = some_faults(topo, hours);

  const ShardMap map = ShardMap::by_ingress_pod(topo);
  EXPECT_GT(map.num_shards(), 1);
  StreamingWorkload workload(topo, workload_config(160), churn, Rng(21));

  ShardedStreamingConfig sharded;
  sharded.enabled = true;
  sharded.threads = threads;
  sharded.resolve_churn_fraction = resolve_fraction;
  sharded.max_staleness = max_staleness;
  sharded.churn = churn;

  ParetoMigrationPolicy proto(1e3);
  return run_sharded_simulation(apsp, map, workload, 5, sim, sharded, proto);
}

TEST(ShardedEquivalence, MultiShardThreadCountInvariant) {
  StreamingChurnConfig churn;
  churn.arrivals_per_epoch = 20;
  churn.departure_prob = 0.1;
  churn.rerate_prob = 0.2;
  const SimTrace serial = run_pod_sharded(1, 0.15, 3, true, churn);
  const SimTrace parallel = run_pod_sharded(4, 0.15, 3, true, churn);
  expect_equal_traces(serial, parallel);
  // Active faults force re-solves, so this run resolves throughout.
  EXPECT_GT(serial.total_shard_resolves, 0);
}

TEST(ShardedEquivalence, LightChurnHoldsAndStaysThreadInvariant) {
  // Pristine fabric, churn well below the re-solve threshold: bounded
  // staleness actually holds shards — and the held/resolved mix is still
  // bit-identical across thread counts.
  StreamingChurnConfig churn;
  churn.arrivals_per_epoch = 2;
  churn.departure_prob = 0.01;
  churn.rerate_prob = 0.02;
  const SimTrace serial = run_pod_sharded(1, 0.5, 3, false, churn);
  const SimTrace parallel = run_pod_sharded(4, 0.5, 3, false, churn);
  expect_equal_traces(serial, parallel);
  EXPECT_GT(serial.total_shard_holds, 0);
  EXPECT_GT(serial.total_shard_resolves, 0);
}

TEST(ShardedEquivalence, HeldShardsChargeExactCosts) {
  // NoMigration never moves, so a held placement IS the resolved
  // placement; charging held shards exactly means the hold-everything run
  // must match the resolve-every-epoch run bit for bit — except for the
  // resolved/held split itself, which we check separately.
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  SimConfig sim;
  sim.hours = 6;
  const ShardMap map = ShardMap::by_ingress_pod(topo);
  NoMigrationPolicy proto;

  auto run = [&](double fraction, int staleness) {
    StreamingWorkload workload(topo, workload_config(140),
                               StreamingChurnConfig{}, Rng(5));
    ShardedStreamingConfig sharded;
    sharded.enabled = true;
    sharded.threads = 2;
    sharded.resolve_churn_fraction = fraction;
    sharded.max_staleness = staleness;
    return run_sharded_simulation(apsp, map, workload, 5, sim, sharded,
                                  proto);
  };

  const SimTrace resolve_always = run(0.0, 4);
  const SimTrace hold_mostly = run(0.9, 1000);

  EXPECT_EQ(resolve_always.total_comm_cost, hold_mostly.total_comm_cost);
  EXPECT_EQ(resolve_always.total_cost, hold_mostly.total_cost);
  ASSERT_EQ(resolve_always.epochs.size(), hold_mostly.epochs.size());
  for (std::size_t h = 0; h < resolve_always.epochs.size(); ++h) {
    EXPECT_EQ(resolve_always.epochs[h].comm_cost,
              hold_mostly.epochs[h].comm_cost)
        << "hour " << h;
  }
  // Every epoch accounts for every shard, one way or the other.
  const int shards = map.num_shards();
  EXPECT_EQ(resolve_always.total_shard_resolves, sim.hours * shards);
  EXPECT_EQ(resolve_always.total_shard_holds, 0);
  // Hour 0 always solves; with zero churn every later epoch holds.
  EXPECT_EQ(hold_mostly.total_shard_resolves, shards);
  EXPECT_EQ(hold_mostly.total_shard_holds, (sim.hours - 1) * shards);
}

TEST(ShardedEquivalence, MonolithicOnlyFeaturesAreRejected) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const ShardMap map = ShardMap::by_ingress_pod(topo);
  NoMigrationPolicy proto;
  ShardedStreamingConfig sharded;
  sharded.enabled = true;

  {
    StreamingWorkload workload(topo, workload_config(40),
                               StreamingChurnConfig{}, Rng(1));
    SimConfig sim;
    sim.hours = 2;
    sim.rate_schedule = [](Hour) { return std::vector<double>{}; };
    EXPECT_THROW(run_sharded_simulation(apsp, map, workload, 3, sim, sharded,
                                        proto),
                 PpdcError);
  }
  {
    StreamingWorkload workload(topo, workload_config(40),
                               StreamingChurnConfig{}, Rng(1));
    SimConfig sim;
    sim.hours = 2;
    sim.audit.enabled = true;
    EXPECT_THROW(run_sharded_simulation(apsp, map, workload, 3, sim, sharded,
                                        proto),
                 PpdcError);
  }
}

TEST(ShardedEquivalence, ExperimentRunnerThreadInvariant) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);

  auto make = [&](int sim_threads, int shard_threads) {
    ExperimentConfig cfg;
    cfg.trials = 3;
    cfg.seed = 77;
    cfg.workload = workload_config(100);
    cfg.sfc_length = 5;
    cfg.sim.hours = 6;
    cfg.threads = sim_threads;
    cfg.sharded.enabled = true;
    cfg.sharded.threads = shard_threads;
    cfg.sharded.churn.arrivals_per_epoch = 10;
    cfg.sharded.churn.departure_prob = 0.05;
    cfg.sharded.churn.rerate_prob = 0.1;
    cfg.sharded.resolve_churn_fraction = 0.2;
    cfg.sharded.max_staleness = 3;
    return cfg;
  };

  ParetoMigrationPolicy pareto(1e3);
  NoMigrationPolicy none;
  const std::vector<const MigrationPolicy*> policies{&pareto, &none};

  const auto serial = run_experiment(topo, apsp, make(1, 1), policies);
  const auto parallel = run_experiment(topo, apsp, make(2, 4), policies);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t p = 0; p < serial.size(); ++p) {
    EXPECT_EQ(serial[p].name, parallel[p].name);
    EXPECT_EQ(serial[p].total_cost.mean, parallel[p].total_cost.mean);
    EXPECT_EQ(serial[p].comm_cost.mean, parallel[p].comm_cost.mean);
    EXPECT_EQ(serial[p].migration_cost.mean, parallel[p].migration_cost.mean);
    EXPECT_EQ(serial[p].vnf_migrations.mean, parallel[p].vnf_migrations.mean);
    EXPECT_EQ(serial[p].shard_resolves.mean, parallel[p].shard_resolves.mean);
    EXPECT_EQ(serial[p].shard_holds.mean, parallel[p].shard_holds.mean);
    ASSERT_EQ(serial[p].hourly_cost.size(), parallel[p].hourly_cost.size());
    for (std::size_t h = 0; h < serial[p].hourly_cost.size(); ++h) {
      EXPECT_EQ(serial[p].hourly_cost[h].mean,
                parallel[p].hourly_cost[h].mean);
    }
    // The sharded streaming runner actually held shards under the 0.2
    // churn threshold (the feature is on, not silently bypassed).
    EXPECT_GT(serial[p].shard_resolves.mean, 0.0);
  }
}

}  // namespace
}  // namespace ppdc
