// Determinism contract of the sharded streaming engine (sim/sharded.hpp):
//
//   * Over ShardMap::single with a churn-free workload, the sharded loop
//     transcribes run_simulation exactly — every trace total and every
//     per-epoch decision field is bit-identical, pristine and faulted.
//   * Over the multi-shard pod map, the trace is a pure function of the
//     seed: 1 worker thread and 4 worker threads produce bit-identical
//     traces under churn, faults, and bounded-staleness holds.
//   * Held shards charge exact costs: with a hold-everything threshold and
//     a placement-stable policy, the trace matches the resolve-every-epoch
//     run bit for bit.
//   * run_experiment's sharded path inherits the same thread invariance.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/sharded_cost_model.hpp"
#include "fault/fault.hpp"
#include "sim/audit.hpp"
#include "sim/checkpoint.hpp"
#include "sim/engine.hpp"
#include "sim/experiment.hpp"
#include "sim/observer.hpp"
#include "sim/sharded.hpp"
#include "topology/fat_tree.hpp"
#include "workload/streaming.hpp"
#include "workload/vm_placement.hpp"

namespace ppdc {
namespace {

VmPlacementConfig workload_config(int pairs) {
  VmPlacementConfig cfg;
  cfg.num_pairs = pairs;
  cfg.intra_rack_fraction = 0.8;
  return cfg;
}

void expect_equal_decisions(const EpochDecision& a, const EpochDecision& b,
                            int hour) {
  EXPECT_EQ(a.comm_cost, b.comm_cost) << "hour " << hour;
  EXPECT_EQ(a.migration_cost, b.migration_cost) << "hour " << hour;
  EXPECT_EQ(a.migration_distance, b.migration_distance) << "hour " << hour;
  EXPECT_EQ(a.vnf_migrations, b.vnf_migrations) << "hour " << hour;
  EXPECT_EQ(a.vm_migrations, b.vm_migrations) << "hour " << hour;
  EXPECT_EQ(a.truncated_solves, b.truncated_solves) << "hour " << hour;
  EXPECT_EQ(a.switch_failures, b.switch_failures) << "hour " << hour;
  EXPECT_EQ(a.link_failures, b.link_failures) << "hour " << hour;
  EXPECT_EQ(a.repairs, b.repairs) << "hour " << hour;
  EXPECT_EQ(a.recovery_migrations, b.recovery_migrations) << "hour " << hour;
  EXPECT_EQ(a.recovery_cost, b.recovery_cost) << "hour " << hour;
  EXPECT_EQ(a.quarantined_flows, b.quarantined_flows) << "hour " << hour;
  EXPECT_EQ(a.quarantine_penalty, b.quarantine_penalty) << "hour " << hour;
  EXPECT_EQ(a.service_down, b.service_down) << "hour " << hour;
  EXPECT_EQ(a.rung, b.rung) << "hour " << hour;
  EXPECT_EQ(a.policy_failed, b.policy_failed) << "hour " << hour;
  EXPECT_EQ(a.resolved_shards, b.resolved_shards) << "hour " << hour;
  EXPECT_EQ(a.held_shards, b.held_shards) << "hour " << hour;
  EXPECT_EQ(a.quarantined_shards, b.quarantined_shards) << "hour " << hour;
  EXPECT_EQ(a.shard_retries, b.shard_retries) << "hour " << hour;
  EXPECT_EQ(a.shard_penalty, b.shard_penalty) << "hour " << hour;
}

void expect_equal_traces(const SimTrace& a, const SimTrace& b) {
  EXPECT_EQ(a.initial_placement, b.initial_placement);
  EXPECT_EQ(a.total_comm_cost, b.total_comm_cost);
  EXPECT_EQ(a.total_migration_cost, b.total_migration_cost);
  EXPECT_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.total_vnf_migrations, b.total_vnf_migrations);
  EXPECT_EQ(a.total_vm_migrations, b.total_vm_migrations);
  EXPECT_EQ(a.total_switch_failures, b.total_switch_failures);
  EXPECT_EQ(a.total_link_failures, b.total_link_failures);
  EXPECT_EQ(a.total_repairs, b.total_repairs);
  EXPECT_EQ(a.total_recovery_migrations, b.total_recovery_migrations);
  EXPECT_EQ(a.total_recovery_cost, b.total_recovery_cost);
  EXPECT_EQ(a.quarantined_flow_epochs, b.quarantined_flow_epochs);
  EXPECT_EQ(a.total_quarantine_penalty, b.total_quarantine_penalty);
  EXPECT_EQ(a.downtime_epochs, b.downtime_epochs);
  EXPECT_EQ(a.total_truncated_solves, b.total_truncated_solves);
  EXPECT_EQ(a.ladder_transitions, b.ladder_transitions);
  EXPECT_EQ(a.refresh_only_epochs, b.refresh_only_epochs);
  EXPECT_EQ(a.frozen_epochs, b.frozen_epochs);
  EXPECT_EQ(a.policy_failures, b.policy_failures);
  EXPECT_EQ(a.total_shard_resolves, b.total_shard_resolves);
  EXPECT_EQ(a.total_shard_holds, b.total_shard_holds);
  EXPECT_EQ(a.quarantined_shard_epochs, b.quarantined_shard_epochs);
  EXPECT_EQ(a.total_shard_retries, b.total_shard_retries);
  EXPECT_EQ(a.total_shard_penalty, b.total_shard_penalty);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t h = 0; h < a.epochs.size(); ++h) {
    expect_equal_decisions(a.epochs[h], b.epochs[h], static_cast<int>(h));
  }
}

FaultSchedule some_faults(const Topology& topo, int hours) {
  FaultScheduleConfig cfg;
  cfg.hours = hours;
  cfg.switch_mtbf = 5.0;
  cfg.switch_mttr = 2.0;
  cfg.link_mtbf = 8.0;
  cfg.seed = 99;
  return generate_fault_schedule(topo.graph, cfg);
}

/// Single-shard, churn-free: the sharded loop must transcribe the
/// monolithic engine bit for bit.
void check_single_shard(int k, bool with_faults, const MigrationPolicy& proto,
                        std::unique_ptr<MigrationPolicy> mono_policy) {
  const Topology topo = build_fat_tree(k);
  const AllPairs apsp(topo.graph);
  const int hours = 8;
  const int pairs = 120;

  SimConfig sim;
  sim.hours = hours;
  if (with_faults) sim.faults = some_faults(topo, hours);

  Rng mono_rng(13);
  const std::vector<VmFlow> flows =
      generate_vm_flows(topo, workload_config(pairs), mono_rng);
  const SimTrace mono = run_simulation(apsp, flows, 5, sim, *mono_policy);

  const ShardMap map = ShardMap::single(topo);
  StreamingWorkload workload(topo, workload_config(pairs),
                             StreamingChurnConfig{}, Rng(13));
  ShardedStreamingConfig sharded;
  sharded.enabled = true;
  sharded.threads = 1;
  const SimTrace shard_trace =
      run_sharded_simulation(apsp, map, workload, 5, sim, sharded, proto);

  expect_equal_traces(shard_trace, mono);
}

TEST(ShardedEquivalence, SingleShardPristineNoMigration) {
  NoMigrationPolicy proto;
  check_single_shard(4, false, proto, std::make_unique<NoMigrationPolicy>());
}

TEST(ShardedEquivalence, SingleShardPristineMPareto) {
  ParetoMigrationPolicy proto(1e3);
  check_single_shard(4, false, proto,
                     std::make_unique<ParetoMigrationPolicy>(1e3));
}

TEST(ShardedEquivalence, SingleShardFaultedMPareto) {
  ParetoMigrationPolicy proto(1e3);
  check_single_shard(4, true, proto,
                     std::make_unique<ParetoMigrationPolicy>(1e3));
}

TEST(ShardedEquivalence, SingleShardFaultedK8) {
  ParetoMigrationPolicy proto(1e4);
  check_single_shard(8, true, proto,
                     std::make_unique<ParetoMigrationPolicy>(1e4));
}

SimTrace run_pod_sharded(int threads, double resolve_fraction,
                         int max_staleness, bool with_faults,
                         const StreamingChurnConfig& churn) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const int hours = 10;

  SimConfig sim;
  sim.hours = hours;
  if (with_faults) sim.faults = some_faults(topo, hours);

  const ShardMap map = ShardMap::by_ingress_pod(topo);
  EXPECT_GT(map.num_shards(), 1);
  StreamingWorkload workload(topo, workload_config(160), churn, Rng(21));

  ShardedStreamingConfig sharded;
  sharded.enabled = true;
  sharded.threads = threads;
  sharded.resolve_churn_fraction = resolve_fraction;
  sharded.max_staleness = max_staleness;
  sharded.churn = churn;

  ParetoMigrationPolicy proto(1e3);
  return run_sharded_simulation(apsp, map, workload, 5, sim, sharded, proto);
}

TEST(ShardedEquivalence, MultiShardThreadCountInvariant) {
  StreamingChurnConfig churn;
  churn.arrivals_per_epoch = 20;
  churn.departure_prob = 0.1;
  churn.rerate_prob = 0.2;
  const SimTrace serial = run_pod_sharded(1, 0.15, 3, true, churn);
  const SimTrace parallel = run_pod_sharded(4, 0.15, 3, true, churn);
  expect_equal_traces(serial, parallel);
  // Active faults force re-solves, so this run resolves throughout.
  EXPECT_GT(serial.total_shard_resolves, 0);
}

TEST(ShardedEquivalence, LightChurnHoldsAndStaysThreadInvariant) {
  // Pristine fabric, churn well below the re-solve threshold: bounded
  // staleness actually holds shards — and the held/resolved mix is still
  // bit-identical across thread counts.
  StreamingChurnConfig churn;
  churn.arrivals_per_epoch = 2;
  churn.departure_prob = 0.01;
  churn.rerate_prob = 0.02;
  const SimTrace serial = run_pod_sharded(1, 0.5, 3, false, churn);
  const SimTrace parallel = run_pod_sharded(4, 0.5, 3, false, churn);
  expect_equal_traces(serial, parallel);
  EXPECT_GT(serial.total_shard_holds, 0);
  EXPECT_GT(serial.total_shard_resolves, 0);
}

TEST(ShardedEquivalence, HeldShardsChargeExactCosts) {
  // NoMigration never moves, so a held placement IS the resolved
  // placement; charging held shards exactly means the hold-everything run
  // must match the resolve-every-epoch run bit for bit — except for the
  // resolved/held split itself, which we check separately.
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  SimConfig sim;
  sim.hours = 6;
  const ShardMap map = ShardMap::by_ingress_pod(topo);
  NoMigrationPolicy proto;

  auto run = [&](double fraction, int staleness) {
    StreamingWorkload workload(topo, workload_config(140),
                               StreamingChurnConfig{}, Rng(5));
    ShardedStreamingConfig sharded;
    sharded.enabled = true;
    sharded.threads = 2;
    sharded.resolve_churn_fraction = fraction;
    sharded.max_staleness = staleness;
    return run_sharded_simulation(apsp, map, workload, 5, sim, sharded,
                                  proto);
  };

  const SimTrace resolve_always = run(0.0, 4);
  const SimTrace hold_mostly = run(0.9, 1000);

  EXPECT_EQ(resolve_always.total_comm_cost, hold_mostly.total_comm_cost);
  EXPECT_EQ(resolve_always.total_cost, hold_mostly.total_cost);
  ASSERT_EQ(resolve_always.epochs.size(), hold_mostly.epochs.size());
  for (std::size_t h = 0; h < resolve_always.epochs.size(); ++h) {
    EXPECT_EQ(resolve_always.epochs[h].comm_cost,
              hold_mostly.epochs[h].comm_cost)
        << "hour " << h;
  }
  // Every epoch accounts for every shard, one way or the other.
  const int shards = map.num_shards();
  EXPECT_EQ(resolve_always.total_shard_resolves, sim.hours * shards);
  EXPECT_EQ(resolve_always.total_shard_holds, 0);
  // Hour 0 always solves; with zero churn every later epoch holds.
  EXPECT_EQ(hold_mostly.total_shard_resolves, shards);
  EXPECT_EQ(hold_mostly.total_shard_holds, (sim.hours - 1) * shards);
}

TEST(ShardedEquivalence, MonolithicOnlyFeaturesAreRejected) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const ShardMap map = ShardMap::by_ingress_pod(topo);
  NoMigrationPolicy proto;
  ShardedStreamingConfig sharded;
  sharded.enabled = true;

  {
    StreamingWorkload workload(topo, workload_config(40),
                               StreamingChurnConfig{}, Rng(1));
    SimConfig sim;
    sim.hours = 2;
    sim.rate_schedule = [](Hour) { return std::vector<double>{}; };
    EXPECT_THROW(run_sharded_simulation(apsp, map, workload, 3, sim, sharded,
                                        proto),
                 PpdcError);
  }
  // SimConfig::audit is no longer monolithic-only: the sharded engine
  // attaches a ShardedInvariantAuditor and a clean run passes with full
  // epoch coverage.
  {
    StreamingWorkload workload(topo, workload_config(40),
                               StreamingChurnConfig{}, Rng(1));
    SimConfig sim;
    sim.hours = 2;
    sim.audit.enabled = true;
    const SimTrace t =
        run_sharded_simulation(apsp, map, workload, 3, sim, sharded, proto);
    EXPECT_EQ(t.audited_epochs, 2);
  }
}

/// Prototype whose `throwing_clone`-th clone() (1-based) yields a policy
/// that throws on every on_epoch call; every other clone behaves like
/// NoMigration. run_sharded_simulation clones once per shard in fixed pod
/// order, so "clone #2 throws" means "shard 1 fails every attempt".
class SelectiveThrowPolicy : public MigrationPolicy {
 public:
  explicit SelectiveThrowPolicy(int throwing_clone)
      : throwing_clone_(throwing_clone), clones_(std::make_shared<int>(0)) {}

  std::string name() const override { return "SelectiveThrow"; }

  std::unique_ptr<MigrationPolicy> clone() const override {
    const int index = ++*clones_;
    auto p = std::make_unique<SelectiveThrowPolicy>(throwing_clone_);
    p->clones_ = clones_;
    p->throws_ = index == throwing_clone_;
    return p;
  }

  EpochDecision on_epoch(const CostModel& model, SimState& state) override {
    if (throws_) throw PpdcError("synthetic shard failure");
    EpochDecision d;
    d.comm_cost = model.communication_cost(state.placement);
    return d;
  }

 private:
  int throwing_clone_;
  std::shared_ptr<int> clones_;
  bool throws_ = false;
};

TEST(ShardedFaultContainment, ThrowingShardIsQuarantinedWhileOthersProgress) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const ShardMap map = ShardMap::by_ingress_pod(topo);
  SimConfig sim;
  sim.hours = 12;
  sim.ladder.enabled = true;
  sim.audit.enabled = true;

  ShardedStreamingConfig sharded;
  sharded.enabled = true;
  sharded.threads = 2;
  sharded.quarantine_sla = 3.0;

  auto run = [&](const MigrationPolicy& proto, int threads) {
    ShardedStreamingConfig cfg = sharded;
    cfg.threads = threads;
    StreamingWorkload workload(topo, workload_config(140),
                               StreamingChurnConfig{}, Rng(9));
    return run_sharded_simulation(apsp, map, workload, 5, sim, cfg, proto);
  };

  NoMigrationPolicy healthy;
  const SimTrace baseline = run(healthy, 2);
  SelectiveThrowPolicy failing(2);  // shard 1 throws on every attempt
  const SimTrace contained = run(failing, 2);

  // Containment: the quarantined shard holds its placement and is
  // re-costed exactly, so every epoch's communication cost is
  // bit-identical to the all-healthy baseline — the other shards' costs
  // never move.
  ASSERT_EQ(contained.epochs.size(), baseline.epochs.size());
  for (std::size_t h = 0; h < contained.epochs.size(); ++h) {
    EXPECT_EQ(contained.epochs[h].comm_cost, baseline.epochs[h].comm_cost)
        << "hour " << h;
  }
  EXPECT_EQ(contained.total_comm_cost, baseline.total_comm_cost);
  EXPECT_EQ(contained.downtime_epochs, 0);

  // ...while the failure is fully visible in the containment accounting:
  // the first throw plus at least one backed-off retry, quarantined
  // shard-epochs, and the SLA penalty on the quarantined shard's served
  // rate (the only cost delta vs the baseline).
  EXPECT_GE(contained.policy_failures, 2);
  EXPECT_GE(contained.total_shard_retries, 1);
  EXPECT_GT(contained.quarantined_shard_epochs, 0);
  EXPECT_GT(contained.total_shard_penalty, 0.0);
  EXPECT_EQ(contained.total_cost,
            contained.total_comm_cost + contained.total_shard_penalty);
  EXPECT_EQ(baseline.quarantined_shard_epochs, 0);
  EXPECT_EQ(baseline.total_shard_penalty, 0.0);
  EXPECT_EQ(baseline.policy_failures, 0);

  // Per-shard ladder, down and back up: the merged rung degrades while
  // the failing shard sits out its backoff and returns to kFull for the
  // retry attempts.
  EXPECT_GE(contained.ladder_transitions, 3);
  bool saw_degraded = false;
  bool saw_retry_at_full = false;
  for (std::size_t h = 1; h < contained.epochs.size(); ++h) {
    const EpochDecision& d = contained.epochs[h];
    if (d.rung != DegradationRung::kFull) saw_degraded = true;
    if (saw_degraded && d.rung == DegradationRung::kFull &&
        d.shard_retries > 0) {
      saw_retry_at_full = true;
    }
  }
  EXPECT_TRUE(saw_degraded);
  EXPECT_TRUE(saw_retry_at_full);

  // And the whole containment trajectory is thread-count invariant.
  SelectiveThrowPolicy failing1(2);
  SelectiveThrowPolicy failing4(2);
  expect_equal_traces(run(failing1, 1), run(failing4, 4));
}

TEST(ShardedAudit, CleanOnPristineAndPodOutage) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const ShardMap map = ShardMap::by_ingress_pod(topo);
  StreamingChurnConfig churn;
  churn.arrivals_per_epoch = 8;
  churn.departure_prob = 0.05;
  churn.rerate_prob = 0.1;

  auto run = [&](bool pod_outage) {
    SimConfig sim;
    sim.hours = 10;
    sim.ladder.enabled = true;
    sim.audit.enabled = true;
    if (pod_outage) {
      FaultScheduleConfig fc;
      fc.hours = sim.hours;
      fc.maintenance = {{"pod0", Hour{3}, Hour{6}}};
      sim.faults = generate_fault_schedule(topo, fc);
    }
    ShardedStreamingConfig sharded;
    sharded.enabled = true;
    sharded.threads = 4;
    sharded.churn = churn;
    sharded.resolve_churn_fraction = 0.3;
    sharded.max_staleness = 3;
    sharded.quarantine_sla = 2.0;
    StreamingWorkload workload(topo, workload_config(160), churn, Rng(31));
    ParetoMigrationPolicy proto(1e3);
    return run_sharded_simulation(apsp, map, workload, 5, sim, sharded,
                                  proto);
  };

  const SimTrace pristine = run(false);
  EXPECT_EQ(pristine.audited_epochs, 10);
  EXPECT_GT(pristine.total_shard_holds, 0);

  const SimTrace outage = run(true);
  EXPECT_EQ(outage.audited_epochs, 10);
  // The drained pod actually cut flows off from the core (the audit
  // covered real quarantine accounting, not a silently pristine run).
  EXPECT_GT(outage.quarantined_flow_epochs, 0);
  EXPECT_GT(outage.total_switch_failures, 0);
}

TEST(ShardedAudit, CorruptPlacementNamesShard) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const ShardMap map = ShardMap::by_ingress_pod(topo);
  SimConfig sim;
  sim.hours = 6;
  sim.audit.enabled = true;
  sim.audit.corrupt_placement_epoch = Hour{2};
  ShardedStreamingConfig sharded;
  sharded.enabled = true;
  sharded.threads = 2;
  StreamingWorkload workload(topo, workload_config(120),
                             StreamingChurnConfig{}, Rng(5));
  NoMigrationPolicy proto;
  try {
    run_sharded_simulation(apsp, map, workload, 5, sim, sharded, proto);
    FAIL() << "corrupted shard placement escaped the sharded auditor";
  } catch (const AuditError& e) {
    EXPECT_EQ(e.violation().invariant, "placement-feasibility");
    EXPECT_EQ(e.violation().epoch, Hour{2});
    EXPECT_EQ(e.violation().shard, map.names[0]);
    EXPECT_NE(std::string(e.what()).find(map.names[0]), std::string::npos)
        << e.what();
  }
}

/// Flips the cancellation flag at the end of a chosen epoch, simulating a
/// SIGTERM that lands mid-run.
class CancelAtEpoch : public EpochObserver {
 public:
  CancelAtEpoch(std::atomic<bool>* flag, int epoch)
      : flag_(flag), epoch_(epoch) {}
  void on_epoch_end(Hour hour, const EpochDecision&) override {
    if (hour.value() == epoch_) flag_->store(true);
  }

 private:
  std::atomic<bool>* flag_;
  int epoch_;
};

TEST(ShardedEpochJournal, KillResumeBitIdentityAcrossThreadCounts) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  const ShardMap map = ShardMap::by_ingress_pod(topo);
  const std::string journal = "sharded_epoch_journal_test.bin";

  StreamingChurnConfig churn;
  churn.arrivals_per_epoch = 10;
  churn.departure_prob = 0.05;
  churn.rerate_prob = 0.1;

  SimConfig base;
  base.hours = 10;
  base.ladder.enabled = true;
  base.audit.enabled = true;
  {
    FaultScheduleConfig fc;
    fc.hours = base.hours;
    fc.switch_mtbf = 8.0;
    fc.switch_mttr = 2.0;
    fc.seed = 99;
    base.faults = generate_fault_schedule(topo, fc);
  }

  auto make_sharded = [&](int threads, bool with_journal) {
    ShardedStreamingConfig cfg;
    cfg.enabled = true;
    cfg.threads = threads;
    cfg.churn = churn;
    cfg.resolve_churn_fraction = 0.25;
    cfg.max_staleness = 3;
    cfg.quarantine_sla = 1.0;
    if (with_journal) cfg.epoch_journal = journal;
    return cfg;
  };
  auto make_workload = [&]() {
    return StreamingWorkload(topo, workload_config(150), churn, Rng(77));
  };

  ParetoMigrationPolicy proto(1e3);
  remove_epoch_journal(journal);

  // Reference: one uninterrupted run.
  auto uninterrupted = [&](int threads) {
    StreamingWorkload w = make_workload();
    return run_sharded_simulation(apsp, map, w, 5, base,
                                  make_sharded(threads, false), proto);
  };
  const SimTrace reference = uninterrupted(1);
  expect_equal_traces(reference, uninterrupted(4));

  // Kill at the end of epoch 4, then resume from the journal — at a
  // different thread count than the killed run — and require the resumed
  // trace bit-identical to the uninterrupted reference.
  auto kill_and_resume = [&](int kill_threads, int resume_threads) {
    remove_epoch_journal(journal);
    {
      std::atomic<bool> cancel{false};
      CancelAtEpoch canceller(&cancel, 4);
      SimConfig interrupted = base;
      interrupted.cancel = &cancel;
      StreamingWorkload w = make_workload();
      EXPECT_THROW(
          run_sharded_simulation(apsp, map, w, 5, interrupted,
                                 make_sharded(kill_threads, true), proto,
                                 &canceller),
          SimInterrupted);
    }
    StreamingWorkload w = make_workload();
    const SimTrace resumed = run_sharded_simulation(
        apsp, map, w, 5, base, make_sharded(resume_threads, true), proto);
    expect_equal_traces(resumed, reference);
  };
  kill_and_resume(1, 4);
  kill_and_resume(4, 1);
  remove_epoch_journal(journal);
}

TEST(ShardedEquivalence, ExperimentRunnerThreadInvariant) {
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);

  auto make = [&](int sim_threads, int shard_threads) {
    ExperimentConfig cfg;
    cfg.trials = 3;
    cfg.seed = 77;
    cfg.workload = workload_config(100);
    cfg.sfc_length = 5;
    cfg.sim.hours = 6;
    cfg.threads = sim_threads;
    cfg.sharded.enabled = true;
    cfg.sharded.threads = shard_threads;
    cfg.sharded.churn.arrivals_per_epoch = 10;
    cfg.sharded.churn.departure_prob = 0.05;
    cfg.sharded.churn.rerate_prob = 0.1;
    cfg.sharded.resolve_churn_fraction = 0.2;
    cfg.sharded.max_staleness = 3;
    return cfg;
  };

  ParetoMigrationPolicy pareto(1e3);
  NoMigrationPolicy none;
  const std::vector<const MigrationPolicy*> policies{&pareto, &none};

  const auto serial = run_experiment(topo, apsp, make(1, 1), policies);
  const auto parallel = run_experiment(topo, apsp, make(2, 4), policies);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t p = 0; p < serial.size(); ++p) {
    EXPECT_EQ(serial[p].name, parallel[p].name);
    EXPECT_EQ(serial[p].total_cost.mean, parallel[p].total_cost.mean);
    EXPECT_EQ(serial[p].comm_cost.mean, parallel[p].comm_cost.mean);
    EXPECT_EQ(serial[p].migration_cost.mean, parallel[p].migration_cost.mean);
    EXPECT_EQ(serial[p].vnf_migrations.mean, parallel[p].vnf_migrations.mean);
    EXPECT_EQ(serial[p].shard_resolves.mean, parallel[p].shard_resolves.mean);
    EXPECT_EQ(serial[p].shard_holds.mean, parallel[p].shard_holds.mean);
    ASSERT_EQ(serial[p].hourly_cost.size(), parallel[p].hourly_cost.size());
    for (std::size_t h = 0; h < serial[p].hourly_cost.size(); ++h) {
      EXPECT_EQ(serial[p].hourly_cost[h].mean,
                parallel[p].hourly_cost[h].mean);
    }
    // The sharded streaming runner actually held shards under the 0.2
    // churn threshold (the feature is on, not silently bypassed).
    EXPECT_GT(serial[p].shard_resolves.mean, 0.0);
  }
}

}  // namespace
}  // namespace ppdc
