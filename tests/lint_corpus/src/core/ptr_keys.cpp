// pointer-hash-order fixtures: hashing or keying on allocation
// addresses fires; hashing a value type stays clean.
#include <cstdint>
#include <functional>

namespace fix {

struct Node {};

std::size_t identity_keys(const Node* n) {
  std::hash<const Node*> by_address;  // expect-finding(pointer-hash-order)
  std::size_t h = by_address(n);
  h ^= reinterpret_cast<std::uintptr_t>(n);  // expect-finding(pointer-hash-order)
  std::hash<int> by_value;  // clean: hashes a value, not an address
  h ^= by_value(3);
  return h;
}

}  // namespace fix
