// Own-header-credit fixture (header half): this header includes the
// Widget declaration directly, so both it and credit.cpp — which
// includes only this header — spell Widget cleanly.
#pragma once

#include "defs/widgets.hpp"

namespace fix {

struct Credit {
  Widget widget;
};

}  // namespace fix
