// Own-header-credit fixture (.cpp half): a .cpp inherits its own
// header's direct includes, so spelling Widget here with only
// "core/credit.hpp" included is clean.
#include "core/credit.hpp"

namespace fix {

int measure() {
  Credit c;
  Widget w = c.widget;  // clean: credit.hpp includes defs/widgets.hpp
  (void)w;
  return 1;
}

}  // namespace fix
