// raw-index fixtures: untyped subscripts through the StrongId layer
// fire — on the template spelling and on a project alias (Table, which
// defs/widgets.hpp registers as an IndexedVector alias). Typed
// subscripts stay clean.
#include "defs/widgets.hpp"

namespace fix {

double raw_reads(int flow) {
  IndexedVector<int, double> costs;
  Table lookup;
  double x = costs.raw()[3];  // expect-finding(raw-index)
  x += costs[0];              // expect-finding(raw-index)
  x += lookup[7];             // expect-finding(raw-index)
  x += costs[flow];  // clean: not a bare literal (typed ids pass here)
  return x;
}

}  // namespace fix
