// nondet-source fixtures: libc entropy and wall-clock reads fire;
// member functions that happen to share a libc name stay clean.
#include <cstdlib>
#include <ctime>
#include <random>

namespace fix {

struct Stopwatch {
  double time(int scale) { return 1.0 * scale; }  // clean: declaration
};

double entropy() {
  std::random_device dev;         // expect-finding(nondet-source)
  std::srand(42);                 // expect-finding(nondet-source)
  double r = 1.0 * std::rand();   // expect-finding(nondet-source)
  r += 1.0 * std::time(nullptr);  // expect-finding(nondet-source)
  Stopwatch sw;
  r += sw.time(3);  // clean: member call, not libc time()
  return r + 1.0 * dev();
}

}  // namespace fix
