// steady-clock-only fixture: the former check.sh stage-4b grep ban.
// Spelling system_clock in code fires; comments and string literals do
// not — which is exactly where the old grep misfired.
#include <chrono>

namespace fix {

long long stamp() {
  const auto wall =
      std::chrono::system_clock::now();  // expect-finding(steady-clock-only)
  // A comment mentioning system_clock stays clean.
  const char* label = "system_clock";  // clean: string literal
  (void)label;
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             wall.time_since_epoch())
      .count();
}

}  // namespace fix
