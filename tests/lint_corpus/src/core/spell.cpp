// include-spell fixtures: spelling a corpus type without directly
// including its declaring header fires once per missing header;
// forward declarations stay clean.

namespace fix {

class Gadget;  // clean: forward declaration

int census(const Widget& w) {  // expect-finding(include-spell)
  (void)w;
  Widget* again = nullptr;  // clean: the widgets.hpp miss already fired
  (void)again;
  return 0;
}

}  // namespace fix
