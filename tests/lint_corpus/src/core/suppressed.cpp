// Suppression fixture: the allow() comment silences exactly this rule
// on the line below. lint_test asserts the finding lands in
// result.suppressed under default options and resurfaces when
// suppressions are disabled. Deliberately no expect-finding annotation.
namespace fix {

double tolerated() {
  // ppdc-lint: allow(no-float interop shim needs the narrow type)
  float shim = 1.5f;
  return 1.0 * shim;
}

}  // namespace fix
