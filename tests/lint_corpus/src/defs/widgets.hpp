// Symbol donor for the cross-file fixtures: build_context() over this
// corpus registers Widget, Gadget, and the IndexedVector alias Table as
// declared here. The `defs` directory is deliberately unknown to the
// layering DAG, so including this header never trips include-layering.
#pragma once

namespace fix {

class Widget {};
struct Gadget {};
using Table = IndexedVector<int, double>;

}  // namespace fix
