// no-new-delete fixtures: raw allocation fires; `= delete` members and
// operator new/delete declarations stay clean.
#include <cstddef>

namespace fix {

struct Pinned {
  Pinned() = default;
  Pinned(const Pinned&) = delete;          // clean: deleted function
  void* operator new(std::size_t n);       // clean: operator new
  void operator delete(void* p) noexcept;  // clean: operator delete
};

int* leak() {
  int* p = new int(7);  // expect-finding(no-new-delete)
  delete p;             // expect-finding(no-new-delete)
  return nullptr;
}

}  // namespace fix
