// no-float fixture: cost arithmetic is double-only.
namespace fix {

double narrow() {
  float truncated = 0.25f;  // expect-finding(no-float)
  double kept = 0.25;       // clean: double is the cost type
  return kept + 1.0 * truncated;
}

}  // namespace fix
