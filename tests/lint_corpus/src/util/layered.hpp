// include-layering fixtures: util sits at the bottom of the DAG, so a
// sim include is an upward edge; private libstdc++ headers are banned
// everywhere the tool scans.
#pragma once

#include <bits/stdc++.h>   // expect-finding(include-layering)

#include "sim/runner.hpp"  // expect-finding(include-layering)
