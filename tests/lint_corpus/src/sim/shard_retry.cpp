// Shard-retry bookkeeping fixture (DESIGN.md §15): quarantine/backoff
// state must live in order-stable containers — iterating a hash set of
// quarantined shard ids inside the deterministic scope (src/sim) fires,
// while the fixed-shard-order vector walk the engine actually uses stays
// clean.
#include <cstddef>
#include <unordered_set>
#include <vector>

namespace fix {

struct ShardRetry {
  int fail_streak = 0;
  bool quarantined = false;
};

double drain_retries() {
  std::unordered_set<std::size_t> quarantined;
  quarantined.insert(3);
  double penalty = 0.0;
  for (std::size_t s : quarantined) {  // expect-finding(unordered-iteration)
    penalty += static_cast<double>(s);
  }
  // The engine's spelling: retry state in a fixed shard-order vector.
  std::vector<ShardRetry> runs(4);
  runs[3].quarantined = true;
  for (const ShardRetry& run : runs) {
    if (run.quarantined) penalty += 1.0;
  }
  // Membership probes on the hash set are order-free and stay clean.
  if (quarantined.count(3) != 0) penalty += 1.0;
  return penalty;
}

}  // namespace fix
