// unordered-iteration fixtures: iterating a hash container inside the
// deterministic scope (src/sim) fires; membership probes stay clean.
#include <unordered_map>

namespace fix {

int walk() {
  std::unordered_map<int, int> histogram;
  histogram.emplace(1, 2);
  int total = 0;
  for (const auto& kv : histogram) {  // expect-finding(unordered-iteration)
    total += kv.second;
  }
  auto it = histogram.begin();  // expect-finding(unordered-iteration)
  (void)it;
  // Membership tests are order-free and stay clean.
  if (histogram.find(1) != histogram.end()) ++total;
  return total;
}

}  // namespace fix
