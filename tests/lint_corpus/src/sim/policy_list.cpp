// policy-prototype-const fixture: the former check.sh stage-4 grep ban.
// A mutable raw-pointer policy list reintroduces the shared-instance
// aliasing the SimJob clone refactor removed; the const-prototype
// spelling stays clean.
#include <vector>

namespace fix {

class MigrationPolicy;

void collect() {
  std::vector<MigrationPolicy*> owners;  // expect-finding(policy-prototype-const)
  std::vector<const MigrationPolicy*> prototypes;  // clean: const prototypes
  (void)owners;
  (void)prototypes;
}

}  // namespace fix
