// Tests for the VL2, BCube and DCell builders, plus end-to-end checks
// that the placement/migration machinery works on server-centric fabrics
// (hosts with degree > 1, switch-to-switch paths through servers).
#include <gtest/gtest.h>

#include "core/migration_pareto.hpp"
#include "core/placement_dp.hpp"
#include "graph/apsp.hpp"
#include "topology/bcube.hpp"
#include "topology/dcell.hpp"
#include "topology/vl2.hpp"
#include "workload/vm_placement.hpp"

namespace ppdc {
namespace {

TEST(Vl2, StructureAndDistances) {
  const Topology t = build_vl2(3, 4, 8, 2);
  EXPECT_EQ(t.num_switches(), 3 + 4 + 8);
  EXPECT_EQ(t.num_hosts(), 16);
  EXPECT_TRUE(t.graph.is_connected());
  const AllPairs apsp(t.graph);
  // Same ToR: 2 hops; ToRs sharing an aggregation: 4 hops.
  EXPECT_DOUBLE_EQ(apsp.cost(t.racks[RackIdx{0}][0], t.racks[RackIdx{0}][1]), 2.0);
  EXPECT_DOUBLE_EQ(apsp.cost(t.racks[RackIdx{0}][0], t.racks[RackIdx{1}][0]), 4.0);
}

TEST(Vl2, EveryTorReachesTwoAggregations) {
  const Topology t = build_vl2(2, 4, 6, 1);
  for (const NodeId tor : t.rack_switches) {
    int aggs = 0;
    for (const auto& a : t.graph.neighbors(tor)) {
      if (t.graph.is_switch(a.to)) ++aggs;
    }
    EXPECT_EQ(aggs, 2);
  }
}

TEST(Vl2, RejectsBadShape) {
  EXPECT_THROW(build_vl2(0, 2, 1, 1), PpdcError);
  EXPECT_THROW(build_vl2(1, 1, 1, 1), PpdcError);
  EXPECT_THROW(build_vl2(1, 2, 0, 1), PpdcError);
}

TEST(BCube, CountsMatchFormulas) {
  const Topology t = build_bcube(4, 1);
  EXPECT_EQ(t.num_hosts(), 16);      // n^(k+1)
  EXPECT_EQ(t.num_switches(), 8);    // (k+1) n^k
  EXPECT_TRUE(t.graph.is_connected());
  // Every server has degree k+1 = 2.
  for (const NodeId h : t.graph.hosts()) {
    EXPECT_EQ(t.graph.degree(h), 2u);
  }
  // Every switch has n = 4 ports.
  for (const NodeId s : t.graph.switches()) {
    EXPECT_EQ(t.graph.degree(s), 4u);
  }
}

TEST(BCube, OneHopServerPairsShareASwitch) {
  const Topology t = build_bcube(3, 1);
  const AllPairs apsp(t.graph);
  // Hosts 0 and 1 share the level-0 switch: distance 2.
  EXPECT_DOUBLE_EQ(apsp.cost(t.graph.hosts()[0], t.graph.hosts()[1]), 2.0);
  // Diameter of BCube(n,1) is 2 switch hops via two levels: <= 4.
  EXPECT_LE(apsp.diameter(), 4.0);
}

TEST(BCube, PlacementAndMigrationWorkOnServerCentricFabric) {
  const Topology t = build_bcube(4, 1);
  const AllPairs apsp(t.graph);
  VmPlacementConfig cfg;
  cfg.num_pairs = 8;
  Rng rng(3);
  auto flows = generate_vm_flows(t, cfg, rng);
  CostModel cm(apsp, flows);
  const PlacementResult p = solve_top_dp(cm, 3);
  EXPECT_NO_THROW(validate_placement(t.graph, p.placement));
  // Force a change and migrate; frontiers must pause only on switches
  // even though shortest paths run through servers.
  std::reverse(flows.begin(), flows.end());
  CostModel cm2(apsp, flows);
  const MigrationResult m = solve_tom_pareto(cm2, p.placement, 1.0);
  EXPECT_NO_THROW(validate_placement(t.graph, m.migration));
}

TEST(BCube, RejectsBadShape) {
  EXPECT_THROW(build_bcube(1, 1), PpdcError);
  EXPECT_THROW(build_bcube(4, -1), PpdcError);
  EXPECT_THROW(build_bcube(4, 9), PpdcError);
}

TEST(DCell, CountsAndDegrees) {
  const Topology t = build_dcell1(4);
  EXPECT_EQ(t.num_hosts(), 20);    // n (n+1)
  EXPECT_EQ(t.num_switches(), 5);  // n+1 mini switches
  EXPECT_TRUE(t.graph.is_connected());
  // Every server: 1 switch link + 1 inter-cell link.
  for (const NodeId h : t.graph.hosts()) {
    EXPECT_EQ(t.graph.degree(h), 2u);
  }
}

TEST(DCell, InterCellDistanceUsesServerRelay) {
  const Topology t = build_dcell1(3);
  const AllPairs apsp(t.graph);
  // Two servers wired directly across cells are 1 hop apart.
  // srv0_? <-> srv1_0 for the (0,1) pair: cell 0 server 0 <-> cell 1 server 0.
  const NodeId a = t.racks[RackIdx{0}][0];
  const NodeId b = t.racks[RackIdx{1}][0];
  EXPECT_DOUBLE_EQ(apsp.cost(a, b), 1.0);
}

TEST(DCell, PlacementWorksDespiteFewSwitches) {
  const Topology t = build_dcell1(4);
  const AllPairs apsp(t.graph);
  VmPlacementConfig cfg;
  cfg.num_pairs = 6;
  Rng rng(5);
  const auto flows = generate_vm_flows(t, cfg, rng);
  CostModel cm(apsp, flows);
  const PlacementResult p = solve_top_dp(cm, 3);
  EXPECT_NO_THROW(validate_placement(t.graph, p.placement));
  EXPECT_THROW(solve_top_dp(cm, 6), PpdcError);  // only 5 switches exist
}

TEST(DCell, RejectsBadShape) { EXPECT_THROW(build_dcell1(1), PpdcError); }

}  // namespace
}  // namespace ppdc
