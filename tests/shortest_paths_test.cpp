#include "graph/shortest_paths.hpp"

#include <gtest/gtest.h>

namespace ppdc {
namespace {

/// Square grid of switches for path sanity checks.
Graph grid3x3() {
  Graph g;
  for (int i = 0; i < 9; ++i) g.add_node(NodeKind::kSwitch);
  auto id = [](int r, int c) { return static_cast<NodeId>(r * 3 + c); };
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      if (c + 1 < 3) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < 3) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

TEST(Bfs, DistancesOnGrid) {
  const Graph g = grid3x3();
  const auto r = bfs_shortest_paths(g, 0);
  EXPECT_DOUBLE_EQ(r.dist[0], 0.0);
  EXPECT_DOUBLE_EQ(r.dist[1], 1.0);
  EXPECT_DOUBLE_EQ(r.dist[4], 2.0);
  EXPECT_DOUBLE_EQ(r.dist[8], 4.0);
}

TEST(Bfs, CustomUnit) {
  const Graph g = grid3x3();
  const auto r = bfs_shortest_paths(g, 0, 2.5);
  EXPECT_DOUBLE_EQ(r.dist[8], 10.0);
}

TEST(Bfs, RejectsNonPositiveUnit) {
  const Graph g = grid3x3();
  EXPECT_THROW(bfs_shortest_paths(g, 0, 0.0), PpdcError);
}

TEST(Bfs, UnreachableNode) {
  Graph g;
  g.add_node(NodeKind::kSwitch);
  g.add_node(NodeKind::kSwitch);
  const auto r = bfs_shortest_paths(g, 0);
  EXPECT_EQ(r.dist[1], kUnreachable);
  EXPECT_TRUE(reconstruct_path(r, 0, 1).empty());
}

TEST(Dijkstra, PrefersCheapDetour) {
  Graph g;
  for (int i = 0; i < 3; ++i) g.add_node(NodeKind::kSwitch);
  g.add_edge(0, 2, 10.0);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  const auto r = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(r.dist[2], 3.0);
  const auto path = reconstruct_path(r, 0, 2);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], 0);
  EXPECT_EQ(path[1], 1);
  EXPECT_EQ(path[2], 2);
}

TEST(Dijkstra, MatchesBfsOnUnitWeights) {
  const Graph g = grid3x3();
  const auto d = dijkstra(g, 4);
  const auto b = bfs_shortest_paths(g, 4);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_DOUBLE_EQ(d.dist[static_cast<std::size_t>(v)],
                     b.dist[static_cast<std::size_t>(v)]);
  }
}

TEST(Dijkstra, SourceDistanceZero) {
  const Graph g = grid3x3();
  const auto r = dijkstra(g, 5);
  EXPECT_DOUBLE_EQ(r.dist[5], 0.0);
  EXPECT_EQ(r.parent[5], kInvalidNode);
}

TEST(Dijkstra, RejectsBadSource) {
  const Graph g = grid3x3();
  EXPECT_THROW(dijkstra(g, 99), PpdcError);
  EXPECT_THROW(bfs_shortest_paths(g, -1), PpdcError);
}

TEST(ReconstructPath, TrivialSelfPath) {
  const Graph g = grid3x3();
  const auto r = bfs_shortest_paths(g, 3);
  const auto path = reconstruct_path(r, 3, 3);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], 3);
}

TEST(ReconstructPath, PathEdgesExistAndSumToDistance) {
  const Graph g = grid3x3();
  const auto r = bfs_shortest_paths(g, 0);
  const auto path = reconstruct_path(r, 0, 8);
  ASSERT_GE(path.size(), 2u);
  double sum = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    ASSERT_TRUE(g.has_edge(path[i], path[i + 1]));
    sum += g.edge_weight(path[i], path[i + 1]);
  }
  EXPECT_DOUBLE_EQ(sum, r.dist[8]);
}

}  // namespace
}  // namespace ppdc
