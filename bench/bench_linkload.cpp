// Bandwidth view of the placement problem (the paper's §I motivation,
// quantified): routes all policy-preserving traffic with fractional ECMP
// and compares the link-level congestion produced by the different
// placers. Links are assumed provisioned so that the *no-SFC* traffic
// (direct src->dst routing) peaks at 40% utilization [31]; the table then
// shows what utilization each SFC placement actually drives.
//
// Options: --k --l --n --trials --seed --csv
#include <iostream>

#include "baselines/greedy_liu.hpp"
#include "baselines/steering.hpp"
#include "bench_common.hpp"
#include "core/placement_dp.hpp"
#include "net/link_load.hpp"

int main(int argc, char** argv) {
  using namespace ppdc;
  const Options opts = Options::parse(argc, argv);
  opts.restrict_to({"k", "l", "n", "trials", "seed", "csv"});
  const int k = static_cast<int>(opts.get_int("k", 8));
  const int l = static_cast<int>(opts.get_int("l", 200));
  const int n = static_cast<int>(opts.get_int("n", 5));
  const int trials = static_cast<int>(opts.get_int("trials", 10));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(opts.get_int("seed", 42));

  bench::header("Link-level congestion of SFC placements (ECMP routing)",
                "fat-tree k=" + std::to_string(k) + ", l=" +
                    std::to_string(l) + ", n=" + std::to_string(n) + ", " +
                    std::to_string(trials) +
                    " trials; capacity set so direct traffic peaks at 40%");

  const Topology topo = build_fat_tree(k);
  const AllPairs apsp(topo.graph);

  RunningStats direct_max, dp_max, dp_mean, steer_max, greedy_max;
  for (int t = 0; t < trials; ++t) {
    Rng rng(seed * 1000003 + static_cast<std::uint64_t>(t));
    const auto flows = bench::paper_workload(topo, l, rng);
    CostModel cm(apsp, flows);

    // Baseline provisioning: direct src->dst traffic without any SFC.
    LinkLoadMap direct(topo.graph);
    for (const auto& f : flows) {
      route_ecmp(apsp, f.src_host, f.dst_host, f.rate, direct);
    }
    const double capacity = direct.max_load() / 0.4;  // 40% rule [31]
    direct_max.add(direct.max_utilization(capacity));

    const LinkLoadMap dp = policy_link_load(
        apsp, flows, solve_top_dp(cm, n).placement);
    dp_max.add(dp.max_utilization(capacity));
    dp_mean.add(dp.mean_load() / capacity);
    steer_max.add(policy_link_load(apsp, flows,
                                   solve_top_steering(cm, n).placement)
                      .max_utilization(capacity));
    greedy_max.add(policy_link_load(apsp, flows,
                                    solve_top_greedy_liu(cm, n).placement)
                       .max_utilization(capacity));
  }

  TablePrinter table({"routing", "max link utilization", "note"});
  auto pct = [](const RunningStats& s) {
    return TablePrinter::num_ci(100.0 * s.mean(),
                                100.0 * s.ci95_halfwidth(), 1) + " %";
  };
  table.add_row({"direct (no SFC)", pct(direct_max),
                 "provisioning anchor (40%)"});
  table.add_row({"SFC via DP placement", pct(dp_max),
                 "mean util " + TablePrinter::num(100.0 * dp_mean.mean(), 1) +
                     " %"});
  table.add_row({"SFC via Steering", pct(steer_max), ""});
  table.add_row({"SFC via Greedy", pct(greedy_max), ""});
  if (opts.get_bool("csv", false)) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nreading: forcing traffic through the SFC multiplies link "
               "load (the paper's 'traffic storm'). The objectives pull "
               "apart here: Eq. 1 minimizes *total* hop-traffic (lowest "
               "mean utilization, the DP row) but funnels every flow "
               "through the chain's few links, while the core-parked "
               "baselines fan traffic over many equal-cost core links — "
               "lower peak, higher total. Bandwidth-aware VNF placement "
               "is a genuine open extension of the paper's model.\n";
  return 0;
}
