// Shared plumbing for the figure-reproduction harnesses: workload
// construction per §VI's experiment setup, result-table helpers, and the
// robustness wiring (crash-safe checkpointing, failure containment,
// SIGINT/SIGTERM handling — DESIGN.md §10) every experiment driver shares.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#if defined(PPDC_HAVE_OPENMP)
#include <omp.h>
#endif

#include "graph/apsp.hpp"
#include "sim/experiment.hpp"
#include "topology/fat_tree.hpp"
#include "util/checksum.hpp"
#include "util/options.hpp"
#include "util/rss.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/vm_placement.hpp"

namespace ppdc::bench {

/// Formats a byte count as MiB with one decimal, or "n/a" for the 0 the
/// RSS probes return on platforms without /proc/self/status.
inline std::string mib(std::size_t bytes, int precision = 1) {
  if (bytes == 0) return "n/a";
  return TablePrinter::num(static_cast<double>(bytes) / (1024.0 * 1024.0),
                           precision);
}

/// Standard memory footer under every result table: peak RSS of the whole
/// process so far (util/rss.hpp). Reporting-only — the value never feeds
/// a fingerprint or artifact checksum.
inline void print_rss_footer(std::ostream& os) {
  os << "peak RSS: " << mib(peak_rss_bytes()) << " MiB\n";
}

/// §VI experiment setup: fat-tree of arity k, VM pairs with 80% rack
/// locality and Facebook-like rates. `rack_zipf_s` adds tenant skew for
/// the dynamic experiments (see VmPlacementConfig::rack_zipf_s).
inline std::vector<VmFlow> paper_workload(const Topology& topo, int l,
                                          Rng& rng,
                                          double rack_zipf_s = 0.0) {
  VmPlacementConfig cfg;
  cfg.num_pairs = l;
  cfg.intra_rack_fraction = 0.8;
  cfg.rack_zipf_s = rack_zipf_s;
  return generate_vm_flows(topo, cfg, rng);
}

/// Prints the standard harness header: what figure, what setup.
inline void header(const std::string& figure, const std::string& setup) {
  print_banner(std::cout, figure);
  std::cout << "setup: " << setup << "\n\n";
}

/// Shared --threads option of the experiment benches: worker threads of
/// the SimJob pool (0 / absent = auto, see ExperimentConfig::threads).
inline int threads_option(const Options& opts) {
  return static_cast<int>(opts.get_int("threads", 0));
}

/// Header label for the resolved thread count: "4", or "auto(8)" when the
/// pool size was derived from hardware concurrency.
inline std::string threads_label(int requested) {
  const int resolved = resolve_experiment_threads(requested);
  if (requested >= 1) return std::to_string(resolved);
  return "auto(" + std::to_string(resolved) + ")";
}

/// Formats a MeanCi cell.
inline std::string cell(const MeanCi& mc, int precision = 0) {
  return TablePrinter::num_ci(mc.mean, mc.ci95, precision);
}

/// Formats a MeanCi cell of a policy row, marking it absent ("n/a") when
/// keep_going quarantined every trial of that policy — an all-failed cell
/// must never render as a zero-cost result.
inline std::string cell(const PolicyStats& s, const MeanCi& mc,
                        int precision = 0) {
  if (s.completed_trials == 0) return "n/a";
  return cell(mc, precision);
}

// ---------------------------------------------------------------------------
// Robustness wiring (DESIGN.md §10): --checkpoint / --keep-going /
// --retries options, the SIGINT/SIGTERM cancellation flag, and the
// interrupted-run exit path shared by every experiment driver.
// ---------------------------------------------------------------------------

/// Process-wide cooperative cancellation flag, flipped by the signal
/// handler below and wired into SimConfig::cancel.
inline std::atomic<bool>& cancel_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

namespace detail {
inline void request_cancel(int /*signum*/) {
  // Lock-free atomic store: async-signal-safe. The experiment runner
  // flushes the journal per completed job, so there is nothing else to
  // save here — the workers notice the flag at the next epoch boundary.
  cancel_flag().store(true, std::memory_order_relaxed);
}
}  // namespace detail

/// Installs SIGINT/SIGTERM handlers that request a cooperative stop: the
/// run finishes its journal record in flight, then run_experiment throws
/// ExperimentInterrupted (handled by run_or_exit below).
inline void install_signal_handlers() {
  std::signal(SIGINT, &detail::request_cancel);
  std::signal(SIGTERM, &detail::request_cancel);
}

/// The three robustness options every experiment driver exposes.
struct RobustnessOptions {
  std::string checkpoint;  ///< journal base path ("" = no checkpointing)
  bool keep_going = false;
  int retries = 0;
};

inline RobustnessOptions robustness_options(const Options& opts) {
  RobustnessOptions r;
  r.checkpoint = opts.get_string("checkpoint", "");
  r.keep_going = opts.get_bool("keep-going", false);
  r.retries = static_cast<int>(opts.get_int("retries", 0));
  return r;
}

/// Derives the journal path of one experiment section from the driver's
/// --checkpoint base. Drivers that run several differently-configured
/// experiments (e.g. fig11's panels) must give each its own journal —
/// they have different fingerprints and would reject a shared file.
inline std::string checkpoint_for(const std::string& base,
                                  const std::string& tag) {
  if (base.empty()) return "";
  if (tag.empty()) return base;
  return base + "." + tag;
}

/// Applies the robustness options to one experiment section and wires the
/// signal-driven cancellation flag into the simulation.
inline void apply_robustness(ExperimentConfig& cfg,
                             const RobustnessOptions& r,
                             const std::string& tag = "") {
  cfg.checkpoint_path = checkpoint_for(r.checkpoint, tag);
  cfg.keep_going = r.keep_going;
  cfg.retry_limit = r.retries;
  cfg.sim.cancel = &cancel_flag();
}

/// Reports quarantined cells of a keep-going run on stderr (stdout stays
/// reserved for the result tables, which must diff clean across resumes).
inline void report_failures(const std::vector<PolicyStats>& stats) {
  for (const PolicyStats& s : stats) {
    for (const JobFailure& f : s.failures) {
      std::cerr << "warning: policy '" << s.name << "' trial " << f.trial
                << " quarantined after " << f.attempts
                << " attempt(s): " << f.error << "\n";
    }
    if (!s.failures.empty()) {
      std::cerr << "warning: policy '" << s.name << "' aggregates "
                << s.completed_trials << " of "
                << s.completed_trials + static_cast<int>(s.failures.size())
                << " trials\n";
    }
  }
}

/// run_experiment with the drivers' shared interrupted-run exit path: on
/// ExperimentInterrupted (SIGINT/SIGTERM), print the partial per-policy
/// summary on stderr and exit 130 — the journal already holds every
/// completed job, so rerunning the same command resumes. Failure reports
/// of keep-going runs are printed as a side effect.
inline std::vector<PolicyStats> run_or_exit(
    const Topology& topo, const AllPairs& apsp, const ExperimentConfig& cfg,
    const std::vector<const MigrationPolicy*>& policies) {
  try {
    std::vector<PolicyStats> stats =
        run_experiment(topo, apsp, cfg, policies);
    report_failures(stats);
    return stats;
  } catch (const ExperimentInterrupted& e) {
    std::cerr << "\ninterrupted: " << e.what() << "\n"
              << e.partial_summary();
    std::exit(130);
  }
}

// ---------------------------------------------------------------------------
// Perf-trajectory artifacts (EXPERIMENTS.md "BENCH artifacts"): pinned-
// scenario kernel timings written as BENCH_<kernel>.json, with enough
// build and scenario metadata that tools/bench_compare can *reject*
// apples-to-oranges comparisons (different build type, flags, compiler,
// -march=native, thread count) instead of silently passing them, and can
// flag output-checksum drift as a correctness failure rather than a
// perf number.
// ---------------------------------------------------------------------------

// Build metadata is baked in by bench/CMakeLists.txt for micro_kernels;
// the fallbacks keep bench_common.hpp self-contained for every other TU.
#ifndef PPDC_BENCH_BUILD_TYPE
#define PPDC_BENCH_BUILD_TYPE "unknown"
#endif
#ifndef PPDC_BENCH_CXX_FLAGS
#define PPDC_BENCH_CXX_FLAGS ""
#endif
#ifndef PPDC_BENCH_COMPILER
#define PPDC_BENCH_COMPILER "unknown"
#endif
#ifndef PPDC_BENCH_NATIVE
#define PPDC_BENCH_NATIVE 0
#endif

/// Build provenance of a BENCH artifact. Two artifacts are comparable
/// only when every field matches — a Release baseline must never be
/// compared against a RelWithDebInfo (or -march=native) run.
struct BenchBuildInfo {
  std::string build_type;
  std::string cxx_flags;
  std::string compiler;
  bool native = false;
  int threads = 1;
};

inline BenchBuildInfo bench_build_info() {
  BenchBuildInfo b;
  b.build_type = PPDC_BENCH_BUILD_TYPE;
  b.cxx_flags = PPDC_BENCH_CXX_FLAGS;
  b.compiler = PPDC_BENCH_COMPILER;
  b.native = PPDC_BENCH_NATIVE != 0;
#if defined(PPDC_HAVE_OPENMP)
  b.threads = omp_get_max_threads();
#else
  b.threads = 1;
#endif
  return b;
}

/// Calibrated timing of one kernel: per-iteration nanoseconds over
/// `repetitions` repetitions of `iterations` calls each. best_ns (the
/// minimum) is the regression-gate statistic — it is robust against
/// scheduler noise, which only ever makes a repetition slower.
struct KernelTiming {
  std::uint64_t iterations = 1;
  int repetitions = 0;
  double best_ns = 0.0;
  double median_ns = 0.0;
  double mean_ns = 0.0;
};

template <typename Fn>
KernelTiming time_kernel(Fn&& fn, bool smoke) {
  using clock = std::chrono::steady_clock;
  const auto elapsed_ns = [](clock::time_point t0) {
    return std::chrono::duration<double, std::nano>(clock::now() - t0)
        .count();
  };
  // Smoke mode (the check.sh gate) trades precision for runtime; full
  // mode (baseline refresh) spends ~0.5 s per kernel for tight minima.
  const double min_rep_ns = smoke ? 2e6 : 5e7;
  const int reps = smoke ? 3 : 11;
  constexpr std::uint64_t kMaxIters = 1u << 20;

  fn();  // warm-up: faults pages, fills caches, materializes lazy state

  // Calibrate the iteration count until one repetition meets min_rep_ns.
  std::uint64_t iters = 1;
  for (;;) {
    const auto t0 = clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) fn();
    const double ns = elapsed_ns(t0);
    if (ns >= min_rep_ns || iters >= kMaxIters) break;
    const double per = std::max(ns / static_cast<double>(iters), 1.0);
    const auto want =
        static_cast<std::uint64_t>(min_rep_ns * 1.2 / per) + 1;
    iters = std::min(kMaxIters, std::max(want, iters * 2));
  }

  std::vector<double> per_iter;
  per_iter.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto t0 = clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) fn();
    per_iter.push_back(elapsed_ns(t0) / static_cast<double>(iters));
  }
  std::sort(per_iter.begin(), per_iter.end());

  KernelTiming t;
  t.iterations = iters;
  t.repetitions = reps;
  t.best_ns = per_iter.front();
  t.median_ns = per_iter[per_iter.size() / 2];
  t.mean_ns = 0.0;
  for (const double v : per_iter) t.mean_ns += v;
  t.mean_ns /= static_cast<double>(per_iter.size());
  return t;
}

/// One pinned-scenario measurement. `fingerprint` hashes the scenario
/// parameters (topology arity, workload size, seeds, n, mu) so a baseline
/// from an edited scenario cannot be compared against the new one;
/// `checksum` hashes the kernel's *outputs* bit-exactly, so the artifact
/// doubles as a cross-PR equivalence check on the hot kernels.
struct BenchRecord {
  std::string kernel;
  std::string scenario;  ///< human-readable pinned-scenario description
  std::uint64_t fingerprint = 0;
  std::uint64_t checksum = 0;
  KernelTiming timing;
};

inline std::string bench_hex64(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << std::setw(16) << std::setfill('0') << v;
  return os.str();
}

/// Writes BENCH_<kernel>.json under `dir`. Line-oriented on purpose: one
/// `"key": value` pair per line, so tools/bench_compare can parse it with
/// a scanner instead of a JSON library (none is baked into the image).
inline bool write_bench_json(const std::string& dir, const BenchRecord& rec,
                             const BenchBuildInfo& build, bool smoke) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/BENCH_" + rec.kernel + ".json";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "error: cannot write " << path << "\n";
    return false;
  }
  const auto ns = [](double v) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(1) << v;
    return os.str();
  };
  out << "{\n"
      << "  \"schema\": 1,\n"
      << "  \"kernel\": \"" << rec.kernel << "\",\n"
      << "  \"scenario\": \"" << rec.scenario << "\",\n"
      << "  \"fingerprint\": \"" << bench_hex64(rec.fingerprint) << "\",\n"
      << "  \"checksum\": \"" << bench_hex64(rec.checksum) << "\",\n"
      << "  \"build_type\": \"" << build.build_type << "\",\n"
      << "  \"cxx_flags\": \"" << build.cxx_flags << "\",\n"
      << "  \"compiler\": \"" << build.compiler << "\",\n"
      << "  \"native\": " << (build.native ? "true" : "false") << ",\n"
      << "  \"threads\": " << build.threads << ",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"iterations\": " << rec.timing.iterations << ",\n"
      << "  \"repetitions\": " << rec.timing.repetitions << ",\n"
      << "  \"best_ns\": " << ns(rec.timing.best_ns) << ",\n"
      << "  \"median_ns\": " << ns(rec.timing.median_ns) << ",\n"
      << "  \"mean_ns\": " << ns(rec.timing.mean_ns) << "\n"
      << "}\n";
  return static_cast<bool>(out);
}

}  // namespace ppdc::bench
