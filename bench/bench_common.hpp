// Shared plumbing for the figure-reproduction harnesses: workload
// construction per §VI's experiment setup, result-table helpers, and the
// robustness wiring (crash-safe checkpointing, failure containment,
// SIGINT/SIGTERM handling — DESIGN.md §10) every experiment driver shares.
#pragma once

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "graph/apsp.hpp"
#include "sim/experiment.hpp"
#include "topology/fat_tree.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/vm_placement.hpp"

namespace ppdc::bench {

/// §VI experiment setup: fat-tree of arity k, VM pairs with 80% rack
/// locality and Facebook-like rates. `rack_zipf_s` adds tenant skew for
/// the dynamic experiments (see VmPlacementConfig::rack_zipf_s).
inline std::vector<VmFlow> paper_workload(const Topology& topo, int l,
                                          Rng& rng,
                                          double rack_zipf_s = 0.0) {
  VmPlacementConfig cfg;
  cfg.num_pairs = l;
  cfg.intra_rack_fraction = 0.8;
  cfg.rack_zipf_s = rack_zipf_s;
  return generate_vm_flows(topo, cfg, rng);
}

/// Prints the standard harness header: what figure, what setup.
inline void header(const std::string& figure, const std::string& setup) {
  print_banner(std::cout, figure);
  std::cout << "setup: " << setup << "\n\n";
}

/// Shared --threads option of the experiment benches: worker threads of
/// the SimJob pool (0 / absent = auto, see ExperimentConfig::threads).
inline int threads_option(const Options& opts) {
  return static_cast<int>(opts.get_int("threads", 0));
}

/// Header label for the resolved thread count: "4", or "auto(8)" when the
/// pool size was derived from hardware concurrency.
inline std::string threads_label(int requested) {
  const int resolved = resolve_experiment_threads(requested);
  if (requested >= 1) return std::to_string(resolved);
  return "auto(" + std::to_string(resolved) + ")";
}

/// Formats a MeanCi cell.
inline std::string cell(const MeanCi& mc, int precision = 0) {
  return TablePrinter::num_ci(mc.mean, mc.ci95, precision);
}

/// Formats a MeanCi cell of a policy row, marking it absent ("n/a") when
/// keep_going quarantined every trial of that policy — an all-failed cell
/// must never render as a zero-cost result.
inline std::string cell(const PolicyStats& s, const MeanCi& mc,
                        int precision = 0) {
  if (s.completed_trials == 0) return "n/a";
  return cell(mc, precision);
}

// ---------------------------------------------------------------------------
// Robustness wiring (DESIGN.md §10): --checkpoint / --keep-going /
// --retries options, the SIGINT/SIGTERM cancellation flag, and the
// interrupted-run exit path shared by every experiment driver.
// ---------------------------------------------------------------------------

/// Process-wide cooperative cancellation flag, flipped by the signal
/// handler below and wired into SimConfig::cancel.
inline std::atomic<bool>& cancel_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

namespace detail {
inline void request_cancel(int /*signum*/) {
  // Lock-free atomic store: async-signal-safe. The experiment runner
  // flushes the journal per completed job, so there is nothing else to
  // save here — the workers notice the flag at the next epoch boundary.
  cancel_flag().store(true, std::memory_order_relaxed);
}
}  // namespace detail

/// Installs SIGINT/SIGTERM handlers that request a cooperative stop: the
/// run finishes its journal record in flight, then run_experiment throws
/// ExperimentInterrupted (handled by run_or_exit below).
inline void install_signal_handlers() {
  std::signal(SIGINT, &detail::request_cancel);
  std::signal(SIGTERM, &detail::request_cancel);
}

/// The three robustness options every experiment driver exposes.
struct RobustnessOptions {
  std::string checkpoint;  ///< journal base path ("" = no checkpointing)
  bool keep_going = false;
  int retries = 0;
};

inline RobustnessOptions robustness_options(const Options& opts) {
  RobustnessOptions r;
  r.checkpoint = opts.get_string("checkpoint", "");
  r.keep_going = opts.get_bool("keep-going", false);
  r.retries = static_cast<int>(opts.get_int("retries", 0));
  return r;
}

/// Derives the journal path of one experiment section from the driver's
/// --checkpoint base. Drivers that run several differently-configured
/// experiments (e.g. fig11's panels) must give each its own journal —
/// they have different fingerprints and would reject a shared file.
inline std::string checkpoint_for(const std::string& base,
                                  const std::string& tag) {
  if (base.empty()) return "";
  if (tag.empty()) return base;
  return base + "." + tag;
}

/// Applies the robustness options to one experiment section and wires the
/// signal-driven cancellation flag into the simulation.
inline void apply_robustness(ExperimentConfig& cfg,
                             const RobustnessOptions& r,
                             const std::string& tag = "") {
  cfg.checkpoint_path = checkpoint_for(r.checkpoint, tag);
  cfg.keep_going = r.keep_going;
  cfg.retry_limit = r.retries;
  cfg.sim.cancel = &cancel_flag();
}

/// Reports quarantined cells of a keep-going run on stderr (stdout stays
/// reserved for the result tables, which must diff clean across resumes).
inline void report_failures(const std::vector<PolicyStats>& stats) {
  for (const PolicyStats& s : stats) {
    for (const JobFailure& f : s.failures) {
      std::cerr << "warning: policy '" << s.name << "' trial " << f.trial
                << " quarantined after " << f.attempts
                << " attempt(s): " << f.error << "\n";
    }
    if (!s.failures.empty()) {
      std::cerr << "warning: policy '" << s.name << "' aggregates "
                << s.completed_trials << " of "
                << s.completed_trials + static_cast<int>(s.failures.size())
                << " trials\n";
    }
  }
}

/// run_experiment with the drivers' shared interrupted-run exit path: on
/// ExperimentInterrupted (SIGINT/SIGTERM), print the partial per-policy
/// summary on stderr and exit 130 — the journal already holds every
/// completed job, so rerunning the same command resumes. Failure reports
/// of keep-going runs are printed as a side effect.
inline std::vector<PolicyStats> run_or_exit(
    const Topology& topo, const AllPairs& apsp, const ExperimentConfig& cfg,
    const std::vector<const MigrationPolicy*>& policies) {
  try {
    std::vector<PolicyStats> stats =
        run_experiment(topo, apsp, cfg, policies);
    report_failures(stats);
    return stats;
  } catch (const ExperimentInterrupted& e) {
    std::cerr << "\ninterrupted: " << e.what() << "\n"
              << e.partial_summary();
    std::exit(130);
  }
}

}  // namespace ppdc::bench
