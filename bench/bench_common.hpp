// Shared plumbing for the figure-reproduction harnesses: workload
// construction per §VI's experiment setup, and result-table helpers.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "graph/apsp.hpp"
#include "sim/experiment.hpp"
#include "topology/fat_tree.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/vm_placement.hpp"

namespace ppdc::bench {

/// §VI experiment setup: fat-tree of arity k, VM pairs with 80% rack
/// locality and Facebook-like rates. `rack_zipf_s` adds tenant skew for
/// the dynamic experiments (see VmPlacementConfig::rack_zipf_s).
inline std::vector<VmFlow> paper_workload(const Topology& topo, int l,
                                          Rng& rng,
                                          double rack_zipf_s = 0.0) {
  VmPlacementConfig cfg;
  cfg.num_pairs = l;
  cfg.intra_rack_fraction = 0.8;
  cfg.rack_zipf_s = rack_zipf_s;
  return generate_vm_flows(topo, cfg, rng);
}

/// Prints the standard harness header: what figure, what setup.
inline void header(const std::string& figure, const std::string& setup) {
  print_banner(std::cout, figure);
  std::cout << "setup: " << setup << "\n\n";
}

/// Shared --threads option of the experiment benches: worker threads of
/// the SimJob pool (0 / absent = auto, see ExperimentConfig::threads).
inline int threads_option(const Options& opts) {
  return static_cast<int>(opts.get_int("threads", 0));
}

/// Header label for the resolved thread count: "4", or "auto(8)" when the
/// pool size was derived from hardware concurrency.
inline std::string threads_label(int requested) {
  const int resolved = resolve_experiment_threads(requested);
  if (requested >= 1) return std::to_string(resolved);
  return "auto(" + std::to_string(resolved) + ")";
}

/// Formats a MeanCi cell.
inline std::string cell(const MeanCi& mc, int precision = 0) {
  return TablePrinter::num_ci(mc.mean, mc.ci95, precision);
}

}  // namespace ppdc::bench
