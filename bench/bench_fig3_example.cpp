// Reproduces the worked example of Fig. 1 / Fig. 3 / Example 1: a k=2
// fat-tree (equivalently the 5-switch linear PPDC), two co-located VM
// pairs, SFC (f1, f2), μ = 1. Prints every number quoted in the paper's
// §I and §III walk-through.
#include <iostream>

#include "bench_common.hpp"
#include "core/chain_search.hpp"
#include "core/migration_pareto.hpp"
#include "core/placement_dp.hpp"
#include "topology/linear.hpp"

int main() {
  using namespace ppdc;
  bench::header("Fig. 1 / Fig. 3 / Example 1 — worked example",
                "linear PPDC with 5 switches (== k=2 fat-tree), "
                "flows (v1,v1') on h1 and (v2,v2') on h2, mu = 1, n = 2");

  const Topology topo = build_linear(5);
  const AllPairs apsp(topo.graph);
  const NodeId h1 = topo.graph.hosts()[0];
  const NodeId h2 = topo.graph.hosts()[1];

  TablePrinter table({"step", "quantity", "paper", "measured"});

  // (a) initial optimal placement under lambda = <100, 1>.
  std::vector<VmFlow> flows{{h1, h1, 100.0}, {h2, h2, 1.0}};
  CostModel cm(apsp, flows);
  const PlacementResult initial = solve_top_dp(cm, 2);
  table.add_row({"Fig.3(a)", "C_a of initial optimal placement", "410",
                 TablePrinter::num(initial.comm_cost, 0)});

  // (b) traffic flips to <1, 100>; the old placement becomes expensive.
  set_rates(flows, {1.0, 100.0});
  cm.refresh();
  table.add_row({"Fig.3(b)", "C_a of stale placement after flip", "1004",
                 TablePrinter::num(cm.communication_cost(initial.placement),
                                   0)});

  // (c)+(d) mPareto migrates f1 -> s5, f2 -> s4.
  const MigrationResult moved = solve_tom_pareto(cm, initial.placement, 1.0);
  table.add_row({"Fig.3(c)", "VNF migration cost C_b", "6",
                 TablePrinter::num(moved.migration_cost, 0)});
  table.add_row({"Fig.3(d)", "C_a after migration", "410",
                 TablePrinter::num(moved.comm_cost, 0)});
  table.add_row({"Fig.3(d)", "total cost C_t", "416",
                 TablePrinter::num(moved.total_cost, 0)});
  const double reduction =
      100.0 * (1.0 - moved.total_cost /
                         cm.communication_cost(initial.placement));
  table.add_row({"Fig.3", "total cost reduction (%)", "58.6",
                 TablePrinter::num(reduction, 1)});

  // Cross-check against the exhaustive TOM optimum (Algorithm 6).
  const ChainSearchResult opt =
      solve_tom_exhaustive(cm, initial.placement, 1.0);
  table.add_row({"check", "exhaustive TOM optimum C_t", "416",
                 TablePrinter::num(opt.objective, 0)});

  table.print(std::cout);
  std::cout << "\nmigration chosen: ";
  for (const NodeId w : moved.migration) {
    std::cout << topo.graph.label(w) << " ";
  }
  std::cout << "(paper migrates to s5, s4; the mirror s4, s5 ties at 416)\n";
  return 0;
}
