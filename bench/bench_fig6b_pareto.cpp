// Fig. 6(b): the VNF-migration Pareto front. On a k=16 fat-tree with an
// SFC of n = 6 VNFs and migration coefficient μ = 200, the paper plots
// C_b(p, m) against C_a(m) for every parallel migration frontier and
// observes a convex Pareto front (the premise of Theorem 5).
//
// Options: --k --l --n --mu --seed --csv
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "core/migration_pareto.hpp"
#include "core/pareto_front.hpp"
#include "core/placement_dp.hpp"
#include "workload/diurnal.hpp"

int main(int argc, char** argv) {
  using namespace ppdc;
  const Options opts = Options::parse(argc, argv);
  opts.restrict_to({"k", "l", "n", "mu", "seed", "zipf", "csv"});
  const int k = static_cast<int>(opts.get_int("k", 16));
  const int l = static_cast<int>(opts.get_int("l", 500));
  const int n = static_cast<int>(opts.get_int("n", 6));
  const double mu = opts.get_double("mu", 200.0);
  const double zipf = opts.get_double("zipf", 2.2);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(opts.get_int("seed", 42));

  bench::header("Fig. 6(b) — Pareto front of parallel migration frontiers",
                "fat-tree k=" + std::to_string(k) + ", n=" +
                    std::to_string(n) + ", mu=" + TablePrinter::num(mu, 0) +
                    ", l=" + std::to_string(l));

  const Topology topo = build_fat_tree(k);
  const AllPairs apsp(topo.graph);
  Rng rng(seed);
  auto flows = bench::paper_workload(topo, l, rng, zipf);
  CostModel cm(apsp, flows);

  // Initial optimal placement while the east-coast half of the fabric is
  // at its peak, then the diurnal shift to the west-coast peak (Eq. 9 with
  // spatially grouped tenants): the traffic center of mass moves across
  // pods, so the fresh optimum p' sits far from p and the frontier
  // trade-off of Fig. 6(b) appears.
  TopDpOptions dp_opts;
  dp_opts.candidate_limit = k >= 16 ? 48 : 0;
  const DiurnalModel diurnal;
  const std::vector<double> base = rates_of(flows);
  std::vector<int> groups;
  for (const auto& f : flows) groups.push_back(f.group);
  set_rates(flows, diurnal_rates_grouped(diurnal, base, groups, Hour{5}));
  cm.refresh();
  const PlacementResult initial = solve_top_dp(cm, n, dp_opts);
  set_rates(flows, diurnal_rates_grouped(diurnal, base, groups, Hour{10}));
  cm.refresh();

  ParetoMigrationOptions mig_opts;
  mig_opts.placement = dp_opts;
  const MigrationResult r =
      solve_tom_pareto(cm, initial.placement, mu, mig_opts);

  TablePrinter table({"frontier", "C_b (migration)", "C_a (communication)",
                      "C_t (total)", "collision-free"});
  for (std::size_t i = 0; i < r.frontier_points.size(); ++i) {
    const auto& p = r.frontier_points[i];
    table.add_row({std::to_string(i + 1), TablePrinter::num(p.migration_cost, 0),
                   TablePrinter::num(p.comm_cost, 0),
                   TablePrinter::num(p.migration_cost + p.comm_cost, 0),
                   p.collision_free ? "yes" : "no"});
  }
  if (opts.get_bool("csv", false)) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  const auto front = pareto_front(r.frontier_points);
  std::cout << "\nPareto front size: " << front.size()
            << "  (mutually non-dominated: "
            << (is_mutually_nondominated(front) ? "yes" : "no")
            << ", convex: " << (is_convex_front(front) ? "yes" : "no")
            << ")\n";
  std::cout << "mPareto pick: C_b=" << TablePrinter::num(r.migration_cost, 0)
            << "  C_a=" << TablePrinter::num(r.comm_cost, 0)
            << "  C_t=" << TablePrinter::num(r.total_cost, 0) << "  ("
            << r.vnfs_moved << " of " << n << " VNFs moved)\n";
  std::cout << "paper shape: C_a falls as C_b rises along the frontiers; "
               "the front is convex so Theorem 5's scalarization is "
               "optimal over the front.\n";
  return 0;
}
