// Fig. 8: the daily VM traffic-rate pattern of Eq. 9 — N = 12 working
// hours, τ_min = 0.2, and the 3-hour east/west coast offset. Prints the
// per-hour scale factors for both coasts and the fleet average, which is
// exactly the curve plotted in the paper.
#include <iostream>

#include "bench_common.hpp"
#include "workload/diurnal.hpp"

int main(int argc, char** argv) {
  using namespace ppdc;
  const Options opts = Options::parse(argc, argv);
  opts.restrict_to({"hours", "tau_min", "offset", "csv"});
  DiurnalModel model;
  model.hours_per_day = static_cast<int>(opts.get_int("hours", 12));
  model.tau_min = opts.get_double("tau_min", 0.2);
  model.coast_offset = static_cast<int>(opts.get_int("offset", 3));

  bench::header(
      "Fig. 8 — daily traffic rate pattern (Eq. 9)",
      "N=" + std::to_string(model.hours_per_day) +
          ", tau_min=" + TablePrinter::num(model.tau_min, 2) +
          ", west coast lags " + std::to_string(model.coast_offset) + "h");

  TablePrinter table({"hour", "tau_h (Eq.9)", "east-coast scale",
                      "west-coast scale", "fleet average"});
  for (int h = 0; h <= model.hours_per_day; ++h) {
    const Hour hour{h};
    const double east = model.scale_for_flow(hour, FlowId{0});
    const double west = model.scale_for_flow(hour, FlowId{1});
    table.add_row({std::to_string(h), TablePrinter::num(model.tau(hour), 3),
                   TablePrinter::num(east, 3), TablePrinter::num(west, 3),
                   TablePrinter::num(0.5 * (east + west), 3)});
  }
  if (opts.get_bool("csv", false)) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\npaper shape: ramp from tau_min at 6AM to 1.0 at noon and "
               "back, west coast shifted 3 hours.\n";
  return 0;
}
