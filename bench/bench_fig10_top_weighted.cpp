// Fig. 10: VNF placement on *weighted* PPDCs. Link delays follow the
// setup of Greedy/Liu [34]: uniform with mean 1.5 ms and variance 0.5 ms.
// Sweeps the SFC length n and reports Optimal / DP / Greedy / Steering.
//
// Expected shape (paper): DP within 6-12% of Optimal and 56-64% below
// Steering and Greedy.
//
// Options: --k --trials --l --nvalues --seed --csv
#include <iostream>
#include <sstream>

#include "baselines/greedy_liu.hpp"
#include "baselines/steering.hpp"
#include "bench_common.hpp"
#include "core/chain_search.hpp"
#include "core/placement_dp.hpp"
#include "topology/weights.hpp"

namespace {
std::vector<int> parse_list(const std::string& csv) {
  std::vector<int> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stoi(item));
  return out;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace ppdc;
  const Options opts = Options::parse(argc, argv);
  opts.restrict_to({"k", "trials", "l", "nvalues", "seed", "csv"});
  const int k = static_cast<int>(opts.get_int("k", 8));
  const int trials = static_cast<int>(opts.get_int("trials", 20));
  const int l = static_cast<int>(opts.get_int("l", 200));
  const auto n_values = parse_list(opts.get_string("nvalues", "3,5,7,9,11,13"));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(opts.get_int("seed", 42));

  bench::header("Fig. 10 — TOP placement on weighted PPDCs vs n",
                "fat-tree k=" + std::to_string(k) +
                    ", link delays uniform(mean 1.5, var 0.5) per [34], l=" +
                    std::to_string(l) + ", " + std::to_string(trials) +
                    " runs, 95% CI");

  TablePrinter table({"n", "Optimal", "DP", "Greedy[34]", "Steering[55]",
                      "DP/Opt", "DP/Steering"});
  for (const int n : n_values) {
    RunningStats opt_s, dp_s, greedy_s, steering_s;
    bool all_proven = true;
    for (int t = 0; t < trials; ++t) {
      // Paired trials: identical delays and flows for every n.
      Rng rng(seed * 1000003 + static_cast<std::uint64_t>(t));
      // Fresh random delays per run, as in the paper's averaged setup.
      Topology topo = build_fat_tree(k);
      apply_uniform_delay_weights(topo.graph, rng(), 1.5, 0.5);
      const AllPairs apsp(topo.graph);
      const auto flows = bench::paper_workload(topo, l, rng);
      CostModel cm(apsp, flows);
      const PlacementResult dp = solve_top_dp(cm, n);
      dp_s.add(dp.comm_cost);
      greedy_s.add(solve_top_greedy_liu(cm, n).comm_cost);
      steering_s.add(solve_top_steering(cm, n).comm_cost);
      ChainSearchConfig cfg;
      cfg.initial = dp.placement;
      cfg.node_budget = 50'000'000;
      const ChainSearchResult opt = solve_top_exhaustive(cm, n, cfg);
      all_proven = all_proven && opt.proven_optimal;
      opt_s.add(opt.objective);
    }
    table.add_row(
        {std::to_string(n) + (all_proven ? "" : "*"),
         bench::cell({opt_s.mean(), opt_s.ci95_halfwidth()}),
         bench::cell({dp_s.mean(), dp_s.ci95_halfwidth()}),
         bench::cell({greedy_s.mean(), greedy_s.ci95_halfwidth()}),
         bench::cell({steering_s.mean(), steering_s.ci95_halfwidth()}),
         TablePrinter::num(dp_s.mean() / opt_s.mean(), 3),
         TablePrinter::num(dp_s.mean() / steering_s.mean(), 3)});
  }
  if (opts.get_bool("csv", false)) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\n(* = node budget hit)\n"
            << "paper shape: DP/Opt in 1.06-1.12, DP 56-64% below "
               "Steering/Greedy (ratio 0.36-0.44).\n";
  return 0;
}
