// Ablation: placement policies under switch/link failures.
//
// Sweeps the per-switch MTBF (mean epochs between fail-stop failures;
// links fail at twice that MTBF) and compares three reactions on the same
// fault timeline:
//   - mPareto:     frontier migration (Algorithm 5) on the degraded fabric,
//   - NoMigration: never migrates voluntarily — only the engine's
//                  emergency recovery moves VNFs off dead switches,
//   - Resolve:     re-solves TOP from scratch every epoch.
// The engine's fault machinery (quarantine, emergency re-placement,
// downtime accounting — see DESIGN.md "Fault model & graceful
// degradation") is identical for all three, so the spread isolates what
// the *policy* buys once the fabric starts failing.
//
// Options: --k --trials --l --n --mu --hours --mtbf --mttr --penalty
//          --seed --threads --csv
//          --checkpoint --keep-going --retries  (robustness; see
//          EXPERIMENTS.md "Crash-safe checkpointing")
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "fault/fault.hpp"
#include "sim/experiment.hpp"

namespace {
std::vector<double> parse_doubles(const std::string& csv) {
  std::vector<double> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stod(item));
  return out;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace ppdc;
  const Options opts = Options::parse(argc, argv);
  opts.restrict_to({"k", "trials", "l", "n", "mu", "hours", "mtbf", "mttr",
                    "penalty", "seed", "threads", "csv", "checkpoint",
                    "keep-going", "retries"});
  const int k = static_cast<int>(opts.get_int("k", 4));
  const int trials = static_cast<int>(opts.get_int("trials", 5));
  const int l = static_cast<int>(opts.get_int("l", 100));
  const int n = static_cast<int>(opts.get_int("n", 3));
  const double mu = opts.get_double("mu", 1e4);
  const int hours = static_cast<int>(opts.get_int("hours", 48));
  const auto mtbf_values = parse_doubles(opts.get_string("mtbf", "0,96,48,24"));
  const double mttr = opts.get_double("mttr", 2.0);
  // Default prices an unserved rate unit above its typical serving cost
  // (a few weighted hops/epoch), so losing flows never looks like a win.
  const double penalty = opts.get_double("penalty", 50.0);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(opts.get_int("seed", 42));
  const int threads = bench::threads_option(opts);
  const bench::RobustnessOptions robust = bench::robustness_options(opts);
  bench::install_signal_handlers();

  bench::header(
      "Ablation — migration policies under switch/link failures",
      "fat-tree k=" + std::to_string(k) + ", l=" + std::to_string(l) +
          ", n=" + std::to_string(n) + ", mu=" + TablePrinter::num(mu, 0) +
          ", " + std::to_string(hours) + "h, " + std::to_string(trials) +
          " trials, threads=" + bench::threads_label(threads) +
          "; MTTR=" + TablePrinter::num(mttr, 0) +
          " epochs, links at 2x switch MTBF; MTBF=0 disables faults");

  const Topology topo = build_fat_tree(k);
  const AllPairs apsp(topo.graph);

  TablePrinter table({"MTBF", "fail/rep", "mPareto", "NoMigration", "Resolve",
                      "recov moves", "quarantined", "downtime"});
  for (const double mtbf : mtbf_values) {
    FaultScheduleConfig fcfg;
    fcfg.hours = hours;
    fcfg.switch_mtbf = mtbf;
    fcfg.switch_mttr = mttr;
    fcfg.link_mtbf = 2.0 * mtbf;
    fcfg.link_mttr = mttr;
    fcfg.seed = seed;
    const FaultSchedule schedule = generate_fault_schedule(topo.graph, fcfg);
    int failures = 0, repairs = 0;
    for (const FaultEvent& e : schedule) {
      if (e.kind == FaultKind::kSwitchFail || e.kind == FaultKind::kLinkFail) {
        ++failures;
      } else {
        ++repairs;
      }
    }

    ExperimentConfig cfg;
    cfg.trials = trials;
    cfg.seed = seed;
    cfg.workload.num_pairs = l;
    cfg.workload.intra_rack_fraction = 0.8;
    cfg.sfc_length = n;
    cfg.sim.hours = hours;
    cfg.sim.faults = schedule;
    cfg.sim.fault.mu = mu;
    cfg.sim.fault.quarantine_penalty = penalty;
    cfg.threads = threads;
    bench::apply_robustness(cfg, robust,
                            "mtbf" + TablePrinter::num(mtbf, 0));
    ParetoMigrationPolicy pareto(mu);
    NoMigrationPolicy none;
    ResolvePlacementPolicy resolve(mu);
    const auto stats =
        bench::run_or_exit(topo, apsp, cfg, {&pareto, &none, &resolve});
    table.add_row({TablePrinter::num(mtbf, 0),
                   std::to_string(failures) + "/" + std::to_string(repairs),
                   bench::cell(stats[0], stats[0].total_cost),
                   bench::cell(stats[1], stats[1].total_cost),
                   bench::cell(stats[2], stats[2].total_cost),
                   bench::cell(stats[0], stats[0].recovery_migrations, 1),
                   bench::cell(stats[0], stats[0].quarantined_flow_epochs, 1),
                   bench::cell(stats[0], stats[0].downtime_epochs, 1)});
  }
  if (opts.get_bool("csv", false)) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nnote: recovery moves / quarantined flow-epochs / downtime "
               "are schedule-driven and identical across policies up to the "
               "placements each policy left exposed to the next failure; "
               "total cost includes comm + migration + recovery + "
               "quarantine penalties (Eq. 8 extended).\n";
  return 0;
}
