// Ablation (paper §VII future work): VNF replication vs VNF migration for
// dynamic traffic mitigation.
//
// Replication deploys R static replica chains (clustered per tenant mass)
// and lets every flow take its per-stage Viterbi-optimal path — no
// migration traffic, ever. Migration keeps one chain and moves it with
// mPareto. The sweep reports the 12-hour diurnal totals of both, plus the
// static single chain (NoMigration), answering "to which extent VNF
// replication could be beneficial ... when compared to VNF migration".
//
// Options: --k --trials --l --n --mu --replicas --zipf --seed --threads
//          --csv --checkpoint --keep-going --retries  (robustness; see
//          EXPERIMENTS.md "Crash-safe checkpointing")
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "core/replication.hpp"
#include "sim/experiment.hpp"
#include "workload/diurnal.hpp"

namespace {
std::vector<int> parse_list(const std::string& csv) {
  std::vector<int> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stoi(item));
  return out;
}
}  // namespace

namespace ppdc {

/// Sim policy wrapper: static replicated placement chosen at hour 0;
/// flows re-route (Viterbi) every hour at zero migration cost.
class ReplicationPolicy final : public MigrationPolicy {
 public:
  ReplicationPolicy(int replicas, TopDpOptions options)
      : replicas_(replicas), options_(options) {}
  std::string name() const override {
    return "Replication-x" + std::to_string(replicas_);
  }
  std::unique_ptr<MigrationPolicy> clone() const override {
    // Fresh clone per (trial, policy) job: only the configuration travels,
    // the cached clustering restarts per trial.
    return std::make_unique<ReplicationPolicy>(replicas_, options_);
  }
  EpochDecision on_epoch(const CostModel& model, SimState& state) override {
    // Re-cluster once per run; the fingerprint also catches a flow set
    // swapped mid-run (e.g. when driven manually through run_simulation).
    std::vector<NodeId> fingerprint;
    fingerprint.reserve(state.flows.size() * 2);
    for (const auto& f : state.flows) {
      fingerprint.push_back(f.src_host);
      fingerprint.push_back(f.dst_host);
    }
    if (placement_.chains.empty() || fingerprint != fingerprint_) {
      placement_ = solve_replicated_top(
          model, static_cast<int>(state.placement.size()), replicas_,
          options_);
      fingerprint_ = std::move(fingerprint);
    }
    EpochDecision d;
    d.comm_cost = replicated_communication_cost(model.apsp(), state.flows,
                                                placement_);
    return d;
  }

 private:
  int replicas_;
  TopDpOptions options_;
  ReplicatedPlacement placement_;
  std::vector<NodeId> fingerprint_;
};

}  // namespace ppdc

int main(int argc, char** argv) {
  using namespace ppdc;
  const Options opts = Options::parse(argc, argv);
  opts.restrict_to({"k", "trials", "l", "n", "mu", "replicas", "zipf", "seed",
                    "threads", "csv", "checkpoint", "keep-going", "retries"});
  const int k = static_cast<int>(opts.get_int("k", 8));
  const int trials = static_cast<int>(opts.get_int("trials", 5));
  const int l = static_cast<int>(opts.get_int("l", 200));
  const int n = static_cast<int>(opts.get_int("n", 5));
  const double mu = opts.get_double("mu", 1e4);
  const double zipf = opts.get_double("zipf", 2.2);
  const auto replica_counts = parse_list(opts.get_string("replicas", "2,3,4"));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(opts.get_int("seed", 42));
  const int threads = bench::threads_option(opts);
  const bench::RobustnessOptions robust = bench::robustness_options(opts);
  bench::install_signal_handlers();

  bench::header("Ablation — VNF replication vs VNF migration (§VII)",
                "fat-tree k=" + std::to_string(k) + ", l=" +
                    std::to_string(l) + ", n=" + std::to_string(n) +
                    ", mu=" + TablePrinter::num(mu, 0) + ", zipf=" +
                    TablePrinter::num(zipf, 1) + ", " +
                    std::to_string(trials) + " trials, threads=" +
                    bench::threads_label(threads) + ", 12h diurnal cycle");

  const Topology topo = build_fat_tree(k);
  const AllPairs apsp(topo.graph);
  TopDpOptions dp_opts;
  dp_opts.candidate_limit = topo.num_switches() > 100 ? 48 : 0;

  ExperimentConfig cfg;
  cfg.trials = trials;
  cfg.seed = seed;
  cfg.workload.num_pairs = l;
  cfg.workload.rack_zipf_s = zipf;
  cfg.sfc_length = n;
  cfg.threads = threads;
  cfg.sim.initial_placement = dp_opts;
  bench::apply_robustness(cfg, robust);

  NoMigrationPolicy none;
  ParetoMigrationOptions pareto_opts;
  pareto_opts.placement = dp_opts;
  ParetoMigrationPolicy pareto(mu, pareto_opts);
  std::vector<std::unique_ptr<ReplicationPolicy>> reps;
  std::vector<const MigrationPolicy*> policies{&none, &pareto};
  for (const int r : replica_counts) {
    reps.push_back(std::make_unique<ReplicationPolicy>(r, dp_opts));
    policies.push_back(reps.back().get());
  }

  const auto stats = bench::run_or_exit(topo, apsp, cfg, policies);
  TablePrinter t({"strategy", "12h total", "comm", "migration",
                  "vs NoMigration (%)"});
  const double base = stats[0].total_cost.mean;
  for (const auto& s : stats) {
    t.add_row({s.name, bench::cell(s, s.total_cost),
               bench::cell(s, s.comm_cost), bench::cell(s, s.migration_cost),
               TablePrinter::num(100.0 * (1.0 - s.total_cost.mean / base),
                                 1)});
  }
  if (opts.get_bool("csv", false)) {
    t.write_csv(std::cout);
  } else {
    t.print(std::cout);
  }
  std::cout << "\nreading: replication buys locality without migration "
               "traffic, at the price of deploying R chains; migration "
               "adapts a single chain. Whichever wins here, the gap bounds "
               "how much §VII's replication extension can add.\n";
  return 0;
}
