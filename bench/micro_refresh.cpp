// Micro-benchmark of the incremental group-scaled cost-model refresh
// against the full O(|V_s| · l) rescan, on Fig. 11-scale dynamic
// workloads. Two modes:
//
//   micro_refresh           table across fat-tree arity / flow count
//   micro_refresh --smoke   CTest smoke gate: k = 16, l = 10000 — fails
//                           (exit 1) unless the incremental path is >= 5x
//                           faster per epoch AND matches the full rescan
//                           to 1e-9 (relative) on every attraction, Λ, and
//                           the epoch communication cost, including after
//                           simulated PLAN/MCF-style endpoint moves.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/placement_dp.hpp"
#include "workload/diurnal.hpp"

namespace {

using namespace ppdc;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

bool matches(double a, double b) {
  return std::abs(a - b) <= 1e-9 * std::max({1.0, std::abs(a), std::abs(b)});
}

struct RunResult {
  double full_epoch_s = 0.0;  ///< mean wall time of one full-rescan epoch
  double inc_epoch_s = 0.0;   ///< mean wall time of one incremental epoch
  double move_epoch_s = 0.0;  ///< mean wall time of one endpoint-move patch
  bool equivalent = true;
  double speedup() const { return full_epoch_s / inc_epoch_s; }
};

/// Times `hours * reps` epochs of the seed's full-rescan refresh against
/// the incremental refresh_scaled path on the same flow vector, checking
/// equivalence at every epoch, then exercises the endpoints_moved patch.
RunResult run_case(int k, int l, int reps, bool verbose) {
  const Topology topo = build_fat_tree(k);
  const AllPairs apsp(topo.graph);
  Rng rng(20260805);
  std::vector<VmFlow> flows = bench::paper_workload(topo, l, rng, 2.2);
  const std::vector<double> base = rates_of(flows);
  const std::vector<int> groups = groups_of(flows);
  const int n_groups = num_groups(groups);
  const DiurnalModel diurnal;
  const int hours = diurnal.hours_per_day;

  CostModel full(apsp, flows);
  CostModel inc(apsp, flows);
  inc.enable_group_refresh(base, groups);
  inc.refresh_scaled(diurnal.group_scales(Hour{0}, n_groups));
  const Placement probe = solve_top_dp(inc, 3).placement;

  RunResult r;
  // Warm-up + equivalence sweep (not timed).
  for (const Hour hour : id_range<Hour>(hours)) {
    set_rates(flows, diurnal_rates_grouped(diurnal, base, groups, hour));
    full.refresh();
    inc.refresh_scaled(diurnal.group_scales(hour, n_groups));
    bool ok = matches(full.total_rate(), inc.total_rate()) &&
              matches(full.communication_cost(probe),
                      inc.communication_cost(probe)) &&
              matches(full.min_ingress_attraction(),
                      inc.min_ingress_attraction()) &&
              matches(full.min_egress_attraction(),
                      inc.min_egress_attraction());
    for (const NodeId sw : topo.graph.switches()) {
      ok = ok && matches(full.ingress_attraction(sw),
                         inc.ingress_attraction(sw)) &&
           matches(full.egress_attraction(sw), inc.egress_attraction(sw));
    }
    if (!ok) {
      std::cerr << "equivalence FAILED at hour " << hour << "\n";
      r.equivalent = false;
    }
  }

  // Timed: full rescan per epoch (the seed engine's behaviour).
  auto t0 = Clock::now();
  for (int rep = 0; rep < reps; ++rep) {
    for (const Hour hour : id_range<Hour>(hours)) {
      set_rates(flows, diurnal_rates_grouped(diurnal, base, groups, hour));
      full.refresh();
    }
  }
  r.full_epoch_s = seconds_since(t0) / (reps * hours);

  // Timed: incremental recombination per epoch (set_rates included — the
  // engine pays it on both paths).
  t0 = Clock::now();
  for (int rep = 0; rep < reps; ++rep) {
    for (const Hour hour : id_range<Hour>(hours)) {
      set_rates(flows, diurnal_rates_grouped(diurnal, base, groups, hour));
      inc.refresh_scaled(diurnal.group_scales(hour, n_groups));
    }
  }
  r.inc_epoch_s = seconds_since(t0) / (reps * hours);

  // Endpoint-move patching: relocate ~1% of the flows (a typical PLAN/MCF
  // epoch) and verify + time the dirty path.
  const auto& hosts = topo.graph.hosts();
  std::vector<FlowId> moved;
  for (int i = 0; i < std::max(1, l / 100); ++i) {
    const int idx = static_cast<int>(
        rng.uniform_int(0, static_cast<int>(flows.size()) - 1));
    auto& f = flows[static_cast<std::size_t>(idx)];
    f.src_host = hosts[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(hosts.size()) - 1))];
    f.dst_host = hosts[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(hosts.size()) - 1))];
    moved.push_back(FlowId{idx});
  }
  t0 = Clock::now();
  inc.endpoints_moved(moved);
  r.move_epoch_s = seconds_since(t0);
  full.refresh();
  if (!matches(full.communication_cost(probe),
               inc.communication_cost(probe)) ||
      !matches(full.min_ingress_attraction(),
               inc.min_ingress_attraction())) {
    std::cerr << "equivalence FAILED after endpoint moves\n";
    r.equivalent = false;
  }

  if (verbose) {
    std::cout << "k=" << k << "  l=" << l
              << "  full=" << r.full_epoch_s * 1e3 << " ms/epoch"
              << "  incremental=" << r.inc_epoch_s * 1e3 << " ms/epoch"
              << "  move-patch=" << r.move_epoch_s * 1e3 << " ms"
              << "  speedup=" << r.speedup() << "x"
              << (r.equivalent ? "" : "  [MISMATCH]") << "\n";
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  if (smoke) {
    // Fig. 11 scale: k = 16 fat-tree (1024 hosts, 320 switches), 10k flows.
    const RunResult r = run_case(16, 10000, 2, true);
    if (!r.equivalent) {
      std::cerr << "FAIL: incremental refresh diverged from full rescan\n";
      return 1;
    }
    if (r.speedup() < 5.0) {
      std::cerr << "FAIL: incremental refresh only " << r.speedup()
                << "x faster (need >= 5x)\n";
      return 1;
    }
    std::cout << "OK: incremental refresh " << r.speedup()
              << "x faster than full rescan, equivalent to 1e-9\n";
    return 0;
  }

  bench::header("micro_refresh",
                "per-epoch cost-model refresh: full rescan vs incremental "
                "group recombination (12 diurnal hours per rep)");
  for (const int k : {8, 16}) {
    for (const int l : {2000, 10000}) {
      run_case(k, l, 3, true);
    }
  }
  return 0;
}
