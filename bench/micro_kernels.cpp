// google-benchmark microbenchmarks of the library's computational kernels:
// APSP construction, the DP-Stroll table, the Algorithm 3 placement sweep,
// the mPareto frontier scan, and the min-cost-flow solver. These guard the
// asymptotic behaviour the figure harnesses depend on.
//
// Two entry modes (own main below):
//   * default: the usual google-benchmark CLI over the BM_* kernels;
//   * --bench_json DIR [--smoke]: runs the *pinned* scenarios and emits
//     one BENCH_<kernel>.json perf artifact per kernel (see bench_common
//     and EXPERIMENTS.md). tools/bench_compare gates these against the
//     committed baselines in bench/baselines/.
#include <benchmark/benchmark.h>

#include "baselines/steering.hpp"
#include "baselines/vm_migration.hpp"
#include "bench_common.hpp"
#include "core/local_search.hpp"
#include "core/migration_pareto.hpp"
#include "core/placement_dp.hpp"
#include "core/stroll_dp.hpp"
#include "flow/min_cost_flow.hpp"
#include "net/link_load.hpp"
#include "topology/fat_tree.hpp"
#include "util/checksum.hpp"
#include "workload/vm_placement.hpp"

namespace {

using namespace ppdc;

/// Smoke mode of the pinned scenarios (--smoke): fewer, shorter
/// repetitions, recorded in the artifact so bench_compare can widen its
/// tolerance accordingly.
bool g_smoke = false;

std::vector<VmFlow> workload(const Topology& topo, int l, std::uint64_t seed) {
  VmPlacementConfig cfg;
  cfg.num_pairs = l;
  Rng rng(seed);
  return generate_vm_flows(topo, cfg, rng);
}

void BM_AllPairs(benchmark::State& state) {
  const Topology topo = build_fat_tree(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    AllPairs apsp(topo.graph);
    benchmark::DoNotOptimize(apsp.diameter());
  }
  state.SetComplexityN(topo.graph.num_nodes());
}
BENCHMARK(BM_AllPairs)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond)
    ->Complexity();

void BM_StrollDp(benchmark::State& state) {
  const Topology topo = build_fat_tree(8);
  const AllPairs apsp(topo.graph);
  const auto flows = workload(topo, 1, 7);
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const StrollResult r =
        solve_top1_dp(apsp, flows[0].src_host, flows[0].dst_host, n);
    benchmark::DoNotOptimize(r.cost);
  }
}
BENCHMARK(BM_StrollDp)->Arg(3)->Arg(7)->Arg(13)->Unit(benchmark::kMillisecond);

void BM_PlacementDp(benchmark::State& state) {
  const Topology topo = build_fat_tree(8);
  const AllPairs apsp(topo.graph);
  const auto flows = workload(topo, 200, 11);
  CostModel cm(apsp, flows);
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const PlacementResult r = solve_top_dp(cm, n);
    benchmark::DoNotOptimize(r.comm_cost);
  }
}
BENCHMARK(BM_PlacementDp)->Arg(3)->Arg(7)->Arg(13)
    ->Unit(benchmark::kMillisecond);

void BM_ParetoMigration(benchmark::State& state) {
  const Topology topo = build_fat_tree(8);
  const AllPairs apsp(topo.graph);
  auto flows = workload(topo, 200, 13);
  CostModel cm(apsp, flows);
  const Placement from = solve_top_dp(cm, 7).placement;
  std::vector<double> rates = rates_of(flows);
  std::reverse(rates.begin(), rates.end());
  set_rates(flows, rates);
  cm.refresh();
  for (auto _ : state) {
    const MigrationResult r = solve_tom_pareto(cm, from, 1e4);
    benchmark::DoNotOptimize(r.total_cost);
  }
}
BENCHMARK(BM_ParetoMigration)->Unit(benchmark::kMillisecond);

void BM_VmMigrationMcf(benchmark::State& state) {
  const Topology topo = build_fat_tree(8);
  const AllPairs apsp(topo.graph);
  const auto flows = workload(topo, static_cast<int>(state.range(0)), 17);
  CostModel cm(apsp, flows);
  const Placement p = solve_top_dp(cm, 7).placement;
  VmMigrationConfig cfg;
  cfg.mu = 1e4;
  cfg.host_capacity = 4;  // force the full min-cost-flow path
  cfg.candidate_hosts = 16;
  for (auto _ : state) {
    const VmMigrationResult r = solve_vm_migration_mcf(apsp, flows, p, cfg);
    benchmark::DoNotOptimize(r.total_cost);
  }
}
BENCHMARK(BM_VmMigrationMcf)->Arg(50)->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_LinkLoadPolicyRouting(benchmark::State& state) {
  const Topology topo = build_fat_tree(8);
  const AllPairs apsp(topo.graph);
  const auto flows = workload(topo, static_cast<int>(state.range(0)), 23);
  CostModel cm(apsp, flows);
  const Placement p = solve_top_dp(cm, 5).placement;
  for (auto _ : state) {
    const LinkLoadMap m = policy_link_load(apsp, flows, p);
    benchmark::DoNotOptimize(m.max_load());
  }
}
BENCHMARK(BM_LinkLoadPolicyRouting)->Arg(50)->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_LocalSearchPolish(benchmark::State& state) {
  const Topology topo = build_fat_tree(8);
  const AllPairs apsp(topo.graph);
  const auto flows = workload(topo, 200, 29);
  CostModel cm(apsp, flows);
  const Placement start = solve_top_steering(cm, 5).placement;
  for (auto _ : state) {
    const LocalSearchResult r = improve_placement(cm, start);
    benchmark::DoNotOptimize(r.comm_cost);
  }
}
BENCHMARK(BM_LocalSearchPolish)->Unit(benchmark::kMillisecond);

void BM_MinCostFlowGrid(benchmark::State& state) {
  // Classic transportation instance: n suppliers x n consumers.
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    MinCostFlow f(2 + 2 * n);
    for (int i = 0; i < n; ++i) {
      f.add_arc(0, 2 + i, 3, 0.0);
      f.add_arc(2 + n + i, 1, 3, 0.0);
      for (int j = 0; j < n; ++j) {
        f.add_arc(2 + i, 2 + n + j,
                  2, static_cast<double>((i * 7 + j * 13) % 10 + 1));
      }
    }
    const auto r = f.solve(0, 1);
    benchmark::DoNotOptimize(r.cost);
  }
}
BENCHMARK(BM_MinCostFlowGrid)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Pinned BENCH_*.json scenarios. Every parameter below (arity, workload
// size, seed, n, mu) is part of the artifact's scenario fingerprint:
// editing one without refreshing bench/baselines/ makes bench_compare
// reject the comparison instead of reporting a bogus delta. The checksums
// hash kernel *outputs* bit-exactly, so the artifacts also pin the
// numeric behaviour of the flattened kernels across PRs.
// ---------------------------------------------------------------------------

using bench::BenchRecord;

std::uint64_t hash_placement(ppdc::Hash64& h, const Placement& p) {
  h.u64(p.size());
  for (const NodeId w : p) h.i64(w);
  return h.value();
}

BenchRecord pin_all_pairs() {
  BenchRecord rec;
  rec.kernel = "AllPairs";
  rec.scenario = "fat-tree k=8, full APSP build";
  rec.fingerprint = Hash64{}.str(rec.kernel).i64(8).value();
  const Topology topo = build_fat_tree(8);
  {
    const AllPairs apsp(topo.graph);
    rec.checksum = Hash64{}
                       .f64(apsp.diameter())
                       .f64(apsp.min_switch_distance())
                       .i64(apsp.num_nodes())
                       .value();
  }
  rec.timing = bench::time_kernel(
      [&] {
        AllPairs apsp(topo.graph);
        benchmark::DoNotOptimize(apsp.diameter());
      },
      g_smoke);
  return rec;
}

BenchRecord pin_stroll_dp() {
  BenchRecord rec;
  rec.kernel = "StrollDp";
  rec.scenario = "fat-tree k=8, l=1 seed 7, n=13";
  rec.fingerprint =
      Hash64{}.str(rec.kernel).i64(8).i64(1).u64(7).i64(13).value();
  const Topology topo = build_fat_tree(8);
  const AllPairs apsp(topo.graph);
  const auto flows = workload(topo, 1, 7);
  const StrollResult ref =
      solve_top1_dp(apsp, flows[0].src_host, flows[0].dst_host, 13);
  Hash64 h;
  h.f64(ref.cost).i64(ref.edges_used).b(ref.used_fallback);
  hash_placement(h, ref.walk);
  rec.checksum = hash_placement(h, ref.placement);
  rec.timing = bench::time_kernel(
      [&] {
        const StrollResult r =
            solve_top1_dp(apsp, flows[0].src_host, flows[0].dst_host, 13);
        benchmark::DoNotOptimize(r.cost);
      },
      g_smoke);
  return rec;
}

BenchRecord pin_placement_dp() {
  BenchRecord rec;
  rec.kernel = "PlacementDp";
  rec.scenario = "fat-tree k=8, l=200 seed 11, n=7";
  rec.fingerprint =
      Hash64{}.str(rec.kernel).i64(8).i64(200).u64(11).i64(7).value();
  const Topology topo = build_fat_tree(8);
  const AllPairs apsp(topo.graph);
  const auto flows = workload(topo, 200, 11);
  CostModel cm(apsp, flows);
  const PlacementResult ref = solve_top_dp(cm, 7);
  Hash64 h;
  h.f64(ref.comm_cost).b(ref.used_fallback);
  rec.checksum = hash_placement(h, ref.placement);
  rec.timing = bench::time_kernel(
      [&] {
        const PlacementResult r = solve_top_dp(cm, 7);
        benchmark::DoNotOptimize(r.comm_cost);
      },
      g_smoke);
  return rec;
}

BenchRecord pin_pareto_migration() {
  BenchRecord rec;
  rec.kernel = "ParetoMigration";
  rec.scenario =
      "fat-tree k=8, l=200 seed 13, n=7, reversed rates, mu=1e4";
  rec.fingerprint = Hash64{}
                        .str(rec.kernel)
                        .i64(8)
                        .i64(200)
                        .u64(13)
                        .i64(7)
                        .f64(1e4)
                        .value();
  const Topology topo = build_fat_tree(8);
  const AllPairs apsp(topo.graph);
  auto flows = workload(topo, 200, 13);
  CostModel cm(apsp, flows);
  const Placement from = solve_top_dp(cm, 7).placement;
  std::vector<double> rates = rates_of(flows);
  std::reverse(rates.begin(), rates.end());
  set_rates(flows, rates);
  cm.refresh();
  const MigrationResult ref = solve_tom_pareto(cm, from, 1e4);
  Hash64 h;
  h.f64(ref.total_cost)
      .f64(ref.migration_cost)
      .f64(ref.comm_cost)
      .i64(ref.vnfs_moved);
  rec.checksum = hash_placement(h, ref.migration);
  rec.timing = bench::time_kernel(
      [&] {
        const MigrationResult r = solve_tom_pareto(cm, from, 1e4);
        benchmark::DoNotOptimize(r.total_cost);
      },
      g_smoke);
  return rec;
}

BenchRecord pin_cost_refresh() {
  BenchRecord rec;
  rec.kernel = "CostRefresh";
  rec.scenario = "fat-tree k=8, l=5000 seed 19, full attraction rescan";
  rec.fingerprint =
      Hash64{}.str(rec.kernel).i64(8).i64(5000).u64(19).value();
  const Topology topo = build_fat_tree(8);
  const AllPairs apsp(topo.graph);
  const auto flows = workload(topo, 5000, 19);
  CostModel cm(apsp, flows);
  cm.refresh();
  Hash64 h;
  h.f64(cm.total_rate())
      .f64(cm.min_ingress_attraction())
      .f64(cm.min_egress_attraction());
  for (const NodeId sw : cm.placement_candidates()) {
    h.f64(cm.ingress_attraction(sw)).f64(cm.egress_attraction(sw));
  }
  rec.checksum = h.value();
  rec.timing = bench::time_kernel(
      [&] {
        cm.refresh();
        benchmark::DoNotOptimize(cm.min_ingress_attraction());
      },
      g_smoke);
  return rec;
}

int run_pinned(const std::string& dir) {
  const bench::BenchBuildInfo build = bench::bench_build_info();
  const BenchRecord records[] = {
      pin_all_pairs(), pin_stroll_dp(), pin_placement_dp(),
      pin_pareto_migration(), pin_cost_refresh()};
  for (const BenchRecord& rec : records) {
    if (!bench::write_bench_json(dir, rec, build, g_smoke)) return 1;
    std::cout << "BENCH_" << rec.kernel << ".json  best "
              << rec.timing.best_ns / 1e6 << " ms  checksum "
              << bench::bench_hex64(rec.checksum) << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_dir;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--bench_json" && i + 1 < argc) {
      json_dir = argv[++i];
    } else if (arg == "--smoke") {
      g_smoke = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!json_dir.empty()) return run_pinned(json_dir);
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc,
                                             passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
