// google-benchmark microbenchmarks of the library's computational kernels:
// APSP construction, the DP-Stroll table, the Algorithm 3 placement sweep,
// the mPareto frontier scan, and the min-cost-flow solver. These guard the
// asymptotic behaviour the figure harnesses depend on.
#include <benchmark/benchmark.h>

#include "baselines/steering.hpp"
#include "baselines/vm_migration.hpp"
#include "core/local_search.hpp"
#include "core/migration_pareto.hpp"
#include "core/placement_dp.hpp"
#include "core/stroll_dp.hpp"
#include "flow/min_cost_flow.hpp"
#include "net/link_load.hpp"
#include "topology/fat_tree.hpp"
#include "workload/vm_placement.hpp"

namespace {

using namespace ppdc;

std::vector<VmFlow> workload(const Topology& topo, int l, std::uint64_t seed) {
  VmPlacementConfig cfg;
  cfg.num_pairs = l;
  Rng rng(seed);
  return generate_vm_flows(topo, cfg, rng);
}

void BM_AllPairs(benchmark::State& state) {
  const Topology topo = build_fat_tree(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    AllPairs apsp(topo.graph);
    benchmark::DoNotOptimize(apsp.diameter());
  }
  state.SetComplexityN(topo.graph.num_nodes());
}
BENCHMARK(BM_AllPairs)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond)
    ->Complexity();

void BM_StrollDp(benchmark::State& state) {
  const Topology topo = build_fat_tree(8);
  const AllPairs apsp(topo.graph);
  const auto flows = workload(topo, 1, 7);
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const StrollResult r =
        solve_top1_dp(apsp, flows[0].src_host, flows[0].dst_host, n);
    benchmark::DoNotOptimize(r.cost);
  }
}
BENCHMARK(BM_StrollDp)->Arg(3)->Arg(7)->Arg(13)->Unit(benchmark::kMillisecond);

void BM_PlacementDp(benchmark::State& state) {
  const Topology topo = build_fat_tree(8);
  const AllPairs apsp(topo.graph);
  const auto flows = workload(topo, 200, 11);
  CostModel cm(apsp, flows);
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const PlacementResult r = solve_top_dp(cm, n);
    benchmark::DoNotOptimize(r.comm_cost);
  }
}
BENCHMARK(BM_PlacementDp)->Arg(3)->Arg(7)->Arg(13)
    ->Unit(benchmark::kMillisecond);

void BM_ParetoMigration(benchmark::State& state) {
  const Topology topo = build_fat_tree(8);
  const AllPairs apsp(topo.graph);
  auto flows = workload(topo, 200, 13);
  CostModel cm(apsp, flows);
  const Placement from = solve_top_dp(cm, 7).placement;
  std::vector<double> rates = rates_of(flows);
  std::reverse(rates.begin(), rates.end());
  set_rates(flows, rates);
  cm.refresh();
  for (auto _ : state) {
    const MigrationResult r = solve_tom_pareto(cm, from, 1e4);
    benchmark::DoNotOptimize(r.total_cost);
  }
}
BENCHMARK(BM_ParetoMigration)->Unit(benchmark::kMillisecond);

void BM_VmMigrationMcf(benchmark::State& state) {
  const Topology topo = build_fat_tree(8);
  const AllPairs apsp(topo.graph);
  const auto flows = workload(topo, static_cast<int>(state.range(0)), 17);
  CostModel cm(apsp, flows);
  const Placement p = solve_top_dp(cm, 7).placement;
  VmMigrationConfig cfg;
  cfg.mu = 1e4;
  cfg.host_capacity = 4;  // force the full min-cost-flow path
  cfg.candidate_hosts = 16;
  for (auto _ : state) {
    const VmMigrationResult r = solve_vm_migration_mcf(apsp, flows, p, cfg);
    benchmark::DoNotOptimize(r.total_cost);
  }
}
BENCHMARK(BM_VmMigrationMcf)->Arg(50)->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_LinkLoadPolicyRouting(benchmark::State& state) {
  const Topology topo = build_fat_tree(8);
  const AllPairs apsp(topo.graph);
  const auto flows = workload(topo, static_cast<int>(state.range(0)), 23);
  CostModel cm(apsp, flows);
  const Placement p = solve_top_dp(cm, 5).placement;
  for (auto _ : state) {
    const LinkLoadMap m = policy_link_load(apsp, flows, p);
    benchmark::DoNotOptimize(m.max_load());
  }
}
BENCHMARK(BM_LinkLoadPolicyRouting)->Arg(50)->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_LocalSearchPolish(benchmark::State& state) {
  const Topology topo = build_fat_tree(8);
  const AllPairs apsp(topo.graph);
  const auto flows = workload(topo, 200, 29);
  CostModel cm(apsp, flows);
  const Placement start = solve_top_steering(cm, 5).placement;
  for (auto _ : state) {
    const LocalSearchResult r = improve_placement(cm, start);
    benchmark::DoNotOptimize(r.comm_cost);
  }
}
BENCHMARK(BM_LocalSearchPolish)->Unit(benchmark::kMillisecond);

void BM_MinCostFlowGrid(benchmark::State& state) {
  // Classic transportation instance: n suppliers x n consumers.
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    MinCostFlow f(2 + 2 * n);
    for (int i = 0; i < n; ++i) {
      f.add_arc(0, 2 + i, 3, 0.0);
      f.add_arc(2 + n + i, 1, 3, 0.0);
      for (int j = 0; j < n; ++j) {
        f.add_arc(2 + i, 2 + n + j,
                  2, static_cast<double>((i * 7 + j * 13) % 10 + 1));
      }
    }
    const auto r = f.solve(0, 1);
    benchmark::DoNotOptimize(r.cost);
  }
}
BENCHMARK(BM_MinCostFlowGrid)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace
