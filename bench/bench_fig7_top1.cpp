// Fig. 7: comparing TOP-1 (n-stroll) algorithms on a k=8 unweighted
// fat-tree with a single VM pair (l = 1), sweeping the SFC length n.
//
// Series, exactly as in the paper:
//   * Optimal      — exhaustive placement (Algorithm 4, as branch-and-bound)
//   * DP-Stroll    — Algorithm 2
//   * PrimalDual   — the 2+ε guarantee the paper plots, i.e. 2 x Optimal
//   * PD-grow/prune — bonus series: our concrete Goemans-Williamson
//                     implementation of Algorithm 1
//
// Expected shape (paper): DP-Stroll tracks Optimal within ~8% and sits
// far below the PrimalDual guarantee.
//
// Options: --k --trials --nmin --nmax --seed --pd (enable/disable the
// grow/prune series) --csv
#include <iostream>

#include "bench_common.hpp"
#include "core/chain_search.hpp"
#include "core/stroll_dp.hpp"
#include "core/stroll_primal_dual.hpp"

int main(int argc, char** argv) {
  using namespace ppdc;
  const Options opts = Options::parse(argc, argv);
  opts.restrict_to({"k", "trials", "nmin", "nmax", "seed", "pd", "csv"});
  const int k = static_cast<int>(opts.get_int("k", 8));
  const int trials = static_cast<int>(opts.get_int("trials", 20));
  const int nmin = static_cast<int>(opts.get_int("nmin", 2));
  const int nmax = static_cast<int>(opts.get_int("nmax", 13));
  const bool run_pd = opts.get_bool("pd", true);
  const std::uint64_t seed = static_cast<std::uint64_t>(
      opts.get_int("seed", 42));

  bench::header("Fig. 7 — TOP-1 (n-stroll) algorithms",
                "fat-tree k=" + std::to_string(k) + ", l=1, unweighted, " +
                    std::to_string(trials) + " runs, 95% CI");

  const Topology topo = build_fat_tree(k);
  const AllPairs apsp(topo.graph);

  std::vector<std::string> cols{"n", "Optimal", "DP-Stroll",
                                "PrimalDual(2x guarantee)"};
  if (run_pd) cols.push_back("PD-grow/prune");
  TablePrinter table(std::move(cols));

  for (int n = nmin; n <= nmax; ++n) {
    RunningStats opt_s, dp_s, pd_s;
    bool all_proven = true;
    for (int t = 0; t < trials; ++t) {
      // Same per-trial workload across every n (paired sweep, as in the
      // paper's monotone curves).
      Rng rng(seed * 1000003 + static_cast<std::uint64_t>(t));
      const auto flows = bench::paper_workload(topo, 1, rng);
      CostModel cm(apsp, flows);
      const StrollResult dp = solve_top1_dp(apsp, flows[0].src_host,
                                            flows[0].dst_host, n,
                                            flows[0].rate);
      // Report every algorithm through the same Eq. 1 lens.
      Placement dp_p = dp.placement;
      dp_s.add(cm.communication_cost(dp_p));

      ChainSearchConfig cfg;
      cfg.initial = dp_p;
      cfg.node_budget = 100'000'000;
      const ChainSearchResult opt = solve_top_exhaustive(cm, n, cfg);
      all_proven = all_proven && opt.proven_optimal;
      opt_s.add(opt.objective);

      if (run_pd) {
        const StrollResult pd = solve_top1_primal_dual(
            apsp, flows[0].src_host, flows[0].dst_host, n, flows[0].rate,
            PrimalDualOptions{12});
        pd_s.add(cm.communication_cost(pd.placement));
      }
    }
    std::vector<std::string> row{
        std::to_string(n) + (all_proven ? "" : "*"),
        bench::cell({opt_s.mean(), opt_s.ci95_halfwidth()}),
        bench::cell({dp_s.mean(), dp_s.ci95_halfwidth()}),
        TablePrinter::num(2.0 * opt_s.mean(), 0)};
    if (run_pd) {
      row.push_back(bench::cell({pd_s.mean(), pd_s.ci95_halfwidth()}));
    }
    table.add_row(std::move(row));
  }
  if (opts.get_bool("csv", false)) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\n(* = branch-and-bound node budget hit; Optimal is a lower "
               "bound certified best-found)\n"
            << "paper shape: DP-Stroll within ~8% of Optimal, well below "
               "the 2+eps guarantee.\n";
  return 0;
}
