// Fig. 11: the effect of VNF migration on dynamic cloud traffic in a k=16
// fat-tree PPDC (1024 hosts), diurnal traffic of Eq. 9, Facebook-like flow
// mix, SFC length n = 7, migration coefficient μ in {1e4, 1e5}.
//
//   panel (a): per-hour total (comm + migration) cost —
//              mPareto vs PLAN vs MCF vs Optimal(frontier-exhaustive)
//   panel (b): per-hour number of migrations (VNFs for ours, VMs for
//              PLAN/MCF)
//   panel (c): 12-hour total cost vs number of VM pairs l, at both μ,
//              including NoMigration
//   panel (d): 12-hour total cost vs SFC length n, mPareto vs NoMigration
//              (the up-to-73% reduction headline)
//
// "Optimal" here is the frontier-exhaustive search over the full frontier
// set Π h_j (Def. 1) — exhaustive Algorithm 6 is O(|V_s|^n) and intractable
// at 320 switches; see DESIGN.md §3. On k<=8 runs, pass --true-optimal to
// add the exact branch-and-bound policy.
//
// Options: --k --trials --l --n --mu --hours --lvalues --nvalues
//          --true-optimal --seed --threads --csv
//          --checkpoint --keep-going --retries  (robustness; see
//          EXPERIMENTS.md "Crash-safe checkpointing")
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "sim/experiment.hpp"

namespace {
std::vector<int> parse_list(const std::string& csv) {
  std::vector<int> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stoi(item));
  return out;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace ppdc;
  const Options opts = Options::parse(argc, argv);
  opts.restrict_to({"k", "trials", "l", "n", "mu", "hours", "lvalues",
                    "nvalues", "true-optimal", "seed", "zipf",
                    "vm-mu-factor", "host-capacity", "threads", "csv",
                    "checkpoint", "keep-going", "retries"});
  const int k = static_cast<int>(opts.get_int("k", 16));
  const int trials = static_cast<int>(opts.get_int("trials", 5));
  const int l = static_cast<int>(opts.get_int("l", 1000));
  const int n = static_cast<int>(opts.get_int("n", 7));
  const double mu = opts.get_double("mu", 1e4);
  const int hours = static_cast<int>(opts.get_int("hours", 12));
  const auto l_values = parse_list(opts.get_string("lvalues", "250,500,1000,2000"));
  const auto n_values = parse_list(opts.get_string("nvalues", "3,5,7,9,11,13"));
  const bool true_optimal = opts.get_bool("true-optimal", false);
  const double zipf = opts.get_double("zipf", 2.2);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(opts.get_int("seed", 42));
  const bool csv = opts.get_bool("csv", false);
  const int threads = bench::threads_option(opts);
  const bench::RobustnessOptions robust = bench::robustness_options(opts);
  bench::install_signal_handlers();

  const Topology topo = build_fat_tree(k);
  const AllPairs apsp(topo.graph);

  TopDpOptions dp_opts;
  dp_opts.candidate_limit = topo.num_switches() > 100 ? 48 : 0;
  ParetoMigrationOptions pareto_opts;
  pareto_opts.placement = dp_opts;
  ParetoMigrationOptions optimal_opts = pareto_opts;
  optimal_opts.exhaustive_frontiers = true;
  VmMigrationConfig vm_cfg;
  // The paper charges VM and VNF moves the same mu; --vm-mu-factor > 1
  // models full-VM images being larger than a ~100MB containerized VNF.
  vm_cfg.mu = mu * opts.get_double("vm-mu-factor", 1.0);
  vm_cfg.candidate_hosts = topo.num_hosts() > 256 ? 16 : 0;
  // PLAN migrates "to hosts with available resources" — without a host
  // capacity the baselines would pile every VM onto the hosts adjacent to
  // the chain, which no real data center allows.
  vm_cfg.host_capacity = static_cast<int>(opts.get_int("host-capacity", 4));
  // A migrated VM amortizes its move over several hours of the diurnal
  // cycle; a myopic 1-hour horizon would make PLAN/MCF never move at
  // mu = 1e4 and degenerate both baselines to NoMigration.
  vm_cfg.horizon_hours = 4.0;

  // Each panel section is its own experiment with its own fingerprint, so
  // each gets its own journal file derived from the --checkpoint base.
  auto make_config = [&](int pairs, int sfc, const std::string& tag) {
    ExperimentConfig cfg;
    cfg.trials = trials;
    cfg.seed = seed;
    cfg.workload.num_pairs = pairs;
    cfg.workload.rack_zipf_s = zipf;  // tenant skew; see DESIGN.md §3
    cfg.sfc_length = sfc;
    cfg.sim.hours = hours;
    cfg.sim.initial_placement = dp_opts;
    cfg.threads = threads;
    bench::apply_robustness(cfg, robust, tag);
    return cfg;
  };

  auto print = [&](TablePrinter& t) {
    if (csv) {
      t.write_csv(std::cout);
    } else {
      t.print(std::cout);
    }
  };

  // ---- panels (a) + (b): per-hour breakdown at the default operating point.
  {
    ParetoMigrationPolicy pareto(mu, pareto_opts);
    ParetoMigrationPolicy optimal(mu, optimal_opts, "Optimal(frontier)");
    PlanPolicy plan(vm_cfg);
    McfPolicy mcf(vm_cfg);
    NoMigrationPolicy none;
    std::vector<const MigrationPolicy*> policies{&pareto, &optimal, &plan,
                                                 &mcf, &none};
    ExhaustiveMigrationPolicy exact(mu);
    if (true_optimal) policies.push_back(&exact);

    const auto stats =
        bench::run_or_exit(topo, apsp, make_config(l, n, "a"), policies);

    bench::header("Fig. 11(a) — per-hour total cost under dynamic traffic",
                  "fat-tree k=" + std::to_string(k) + ", l=" +
                      std::to_string(l) + ", n=" + std::to_string(n) +
                      ", mu=" + TablePrinter::num(mu, 0) + ", " +
                      std::to_string(trials) + " trials, threads=" +
                      bench::threads_label(threads));
    {
      std::vector<std::string> cols{"hour"};
      for (const auto& s : stats) cols.push_back(s.name);
      TablePrinter t(std::move(cols));
      for (int h = 0; h < hours; ++h) {
        std::vector<std::string> row{std::to_string(h)};
        for (const auto& s : stats) {
          row.push_back(bench::cell(s.hourly_cost[static_cast<std::size_t>(h)]));
        }
        t.add_row(std::move(row));
      }
      print(t);
    }
    {
      TablePrinter t({"policy", "12h total cost", "comm", "migration",
                      "VNF moves", "VM moves"});
      for (const auto& s : stats) {
        t.add_row({s.name, bench::cell(s, s.total_cost),
                   bench::cell(s, s.comm_cost),
                   bench::cell(s, s.migration_cost),
                   bench::cell(s, s.vnf_migrations, 1),
                   bench::cell(s, s.vm_migrations, 1)});
      }
      std::cout << '\n';
      print(t);
    }

    bench::header("Fig. 11(b) — migrations per hour",
                  "same setup; VNF moves for mPareto/Optimal, VM moves for "
                  "PLAN/MCF");
    std::vector<std::string> cols{"hour"};
    for (const auto& s : stats) cols.push_back(s.name);
    TablePrinter t(std::move(cols));
    for (int h = 0; h < hours; ++h) {
      std::vector<std::string> row{std::to_string(h)};
      for (const auto& s : stats) {
        row.push_back(
            bench::cell(s.hourly_migrations[static_cast<std::size_t>(h)], 1));
      }
      t.add_row(std::move(row));
    }
    print(t);
    std::cout << "\npaper shape: mPareto ~ Optimal, 52-63% below PLAN/MCF; "
                 "far fewer VNF moves than VM moves.\n";
  }

  // ---- panel (c): totals vs l at mu and mu/10... paper uses 1e4 and 1e5.
  {
    bench::header("Fig. 11(c) — 12-hour total cost vs number of VM pairs l",
                  "n=" + std::to_string(n) + ", mu in {1e4, 1e5}, " +
                      std::to_string(trials) + " trials, threads=" +
                      bench::threads_label(threads));
    TablePrinter t({"l", "mPareto mu=1e4", "Optimal(frontier) mu=1e4",
                    "mPareto mu=1e5", "Optimal(frontier) mu=1e5",
                    "NoMigration", "reduction vs NoMig (%)"});
    for (const int pairs : l_values) {
      ParetoMigrationPolicy p4(1e4, pareto_opts, "mPareto-1e4");
      ParetoMigrationPolicy o4(1e4, optimal_opts, "Opt-1e4");
      ParetoMigrationPolicy p5(1e5, pareto_opts, "mPareto-1e5");
      ParetoMigrationPolicy o5(1e5, optimal_opts, "Opt-1e5");
      NoMigrationPolicy none;
      const auto stats = bench::run_or_exit(
          topo, apsp, make_config(pairs, n, "c" + std::to_string(pairs)),
          {&p4, &o4, &p5, &o5, &none});
      const double reduction =
          100.0 * (1.0 - stats[0].total_cost.mean / stats[4].total_cost.mean);
      t.add_row({std::to_string(pairs), bench::cell(stats[0].total_cost),
                 bench::cell(stats[1].total_cost),
                 bench::cell(stats[2].total_cost),
                 bench::cell(stats[3].total_cost),
                 bench::cell(stats[4].total_cost),
                 TablePrinter::num(reduction, 1)});
    }
    print(t);
    std::cout << "\npaper shape: mPareto ~ Optimal; slightly cheaper at "
                 "mu=1e4 than 1e5; large savings vs NoMigration.\n";
  }

  // ---- panel (d): totals vs n, mPareto vs NoMigration.
  {
    bench::header("Fig. 11(d) — 12-hour total cost vs SFC length n",
                  "l=" + std::to_string(l) + ", mu=" +
                      TablePrinter::num(mu, 0) + ", " +
                      std::to_string(trials) + " trials, threads=" +
                      bench::threads_label(threads));
    TablePrinter t({"n", "mPareto", "NoMigration", "reduction (%)"});
    for (const int sfc : n_values) {
      ParetoMigrationPolicy pareto(mu, pareto_opts);
      NoMigrationPolicy none;
      const auto stats = bench::run_or_exit(
          topo, apsp, make_config(l, sfc, "d" + std::to_string(sfc)),
          {&pareto, &none});
      const double reduction =
          100.0 * (1.0 - stats[0].total_cost.mean / stats[1].total_cost.mean);
      t.add_row({std::to_string(sfc), bench::cell(stats[0].total_cost),
                 bench::cell(stats[1].total_cost),
                 TablePrinter::num(reduction, 1)});
    }
    print(t);
    std::cout << "\npaper shape: VNF migration cuts the total cost of VM "
                 "flows by up to ~73% vs NoMigration.\n\n";
    bench::print_rss_footer(std::cout);
  }
  return 0;
}
