// Million-flow scale harness for the pod-sharded streaming epoch loop
// (DESIGN.md §14, EXPERIMENTS.md "bench_scale").
//
// Where the fig11 drivers reproduce the paper's cost series, this one
// answers the scaling question the sharded engine exists for: what does
// one epoch of the dynamic loop cost — wall-clock and resident memory —
// when the flow population reaches data-center scale (l >= 1,000,000 on a
// k=32 fat tree, 8192 hosts)? It runs run_sharded_simulation directly
// over ShardMap::by_ingress_pod with a streaming workload churning
// between epochs, and prints one row per epoch: live flows, applied
// churn, resolved/held shard split, communication cost, epoch latency,
// and current RSS, with peak RSS in the footer.
//
// Options: --k --flows --hours --n --mu --threads --cand --seed
//          --arrivals --depart --rerate --resolve-fraction --staleness
//          --smoke   (tiny k=4 config; the scale_smoke tier-1 CTest gate)
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "core/sharded_cost_model.hpp"
#include "sim/sharded.hpp"
#include "workload/streaming.hpp"

namespace {

using Clock = std::chrono::steady_clock;

/// Prints one progress row per epoch as the run executes (a long l=1M run
/// must not be silent for minutes), tracking per-epoch wall latency from
/// on_epoch_begin to on_epoch_end.
class ScaleObserver final : public ppdc::EpochObserver {
 public:
  explicit ScaleObserver(const ppdc::StreamingWorkload& workload)
      : workload_(workload) {}

  void on_epoch_begin(ppdc::Hour /*hour*/) override {
    epoch_start_ = Clock::now();
    churned_ = 0;
    resolved_ = 0;
    held_ = 0;
  }

  void on_shard_batch(ppdc::Hour /*hour*/, int resolved, int held,
                      int churned) override {
    resolved_ = resolved;
    held_ = held;
    churned_ = churned;
  }

  void on_epoch_end(ppdc::Hour hour, const ppdc::EpochDecision& d) override {
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - epoch_start_)
            .count();
    total_ms_ += ms;
    ++epochs_;
    std::printf("%5d  %9d  %8d  %5d/%-5d  %14.6g  %10.1f  %9s\n",
                hour.value(), workload_.live_flows(), churned_, resolved_,
                held_, d.comm_cost,
                ms, ppdc::bench::mib(ppdc::current_rss_bytes()).c_str());
    std::fflush(stdout);
  }

  double mean_epoch_ms() const {
    return epochs_ == 0 ? 0.0 : total_ms_ / epochs_;
  }

 private:
  const ppdc::StreamingWorkload& workload_;
  Clock::time_point epoch_start_{};
  int churned_ = 0;
  int resolved_ = 0;
  int held_ = 0;
  double total_ms_ = 0.0;
  int epochs_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ppdc;
  const Options opts = Options::parse(argc, argv);
  opts.restrict_to({"k", "flows", "hours", "n", "mu", "threads", "cand",
                    "seed", "arrivals", "depart", "rerate",
                    "resolve-fraction", "staleness", "smoke"});
  const bool smoke = opts.get_bool("smoke", false);

  // Smoke mode is the scale_smoke tier-1 gate: the same code path at a
  // size that finishes in seconds (and that build-tsan can re-run).
  const int k = static_cast<int>(opts.get_int("k", smoke ? 4 : 32));
  const int flows =
      static_cast<int>(opts.get_int("flows", smoke ? 2000 : 1000000));
  const int hours = static_cast<int>(opts.get_int("hours", smoke ? 4 : 12));
  const int n = static_cast<int>(opts.get_int("n", 7));
  const double mu = opts.get_double("mu", 1e4);
  const int threads = static_cast<int>(opts.get_int("threads", smoke ? 2 : 0));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(opts.get_int("seed", 42));

  ShardedStreamingConfig sharded;
  sharded.enabled = true;
  sharded.threads = threads;
  sharded.churn.arrivals_per_epoch = static_cast<int>(
      opts.get_int("arrivals", smoke ? 100 : flows / 200));
  sharded.churn.departure_prob =
      opts.get_double("depart", smoke ? 0.02 : 0.005);
  sharded.churn.rerate_prob = opts.get_double("rerate", smoke ? 0.1 : 0.05);
  sharded.resolve_churn_fraction =
      opts.get_double("resolve-fraction", smoke ? 0.05 : 0.02);
  sharded.max_staleness = static_cast<int>(opts.get_int("staleness", 4));

  const auto t_build = Clock::now();
  const Topology topo = build_fat_tree(k);
  const AllPairs apsp(topo.graph);
  const ShardMap map = ShardMap::by_ingress_pod(topo);
  const double build_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t_build)
          .count();

  VmPlacementConfig workload_cfg;
  workload_cfg.num_pairs = flows;
  workload_cfg.intra_rack_fraction = 0.8;
  workload_cfg.rack_zipf_s = 2.2;  // tenant skew, as in the fig11 dynamics
  const auto t_gen = Clock::now();
  StreamingWorkload workload(topo, workload_cfg, sharded.churn, Rng(seed));
  const double gen_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t_gen).count();

  TopDpOptions dp_opts;
  dp_opts.candidate_limit = static_cast<int>(
      opts.get_int("cand", topo.num_switches() > 100 ? 48 : 0));
  ParetoMigrationOptions pareto_opts;
  pareto_opts.placement = dp_opts;
  ParetoMigrationPolicy policy(mu, pareto_opts);

  SimConfig sim;
  sim.hours = hours;
  sim.initial_placement = dp_opts;

  bench::header(
      "bench_scale — pod-sharded streaming epoch loop at scale",
      "fat-tree k=" + std::to_string(k) + " (" +
          std::to_string(topo.num_hosts()) + " hosts, " +
          std::to_string(map.num_shards()) + " shards), l=" +
          std::to_string(flows) + ", n=" + std::to_string(n) + ", mu=" +
          TablePrinter::num(mu, 0) + ", churn=" +
          std::to_string(sharded.churn.arrivals_per_epoch) + "/epoch, " +
          "resolve-fraction=" +
          TablePrinter::num(sharded.resolve_churn_fraction, 3) +
          ", staleness<=" + std::to_string(sharded.max_staleness) +
          ", threads=" + bench::threads_label(threads));
  std::cout << "topology+APSP+shard map: " << TablePrinter::num(build_ms, 1)
            << " ms, workload generation: " << TablePrinter::num(gen_ms, 1)
            << " ms\n\n";

  std::printf("%5s  %9s  %8s  %11s  %14s  %10s  %9s\n", "hour", "live",
              "churned", "rslv/held", "comm cost", "epoch ms", "RSS MiB");

  ScaleObserver observer(workload);
  const auto t_run = Clock::now();
  const SimTrace trace = run_sharded_simulation(apsp, map, workload, n, sim,
                                                sharded, policy, &observer);
  const double run_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t_run).count();

  std::cout << "\ntotal cost " << TablePrinter::num(trace.total_cost, 0)
            << " (comm " << TablePrinter::num(trace.total_comm_cost, 0)
            << ", migration "
            << TablePrinter::num(trace.total_migration_cost, 0) << ", "
            << trace.total_vnf_migrations << " VNF moves), shards resolved "
            << trace.total_shard_resolves << " / held "
            << trace.total_shard_holds << "\n";
  std::cout << "wall: " << TablePrinter::num(run_ms, 1) << " ms over "
            << hours << " epochs (mean "
            << TablePrinter::num(observer.mean_epoch_ms(), 1)
            << " ms/epoch, hour-0 solve included in wall only)\n";
  bench::print_rss_footer(std::cout);
  return 0;
}
