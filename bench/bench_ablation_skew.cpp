// Ablation: how much can VNF migration save on a fat-tree, as a function
// of spatial traffic concentration?
//
// This harness exists because of a reproduction finding (DESIGN.md §3,
// EXPERIMENTS.md): on a fat-tree, every core switch is exactly 3 hops from
// every host, so A(core) = B(core) = 3Λ *independently of where the
// traffic lives*. Under the paper's literal workload (VM pairs uniform
// over racks) the optimal SFC therefore parks in the core and migration
// can never help; the paper's up-to-73% reduction (Fig. 11(c)/(d))
// requires traffic whose spatial center of mass moves. The sweep below
// varies the Zipf skew of rack popularity (s = 0 is the paper's literal
// setup) and reports the migration gain, the fraction of traffic in the
// busiest rack, and where the optimal chain sits — making the mechanism
// visible.
//
// Options: --k --trials --l --n --mu --svalues --seed --threads --csv
//          --checkpoint --keep-going --retries  (robustness; see
//          EXPERIMENTS.md "Crash-safe checkpointing")
#include <algorithm>
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "sim/experiment.hpp"

namespace {
std::vector<double> parse_doubles(const std::string& csv) {
  std::vector<double> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stod(item));
  return out;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace ppdc;
  const Options opts = Options::parse(argc, argv);
  opts.restrict_to({"k", "trials", "l", "n", "mu", "svalues", "seed",
                    "threads", "csv", "checkpoint", "keep-going", "retries"});
  const int k = static_cast<int>(opts.get_int("k", 8));
  const int trials = static_cast<int>(opts.get_int("trials", 5));
  const int l = static_cast<int>(opts.get_int("l", 200));
  const int n = static_cast<int>(opts.get_int("n", 3));
  const double mu = opts.get_double("mu", 1e4);
  const auto s_values =
      parse_doubles(opts.get_string("svalues", "0,1,1.5,2,2.5,3"));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(opts.get_int("seed", 42));
  const int threads = bench::threads_option(opts);
  const bench::RobustnessOptions robust = bench::robustness_options(opts);
  bench::install_signal_handlers();

  bench::header("Ablation — migration gain vs spatial traffic skew",
                "fat-tree k=" + std::to_string(k) + ", l=" +
                    std::to_string(l) + ", n=" + std::to_string(n) +
                    ", mu=" + TablePrinter::num(mu, 0) + ", " +
                    std::to_string(trials) + " trials, threads=" +
                    bench::threads_label(threads) +
                    "; s=0 is the paper's literal uniform-rack workload");

  const Topology topo = build_fat_tree(k);
  const AllPairs apsp(topo.graph);

  TablePrinter table({"zipf s", "hot-rack mass (%)", "mPareto",
                      "NoMigration", "reduction (%)", "VNF moves"});
  for (const double s : s_values) {
    // Measure the hot-rack mass fraction of this skew level.
    Rng rng(seed);
    VmPlacementConfig wcfg;
    wcfg.num_pairs = l;
    wcfg.rack_zipf_s = s;
    const auto sample = generate_vm_flows(topo, wcfg, rng);
    IndexedVector<RackIdx, double> rack_mass(topo.racks.size(), 0.0);
    double total_mass = 0.0;
    for (const auto& f : sample) {
      for (const RackIdx r : topo.racks.ids()) {
        if (std::find(topo.racks[r].begin(), topo.racks[r].end(),
                      f.src_host) != topo.racks[r].end()) {
          rack_mass[r] += f.rate;
        }
      }
      total_mass += f.rate;
    }
    const double hot =
        *std::max_element(rack_mass.begin(), rack_mass.end()) / total_mass;

    ExperimentConfig cfg;
    cfg.trials = trials;
    cfg.seed = seed;
    cfg.workload = wcfg;
    cfg.sfc_length = n;
    cfg.threads = threads;
    bench::apply_robustness(cfg, robust, "s" + TablePrinter::num(s, 1));
    ParetoMigrationPolicy pareto(mu);
    NoMigrationPolicy none;
    const auto stats = bench::run_or_exit(topo, apsp, cfg, {&pareto, &none});
    const double reduction =
        100.0 * (1.0 - stats[0].total_cost.mean / stats[1].total_cost.mean);
    table.add_row({TablePrinter::num(s, 1),
                   TablePrinter::num(100.0 * hot, 1),
                   bench::cell(stats[0], stats[0].total_cost),
                   bench::cell(stats[1], stats[1].total_cost),
                   TablePrinter::num(reduction, 1),
                   bench::cell(stats[0], stats[0].vnf_migrations, 1)});
  }
  if (opts.get_bool("csv", false)) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nfinding: at s=0 (the paper's literal workload) the gain is "
               "~0 because the optimal chain sits in the coast-agnostic "
               "core; the gain grows with concentration, bounded by the "
               "endpoint-leg share of Eq. 1 (the chain term (n-1)Λ is "
               "placement-invariant).\n";
  return 0;
}
