// Ablations of the two remaining §VII extensions:
//
//  (1) Co-location: how much of Eq. 1 is the distinct-switch constraint
//      (footnote 3) responsible for? Sweeps the per-switch VNF capacity —
//      capacity 1 is the paper's model, capacity n collapses the chain
//      cost entirely.
//
//  (2) Heterogeneous SFCs: when flows request only sub-ranges of the VNF
//      catalogue, how much cheaper is a range-aware placement than
//      (a) placing for the full-chain assumption, and (b) the exact
//      range-aware optimum?
//
// Options: --k --trials --l --n --seed --csv
//
// This harness runs hand-rolled trial loops (no run_experiment), so the
// shared checkpoint journal does not apply; it still honours
// SIGINT/SIGTERM cooperatively — an interrupted sweep prints the rows
// aggregated so far (marked partial) instead of dying mid-table.
#include <iostream>

#include "bench_common.hpp"
#include "core/colocation.hpp"
#include "core/multi_sfc.hpp"
#include "core/placement_dp.hpp"

int main(int argc, char** argv) {
  using namespace ppdc;
  const Options opts = Options::parse(argc, argv);
  opts.restrict_to({"k", "trials", "l", "n", "seed", "csv"});
  bench::install_signal_handlers();
  const int k = static_cast<int>(opts.get_int("k", 8));
  const int trials = static_cast<int>(opts.get_int("trials", 10));
  const int l = static_cast<int>(opts.get_int("l", 200));
  const int n = static_cast<int>(opts.get_int("n", 6));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(opts.get_int("seed", 42));
  const bool csv = opts.get_bool("csv", false);

  const Topology topo = build_fat_tree(k);
  const AllPairs apsp(topo.graph);

  // ---- (1) co-location capacity sweep.
  bench::header("Ablation — per-switch VNF capacity (§VII co-location)",
                "fat-tree k=" + std::to_string(k) + ", l=" +
                    std::to_string(l) + ", n=" + std::to_string(n) + ", " +
                    std::to_string(trials) + " trials");
  {
    TablePrinter t({"capacity", "C_a", "vs capacity 1 (%)"});
    std::vector<double> totals;
    bool partial = false;
    for (const int cap : {1, 2, 3, n}) {
      RunningStats s;
      for (int trial = 0; trial < trials; ++trial) {
        if (bench::cancel_flag().load(std::memory_order_relaxed)) break;
        Rng rng(seed * 1000003 + static_cast<std::uint64_t>(trial));
        const auto flows = bench::paper_workload(topo, l, rng);
        CostModel cm(apsp, flows);
        s.add(solve_top_colocated(cm, n, cap).comm_cost);
      }
      if (s.count() == 0) {
        partial = true;
        break;  // interrupted before this capacity produced a sample
      }
      if (s.count() < static_cast<std::size_t>(trials)) partial = true;
      totals.push_back(s.mean());
      t.add_row({std::to_string(cap),
                 bench::cell({s.mean(), s.ci95_halfwidth()}),
                 TablePrinter::num(100.0 * (1.0 - s.mean() / totals[0]), 1)});
    }
    if (csv) {
      t.write_csv(std::cout);
    } else {
      t.print(std::cout);
    }
    if (partial) {
      std::cerr << "\ninterrupted: co-location sweep is partial (fewer "
                   "trials or capacities than requested)\n";
      return 130;
    }
  }

  // ---- (2) heterogeneous SFC ranges.
  bench::header("Ablation — heterogeneous SFC ranges (§VII multi-SFC)",
                "each flow requests a random contiguous range of the "
                "catalogue; same workloads as above");
  {
    RunningStats full_aware, range_aware, range_exact;
    bool proven = true;
    for (int trial = 0; trial < trials; ++trial) {
      if (bench::cancel_flag().load(std::memory_order_relaxed)) break;
      Rng rng(seed * 1000003 + static_cast<std::uint64_t>(trial));
      const auto flows = bench::paper_workload(topo, l, rng);
      std::vector<RangedFlow> ranged;
      for (const auto& f : flows) {
        RangedFlow rf;
        rf.flow = f;
        rf.first = static_cast<int>(rng.uniform_int(0, n - 1));
        rf.last = static_cast<int>(rng.uniform_int(rf.first, n - 1));
        ranged.push_back(rf);
      }
      const MultiSfcCostModel msm(apsp, ranged, n);
      // (a) pretend everyone needs the full chain, place accordingly,
      //     then charge only the true ranges.
      CostModel cm(apsp, flows);
      const Placement naive = solve_top_dp(cm, n).placement;
      full_aware.add(msm.communication_cost(naive));
      // (b) range-aware relaxed DP.
      const MultiSfcResult relaxed = solve_multi_sfc_relaxed(msm);
      range_aware.add(relaxed.comm_cost);
      // (c) exact range-aware optimum (branch and bound).
      const MultiSfcResult exact =
          solve_multi_sfc_exhaustive(msm, 50'000'000, relaxed.placement);
      proven = proven && exact.proven_optimal;
      range_exact.add(exact.comm_cost);
    }
    if (full_aware.count() == 0) {
      std::cerr << "\ninterrupted: no heterogeneous-SFC trial completed\n";
      return 130;
    }
    TablePrinter t({"placer", "cost", "vs full-chain placement (%)"});
    const double base = full_aware.mean();
    auto row = [&](const std::string& name, const RunningStats& s) {
      t.add_row({name, bench::cell({s.mean(), s.ci95_halfwidth()}),
                 TablePrinter::num(100.0 * (1.0 - s.mean() / base), 1)});
    };
    row("full-chain placement", full_aware);
    row("range-aware DP (relaxed+repair)", range_aware);
    row(std::string("range-aware optimal") + (proven ? "" : "*"),
        range_exact);
    if (csv) {
      t.write_csv(std::cout);
    } else {
      t.print(std::cout);
    }
    if (full_aware.count() < static_cast<std::size_t>(trials)) {
      std::cerr << "\ninterrupted: heterogeneous-SFC table aggregates only "
                << full_aware.count() << " of " << trials << " trials\n";
      return 130;
    }
  }
  std::cout << "\nreading: co-location converts chain legs into free "
               "backplane hops; range-awareness shortens every flow's "
               "forced detour to exactly its own policy.\n";
  return 0;
}
