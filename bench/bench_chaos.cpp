// Chaos soak: correlated fault domains under the invariant auditor.
//
// Sweeps a fixed set of fault-domain scenarios (DESIGN.md §12) over a
// fat-tree and runs every epoch with the graceful-degradation ladder AND
// the runtime invariant auditor enabled:
//   - indep:       independent switch/link renewal processes (control),
//   - pod-outage:  pod-scale power-domain outages,
//   - cascade:     aggregation-switch failures drag their pod down,
//   - gray-links:  flapping fabric links (fail/repair bursts),
//   - maintenance: scheduled pod drain windows,
//   - storm:       everything at once.
// Every scenario also applies solver budget pressure (a deliberately tiny
// node budget on the exhaustive policy), so the ladder actually steps
// down and back up while the auditor re-checks placement feasibility,
// cost conservation, injector consistency, and the observer event stream
// each epoch.
//
// Exit status: nonzero when any invariant audit violation surfaced —
// with --keep-going the violating (trial, policy) cells are quarantined,
// reported, and counted; without it the first violation aborts the sweep.
//
// --sharded reruns the soak through the pod-sharded streaming engine
// (sim/sharded.hpp) on the two scenarios whose fault structure lines up
// with ingress-pod shards — pod-outage and gray-links — with churn, the
// per-shard containment ladder, the sharded invariant auditor, and a
// quarantine SLA price on contained shard failures. --epoch-journal BASE
// additionally journals every cell at epoch granularity so a killed soak
// resumes mid-cell (tools/smoke_resume_sharded.sh drives that path with
// PPDC_EPOCH_CRASH_AFTER).
//
// Options: --k --trials --l --n --mu --hours --mtbf --mttr --penalty
//          --node-budget --seed --threads --csv --smoke
//          --sharded --shard-threads --resolve-frac --quarantine-sla
//          --epoch-journal
//          --checkpoint --keep-going --retries  (robustness; see
//          EXPERIMENTS.md "Chaos soak")
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/chain_search.hpp"
#include "fault/fault.hpp"
#include "sim/experiment.hpp"

namespace {

struct Scenario {
  std::string name;
  ppdc::FaultScheduleConfig faults;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ppdc;
  const Options opts = Options::parse(argc, argv);
  opts.restrict_to({"k", "trials", "l", "n", "mu", "hours", "mtbf", "mttr",
                    "penalty", "node-budget", "seed", "threads", "csv",
                    "smoke", "sharded", "shard-threads", "resolve-frac",
                    "quarantine-sla", "epoch-journal", "checkpoint",
                    "keep-going", "retries"});
  // Smoke mode is the tier-1 / sanitizer gate: one trial of every
  // scenario at the smallest fabric that still has four pods to fail.
  const bool smoke = opts.get_bool("smoke", false);
  const bool sharded_mode = opts.get_bool("sharded", false);
  const int k = static_cast<int>(opts.get_int("k", smoke ? 4 : 8));
  const int trials = static_cast<int>(opts.get_int("trials", smoke ? 1 : 5));
  const int l = static_cast<int>(opts.get_int("l", smoke ? 30 : 200));
  const int n = static_cast<int>(opts.get_int("n", 3));
  const double mu = opts.get_double("mu", 1e4);
  const int hours = static_cast<int>(opts.get_int("hours", smoke ? 16 : 48));
  const double mtbf = opts.get_double("mtbf", smoke ? 12.0 : 32.0);
  const double mttr = opts.get_double("mttr", 2.0);
  const double penalty = opts.get_double("penalty", 50.0);
  // Deliberate budget pressure: a node budget this small truncates every
  // full re-solve of the exhaustive policy, which trips the ladder. The
  // node budget (not SolveBudget) keeps the trips deterministic.
  const std::uint64_t node_budget =
      static_cast<std::uint64_t>(opts.get_int("node-budget", 1));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(opts.get_int("seed", 42));
  const int threads = bench::threads_option(opts);
  const int shard_threads =
      static_cast<int>(opts.get_int("shard-threads", 0));
  const double resolve_frac = opts.get_double("resolve-frac", 0.15);
  const double quarantine_sla = opts.get_double("quarantine-sla", 5.0);
  const std::string epoch_journal = opts.get_string("epoch-journal", "");
  const bench::RobustnessOptions robust = bench::robustness_options(opts);
  bench::install_signal_handlers();

  bench::header(
      sharded_mode
          ? "Chaos soak (sharded) — shard containment, sharded audit"
          : "Chaos soak — fault domains, degradation ladder, invariant audit",
      "fat-tree k=" + std::to_string(k) + ", l=" + std::to_string(l) +
          ", n=" + std::to_string(n) + ", mu=" + TablePrinter::num(mu, 0) +
          ", " + std::to_string(hours) + "h, " + std::to_string(trials) +
          " trials, threads=" + bench::threads_label(threads) +
          "; MTBF=" + TablePrinter::num(mtbf, 0) + ", MTTR=" +
          TablePrinter::num(mttr, 0) + ", node budget=" +
          std::to_string(node_budget) + (smoke ? " [smoke]" : ""));

  const Topology topo = build_fat_tree(k);
  const AllPairs apsp(topo.graph);

  // The scenario grid. Every config shares the horizon and seed so the
  // spread across rows is the fault structure, not the draw.
  std::vector<Scenario> scenarios;
  {
    FaultScheduleConfig base;
    base.hours = hours;
    base.seed = seed;

    Scenario indep{"indep", base};
    indep.faults.switch_mtbf = mtbf;
    indep.faults.switch_mttr = mttr;
    indep.faults.link_mtbf = 2.0 * mtbf;
    indep.faults.link_mttr = mttr;
    scenarios.push_back(indep);

    Scenario pod{"pod-outage", base};
    pod.faults.domain_mtbf = static_cast<double>(hours);
    pod.faults.domain_mttr = 3.0;
    scenarios.push_back(pod);

    Scenario cascade{"cascade", base};
    cascade.faults.switch_mtbf = mtbf;
    cascade.faults.switch_mttr = mttr;
    cascade.faults.cascade_prob = 0.5;
    scenarios.push_back(cascade);

    Scenario gray{"gray-links", base};
    gray.faults.flap_mtbf = mtbf;
    gray.faults.flap_cycles = 3;
    scenarios.push_back(gray);

    Scenario drain{"maintenance", base};
    drain.faults.maintenance = {
        {"pod0", Hour{hours / 4}, Hour{hours / 4 + 3}},
        {"pod1", Hour{hours / 2}, Hour{hours / 2 + 3}},
    };
    scenarios.push_back(drain);

    Scenario storm{"storm", base};
    storm.faults = indep.faults;
    storm.faults.domain_mtbf = static_cast<double>(hours);
    storm.faults.domain_mttr = 3.0;
    storm.faults.cascade_prob = 0.25;
    storm.faults.flap_mtbf = 2.0 * mtbf;
    storm.faults.maintenance = {
        {"pod2", Hour{hours / 3}, Hour{hours / 3 + 3}},
    };
    scenarios.push_back(storm);
  }

  // The sharded soak keeps the two scenarios whose fault structure maps
  // onto ingress-pod shards: pod-scale outages (whole shards lose their
  // fabric at once) and gray links (every shard sees flapping paths).
  if (sharded_mode) {
    std::vector<Scenario> keep;
    for (Scenario& sc : scenarios) {
      if (sc.name == "pod-outage" || sc.name == "gray-links") {
        keep.push_back(std::move(sc));
      }
    }
    scenarios = std::move(keep);
  }

  TablePrinter table(
      sharded_mode
          ? std::vector<std::string>{"scenario", "fail/rep", "mPareto",
                                     "Optimal", "quarantined", "ladder",
                                     "qshards", "retries", "shardpen",
                                     "polfail"}
          : std::vector<std::string>{"scenario", "fail/rep", "mPareto",
                                     "Optimal", "quarantined", "downtime",
                                     "ladder", "refresh/frozen", "polfail"});
  int audit_violations = 0;
  try {
    for (const Scenario& sc : scenarios) {
      const FaultSchedule schedule = generate_fault_schedule(topo, sc.faults);
      int failures = 0, repairs = 0;
      for (const FaultEvent& e : schedule) {
        if (e.kind == FaultKind::kSwitchFail ||
            e.kind == FaultKind::kLinkFail) {
          ++failures;
        } else {
          ++repairs;
        }
      }

      ExperimentConfig cfg;
      cfg.trials = trials;
      cfg.seed = seed;
      cfg.workload.num_pairs = l;
      cfg.workload.intra_rack_fraction = 0.8;
      cfg.sfc_length = n;
      cfg.sim.hours = hours;
      cfg.sim.faults = schedule;
      cfg.sim.fault.mu = mu;
      cfg.sim.fault.quarantine_penalty = penalty;
      cfg.sim.ladder.enabled = true;
      cfg.sim.audit.enabled = true;
      cfg.threads = threads;
      if (sharded_mode) {
        // Pod-sharded streaming path: churn every epoch, re-solve on the
        // churn threshold, contain per-shard failures under the ladder,
        // and price quarantined shard-epochs via the SLA. The epoch
        // journal base is tagged per scenario so the per-cell derived
        // paths of consecutive scenarios never collide.
        cfg.sharded.enabled = true;
        cfg.sharded.threads = shard_threads;
        cfg.sharded.resolve_churn_fraction = resolve_frac;
        cfg.sharded.quarantine_sla = quarantine_sla;
        cfg.sharded.churn.arrivals_per_epoch = std::max(1, l / 10);
        cfg.sharded.churn.departure_prob = 0.05;
        cfg.sharded.churn.rerate_prob = 0.1;
        if (!epoch_journal.empty()) {
          cfg.sharded.epoch_journal = epoch_journal + "." + sc.name;
        }
      }
      bench::apply_robustness(cfg, robust, sc.name);

      ParetoMigrationPolicy pareto(mu);
      ChainSearchConfig pressured;
      pressured.node_budget = node_budget;
      ExhaustiveMigrationPolicy optimal(mu, pressured);
      const auto stats =
          bench::run_or_exit(topo, apsp, cfg, {&pareto, &optimal});
      for (const PolicyStats& s : stats) {
        for (const JobFailure& f : s.failures) {
          if (f.error.find("invariant audit") != std::string::npos) {
            ++audit_violations;
          }
        }
      }

      // The Optimal column is the pressured one — its ladder columns show
      // the soak actually exercising the degradation machinery.
      const PolicyStats& hot = stats[1];
      if (sharded_mode) {
        table.add_row(
            {sc.name,
             std::to_string(failures) + "/" + std::to_string(repairs),
             bench::cell(stats[0], stats[0].total_cost),
             bench::cell(hot, hot.total_cost),
             bench::cell(hot, hot.quarantined_flow_epochs, 1),
             bench::cell(hot, hot.ladder_transitions, 1),
             bench::cell(hot, hot.quarantined_shard_epochs, 1),
             bench::cell(hot, hot.shard_retries, 1),
             bench::cell(hot, hot.shard_penalty, 1),
             bench::cell(hot, hot.policy_failures, 1)});
      } else {
        table.add_row(
            {sc.name,
             std::to_string(failures) + "/" + std::to_string(repairs),
             bench::cell(stats[0], stats[0].total_cost),
             bench::cell(hot, hot.total_cost),
             bench::cell(hot, hot.quarantined_flow_epochs, 1),
             bench::cell(hot, hot.downtime_epochs, 1),
             bench::cell(hot, hot.ladder_transitions, 1),
             bench::cell(hot, hot.refresh_only_epochs, 1) + "/" +
                 bench::cell(hot, hot.frozen_epochs, 1),
             bench::cell(hot, hot.policy_failures, 1)});
      }
    }
  } catch (const PpdcError& e) {
    // Without --keep-going the first audit violation (or any other
    // failing job) aborts the sweep; surface it and fail the gate.
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  if (opts.get_bool("csv", false)) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  if (sharded_mode) {
    std::cout << "\nnote: every epoch ran under the sharded invariant "
                 "auditor (per-shard placement feasibility and cost "
                 "conservation, id-map and injector consistency, merged "
                 "event stream); 'qshards' counts failure-quarantined "
                 "shard-epochs, 'retries' the seeded-backoff re-solve "
                 "attempts, and 'shardpen' the quarantine SLA charge. The "
                 "Optimal policy runs under a node budget of "
              << node_budget << " to keep the per-shard ladders busy on "
                                "purpose.\n";
  } else {
    std::cout << "\nnote: every epoch ran under the invariant auditor "
                 "(placement feasibility, cost conservation, injector "
                 "consistency, event-stream sanity); 'ladder' counts rung "
                 "transitions and 'refresh/frozen' the epochs spent "
                 "degraded. The Optimal policy runs under a node budget of "
              << node_budget << " to keep the ladder busy on purpose.\n";
  }
  if (audit_violations > 0) {
    std::cerr << "error: " << audit_violations
              << " invariant audit violation(s) — see warnings above\n";
    return 1;
  }
  std::cout << "audit: 0 violations\n";
  return 0;
}
