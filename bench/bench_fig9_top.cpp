// Fig. 9: comparing VNF placement algorithms for TOP on a k=8 unweighted
// fat-tree — Optimal (Algorithm 4 via branch-and-bound), DP (Algorithm 3),
// Greedy (Liu et al. [34]) and Steering (Zhang et al. [55]).
//
//   panel (a): total VM communication cost vs the number of VM pairs l
//   panel (b): total VM communication cost vs the SFC length n
//
// Expected shape (paper): DP tracks Optimal closely; both are far below
// Greedy and Steering.
//
// Options: --k --trials --n --l --lvalues --nvalues --seed --csv
#include <iostream>
#include <sstream>

#include "baselines/greedy_liu.hpp"
#include "baselines/steering.hpp"
#include "bench_common.hpp"
#include "core/chain_search.hpp"
#include "core/placement_dp.hpp"

namespace {

std::vector<int> parse_list(const std::string& csv) {
  std::vector<int> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    out.push_back(std::stoi(item));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ppdc;
  const Options opts = Options::parse(argc, argv);
  opts.restrict_to(
      {"k", "trials", "n", "l", "lvalues", "nvalues", "seed", "csv"});
  const int k = static_cast<int>(opts.get_int("k", 8));
  const int trials = static_cast<int>(opts.get_int("trials", 20));
  const int fixed_n = static_cast<int>(opts.get_int("n", 5));
  const int fixed_l = static_cast<int>(opts.get_int("l", 200));
  const auto l_values =
      parse_list(opts.get_string("lvalues", "50,100,200,400,800"));
  const auto n_values = parse_list(opts.get_string("nvalues", "3,5,7,9,11,13"));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(opts.get_int("seed", 42));
  const bool csv = opts.get_bool("csv", false);

  const Topology topo = build_fat_tree(k);
  const AllPairs apsp(topo.graph);

  auto run_panel = [&](const std::string& title, const std::string& sweep,
                       const std::vector<int>& values, bool sweep_is_l) {
    bench::header(title, "fat-tree k=" + std::to_string(k) +
                             ", unweighted, " + std::to_string(trials) +
                             " runs, 95% CI" +
                             (sweep_is_l ? ", n=" + std::to_string(fixed_n)
                                         : ", l=" + std::to_string(fixed_l)));
    TablePrinter table(
        {sweep, "Optimal", "DP", "Greedy[34]", "Steering[55]"});
    for (const int v : values) {
      const int l = sweep_is_l ? v : fixed_l;
      const int n = sweep_is_l ? fixed_n : v;
      RunningStats opt_s, dp_s, greedy_s, steering_s;
      bool all_proven = true;
      for (int t = 0; t < trials; ++t) {
        // Paired trials: the same seed stream for every sweep value.
        Rng rng(seed * 1000003 + static_cast<std::uint64_t>(t));
        const auto flows = bench::paper_workload(topo, l, rng);
        CostModel cm(apsp, flows);
        const PlacementResult dp = solve_top_dp(cm, n);
        dp_s.add(dp.comm_cost);
        greedy_s.add(solve_top_greedy_liu(cm, n).comm_cost);
        steering_s.add(solve_top_steering(cm, n).comm_cost);
        ChainSearchConfig cfg;
        cfg.initial = dp.placement;
        cfg.node_budget = 50'000'000;
        const ChainSearchResult opt = solve_top_exhaustive(cm, n, cfg);
        all_proven = all_proven && opt.proven_optimal;
        opt_s.add(opt.objective);
      }
      table.add_row({std::to_string(v) + (all_proven ? "" : "*"),
                     bench::cell({opt_s.mean(), opt_s.ci95_halfwidth()}),
                     bench::cell({dp_s.mean(), dp_s.ci95_halfwidth()}),
                     bench::cell({greedy_s.mean(), greedy_s.ci95_halfwidth()}),
                     bench::cell({steering_s.mean(),
                                  steering_s.ci95_halfwidth()})});
    }
    if (csv) {
      table.write_csv(std::cout);
    } else {
      table.print(std::cout);
    }
  };

  run_panel("Fig. 9(a) — TOP placement cost vs number of VM pairs l",
            "l", l_values, /*sweep_is_l=*/true);
  run_panel("Fig. 9(b) — TOP placement cost vs SFC length n", "n",
            n_values, /*sweep_is_l=*/false);
  std::cout << "\n(* = node budget hit; Optimal column is best-found)\n"
            << "paper shape: DP ~ Optimal << Greedy, Steering.\n";
  return 0;
}
