#include "net/link_load.hpp"

#include <algorithm>
#include <queue>

#include "graph/graph.hpp"
#include "util/require.hpp"
#include "workload/traffic.hpp"

namespace ppdc {

namespace {

std::uint64_t key_of(const Graph& g, NodeId u, NodeId v) {
  const auto a = static_cast<std::uint64_t>(std::min(u, v));
  const auto b = static_cast<std::uint64_t>(std::max(u, v));
  return a * static_cast<std::uint64_t>(g.num_nodes()) + b;
}

}  // namespace

LinkLoadMap::LinkLoadMap(const Graph& g) : g_(&g) {
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const auto& a : g.neighbors(u)) {
      if (u < a.to) {
        index_[key_of(g, u, a.to)] = links_.size();
        links_.emplace_back(u, a.to);
      }
    }
  }
  loads_.assign(links_.size(), 0.0);
}

std::size_t LinkLoadMap::index_of(NodeId u, NodeId v) const {
  const auto it = index_.find(key_of(*g_, u, v));
  PPDC_REQUIRE(it != index_.end(), "no such link");
  return it->second;
}

void LinkLoadMap::add(NodeId u, NodeId v, double amount) {
  PPDC_REQUIRE(amount >= 0.0, "negative load");
  loads_[index_of(u, v)] += amount;
}

double LinkLoadMap::load(NodeId u, NodeId v) const {
  return loads_[index_of(u, v)];
}

double LinkLoadMap::max_load() const {
  double m = 0.0;
  for (const double x : loads_) m = std::max(m, x);
  return m;
}

double LinkLoadMap::mean_load() const {
  if (loads_.empty()) return 0.0;
  return total_load() / static_cast<double>(loads_.size());
}

double LinkLoadMap::total_load() const {
  double s = 0.0;
  for (const double x : loads_) s += x;
  return s;
}

std::vector<std::tuple<NodeId, NodeId, double>> LinkLoadMap::hottest(
    int k) const {
  std::vector<std::tuple<NodeId, NodeId, double>> all;
  all.reserve(links_.size());
  for (std::size_t i = 0; i < links_.size(); ++i) {
    all.emplace_back(links_[i].first, links_[i].second, loads_[i]);
  }
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    return std::get<2>(a) > std::get<2>(b);
  });
  if (k >= 0 && static_cast<std::size_t>(k) < all.size()) {
    all.resize(static_cast<std::size_t>(k));
  }
  return all;
}

double LinkLoadMap::max_utilization(double capacity) const {
  PPDC_REQUIRE(capacity > 0.0, "capacity must be positive");
  return max_load() / capacity;
}

void route_ecmp(const AllPairs& apsp, NodeId src, NodeId dst, double amount,
                LinkLoadMap& out) {
  PPDC_REQUIRE(amount >= 0.0, "negative amount");
  if (src == dst || amount == 0.0) return;
  const Graph& g = apsp.graph();

  // Process nodes in decreasing distance-to-dst order so that all mass
  // arriving at a node is known before it is split (the shortest-path
  // DAG is acyclic in this order).
  constexpr double kTol = 1e-9;
  std::unordered_map<NodeId, double> mass;
  using Item = std::pair<double, NodeId>;  // (distance to dst, node)
  std::priority_queue<Item> pq;
  mass[src] = amount;
  pq.emplace(apsp.cost(src, dst), src);
  std::unordered_map<NodeId, bool> done;
  while (!pq.empty()) {
    const auto [dist, u] = pq.top();
    pq.pop();
    if (u == dst) continue;
    if (done[u]) continue;
    done[u] = true;
    const double m = mass[u];
    if (m <= 0.0) continue;
    // ECMP next hops: neighbors on a shortest path to dst.
    std::vector<NodeId> hops;
    for (const auto& a : g.neighbors(u)) {
      if (a.weight + apsp.cost(a.to, dst) <= apsp.cost(u, dst) + kTol) {
        hops.push_back(a.to);
      }
    }
    PPDC_REQUIRE(!hops.empty(), "shortest-path DAG has no next hop");
    const double share = m / static_cast<double>(hops.size());
    for (const NodeId v : hops) {
      out.add(u, v, share);
      if (v != dst) {
        mass[v] += share;
        if (!done[v]) pq.emplace(apsp.cost(v, dst), v);
      }
    }
    mass[u] = 0.0;
  }
}

LinkLoadMap policy_link_load(const AllPairs& apsp,
                             const std::vector<VmFlow>& flows,
                             const Placement& p) {
  validate_placement(apsp.graph(), p);
  LinkLoadMap out(apsp.graph());
  for (const auto& f : flows) {
    route_ecmp(apsp, f.src_host, p.front(), f.rate, out);
    for (std::size_t j = 0; j + 1 < p.size(); ++j) {
      route_ecmp(apsp, p[j], p[j + 1], f.rate, out);
    }
    route_ecmp(apsp, p.back(), f.dst_host, f.rate, out);
  }
  return out;
}

}  // namespace ppdc
