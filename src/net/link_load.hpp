// Per-link bandwidth accounting under ECMP routing.
//
// The paper's motivation (§I) is that policy-preserving traffic "consumes
// more network bandwidth"; its cost model (§III) abstracts bandwidth away
// by assuming well-provisioned links ("generally provisioned around 40%
// of utilization" [31]). This subsystem makes the bandwidth story
// measurable: it routes every policy-preserving flow segment along the
// shortest-path DAG with equal splitting at each hop (fractional ECMP —
// the fluid limit of per-flow hashing) and reports per-link loads and
// utilizations, so placements can be compared by the congestion they
// actually cause (see bench_linkload).
#pragma once

#include <tuple>
#include <unordered_map>
#include <vector>

#include "core/cost_model.hpp"
#include "graph/apsp.hpp"
#include "graph/graph.hpp"
#include "workload/traffic.hpp"

namespace ppdc {

/// Aggregated undirected per-link load.
class LinkLoadMap {
 public:
  explicit LinkLoadMap(const Graph& g);

  /// Adds `amount` to link u-v (must exist in the graph).
  void add(NodeId u, NodeId v, double amount);

  /// Current load on link u-v.
  double load(NodeId u, NodeId v) const;

  double max_load() const;
  double mean_load() const;
  /// Σ over links of load (== Σ over routed segments of amount x hops on
  /// unit-weight graphs).
  double total_load() const;
  std::size_t num_links() const { return loads_.size(); }

  /// Links sorted by load descending, top `k`.
  std::vector<std::tuple<NodeId, NodeId, double>> hottest(int k) const;

  /// max_load / capacity.
  double max_utilization(double capacity) const;

 private:
  std::size_t index_of(NodeId u, NodeId v) const;

  const Graph* g_;
  std::vector<std::pair<NodeId, NodeId>> links_;  ///< canonical (min,max)
  std::vector<double> loads_;
  std::unordered_map<std::uint64_t, std::size_t> index_;
};

/// Fractionally routes `amount` units from src to dst over the
/// shortest-path DAG (equal ECMP split at every hop). No-op when
/// src == dst or amount == 0.
void route_ecmp(const AllPairs& apsp, NodeId src, NodeId dst, double amount,
                LinkLoadMap& out);

/// Routes every flow through its policy-preserving path
/// src -> p_1 -> ... -> p_n -> dst, each segment ECMP-split.
LinkLoadMap policy_link_load(const AllPairs& apsp,
                             const std::vector<VmFlow>& flows,
                             const Placement& p);

}  // namespace ppdc
