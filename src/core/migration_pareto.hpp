// mPareto: Algorithm 5 of the paper, traffic-optimal VNF migration.
//
// Given the current placement p and the new traffic vector (already
// reflected in the CostModel), the algorithm:
//   1. computes the fresh optimum p' with Algorithm 3 (DP placement),
//   2. lays the parallel migration frontiers between p and p' (Def. 2),
//   3. evaluates C_t(p, fr) = C_b(p, fr) + C_a(fr) on every frontier row
//      and returns the minimum — i.e. it scans the Pareto front between
//      "stay put" (zero migration cost) and "jump all the way" (minimum
//      communication cost) and picks the scalarized optimum (Theorem 5).
//
// The frontier points are exposed for the Fig. 6(b) Pareto-front analysis.
#pragma once

#include <vector>

#include "core/cost_model.hpp"
#include "core/placement_dp.hpp"
#include "core/solve_budget.hpp"

namespace ppdc {

/// One point of the migration trade-off curve.
struct FrontierPoint {
  double migration_cost = 0.0;  ///< C_b(p, fr)
  double comm_cost = 0.0;       ///< C_a(fr)
  bool collision_free = true;   ///< eligible as a final migration
};

/// Outcome of a VNF migration decision.
struct MigrationResult {
  Placement migration;          ///< m
  double total_cost = 0.0;      ///< C_t(p, m), Eq. 8
  double migration_cost = 0.0;  ///< C_b(p, m)
  double comm_cost = 0.0;       ///< C_a(m)
  int vnfs_moved = 0;           ///< |{j : m(j) != p(j)}|
  std::vector<FrontierPoint> frontier_points;  ///< Fig. 6(b) data
};

/// Options for mPareto.
struct ParetoMigrationOptions {
  /// Forwarded to the inner Algorithm 3 run.
  TopDpOptions placement;
  /// When true, in addition to the h_max parallel frontiers, every general
  /// frontier (Def. 1, Π h_j combinations) is scanned as long as the count
  /// stays below `frontier_budget`. This is the FrontierExhaustive
  /// near-optimal reference used as the "Optimal" proxy at k = 16 scale.
  bool exhaustive_frontiers = false;
  std::int64_t frontier_budget = 2'000'000;
  /// Wall-clock budget for the exhaustive general-frontier scan. On expiry
  /// the scan stops and the best frontier seen so far wins. The parallel
  /// rows are always evaluated in full (row 1 is "stay put", so the result
  /// is never worse than not migrating). Default: unlimited.
  SolveBudget budget;
};

/// Algorithm 5 (and its frontier-exhaustive extension). `model` must
/// already reflect the *new* traffic rates. The returned migration is
/// always collision-free and never worse than staying at `from` (the first
/// parallel frontier row is `from` itself).
MigrationResult solve_tom_pareto(const CostModel& model,
                                 const Placement& from, double mu,
                                 const ParetoMigrationOptions& options = {});

/// Evaluates a fixed migration target (used by baseline policies and by
/// the NoMigration reference, where to == from).
MigrationResult evaluate_migration(const CostModel& model,
                                   const Placement& from,
                                   const Placement& to, double mu);

}  // namespace ppdc
