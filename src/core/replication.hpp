// VNF replication (paper §VII, future work): instead of migrating a
// single SFC instance around the PPDC, deploy R replicas of every VNF and
// let each flow choose, per chain stage, the replica that minimizes its
// own policy-preserving path.
//
// Model:
//  * `ReplicatedPlacement` holds R chains; replica chains may share
//    switches with each other (footnote 3 only forbids two VNFs of the
//    *same* SFC instance on one switch), but each individual chain is a
//    valid placement.
//  * A flow's cost is the Viterbi optimum over per-stage replica choices:
//      min_{x_1..x_n, x_j in column j} c(s, x_1) + Σ c(x_j, x_j+1) + c(x_n, d)
//    computed in O(n R^2) per flow.
//  * `solve_replicated_top` clusters flows by traffic mass (top-R source
//    pods, remaining flows joining the nearest cluster) and runs the
//    Algorithm 3 DP per cluster — a natural generalization of TOP that
//    keeps each replica chain traffic-optimal for its tenant cluster.
//
// The bench_ablation_replication harness answers the paper's open
// question ("to which extent VNF replication could be beneficial ...
// compared to VNF migration"): static replicas vs mPareto on the same
// diurnal workload.
#pragma once

#include <vector>

#include "core/cost_model.hpp"
#include "core/placement_dp.hpp"
#include "graph/apsp.hpp"
#include "workload/traffic.hpp"

namespace ppdc {

/// R replica chains of the same SFC.
struct ReplicatedPlacement {
  std::vector<Placement> chains;  ///< chains[c][j]: replica c of VNF j+1

  int num_replicas() const noexcept { return static_cast<int>(chains.size()); }
  int sfc_length() const {
    return chains.empty() ? 0 : static_cast<int>(chains.front().size());
  }
};

/// Cheapest policy-preserving path of one flow through the replica
/// columns (per-stage Viterbi). Requires a non-empty placement.
double replicated_flow_cost(const AllPairs& apsp, const VmFlow& flow,
                            const ReplicatedPlacement& placement);

/// Total communication cost of all flows under per-stage replica choice.
double replicated_communication_cost(const AllPairs& apsp,
                                     const std::vector<VmFlow>& flows,
                                     const ReplicatedPlacement& placement);

/// Clustered replica placement: splits flows into `replicas` clusters by
/// source-side traffic mass and solves TOP (Algorithm 3) per cluster.
/// `replicas` must be >= 1; with 1 it degenerates to solve_top_dp.
ReplicatedPlacement solve_replicated_top(const CostModel& model, int n,
                                         int replicas,
                                         const TopDpOptions& options = {});

}  // namespace ppdc
