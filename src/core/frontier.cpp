#include "core/frontier.hpp"

#include <algorithm>
#include <functional>
#include <limits>

#include "graph/apsp.hpp"
#include "graph/graph.hpp"
#include "util/require.hpp"

namespace ppdc {

MigrationFrontiers::MigrationFrontiers(const AllPairs& apsp,
                                       const Placement& from,
                                       const Placement& to) {
  PPDC_REQUIRE(!from.empty(), "empty placement");
  PPDC_REQUIRE(from.size() == to.size(), "placement size mismatch");
  const Graph& g = apsp.graph();
  paths_.reserve(from.size());
  h_.reserve(from.size());
  for (std::size_t j = 0; j < from.size(); ++j) {
    PPDC_REQUIRE(g.is_switch(from[j]) && g.is_switch(to[j]),
                 "migration endpoints must be switches");
    std::vector<NodeId> path = from[j] == to[j]
                                   ? std::vector<NodeId>{from[j]}
                                   : apsp.path(from[j], to[j]);
    // Drop any host vertices (possible only on degenerate topologies where
    // a host has degree > 1); a VNF cannot pause on a host.
    path.erase(std::remove_if(path.begin(), path.end(),
                              [&](NodeId v) { return g.is_host(v); }),
               path.end());
    PPDC_REQUIRE(!path.empty() && path.front() == from[j] &&
                     path.back() == to[j],
                 "migration path must connect the endpoints via switches");
    h_.push_back(static_cast<int>(path.size()));
    h_max_ = std::max(h_max_, h_.back());
    paths_.push_back(std::move(path));
  }
}

Placement MigrationFrontiers::parallel_frontier(int i) const {
  PPDC_REQUIRE(i >= 1 && i <= h_max_, "frontier index out of range");
  Placement fr;
  fr.reserve(paths_.size());
  for (const ChainPos j : paths_.ids()) {
    const int k = std::min(i, h_[j]);
    fr.push_back(paths_[j][static_cast<std::size_t>(k - 1)]);
  }
  return fr;
}

std::vector<Placement> MigrationFrontiers::all_parallel_frontiers() const {
  std::vector<Placement> rows;
  rows.reserve(static_cast<std::size_t>(h_max_));
  for (int i = 1; i <= h_max_; ++i) rows.push_back(parallel_frontier(i));
  return rows;
}

std::int64_t MigrationFrontiers::frontier_count() const noexcept {
  std::int64_t count = 1;
  for (const int h : h_) {
    if (count > std::numeric_limits<std::int64_t>::max() / h) {
      return std::numeric_limits<std::int64_t>::max();
    }
    count *= h;
  }
  return count;
}

void MigrationFrontiers::for_each_frontier(
    std::int64_t max_enumerated,
    const std::function<void(const Placement&)>& visit) const {
  for_each_frontier_until(max_enumerated, [&](const Placement& fr) {
    visit(fr);
    return true;
  });
}

void MigrationFrontiers::for_each_frontier_until(
    std::int64_t max_enumerated,
    const std::function<bool(const Placement&)>& visit) const {
  PPDC_REQUIRE(frontier_count() <= max_enumerated,
               "frontier space too large to enumerate");
  const std::size_t n = paths_.size();
  IndexedVector<ChainPos, int> odometer(n, 0);
  Placement fr(n);
  for (;;) {
    for (const ChainPos j : paths_.ids()) {
      fr[static_cast<std::size_t>(j.value())] =
          paths_[j][static_cast<std::size_t>(odometer[j])];
    }
    if (!visit(fr)) return;
    // Increment odometer.
    ChainPos j{0};
    const ChainPos end = paths_.end_id();
    while (j < end) {
      if (++odometer[j] < h_[j]) break;
      odometer[j] = 0;
      ++j;
    }
    if (j == end) break;
  }
}

const std::vector<NodeId>& MigrationFrontiers::path(ChainPos j) const {
  PPDC_REQUIRE(paths_.contains(j), "path index out of range");
  return paths_[j];
}

bool is_collision_free(const Placement& p) {
  Placement sorted = p;
  std::sort(sorted.begin(), sorted.end());
  return std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end();
}

}  // namespace ppdc
