#include "core/sharded_cost_model.hpp"

#include <algorithm>
#include <functional>

#include "graph/graph.hpp"
#include "util/require.hpp"

namespace ppdc {

int ShardMap::shard_of(NodeId host) const {
  PPDC_REQUIRE(host != kInvalidNode && static_cast<std::size_t>(host) <
                                           shard_of_host.size(),
               "host " + std::to_string(host) + " outside the shard map");
  const int s = shard_of_host[static_cast<std::size_t>(host)];
  PPDC_REQUIRE(s >= 0, "node " + std::to_string(host) +
                           " is not a mapped host (switch or unracked?)");
  return s;
}

ShardMap ShardMap::by_ingress_pod(const Topology& topo) {
  PPDC_REQUIRE(!topo.racks.empty(), "topology exposes no racks");
  ShardMap map;
  map.shard_of_host.assign(topo.graph.num_nodes(), -1);
  if (topo.power_domains.empty()) return single(topo);

  // Rack -> domain via its top-of-rack switch (domains list switches in
  // ascending NodeId order, so binary search applies).
  for (std::size_t d = 0; d < topo.power_domains.size(); ++d) {
    map.names.push_back(topo.power_domains[d].name);
  }
  std::vector<RackIdx> leftover;
  for (const RackIdx r : topo.racks.ids()) {
    const NodeId tor = topo.rack_switches[r];
    int shard = -1;
    for (std::size_t d = 0; d < topo.power_domains.size(); ++d) {
      const auto& sw = topo.power_domains[d].switches;
      if (std::binary_search(sw.begin(), sw.end(), tor)) {
        shard = static_cast<int>(d);
        break;
      }
    }
    if (shard < 0) {
      leftover.push_back(r);
      continue;
    }
    for (const NodeId h : topo.racks[r]) {
      map.shard_of_host[static_cast<std::size_t>(h)] = shard;
    }
  }
  if (!leftover.empty()) {
    const int shard = map.num_shards();
    map.names.push_back("unpodded");
    for (const RackIdx r : leftover) {
      for (const NodeId h : topo.racks[r]) {
        map.shard_of_host[static_cast<std::size_t>(h)] = shard;
      }
    }
  }
  return map;
}

ShardMap ShardMap::single(const Topology& topo) {
  PPDC_REQUIRE(!topo.racks.empty(), "topology exposes no racks");
  ShardMap map;
  map.names.push_back("all");
  map.shard_of_host.assign(topo.graph.num_nodes(), -1);
  for (const RackIdx r : topo.racks.ids()) {
    for (const NodeId h : topo.racks[r]) {
      map.shard_of_host[static_cast<std::size_t>(h)] = 0;
    }
  }
  return map;
}

ShardedCostModel::ShardedCostModel(const AllPairs& apsp, const ShardMap& map,
                                   const std::vector<VmFlow>& flows,
                                   int min_groups)
    : apsp_(&apsp), map_(&map), min_groups_(min_groups) {
  PPDC_REQUIRE(map.num_shards() >= 1, "shard map has no shards");
  shards_.reserve(static_cast<std::size_t>(map.num_shards()));
  for (int s = 0; s < map.num_shards(); ++s) {
    auto shard = std::make_unique<Shard>();
    shard->name = map.names[static_cast<std::size_t>(s)];
    shards_.push_back(std::move(shard));
  }

  // Partition in ascending global id order, so each shard's local order
  // is the global order restricted to the shard (and the single-shard
  // partition is the identity).
  flow_shard_.reserve(flows.size());
  flow_local_.reserve(flows.size());
  for (std::size_t g = 0; g < flows.size(); ++g) {
    const VmFlow& f = flows[g];
    const int s = map.shard_of(f.src_host);
    Shard& sh = *shards_[static_cast<std::size_t>(s)];
    flow_shard_.push_back(s);
    flow_local_.push_back(flow_count(sh.flows));
    sh.flows.push_back(f);
    sh.base_rates.push_back(f.rate);
    sh.groups.push_back(f.group);
    sh.global_ids.push_back(FlowId{static_cast<std::int32_t>(g)});
    if (f.rate != 0.0) ++sh.live;
  }

  for (auto& shard : shards_) {
    shard->model = std::make_unique<CostModel>(apsp, shard->flows);
    shard->model->enable_group_refresh(shard->base_rates, shard->groups,
                                       min_groups_);
  }
}

int ShardedCostModel::flow_shard(FlowId g) const {
  const auto i = static_cast<std::size_t>(g.value());
  return i < flow_shard_.size() ? flow_shard_[i] : -1;
}

FlowId ShardedCostModel::flow_local(FlowId g) const {
  return flow_local_[static_cast<std::size_t>(g.value())];
}

void ShardedCostModel::allocate_local(int s, FlowId g, const VmFlow& f) {
  Shard& sh = *shards_[static_cast<std::size_t>(s)];
  if (!sh.free_locals.empty()) {
    const FlowId local = sh.free_locals.back();
    sh.free_locals.pop_back();
    const auto l = static_cast<std::size_t>(local.value());
    sh.flows[l] = f;
    sh.base_rates[l] = f.rate;
    sh.groups[l] = f.group;
    sh.global_ids[l] = g;
    sh.model->rebase_flow(local, f.rate, f.group);
    flow_local_[static_cast<std::size_t>(g.value())] = local;
  } else {
    const FlowId local = flow_count(sh.flows);
    sh.flows.push_back(f);
    sh.base_rates.push_back(f.rate);
    sh.groups.push_back(f.group);
    sh.global_ids.push_back(g);
    sh.model->flows_appended({f.rate}, {f.group});
    flow_local_[static_cast<std::size_t>(g.value())] = local;
  }
  flow_shard_[static_cast<std::size_t>(g.value())] = s;
  ++sh.live;
}

std::vector<int> ShardedCostModel::apply_churn(
    const std::vector<VmFlow>& flows, const FlowChurn& churn) {
  std::vector<int> touched(shards_.size(), 0);

  // Departures: the slot's base drops to 0 in place. It stays mapped to
  // its shard (endpoints kept valid, contributes nothing) until an
  // arrival re-uses its global id.
  for (const FlowId g : churn.departed) {
    const auto gi = static_cast<std::size_t>(g.value());
    PPDC_REQUIRE(gi < flow_shard_.size() && flow_shard_[gi] >= 0,
                 "departed flow " + std::to_string(g.value()) +
                     " was never mapped to a shard");
    Shard& sh = *shards_[static_cast<std::size_t>(flow_shard_[gi])];
    const FlowId local = flow_local_[gi];
    const auto l = static_cast<std::size_t>(local.value());
    sh.flows[l].rate = 0.0;
    sh.base_rates[l] = 0.0;
    sh.model->rebase_flow(local, 0.0, sh.groups[l]);
    --sh.live;
    ++touched[static_cast<std::size_t>(flow_shard_[gi])];
  }

  // Re-rates: base re-drawn, endpoints and group unchanged.
  for (const FlowId g : churn.rerated) {
    const auto gi = static_cast<std::size_t>(g.value());
    PPDC_REQUIRE(gi < flow_shard_.size() && flow_shard_[gi] >= 0,
                 "re-rated flow " + std::to_string(g.value()) +
                     " was never mapped to a shard");
    Shard& sh = *shards_[static_cast<std::size_t>(flow_shard_[gi])];
    const FlowId local = flow_local_[gi];
    const auto l = static_cast<std::size_t>(local.value());
    const double base = flows[gi].rate;
    sh.flows[l].rate = base;
    sh.base_rates[l] = base;
    sh.model->rebase_flow(local, base, sh.groups[l]);
    ++touched[static_cast<std::size_t>(flow_shard_[gi])];
  }

  // Arrivals: a re-used global slot stays in its shard when the new
  // ingress pod matches, otherwise the old local slot is freed and the
  // flow allocates in its new shard. Appended global ids always allocate.
  bool freed_any = false;
  for (const FlowId g : churn.arrived) {
    const auto gi = static_cast<std::size_t>(g.value());
    const VmFlow& f = flows[gi];
    const int new_shard = map_->shard_of(f.src_host);
    if (gi < flow_shard_.size() && flow_shard_[gi] >= 0) {
      const int old_shard = flow_shard_[gi];
      Shard& old_sh = *shards_[static_cast<std::size_t>(old_shard)];
      const FlowId local = flow_local_[gi];
      const auto l = static_cast<std::size_t>(local.value());
      if (old_shard == new_shard) {
        // Same-pod re-spawn (or same-epoch depart+arrive): overwrite in
        // place. The slot may still carry a non-zero base — rebase_flow
        // subtracts it at the snapshot endpoints before adding the new.
        if (old_sh.base_rates[l] == 0.0) ++old_sh.live;
        old_sh.flows[l] = f;
        old_sh.base_rates[l] = f.rate;
        old_sh.groups[l] = f.group;
        old_sh.model->rebase_flow(local, f.rate, f.group);
        ++touched[static_cast<std::size_t>(old_shard)];
        continue;
      }
      // Cross-pod re-spawn: vacate the old local slot.
      if (old_sh.base_rates[l] != 0.0) {
        old_sh.model->rebase_flow(local, 0.0, old_sh.groups[l]);
        --old_sh.live;
      }
      old_sh.flows[l].rate = 0.0;
      old_sh.base_rates[l] = 0.0;
      old_sh.global_ids[l] = FlowId::invalid();
      old_sh.free_locals.push_back(local);
      freed_any = true;
      ++touched[static_cast<std::size_t>(old_shard)];
    } else if (gi >= flow_shard_.size()) {
      PPDC_REQUIRE(gi == flow_shard_.size(),
                   "arrived flow " + std::to_string(g.value()) +
                       " skips over unmapped global slots");
      flow_shard_.push_back(-1);
      flow_local_.push_back(FlowId::invalid());
    }
    if (freed_any) {
      // Keep every free-list descending so pop_back re-uses the smallest
      // slot first; sorting per arrival keeps the order independent of
      // how departures and cross-pod moves interleaved.
      for (auto& shard : shards_) {
        std::sort(shard->free_locals.begin(), shard->free_locals.end(),
                  std::greater<FlowId>());
      }
      freed_any = false;
    }
    allocate_local(new_shard, g, f);
    ++touched[static_cast<std::size_t>(new_shard)];
  }
  return touched;
}

ShardedCostModel::ShardSnapshot ShardedCostModel::shard_snapshot(
    int s) const {
  const Shard& sh = shard(s);
  ShardSnapshot snap;
  snap.flows = sh.flows;
  snap.base_rates = sh.base_rates;
  snap.groups = sh.groups;
  snap.global_ids = sh.global_ids;
  snap.free_locals = sh.free_locals;
  snap.live = sh.live;
  snap.model = sh.model->group_snapshot();
  return snap;
}

void ShardedCostModel::restore_shards(
    const std::vector<ShardSnapshot>& snaps) {
  PPDC_REQUIRE(snaps.size() == shards_.size(),
               "restoring " + std::to_string(snaps.size()) +
                   " shard snapshots into " + std::to_string(shards_.size()) +
                   " shards");
  // Pass 1: find the global slot span and validate the id maps before
  // mutating anything.
  std::size_t slots = 0;
  for (const ShardSnapshot& snap : snaps) {
    PPDC_REQUIRE(snap.flows.size() == snap.base_rates.size() &&
                     snap.flows.size() == snap.groups.size() &&
                     snap.flows.size() == snap.global_ids.size(),
                 "shard snapshot vectors disagree on the slot count");
    for (const FlowId g : snap.global_ids) {
      if (!g.valid()) continue;  // vacated by a cross-pod re-spawn
      slots = std::max(slots, static_cast<std::size_t>(g.value()) + 1);
    }
  }
  flow_shard_.assign(slots, -1);
  flow_local_.assign(slots, FlowId::invalid());
  for (std::size_t s = 0; s < snaps.size(); ++s) {
    const ShardSnapshot& snap = snaps[s];
    Shard& sh = *shards_[s];
    sh.flows = snap.flows;
    sh.base_rates = snap.base_rates;
    sh.groups = snap.groups;
    sh.global_ids = snap.global_ids;
    sh.free_locals = snap.free_locals;
    sh.live = snap.live;
    for (std::size_t l = 0; l < sh.global_ids.size(); ++l) {
      const FlowId g = sh.global_ids[l];
      if (!g.valid()) continue;
      const auto gi = static_cast<std::size_t>(g.value());
      PPDC_REQUIRE(flow_shard_[gi] < 0,
                   "global flow " + std::to_string(g.value()) +
                       " mapped by two shard snapshots");
      flow_shard_[gi] = static_cast<int>(s);
      flow_local_[gi] = FlowId{static_cast<std::int32_t>(l)};
    }
    // Rebind the cost model to the restored flow vector and hand it the
    // snapshotted group state verbatim (the base vectors carry patch
    // history a rebuild would not reproduce bit for bit).
    sh.model = std::make_unique<CostModel>(*apsp_, sh.flows);
    sh.model->restore_group_snapshot(snap.model);
  }
}

}  // namespace ppdc
