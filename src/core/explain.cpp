#include "core/explain.hpp"

#include <algorithm>
#include <iomanip>
#include <limits>
#include <ostream>

#include "util/require.hpp"

namespace ppdc {

CostBreakdown explain_placement(const CostModel& model, const Placement& p) {
  validate_placement(model.apsp().graph(), p);
  CostBreakdown b;
  b.ingress = model.ingress_attraction(p.front());
  b.chain = model.total_rate() * model.chain_cost(p);
  b.egress = model.egress_attraction(p.back());
  b.total = b.ingress + b.chain + b.egress;

  b.heaviest_flow = 0.0;
  b.lightest_flow = std::numeric_limits<double>::infinity();
  double weighted_hops = 0.0;
  for (const auto& f : model.flows()) {
    const double c = model.flow_cost(f, p);
    b.heaviest_flow = std::max(b.heaviest_flow, c);
    b.lightest_flow = std::min(b.lightest_flow, c);
    if (f.rate > 0.0) weighted_hops += c;  // Σ λ_i · pathlen_i
  }
  if (model.flows().empty()) b.lightest_flow = 0.0;
  b.mean_flow_hops =
      model.total_rate() > 0.0 ? weighted_hops / model.total_rate() : 0.0;
  return b;
}

void print_breakdown(std::ostream& os, const CostModel& model,
                     const Placement& p, const std::string& title) {
  const CostBreakdown b = explain_placement(model, p);
  const std::ios::fmtflags saved_flags = os.flags();
  const std::streamsize saved_precision = os.precision();
  const auto pct = [&](double x) {
    return b.total > 0.0 ? 100.0 * x / b.total : 0.0;
  };
  os << title << ": C_a = " << std::fixed << std::setprecision(0) << b.total
     << "\n  ingress A(p1) " << b.ingress << " (" << std::setprecision(1)
     << pct(b.ingress) << "%)"
     << "\n  chain legs    " << std::setprecision(0) << b.chain << " ("
     << std::setprecision(1) << pct(b.chain) << "%)"
     << "\n  egress B(pn)  " << std::setprecision(0) << b.egress << " ("
     << std::setprecision(1) << pct(b.egress) << "%)"
     << "\n  rate-weighted mean path length " << std::setprecision(2)
     << b.mean_flow_hops << "\n";
  os.flags(saved_flags);
  os.precision(saved_precision);
}

}  // namespace ppdc
