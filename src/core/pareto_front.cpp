#include "core/pareto_front.hpp"

#include <algorithm>
#include <limits>

namespace ppdc {

std::vector<FrontierPoint> pareto_front(std::vector<FrontierPoint> points) {
  std::sort(points.begin(), points.end(),
            [](const FrontierPoint& a, const FrontierPoint& b) {
              if (a.migration_cost != b.migration_cost) {
                return a.migration_cost < b.migration_cost;
              }
              return a.comm_cost < b.comm_cost;
            });
  std::vector<FrontierPoint> front;
  double best_comm = std::numeric_limits<double>::infinity();
  for (const auto& p : points) {
    if (p.comm_cost < best_comm - 1e-12) {
      if (!front.empty() &&
          front.back().migration_cost == p.migration_cost) {
        front.back() = p;  // same x, strictly better y
      } else {
        front.push_back(p);
      }
      best_comm = p.comm_cost;
    }
  }
  return front;
}

bool is_convex_front(const std::vector<FrontierPoint>& front,
                     double tolerance) {
  if (front.size() < 3) return true;
  // Sorted by x with strictly decreasing y; convex iff consecutive slopes
  // are non-decreasing (cross products turn consistently).
  for (std::size_t i = 0; i + 2 < front.size(); ++i) {
    const double x1 = front[i + 1].migration_cost - front[i].migration_cost;
    const double y1 = front[i + 1].comm_cost - front[i].comm_cost;
    const double x2 = front[i + 2].migration_cost - front[i + 1].migration_cost;
    const double y2 = front[i + 2].comm_cost - front[i + 1].comm_cost;
    const double cross = x1 * y2 - y1 * x2;
    if (cross < -tolerance) return false;  // concave kink
  }
  return true;
}

bool is_mutually_nondominated(const std::vector<FrontierPoint>& front) {
  for (std::size_t i = 0; i < front.size(); ++i) {
    for (std::size_t j = 0; j < front.size(); ++j) {
      if (i == j) continue;
      const bool dominates =
          front[i].migration_cost <= front[j].migration_cost &&
          front[i].comm_cost <= front[j].comm_cost &&
          (front[i].migration_cost < front[j].migration_cost ||
           front[i].comm_cost < front[j].comm_cost);
      if (dominates) return false;
    }
  }
  return true;
}

}  // namespace ppdc
