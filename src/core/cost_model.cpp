#include "core/cost_model.hpp"

#include <limits>
#include <unordered_set>

#include "util/require.hpp"

namespace ppdc {

void validate_placement(const Graph& g, const Placement& p) {
  PPDC_REQUIRE(!p.empty(), "placement is empty");
  std::unordered_set<NodeId> seen;
  for (const NodeId s : p) {
    PPDC_REQUIRE(s >= 0 && s < g.num_nodes(), "placement node out of range");
    PPDC_REQUIRE(g.is_switch(s), "VNFs may only be placed on switches");
    PPDC_REQUIRE(seen.insert(s).second,
                 "VNFs of one SFC must sit on distinct switches");
  }
}

CostModel::CostModel(const AllPairs& apsp, const std::vector<VmFlow>& flows)
    : apsp_(&apsp), flows_(&flows) {
  refresh();
}

void CostModel::refresh() {
  const auto n = static_cast<std::size_t>(apsp_->num_nodes());
  ingress_.assign(n, 0.0);
  egress_.assign(n, 0.0);
  lambda_sum_ = 0.0;
  for (const auto& f : *flows_) {
    PPDC_REQUIRE(f.rate >= 0.0, "negative traffic rate");
    lambda_sum_ += f.rate;
  }
  const Graph& g = apsp_->graph();
  min_ingress_ = std::numeric_limits<double>::infinity();
  min_egress_ = std::numeric_limits<double>::infinity();
  for (const NodeId sw : g.switches()) {
    double a = 0.0, b = 0.0;
    for (const auto& f : *flows_) {
      a += f.rate * apsp_->cost(f.src_host, sw);
      b += f.rate * apsp_->cost(sw, f.dst_host);
    }
    ingress_[static_cast<std::size_t>(sw)] = a;
    egress_[static_cast<std::size_t>(sw)] = b;
    if (a < min_ingress_) {
      min_ingress_ = a;
      best_ingress_ = sw;
    }
    if (b < min_egress_) {
      min_egress_ = b;
      best_egress_ = sw;
    }
  }
}

double CostModel::ingress_attraction(NodeId a) const {
  PPDC_REQUIRE(apsp_->graph().is_switch(a), "ingress must be a switch");
  return ingress_[static_cast<std::size_t>(a)];
}

double CostModel::egress_attraction(NodeId b) const {
  PPDC_REQUIRE(apsp_->graph().is_switch(b), "egress must be a switch");
  return egress_[static_cast<std::size_t>(b)];
}

double CostModel::chain_cost(const Placement& p) const {
  double c = 0.0;
  for (std::size_t j = 0; j + 1 < p.size(); ++j) {
    c += apsp_->cost(p[j], p[j + 1]);
  }
  return c;
}

double CostModel::communication_cost(const Placement& p) const {
  validate_placement(apsp_->graph(), p);
  return lambda_sum_ * chain_cost(p) + ingress_attraction(p.front()) +
         egress_attraction(p.back());
}

double CostModel::migration_cost(const Placement& from, const Placement& to,
                                 double mu) const {
  PPDC_REQUIRE(from.size() == to.size(),
               "migration must preserve the SFC length");
  PPDC_REQUIRE(mu >= 0.0, "negative migration coefficient");
  double c = 0.0;
  for (std::size_t j = 0; j < from.size(); ++j) {
    c += apsp_->cost(from[j], to[j]);
  }
  return mu * c;
}

double CostModel::total_cost(const Placement& from, const Placement& to,
                             double mu) const {
  return migration_cost(from, to, mu) + communication_cost(to);
}

double CostModel::flow_cost(const VmFlow& flow, const Placement& p) const {
  PPDC_REQUIRE(!p.empty(), "placement is empty");
  double chain = 0.0;
  for (std::size_t j = 0; j + 1 < p.size(); ++j) {
    chain += apsp_->cost(p[j], p[j + 1]);
  }
  return flow.rate * (apsp_->cost(flow.src_host, p.front()) + chain +
                      apsp_->cost(p.back(), flow.dst_host));
}

}  // namespace ppdc
