#include "core/cost_model.hpp"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "graph/graph.hpp"
#include "util/require.hpp"

namespace ppdc {

namespace {

/// Dirty sets covering at least 1/kDirtyRebuildDivisor of the flows are
/// cheaper to serve with a full parallel rebuild than with per-flow
/// subtract/add patches.
constexpr std::size_t kDirtyRebuildDivisor = 4;

/// One past the largest accepted group id. Ids may be sparse (storage is
/// per distinct id), but the *domain* stays bounded so a corrupt id can't
/// silently size a scale vector into the gigabytes.
constexpr int kMaxGroupId = 1 << 20;

/// Switch-block width of the attraction rebuild kernels: the block's
/// accumulators (kSwitchBlock doubles) stay cache-resident while the flow
/// list streams past, and blocks double as the OpenMP work unit.
constexpr std::ptrdiff_t kSwitchBlock = 512;

/// Accumulates one flow's ingress contribution over a switch block into
/// a dense accumulator (acc[j] belongs to sw[j]). The dense store plus
/// __restrict is what lets the compiler vectorize the gather; the
/// scatter back into ingress_ happens once per block, not per flow.
/// tools/vec_gate.sh pins that this loop vectorizes.
void accumulate_ingress_block(double* __restrict acc,
                              const double* __restrict srow,
                              const NodeId* __restrict sw, std::size_t n,
                              double rate) {
  for (std::size_t j = 0; j < n; ++j) {  // ppdc-vec: ingress-block-gather
    acc[j] += rate * srow[static_cast<std::size_t>(sw[j])];
  }
}

}  // namespace

void validate_placement(const Graph& g, const Placement& p) {
  PPDC_REQUIRE(!p.empty(), "placement is empty");
  std::unordered_set<NodeId> seen;
  for (const NodeId s : p) {
    PPDC_REQUIRE(s >= 0 && s < g.num_nodes(), "placement node out of range");
    PPDC_REQUIRE(g.is_switch(s), "VNFs may only be placed on switches");
    PPDC_REQUIRE(seen.insert(s).second,
                 "VNFs of one SFC must sit on distinct switches");
  }
}

CostModel::CostModel(const AllPairs& apsp, const std::vector<VmFlow>& flows)
    : apsp_(&apsp), flows_(&flows) {
  refresh();
}

void CostModel::refresh() {
  const auto n = static_cast<std::size_t>(apsp_->num_nodes());
  ingress_.assign(n, 0.0);
  egress_.assign(n, 0.0);
  lambda_sum_ = 0.0;
  for (const auto& f : *flows_) {
    PPDC_REQUIRE(f.rate >= 0.0, "negative traffic rate");
    lambda_sum_ += f.rate;
  }
  const Graph& g = apsp_->graph();
  const auto& switches = g.switches();
  const auto num_switches = static_cast<std::ptrdiff_t>(switches.size());
  const std::ptrdiff_t num_blocks =
      (num_switches + kSwitchBlock - 1) / kSwitchBlock;
  // Switch-blocked rebuild. Per switch, each attraction still accumulates
  // its flow contributions in flow order — bit-identical to the naive
  // switch-outer scan — but the memory access pattern is flat: the ingress
  // pass streams each flow's APSP row contiguously past a cache-resident
  // block of accumulators, the egress pass keeps one c(sw, ·) row resident
  // while streaming the flow list.
#if defined(PPDC_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
  for (std::ptrdiff_t blk = 0; blk < num_blocks; ++blk) {
    const std::ptrdiff_t b0 = blk * kSwitchBlock;
    const std::ptrdiff_t b1 = std::min(num_switches, b0 + kSwitchBlock);
    const std::size_t bn = static_cast<std::size_t>(b1 - b0);
    const NodeId* swp = switches.data() + b0;
    // Per-switch sums still accumulate in flow order starting from 0.0 —
    // bit-identical to scattering straight into ingress_ — but the
    // accumulator is dense, so the inner gather loop vectorizes.
    double acc[kSwitchBlock];
    std::fill_n(acc, bn, 0.0);
    for (const auto& f : *flows_) {
      // Zero-rate flows contribute nothing; skipping them also keeps the
      // sums NaN-free on degraded fabrics, where a quarantined flow's
      // endpoint distance is +inf (0 * inf = NaN).
      if (f.rate == 0.0) continue;
      accumulate_ingress_block(acc, apsp_->cost_row(f.src_host), swp, bn,
                               f.rate);
    }
    for (std::size_t j = 0; j < bn; ++j) {
      ingress_[static_cast<std::size_t>(swp[j])] = acc[j];
    }
    for (std::ptrdiff_t si = b0; si < b1; ++si) {
      const NodeId sw = switches[static_cast<std::size_t>(si)];
      const double* swrow = apsp_->cost_row(sw);
      double b = 0.0;
      for (const auto& f : *flows_) {
        if (f.rate == 0.0) continue;
        b += f.rate * swrow[static_cast<std::size_t>(f.dst_host)];
      }
      egress_[static_cast<std::size_t>(sw)] = b;
    }
  }
  rescan_minima();
  if (group_refresh_enabled()) {
    // Keep the base vectors coherent with any endpoint changes the caller
    // applied without an endpoints_moved() signal. A full refresh may also
    // carry rates that no longer decompose as base · scale, so the next
    // endpoints_moved() must not recombine against stale scales.
    PPDC_REQUIRE(flows_->size() == groups_.size(),
                 "flow vector resized after enable_group_refresh");
    for (const FlowId i : id_range<FlowId>(flows_->size())) {
      patch_moved_flow(i);
    }
    last_scales_.clear();
  }
}

void CostModel::rescan_minima() {
  min_ingress_ = std::numeric_limits<double>::infinity();
  min_egress_ = std::numeric_limits<double>::infinity();
  for (const NodeId sw : placement_candidates()) {
    const double a = ingress_[static_cast<std::size_t>(sw)];
    const double b = egress_[static_cast<std::size_t>(sw)];
    if (a < min_ingress_) {
      min_ingress_ = a;
      best_ingress_ = sw;
    }
    if (b < min_egress_) {
      min_egress_ = b;
      best_egress_ = sw;
    }
  }
}

void CostModel::restrict_candidates(std::vector<NodeId> candidates) {
  PPDC_REQUIRE(!candidates.empty(),
               "placement-candidate restriction must not be empty");
  std::unordered_set<NodeId> seen;
  for (const NodeId s : candidates) {
    PPDC_REQUIRE(s >= 0 && s < apsp_->num_nodes(),
                 "placement candidate out of range");
    PPDC_REQUIRE(apsp_->graph().is_switch(s),
                 "placement candidates must be switches");
    PPDC_REQUIRE(seen.insert(s).second, "duplicate placement candidate");
  }
  candidates_ = std::move(candidates);
  rescan_minima();
}

void CostModel::enable_group_refresh(const std::vector<double>& base_rates,
                                     const std::vector<int>& groups,
                                     int min_groups) {
  PPDC_REQUIRE(base_rates.size() == flows_->size(),
               "base-rate vector size mismatch");
  PPDC_REQUIRE(groups.size() == flows_->size(), "group vector size mismatch");
  PPDC_REQUIRE(min_groups >= 0 && min_groups <= kMaxGroupId,
               "group-domain size outside [0, 2^20]");
  int max_group = min_groups - 1;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    // Per-flow validation names the offending FlowId: a departed flow
    // whose slot carries a stale/garbage group id must fail loudly here
    // rather than silently corrupt a base-vector row.
    PPDC_REQUIRE(groups[i] >= 0, "flow " + std::to_string(i) +
                                     " carries negative group id " +
                                     std::to_string(groups[i]));
    PPDC_REQUIRE(groups[i] < kMaxGroupId,
                 "flow " + std::to_string(i) + " carries group id " +
                     std::to_string(groups[i]) +
                     " outside the supported domain [0, 2^20)");
    PPDC_REQUIRE(base_rates[i] >= 0.0,
                 "flow " + std::to_string(i) + " carries negative base rate " +
                     std::to_string(base_rates[i]));
    max_group = std::max(max_group, groups[i]);
  }
  base_rates_ = base_rates;
  groups_ = groups;
  num_groups_ = std::max(max_group + 1, 1);
  last_scales_.clear();
  rebuild_group_bases();
}

void CostModel::rebuild_group_bases() {
  const auto n = static_cast<std::size_t>(apsp_->num_nodes());
  // Row compaction: one dense base-vector row per *distinct* group id, in
  // ascending id order — a dense id set keeps the historical row == id
  // layout (and recombination order) bit for bit, while a sparse set
  // (streaming shards re-using freed slots) allocates no dead rows.
  std::vector<char> used(static_cast<std::size_t>(num_groups_), 0);
  for (const int g : groups_) used[static_cast<std::size_t>(g)] = 1;
  group_rows_.assign(static_cast<std::size_t>(num_groups_), -1);
  row_groups_.clear();
  for (int g = 0; g < num_groups_; ++g) {
    if (used[static_cast<std::size_t>(g)] != 0) {
      group_rows_[static_cast<std::size_t>(g)] =
          static_cast<int>(row_groups_.size());
      row_groups_.push_back(g);
    }
  }
  snap_src_.resize(flows_->size());
  snap_dst_.resize(flows_->size());
  for (std::size_t i = 0; i < flows_->size(); ++i) {
    snap_src_[i] = (*flows_)[i].src_host;
    snap_dst_[i] = (*flows_)[i].dst_host;
  }
  group_ingress_.assign(row_groups_.size() * n, 0.0);
  group_egress_.assign(row_groups_.size() * n, 0.0);
  const auto& switches = apsp_->graph().switches();
  const auto num_switches = static_cast<std::ptrdiff_t>(switches.size());
  const std::ptrdiff_t num_blocks =
      (num_switches + kSwitchBlock - 1) / kSwitchBlock;
  // Same switch-blocked structure as refresh(): per (group, switch) cell
  // the contributions still land in flow order (bit-identical), while the
  // ingress pass streams APSP rows contiguously and the egress pass keeps
  // one c(sw, ·) row resident per switch.
#if defined(PPDC_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
  for (std::ptrdiff_t blk = 0; blk < num_blocks; ++blk) {
    const std::ptrdiff_t b0 = blk * kSwitchBlock;
    const std::ptrdiff_t b1 = std::min(num_switches, b0 + kSwitchBlock);
    for (std::size_t i = 0; i < groups_.size(); ++i) {
      // Zero-base flows (including fault-quarantined ones, whose distances
      // may be +inf) contribute nothing.
      if (base_rates_[i] == 0.0) continue;
      const double* srow = apsp_->cost_row(snap_src_[i]);
      const std::size_t row = row_of(groups_[i]) * n;
      for (std::ptrdiff_t si = b0; si < b1; ++si) {
        const auto col =
            static_cast<std::size_t>(switches[static_cast<std::size_t>(si)]);
        group_ingress_[row + col] += base_rates_[i] * srow[col];
      }
    }
    for (std::ptrdiff_t si = b0; si < b1; ++si) {
      const NodeId sw = switches[static_cast<std::size_t>(si)];
      const auto col = static_cast<std::size_t>(sw);
      const double* swrow = apsp_->cost_row(sw);
      for (std::size_t i = 0; i < groups_.size(); ++i) {
        if (base_rates_[i] == 0.0) continue;
        const std::size_t row = row_of(groups_[i]) * n;
        group_egress_[row + col] +=
            base_rates_[i] * swrow[static_cast<std::size_t>(snap_dst_[i])];
      }
    }
  }
}

void CostModel::patch_moved_flow(FlowId flow) {
  const auto n = static_cast<std::size_t>(apsp_->num_nodes());
  const auto i = static_cast<std::size_t>(flow.value());
  const std::size_t row = row_of(groups_[i]) * n;
  const double base = base_rates_[i];
  const VmFlow& f = (*flows_)[i];
  if (base == 0.0) {
    // No base-vector contribution to move; just track the endpoints.
    snap_src_[i] = f.src_host;
    snap_dst_[i] = f.dst_host;
    return;
  }
  if (f.src_host != snap_src_[i]) {
    const double* nrow = apsp_->cost_row(f.src_host);
    const double* orow = apsp_->cost_row(snap_src_[i]);
    for (const NodeId sw : apsp_->graph().switches()) {
      const auto col = static_cast<std::size_t>(sw);
      group_ingress_[row + col] += base * (nrow[col] - orow[col]);
    }
    snap_src_[i] = f.src_host;
  }
  if (f.dst_host != snap_dst_[i]) {
    const auto ncol = static_cast<std::size_t>(f.dst_host);
    const auto ocol = static_cast<std::size_t>(snap_dst_[i]);
    for (const NodeId sw : apsp_->graph().switches()) {
      const double* swrow = apsp_->cost_row(sw);
      group_egress_[row + static_cast<std::size_t>(sw)] +=
          base * (swrow[ncol] - swrow[ocol]);
    }
    snap_dst_[i] = f.dst_host;
  }
}

void CostModel::recombine(const std::vector<double>& scales) {
  const auto n = static_cast<std::size_t>(apsp_->num_nodes());
  // Λ is summed per flow in flow order — bit-identical to what refresh()
  // computes from rates set via diurnal_rates_grouped. Λ seeds the stroll
  // DP (solve_top_dp), where a last-ulp difference can flip tie-breaks
  // between equal-hop interior paths and cascade into a different
  // placement; the O(l) add pass is noise next to the O(l·|V_s|) rescan
  // this path replaces.
  lambda_sum_ = 0.0;
  for (std::size_t i = 0; i < base_rates_.size(); ++i) {
    lambda_sum_ += base_rates_[i] * scales[static_cast<std::size_t>(groups_[i])];
  }
  ingress_.assign(n, 0.0);
  egress_.assign(n, 0.0);
  // Group-major recombination over the *mapped* rows: each pass streams
  // one base-vector row contiguously. Per switch the scaled terms still
  // add in ascending-group order (unused ids would only have added +0.0),
  // so the result is bit-identical to a switch-outer group-inner scan
  // over the full id domain.
  const auto& switches = apsp_->graph().switches();
  for (std::size_t r = 0; r < row_groups_.size(); ++r) {
    const double scale = scales[static_cast<std::size_t>(row_groups_[r])];
    const double* girow = group_ingress_.data() + r * n;
    const double* gerow = group_egress_.data() + r * n;
    for (const NodeId sw : switches) {
      const auto col = static_cast<std::size_t>(sw);
      ingress_[col] += scale * girow[col];
      egress_[col] += scale * gerow[col];
    }
  }
  rescan_minima();
}

std::size_t CostModel::ensure_group_row(int group) {
  if (group >= num_groups_) {
    group_rows_.resize(static_cast<std::size_t>(group) + 1, -1);
    num_groups_ = group + 1;
  }
  int& row = group_rows_[static_cast<std::size_t>(group)];
  if (row < 0) {
    const auto n = static_cast<std::size_t>(apsp_->num_nodes());
    row = static_cast<int>(row_groups_.size());
    row_groups_.push_back(group);
    group_ingress_.resize(row_groups_.size() * n, 0.0);
    group_egress_.resize(row_groups_.size() * n, 0.0);
  }
  return static_cast<std::size_t>(row);
}

void CostModel::accumulate_flow_base(std::size_t row, double base, NodeId src,
                                     NodeId dst, double sign) {
  const auto n = static_cast<std::size_t>(apsp_->num_nodes());
  const double* srow = apsp_->cost_row(src);
  double* gi = group_ingress_.data() + row * n;
  double* ge = group_egress_.data() + row * n;
  const double signed_base = sign * base;
  const auto dcol = static_cast<std::size_t>(dst);
  for (const NodeId sw : apsp_->graph().switches()) {
    const auto col = static_cast<std::size_t>(sw);
    gi[col] += signed_base * srow[col];
    ge[col] += signed_base * apsp_->cost_row(sw)[dcol];
  }
}

void CostModel::rebase_flow(FlowId flow, double new_base, int new_group) {
  PPDC_REQUIRE(group_refresh_enabled(),
               "rebase_flow needs enable_group_refresh first");
  const FlowId end = flow_count(*flows_);
  PPDC_REQUIRE(flow.valid() && flow < end,
               "rebased flow " + std::to_string(flow.value()) +
                   " out of range [0, " + std::to_string(end.value()) + ")");
  PPDC_REQUIRE(new_base >= 0.0,
               "flow " + std::to_string(flow.value()) +
                   " rebased to negative base rate " +
                   std::to_string(new_base));
  PPDC_REQUIRE(new_group >= 0 && new_group < kMaxGroupId,
               "flow " + std::to_string(flow.value()) +
                   " rebased to group id " + std::to_string(new_group) +
                   " outside the supported domain [0, 2^20)");
  const auto i = static_cast<std::size_t>(flow.value());
  if (base_rates_[i] != 0.0) {
    accumulate_flow_base(row_of(groups_[i]), base_rates_[i], snap_src_[i],
                         snap_dst_[i], -1.0);
  }
  const VmFlow& f = (*flows_)[i];
  base_rates_[i] = new_base;
  groups_[i] = new_group;
  snap_src_[i] = f.src_host;
  snap_dst_[i] = f.dst_host;
  if (new_base != 0.0) {
    accumulate_flow_base(ensure_group_row(new_group), new_base, f.src_host,
                         f.dst_host, 1.0);
  }
}

void CostModel::flows_appended(const std::vector<double>& new_bases,
                               const std::vector<int>& new_groups) {
  PPDC_REQUIRE(group_refresh_enabled(),
               "flows_appended needs enable_group_refresh first");
  PPDC_REQUIRE(new_bases.size() == new_groups.size(),
               "appended base/group vector size mismatch");
  PPDC_REQUIRE(groups_.size() + new_bases.size() == flows_->size(),
               "flows_appended must describe exactly the appended tail: "
               "model tracks " +
                   std::to_string(groups_.size()) + " flows, " +
                   std::to_string(new_bases.size()) +
                   " were announced, but the bound vector holds " +
                   std::to_string(flows_->size()));
  for (std::size_t j = 0; j < new_bases.size(); ++j) {
    const std::size_t i = groups_.size();
    PPDC_REQUIRE(new_groups[j] >= 0 && new_groups[j] < kMaxGroupId,
                 "flow " + std::to_string(i) + " appended with group id " +
                     std::to_string(new_groups[j]) +
                     " outside the supported domain [0, 2^20)");
    PPDC_REQUIRE(new_bases[j] >= 0.0,
                 "flow " + std::to_string(i) +
                     " appended with negative base rate " +
                     std::to_string(new_bases[j]));
    const VmFlow& f = (*flows_)[i];
    base_rates_.push_back(new_bases[j]);
    groups_.push_back(new_groups[j]);
    snap_src_.push_back(f.src_host);
    snap_dst_.push_back(f.dst_host);
    if (new_bases[j] != 0.0) {
      accumulate_flow_base(ensure_group_row(new_groups[j]), new_bases[j],
                           f.src_host, f.dst_host, 1.0);
    }
  }
}

void CostModel::refresh_scaled(const std::vector<double>& scales) {
  PPDC_REQUIRE(group_refresh_enabled(),
               "refresh_scaled needs enable_group_refresh first");
  PPDC_REQUIRE(scales.size() == static_cast<std::size_t>(num_groups_),
               "scale vector size mismatch");
  for (const double s : scales) {
    PPDC_REQUIRE(s >= 0.0, "negative group scale");
  }
  recombine(scales);
  last_scales_ = scales;
}

void CostModel::endpoints_moved(const std::vector<FlowId>& flow_ids) {
  if (!group_refresh_enabled() || last_scales_.empty()) {
    refresh();
    return;
  }
  const FlowId end = flow_count(*flows_);
  for (const FlowId i : flow_ids) {
    PPDC_REQUIRE(i.valid() && i < end,
                 "moved flow " + std::to_string(i.value()) +
                     " out of range [0, " + std::to_string(end.value()) + ")");
  }
  if (flow_ids.size() * kDirtyRebuildDivisor >= flows_->size()) {
    rebuild_group_bases();
  } else {
    for (const FlowId i : flow_ids) {
      patch_moved_flow(i);
    }
  }
  recombine(last_scales_);
}

CostModel::GroupSnapshot CostModel::group_snapshot() const {
  GroupSnapshot snap;
  snap.num_groups = num_groups_;
  snap.base_rates = base_rates_;
  snap.groups = groups_;
  snap.group_rows = group_rows_;
  snap.row_groups = row_groups_;
  snap.group_ingress = group_ingress_;
  snap.group_egress = group_egress_;
  snap.last_scales = last_scales_;
  snap.snap_src = snap_src_;
  snap.snap_dst = snap_dst_;
  return snap;
}

void CostModel::restore_group_snapshot(const GroupSnapshot& snap) {
  PPDC_REQUIRE(snap.num_groups > 0, "group snapshot has no groups");
  PPDC_REQUIRE(snap.base_rates.size() == flows_->size() &&
                   snap.groups.size() == flows_->size() &&
                   snap.snap_src.size() == flows_->size() &&
                   snap.snap_dst.size() == flows_->size(),
               "group snapshot sized for " +
                   std::to_string(snap.base_rates.size()) + " flows, model "
                   "bound to " + std::to_string(flows_->size()));
  const std::size_t v = ingress_.size();  // |V|, sized by the constructor
  PPDC_REQUIRE(snap.group_ingress.size() == snap.row_groups.size() * v &&
                   snap.group_egress.size() == snap.row_groups.size() * v,
               "group snapshot base vectors do not match the topology");
  PPDC_REQUIRE(snap.last_scales.empty() ||
                   snap.last_scales.size() ==
                       static_cast<std::size_t>(snap.num_groups),
               "group snapshot scale vector size mismatch");
  num_groups_ = snap.num_groups;
  base_rates_ = snap.base_rates;
  groups_ = snap.groups;
  group_rows_ = snap.group_rows;
  row_groups_ = snap.row_groups;
  group_ingress_ = snap.group_ingress;
  group_egress_ = snap.group_egress;
  last_scales_ = snap.last_scales;
  snap_src_ = snap.snap_src;
  snap_dst_ = snap.snap_dst;
}

double CostModel::ingress_attraction(NodeId a) const {
  PPDC_REQUIRE(apsp_->graph().is_switch(a), "ingress must be a switch");
  return ingress_[static_cast<std::size_t>(a)];
}

double CostModel::egress_attraction(NodeId b) const {
  PPDC_REQUIRE(apsp_->graph().is_switch(b), "egress must be a switch");
  return egress_[static_cast<std::size_t>(b)];
}

double CostModel::chain_cost(const Placement& p) const {
  double c = 0.0;
  for (std::size_t j = 0; j + 1 < p.size(); ++j) {
    c += apsp_->cost(p[j], p[j + 1]);
  }
  return c;
}

double CostModel::communication_cost(const Placement& p) const {
  validate_placement(apsp_->graph(), p);
  return lambda_sum_ * chain_cost(p) + ingress_attraction(p.front()) +
         egress_attraction(p.back());
}

double CostModel::migration_cost(const Placement& from, const Placement& to,
                                 double mu) const {
  PPDC_REQUIRE(from.size() == to.size(),
               "migration must preserve the SFC length");
  PPDC_REQUIRE(mu >= 0.0, "negative migration coefficient");
  double c = 0.0;
  for (std::size_t j = 0; j < from.size(); ++j) {
    c += apsp_->cost(from[j], to[j]);
  }
  return mu * c;
}

double CostModel::total_cost(const Placement& from, const Placement& to,
                             double mu) const {
  return migration_cost(from, to, mu) + communication_cost(to);
}

double CostModel::flow_cost(const VmFlow& flow, const Placement& p) const {
  validate_placement(apsp_->graph(), p);
  return flow.rate * (apsp_->cost(flow.src_host, p.front()) + chain_cost(p) +
                      apsp_->cost(p.back(), flow.dst_host));
}

}  // namespace ppdc
