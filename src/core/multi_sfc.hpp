// Heterogeneous SFC requirements (paper §VII, future work): "different VM
// flows can request different SFCs".
//
// We model each flow as requesting a contiguous *range* [first, last] of
// the data center's VNF catalogue (f_1 .. f_n) — e.g. internal flows skip
// the ingress firewall, cached flows stop at the proxy. Eq. 1 generalizes
// position-wise:
//
//   C(p) = Σ_j W_j c(p_j, p_{j+1})  +  Σ_j A_j(p_j)  +  Σ_j B_j(p_j)
//
//   W_j    = Σ_{i : first_i <= j < last_i} λ_i    (chain-leg load)
//   A_j(w) = Σ_{i : first_i == j} λ_i c(s(v_i), w) (range entry)
//   B_j(w) = Σ_{i : last_i == j} λ_i c(w, s(v'_i)) (range exit)
//
// Two solvers:
//  * `solve_multi_sfc_relaxed`: exact Viterbi DP over positions *without*
//    the distinct-switch constraint, followed by greedy duplicate repair —
//    the natural generalization of Algorithm 3's spirit.
//  * `solve_multi_sfc_exhaustive`: branch-and-bound exact search with the
//    distinctness constraint (the generalization of Algorithm 4).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/apsp.hpp"
#include "core/cost_model.hpp"
#include "graph/graph.hpp"
#include "workload/traffic.hpp"

namespace ppdc {

/// A flow that must traverse VNFs f_{first+1} .. f_{last+1} (0-based
/// inclusive indices into the catalogue).
struct RangedFlow {
  VmFlow flow;
  int first = 0;
  int last = 0;
};

/// Position-wise cost evaluator for heterogeneous SFC ranges.
class MultiSfcCostModel {
 public:
  /// `n` is the catalogue length; every range must satisfy
  /// 0 <= first <= last < n.
  MultiSfcCostModel(const AllPairs& apsp, std::vector<RangedFlow> flows,
                    int n);

  int sfc_length() const noexcept { return n_; }
  const AllPairs& apsp() const noexcept { return *apsp_; }
  const std::vector<RangedFlow>& flows() const noexcept { return flows_; }

  /// Chain-leg load W_j for the leg j -> j+1 (0 <= j < n-1).
  double leg_load(int j) const;
  /// Entry attraction A_j(w).
  double entry_attraction(int j, NodeId w) const;
  /// Exit attraction B_j(w).
  double exit_attraction(int j, NodeId w) const;

  /// Generalized Eq. 1. Requires a valid placement of n distinct switches
  /// unless `allow_colocation`.
  double communication_cost(const Placement& p,
                            bool allow_colocation = false) const;

 private:
  const AllPairs* apsp_;
  std::vector<RangedFlow> flows_;
  int n_;
  std::vector<double> leg_load_;                ///< size n-1
  std::vector<std::vector<double>> entry_;      ///< [j][node]
  std::vector<std::vector<double>> exit_;       ///< [j][node]
};

/// Result of a multi-SFC placement.
struct MultiSfcResult {
  Placement placement;
  double comm_cost = 0.0;
  bool proven_optimal = false;
};

/// Exact position-Viterbi on the relaxed problem (duplicates allowed),
/// then greedy repair to distinct switches. Polynomial:
/// O(n |V_s|^2 + repairs).
MultiSfcResult solve_multi_sfc_relaxed(const MultiSfcCostModel& model);

/// Branch-and-bound exact solver with distinctness (node budget as in
/// ChainSearchConfig; 0 = unlimited).
MultiSfcResult solve_multi_sfc_exhaustive(
    const MultiSfcCostModel& model, std::uint64_t node_budget = 50'000'000,
    std::optional<Placement> warm_start = std::nullopt);

}  // namespace ppdc
