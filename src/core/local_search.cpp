#include "core/local_search.hpp"

#include <algorithm>
#include <limits>

#include "graph/graph.hpp"
#include "util/require.hpp"

namespace ppdc {

LocalSearchResult improve_placement(const CostModel& model,
                                    const Placement& start,
                                    const LocalSearchOptions& options) {
  const Graph& g = model.apsp().graph();
  validate_placement(g, start);
  PPDC_REQUIRE(options.max_moves >= 0, "negative move cap");

  LocalSearchResult r;
  r.placement = start;
  r.comm_cost = model.communication_cost(start);

  const auto& switches = g.switches();
  std::vector<char> used(static_cast<std::size_t>(g.num_nodes()), 0);
  for (const NodeId w : r.placement) used[static_cast<std::size_t>(w)] = 1;

  bool improved = true;
  while (improved && r.moves_applied < options.max_moves) {
    improved = false;
    double best_cost = r.comm_cost;
    Placement best = r.placement;

    // Replace moves: VNF j -> any unused switch.
    for (std::size_t j = 0; j < r.placement.size(); ++j) {
      Placement cand = r.placement;
      for (const NodeId w : switches) {
        if (used[static_cast<std::size_t>(w)]) continue;
        cand[j] = w;
        const double c = model.communication_cost(cand);
        if (c < best_cost - options.min_gain) {
          best_cost = c;
          best = cand;
        }
      }
    }
    // Swap moves: exchange positions of VNFs i and j.
    for (std::size_t i = 0; i < r.placement.size(); ++i) {
      for (std::size_t j = i + 1; j < r.placement.size(); ++j) {
        Placement cand = r.placement;
        std::swap(cand[i], cand[j]);
        const double c = model.communication_cost(cand);
        if (c < best_cost - options.min_gain) {
          best_cost = c;
          best = cand;
        }
      }
    }

    if (best_cost < r.comm_cost - options.min_gain) {
      for (const NodeId w : r.placement) {
        used[static_cast<std::size_t>(w)] = 0;
      }
      r.placement = std::move(best);
      for (const NodeId w : r.placement) {
        used[static_cast<std::size_t>(w)] = 1;
      }
      r.comm_cost = best_cost;
      ++r.moves_applied;
      improved = true;
    }
  }
  return r;
}

double break_even_mu(const CostModel& model, const Placement& from,
                     const Placement& to) {
  const double gain =
      model.communication_cost(from) - model.communication_cost(to);
  const double distance = model.migration_cost(from, to, 1.0);
  if (distance == 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return std::max(0.0, gain / distance);
}

}  // namespace ppdc
