// Local-search placement improver.
//
// A simple, fast post-optimizer over Eq. 1: starting from any valid
// placement, repeatedly apply the best improving move among
//   * replace — move one VNF to an unused switch,
//   * swap    — exchange the switches of two VNFs (reorders the chain),
// until a local optimum. Useful to polish heuristic placements (Steering,
// Greedy, or the DP itself) and as an independent witness in tests: a
// placement that local search improves was provably suboptimal.
#pragma once

#include "core/cost_model.hpp"

namespace ppdc {

/// Outcome of a local-search run.
struct LocalSearchResult {
  Placement placement;
  double comm_cost = 0.0;
  int moves_applied = 0;  ///< improving moves until the local optimum
};

/// Options for the search.
struct LocalSearchOptions {
  int max_moves = 10'000;  ///< safety cap on improving moves
  double min_gain = 1e-9;  ///< ignore sub-noise improvements
};

/// Improves `start` to a replace/swap local optimum of Eq. 1.
LocalSearchResult improve_placement(const CostModel& model,
                                    const Placement& start,
                                    const LocalSearchOptions& options = {});

/// The largest migration coefficient at which moving from `from` to `to`
/// still pays off within one epoch: μ* = (C_a(from) - C_a(to)) / distance.
/// Returns +inf when the placements are identical (distance 0) and the
/// move gains nothing or anything; 0 when `to` is no cheaper.
double break_even_mu(const CostModel& model, const Placement& from,
                     const Placement& to);

}  // namespace ppdc
