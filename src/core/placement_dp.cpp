#include "core/placement_dp.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "graph/apsp.hpp"
#include "graph/graph.hpp"
#include "util/require.hpp"

namespace ppdc {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// The `limit` switches with the smallest attraction under `key`.
std::vector<NodeId> top_candidates(const std::vector<NodeId>& switches,
                                   int limit, auto&& key) {
  if (limit <= 0 || static_cast<std::size_t>(limit) >= switches.size()) {
    return switches;
  }
  std::vector<NodeId> out = switches;
  std::nth_element(out.begin(), out.begin() + limit, out.end(),
                   [&](NodeId a, NodeId b) { return key(a) < key(b); });
  out.resize(static_cast<std::size_t>(limit));
  return out;
}

}  // namespace

PlacementResult solve_top_dp(const CostModel& model, int n,
                             const TopDpOptions& options) {
  const AllPairs& apsp = model.apsp();
  // The candidate universe: every switch normally, only the alive switches
  // of the serving partition on a degraded fabric.
  const auto& switches = model.placement_candidates();
  PPDC_REQUIRE(n >= 1, "need at least one VNF");
  PPDC_REQUIRE(static_cast<std::size_t>(n) <= switches.size(),
               "more VNFs than eligible switches");

  PlacementResult best;
  double best_cost = kInf;

  if (n == 1) {
    for (const NodeId w : switches) {
      const double c =
          model.ingress_attraction(w) + model.egress_attraction(w);
      if (c < best_cost) {
        best_cost = c;
        best.placement = {w};
      }
    }
    best.comm_cost = best_cost;
    return best;
  }

  if (n == 2) {
    // Same ingress/egress candidate pruning as the n >= 3 DP: without it
    // this branch scans all O(|V_s|²) ordered pairs even when the caller
    // asked for a bounded sweep.
    const std::vector<NodeId> ingress_candidates = top_candidates(
        switches, options.candidate_limit,
        [&](NodeId w) { return model.ingress_attraction(w); });
    const std::vector<NodeId> egress_candidates = top_candidates(
        switches, options.candidate_limit,
        [&](NodeId w) { return model.egress_attraction(w); });
    for (const NodeId a : ingress_candidates) {
      for (const NodeId b : egress_candidates) {
        if (a == b) continue;
        const double c = model.ingress_attraction(a) +
                         model.total_rate() * apsp.cost(a, b) +
                         model.egress_attraction(b);
        if (c < best_cost) {
          best_cost = c;
          best.placement = {a, b};
        }
      }
    }
    if (best_cost == kInf && options.candidate_limit > 0) {
      // Degenerate pruning (e.g. limit 1 selecting the same switch for
      // both roles): redo without pruning.
      return solve_top_dp(model, n, TopDpOptions{});
    }
    PPDC_REQUIRE(best_cost < kInf, "no feasible placement found");
    best.comm_cost = best_cost;
    return best;
  }

  // n >= 3: one stroll table per egress candidate, shared across ingress
  // candidates (§IV.3). Λ = 0 degenerates every stroll to zero cost; use a
  // unit rate then so the DP still prefers short chains.
  const double rate =
      model.total_rate() > 0.0 ? model.total_rate() : 1.0;
  const std::vector<NodeId> egress_candidates = top_candidates(
      switches, options.candidate_limit,
      [&](NodeId w) { return model.egress_attraction(w); });
  const std::vector<NodeId> ingress_candidates = top_candidates(
      switches, options.candidate_limit,
      [&](NodeId w) { return model.ingress_attraction(w); });
  for (const NodeId egress : egress_candidates) {
    StrollTable table(apsp, egress, rate, switches);
    for (const NodeId ingress : ingress_candidates) {
      if (ingress == egress) continue;
      StrollResult stroll = table.find(ingress, n - 2);
      Placement p;
      p.reserve(static_cast<std::size_t>(n));
      p.push_back(ingress);
      p.insert(p.end(), stroll.placement.begin(), stroll.placement.end());
      p.push_back(egress);
      // Score by the true Eq. 1 cost of the materialized placement (the
      // stroll walk may detour; shortcutting it can only help).
      const double c = model.communication_cost(p);
      if (c < best_cost) {
        best_cost = c;
        best.placement = std::move(p);
        best.used_fallback = stroll.used_fallback;
      }
    }
  }
  if (best_cost == kInf && options.candidate_limit > 0) {
    // Degenerate pruning (e.g. limit 1 selecting the same switch twice for
    // both roles): redo without pruning.
    return solve_top_dp(model, n, TopDpOptions{});
  }
  PPDC_REQUIRE(best_cost < kInf, "no feasible placement found");
  best.comm_cost = best_cost;
  return best;
}

}  // namespace ppdc
