#include "core/stroll_dp.hpp"

#include <algorithm>
#include <limits>

#include "graph/graph.hpp"
#include "util/require.hpp"

namespace ppdc {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Candidate-scan tile width of extend(): the shared previous-level cost
/// and successor segments (kBlock doubles + kBlock NodeIds) stay L1-hot
/// while every row re-scans them.
constexpr std::size_t kBlock = 256;

/// Rate-scales one APSP row through the candidate gather into a metric
/// row. __restrict is what lets the compiler emit the vectorized gather
/// here — without it the mrow stores may alias the inputs and the loop
/// stays scalar. tools/vec_gate.sh pins that this loop vectorizes.
void build_metric_row(double* __restrict mrow, const double* __restrict arow,
                      const NodeId* __restrict sw, std::size_t rows,
                      double rate) {
  for (std::size_t k = 0; k < rows; ++k) {  // ppdc-vec: metric-row-gather
    mrow[k] = rate * arow[static_cast<std::size_t>(sw[k])];
  }
}
}  // namespace

StrollTable::StrollTable(const AllPairs& apsp, NodeId destination,
                         double rate, std::vector<NodeId> universe)
    : apsp_(&apsp), t_(destination), rate_(rate) {
  PPDC_REQUIRE(rate > 0.0, "stroll rate must be positive");
  const Graph& g = apsp.graph();
  PPDC_REQUIRE(destination >= 0 && destination < g.num_nodes(),
               "destination out of range");
  if (universe.empty()) {
    switches_ = IndexedVector<CandidateIdx, NodeId>(g.switches());
  } else {
    for (const NodeId u : universe) {
      PPDC_REQUIRE(u >= 0 && u < g.num_nodes() && g.is_switch(u),
                   "stroll universe entries must be switches");
    }
    switches_ = IndexedVector<CandidateIdx, NodeId>(std::move(universe));
  }
  rows_ = switches_.size();
  switch_index_.assign(static_cast<std::size_t>(g.num_nodes()),
                       CandidateIdx::invalid());
  for (const CandidateIdx i : switches_.ids()) {
    switch_index_[static_cast<std::size_t>(switches_[i])] = i;
  }
}

void StrollTable::ensure_metric() {
  if (!metric_.empty() || rows_ == 0) return;
  metric_.resize(rows_ * rows_);
  metric_to_t_.resize(rows_);
  const NodeId* sw = switches_.raw().data();
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* arow = apsp_->cost_row(sw[i]);
    build_metric_row(metric_.data() + i * rows_, arow, sw, rows_, rate_);
    metric_to_t_[i] = rate_ * arow[static_cast<std::size_t>(t_)];
  }
}

void StrollTable::extend(int e_max) {
  if (levels_ >= e_max) return;
  ensure_metric();
  const std::size_t rows = rows_;
  cost_.resize(static_cast<std::size_t>(e_max) * rows, kInf);
  succ_.resize(static_cast<std::size_t>(e_max) * rows, kInvalidNode);
  const NodeId* sw = switches_.raw().data();
  while (levels_ < e_max) {
    const int e = levels_ + 1;
    double* ce = cost_.data() + static_cast<std::size_t>(e - 1) * rows;
    NodeId* se = succ_.data() + static_cast<std::size_t>(e - 1) * rows;
    if (e == 1) {
      // Base case (pseudocode line 2): one metric edge straight to t.
      for (std::size_t i = 0; i < rows; ++i) {
        if (sw[i] == t_) continue;  // c(t,t,1) stays +inf
        ce[i] = metric_to_t_[i];
        se[i] = t_;
      }
    } else {
      const double* pc = ce - rows;
      const NodeId* ps = se - rows;
      // Tiled candidate min-scan: the k tile of the shared previous-level
      // rows stays cache-resident while every row i streams its metric
      // segment past it. ce/se are the running best per row; tiles arrive
      // in increasing k, so the strict-< argmin picks the same candidate
      // as a single left-to-right scan.
      for (std::size_t k0 = 0; k0 < rows; k0 += kBlock) {
        const std::size_t k1 = std::min(rows, k0 + kBlock);
        for (std::size_t i = 0; i < rows; ++i) {
          const NodeId u = sw[i];
          const double* mrow = metric_.data() + i * rows;
          double best = ce[i];
          NodeId best_w = se[i];
          for (std::size_t k = k0; k < k1; ++k) {
            const NodeId w = sw[k];
            // Line 6, branchless: intermediate w may be neither u itself
            // nor t, and the stored continuation from w must not
            // immediately return to u. An excluded (or unreachable)
            // candidate costs +inf and never wins the strict <.
            const bool ok = (w != u) && (w != t_) && (ps[k] != u);
            const double cand = ok ? mrow[k] + pc[k] : kInf;
            if (cand < best) {
              best = cand;
              best_w = w;
            }
          }
          ce[i] = best;
          se[i] = best_w;
        }
      }
    }
    ++levels_;
  }
}

std::pair<double, NodeId> StrollTable::source_row(NodeId s, int e) const {
  PPDC_REQUIRE(e >= 1 && e <= levels_, "edge budget not materialized");
  if (e == 1) {
    if (s == t_) return {kInf, kInvalidNode};
    return {metric(s, t_), t_};
  }
  const double* pc = cost_row(e - 1);
  const NodeId* ps = succ_row(e - 1);
  const double* srow = apsp_->cost_row(s);
  const NodeId* sw = switches_.raw().data();
  double best = kInf;
  NodeId best_w = kInvalidNode;
  for (std::size_t k = 0; k < rows_; ++k) {
    const NodeId w = sw[k];
    const bool ok = (w != s) && (w != t_) && (ps[k] != s);
    const double cand =
        ok ? rate_ * srow[static_cast<std::size_t>(w)] + pc[k] : kInf;
    if (cand < best) {
      best = cand;
      best_w = w;
    }
  }
  return {best, best_w};
}

StrollResult StrollTable::find(NodeId s, int n_distinct) {
  const Graph& g = apsp_->graph();
  PPDC_REQUIRE(s >= 0 && s < g.num_nodes(), "source out of range");
  PPDC_REQUIRE(n_distinct >= 0, "negative distinct requirement");
  // Switches available as intermediates (s and t do not count).
  int usable = static_cast<int>(switches_.size());
  if (g.is_switch(s)) --usable;
  if (g.is_switch(t_) && t_ != s) --usable;
  PPDC_REQUIRE(n_distinct <= usable,
               "not enough switches to host the requested VNFs");

  StrollResult out;
  if (n_distinct == 0) {
    if (s == t_) {
      // Degenerate n-tour base: no edge is needed, and a {s, s} walk would
      // violate the consecutive-nodes-distinct invariant downstream
      // consumers (explain, Theorem-3 suffix checks) rely on.
      out.cost = 0.0;
      out.walk = {s};
      out.edges_used = 0;
      return out;
    }
    out.cost = metric(s, t_);
    out.walk = {s, t_};
    out.edges_used = 1;
    return out;
  }

  const int r_cap = n_distinct + 1 + std::max(16, n_distinct * 2);
  std::vector<NodeId> best_partial;  // longest distinct prefix seen so far
  // Membership bitmap over DP rows: dedups the walk's distinct switches in
  // O(1) per step instead of a linear scan of the growing vector.
  std::vector<char> seen(rows_, 0);

  for (int r = n_distinct + 1; r <= r_cap; ++r) {
    extend(r);
    const auto [total, first_hop] = source_row(s, r);
    if (total == kInf) continue;  // no r-edge stroll exists (tiny graphs)

    // Walk the successor chain (pseudocode lines 11-19).
    std::vector<NodeId> walk{s};
    std::vector<NodeId> distinct;
    NodeId cur = first_hop;
    int budget = r - 1;
    while (true) {
      walk.push_back(cur);
      if (cur != s && cur != t_ && g.is_switch(cur)) {
        const CandidateIdx row = switch_index_[static_cast<std::size_t>(cur)];
        PPDC_REQUIRE(row.valid(), "walk visits a non-universe switch");
        char& mark = seen[static_cast<std::size_t>(row.value())];
        if (!mark) {
          mark = 1;
          distinct.push_back(cur);
        }
      }
      if (budget == 0) break;
      const CandidateIdx row = switch_index_[static_cast<std::size_t>(cur)];
      PPDC_REQUIRE(row.valid(), "walk stepped outside the switch universe");
      cur = succ_row(budget)[static_cast<std::size_t>(row.value())];
      PPDC_REQUIRE(cur != kInvalidNode, "broken successor chain");
      --budget;
    }
    PPDC_REQUIRE(walk.back() == t_, "stroll must end at the destination");

    if (static_cast<int>(distinct.size()) > static_cast<int>(best_partial.size())) {
      best_partial = distinct;
    }
    if (static_cast<int>(distinct.size()) >= n_distinct) {
      out.cost = total;
      out.walk = std::move(walk);
      distinct.resize(static_cast<std::size_t>(n_distinct));
      out.placement = std::move(distinct);
      out.edges_used = r;
      return out;
    }
    // Clear only the bits this round set (distinct is tiny next to rows_).
    for (const NodeId w : distinct) {
      seen[static_cast<std::size_t>(
          switch_index_[static_cast<std::size_t>(w)].value())] = 0;
    }
  }

  // Cap hit: greedily complete the best partial cover with nearest unused
  // switches so callers always receive a valid placement.
  out.used_fallback = true;
  std::vector<NodeId> seq = best_partial;
  // `seen` is all-clear here; reuse it as the membership bitmap of `seq`.
  for (const NodeId w : seq) {
    seen[static_cast<std::size_t>(
        switch_index_[static_cast<std::size_t>(w)].value())] = 1;
  }
  const NodeId* sw = switches_.raw().data();
  while (static_cast<int>(seq.size()) < n_distinct) {
    const NodeId from = seq.empty() ? s : seq.back();
    const double* frow = apsp_->cost_row(from);
    double best_d = kInf;
    NodeId best_sw = kInvalidNode;
    std::size_t best_row = 0;
    for (std::size_t k = 0; k < rows_; ++k) {
      const NodeId w = sw[k];
      if (w == s || w == t_ || seen[k]) continue;
      const double d = frow[static_cast<std::size_t>(w)];
      if (d < best_d) {
        best_d = d;
        best_sw = w;
        best_row = k;
      }
    }
    PPDC_REQUIRE(best_sw != kInvalidNode, "fallback ran out of switches");
    seen[best_row] = 1;
    seq.push_back(best_sw);
  }
  out.walk = {s};
  out.walk.insert(out.walk.end(), seq.begin(), seq.end());
  out.walk.push_back(t_);
  out.cost = 0.0;
  for (std::size_t i = 0; i + 1 < out.walk.size(); ++i) {
    out.cost += metric(out.walk[i], out.walk[i + 1]);
  }
  out.placement = std::move(seq);
  out.edges_used = static_cast<int>(out.walk.size()) - 1;
  return out;
}

bool StrollTable::satisfies_theorem3(const StrollResult& result) const {
  if (result.used_fallback || result.walk.size() < 2) return false;
  const int r = result.edges_used;
  if (r > levels_) return false;
  // For each position i >= 1 on the walk, the suffix starting there uses
  // (r - i) edges; Theorem 3 requires it to be the cheapest (r-i)-edge
  // stroll into t over every possible start row.
  for (int i = 1; i < r; ++i) {
    const NodeId u = result.walk[static_cast<std::size_t>(i)];
    const CandidateIdx row = switch_index_[static_cast<std::size_t>(u)];
    if (!row.valid()) return false;
    const double* level = cost_row(r - i);
    const double suffix = level[static_cast<std::size_t>(row.value())];
    const double global_min = *std::min_element(level, level + rows_);
    if (suffix > global_min + 1e-9) return false;
  }
  return true;
}

StrollResult solve_top1_dp(const AllPairs& apsp, NodeId s, NodeId t, int n,
                           double rate) {
  StrollTable table(apsp, t, rate);
  return table.find(s, n);
}

}  // namespace ppdc
