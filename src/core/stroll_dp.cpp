#include "core/stroll_dp.hpp"

#include <algorithm>
#include <limits>

#include "util/require.hpp"

namespace ppdc {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

StrollTable::StrollTable(const AllPairs& apsp, NodeId destination,
                         double rate, std::vector<NodeId> universe)
    : apsp_(&apsp), t_(destination), rate_(rate) {
  PPDC_REQUIRE(rate > 0.0, "stroll rate must be positive");
  const Graph& g = apsp.graph();
  PPDC_REQUIRE(destination >= 0 && destination < g.num_nodes(),
               "destination out of range");
  if (universe.empty()) {
    switches_ = IndexedVector<CandidateIdx, NodeId>(g.switches());
  } else {
    for (const NodeId u : universe) {
      PPDC_REQUIRE(u >= 0 && u < g.num_nodes() && g.is_switch(u),
                   "stroll universe entries must be switches");
    }
    switches_ = IndexedVector<CandidateIdx, NodeId>(std::move(universe));
  }
  switch_index_.assign(static_cast<std::size_t>(g.num_nodes()),
                       CandidateIdx::invalid());
  for (const CandidateIdx i : switches_.ids()) {
    switch_index_[static_cast<std::size_t>(switches_[i])] = i;
  }
}

void StrollTable::extend(int e_max) {
  const std::size_t rows = switches_.size();
  while (static_cast<int>(cost_.size()) < e_max) {
    const int e = static_cast<int>(cost_.size()) + 1;
    IndexedVector<CandidateIdx, double> ce(rows, kInf);
    IndexedVector<CandidateIdx, NodeId> se(rows, kInvalidNode);
    if (e == 1) {
      // Base case (pseudocode line 2): one metric edge straight to t.
      for (const CandidateIdx i : switches_.ids()) {
        const NodeId u = switches_[i];
        if (u == t_) continue;  // c(t,t,1) stays +inf
        ce[i] = metric(u, t_);
        se[i] = t_;
      }
    } else {
      const auto& prev_cost = cost_.back();
      const auto& prev_succ = succ_.back();
      for (const CandidateIdx i : switches_.ids()) {
        const NodeId u = switches_[i];
        double best = kInf;
        NodeId best_w = kInvalidNode;
        for (const CandidateIdx k : switches_.ids()) {
          const NodeId w = switches_[k];
          // Line 6: intermediate w may be neither u itself nor t, and the
          // stored continuation from w must not immediately return to u.
          if (w == u || w == t_) continue;
          if (prev_succ[k] == u) continue;
          if (prev_cost[k] == kInf) continue;
          const double cand = metric(u, w) + prev_cost[k];
          if (cand < best) {
            best = cand;
            best_w = w;
          }
        }
        ce[i] = best;
        se[i] = best_w;
      }
    }
    cost_.push_back(std::move(ce));
    succ_.push_back(std::move(se));
  }
}

std::pair<double, NodeId> StrollTable::source_row(NodeId s, int e) const {
  PPDC_REQUIRE(e >= 1 && e <= static_cast<int>(cost_.size()),
               "edge budget not materialized");
  if (e == 1) {
    if (s == t_) return {kInf, kInvalidNode};
    return {metric(s, t_), t_};
  }
  const auto& prev_cost = cost_[static_cast<std::size_t>(e - 2)];
  const auto& prev_succ = succ_[static_cast<std::size_t>(e - 2)];
  double best = kInf;
  NodeId best_w = kInvalidNode;
  for (const CandidateIdx k : switches_.ids()) {
    const NodeId w = switches_[k];
    if (w == s || w == t_) continue;
    if (prev_succ[k] == s) continue;
    if (prev_cost[k] == kInf) continue;
    const double cand = metric(s, w) + prev_cost[k];
    if (cand < best) {
      best = cand;
      best_w = w;
    }
  }
  return {best, best_w};
}

StrollResult StrollTable::find(NodeId s, int n_distinct) {
  const Graph& g = apsp_->graph();
  PPDC_REQUIRE(s >= 0 && s < g.num_nodes(), "source out of range");
  PPDC_REQUIRE(n_distinct >= 0, "negative distinct requirement");
  // Switches available as intermediates (s and t do not count).
  int usable = static_cast<int>(switches_.size());
  if (g.is_switch(s)) --usable;
  if (g.is_switch(t_) && t_ != s) --usable;
  PPDC_REQUIRE(n_distinct <= usable,
               "not enough switches to host the requested VNFs");

  StrollResult out;
  if (n_distinct == 0) {
    out.cost = metric(s, t_);
    out.walk = {s, t_};
    out.edges_used = (s == t_) ? 0 : 1;
    return out;
  }

  const int r_cap = n_distinct + 1 + std::max(16, n_distinct * 2);
  std::vector<NodeId> best_partial;  // longest distinct prefix seen so far

  for (int r = n_distinct + 1; r <= r_cap; ++r) {
    extend(r);
    const auto [total, first_hop] = source_row(s, r);
    if (total == kInf) continue;  // no r-edge stroll exists (tiny graphs)

    // Walk the successor chain (pseudocode lines 11-19).
    std::vector<NodeId> walk{s};
    std::vector<NodeId> distinct;
    NodeId cur = first_hop;
    int budget = r - 1;
    while (true) {
      walk.push_back(cur);
      if (cur != s && cur != t_ && g.is_switch(cur) &&
          std::find(distinct.begin(), distinct.end(), cur) ==
              distinct.end()) {
        distinct.push_back(cur);
      }
      if (budget == 0) break;
      const CandidateIdx row = switch_index_[static_cast<std::size_t>(cur)];
      PPDC_REQUIRE(row.valid(), "walk stepped outside the switch universe");
      cur = succ_[static_cast<std::size_t>(budget - 1)][row];
      PPDC_REQUIRE(cur != kInvalidNode, "broken successor chain");
      --budget;
    }
    PPDC_REQUIRE(walk.back() == t_, "stroll must end at the destination");

    if (static_cast<int>(distinct.size()) > static_cast<int>(best_partial.size())) {
      best_partial = distinct;
    }
    if (static_cast<int>(distinct.size()) >= n_distinct) {
      out.cost = total;
      out.walk = std::move(walk);
      distinct.resize(static_cast<std::size_t>(n_distinct));
      out.placement = std::move(distinct);
      out.edges_used = r;
      return out;
    }
  }

  // Cap hit: greedily complete the best partial cover with nearest unused
  // switches so callers always receive a valid placement.
  out.used_fallback = true;
  std::vector<NodeId> seq = best_partial;
  while (static_cast<int>(seq.size()) < n_distinct) {
    const NodeId from = seq.empty() ? s : seq.back();
    double best_d = kInf;
    NodeId best_sw = kInvalidNode;
    for (const NodeId w : switches_) {
      if (w == s || w == t_) continue;
      if (std::find(seq.begin(), seq.end(), w) != seq.end()) continue;
      const double d = apsp_->cost(from, w);
      if (d < best_d) {
        best_d = d;
        best_sw = w;
      }
    }
    PPDC_REQUIRE(best_sw != kInvalidNode, "fallback ran out of switches");
    seq.push_back(best_sw);
  }
  out.walk = {s};
  out.walk.insert(out.walk.end(), seq.begin(), seq.end());
  out.walk.push_back(t_);
  out.cost = 0.0;
  for (std::size_t i = 0; i + 1 < out.walk.size(); ++i) {
    out.cost += metric(out.walk[i], out.walk[i + 1]);
  }
  out.placement = std::move(seq);
  out.edges_used = static_cast<int>(out.walk.size()) - 1;
  return out;
}

bool StrollTable::satisfies_theorem3(const StrollResult& result) const {
  if (result.used_fallback || result.walk.size() < 2) return false;
  const int r = result.edges_used;
  if (r > static_cast<int>(cost_.size())) return false;
  // For each position i >= 1 on the walk, the suffix starting there uses
  // (r - i) edges; Theorem 3 requires it to be the cheapest (r-i)-edge
  // stroll into t over every possible start row.
  for (int i = 1; i < r; ++i) {
    const NodeId u = result.walk[static_cast<std::size_t>(i)];
    const CandidateIdx row = switch_index_[static_cast<std::size_t>(u)];
    if (!row.valid()) return false;
    const auto& level = cost_[static_cast<std::size_t>(r - i - 1)];
    const double suffix = level[row];
    const double global_min = *std::min_element(level.begin(), level.end());
    if (suffix > global_min + 1e-9) return false;
  }
  return true;
}

StrollResult solve_top1_dp(const AllPairs& apsp, NodeId s, NodeId t, int n,
                           double rate) {
  StrollTable table(apsp, t, rate);
  return table.find(s, n);
}

}  // namespace ppdc
