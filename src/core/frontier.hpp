// VNF migration frontiers (Definitions 1 and 2 of the paper).
//
// When VNF f_j migrates from p(j) toward p'(j), it moves along the
// shortest path S_j between the two switches. A *migration frontier* picks
// one switch from every S_j; the *parallel* frontiers are the h_max rows of
// the matrix P where row i holds the i-th switch of every path (clamped to
// the path end once a VNF has arrived, Def. 2). Row 1 is the original
// placement p, row h_max is the target p'.
//
// Frontier rows can transiently collide (two VNFs on one switch); such
// rows are still recorded — they are legitimate points of the (C_b, C_a)
// trade-off curve — but are not eligible as final migrations, because a
// placement must use distinct switches (§III footnote 3).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/cost_model.hpp"
#include "graph/apsp.hpp"
#include "graph/graph.hpp"
#include "util/ids.hpp"
#include "util/indexed_vector.hpp"

namespace ppdc {

/// The per-VNF migration paths and derived parallel frontiers.
class MigrationFrontiers {
 public:
  /// Builds S_j = shortest path p[j] -> target[j] for every j. Host
  /// vertices never appear: both endpoints are switches and hosts are
  /// leaves, so shortest switch-to-switch paths stay within the fabric.
  MigrationFrontiers(const AllPairs& apsp, const Placement& from,
                     const Placement& to);

  /// h_j: number of switches on S_j (1 when the VNF does not move),
  /// subscripted by chain position.
  const IndexedVector<ChainPos, int>& path_lengths() const noexcept {
    return h_;
  }
  int h_max() const noexcept { return h_max_; }

  /// The i-th parallel frontier, i in [1, h_max] (Def. 2).
  Placement parallel_frontier(int i) const;

  /// All h_max parallel frontiers, first to last.
  std::vector<Placement> all_parallel_frontiers() const;

  /// Number of (general) frontiers Π h_j (Def. 1); may overflow for huge
  /// instances, saturates at int64 max.
  std::int64_t frontier_count() const noexcept;

  /// Enumerates every general frontier (Def. 1) and invokes `visit` on
  /// each. Throws if frontier_count() exceeds `max_enumerated`.
  void for_each_frontier(std::int64_t max_enumerated,
                         const std::function<void(const Placement&)>& visit) const;

  /// As above, but `visit` returns false to stop early (deadline-bounded
  /// scans keep their best-so-far instead of finishing the enumeration).
  void for_each_frontier_until(
      std::int64_t max_enumerated,
      const std::function<bool(const Placement&)>& visit) const;

  /// The migration path of the VNF at chain position `j`.
  const std::vector<NodeId>& path(ChainPos j) const;

 private:
  IndexedVector<ChainPos, std::vector<NodeId>> paths_;
  IndexedVector<ChainPos, int> h_;
  int h_max_ = 1;
};

/// True when every entry of `p` is distinct (frontier rows may collide).
bool is_collision_free(const Placement& p);

}  // namespace ppdc
