// Co-location relaxation (paper §VII, future work): "a more general
// scenario wherein each switch can install multiple VNFs".
//
// When a switch's attached server can host up to `capacity` VNFs, an
// optimal placement packs the chain into ceil(n / capacity) consecutive
// blocks — VNFs sharing a server communicate over the server's backplane
// at zero network cost (§III: the switch-server link is negligible). The
// problem therefore reduces *exactly* to TOP over the block sequence:
// place ceil(n / capacity) block-switches with Algorithm 3 and assign
// VNFs to blocks in chain order. With capacity >= n the whole SFC sits on
// argmin_w A(w) + B(w) and the chain cost vanishes.
#pragma once

#include "core/cost_model.hpp"
#include "core/placement_dp.hpp"

namespace ppdc {

/// Result of a co-located placement.
struct ColocatedPlacement {
  /// placement[j] = switch of VNF j+1; switches may repeat in runs of up
  /// to `capacity`.
  Placement placement;
  double comm_cost = 0.0;
};

/// Eq. 1 evaluated without the distinct-switch requirement (repeated
/// consecutive switches contribute zero chain legs).
double colocated_communication_cost(const CostModel& model,
                                    const Placement& p);

/// Traffic-optimal placement when each switch can host up to
/// `capacity` (>= 1) VNFs of the SFC. capacity == 1 is plain Algorithm 3.
ColocatedPlacement solve_top_colocated(const CostModel& model, int n,
                                       int capacity,
                                       const TopDpOptions& options = {});

}  // namespace ppdc
