#include "core/colocation.hpp"

#include "graph/graph.hpp"
#include "util/require.hpp"

namespace ppdc {

double colocated_communication_cost(const CostModel& model,
                                    const Placement& p) {
  PPDC_REQUIRE(!p.empty(), "empty placement");
  const Graph& g = model.apsp().graph();
  for (const NodeId w : p) {
    PPDC_REQUIRE(g.is_switch(w), "VNFs may only be placed on switches");
  }
  return model.total_rate() * model.chain_cost(p) +
         model.ingress_attraction(p.front()) +
         model.egress_attraction(p.back());
}

ColocatedPlacement solve_top_colocated(const CostModel& model, int n,
                                       int capacity,
                                       const TopDpOptions& options) {
  PPDC_REQUIRE(n >= 1, "need at least one VNF");
  PPDC_REQUIRE(capacity >= 1, "capacity must be at least one VNF");

  const int blocks = (n + capacity - 1) / capacity;
  const PlacementResult block_placement =
      solve_top_dp(model, blocks, options);

  ColocatedPlacement out;
  out.placement.reserve(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    out.placement.push_back(
        block_placement.placement[static_cast<std::size_t>(j / capacity)]);
  }
  out.comm_cost = colocated_communication_cost(model, out.placement);
  return out;
}

}  // namespace ppdc
