// Algorithm 3: DP-based traffic-optimal VNF placement for TOP.
//
// For every ordered pair of candidate ingress/egress switches (s_i, s_j),
// the endpoint cost a = A(s_i) + B(s_j) is combined with the cheapest
// (n-2)-stroll between them, found by the Algorithm 2 DP (one StrollTable
// per egress amortizes the DP across all ingress candidates). The
// candidate minimizing the *actual* Eq. 1 cost of the materialized
// placement wins. n = 1 and n = 2 have closed-form scans (the paper notes
// "simple solutions" exist for these and only runs the DP for n >= 3).
#pragma once

#include "core/cost_model.hpp"
#include "core/stroll_dp.hpp"

namespace ppdc {

/// Result of a placement heuristic.
struct PlacementResult {
  Placement placement;
  double comm_cost = 0.0;    ///< C_a(placement), Eq. 1
  bool used_fallback = false;  ///< any inner stroll hit the DP growth cap
};

/// Tuning knobs for Algorithm 3.
struct TopDpOptions {
  /// When > 0, only the `candidate_limit` switches with the smallest
  /// ingress attraction A(·) are tried as ingress and likewise for egress
  /// by B(·). 0 tries every switch (the paper's algorithm). The pruned
  /// variant is an engineering option for very large PPDCs (k = 16 runs of
  /// Fig. 11): optimal ingress/egress switches are overwhelmingly the ones
  /// close to the traffic mass, which is exactly what A/B rank.
  int candidate_limit = 0;
};

/// Algorithm 3. Requires 1 <= n <= |V_s| and at least one flow with
/// positive total rate (Λ > 0 keeps the objective meaningful; Λ == 0 is
/// accepted and returns an arbitrary cheapest placement).
PlacementResult solve_top_dp(const CostModel& model, int n,
                             const TopDpOptions& options = {});

}  // namespace ppdc
