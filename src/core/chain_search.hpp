// Exact chain search shared by Algorithm 4 (Optimal TOP) and Algorithm 6
// (Optimal TOM).
//
// Both exhaustive algorithms minimize, over ordered tuples of n distinct
// switches (m_1 .. m_n):
//
//   A(m_1) + Λ Σ_j c(m_j, m_{j+1}) + B(m_n) + Σ_j extra(j, m_j)
//
// where extra == 0 reproduces Eq. 1 (TOP) and extra(j, w) = μ c(p(j), w)
// reproduces Eq. 8 (TOM). The paper runs these as plain enumeration in
// O(|V_s|^n); we add admissible-bound pruning (depth-first branch and
// bound) so the "Optimal" curves of Fig. 7/9/10 are computable at k = 8
// scale. Pruning uses:
//   * remaining chain >= (n - depth) * Λ * min switch-switch distance,
//   * the egress term >= min_b B(b),
//   * remaining extra >= Σ_{j>depth} min_w extra(j, w),
// all of which lower-bound any completion, so the search stays exact.
// A node budget bounds worst-case running time; when it is exhausted the
// best placement found so far is returned with proven_optimal = false.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/cost_model.hpp"
#include "core/solve_budget.hpp"
#include "util/ids.hpp"
#include "util/indexed_vector.hpp"

namespace ppdc {

/// Per-position additive cost term of the chain objective: extra[j] is a
/// row over the candidate universe, subscripted by the CandidateIdx of a
/// switch in model.placement_candidates() order. The typed subscript keeps
/// raw NodeIds (a different domain) out of the matrix.
using ExtraMatrix = std::vector<IndexedVector<CandidateIdx, double>>;

/// Result of an exact (or budget-truncated) chain search.
struct ChainSearchResult {
  Placement placement;     ///< best tuple found
  double objective = 0.0;  ///< value of the objective above
  bool proven_optimal = false;
  std::uint64_t nodes_explored = 0;
};

/// Configuration of the branch-and-bound run.
struct ChainSearchConfig {
  /// Max partial assignments expanded before giving up on proof of
  /// optimality. 0 means unlimited.
  std::uint64_t node_budget = 200'000'000;
  /// Wall-clock budget. When it expires the search stops at the incumbent
  /// (proven_optimal = false) — but never before a first full placement
  /// exists, so the result is always valid. Default: unlimited.
  SolveBudget budget;
  /// Optional warm-start placement (e.g. the DP solution); its objective
  /// seeds the incumbent so pruning bites immediately.
  std::optional<Placement> initial;
};

/// Minimizes the chain objective. `extra` is either empty (TOP) or an
/// n x |candidates| matrix indexed by [position][CandidateIdx] in the
/// order of model.placement_candidates() (TOM). The search universe is
/// placement_candidates(): all switches normally, only the alive serving
/// partition on a degraded fabric.
ChainSearchResult chain_search(const CostModel& model, int n,
                               const ExtraMatrix& extra,
                               const ChainSearchConfig& config = {});

/// Algorithm 4: exhaustive traffic-optimal VNF placement.
ChainSearchResult solve_top_exhaustive(const CostModel& model, int n,
                                       const ChainSearchConfig& config = {});

/// Algorithm 6: exhaustive traffic-optimal VNF migration away from `from`.
/// The returned objective equals C_t(from, m) of Eq. 8.
ChainSearchResult solve_tom_exhaustive(const CostModel& model,
                                       const Placement& from, double mu,
                                       const ChainSearchConfig& config = {});

}  // namespace ppdc
