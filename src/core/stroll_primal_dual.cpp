#include "core/stroll_primal_dual.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "graph/graph.hpp"
#include "util/require.hpp"

namespace ppdc {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One Goemans-Williamson moat-growing run over the metric closure.
///
/// Nodes are compact indices 0..m-1; node 0 is the root s, node 1 is t
/// (infinite prize). Returns the pruned tree as an adjacency list.
class GwRun {
 public:
  GwRun(std::vector<double> prize, const std::vector<std::vector<double>>& w)
      : m_(static_cast<int>(prize.size())),
        prize_(std::move(prize)),
        w_(w),
        comp_(static_cast<std::size_t>(m_)),
        moat_(static_cast<std::size_t>(m_), 0.0),
        dual_(static_cast<std::size_t>(m_), 0.0),
        dead_on_merge_(static_cast<std::size_t>(m_), false) {
    for (int v = 0; v < m_; ++v) comp_[static_cast<std::size_t>(v)] = v;
  }

  /// Runs growth + pruning; returns the node set of the pruned tree plus
  /// its edges.
  std::pair<std::vector<int>, std::vector<std::pair<int, int>>> run() {
    grow();
    return prune();
  }

 private:
  int find(int v) {
    while (comp_[static_cast<std::size_t>(v)] != v) {
      comp_[static_cast<std::size_t>(v)] =
          comp_[static_cast<std::size_t>(comp_[static_cast<std::size_t>(v)])];
      v = comp_[static_cast<std::size_t>(v)];
    }
    return v;
  }

  bool active(int root) const {
    // The root component (contains s == node 0) never grows; components
    // whose dual has exhausted their prize are deactivated.
    return !contains_s_[static_cast<std::size_t>(root)] &&
           dual_[static_cast<std::size_t>(root)] <
               prize_sum_[static_cast<std::size_t>(root)] - 1e-12;
  }

  void grow() {
    prize_sum_ = prize_;
    contains_s_.assign(static_cast<std::size_t>(m_), false);
    contains_s_[0] = true;

    int alive = 0;
    for (int v = 0; v < m_; ++v) {
      if (active(find(v))) ++alive;
    }
    // Each iteration merges two components or deactivates one: <= 2m events.
    for (int guard = 0; guard < 4 * m_ && alive > 0; ++guard) {
      // Earliest edge event.
      double best_dt = kInf;
      int eu = -1, ev = -1;
      for (int u = 0; u < m_; ++u) {
        const int cu = find(u);
        for (int v = u + 1; v < m_; ++v) {
          const int cv = find(v);
          if (cu == cv) continue;
          const double speed = (active(cu) ? 1.0 : 0.0) +
                               (active(cv) ? 1.0 : 0.0);
          if (speed == 0.0) continue;
          const double slack = w_[static_cast<std::size_t>(u)]
                                 [static_cast<std::size_t>(v)] -
                               moat_[static_cast<std::size_t>(u)] -
                               moat_[static_cast<std::size_t>(v)];
          const double dt = std::max(0.0, slack) / speed;
          if (dt < best_dt) {
            best_dt = dt;
            eu = u;
            ev = v;
          }
        }
      }
      // Earliest deactivation event.
      double best_dd = kInf;
      int dead_comp = -1;
      for (int v = 0; v < m_; ++v) {
        const int c = find(v);
        if (c != v || !active(c)) continue;
        const double dd = prize_sum_[static_cast<std::size_t>(c)] -
                          dual_[static_cast<std::size_t>(c)];
        if (dd < best_dd) {
          best_dd = dd;
          dead_comp = c;
        }
      }
      if (eu < 0 && dead_comp < 0) break;

      const double dt = std::min(best_dt, best_dd);
      // Advance time: every node inside an active component grows.
      for (int v = 0; v < m_; ++v) {
        if (active(find(v))) moat_[static_cast<std::size_t>(v)] += dt;
      }
      for (int c = 0; c < m_; ++c) {
        if (find(c) == c && active(c)) {
          dual_[static_cast<std::size_t>(c)] += dt;
        }
      }

      if (best_dt <= best_dd && eu >= 0) {
        // Merge event: record the tight edge, union the components.
        const int cu = find(eu), cv = find(ev);
        tree_edges_.emplace_back(eu, ev);
        // Remember whether the smaller side was already dead when it got
        // absorbed — pruning removes such subtrees.
        const bool cu_dead = !active(cu) && !contains_s_[static_cast<std::size_t>(cu)];
        const bool cv_dead = !active(cv) && !contains_s_[static_cast<std::size_t>(cv)];
        comp_[static_cast<std::size_t>(cv)] = cu;
        prize_sum_[static_cast<std::size_t>(cu)] +=
            prize_sum_[static_cast<std::size_t>(cv)];
        dual_[static_cast<std::size_t>(cu)] +=
            dual_[static_cast<std::size_t>(cv)];
        contains_s_[static_cast<std::size_t>(cu)] =
            contains_s_[static_cast<std::size_t>(cu)] ||
            contains_s_[static_cast<std::size_t>(cv)];
        if (cu_dead) dead_on_merge_[static_cast<std::size_t>(eu)] = true;
        if (cv_dead) dead_on_merge_[static_cast<std::size_t>(ev)] = true;
      }
      // Deactivation needs no explicit bookkeeping: `active` recomputes
      // from dual_ vs prize_sum_.

      alive = 0;
      for (int c = 0; c < m_; ++c) {
        if (find(c) == c && active(c)) ++alive;
      }
    }
  }

  std::pair<std::vector<int>, std::vector<std::pair<int, int>>> prune() {
    // Keep only the component containing s; then repeatedly strip leaves
    // that (a) are not s or t and (b) hung off a deactivated moat.
    const int root = find(0);
    std::vector<std::vector<int>> adj(static_cast<std::size_t>(m_));
    std::vector<std::pair<int, int>> kept;
    for (const auto& [u, v] : tree_edges_) {
      if (find(u) != root) continue;
      adj[static_cast<std::size_t>(u)].push_back(v);
      adj[static_cast<std::size_t>(v)].push_back(u);
      kept.emplace_back(u, v);
    }
    bool changed = true;
    std::vector<bool> removed(static_cast<std::size_t>(m_), false);
    while (changed) {
      changed = false;
      for (int v = 2; v < m_; ++v) {  // never strip s (0) or t (1)
        if (removed[static_cast<std::size_t>(v)]) continue;
        if (!dead_on_merge_[static_cast<std::size_t>(v)]) continue;
        int degree = 0;
        for (const int nb : adj[static_cast<std::size_t>(v)]) {
          if (!removed[static_cast<std::size_t>(nb)]) ++degree;
        }
        if (degree <= 1) {
          removed[static_cast<std::size_t>(v)] = true;
          changed = true;
        }
      }
    }
    std::vector<std::pair<int, int>> pruned_edges;
    for (const auto& [u, v] : kept) {
      if (!removed[static_cast<std::size_t>(u)] &&
          !removed[static_cast<std::size_t>(v)]) {
        pruned_edges.emplace_back(u, v);
      }
    }
    std::vector<int> nodes;
    for (int v = 0; v < m_; ++v) {
      if (find(v) == root && !removed[static_cast<std::size_t>(v)]) {
        nodes.push_back(v);
      }
    }
    return {nodes, pruned_edges};
  }

  int m_;
  std::vector<double> prize_;
  const std::vector<std::vector<double>>& w_;
  std::vector<int> comp_;
  std::vector<double> moat_;       ///< per-node accumulated moat radius
  std::vector<double> dual_;      ///< per-component accumulated dual
  std::vector<double> prize_sum_;  ///< per-component prize budget
  std::vector<bool> contains_s_;
  std::vector<bool> dead_on_merge_;
  std::vector<std::pair<int, int>> tree_edges_;
};

/// Preorder walk of the tree from node 0, used to shortcut the doubled
/// tree into a stroll.
std::vector<int> preorder(int m, const std::vector<std::pair<int, int>>& edges) {
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(m));
  for (const auto& [u, v] : edges) {
    adj[static_cast<std::size_t>(u)].push_back(v);
    adj[static_cast<std::size_t>(v)].push_back(u);
  }
  std::vector<int> order;
  std::vector<bool> seen(static_cast<std::size_t>(m), false);
  std::vector<int> stack{0};
  seen[0] = true;
  while (!stack.empty()) {
    const int u = stack.back();
    stack.pop_back();
    order.push_back(u);
    for (const int v : adj[static_cast<std::size_t>(u)]) {
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = true;
        stack.push_back(v);
      }
    }
  }
  return order;
}

}  // namespace

StrollResult solve_top1_primal_dual(const AllPairs& apsp, NodeId s, NodeId t,
                                    int n, double rate,
                                    const PrimalDualOptions& options) {
  const Graph& g = apsp.graph();
  PPDC_REQUIRE(n >= 0, "negative quota");
  PPDC_REQUIRE(rate > 0.0, "rate must be positive");

  // Compact universe: 0 = s, 1 = t, then every switch other than s/t.
  std::vector<NodeId> universe{s, t};
  for (const NodeId w : g.switches()) {
    if (w != s && w != t) universe.push_back(w);
  }
  const int m = static_cast<int>(universe.size());
  PPDC_REQUIRE(n <= m - 2, "not enough switches for the quota");

  std::vector<std::vector<double>> w(
      static_cast<std::size_t>(m),
      std::vector<double>(static_cast<std::size_t>(m), 0.0));
  double max_d = 0.0;
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) {
      w[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          rate * apsp.cost(universe[static_cast<std::size_t>(i)],
                           universe[static_cast<std::size_t>(j)]);
      max_d = std::max(
          max_d, w[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]);
    }
  }
  // s == t (n-tour) gives a zero s-t edge; GW still works (they merge at
  // time zero).

  auto evaluate = [&](const std::vector<int>& nodes,
                      const std::vector<std::pair<int, int>>& edges,
                      StrollResult* out) -> bool {
    // How many quota switches does the pruned tree span?
    int quota_hit = 0;
    for (const int v : nodes) {
      if (v >= 2) ++quota_hit;
    }
    if (quota_hit < n) return false;
    // Double-and-shortcut: preorder from s, t moved to the end.
    std::vector<int> order = preorder(m, edges);
    std::vector<NodeId> seq{s};
    std::vector<NodeId> placement;
    for (const int v : order) {
      if (v < 2) continue;  // skip s and t inside the walk
      if (static_cast<int>(placement.size()) == n) break;
      placement.push_back(universe[static_cast<std::size_t>(v)]);
      seq.push_back(universe[static_cast<std::size_t>(v)]);
    }
    seq.push_back(t);
    double cost = 0.0;
    for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
      cost += rate * apsp.cost(seq[i], seq[i + 1]);
    }
    if (out->walk.empty() || cost < out->cost) {
      out->cost = cost;
      out->walk = seq;
      out->placement = placement;
      out->edges_used = static_cast<int>(seq.size()) - 1;
    }
    return true;
  };

  StrollResult best;
  if (n == 0) {
    best.cost = rate * apsp.cost(s, t);
    best.walk = {s, t};
    best.edges_used = (s == t) ? 0 : 1;
    return best;
  }

  // Outer Lagrangean search over the uniform prize π: small π prunes
  // aggressively (few switches kept), large π keeps everything.
  double lo = 0.0;
  double hi = 2.0 * max_d * static_cast<double>(n + 2) + 1.0;
  for (int it = 0; it < options.search_iterations; ++it) {
    const double pi = 0.5 * (lo + hi);
    std::vector<double> prize(static_cast<std::size_t>(m), pi);
    prize[0] = 0.0;   // root needs no prize
    prize[1] = kInf;  // t must connect
    GwRun run(prize, w);
    const auto [nodes, edges] = run.run();
    if (evaluate(nodes, edges, &best)) {
      hi = pi;  // quota met: try cheaper trees
    } else {
      lo = pi;
    }
  }

  if (best.walk.empty()) {
    // Even the largest penalty missed the quota (can only happen on
    // degenerate inputs); fall back to nearest-switch completion.
    best.used_fallback = true;
    std::vector<NodeId> seq{s};
    std::vector<NodeId> placement;
    while (static_cast<int>(placement.size()) < n) {
      double bd = kInf;
      NodeId bw = kInvalidNode;
      for (const NodeId cand : g.switches()) {
        if (cand == s || cand == t) continue;
        if (std::find(placement.begin(), placement.end(), cand) !=
            placement.end()) {
          continue;
        }
        const double d = apsp.cost(seq.back(), cand);
        if (d < bd) {
          bd = d;
          bw = cand;
        }
      }
      PPDC_REQUIRE(bw != kInvalidNode, "fallback ran out of switches");
      placement.push_back(bw);
      seq.push_back(bw);
    }
    seq.push_back(t);
    best.cost = 0.0;
    for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
      best.cost += rate * apsp.cost(seq[i], seq[i + 1]);
    }
    best.walk = seq;
    best.placement = placement;
    best.edges_used = static_cast<int>(seq.size()) - 1;
  }
  return best;
}

}  // namespace ppdc
