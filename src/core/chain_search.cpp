#include "core/chain_search.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "graph/apsp.hpp"
#include "graph/graph.hpp"
#include "util/require.hpp"

namespace ppdc {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Depth-first branch-and-bound state. Candidate-universe rows are the
/// CandidateIdx domain throughout; NodeIds appear only at the cost-model
/// boundary (attractions, distances). The candidate-to-candidate distance
/// closure and the per-row candidate orderings are flat row-major matrices
/// with stride |candidates| (DESIGN.md §11), so the descend() inner loop
/// reads two contiguous rows instead of hopping per-candidate vectors and
/// the big APSP matrix.
class Searcher {
 public:
  Searcher(const CostModel& model, int n, const ExtraMatrix& extra,
           const ChainSearchConfig& config)
      : model_(model),
        apsp_(model.apsp()),
        switches_(model.placement_candidates()),
        n_(n),
        extra_(extra),
        config_(config),
        deadline_(config.budget) {
    const std::size_t s = switches_.size();
    PPDC_REQUIRE(n_ >= 1, "need at least one VNF");
    PPDC_REQUIRE(static_cast<std::size_t>(n_) <= s,
                 "more VNFs than eligible switches");
    PPDC_REQUIRE(extra_.empty() ||
                     (extra_.size() == static_cast<std::size_t>(n_) &&
                      extra_[0].size() == s),
                 "extra matrix has wrong shape");

    // Suffix lower bounds of the extra term: Σ_{j'>=j} min_w extra[j'][w].
    extra_suffix_min_.assign(static_cast<std::size_t>(n_) + 1, 0.0);
    if (!extra_.empty()) {
      for (int j = n_ - 1; j >= 0; --j) {
        const auto& row = extra_[static_cast<std::size_t>(j)];
        extra_suffix_min_[static_cast<std::size_t>(j)] =
            extra_suffix_min_[static_cast<std::size_t>(j) + 1] +
            *std::min_element(row.begin(), row.end());
      }
    }

    // Flat candidate-distance closure dist_[i·s + k] = c(u_i, u_k) plus
    // the NodeId -> row map (replaces the linear row_of scan).
    const NodeId* sw = switches_.raw().data();
    dist_.resize(s * s);
    row_of_.assign(static_cast<std::size_t>(apsp_.num_nodes()),
                   CandidateIdx::invalid());
    for (std::size_t i = 0; i < s; ++i) {
      const double* arow = apsp_.cost_row(sw[i]);
      double* drow = dist_.data() + i * s;
      for (std::size_t k = 0; k < s; ++k) {
        drow[k] = arow[static_cast<std::size_t>(sw[k])];
      }
      row_of_[static_cast<std::size_t>(sw[i])] =
          CandidateIdx{static_cast<CandidateIdx::rep_type>(i)};
    }

    // Candidate orderings: per switch, all switches by increasing distance
    // (drives the DFS toward cheap completions first). Row i of the flat
    // order table is the CandidateIdx permutation for predecessor row i.
    by_distance_.resize(s * s);
    for (std::size_t i = 0; i < s; ++i) {
      CandidateIdx* order = by_distance_.data() + i * s;
      for (std::size_t k = 0; k < s; ++k) {
        order[k] = CandidateIdx{static_cast<CandidateIdx::rep_type>(k)};
      }
      const double* drow = dist_.data() + i * s;
      std::sort(order, order + s, [&](CandidateIdx a, CandidateIdx b) {
        return drow[static_cast<std::size_t>(a.value())] <
               drow[static_cast<std::size_t>(b.value())];
      });
    }

    used_.assign(s, 0);
    current_.assign(static_cast<std::size_t>(n_), kInvalidNode);

    best_cost_ = kInf;
    if (config_.initial.has_value()) {
      best_cost_ = evaluate(*config_.initial);
      best_ = *config_.initial;
    }
  }

  ChainSearchResult run() {
    // First position ordered by ingress attraction + its extra term.
    std::vector<CandidateIdx> first_order;
    first_order.reserve(switches_.size());
    for (const CandidateIdx i : switches_.ids()) first_order.push_back(i);
    std::sort(first_order.begin(), first_order.end(),
              [&](CandidateIdx a, CandidateIdx b) {
                return first_key(a) < first_key(b);
              });
    exhausted_ = false;
    for (const CandidateIdx row : first_order) {
      const NodeId w = switches_[row];
      const double cost = model_.ingress_attraction(w) + extra_at(0, row);
      descend(1, row, cost);
      if (exhausted_) break;
    }
    ChainSearchResult r;
    r.placement = best_;
    r.objective = best_cost_;
    r.proven_optimal = !exhausted_ && best_cost_ < kInf;
    r.nodes_explored = nodes_;
    PPDC_REQUIRE(!r.placement.empty(), "search found no placement");
    return r;
  }

 private:
  double extra_at(int j, CandidateIdx row) const {
    return extra_.empty() ? 0.0
                          : extra_[static_cast<std::size_t>(j)][row];
  }

  double first_key(CandidateIdx row) const {
    return model_.ingress_attraction(switches_[row]) + extra_at(0, row);
  }

  double evaluate(const Placement& p) const {
    PPDC_REQUIRE(static_cast<int>(p.size()) == n_, "warm start wrong size");
    double c = model_.communication_cost(p);
    if (!extra_.empty()) {
      for (int j = 0; j < n_; ++j) {
        const CandidateIdx row = row_of(p[static_cast<std::size_t>(j)]);
        c += extra_[static_cast<std::size_t>(j)][row];
      }
    }
    return c;
  }

  CandidateIdx row_of(NodeId w) const {
    PPDC_REQUIRE(w >= 0 && w < static_cast<NodeId>(row_of_.size()) &&
                     row_of_[static_cast<std::size_t>(w)].valid(),
                 "placement node is not a candidate switch");
    return row_of_[static_cast<std::size_t>(w)];
  }

  /// Lower bound on any completion after `depth` positions are fixed with
  /// accumulated cost `partial` (ingress + chain so far + extras so far).
  double completion_bound(int depth, double partial) const {
    const int remaining_edges = n_ - depth;
    double bound = partial + extra_suffix_min_[static_cast<std::size_t>(depth)];
    if (remaining_edges > 0) {
      bound += model_.total_rate() * static_cast<double>(remaining_edges) *
               apsp_.min_switch_distance();
    }
    bound += model_.min_egress_attraction();
    return bound;
  }

  /// Expands position `depth` given the previous pick at `prev_row`.
  /// `partial` excludes the final egress term.
  void descend(int depth, CandidateIdx prev_row, double partial) {
    if (exhausted_) return;
    ++nodes_;
    if (config_.node_budget != 0 && nodes_ > config_.node_budget) {
      exhausted_ = true;
      return;
    }
    // Wall-clock deadline, polled cheaply every 1024 nodes. Gated on an
    // incumbent existing: the search never aborts before a first complete
    // placement has been recorded, so run() always returns a valid answer
    // (graceful degradation instead of a throw under a ~0 budget).
    if ((nodes_ & 1023u) == 0 && best_cost_ < kInf && deadline_.expired()) {
      exhausted_ = true;
      return;
    }
    used_[prev_row] = 1;
    current_[static_cast<std::size_t>(depth - 1)] = switches_[prev_row];

    if (depth == n_) {
      const double total =
          partial + model_.egress_attraction(switches_[prev_row]);
      if (total < best_cost_) {
        best_cost_ = total;
        best_ = current_;
      }
      used_[prev_row] = 0;
      return;
    }

    if (completion_bound(depth, partial) >= best_cost_) {
      used_[prev_row] = 0;
      return;
    }

    const std::size_t s = switches_.size();
    const std::size_t prev = static_cast<std::size_t>(prev_row.value());
    const double* drow = dist_.data() + prev * s;
    const CandidateIdx* order = by_distance_.data() + prev * s;
    const double rate = model_.total_rate();
    for (std::size_t oi = 0; oi < s; ++oi) {
      const CandidateIdx row = order[oi];
      if (used_[row]) continue;
      const double step =
          rate * drow[static_cast<std::size_t>(row.value())] +
          extra_at(depth, row);
      const double next_partial = partial + step;
      if (completion_bound(depth + 1, next_partial) >= best_cost_) {
        // Candidates are sorted by distance from `prev`. Without an extra
        // term the step cost is monotone in that order, so every later
        // candidate fails the same bound; with extras prune only this one.
        if (extra_.empty()) break;
        continue;
      }
      descend(depth + 1, row, next_partial);
      if (exhausted_) break;
    }
    used_[prev_row] = 0;
  }

  const CostModel& model_;
  const AllPairs& apsp_;
  /// Candidate universe, copied once so rows are typed CandidateIdx.
  IndexedVector<CandidateIdx, NodeId> switches_;
  int n_;
  const ExtraMatrix& extra_;
  ChainSearchConfig config_;

  /// Flat |candidates|² matrices, row stride switches_.size().
  std::vector<double> dist_;
  std::vector<CandidateIdx> by_distance_;
  /// NodeId -> candidate row; invalid() outside the universe.
  std::vector<CandidateIdx> row_of_;
  std::vector<double> extra_suffix_min_;
  IndexedVector<CandidateIdx, char> used_;
  Placement current_;
  Placement best_;
  double best_cost_ = kInf;
  std::uint64_t nodes_ = 0;
  bool exhausted_ = false;
  Deadline deadline_;
};

}  // namespace

ChainSearchResult chain_search(const CostModel& model, int n,
                               const ExtraMatrix& extra,
                               const ChainSearchConfig& config) {
  Searcher s(model, n, extra, config);
  return s.run();
}

ChainSearchResult solve_top_exhaustive(const CostModel& model, int n,
                                       const ChainSearchConfig& config) {
  static const ExtraMatrix kNoExtra;
  return chain_search(model, n, kNoExtra, config);
}

ChainSearchResult solve_tom_exhaustive(const CostModel& model,
                                       const Placement& from, double mu,
                                       const ChainSearchConfig& config) {
  PPDC_REQUIRE(mu >= 0.0, "negative migration coefficient");
  const auto& switches = model.placement_candidates();
  ExtraMatrix extra(
      from.size(), IndexedVector<CandidateIdx, double>(switches.size(), 0.0));
  for (std::size_t j = 0; j < from.size(); ++j) {
    const double* frow = model.apsp().cost_row(from[j]);
    for (const CandidateIdx k : id_range<CandidateIdx>(switches.size())) {
      extra[j][k] =
          mu * frow[static_cast<std::size_t>(
                   switches[static_cast<std::size_t>(k.value())])];
    }
  }
  return chain_search(model, static_cast<int>(from.size()), extra, config);
}

}  // namespace ppdc
