#include "core/replication.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "graph/apsp.hpp"
#include "graph/graph.hpp"
#include "util/require.hpp"
#include "workload/traffic.hpp"

namespace ppdc {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// The switch a host hangs off (its top-of-rack switch).
NodeId rack_switch_of(const Graph& g, NodeId host) {
  for (const auto& a : g.neighbors(host)) {
    if (g.is_switch(a.to)) return a.to;
  }
  throw PpdcError("host has no adjacent switch");
}

}  // namespace

double replicated_flow_cost(const AllPairs& apsp, const VmFlow& flow,
                            const ReplicatedPlacement& placement) {
  PPDC_REQUIRE(!placement.chains.empty(), "no replica chains");
  const int n = placement.sfc_length();
  PPDC_REQUIRE(n >= 1, "empty SFC");
  const int r = placement.num_replicas();

  // Viterbi over stages: best[c] = cheapest path ending at replica c of
  // the current stage.
  std::vector<double> best(static_cast<std::size_t>(r));
  for (int c = 0; c < r; ++c) {
    best[static_cast<std::size_t>(c)] = apsp.cost(
        flow.src_host,
        placement.chains[static_cast<std::size_t>(c)][0]);
  }
  std::vector<double> next(static_cast<std::size_t>(r));
  for (int j = 1; j < n; ++j) {
    for (int c = 0; c < r; ++c) {
      double b = kInf;
      const NodeId here =
          placement.chains[static_cast<std::size_t>(c)]
                          [static_cast<std::size_t>(j)];
      for (int prev = 0; prev < r; ++prev) {
        const NodeId there =
            placement.chains[static_cast<std::size_t>(prev)]
                            [static_cast<std::size_t>(j - 1)];
        b = std::min(b, best[static_cast<std::size_t>(prev)] +
                            apsp.cost(there, here));
      }
      next[static_cast<std::size_t>(c)] = b;
    }
    best.swap(next);
  }
  double total = kInf;
  for (int c = 0; c < r; ++c) {
    const NodeId last = placement.chains[static_cast<std::size_t>(c)]
                                        [static_cast<std::size_t>(n - 1)];
    total = std::min(total, best[static_cast<std::size_t>(c)] +
                                apsp.cost(last, flow.dst_host));
  }
  return flow.rate * total;
}

double replicated_communication_cost(const AllPairs& apsp,
                                     const std::vector<VmFlow>& flows,
                                     const ReplicatedPlacement& placement) {
  double total = 0.0;
  for (const auto& f : flows) {
    total += replicated_flow_cost(apsp, f, placement);
  }
  return total;
}

ReplicatedPlacement solve_replicated_top(const CostModel& model, int n,
                                         int replicas,
                                         const TopDpOptions& options) {
  PPDC_REQUIRE(replicas >= 1, "need at least one replica");
  const AllPairs& apsp = model.apsp();
  const Graph& g = apsp.graph();
  const auto& flows = model.flows();
  PPDC_REQUIRE(!flows.empty(), "need at least one flow");

  // Traffic mass per source rack switch.
  std::map<NodeId, double> mass;
  for (const auto& f : flows) {
    mass[rack_switch_of(g, f.src_host)] += f.rate;
  }
  std::vector<std::pair<double, NodeId>> ranked;
  for (const auto& [sw, m] : mass) ranked.emplace_back(m, sw);
  std::sort(ranked.rbegin(), ranked.rend());
  const int r = std::min<int>(replicas, static_cast<int>(ranked.size()));

  // Cluster centers = the r heaviest source racks; each flow joins the
  // center nearest to its source rack.
  std::vector<NodeId> centers;
  for (int c = 0; c < r; ++c) {
    centers.push_back(ranked[static_cast<std::size_t>(c)].second);
  }
  std::vector<std::vector<VmFlow>> clusters(static_cast<std::size_t>(r));
  for (const auto& f : flows) {
    const NodeId anchor = rack_switch_of(g, f.src_host);
    int best_c = 0;
    double best_d = kInf;
    for (int c = 0; c < r; ++c) {
      const double d = apsp.cost(anchor, centers[static_cast<std::size_t>(c)]);
      if (d < best_d) {
        best_d = d;
        best_c = c;
      }
    }
    clusters[static_cast<std::size_t>(best_c)].push_back(f);
  }

  ReplicatedPlacement result;
  for (int c = 0; c < r; ++c) {
    auto& cluster = clusters[static_cast<std::size_t>(c)];
    if (cluster.empty()) {
      // Nothing routed here — still deploy a chain at the cluster center's
      // neighbourhood so the placement shape stays uniform.
      NodeId anchor_host = kInvalidNode;
      for (const auto& a :
           g.neighbors(centers[static_cast<std::size_t>(c)])) {
        if (g.is_host(a.to)) {
          anchor_host = a.to;
          break;
        }
      }
      PPDC_REQUIRE(anchor_host != kInvalidNode,
                   "cluster center has no attached host");
      cluster.push_back(VmFlow{anchor_host, anchor_host, 1.0});
    }
    CostModel cluster_model(apsp, cluster);
    result.chains.push_back(
        solve_top_dp(cluster_model, n, options).placement);
  }
  return result;
}

}  // namespace ppdc
