// Wall-clock solve budgets for the exact/near-exact solvers.
//
// The exhaustive branch-and-bound (Algorithms 4/6) and the
// frontier-exhaustive scan are worst-case exponential; in a live epoch loop
// they must never hang past the epoch boundary. A SolveBudget carries a
// wall-clock deadline that the solvers poll; on expiry they stop expanding
// and return the best placement found so far (callers seed an incumbent —
// the DP answer or the current placement — so "best so far" is always a
// valid placement, never a throw). Default is unlimited, which keeps every
// solver deterministic; deadlines trade reproducibility of the *search
// effort* (not of feasibility) for bounded latency.
#pragma once

#include <chrono>

namespace ppdc {

/// Wall-clock budget for one solver invocation. wall_ms <= 0 = unlimited.
struct SolveBudget {
  double wall_ms = 0.0;

  bool unlimited() const noexcept { return wall_ms <= 0.0; }
};

/// Deadline derived from a SolveBudget at solve start. Cheap to poll.
class Deadline {
 public:
  explicit Deadline(const SolveBudget& budget) : limited_(!budget.unlimited()) {
    if (limited_) {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double, std::milli>(budget.wall_ms));
    }
  }

  /// True once the budget is spent. Unlimited deadlines never expire.
  bool expired() const {
    return limited_ && std::chrono::steady_clock::now() >= deadline_;
  }

 private:
  bool limited_ = false;
  std::chrono::steady_clock::time_point deadline_{};
};

}  // namespace ppdc
