// Topology-aware cost model of the paper (§III, Eq. 1 and Eq. 8).
//
// For an SFC (f_1 .. f_n) placed at switches p(1) .. p(n):
//
//   C_a(p) = Σ_i λ_i Σ_j c(p(j), p(j+1))
//          + Σ_i λ_i ( c(s(v_i), p(1)) + c(p(n), s(v'_i)) )          (Eq. 1)
//
// which factorizes as  Λ · chain(p) + A(p(1)) + B(p(n))  with
//   Λ    = Σ_i λ_i
//   A(a) = Σ_i λ_i c(s(v_i), a)   (ingress attraction)
//   B(b) = Σ_i λ_i c(b, s(v'_i)) (egress attraction)
//
// CostModel caches Λ, A(·) and B(·) per traffic vector so that the DP,
// branch-and-bound, and frontier algorithms evaluate candidate placements
// in O(n) instead of O(l·n). Migration adds C_b(p,m) = μ Σ_j c(p(j), m(j))
// and the TOM objective is C_t(p,m) = C_b(p,m) + C_a(m)               (Eq. 8)
//
// Incremental maintenance: the diurnal model (Eq. 9) rescales all flows of
// one time-zone group by a single factor, and A/B/Λ are linear in the
// rates. enable_group_refresh() precomputes per-group *base* attraction
// vectors A_g(a) = Σ_{i∈g} λ̄_i c(s(v_i), a) (and the egress analogue)
// once per topology; refresh_scaled() then serves an epoch in
// O(|groups| · |V_s|) instead of the O(l · |V_s|) rescan of refresh().
// endpoints_moved() keeps the base vectors coherent when VM-migration
// policies (PLAN/MCF) relocate flow endpoints: stale per-flow
// contributions are subtracted and the moved ones added in
// O(|dirty| · |V_s|), with a full rebuild fallback for large dirty sets.
#pragma once

#include <vector>

#include "graph/apsp.hpp"
#include "graph/graph.hpp"
#include "util/ids.hpp"
#include "workload/traffic.hpp"

namespace ppdc {

/// A VNF placement: placement[j] is the switch hosting f_{j+1}.
/// Invariant (§III footnote 3): entries are distinct switches.
using Placement = std::vector<NodeId>;

/// Validates that `p` is a legal placement of n distinct switches.
void validate_placement(const Graph& g, const Placement& p);

/// Cached cost evaluator for a fixed topology + flow set + rate vector.
class CostModel {
 public:
  /// Builds the evaluator. `apsp` and `flows` must outlive the model.
  CostModel(const AllPairs& apsp, const std::vector<VmFlow>& flows);

  /// Re-derives Λ, A, B after the traffic rate vector changed in `flows`
  /// (full O(|V_s| · l) rescan, OpenMP-parallel over switches). With
  /// group refresh enabled, also resyncs the per-group base vectors to the
  /// flows' current endpoints.
  void refresh();

  /// Precomputes per-group base attraction vectors from `base_rates`
  /// (flow i belongs to `groups[i]`). Afterwards refresh_scaled() serves
  /// epochs in O(|groups| · |V_s|). Group ids may be sparse and re-used:
  /// base-vector storage is allocated per *distinct* id (ascending row
  /// order, so dense id sets keep the historical layout bit for bit)
  /// while num_groups() stays one past the largest id, so diurnal scale
  /// vectors keep indexing by raw group id. Invalid entries fail with a
  /// message naming the offending FlowId. `min_groups` widens the id
  /// domain for callers (sharded views) whose local flow subset may not
  /// mention every global group.
  void enable_group_refresh(const std::vector<double>& base_rates,
                            const std::vector<int>& groups,
                            int min_groups = 0);

  /// True once enable_group_refresh() has been called.
  bool group_refresh_enabled() const noexcept { return num_groups_ > 0; }

  /// Number of diurnal groups (0 when group refresh is disabled).
  int num_groups() const noexcept { return num_groups_; }

  /// Re-derives Λ, A, B for an epoch whose rates are
  /// rate_i = base_rates[i] · scales[groups[i]] by recombining the
  /// per-group base vectors. The caller must apply the same rates to the
  /// bound flow vector (set_rates) so per-flow queries stay coherent.
  void refresh_scaled(const std::vector<double>& scales);

  /// Signals that the flows at `flow_ids` changed endpoints (rates
  /// unchanged): subtracts their stale base-vector contributions, adds the
  /// moved ones, and recombines under the last scales. Falls back to a
  /// full rebuild when the dirty set covers most of the flow population
  /// (or when group refresh is disabled). Ids are validated against the
  /// bound flow vector; the error names the offending flow.
  void endpoints_moved(const std::vector<FlowId>& flow_ids);

  /// Streaming churn: flow `flow`'s base rate, group, and/or endpoints
  /// changed in place (arrival into a free slot, departure to base 0, a
  /// re-rate). Subtracts the old base-vector contribution at the snapshot
  /// endpoints, adds the new one at the flow's current endpoints, and
  /// updates the snapshot — O(|V_s|). The combined attraction vectors are
  /// left stale on purpose: callers batch rebase calls per epoch and
  /// recombine once via refresh_scaled() (or refresh()) before the next
  /// cost query.
  void rebase_flow(FlowId flow, double new_base, int new_group);

  /// Streaming churn: the bound flow vector grew by `new_bases.size()`
  /// tail slots (endpoints already set by the caller). Registers the new
  /// flows' bases/groups and adds their base-vector contributions; same
  /// recombine-before-query contract as rebase_flow().
  void flows_appended(const std::vector<double>& new_bases,
                      const std::vector<int>& new_groups);

  /// Restricts the switches eligible to host VNFs (fault tolerance: only
  /// alive switches of the serving partition may be placement targets).
  /// Every solver routed through this model (DP, branch-and-bound,
  /// mPareto) draws its candidate universe from placement_candidates().
  /// The set must be non-empty and contain only switches; the argmin
  /// caches (best/min ingress and egress) are rescanned over it.
  void restrict_candidates(std::vector<NodeId> candidates);

  /// Switches eligible for placement: the restricted set, or every switch
  /// of the topology when no restriction is active.
  const std::vector<NodeId>& placement_candidates() const noexcept {
    return candidates_.empty() ? apsp_->graph().switches() : candidates_;
  }

  /// Σ_i λ_i.
  double total_rate() const noexcept { return lambda_sum_; }

  /// Ingress attraction A(a) = Σ_i λ_i c(s(v_i), a).
  double ingress_attraction(NodeId a) const;

  /// Egress attraction B(b) = Σ_i λ_i c(b, s(v'_i)).
  double egress_attraction(NodeId b) const;

  /// Chain cost Σ_j c(p(j), p(j+1)) — topology distance only, no rates.
  double chain_cost(const Placement& p) const;

  /// Eq. 1: total communication cost of all flows under placement p.
  double communication_cost(const Placement& p) const;

  /// C_b(p, m) = μ Σ_j c(p(j), m(j)).
  double migration_cost(const Placement& from, const Placement& to,
                        double mu) const;

  /// Eq. 8: C_t(p, m) = C_b(p, m) + C_a(m).
  double total_cost(const Placement& from, const Placement& to,
                    double mu) const;

  /// Communication cost of a single flow under placement p (diagnostics
  /// and the PLAN/MCF baselines, which reason per flow).
  double flow_cost(const VmFlow& flow, const Placement& p) const;

  const AllPairs& apsp() const noexcept { return *apsp_; }
  const std::vector<VmFlow>& flows() const noexcept { return *flows_; }

  /// Switch minimizing A(·) (used as a B&B seed).
  NodeId best_ingress() const noexcept { return best_ingress_; }
  /// Switch minimizing B(·).
  NodeId best_egress() const noexcept { return best_egress_; }
  /// min_b B(b): admissible lower bound on any egress term.
  double min_egress_attraction() const noexcept { return min_egress_; }
  /// min_a A(a).
  double min_ingress_attraction() const noexcept { return min_ingress_; }

  /// The incremental group-refresh state, for the epoch checkpoint
  /// journal (sim/checkpoint.hpp). The per-group base vectors are patched
  /// in place by rebase_flow()/endpoints_moved() and never rebuilt by
  /// refresh(), so they carry the exact float history of every patch; a
  /// resumed model must restore them verbatim — a from-scratch rebuild
  /// would be mathematically equal but not bit-identical.
  struct GroupSnapshot {
    int num_groups = 0;
    std::vector<double> base_rates;
    std::vector<int> groups;
    std::vector<int> group_rows;
    std::vector<int> row_groups;
    std::vector<double> group_ingress;
    std::vector<double> group_egress;
    std::vector<double> last_scales;
    std::vector<NodeId> snap_src;
    std::vector<NodeId> snap_dst;
  };
  GroupSnapshot group_snapshot() const;

  /// Overwrites the group-refresh state with `snap` (taken from a model
  /// bound to an identical flow vector over the same topology). The
  /// combined Λ/A/B vectors are left untouched; callers recombine via
  /// refresh_scaled() or refresh() before the next cost query, exactly as
  /// after a batch of rebase_flow() patches.
  void restore_group_snapshot(const GroupSnapshot& snap);

 private:
  /// Rebuilds the per-group base vectors and endpoint snapshot from
  /// scratch (OpenMP-parallel over switches).
  void rebuild_group_bases();
  /// Moves one flow's base-vector contributions from its snapshot
  /// endpoints to its current ones.
  void patch_moved_flow(FlowId flow);
  /// Dense base-vector row of a group id that is known to be mapped.
  std::size_t row_of(int group) const {
    return static_cast<std::size_t>(
        group_rows_[static_cast<std::size_t>(group)]);
  }
  /// Dense base-vector row of a group id, allocating one (and widening
  /// the id domain) on first use.
  std::size_t ensure_group_row(int group);
  /// Adds (sign = +1) or removes (sign = -1) one flow's base contribution
  /// at the given endpoints from its group's base-vector row.
  void accumulate_flow_base(std::size_t row, double base, NodeId src,
                            NodeId dst, double sign);
  /// Derives Λ, A, B (and the argmins) from the base vectors and `scales`.
  void recombine(const std::vector<double>& scales);
  /// Recomputes best/min ingress+egress from the attraction vectors.
  void rescan_minima();

  const AllPairs* apsp_;
  const std::vector<VmFlow>* flows_;
  std::vector<NodeId> candidates_;  ///< empty = all switches eligible
  double lambda_sum_ = 0.0;
  std::vector<double> ingress_;  ///< indexed by NodeId
  std::vector<double> egress_;
  NodeId best_ingress_ = kInvalidNode;
  NodeId best_egress_ = kInvalidNode;
  double min_ingress_ = 0.0;
  double min_egress_ = 0.0;

  // Incremental group-scaled state (empty until enable_group_refresh).
  int num_groups_ = 0;
  std::vector<double> base_rates_;     ///< λ̄_i, one per flow
  std::vector<int> groups_;            ///< group id, one per flow
  std::vector<int> group_rows_;        ///< group id -> dense row (-1 unused)
  std::vector<int> row_groups_;        ///< dense row -> group id
  std::vector<double> group_ingress_;  ///< [row · |V| + a] = A_g(a)
  std::vector<double> group_egress_;   ///< [row · |V| + b] = B_g(b)
  std::vector<double> last_scales_;    ///< scales of the last recombine
  std::vector<NodeId> snap_src_;       ///< endpoints the base vectors use
  std::vector<NodeId> snap_dst_;
};

}  // namespace ppdc
