// Pareto-front analysis of migration frontiers (Fig. 6(b), Theorem 5).
//
// The paper treats TOM as a two-objective problem over (C_b, C_a): Eq. 8
// is a scalarization of the pair, and Theorem 5 states the scalarized
// minimum is globally optimal when the Pareto front is convex. These
// helpers extract the non-dominated subset of a frontier point cloud and
// test it for convexity, so both the figure and the theorem's premise can
// be checked empirically.
#pragma once

#include <vector>

#include "core/migration_pareto.hpp"

namespace ppdc {

/// Non-dominated subset (minimizing both coordinates), sorted by
/// migration_cost ascending. Duplicate coordinates are collapsed.
std::vector<FrontierPoint> pareto_front(std::vector<FrontierPoint> points);

/// True when `front` (as returned by pareto_front) lies on its own lower
/// convex hull, i.e. the Pareto front is convex and Theorem 5 applies.
bool is_convex_front(const std::vector<FrontierPoint>& front,
                     double tolerance = 1e-9);

/// True when no point in `front` strictly dominates another — a sanity
/// check on pareto_front itself and a property-test hook.
bool is_mutually_nondominated(const std::vector<FrontierPoint>& front);

}  // namespace ppdc
