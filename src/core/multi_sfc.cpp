#include "core/multi_sfc.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <numeric>

#include "graph/graph.hpp"
#include "util/require.hpp"

namespace ppdc {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

MultiSfcCostModel::MultiSfcCostModel(const AllPairs& apsp,
                                     std::vector<RangedFlow> flows, int n)
    : apsp_(&apsp), flows_(std::move(flows)), n_(n) {
  PPDC_REQUIRE(n_ >= 1, "catalogue must hold at least one VNF");
  const Graph& g = apsp.graph();
  const auto nodes = static_cast<std::size_t>(apsp.num_nodes());
  leg_load_.assign(static_cast<std::size_t>(std::max(0, n_ - 1)), 0.0);
  entry_.assign(static_cast<std::size_t>(n_), std::vector<double>(nodes, 0.0));
  exit_.assign(static_cast<std::size_t>(n_), std::vector<double>(nodes, 0.0));

  for (const auto& rf : flows_) {
    PPDC_REQUIRE(rf.first >= 0 && rf.first <= rf.last && rf.last < n_,
                 "flow range outside the VNF catalogue");
    PPDC_REQUIRE(rf.flow.rate >= 0.0, "negative traffic rate");
    for (int j = rf.first; j < rf.last; ++j) {
      leg_load_[static_cast<std::size_t>(j)] += rf.flow.rate;
    }
    for (const NodeId w : g.switches()) {
      entry_[static_cast<std::size_t>(rf.first)][static_cast<std::size_t>(w)] +=
          rf.flow.rate * apsp.cost(rf.flow.src_host, w);
      exit_[static_cast<std::size_t>(rf.last)][static_cast<std::size_t>(w)] +=
          rf.flow.rate * apsp.cost(w, rf.flow.dst_host);
    }
  }
}

double MultiSfcCostModel::leg_load(int j) const {
  PPDC_REQUIRE(j >= 0 && j < n_ - 1, "leg index out of range");
  return leg_load_[static_cast<std::size_t>(j)];
}

double MultiSfcCostModel::entry_attraction(int j, NodeId w) const {
  PPDC_REQUIRE(j >= 0 && j < n_, "position out of range");
  return entry_[static_cast<std::size_t>(j)][static_cast<std::size_t>(w)];
}

double MultiSfcCostModel::exit_attraction(int j, NodeId w) const {
  PPDC_REQUIRE(j >= 0 && j < n_, "position out of range");
  return exit_[static_cast<std::size_t>(j)][static_cast<std::size_t>(w)];
}

double MultiSfcCostModel::communication_cost(const Placement& p,
                                             bool allow_colocation) const {
  PPDC_REQUIRE(static_cast<int>(p.size()) == n_,
               "placement length must match the catalogue");
  if (!allow_colocation) {
    validate_placement(apsp_->graph(), p);
  }
  double total = 0.0;
  for (int j = 0; j < n_ - 1; ++j) {
    total += leg_load_[static_cast<std::size_t>(j)] *
             apsp_->cost(p[static_cast<std::size_t>(j)],
                         p[static_cast<std::size_t>(j + 1)]);
  }
  for (int j = 0; j < n_; ++j) {
    total += entry_attraction(j, p[static_cast<std::size_t>(j)]) +
             exit_attraction(j, p[static_cast<std::size_t>(j)]);
  }
  return total;
}

MultiSfcResult solve_multi_sfc_relaxed(const MultiSfcCostModel& model) {
  const AllPairs& apsp = model.apsp();
  const auto& switches = apsp.graph().switches();
  const int n = model.sfc_length();
  const std::size_t s = switches.size();
  PPDC_REQUIRE(static_cast<std::size_t>(n) <= s, "more VNFs than switches");

  // Viterbi over positions: best[j][w] = cheapest prefix ending with
  // position j at switch w (relaxed: duplicates allowed).
  std::vector<double> best(s), next(s);
  // Flat n x s backpointer table (row-major).
  std::vector<int> back(static_cast<std::size_t>(n) * s, -1);
  const auto back_at = [&](int j, std::size_t w) -> int& {
    return back[static_cast<std::size_t>(j) * s + w];
  };
  for (std::size_t w = 0; w < s; ++w) {
    best[w] = model.entry_attraction(0, switches[w]) +
              model.exit_attraction(0, switches[w]);
  }
  for (int j = 1; j < n; ++j) {
    for (std::size_t w = 0; w < s; ++w) {
      double b = kInf;
      int arg = -1;
      for (std::size_t prev = 0; prev < s; ++prev) {
        const double cand =
            best[prev] + model.leg_load(j - 1) *
                             apsp.cost(switches[prev], switches[w]);
        if (cand < b) {
          b = cand;
          arg = static_cast<int>(prev);
        }
      }
      next[w] = b + model.entry_attraction(j, switches[w]) +
                model.exit_attraction(j, switches[w]);
      back_at(j, w) = arg;
    }
    best.swap(next);
  }
  const auto last =
      static_cast<std::size_t>(std::min_element(best.begin(), best.end()) -
                               best.begin());
  Placement p(static_cast<std::size_t>(n));
  std::size_t cur = last;
  for (int j = n - 1; j >= 0; --j) {
    p[static_cast<std::size_t>(j)] = switches[cur];
    if (j > 0) {
      cur = static_cast<std::size_t>(back_at(j, cur));
    }
  }

  // Greedy repair: move duplicate positions to their cheapest free switch.
  std::vector<char> used(static_cast<std::size_t>(apsp.num_nodes()), 0);
  for (int j = 0; j < n; ++j) {
    const NodeId w = p[static_cast<std::size_t>(j)];
    if (!used[static_cast<std::size_t>(w)]) {
      used[static_cast<std::size_t>(w)] = 1;
      continue;
    }
    // Conflict: choose the unused switch minimizing this position's local
    // cost (legs to both fixed neighbours + its own attractions).
    double bcost = kInf;
    NodeId bsw = kInvalidNode;
    for (const NodeId cand : switches) {
      if (used[static_cast<std::size_t>(cand)]) continue;
      double local = model.entry_attraction(j, cand) +
                     model.exit_attraction(j, cand);
      if (j > 0) {
        local += model.leg_load(j - 1) *
                 apsp.cost(p[static_cast<std::size_t>(j - 1)], cand);
      }
      if (j < n - 1) {
        local += model.leg_load(j) *
                 apsp.cost(cand, p[static_cast<std::size_t>(j + 1)]);
      }
      if (local < bcost) {
        bcost = local;
        bsw = cand;
      }
    }
    PPDC_REQUIRE(bsw != kInvalidNode, "repair ran out of switches");
    p[static_cast<std::size_t>(j)] = bsw;
    used[static_cast<std::size_t>(bsw)] = 1;
  }

  MultiSfcResult r;
  r.comm_cost = model.communication_cost(p);
  r.placement = std::move(p);
  return r;
}

MultiSfcResult solve_multi_sfc_exhaustive(const MultiSfcCostModel& model,
                                          std::uint64_t node_budget,
                                          std::optional<Placement> warm_start) {
  const AllPairs& apsp = model.apsp();
  const auto& switches = apsp.graph().switches();
  const int n = model.sfc_length();
  const std::size_t s = switches.size();
  PPDC_REQUIRE(static_cast<std::size_t>(n) <= s, "more VNFs than switches");

  // Admissible suffix bound: for every remaining position, at least its
  // cheapest attraction over all switches; legs bounded by
  // leg_load * min switch distance (0 when the load is 0).
  std::vector<double> min_attraction(static_cast<std::size_t>(n), kInf);
  for (int j = 0; j < n; ++j) {
    for (const NodeId w : switches) {
      min_attraction[static_cast<std::size_t>(j)] =
          std::min(min_attraction[static_cast<std::size_t>(j)],
                   model.entry_attraction(j, w) + model.exit_attraction(j, w));
    }
  }
  std::vector<double> suffix_bound(static_cast<std::size_t>(n) + 1, 0.0);
  for (int j = n - 1; j >= 0; --j) {
    suffix_bound[static_cast<std::size_t>(j)] =
        suffix_bound[static_cast<std::size_t>(j) + 1] +
        min_attraction[static_cast<std::size_t>(j)] +
        (j > 0 ? model.leg_load(j - 1) * apsp.min_switch_distance() : 0.0);
  }

  double best_cost = kInf;
  Placement best;
  if (warm_start.has_value()) {
    best = *warm_start;
    best_cost = model.communication_cost(best);
  }

  Placement current(static_cast<std::size_t>(n), kInvalidNode);
  std::vector<char> used(static_cast<std::size_t>(apsp.num_nodes()), 0);
  std::uint64_t nodes = 0;
  bool exhausted = false;

  const std::function<void(int, double)> descend = [&](int j, double partial) {
    if (exhausted) return;
    if (node_budget != 0 && ++nodes > node_budget) {
      exhausted = true;
      return;
    }
    if (j == n) {
      if (partial < best_cost) {
        best_cost = partial;
        best = current;
      }
      return;
    }
    for (const NodeId w : switches) {
      if (used[static_cast<std::size_t>(w)]) continue;
      double step = model.entry_attraction(j, w) + model.exit_attraction(j, w);
      if (j > 0) {
        step += model.leg_load(j - 1) *
                apsp.cost(current[static_cast<std::size_t>(j - 1)], w);
      }
      const double next = partial + step;
      if (next + suffix_bound[static_cast<std::size_t>(j) + 1] >= best_cost) {
        continue;
      }
      used[static_cast<std::size_t>(w)] = 1;
      current[static_cast<std::size_t>(j)] = w;
      descend(j + 1, next);
      used[static_cast<std::size_t>(w)] = 0;
      if (exhausted) return;
    }
  };
  descend(0, 0.0);

  PPDC_REQUIRE(best_cost < kInf, "search found no placement");
  MultiSfcResult r;
  r.placement = std::move(best);
  r.comm_cost = best_cost;
  r.proven_optimal = !exhausted;
  return r;
}

}  // namespace ppdc
