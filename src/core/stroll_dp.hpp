// DP-Stroll: Algorithm 2 of the paper, the dynamic program for TOP-1.
//
// Finding a shortest s-t stroll that visits >= n *distinct* switches is
// NP-hard (n-stroll, Theorem 1), but a shortest s-t stroll of exactly e
// *edges* on the metric closure G'' is polynomial. Algorithm 2 therefore
// computes, for growing edge budgets r = n+1, n+2, ..., the min-cost
// r-edge stroll (forbidding immediate edge backtracking, line 6 of the
// pseudocode) and stops at the first r whose stroll covers n distinct
// switches. Example 2 / Fig. 4 shows why the *complete* (metric-closure)
// graph is essential: on the raw graph the 3-edge optimum costs 7, on the
// closure it costs 6.
//
// StrollTable fixes the destination t and exposes queries from any source
// s; Algorithm 3 exploits this to amortize one DP over all ingress
// candidates of a given egress switch.
//
// Design notes / documented deviations:
//  * Intermediate nodes are restricted to switches. Hosts are leaves in
//    every topology here, so detouring through one can never reduce a
//    metric-closure stroll, and only switches count toward the n distinct
//    nodes anyway (pseudocode line 14 skips s and t when collecting p).
//  * The growth of r is capped; if the cap is hit (possible when the
//    anti-backtrack rule keeps oscillating between cheap switches) the
//    result is completed greedily with the nearest unused switches and
//    flagged via StrollResult::used_fallback. The cap never triggered in
//    any paper-scale experiment; it exists so the API is total.
#pragma once

#include <vector>

#include "core/cost_model.hpp"
#include "graph/apsp.hpp"
#include "graph/graph.hpp"
#include "util/ids.hpp"
#include "util/indexed_vector.hpp"

namespace ppdc {

/// Outcome of a stroll query.
struct StrollResult {
  double cost = 0.0;          ///< stroll cost in G'' units (rate * distance)
  std::vector<NodeId> walk;   ///< node sequence s .. t on the metric closure
  std::vector<NodeId> placement;  ///< first n distinct switches, walk order
  int edges_used = 0;             ///< final edge budget r
  bool used_fallback = false;     ///< true if the greedy completion kicked in
};

/// Per-destination DP table of Algorithm 2.
class StrollTable {
 public:
  /// `rate` scales every metric distance (the λ_1 of TOP-1, or Λ when the
  /// table is used inside Algorithm 3's chain placement). A non-empty
  /// `universe` restricts the DP rows (and hence every intermediate and
  /// fallback switch) to the given switches — the fault-tolerant solvers
  /// pass CostModel::placement_candidates() so strolls never route through
  /// failed switches; empty means every switch of the topology.
  StrollTable(const AllPairs& apsp, NodeId destination, double rate = 1.0,
              std::vector<NodeId> universe = {});

  /// Finds a min-cost stroll from `s` to the table's destination visiting
  /// at least `n_distinct` distinct switches (excluding s and the
  /// destination). n_distinct == 0 degenerates to the direct metric edge —
  /// or, when s is the destination itself, to the single-node walk {s}
  /// (cost 0, no edges), so the walk invariant "consecutive nodes are
  /// distinct" holds for every returned walk.
  StrollResult find(NodeId s, int n_distinct);

  /// Theorem 3 sufficient-optimality condition: every suffix of the found
  /// walk must be a minimum-cost (r-i)-edge stroll to t over *all* start
  /// nodes. True means the DP answer is provably optimal for this query.
  bool satisfies_theorem3(const StrollResult& result) const;

  NodeId destination() const noexcept { return t_; }
  double rate() const noexcept { return rate_; }

 private:
  /// Extends the DP table to edge budget `e_max` (rows 1..e_max).
  void extend(int e_max);

  /// Materializes the flat metric closure over the row universe on first
  /// use: metric_[i * rows_ + k] = rate · c(switches_[i], switches_[k]).
  void ensure_metric();

  /// Cost of the best e-edge stroll from source `s` (possibly a host, not
  /// in the switch rows) plus its first hop.
  std::pair<double, NodeId> source_row(NodeId s, int e) const;

  double metric(NodeId u, NodeId v) const {
    return rate_ * apsp_->cost(u, v);
  }

  /// Level-e cost row (e in [1, levels_]); contiguous over CandidateIdx.
  const double* cost_row(int e) const {
#if PPDC_CHECK_IDS
    PPDC_REQUIRE(e >= 1 && e <= levels_, "stroll level out of range");
#endif
    return cost_.data() + static_cast<std::size_t>(e - 1) * rows_;
  }
  const NodeId* succ_row(int e) const {
#if PPDC_CHECK_IDS
    PPDC_REQUIRE(e >= 1 && e <= levels_, "stroll level out of range");
#endif
    return succ_.data() + static_cast<std::size_t>(e - 1) * rows_;
  }

  const AllPairs* apsp_;
  NodeId t_;
  double rate_;
  /// DP row universe: CandidateIdx is the row id, the value the switch.
  IndexedVector<CandidateIdx, NodeId> switches_;
  /// NodeId -> row; CandidateIdx::invalid() for nodes outside the universe.
  std::vector<CandidateIdx> switch_index_;
  /// Flat structure-of-arrays DP state (DESIGN.md §11). The per-level
  /// tables live in two contiguous level-major buffers so the candidate
  /// min-scan of extend() is a plain index loop over double rows — no
  /// per-candidate vector hops, and the compiler sees unit strides.
  std::size_t rows_ = 0;  ///< switches_.size(), the row stride
  int levels_ = 0;        ///< materialized edge budgets 1..levels_
  std::vector<double> metric_;       ///< rows_ × rows_ scaled metric closure
  std::vector<double> metric_to_t_;  ///< rate · c(row, t), one per row
  std::vector<double> cost_;  ///< cost_[(e-1)·rows_ + row]: best e-edge stroll
  std::vector<NodeId> succ_;  ///< first hop of that stroll (kInvalidNode: none)
};

/// Convenience wrapper for one-shot TOP-1 queries: builds the table for
/// (s, t) and returns the stroll placing `n` VNFs (Algorithm 2's contract).
StrollResult solve_top1_dp(const AllPairs& apsp, NodeId s, NodeId t, int n,
                           double rate = 1.0);

}  // namespace ppdc
