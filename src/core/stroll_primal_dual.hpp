// PrimalDual: Algorithm 1 of the paper, the 2+ε-approximation for TOP-1.
//
// The paper instantiates the primal-dual n-stroll machinery of Chaudhuri,
// Godfrey, Rao and Talwar (FOCS 2003): an LP relaxation whose dual is
// grown moat-by-moat (growth phase), followed by pruning, and a final
// doubling/shortcutting of the tree into an s-t stroll spanning n
// switches. This file implements that scheme concretely:
//
//  * Goemans-Williamson moat growing on the metric closure, rooted at s,
//    with t carrying an infinite prize (it must connect) and every other
//    switch a uniform prize π (the Lagrangean relaxation of the quota
//    constraint Σ x_v >= n, ILP constraint (7)).
//  * GW pruning removes subtrees hanging off deactivated moats.
//  * An outer search over π finds the smallest penalty whose pruned tree
//    spans >= n switches; the tree is doubled and shortcut into the final
//    stroll (cost <= 2 w(T), the source of the factor 2; ε absorbs the
//    quota rounding, exactly as in the paper's Theorem 2 discussion).
//
// Note that the paper's own evaluation (§VI, Table II discussion) plots
// PrimalDual as "the 2+ε guarantee (i.e., two times of Optimal)"; the Fig. 7
// harness reproduces that curve as well, so this implementation can be
// judged against both the guarantee and DP-Stroll.
#pragma once

#include "core/stroll_dp.hpp"
#include "graph/apsp.hpp"
#include "graph/graph.hpp"

namespace ppdc {

/// Tuning for the outer penalty search.
struct PrimalDualOptions {
  int search_iterations = 24;  ///< binary-search steps over the penalty π
};

/// Algorithm 1: primal-dual n-stroll between s and t (>= n distinct
/// switches excluding s and t). Returns the stroll and the placement of
/// the first n switches along it. `rate` scales metric distances (λ_1).
StrollResult solve_top1_primal_dual(const AllPairs& apsp, NodeId s, NodeId t,
                                    int n, double rate = 1.0,
                                    const PrimalDualOptions& options = {});

}  // namespace ppdc
