#include "core/migration_pareto.hpp"

#include <limits>

#include "core/frontier.hpp"
#include "util/require.hpp"

namespace ppdc {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

int count_moved(const Placement& from, const Placement& to) {
  int moved = 0;
  for (std::size_t j = 0; j < from.size(); ++j) {
    if (from[j] != to[j]) ++moved;
  }
  return moved;
}
}  // namespace

MigrationResult evaluate_migration(const CostModel& model,
                                   const Placement& from, const Placement& to,
                                   double mu) {
  MigrationResult r;
  r.migration = to;
  r.migration_cost = model.migration_cost(from, to, mu);
  r.comm_cost = model.communication_cost(to);
  r.total_cost = r.migration_cost + r.comm_cost;
  r.vnfs_moved = count_moved(from, to);
  return r;
}

MigrationResult solve_tom_pareto(const CostModel& model,
                                 const Placement& from, double mu,
                                 const ParetoMigrationOptions& options) {
  validate_placement(model.apsp().graph(), from);
  PPDC_REQUIRE(mu >= 0.0, "negative migration coefficient");

  // Step 1: fresh optimum under the new rates (Algorithm 3).
  const PlacementResult fresh =
      solve_top_dp(model, static_cast<int>(from.size()), options.placement);

  // Step 2: frontiers between p and p'.
  const MigrationFrontiers frontiers(model.apsp(), from, fresh.placement);

  // Step 3: scan the parallel frontier rows.
  MigrationResult best;
  double best_total = kInf;
  std::vector<FrontierPoint> points;
  auto consider = [&](const Placement& fr, bool record_point) {
    const bool free = is_collision_free(fr);
    const double cb = model.migration_cost(from, fr, mu);
    // C_a is well defined even on colliding rows (two VNFs sharing a
    // switch just contribute a zero chain hop); bypass the placement
    // validator by summing Eq. 1 terms directly.
    const double ca = model.total_rate() * model.chain_cost(fr) +
                      model.ingress_attraction(fr.front()) +
                      model.egress_attraction(fr.back());
    if (record_point) {
      points.push_back(FrontierPoint{cb, ca, free});
    }
    if (free && cb + ca < best_total) {
      best_total = cb + ca;
      best.migration = fr;
      best.migration_cost = cb;
      best.comm_cost = ca;
    }
  };

  for (const Placement& fr : frontiers.all_parallel_frontiers()) {
    consider(fr, /*record_point=*/true);
  }
  if (options.exhaustive_frontiers &&
      frontiers.frontier_count() <= options.frontier_budget) {
    // Deadline-bounded scan: polled every 256 rows; on expiry the best
    // frontier seen so far stands (the parallel rows above guarantee a
    // valid, never-worse-than-stay-put incumbent already exists).
    const Deadline deadline(options.budget);
    std::int64_t visited = 0;
    frontiers.for_each_frontier_until(
        options.frontier_budget, [&](const Placement& fr) {
          consider(fr, /*record_point=*/false);
          return (++visited & 255) != 0 || !deadline.expired();
        });
  }

  PPDC_REQUIRE(best_total < kInf,
               "no collision-free frontier (row 1 is always valid)");
  best.total_cost = best_total;
  best.vnfs_moved = count_moved(from, best.migration);
  best.frontier_points = std::move(points);
  return best;
}

}  // namespace ppdc
