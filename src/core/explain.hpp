// Human-readable cost breakdowns: where does Eq. 1 spend its hops?
//
// Used by examples and benches to explain *why* a placement wins:
// ingress attraction vs chain legs vs egress attraction, plus per-flow
// extremes. Purely observational — no algorithmic role.
#pragma once

#include <iosfwd>
#include <string>

#include "core/cost_model.hpp"

namespace ppdc {

/// Decomposition of C_a(p) into its Eq. 1 terms.
struct CostBreakdown {
  double ingress = 0.0;     ///< A(p_1)
  double chain = 0.0;       ///< Λ Σ c(p_j, p_{j+1})
  double egress = 0.0;      ///< B(p_n)
  double total = 0.0;       ///< sum of the above == C_a(p)
  double heaviest_flow = 0.0;   ///< max per-flow cost
  double lightest_flow = 0.0;   ///< min per-flow cost
  double mean_flow_hops = 0.0;  ///< rate-weighted mean path length (hops
                                ///< in cost units per unit of rate)
};

/// Computes the breakdown for a valid placement.
CostBreakdown explain_placement(const CostModel& model, const Placement& p);

/// Writes a short multi-line report ("ingress 12% / chain 61% / ...").
void print_breakdown(std::ostream& os, const CostModel& model,
                     const Placement& p, const std::string& title);

}  // namespace ppdc
