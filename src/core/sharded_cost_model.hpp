// Pod-sharded view of the cost model (DESIGN.md §14).
//
// The monolithic epoch loop re-solves one CostModel over every flow. At
// million-flow scale that is both too much work per epoch and needless:
// fat-tree pods are locality units — a flow's ingress attraction is
// anchored at its source host's pod — so the flow population factors into
// per-ingress-pod shards whose cost models evolve independently. Each
// shard owns a compact slot-dense flow vector, the parallel base-rate /
// group bookkeeping, and a private CostModel with the PR 1 group-base
// refresh enabled over the *global* group domain (a shard that currently
// sees only east-coast flows still accepts the global diurnal scale
// vector).
//
// Streaming churn (workload/streaming.hpp) is mirrored into the shards by
// apply_churn(): departures drop a slot's base to 0 in place, re-rates
// rebase it, and arrivals re-use the departing slot — or move it to
// another shard's free-list when the new flow's ingress pod changed. All
// updates are O(|V_s|) CostModel::rebase_flow patches; the per-epoch
// recombination stays with the simulation loop (sim/sharded.hpp), which
// refreshes every shard under the epoch's scales before any cost query.
//
// Determinism: shards are stored and always iterated in fixed pod order,
// churn lists are applied in ascending global-FlowId order, and free local
// slots are re-used smallest-first — the shard state after any churn
// history is a pure function of that history, independent of thread count.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/cost_model.hpp"
#include "graph/apsp.hpp"
#include "graph/graph.hpp"
#include "topology/topology.hpp"
#include "util/ids.hpp"
#include "workload/streaming.hpp"
#include "workload/traffic.hpp"

namespace ppdc {

/// Host → shard assignment. Shards are identified by dense indices in
/// fixed order (pod order for by_ingress_pod); the map itself is immutable
/// after construction.
struct ShardMap {
  std::vector<std::string> names;  ///< one per shard, fixed order
  std::vector<int> shard_of_host;  ///< indexed by NodeId value; -1 = none

  int num_shards() const noexcept { return static_cast<int>(names.size()); }

  /// Shard of a host node. Fails when `host` is not a mapped host.
  int shard_of(NodeId host) const;

  /// One shard per PowerDomain (= one per fat-tree pod): a rack belongs to
  /// the domain containing its top-of-rack switch. Racks outside every
  /// domain (or all racks, when the topology exposes no domains) land in
  /// one trailing catch-all shard.
  static ShardMap by_ingress_pod(const Topology& topo);

  /// The degenerate single-shard map: every host in shard 0. A sharded
  /// run over this map transcribes the monolithic epoch loop exactly.
  static ShardMap single(const Topology& topo);
};

/// Per-shard flow storage + cost models, kept in sync with a streaming
/// (or static) global flow vector.
class ShardedCostModel {
 public:
  /// One shard's state. Held by unique_ptr so `flows` (the vector object
  /// the shard's CostModel is bound to) never changes address when the
  /// shard set is built.
  struct Shard {
    std::string name;
    std::vector<VmFlow> flows;         ///< compact slot-dense local vector
    std::vector<double> base_rates;    ///< λ̄ per local slot (0 = vacant)
    std::vector<int> groups;           ///< diurnal group per local slot
    std::vector<FlowId> global_ids;    ///< local slot -> global FlowId
    std::vector<FlowId> free_locals;   ///< vacant local slots, descending
    std::unique_ptr<CostModel> model;  ///< bound to `flows`
    int live = 0;                      ///< slots carrying traffic
  };

  /// Partitions `flows` (a slot-dense global vector whose `rate` fields
  /// carry *base* rates) by ingress pod and builds one group-refresh
  /// CostModel per shard. `min_groups` is the global diurnal group-domain
  /// size — every shard accepts scale vectors of that length even when its
  /// local subset misses some groups. `apsp`, `topo`, and `map` must
  /// outlive the model.
  ShardedCostModel(const AllPairs& apsp, const ShardMap& map,
                   const std::vector<VmFlow>& flows, int min_groups);

  int num_shards() const noexcept { return static_cast<int>(shards_.size()); }
  Shard& shard(int s) { return *shards_[static_cast<std::size_t>(s)]; }
  const Shard& shard(int s) const {
    return *shards_[static_cast<std::size_t>(s)];
  }

  /// Mirrors one epoch of streaming churn into the shards. `flows` is the
  /// workload's global vector *after* advance() (base rates). Lists are
  /// applied departures → re-rates → arrivals, each in ascending global
  /// id order. Returns the number of churned flows charged to each shard
  /// (a cross-shard re-spawn counts on both sides) — the re-solve
  /// predicate's staleness signal.
  std::vector<int> apply_churn(const std::vector<VmFlow>& flows,
                               const FlowChurn& churn);

  /// Shard currently holding global flow `g` (-1 for never-seen ids).
  int flow_shard(FlowId g) const;
  /// Local slot of global flow `g` within flow_shard(g).
  FlowId flow_local(FlowId g) const;

  /// One shard's full mutable state, for the epoch checkpoint journal
  /// (sim/checkpoint.hpp). The CostModel group state is captured verbatim
  /// — its base vectors carry patch history that a from-scratch rebuild
  /// would not reproduce bit for bit.
  struct ShardSnapshot {
    std::vector<VmFlow> flows;
    std::vector<double> base_rates;
    std::vector<int> groups;
    std::vector<FlowId> global_ids;
    std::vector<FlowId> free_locals;
    int live = 0;
    CostModel::GroupSnapshot model;
  };
  ShardSnapshot shard_snapshot(int s) const;

  /// Restores every shard from `snaps` (one per shard, same pod order as
  /// construction) and rebuilds the global↔local id maps from the shards'
  /// `global_ids`. Each shard's CostModel is reconstructed over the
  /// restored flow vector and handed its snapshotted group state; as after
  /// apply_churn(), callers must refresh each model before cost queries.
  void restore_shards(const std::vector<ShardSnapshot>& snaps);

 private:
  /// Places flow `g` (endpoints+base from `f`) into shard `s`, re-using
  /// the smallest free local slot or appending, and patches the shard's
  /// cost model. Updates the global→local map.
  void allocate_local(int s, FlowId g, const VmFlow& f);

  const AllPairs* apsp_;
  const ShardMap* map_;
  int min_groups_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<int> flow_shard_;      ///< global id -> shard (-1 unmapped)
  std::vector<FlowId> flow_local_;   ///< global id -> local slot
};

}  // namespace ppdc
