// Zoom-style conferencing workload (paper §I motivation).
//
// A Zoom Meeting Connector VM supports up to 200 simultaneous meetings
// with up to 1000 participants each; meetings differ wildly in size,
// duration and media mix, producing highly diverse and bursty flow rates.
// This generator models each VM flow as a conference bridge whose rate at
// any hour is the sum of its live sessions' rates; sessions arrive at a
// Poisson-ish rate, last a geometric number of hours, and draw a
// participant count from a heavy-tailed distribution.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace ppdc {

/// Parameters of the conferencing workload.
struct ZoomModel {
  double sessions_per_hour = 3.0;   ///< mean new sessions per flow per hour
  double mean_duration_hours = 2.0; ///< geometric session length
  int max_participants = 1000;
  double rate_per_participant = 10.0;
  double video_fraction = 0.6;      ///< video sessions weigh 4x text/voice
};

/// Evolves per-flow conference state hour by hour and reports rates.
class ZoomWorkload {
 public:
  ZoomWorkload(int num_flows, ZoomModel model, std::uint64_t seed);

  /// Advances one hour: ends expiring sessions, admits new ones.
  void advance_hour();

  /// Current per-flow traffic rates.
  std::vector<double> rates() const;

  /// Number of live sessions across all flows.
  int live_sessions() const;

 private:
  struct Session {
    int flow = 0;
    int remaining_hours = 0;
    double rate = 0.0;
  };

  void admit_sessions();

  int num_flows_;
  ZoomModel model_;
  Rng rng_;
  std::vector<Session> sessions_;
};

}  // namespace ppdc
