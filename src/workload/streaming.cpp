#include "workload/streaming.hpp"

#include <algorithm>
#include <functional>

#include "util/require.hpp"

namespace ppdc {

StreamingWorkload::StreamingWorkload(const Topology& topo,
                                     const VmPlacementConfig& initial,
                                     const StreamingChurnConfig& churn,
                                     Rng rng)
    : sampler_(topo, initial), churn_(churn), rng_(rng) {
  PPDC_REQUIRE(churn.arrivals_per_epoch >= 0, "negative arrival count");
  PPDC_REQUIRE(churn.departure_prob >= 0.0 && churn.departure_prob <= 1.0,
               "departure_prob outside [0,1]");
  PPDC_REQUIRE(churn.rerate_prob >= 0.0 && churn.rerate_prob <= 1.0,
               "rerate_prob outside [0,1]");
  flows_.reserve(static_cast<std::size_t>(initial.num_pairs));
  for (int i = 0; i < initial.num_pairs; ++i) {
    flows_.push_back(sampler_.sample(i, rng_));
  }
  next_index_ = initial.num_pairs;
}

FlowChurn StreamingWorkload::advance() {
  FlowChurn churn;

  // Departures: one Bernoulli per live flow, ascending id order. The slot
  // keeps its endpoints (cost models need valid nodes to un-account) but
  // stops carrying traffic.
  std::vector<char> freed(flows_.size(), 0);
  for (const FlowId id : free_) {
    freed[static_cast<std::size_t>(id.value())] = 1;
  }
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    if (freed[i] != 0) continue;
    if (!rng_.bernoulli(churn_.departure_prob)) continue;
    flows_[i].rate = 0.0;
    freed[i] = 1;
    churn.departed.push_back(FlowId{static_cast<std::int32_t>(i)});
    free_.push_back(FlowId{static_cast<std::int32_t>(i)});
  }
  if (!churn.departed.empty()) {
    std::sort(free_.begin(), free_.end(), std::greater<FlowId>());
  }

  // Re-rates: survivors re-draw their base rate, endpoints unchanged.
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    if (freed[i] != 0) continue;
    if (!rng_.bernoulli(churn_.rerate_prob)) continue;
    flows_[i].rate = sampler_.config().rates.sample(rng_);
    churn.rerated.push_back(FlowId{static_cast<std::int32_t>(i)});
  }

  // Arrivals: smallest free slot first (free_ is sorted descending, so
  // pop_back yields ascending ids), then append. Free-slot ids are all
  // smaller than appended ones, so `arrived` comes out ascending.
  for (int a = 0; a < churn_.arrivals_per_epoch; ++a) {
    const VmFlow f = sampler_.sample(next_index_++, rng_);
    if (!free_.empty()) {
      const FlowId id = free_.back();
      free_.pop_back();
      flows_[static_cast<std::size_t>(id.value())] = f;
      churn.arrived.push_back(id);
    } else {
      churn.arrived.push_back(flow_count(flows_));
      flows_.push_back(f);
    }
  }

  // A same-epoch depart-then-arrive on one slot is just a re-spawn:
  // report it only as arrived.
  if (!churn.departed.empty() && !churn.arrived.empty()) {
    std::vector<char> respawned(flows_.size(), 0);
    for (const FlowId id : churn.arrived) {
      respawned[static_cast<std::size_t>(id.value())] = 1;
    }
    std::erase_if(churn.departed, [&](FlowId id) {
      return respawned[static_cast<std::size_t>(id.value())] != 0;
    });
  }
  return churn;
}

StreamingWorkload::Snapshot StreamingWorkload::snapshot() const {
  Snapshot snap;
  snap.flows = flows_;
  snap.free_slots = free_;
  snap.next_index = next_index_;
  snap.rng = rng_.state();
  return snap;
}

void StreamingWorkload::restore(const Snapshot& snap) {
  PPDC_REQUIRE(snap.next_index >= 0, "negative streaming arrival cursor");
  for (const FlowId id : snap.free_slots) {
    PPDC_REQUIRE(id.value() >= 0 &&
                     static_cast<std::size_t>(id.value()) < snap.flows.size(),
                 "streaming snapshot free slot out of range");
  }
  flows_ = snap.flows;
  free_ = snap.free_slots;
  next_index_ = snap.next_index;
  rng_.restore_state(snap.rng);
}

}  // namespace ppdc
