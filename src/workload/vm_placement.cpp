#include "workload/vm_placement.hpp"

#include <algorithm>
#include <cmath>

#include "graph/graph.hpp"
#include "util/ids.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace ppdc {

namespace {

/// Rack of a host, or RackIdx::invalid() if the host is in no rack.
RackIdx rack_of(const Topology& topo, NodeId host) {
  for (const RackIdx r : topo.racks.ids()) {
    if (std::find(topo.racks[r].begin(), topo.racks[r].end(), host) !=
        topo.racks[r].end()) {
      return r;
    }
  }
  return RackIdx::invalid();
}

NodeId random_host(const std::vector<NodeId>& rack, Rng& rng) {
  return rack[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(rack.size()) - 1))];
}

}  // namespace

std::vector<VmFlow> generate_vm_flows(const Topology& topo,
                                      const VmPlacementConfig& config,
                                      Rng& rng) {
  PPDC_REQUIRE(config.num_pairs >= 0, "negative pair count");
  PPDC_REQUIRE(config.intra_rack_fraction >= 0.0 &&
                   config.intra_rack_fraction <= 1.0,
               "intra_rack_fraction outside [0,1]");
  PPDC_REQUIRE(config.rack_zipf_s >= 0.0, "negative Zipf exponent");
  PPDC_REQUIRE(!topo.racks.empty(), "topology exposes no racks");

  const RackIdx num_racks = topo.num_racks();
  const int east_racks = std::max(1, num_racks.value() / 2);

  // Per-coast rack lists: east = first half, west = second half
  // (degenerates to a single coast on tiny topologies).
  std::vector<std::vector<RackIdx>> coast_racks(2);
  for (const RackIdx r : topo.racks.ids()) {
    coast_racks[r.value() < east_racks ? 0 : 1].push_back(r);
  }
  if (coast_racks[1].empty()) coast_racks[1] = coast_racks[0];

  // Zipf popularity within each coast (uniform when s == 0).
  std::vector<std::vector<double>> coast_weights(2);
  for (int coast = 0; coast < 2; ++coast) {
    const auto& racks = coast_racks[static_cast<std::size_t>(coast)];
    auto& w = coast_weights[static_cast<std::size_t>(coast)];
    w.reserve(racks.size());
    for (std::size_t rank = 0; rank < racks.size(); ++rank) {
      w.push_back(config.rack_zipf_s == 0.0
                      ? 1.0
                      : std::pow(static_cast<double>(rank + 1),
                                 -config.rack_zipf_s));
    }
  }

  auto pick_rack = [&](int coast) {
    const auto& racks = coast_racks[static_cast<std::size_t>(coast)];
    const auto& w = coast_weights[static_cast<std::size_t>(coast)];
    return racks[rng.weighted_index(w)];
  };

  std::vector<VmFlow> flows;
  flows.reserve(static_cast<std::size_t>(config.num_pairs));

  for (int i = 0; i < config.num_pairs; ++i) {
    VmFlow f;
    const int coast = static_cast<int>(rng.bernoulli(0.5));
    const RackIdx src_rack = pick_rack(coast);
    const bool intra = rng.bernoulli(config.intra_rack_fraction);
    if (intra || num_racks == RackIdx{1}) {
      const auto& rack = topo.racks[src_rack];
      f.src_host = random_host(rack, rng);
      f.dst_host = random_host(rack, rng);
    } else {
      // Cross-rack pair: the destination stays within the same coast
      // (tenant locality) but in a different rack when possible.
      RackIdx dst_rack = src_rack;
      for (int attempt = 0; attempt < 64 && dst_rack == src_rack;
           ++attempt) {
        dst_rack = pick_rack(coast);
      }
      if (dst_rack == src_rack) {  // single-rack coast
        dst_rack = RackIdx{(src_rack.value() + 1) % num_racks.value()};
      }
      f.src_host = random_host(topo.racks[src_rack], rng);
      f.dst_host = random_host(topo.racks[dst_rack], rng);
    }
    f.rate = config.rates.sample(rng);
    f.group = config.spatial_coasts ? coast : static_cast<int>(i % 2);
    flows.push_back(f);
  }
  return flows;
}

double measured_intra_rack_fraction(const Topology& topo,
                                    const std::vector<VmFlow>& flows) {
  if (flows.empty()) return 0.0;
  int intra = 0;
  for (const auto& f : flows) {
    if (rack_of(topo, f.src_host) == rack_of(topo, f.dst_host)) ++intra;
  }
  return static_cast<double>(intra) / static_cast<double>(flows.size());
}

}  // namespace ppdc
