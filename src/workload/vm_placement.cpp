#include "workload/vm_placement.hpp"

#include <algorithm>
#include <cmath>

#include "graph/graph.hpp"
#include "util/ids.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace ppdc {

namespace {

/// Rack of a host, or RackIdx::invalid() if the host is in no rack.
RackIdx rack_of(const Topology& topo, NodeId host) {
  for (const RackIdx r : topo.racks.ids()) {
    if (std::find(topo.racks[r].begin(), topo.racks[r].end(), host) !=
        topo.racks[r].end()) {
      return r;
    }
  }
  return RackIdx::invalid();
}

NodeId random_host(const std::vector<NodeId>& rack, Rng& rng) {
  return rack[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(rack.size()) - 1))];
}

}  // namespace

VmFlowSampler::VmFlowSampler(const Topology& topo,
                             const VmPlacementConfig& config)
    : topo_(&topo), config_(config) {
  PPDC_REQUIRE(config.num_pairs >= 0, "negative pair count");
  PPDC_REQUIRE(config.intra_rack_fraction >= 0.0 &&
                   config.intra_rack_fraction <= 1.0,
               "intra_rack_fraction outside [0,1]");
  PPDC_REQUIRE(config.rack_zipf_s >= 0.0, "negative Zipf exponent");
  PPDC_REQUIRE(!topo.racks.empty(), "topology exposes no racks");

  const RackIdx num_racks = topo.num_racks();
  const int east_racks = std::max(1, num_racks.value() / 2);

  // Per-coast rack lists: east = first half, west = second half
  // (degenerates to a single coast on tiny topologies).
  coast_racks_.resize(2);
  for (const RackIdx r : topo.racks.ids()) {
    coast_racks_[r.value() < east_racks ? 0 : 1].push_back(r);
  }
  if (coast_racks_[1].empty()) coast_racks_[1] = coast_racks_[0];

  // Zipf popularity within each coast (uniform when s == 0).
  coast_weights_.resize(2);
  for (int coast = 0; coast < 2; ++coast) {
    const auto& racks = coast_racks_[static_cast<std::size_t>(coast)];
    auto& w = coast_weights_[static_cast<std::size_t>(coast)];
    w.reserve(racks.size());
    for (std::size_t rank = 0; rank < racks.size(); ++rank) {
      w.push_back(config.rack_zipf_s == 0.0
                      ? 1.0
                      : std::pow(static_cast<double>(rank + 1),
                                 -config.rack_zipf_s));
    }
  }
}

RackIdx VmFlowSampler::pick_rack(int coast, Rng& rng) const {
  const auto& racks = coast_racks_[static_cast<std::size_t>(coast)];
  const auto& w = coast_weights_[static_cast<std::size_t>(coast)];
  return racks[rng.weighted_index(w)];
}

VmFlow VmFlowSampler::sample(int index, Rng& rng) const {
  const RackIdx num_racks = topo_->num_racks();
  VmFlow f;
  const int coast = static_cast<int>(rng.bernoulli(0.5));
  const RackIdx src_rack = pick_rack(coast, rng);
  const bool intra = rng.bernoulli(config_.intra_rack_fraction);
  if (intra || num_racks == RackIdx{1}) {
    const auto& rack = topo_->racks[src_rack];
    f.src_host = random_host(rack, rng);
    f.dst_host = random_host(rack, rng);
  } else {
    // Cross-rack pair: the destination stays within the same coast
    // (tenant locality) but in a different rack when possible.
    RackIdx dst_rack = src_rack;
    for (int attempt = 0; attempt < 64 && dst_rack == src_rack; ++attempt) {
      dst_rack = pick_rack(coast, rng);
    }
    if (dst_rack == src_rack) {  // single-rack coast
      dst_rack = RackIdx{(src_rack.value() + 1) % num_racks.value()};
    }
    f.src_host = random_host(topo_->racks[src_rack], rng);
    f.dst_host = random_host(topo_->racks[dst_rack], rng);
  }
  f.rate = config_.rates.sample(rng);
  f.group = config_.spatial_coasts ? coast : static_cast<int>(index % 2);
  return f;
}

std::vector<VmFlow> generate_vm_flows(const Topology& topo,
                                      const VmPlacementConfig& config,
                                      Rng& rng) {
  const VmFlowSampler sampler(topo, config);
  std::vector<VmFlow> flows;
  flows.reserve(static_cast<std::size_t>(config.num_pairs));
  for (int i = 0; i < config.num_pairs; ++i) {
    flows.push_back(sampler.sample(i, rng));
  }
  return flows;
}

double measured_intra_rack_fraction(const Topology& topo,
                                    const std::vector<VmFlow>& flows) {
  if (flows.empty()) return 0.0;
  int intra = 0;
  for (const auto& f : flows) {
    if (rack_of(topo, f.src_host) == rack_of(topo, f.dst_host)) ++intra;
  }
  return static_cast<double>(intra) / static_cast<double>(flows.size());
}

}  // namespace ppdc
