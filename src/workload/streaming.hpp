// Streaming workload: flows arrive, depart, and re-rate between epochs.
//
// The paper's dynamic experiments (§VI) fix the flow population and only
// re-scale rates diurnally. Real tenants churn: meetings start and end,
// VMs are torn down. StreamingWorkload generalizes the static generator —
// epoch 0 is bit-identical to generate_vm_flows() under the same seed, and
// advance() then applies one epoch of churn (departures, re-rates,
// arrivals, all drawn from one seeded Rng in a fixed order, so the whole
// trace is deterministic).
//
// FlowId stability (the property the sharded cost model depends on):
// departing flows do NOT compact the flow vector. Their slot keeps its
// endpoints, drops to base rate 0, and enters a free-list; the next
// arrival re-uses the smallest free slot (or appends). FlowIds are thus
// never remapped, per-flow caches stay valid, and the flow vector stays
// dense in slots while only live_flows() of them carry traffic.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "topology/topology.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"
#include "workload/traffic.hpp"
#include "workload/vm_placement.hpp"

namespace ppdc {

/// Per-epoch churn intensities. All defaults are zero: a default-constructed
/// config makes StreamingWorkload behave exactly like the static workload.
struct StreamingChurnConfig {
  int arrivals_per_epoch = 0;   ///< new flows drawn each advance()
  double departure_prob = 0.0;  ///< per live flow per epoch
  double rerate_prob = 0.0;     ///< per surviving flow per epoch
};

/// What one advance() changed, as ascending FlowId lists. A flow appears in
/// at most one list per epoch (a slot freed by a departure can be re-used
/// by an arrival in the same epoch; it is then reported only as arrived).
struct FlowChurn {
  std::vector<FlowId> departed;  ///< base rate dropped to 0, slot freed
  std::vector<FlowId> arrived;   ///< fresh flow (re-used or appended slot)
  std::vector<FlowId> rerated;   ///< base rate re-drawn, endpoints unchanged

  std::size_t total() const noexcept {
    return departed.size() + arrived.size() + rerated.size();
  }
};

/// Seeded, deterministic flow source with inter-epoch churn.
class StreamingWorkload {
 public:
  /// Draws the initial population exactly like
  /// generate_vm_flows(topo, initial, rng). `topo` must outlive the
  /// workload; `rng` is taken by value (the workload owns its stream).
  StreamingWorkload(const Topology& topo, const VmPlacementConfig& initial,
                    const StreamingChurnConfig& churn, Rng rng);

  /// Slot-dense flow vector. Each flow's `rate` is its current *base*
  /// rate λ̄_i (diurnal scaling is applied downstream); vacant slots have
  /// rate 0 and keep their last valid endpoints/group. The reference is
  /// stable across advance() only if no arrival appends a slot — cost
  /// models bind to this vector and must be told about appended tails
  /// (CostModel::flows_appended).
  const std::vector<VmFlow>& flows() const noexcept { return flows_; }

  /// Number of slots carrying traffic (flows() size minus free slots).
  int live_flows() const noexcept {
    return static_cast<int>(flows_.size() - free_.size());
  }

  /// Applies one epoch of churn: departures first (over live flows in
  /// ascending id order), then re-rates (over the survivors), then
  /// arrivals (smallest free slot first, appends after).
  FlowChurn advance();

  const StreamingChurnConfig& churn_config() const noexcept { return churn_; }

  /// The full mutable workload state, for the epoch checkpoint journal
  /// (sim/checkpoint.hpp). restore() on a workload built with the same
  /// (topo, initial, churn) reproduces the exact churn stream: every
  /// later advance() is bit-identical to the snapshotted instance.
  struct Snapshot {
    std::vector<VmFlow> flows;
    std::vector<FlowId> free_slots;  ///< sorted descending
    int next_index = 0;
    std::array<std::uint64_t, 4> rng{};
  };
  Snapshot snapshot() const;
  void restore(const Snapshot& snap);

 private:
  VmFlowSampler sampler_;
  StreamingChurnConfig churn_;
  Rng rng_;
  std::vector<VmFlow> flows_;
  std::vector<FlowId> free_;  ///< vacant slots, sorted descending
  int next_index_ = 0;        ///< arrival counter feeding sampler groups
};

}  // namespace ppdc
