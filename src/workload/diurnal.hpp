// Diurnal (cycle-stationary) traffic model, Eq. 9 of the paper.
//
// The paper models a 12-hour working day (N = 12): VM traffic rises
// linearly from 6 AM to noon and falls back to 6 PM, with a floor
// τ_min = 0.2 taken from Eramo et al. [20]:
//
//   τ_h = 0                         h = 0
//   τ_h = 2 (h / N) (1 - τ_min)     h = 1 .. N/2
//   τ_h = 2 ((N-h)/N) (1 - τ_min)   h = N/2 + 1 .. N
//
// The effective scale factor applied to a base rate is τ_min + τ_h, so the
// scale runs from τ_min (early morning / evening) up to 1.0 at noon —
// matching the daily pattern plotted in Fig. 8. To model the US east/west
// time-zone split, half of the flows are shifted three hours later than
// the other half (§VI); shifting wraps cyclically (cycle-stationarity).
//
// Hours are the strongly-typed `Hour` domain (util/ids.hpp): the same id
// a simulation epoch carries, so a flow index or switch row can never be
// passed where an hour is expected.
#pragma once

#include <vector>

#include "util/ids.hpp"
#include "workload/traffic.hpp"

namespace ppdc {

/// Diurnal model parameters (defaults = paper values).
struct DiurnalModel {
  int hours_per_day = 12;   ///< N
  double tau_min = 0.2;     ///< floor scale factor
  int coast_offset = 3;     ///< west-coast lag in hours

  /// Raw τ_h of Eq. 9 for hour h (h taken modulo N).
  double tau(Hour hour) const;

  /// Effective multiplicative scale at hour h: τ_min + τ_h. In [τ_min, 1].
  double scale(Hour hour) const;

  /// Scale seen by flow `flow` at `hour`: even-indexed flows are "east
  /// coast" (no lag), odd-indexed are "west coast" (lag `coast_offset`
  /// hours).
  double scale_for_flow(Hour hour, FlowId flow) const;

  /// Scale for an explicit time-zone group (0 = east, 1 = west, further
  /// groups lag `coast_offset` hours each).
  double scale_for_group(Hour hour, int group) const;

  /// Scales of groups 0 .. num_groups-1 at `hour` — the recombination
  /// weights of the incremental cost-model refresh
  /// (CostModel::refresh_scaled).
  std::vector<double> group_scales(Hour hour, int num_groups) const;
};

/// Applies the diurnal model: rate_i(h) = base_i * scale_for_flow(h, i).
std::vector<double> diurnal_rates(const DiurnalModel& model,
                                  const std::vector<double>& base_rates,
                                  Hour hour);

/// Group-aware variant: rate_i(h) = base_i * scale_for_group(h, groups[i]).
std::vector<double> diurnal_rates_grouped(const DiurnalModel& model,
                                          const std::vector<double>& base_rates,
                                          const std::vector<int>& groups,
                                          Hour hour);

}  // namespace ppdc
