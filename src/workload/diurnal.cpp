#include "workload/diurnal.hpp"

#include "util/require.hpp"

namespace ppdc {

double DiurnalModel::tau(Hour hour) const {
  PPDC_REQUIRE(hours_per_day >= 2 && hours_per_day % 2 == 0,
               "N must be even and >= 2");
  PPDC_REQUIRE(tau_min >= 0.0 && tau_min <= 1.0, "tau_min outside [0,1]");
  const int n = hours_per_day;
  int h = hour.value() % n;
  if (h < 0) h += n;
  if (h == 0) return 0.0;
  const double span = 1.0 - tau_min;
  if (h <= n / 2) {
    return 2.0 * static_cast<double>(h) / static_cast<double>(n) * span;
  }
  return 2.0 * static_cast<double>(n - h) / static_cast<double>(n) * span;
}

double DiurnalModel::scale(Hour hour) const { return tau_min + tau(hour); }

double DiurnalModel::scale_for_flow(Hour hour, FlowId flow) const {
  PPDC_REQUIRE(flow.valid(), "invalid flow id");
  return scale_for_group(hour, flow.value() % 2);
}

double DiurnalModel::scale_for_group(Hour hour, int group) const {
  PPDC_REQUIRE(group >= 0, "negative group");
  return scale(Hour{hour.value() - group * coast_offset});
}

std::vector<double> DiurnalModel::group_scales(Hour hour,
                                               int num_groups) const {
  PPDC_REQUIRE(num_groups >= 1, "need at least one group");
  std::vector<double> scales;
  scales.reserve(static_cast<std::size_t>(num_groups));
  for (int g = 0; g < num_groups; ++g) {
    scales.push_back(scale_for_group(hour, g));
  }
  return scales;
}

std::vector<double> diurnal_rates(const DiurnalModel& model,
                                  const std::vector<double>& base_rates,
                                  Hour hour) {
  std::vector<double> rates;
  rates.reserve(base_rates.size());
  for (const FlowId i : id_range<FlowId>(base_rates.size())) {
    rates.push_back(base_rates[static_cast<std::size_t>(i.value())] *
                    model.scale_for_flow(hour, i));
  }
  return rates;
}

std::vector<double> diurnal_rates_grouped(const DiurnalModel& model,
                                          const std::vector<double>& base_rates,
                                          const std::vector<int>& groups,
                                          Hour hour) {
  PPDC_REQUIRE(groups.size() == base_rates.size(),
               "groups/rates size mismatch");
  std::vector<double> rates;
  rates.reserve(base_rates.size());
  for (std::size_t i = 0; i < base_rates.size(); ++i) {
    rates.push_back(base_rates[i] * model.scale_for_group(hour, groups[i]));
  }
  return rates;
}

}  // namespace ppdc
