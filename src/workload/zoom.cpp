#include "workload/zoom.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace ppdc {

ZoomWorkload::ZoomWorkload(int num_flows, ZoomModel model, std::uint64_t seed)
    : num_flows_(num_flows), model_(model), rng_(seed) {
  PPDC_REQUIRE(num_flows >= 1, "need at least one flow");
  PPDC_REQUIRE(model_.sessions_per_hour >= 0.0, "negative session rate");
  PPDC_REQUIRE(model_.mean_duration_hours >= 1.0, "mean duration < 1 hour");
  PPDC_REQUIRE(model_.max_participants >= 1, "max_participants < 1");
  admit_sessions();  // start with an initial population
}

void ZoomWorkload::advance_hour() {
  for (auto& s : sessions_) --s.remaining_hours;
  sessions_.erase(std::remove_if(sessions_.begin(), sessions_.end(),
                                 [](const Session& s) {
                                   return s.remaining_hours <= 0;
                                 }),
                  sessions_.end());
  admit_sessions();
}

void ZoomWorkload::admit_sessions() {
  const double p_continue = 1.0 - 1.0 / model_.mean_duration_hours;
  for (int flow = 0; flow < num_flows_; ++flow) {
    // Poisson arrivals approximated by a binomial-style draw: floor plus a
    // Bernoulli for the fractional part keeps the generator cheap and
    // deterministic in its mean.
    const double lam = model_.sessions_per_hour;
    int arrivals = static_cast<int>(std::floor(lam));
    if (rng_.bernoulli(lam - std::floor(lam))) ++arrivals;
    for (int a = 0; a < arrivals; ++a) {
      Session s;
      s.flow = flow;
      // Geometric duration with mean mean_duration_hours.
      s.remaining_hours = 1;
      while (rng_.bernoulli(p_continue) && s.remaining_hours < 24) {
        ++s.remaining_hours;
      }
      // Heavy-tailed participant count: square a uniform to skew small.
      const double u = rng_.uniform_real(0.0, 1.0);
      const int participants = std::max(
          2, static_cast<int>(u * u * model_.max_participants));
      const bool video = rng_.bernoulli(model_.video_fraction);
      s.rate = model_.rate_per_participant *
               static_cast<double>(participants) * (video ? 4.0 : 1.0);
      sessions_.push_back(s);
    }
  }
}

std::vector<double> ZoomWorkload::rates() const {
  std::vector<double> r(static_cast<std::size_t>(num_flows_), 0.0);
  for (const auto& s : sessions_) {
    r[static_cast<std::size_t>(s.flow)] += s.rate;
  }
  return r;
}

int ZoomWorkload::live_sessions() const {
  return static_cast<int>(sessions_.size());
}

}  // namespace ppdc
