#include "workload/traffic.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace ppdc {

double RateDistribution::sample(Rng& rng) const {
  PPDC_REQUIRE(light_fraction >= 0 && medium_fraction >= 0 &&
                   heavy_fraction >= 0,
               "negative bucket fraction");
  const double total = light_fraction + medium_fraction + heavy_fraction;
  PPDC_REQUIRE(total > 0, "bucket fractions sum to zero");
  const double x = rng.uniform_real(0.0, total);
  if (x < light_fraction) {
    return rng.uniform_real(light_lo, light_hi);
  }
  if (x < light_fraction + medium_fraction) {
    return rng.uniform_real(medium_lo, medium_hi);
  }
  return rng.uniform_real(heavy_lo, heavy_hi);
}

RateClass RateDistribution::classify(double rate) const {
  if (rate < light_hi) return RateClass::kLight;
  if (rate <= medium_hi) return RateClass::kMedium;
  return RateClass::kHeavy;
}

std::vector<double> sample_rates(const RateDistribution& dist, int count,
                                 Rng& rng) {
  PPDC_REQUIRE(count >= 0, "negative count");
  std::vector<double> rates;
  rates.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) rates.push_back(dist.sample(rng));
  return rates;
}

std::vector<double> rates_of(const std::vector<VmFlow>& flows) {
  std::vector<double> r;
  r.reserve(flows.size());
  for (const auto& f : flows) r.push_back(f.rate);
  return r;
}

std::vector<int> groups_of(const std::vector<VmFlow>& flows) {
  std::vector<int> g;
  g.reserve(flows.size());
  for (const auto& f : flows) g.push_back(f.group);
  return g;
}

int num_groups(const std::vector<int>& groups) {
  int max_group = 0;
  for (const int g : groups) {
    PPDC_REQUIRE(g >= 0, "negative group id");
    max_group = std::max(max_group, g);
  }
  return max_group + 1;
}

void set_rates(std::vector<VmFlow>& flows, const std::vector<double>& rates) {
  PPDC_REQUIRE(flows.size() == rates.size(), "rate vector size mismatch");
  for (std::size_t i = 0; i < flows.size(); ++i) flows[i].rate = rates[i];
}

FlowId flow_count(const std::vector<VmFlow>& flows) {
  return checked_cast_id<FlowId>(flows.size(), "flow count");
}

double total_rate(const std::vector<VmFlow>& flows) {
  double sum = 0.0;
  for (const auto& f : flows) sum += f.rate;
  return sum;
}

}  // namespace ppdc
