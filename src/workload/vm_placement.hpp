// Placement of communicating VM pairs onto hosts.
//
// §VI: "As 80% of cloud data center traffic originated by servers stays
// within the rack [8], we place 80% of the VM pairs into hosts under the
// same edge switches." This generator honours that rule on any Topology
// that exposes rack structure.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/topology.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"
#include "workload/traffic.hpp"

namespace ppdc {

/// Knobs for VM-pair generation.
struct VmPlacementConfig {
  int num_pairs = 100;              ///< l
  double intra_rack_fraction = 0.8; ///< share of pairs inside one rack
  RateDistribution rates;           ///< initial λ distribution
  /// When true (default), flows whose source rack lies in the first half
  /// of the rack list are "east coast" (group 0) and the rest "west coast"
  /// (group 1) — tenants of one region are deployed together, so the
  /// diurnal offset (§VI) physically moves the traffic center across the
  /// fabric. When false, groups alternate by flow index (no spatial
  /// correlation).
  bool spatial_coasts = true;
  /// Zipf skew of rack popularity within each coast (0 = uniform, the
  /// paper's literal setup). Real tenants concentrate — the paper's own
  /// Zoom example packs hundreds of meetings onto one Meeting Connector VM
  /// — and on a fat-tree *some* concentration is necessary for dynamic
  /// traffic to matter at all: core switches are equidistant from every
  /// host, so under uniformly spread traffic the optimal SFC parks in the
  /// core and never benefits from migration (see DESIGN.md §3 and the
  /// bench_ablation_skew harness). The Fig. 6(b)/11 harnesses use ~2.2.
  double rack_zipf_s = 0.0;
};

/// Draws VM flows one at a time under the coast/Zipf/intra-rack model.
/// Extracted from generate_vm_flows() so streaming arrivals
/// (StreamingWorkload) draw from the *same* distribution with the *same*
/// per-flow RNG consumption order: generate_vm_flows(topo, c, rng) is
/// bit-identical to constructing a sampler and calling sample(i, rng) for
/// i = 0..num_pairs-1.
class VmFlowSampler {
 public:
  /// Precomputes the per-coast rack lists and Zipf weights. `topo` must
  /// outlive the sampler. Validates `config` (fractions, exponents, racks).
  VmFlowSampler(const Topology& topo, const VmPlacementConfig& config);

  /// Draws one flow. `index` only feeds the alternating group assignment
  /// used when `spatial_coasts` is false (generate_vm_flows passes the
  /// flow's position; streaming passes a monotone arrival counter).
  VmFlow sample(int index, Rng& rng) const;

  const VmPlacementConfig& config() const noexcept { return config_; }

 private:
  RackIdx pick_rack(int coast, Rng& rng) const;

  const Topology* topo_;
  VmPlacementConfig config_;
  std::vector<std::vector<RackIdx>> coast_racks_;
  std::vector<std::vector<double>> coast_weights_;
};

/// Generates `config.num_pairs` VM flows on the topology. Intra-rack pairs
/// pick two hosts (possibly the same — co-located VMs are legal and match
/// the paper's Fig. 1 examples) under one random rack switch; the rest pick
/// hosts in two different racks.
std::vector<VmFlow> generate_vm_flows(const Topology& topo,
                                      const VmPlacementConfig& config,
                                      Rng& rng);

/// Fraction of flows whose endpoints share a rack (for tests/diagnostics).
double measured_intra_rack_fraction(const Topology& topo,
                                    const std::vector<VmFlow>& flows);

}  // namespace ppdc
