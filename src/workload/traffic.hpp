// VM flows and traffic-rate generation.
//
// §VI of the paper: traffic rates lie in [0, 10000] with 25% light flows
// in [0, 3000), 70% medium in [3000, 7000], and 5% heavy in (7000, 10000],
// matching the flow characteristics measured inside Facebook data centers
// [43]. Those production traces are proprietary; this generator is the
// substitution — it reproduces exactly the published distributional
// characterization the paper consumed.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace ppdc {

/// A communicating VM pair (v_i, v'_i): endpoints live on hosts and
/// exchange traffic at rate λ_i.
struct VmFlow {
  NodeId src_host = kInvalidNode;  ///< s(v_i)
  NodeId dst_host = kInvalidNode;  ///< s(v'_i)
  double rate = 0.0;               ///< λ_i
  /// Time-zone group for the diurnal model (0 = east coast, 1 = west
  /// coast; §VI). The generator assigns it spatially — tenants of one
  /// coast are deployed together — so the daily cycle moves the traffic
  /// center of mass across the fabric.
  int group = 0;
};

/// Rate class of a flow under the Facebook characterization.
enum class RateClass : std::uint8_t { kLight, kMedium, kHeavy };

/// Parameters of the bucketed rate distribution (defaults = paper values).
struct RateDistribution {
  double light_fraction = 0.25;
  double medium_fraction = 0.70;
  double heavy_fraction = 0.05;
  double light_lo = 0.0, light_hi = 3000.0;
  double medium_lo = 3000.0, medium_hi = 7000.0;
  double heavy_lo = 7000.0, heavy_hi = 10000.0;

  /// Draws one rate.
  double sample(Rng& rng) const;

  /// Classifies a rate value into its bucket.
  RateClass classify(double rate) const;
};

/// Draws `count` traffic rates from the distribution.
std::vector<double> sample_rates(const RateDistribution& dist, int count,
                                 Rng& rng);

/// Extracts the rate vector λ from a flow list.
std::vector<double> rates_of(const std::vector<VmFlow>& flows);

/// Extracts the time-zone group vector from a flow list.
std::vector<int> groups_of(const std::vector<VmFlow>& flows);

/// Number of distinct dense group ids (max + 1; 1 for an empty list).
int num_groups(const std::vector<int>& groups);

/// Overwrites flow rates from a vector (sizes must match).
void set_rates(std::vector<VmFlow>& flows, const std::vector<double>& rates);

/// Typed flow count: one past the largest valid FlowId of `flows`.
FlowId flow_count(const std::vector<VmFlow>& flows);

/// Sum of all rates (the Λ that multiplies the chain cost in Eq. 1).
double total_rate(const std::vector<VmFlow>& flows);

}  // namespace ppdc
