// Epoch-driven dynamic PPDC simulation (§VI "Effects of VNF Migrations on
// Dynamic Traffic", Fig. 11).
//
// Lifecycle reproduced from the paper: TOP computes the initial optimal
// placement under the hour-0 rates, then every subsequent hour the traffic
// vector is re-scaled by the diurnal model (Eq. 9, east/west coast split)
// and the migration policy reacts. Costs accounted per epoch: the
// communication cost C_a of that hour plus whatever migration traffic the
// policy generated.
//
// Cost-model maintenance is incremental on the diurnal path: the hourly
// rescaling multiplies whole groups, so each epoch's attraction refresh is
// an O(|groups| · |V_s|) recombination of precomputed per-group base
// vectors instead of an O(l · |V_s|) rescan, and VM-migration policies
// report their moved flows (EpochDecision::moved_flows) so only those are
// patched. A custom rate_schedule disables the fast path (rates may change
// arbitrarily per flow).
#pragma once

#include <functional>
#include <vector>

#include "core/placement_dp.hpp"
#include "sim/policy.hpp"
#include "workload/diurnal.hpp"

namespace ppdc {

/// Per-run configuration.
struct SimConfig {
  int hours = 12;             ///< simulated horizon (one diurnal cycle)
  DiurnalModel diurnal;       ///< rate schedule
  TopDpOptions initial_placement;  ///< knobs for the hour-0 TOP solve
  /// Optional custom rate schedule; when set it overrides the diurnal
  /// model: schedule(hour) must return the per-flow rates of that hour.
  std::function<std::vector<double>(int)> rate_schedule;
  /// Optional service-downtime model (VNF migration literature [51], [20],
  /// [32]): while instances are in flight, traffic through them is
  /// disturbed. Each epoch is charged an extra
  /// downtime_factor x Λ x (migration distance) on top of the migration
  /// traffic itself. 0 (default) reproduces the paper's cost model.
  double downtime_factor = 0.0;
};

/// Full record of one simulation run.
struct SimTrace {
  std::vector<EpochDecision> epochs;
  Placement initial_placement;
  double total_comm_cost = 0.0;
  double total_migration_cost = 0.0;
  double total_cost = 0.0;
  int total_vnf_migrations = 0;
  int total_vm_migrations = 0;
};

/// Runs one policy over the horizon. `base_flows` carry the base rates
/// (the diurnal scale multiplies them); `n` is the SFC length.
SimTrace run_simulation(const AllPairs& apsp,
                        const std::vector<VmFlow>& base_flows, int n,
                        const SimConfig& config, MigrationPolicy& policy);

}  // namespace ppdc
