// Epoch-driven dynamic PPDC simulation (§VI "Effects of VNF Migrations on
// Dynamic Traffic", Fig. 11).
//
// Lifecycle reproduced from the paper: TOP computes the initial optimal
// placement under the hour-0 rates, then every subsequent hour the traffic
// vector is re-scaled by the diurnal model (Eq. 9, east/west coast split)
// and the migration policy reacts. Costs accounted per epoch: the
// communication cost C_a of that hour plus whatever migration traffic the
// policy generated.
//
// Cost-model maintenance is incremental on the diurnal path: the hourly
// rescaling multiplies whole groups, so each epoch's attraction refresh is
// an O(|groups| · |V_s|) recombination of precomputed per-group base
// vectors instead of an O(l · |V_s|) rescan, and VM-migration policies
// report their moved flows (EpochDecision::moved_flows) so only those are
// patched. A custom rate_schedule disables the fast path (rates may change
// arbitrarily per flow).
//
// Fault tolerance: an optional FaultSchedule fails and repairs switches
// and fabric links while the simulation runs. On every topology change the
// engine rebuilds a DegradedNetwork (masked graph + allow-disconnected
// APSP + serving core) and a fault-epoch CostModel restricted to the
// core's alive switches. Flows cut off from the core are quarantined for
// the epoch (rate zeroed, SLA penalty charged); VNFs stranded on dead or
// unreachable switches are emergency-migrated to the restricted fresh
// optimum before the policy runs; epochs whose core cannot host the chain
// at all are counted as downtime. A run with an empty (or never-firing)
// schedule takes exactly the pristine code path, including the incremental
// group-refresh fast path, and reproduces the fault-free trace bit for
// bit.
#pragma once

#include <atomic>
#include <functional>
#include <vector>

#include "core/placement_dp.hpp"
#include "core/solve_budget.hpp"
#include "fault/fault.hpp"
#include "graph/apsp.hpp"
#include "sim/audit.hpp"
#include "sim/observer.hpp"
#include "sim/policy.hpp"
#include "util/ids.hpp"
#include "util/require.hpp"
#include "workload/diurnal.hpp"
#include "workload/traffic.hpp"

namespace ppdc {

/// Knobs of the graceful-degradation ladder (DESIGN.md §12). When
/// enabled, sustained stress steps the engine down one rung per stressed
/// epoch — full re-solve (kFull) → refresh-only (kRefreshOnly, the
/// placement is held and only the exact cost refresh runs) → frozen
/// (kFrozen, placement and cost refresh held, the previous epoch's comm
/// cost is charged as a stale estimate) — and a clean streak steps it
/// back up one rung at a time. Every transition is emitted as a
/// first-class EpochObserver event and counted in SimTrace. Quarantine,
/// SLA penalties, downtime accounting, and emergency recovery (stranded
/// VNFs must move) keep running at every rung.
struct LadderOptions {
  bool enabled = false;
  /// Trip when more than this fraction of the flow population is
  /// quarantined in one epoch.
  double max_quarantined_fraction = 0.5;
  /// Trip when the epoch's budget-truncated solves reach this count
  /// (0 disables the truncation trip).
  int trip_truncations = 1;
  /// Clean (trip-free) epochs required at a rung before stepping back up.
  int recovery_epochs = 2;
};

/// Knobs of the fault-handling machinery (only consulted when the
/// schedule actually degrades the fabric).
struct FaultOptions {
  /// μ of emergency recovery migrations. Their distance is measured on the
  /// *pristine* metric — the bits of a VNF stranded on a dead switch still
  /// have to travel that far — so the cost is finite even when the source
  /// switch is down.
  double mu = 1.0;
  /// SLA penalty per unit of quarantined (unserved) traffic rate per
  /// epoch. 0 only counts quarantined flows without charging them.
  double quarantine_penalty = 0.0;
  /// Knobs for the emergency re-placement DP on the degraded fabric.
  TopDpOptions placement;
  /// When true, the DP recovery answer is refined by branch-and-bound
  /// (warm-started at the DP placement) under `budget`.
  bool exhaustive_recovery = false;
  /// Wall-clock budget of the exhaustive refinement; expiry falls back to
  /// the best placement found so far (never worse than the DP answer).
  SolveBudget budget;
};

/// Per-run configuration.
struct SimConfig {
  int hours = 12;             ///< simulated horizon (one diurnal cycle)
  DiurnalModel diurnal;       ///< rate schedule
  TopDpOptions initial_placement;  ///< knobs for the hour-0 TOP solve
  /// Optional custom rate schedule; when set it overrides the diurnal
  /// model: schedule(hour) must return the per-flow rates of that hour
  /// (validated: one non-negative rate per flow).
  std::function<std::vector<double>(Hour)> rate_schedule;
  /// Optional service-downtime model (VNF migration literature [51], [20],
  /// [32]): while instances are in flight, traffic through them is
  /// disturbed. Each epoch is charged an extra
  /// downtime_factor x Λ x (migration distance) on top of the migration
  /// traffic itself. 0 (default) reproduces the paper's cost model.
  double downtime_factor = 0.0;
  /// Switch/link failure timeline (empty = pristine run). Events must
  /// start at epoch 1: the initial placement always sees the full fabric.
  FaultSchedule faults;
  FaultOptions fault;  ///< recovery / quarantine knobs
  /// Graceful-degradation ladder; disabled by default (a throwing policy
  /// then aborts the run, exactly the pre-ladder contract). With the
  /// ladder on, a policy throw is contained: the pre-policy state is
  /// restored, the epoch is charged at the held placement, and the
  /// ladder steps down.
  LadderOptions ladder;
  /// Runtime invariant auditing (sim/audit.hpp); disabled by default.
  /// The engine constructs one InvariantAuditor per run — plain-data
  /// options copy safely into parallel experiment jobs.
  AuditOptions audit;
  /// Cooperative cancellation (SIGINT/SIGTERM plumbing of bench_common):
  /// when non-null and the pointee flips to true, the engine stops at the
  /// next epoch boundary by throwing SimInterrupted. A cancelled run
  /// produced no trace and must be treated as never having happened —
  /// the experiment runner reruns it from scratch on resume, which is
  /// what keeps resumed results bit-identical. Not part of the
  /// experiment fingerprint (it never influences results, only whether
  /// they are produced).
  const std::atomic<bool>* cancel = nullptr;
};

/// Thrown by run_simulation when SimConfig::cancel flips mid-run. The
/// simulation state is abandoned; no partial trace escapes.
class SimInterrupted : public PpdcError {
 public:
  using PpdcError::PpdcError;
};

/// Runs one policy over the horizon. `base_flows` carry the base rates
/// (the diurnal scale multiplies them); `n` is the SFC length.
///
/// The returned `SimTrace` (see sim/observer.hpp) is accumulated by the
/// engine's own `TraceRecorder`; pass an `observer` to additionally
/// receive the structured epoch event stream (epoch boundaries, fault
/// fires/repairs, recovery, budget truncation, quarantine, blackout)
/// while the run executes. The observer is invoked on the calling thread.
SimTrace run_simulation(const AllPairs& apsp,
                        const std::vector<VmFlow>& base_flows, int n,
                        const SimConfig& config, MigrationPolicy& policy,
                        EpochObserver* observer = nullptr);

}  // namespace ppdc
