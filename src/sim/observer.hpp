// Structured epoch-event stream of the dynamic simulation.
//
// The engine used to accumulate its accounting ad hoc into trace totals;
// benches and tests that wanted to know *when* something happened had to
// poke at per-epoch fields after the fact. `EpochObserver` turns the
// engine inside out: every notable event — epoch boundaries, fault fires
// and repairs, emergency recovery, solver budget truncation, quarantine,
// blackout — is pushed through a sink interface while the run executes.
// `SimTrace` itself is rebuilt on top of the stream: `TraceRecorder` is
// the one observer the engine always installs, and the trace returned by
// `run_simulation` is exactly what the recorder accumulated. External
// observers (progress meters, CSV event logs, convergence probes) attach
// as a second sink without touching the engine.
//
// Every callback has an empty default body, so observers override only
// what they care about. Callbacks fire on the thread running the
// simulation; an observer shared across parallel SimJobs must synchronise
// itself (the experiment runner never shares one — each job owns its
// recorder).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/cost_model.hpp"
#include "fault/fault.hpp"
#include "sim/policy.hpp"
#include "util/ids.hpp"

namespace ppdc {

/// Sink interface for the engine's epoch event stream.
class EpochObserver {
 public:
  virtual ~EpochObserver() = default;

  /// The hour-0 TOP solve finished; the run is about to iterate `horizon`
  /// epochs starting from `initial`.
  virtual void on_run_begin(Hour /*horizon*/, const Placement& /*initial*/) {}

  /// A new epoch starts (before fault events and traffic are applied).
  virtual void on_epoch_begin(Hour /*hour*/) {}

  /// Fault events fired this epoch (only called when at least one switch
  /// or link failed or was repaired).
  virtual void on_faults(Hour /*hour*/, const EpochFaults& /*events*/) {}

  /// `flows` flows were cut off from the serving core this epoch; their
  /// `unserved_rate` went unserved and `penalty` was charged for it.
  virtual void on_quarantine(Hour /*hour*/, int /*flows*/,
                             double /*unserved_rate*/, double /*penalty*/) {}

  /// The surviving core cannot host the chain: a downtime epoch.
  virtual void on_blackout(Hour /*hour*/) {}

  /// Emergency recovery force-moved `migrations` VNFs off dead or
  /// unreachable switches at `cost` migration traffic.
  virtual void on_recovery(Hour /*hour*/, int /*migrations*/,
                           double /*cost*/) {}

  /// `truncated_solves` exponential solves behind this epoch's decision
  /// ran out of budget and fell back to their incumbent.
  virtual void on_budget_truncation(Hour /*hour*/, int /*truncated_solves*/) {}

  /// The graceful-degradation ladder stepped from rung `from` to `to`
  /// after epoch `hour` executed (always one rung at a time; `reason` is
  /// a short tag like "solve-budget", "policy-throw", "quarantine",
  /// "blackout", or "recovered"). The epoch that *triggered* the step
  /// still executed at `from`; the next epoch runs at `to`.
  virtual void on_ladder_transition(Hour /*hour*/, DegradationRung /*from*/,
                                    DegradationRung /*to*/,
                                    const std::string& /*reason*/) {}

  /// Sharded runs only (sim/sharded.hpp): the epoch's shard batch was
  /// solved — `resolved` shards re-ran their policy, `held` shards kept
  /// their placement under the bounded-staleness rule, out of a
  /// `churned`-flow churn applied this epoch. Fires after recovery and
  /// before on_epoch_end; the monolithic engine never emits it.
  virtual void on_shard_batch(Hour /*hour*/, int /*resolved*/, int /*held*/,
                              int /*churned*/) {}

  /// Sharded runs only: shard `shard` (named `name`) stepped its private
  /// degradation ladder from `from` to `to` for `reason` (same tags as
  /// on_ladder_transition, per shard). The default body forwards to
  /// on_ladder_transition, so observers written against the monolithic
  /// stream — including TraceRecorder's transition counter — see every
  /// per-shard step without overriding anything new.
  virtual void on_shard_ladder_transition(Hour hour, int /*shard*/,
                                          const std::string& /*name*/,
                                          DegradationRung from,
                                          DegradationRung to,
                                          const std::string& reason) {
    on_ladder_transition(hour, from, to, reason);
  }

  /// Sharded runs only: shard `shard` entered (or stayed in) failure
  /// quarantine after its policy clone threw for the `fail_streak`-th
  /// consecutive attempt; `required_clean` clean epochs (seeded backoff)
  /// must pass before its next re-solve attempt.
  virtual void on_shard_quarantine(Hour /*hour*/, int /*shard*/,
                                   const std::string& /*name*/,
                                   int /*fail_streak*/,
                                   int /*required_clean*/) {}

  /// Sharded runs only: a quarantined shard's backoff elapsed and its
  /// policy was re-attempted this epoch; `healed` reports whether the
  /// attempt completed (ending the quarantine) or threw again.
  virtual void on_shard_retry(Hour /*hour*/, int /*shard*/,
                              const std::string& /*name*/, bool /*healed*/) {}

  /// The epoch is fully costed; `decision` carries the final bookkeeping
  /// (policy costs plus the engine's fault stamps).
  virtual void on_epoch_end(Hour /*hour*/, const EpochDecision& /*decision*/) {}

  /// The horizon is exhausted; no further callbacks follow.
  virtual void on_run_end() {}

  /// Cooperative cancellation fired before epoch `hour` ran
  /// (SimConfig::cancel): the run is being abandoned mid-horizon and
  /// SimInterrupted is about to be thrown. Neither on_epoch_end for this
  /// hour nor on_run_end follows — the partial run must not be mistaken
  /// for a complete trace (the checkpoint layer reruns it on resume).
  virtual void on_interrupted(Hour /*hour*/) {}
};

/// Full record of one simulation run, accumulated by `TraceRecorder` from
/// the observer stream.
struct SimTrace {
  std::vector<EpochDecision> epochs;
  Placement initial_placement;
  double total_comm_cost = 0.0;
  double total_migration_cost = 0.0;
  /// Grand total: communication + policy migration + emergency recovery
  /// migration + quarantine penalties (flow and shard).
  double total_cost = 0.0;
  int total_vnf_migrations = 0;
  int total_vm_migrations = 0;

  // Fault accounting (all zero for a pristine run).
  int total_switch_failures = 0;
  int total_link_failures = 0;
  int total_repairs = 0;
  int total_recovery_migrations = 0;  ///< VNFs force-moved off failures
  double total_recovery_cost = 0.0;
  int quarantined_flow_epochs = 0;  ///< Σ per-epoch quarantined flow count
  double total_quarantine_penalty = 0.0;
  int downtime_epochs = 0;  ///< epochs the core could not host the chain
  /// Budget-truncated exponential solves across the run (policy fallbacks
  /// plus exhaustive-recovery refinements).
  int total_truncated_solves = 0;

  // Graceful-degradation ladder accounting (all zero when the ladder is
  // disabled or never tripped).
  int ladder_transitions = 0;    ///< rung changes (down steps + recoveries)
  int refresh_only_epochs = 0;   ///< epochs executed at kRefreshOnly
  int frozen_epochs = 0;         ///< epochs executed at kFrozen
  int policy_failures = 0;       ///< policy throws contained by the ladder
  /// Epochs the InvariantAuditor checked (0 when auditing is off).
  int audited_epochs = 0;

  // Shard accounting (sim/sharded.hpp; the monolithic engine counts as
  // one always-resolving shard — see EpochDecision::resolved_shards).
  int total_shard_resolves = 0;  ///< Σ per-epoch resolved shards
  int total_shard_holds = 0;     ///< Σ per-epoch held shards

  // Per-shard failure containment (sharded runs only; DESIGN.md §15).
  int quarantined_shard_epochs = 0;  ///< Σ per-epoch quarantined shards
  int total_shard_retries = 0;       ///< backoff re-solve attempts
  double total_shard_penalty = 0.0;  ///< SLA penalty for quarantined shards
};

/// The observer that builds `SimTrace`. The engine always installs one;
/// external code may also use it standalone to aggregate a custom event
/// stream into trace form.
class TraceRecorder final : public EpochObserver {
 public:
  void on_run_begin(Hour horizon, const Placement& initial) override {
    trace_.initial_placement = initial;
    trace_.epochs.reserve(static_cast<std::size_t>(horizon.value()));
  }

  void on_ladder_transition(Hour /*hour*/, DegradationRung /*from*/,
                            DegradationRung /*to*/,
                            const std::string& /*reason*/) override {
    ++trace_.ladder_transitions;
  }

  void on_epoch_end(Hour /*hour*/, const EpochDecision& d) override {
    if (d.rung == DegradationRung::kRefreshOnly) ++trace_.refresh_only_epochs;
    if (d.rung == DegradationRung::kFrozen) ++trace_.frozen_epochs;
    if (d.policy_failed) ++trace_.policy_failures;
    trace_.total_comm_cost += d.comm_cost;
    trace_.total_migration_cost += d.migration_cost;
    trace_.total_vnf_migrations += d.vnf_migrations;
    trace_.total_vm_migrations += d.vm_migrations;
    trace_.total_switch_failures += d.switch_failures;
    trace_.total_link_failures += d.link_failures;
    trace_.total_repairs += d.repairs;
    trace_.total_recovery_migrations += d.recovery_migrations;
    trace_.total_recovery_cost += d.recovery_cost;
    trace_.quarantined_flow_epochs += d.quarantined_flows;
    trace_.total_quarantine_penalty += d.quarantine_penalty;
    trace_.total_truncated_solves += d.truncated_solves;
    trace_.total_shard_resolves += d.resolved_shards;
    trace_.total_shard_holds += d.held_shards;
    trace_.quarantined_shard_epochs += d.quarantined_shards;
    trace_.total_shard_retries += d.shard_retries;
    trace_.total_shard_penalty += d.shard_penalty;
    if (d.service_down) ++trace_.downtime_epochs;
    trace_.epochs.push_back(d);
  }

  void on_run_end() override {
    trace_.total_cost = trace_.total_comm_cost +
                        trace_.total_migration_cost +
                        trace_.total_recovery_cost +
                        trace_.total_quarantine_penalty +
                        trace_.total_shard_penalty;
  }

  /// Hands the accumulated trace out (recorder is spent afterwards).
  SimTrace take() { return std::move(trace_); }

 private:
  SimTrace trace_;
};

}  // namespace ppdc
