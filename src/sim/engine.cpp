#include "sim/engine.hpp"

#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "core/chain_search.hpp"
#include "core/cost_model.hpp"
#include "fault/degraded.hpp"
#include "graph/apsp.hpp"
#include "graph/graph.hpp"
#include "util/ids.hpp"
#include "util/require.hpp"
#include "workload/traffic.hpp"

namespace ppdc {

SimTrace run_simulation(const AllPairs& apsp,
                        const std::vector<VmFlow>& base_flows, int n,
                        const SimConfig& config, MigrationPolicy& policy,
                        EpochObserver* observer) {
  PPDC_REQUIRE(!base_flows.empty(), "simulation needs at least one flow");
  PPDC_REQUIRE(config.hours >= 1, "simulation needs at least one hour");
  PPDC_REQUIRE(config.fault.mu >= 0.0,
               "negative recovery migration coefficient");
  PPDC_REQUIRE(config.fault.quarantine_penalty >= 0.0,
               "negative quarantine penalty");
  PPDC_REQUIRE(config.ladder.max_quarantined_fraction >= 0.0 &&
                   config.ladder.max_quarantined_fraction <= 1.0,
               "ladder quarantine trip must be a fraction in [0,1]");
  PPDC_REQUIRE(config.ladder.trip_truncations >= 0,
               "negative ladder truncation trip");
  PPDC_REQUIRE(config.ladder.recovery_epochs >= 1,
               "ladder recovery needs at least one clean epoch");
  PPDC_REQUIRE(config.audit.rel_tol >= 0.0 && config.audit.abs_tol >= 0.0,
               "negative audit tolerance");

  const Graph& graph = apsp.graph();
  std::optional<FaultInjector> injector;
  if (!config.faults.empty()) {
    injector.emplace(graph, config.faults);  // validates shape + ordering
    PPDC_REQUIRE(config.faults.front().epoch >= Hour{1},
                 "fault events must start at epoch 1 (the initial placement "
                 "sees the pristine fabric)");
  }

  const std::vector<double> base_rates = rates_of(base_flows);
  const std::vector<int> groups = groups_of(base_flows);
  const int n_groups = num_groups(groups);

  // The diurnal model rescales whole groups by one factor per hour
  // (Eq. 9), so the cost model can serve each epoch by group
  // recombination. A custom rate schedule may change rates arbitrarily per
  // flow and keeps the full per-flow rescan.
  const bool grouped = !config.rate_schedule;

  auto rates_at = [&](Hour hour) {
    if (!config.rate_schedule) {
      return diurnal_rates_grouped(config.diurnal, base_rates, groups, hour);
    }
    std::vector<double> r = config.rate_schedule(hour);
    PPDC_REQUIRE(r.size() == base_flows.size(),
                 "rate_schedule(hour " + std::to_string(hour.value()) +
                     ") returned " + std::to_string(r.size()) +
                     " rates for " + std::to_string(base_flows.size()) +
                     " flows");
    for (std::size_t i = 0; i < r.size(); ++i) {
      PPDC_REQUIRE(r[i] >= 0.0,
                   "rate_schedule(hour " + std::to_string(hour.value()) +
                       ") returned a negative rate for flow " +
                       std::to_string(i));
    }
    return r;
  };
  auto scales_at = [&](Hour hour) {
    return config.diurnal.group_scales(hour, n_groups);
  };

  SimState state;
  state.flows = base_flows;

  // Hour 0: initial traffic-optimal placement (TOP, Algorithm 3) on the
  // pristine fabric.
  set_rates(state.flows, rates_at(Hour{0}));
  CostModel model(apsp, state.flows);
  if (grouped) {
    model.enable_group_refresh(base_rates, groups);
    model.refresh_scaled(scales_at(Hour{0}));
  }
  const PlacementResult initial =
      solve_top_dp(model, n, config.initial_placement);
  state.placement = initial.placement;

  // The recorder is the engine's own trace-building observer; an external
  // observer, when present, sees the identical event stream, and so does
  // the per-run invariant auditor when auditing is on.
  TraceRecorder recorder;
  std::optional<InvariantAuditor> auditor;
  if (config.audit.enabled) auditor.emplace(config.audit, policy.name());
  auto emit = [&](auto&& fn) {
    fn(static_cast<EpochObserver&>(recorder));
    if (observer != nullptr) fn(*observer);
    if (auditor) fn(*auditor);
  };
  emit([&](EpochObserver& o) {
    o.on_run_begin(Hour{config.hours}, initial.placement);
  });

  // Fault-epoch machinery; both stay null while the fabric is pristine, so
  // a fault-free run never deviates from the incremental fast path.
  std::unique_ptr<DegradedNetwork> degraded;
  std::unique_ptr<CostModel> degraded_model;
  bool base_resync_pending = false;  ///< primary bases stale after faults

  // Graceful-degradation ladder state (DESIGN.md §12). The rung is the
  // mode the *next* epoch executes at; transitions are evaluated after
  // each epoch is costed and emitted.
  DegradationRung rung = DegradationRung::kFull;
  int clean_streak = 0;
  double last_comm_cost = 0.0;  ///< stale estimate charged at kFrozen

  for (const Hour hour : id_range(Hour{0}, Hour{config.hours})) {
    if (config.cancel != nullptr &&
        config.cancel->load(std::memory_order_relaxed)) {
      emit([&](EpochObserver& o) { o.on_interrupted(hour); });
      throw SimInterrupted("simulation cancelled before epoch " +
                           std::to_string(hour.value()) + " of " +
                           std::to_string(config.hours));
    }
    emit([&](EpochObserver& o) { o.on_epoch_begin(hour); });

    // 1. Apply this epoch's fault events and refresh the degraded view.
    EpochFaults events;
    if (injector && hour >= Hour{1}) events = injector->advance_to(hour);
    if (events.switch_failures + events.link_failures + events.repairs > 0) {
      emit([&](EpochObserver& o) { o.on_faults(hour, events); });
    }
    const bool faults_active = injector && injector->any_faults_active();
    if (events.topology_changed) {
      degraded_model.reset();
      degraded.reset();
      if (faults_active) {
        degraded = std::make_unique<DegradedNetwork>(
            graph, injector->dead_nodes(), injector->dead_edges());
      }
    }
    const bool blackout = faults_active && !degraded->core_can_host(n);

    // 2. This epoch's traffic. Flows cut off from the serving core are
    // quarantined: their rate is zeroed for the epoch (they cannot be
    // served) and an SLA penalty is charged for the unserved demand.
    std::vector<double> rates = rates_at(hour);
    int quarantined = 0;
    double unserved = 0.0;
    if (faults_active) {
      for (std::size_t i = 0; i < state.flows.size(); ++i) {
        const VmFlow& f = state.flows[i];
        const bool served = !blackout && degraded->in_core(f.src_host) &&
                            degraded->in_core(f.dst_host);
        if (!served) {
          ++quarantined;
          unserved += rates[i];
          rates[i] = 0.0;
        }
      }
    }
    set_rates(state.flows, rates);
    const double epoch_penalty = config.fault.quarantine_penalty * unserved;
    if (quarantined > 0) {
      emit([&](EpochObserver& o) {
        o.on_quarantine(hour, quarantined, unserved, epoch_penalty);
      });
    }

    int recovery_migrations = 0;
    double recovery_cost = 0.0;
    int recovery_truncations = 0;
    EpochDecision d;
    // The epoch executes at the current rung; stamped into the decision
    // below. At kFrozen the per-epoch cost refresh is skipped (rebuilds on
    // topology changes still happen — emergency recovery needs a valid
    // metric), the policy is skipped, and a stale comm estimate is
    // charged.
    const bool frozen = config.ladder.enabled &&
                        rung == DegradationRung::kFrozen;
    CostModel* m = &model;

    if (blackout) {
      // The surviving core cannot host an n-VNF chain: nothing is served.
      // The stranded placement stays where it is and is emergency-migrated
      // once enough switches return.
      d.service_down = true;
      emit([&](EpochObserver& o) { o.on_blackout(hour); });
    } else {
      // 3. Cost-model maintenance. Degraded epochs use a dedicated model
      // over the masked metric, restricted to the core's alive switches;
      // it is rebuilt on topology changes and fully re-scanned otherwise
      // (quarantine breaks the base-rate x scale decomposition, so the
      // group fast path does not apply). The primary model is resynced
      // lazily when the fabric heals.
      if (faults_active) {
        if (!degraded_model) {
          degraded_model =
              std::make_unique<CostModel>(degraded->apsp(), state.flows);
          degraded_model->restrict_candidates(degraded->core_switches());
        } else if (!frozen) {
          degraded_model->refresh();
        }
        m = degraded_model.get();
        base_resync_pending = true;
      } else if (!frozen) {
        if (base_resync_pending) {
          // Heal: endpoints may have moved while the degraded model was
          // authoritative; resync the per-group base vectors before
          // recombining.
          if (grouped) model.refresh();
          base_resync_pending = false;
        }
        if (grouped) {
          model.refresh_scaled(scales_at(hour));
        } else {
          model.refresh();
        }
      }

      // 4. Emergency re-placement: every VNF must sit on an alive switch
      // of the serving core before the policy reasons about the epoch.
      // Recovery distance is measured on the pristine metric — the bits of
      // a VNF stranded on a dead switch still travel that far — so the
      // cost is finite even when the old host is down or unreachable.
      bool stranded = false;
      if (faults_active) {
        for (const NodeId s : state.placement) {
          if (!degraded->in_core(s)) {
            stranded = true;
            break;
          }
        }
      }
      if (stranded) {
        const PlacementResult rec = solve_top_dp(*m, n, config.fault.placement);
        Placement target = rec.placement;
        if (config.fault.exhaustive_recovery) {
          ChainSearchConfig cc;
          cc.budget = config.fault.budget;
          cc.initial = target;  // degradation floor: the DP answer
          const ChainSearchResult refined = solve_top_exhaustive(*m, n, cc);
          if (!refined.proven_optimal) ++recovery_truncations;
          target = refined.placement;
        }
        double distance = 0.0;
        for (std::size_t j = 0; j < state.placement.size(); ++j) {
          if (state.placement[j] == target[j]) continue;
          ++recovery_migrations;
          distance += apsp.cost(state.placement[j], target[j]);
        }
        recovery_cost = config.fault.mu * distance;
        state.placement = std::move(target);
        emit([&](EpochObserver& o) {
          o.on_recovery(hour, recovery_migrations, recovery_cost);
        });
      }

      // 5. The policy reacts to the epoch — at rung kFull. kRefreshOnly
      // holds the placement and re-charges it on the refreshed metric;
      // kFrozen holds the placement *and* charges the previous epoch's
      // (stale) comm estimate. With the ladder enabled, a policy throw is
      // contained: the pre-policy state is restored, the epoch is charged
      // at the held placement, and the throw becomes a trip signal.
      if (hour == Hour{0}) {
        // The initial placement is already optimal for hour 0; policies
        // only react to *changes*, so hour 0 just charges the
        // communication cost.
        d.comm_cost = model.communication_cost(state.placement);
      } else if (frozen) {
        d.comm_cost = last_comm_cost;
      } else if (config.ladder.enabled &&
                 rung == DegradationRung::kRefreshOnly) {
        d.comm_cost = m->communication_cost(state.placement);
      } else {
        std::optional<SimState> snapshot;
        if (config.ladder.enabled) snapshot = state;
        try {
          d = policy.on_epoch(*m, state);
          // Contract check before the decision is costed into the trace:
          // the placement must be n distinct in-range switches, all alive
          // and inside the serving core.
          try {
            PPDC_REQUIRE(state.placement.size() ==
                             static_cast<std::size_t>(n),
                         "placement length changed");
            validate_placement(m->apsp().graph(), state.placement);
            if (faults_active) {
              for (const NodeId s : state.placement) {
                PPDC_REQUIRE(degraded->in_core(s),
                             "VNF placed on a dead or unreachable switch");
              }
            }
          } catch (const PpdcError& e) {
            throw PpdcError("policy '" + policy.name() +
                            "' produced an invalid placement at epoch " +
                            std::to_string(hour.value()) + ": " + e.what());
          }
        } catch (const PpdcError&) {
          if (!config.ladder.enabled) throw;
          // Contain the failure: roll back whatever the policy did
          // (flows and placement; the cost model was not patched, so it
          // still matches the restored state) and hold position.
          state = std::move(*snapshot);
          d = EpochDecision{};
          d.policy_failed = true;
          d.comm_cost = m->communication_cost(state.placement);
        }
        if (!d.policy_failed) {
          // PLAN/MCF may have moved endpoints: patch only the touched
          // flows (CostModel reads the flow vector it was bound to).
          // Epochs without endpoint moves need no refresh at all — rates
          // are untouched by policies.
          if (!d.moved_flows.empty()) {
            m->endpoints_moved(d.moved_flows);
          }
          if (config.downtime_factor > 0.0) {
            d.migration_cost += config.downtime_factor * m->total_rate() *
                                d.migration_distance;
          }
        }
      }
    }

    // 6. Stamp the epoch's fault bookkeeping and hand it to the sinks
    // (the recorder accumulates the trace; an external observer watches).
    d.switch_failures = events.switch_failures;
    d.link_failures = events.link_failures;
    d.repairs = events.repairs;
    d.recovery_migrations = recovery_migrations;
    d.recovery_cost = recovery_cost;
    d.quarantined_flows = quarantined;
    d.quarantine_penalty = epoch_penalty;
    d.truncated_solves += recovery_truncations;
    d.rung = rung;
    // The monolithic engine is one shard: it resolved unless the epoch
    // held the placement (refresh-only / frozen) or nothing was served.
    if (blackout) {
      d.resolved_shards = 0;
      d.held_shards = 0;
    } else if (frozen || (config.ladder.enabled &&
                          rung == DegradationRung::kRefreshOnly &&
                          hour != Hour{0})) {
      d.resolved_shards = 0;
      d.held_shards = 1;
    } else {
      d.resolved_shards = 1;
      d.held_shards = 0;
    }
    if (d.truncated_solves > 0) {
      emit([&](EpochObserver& o) {
        o.on_budget_truncation(hour, d.truncated_solves);
      });
    }
    emit([&](EpochObserver& o) { o.on_epoch_end(hour, d); });
    last_comm_cost = d.comm_cost;

    // 7. Ladder transition: evaluate this epoch's stress signals and step
    // one rung down (or, after a clean streak, one rung up). The epoch
    // that tripped still executed at the old rung; the new rung governs
    // the next epoch.
    if (config.ladder.enabled) {
      const char* trip = nullptr;
      if (d.policy_failed) {
        trip = "policy-throw";
      } else if (blackout) {
        trip = "blackout";
      } else if (config.ladder.trip_truncations > 0 &&
                 d.truncated_solves >= config.ladder.trip_truncations) {
        trip = "solve-budget";
      } else if (static_cast<double>(quarantined) >
                 config.ladder.max_quarantined_fraction *
                     static_cast<double>(state.flows.size())) {
        trip = "quarantine";
      }
      if (trip != nullptr) {
        clean_streak = 0;
        if (rung != DegradationRung::kFrozen) {
          const DegradationRung from = rung;
          rung = static_cast<DegradationRung>(static_cast<int>(rung) + 1);
          emit([&](EpochObserver& o) {
            o.on_ladder_transition(hour, from, rung, trip);
          });
        }
      } else {
        ++clean_streak;
        if (rung != DegradationRung::kFull &&
            clean_streak >= config.ladder.recovery_epochs) {
          const DegradationRung from = rung;
          rung = static_cast<DegradationRung>(static_cast<int>(rung) - 1);
          clean_streak = 0;
          emit([&](EpochObserver& o) {
            o.on_ladder_transition(hour, from, rung, "recovered");
          });
        }
      }
    }

    // 8. Runtime invariant audit of the fully costed epoch (opt-in).
    if (auditor) {
      AuditContext actx;
      actx.epoch = hour;
      actx.model = m;
      actx.state = &state;
      actx.decision = &d;
      actx.degraded = degraded.get();
      actx.injector = injector ? &*injector : nullptr;
      actx.n = n;
      auditor->check_epoch(actx);
    }
  }
  emit([&](EpochObserver& o) { o.on_run_end(); });
  SimTrace trace = recorder.take();
  if (auditor) {
    trace.audited_epochs = auditor->checked_epochs();
    auditor->check_run(trace);
  }
  return trace;
}

}  // namespace ppdc
