#include "sim/engine.hpp"

#include "util/require.hpp"

namespace ppdc {

SimTrace run_simulation(const AllPairs& apsp,
                        const std::vector<VmFlow>& base_flows, int n,
                        const SimConfig& config, MigrationPolicy& policy) {
  PPDC_REQUIRE(!base_flows.empty(), "simulation needs at least one flow");
  PPDC_REQUIRE(config.hours >= 1, "simulation needs at least one hour");

  std::vector<double> base_rates;
  std::vector<int> groups;
  base_rates.reserve(base_flows.size());
  groups.reserve(base_flows.size());
  for (const auto& f : base_flows) {
    base_rates.push_back(f.rate);
    groups.push_back(f.group);
  }

  auto rates_at = [&](int hour) {
    if (config.rate_schedule) return config.rate_schedule(hour);
    return diurnal_rates_grouped(config.diurnal, base_rates, groups, hour);
  };

  SimState state;
  state.flows = base_flows;

  // Hour 0: initial traffic-optimal placement (TOP, Algorithm 3).
  set_rates(state.flows, rates_at(0));
  CostModel model(apsp, state.flows);
  const PlacementResult initial =
      solve_top_dp(model, n, config.initial_placement);
  state.placement = initial.placement;

  SimTrace trace;
  trace.initial_placement = initial.placement;

  for (int hour = 0; hour < config.hours; ++hour) {
    set_rates(state.flows, rates_at(hour));
    model.refresh();
    EpochDecision d;
    if (hour == 0) {
      // The initial placement is already optimal for hour 0; policies only
      // react to *changes*, so hour 0 just charges the communication cost.
      d.comm_cost = model.communication_cost(state.placement);
    } else {
      d = policy.on_epoch(model, state);
      // PLAN/MCF may have moved endpoints: keep the model coherent for the
      // next refresh (CostModel reads the flow vector it was bound to).
      model.refresh();
      if (config.downtime_factor > 0.0) {
        d.migration_cost += config.downtime_factor * model.total_rate() *
                            d.migration_distance;
      }
    }
    trace.total_comm_cost += d.comm_cost;
    trace.total_migration_cost += d.migration_cost;
    trace.total_vnf_migrations += d.vnf_migrations;
    trace.total_vm_migrations += d.vm_migrations;
    trace.epochs.push_back(d);
  }
  trace.total_cost = trace.total_comm_cost + trace.total_migration_cost;
  return trace;
}

}  // namespace ppdc
