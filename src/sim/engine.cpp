#include "sim/engine.hpp"

#include "util/require.hpp"

namespace ppdc {

SimTrace run_simulation(const AllPairs& apsp,
                        const std::vector<VmFlow>& base_flows, int n,
                        const SimConfig& config, MigrationPolicy& policy) {
  PPDC_REQUIRE(!base_flows.empty(), "simulation needs at least one flow");
  PPDC_REQUIRE(config.hours >= 1, "simulation needs at least one hour");

  const std::vector<double> base_rates = rates_of(base_flows);
  const std::vector<int> groups = groups_of(base_flows);
  const int n_groups = num_groups(groups);

  // The diurnal model rescales whole groups by one factor per hour
  // (Eq. 9), so the cost model can serve each epoch by group
  // recombination. A custom rate schedule may change rates arbitrarily per
  // flow and keeps the full per-flow rescan.
  const bool grouped = !config.rate_schedule;

  auto rates_at = [&](int hour) {
    if (config.rate_schedule) return config.rate_schedule(hour);
    return diurnal_rates_grouped(config.diurnal, base_rates, groups, hour);
  };
  auto scales_at = [&](int hour) {
    return config.diurnal.group_scales(hour, n_groups);
  };

  SimState state;
  state.flows = base_flows;

  // Hour 0: initial traffic-optimal placement (TOP, Algorithm 3).
  set_rates(state.flows, rates_at(0));
  CostModel model(apsp, state.flows);
  if (grouped) {
    model.enable_group_refresh(base_rates, groups);
    model.refresh_scaled(scales_at(0));
  }
  const PlacementResult initial =
      solve_top_dp(model, n, config.initial_placement);
  state.placement = initial.placement;

  SimTrace trace;
  trace.initial_placement = initial.placement;

  for (int hour = 0; hour < config.hours; ++hour) {
    set_rates(state.flows, rates_at(hour));
    if (grouped) {
      model.refresh_scaled(scales_at(hour));
    } else {
      model.refresh();
    }
    EpochDecision d;
    if (hour == 0) {
      // The initial placement is already optimal for hour 0; policies only
      // react to *changes*, so hour 0 just charges the communication cost.
      d.comm_cost = model.communication_cost(state.placement);
    } else {
      d = policy.on_epoch(model, state);
      // PLAN/MCF may have moved endpoints: patch only the touched flows
      // (CostModel reads the flow vector it was bound to). Epochs without
      // endpoint moves need no refresh at all — rates are untouched by
      // policies.
      if (!d.moved_flows.empty()) {
        model.endpoints_moved(d.moved_flows);
      }
      if (config.downtime_factor > 0.0) {
        d.migration_cost += config.downtime_factor * model.total_rate() *
                            d.migration_distance;
      }
    }
    trace.total_comm_cost += d.comm_cost;
    trace.total_migration_cost += d.migration_cost;
    trace.total_vnf_migrations += d.vnf_migrations;
    trace.total_vm_migrations += d.vm_migrations;
    trace.epochs.push_back(d);
  }
  trace.total_cost = trace.total_comm_cost + trace.total_migration_cost;
  return trace;
}

}  // namespace ppdc
