// Repeated-trial experiment runner.
//
// Every §VI data point is "an average of 20 runs with a 95% confidence
// interval". This runner regenerates the workload per trial from a
// deterministic seed stream, runs every policy on identical copies of the
// state, and aggregates totals plus per-hour series (Fig. 11(a)/(b) plot
// the per-hour breakdown, Fig. 11(c)/(d) the totals). Each trial × policy
// × hour rides the engine's incremental group-scaled cost-model refresh
// (see sim/engine.hpp), which is what keeps Fig. 8/11-style sweeps with
// tens of thousands of flows tractable.
//
// Execution model: the trials × policies grid is decomposed into
// independent SimJobs dispatched to a worker pool. Each job derives its
// own policy instance from the caller's prototype via
// MigrationPolicy::clone() and consumes a pre-split, trial-indexed RNG
// stream, so no mutable state is shared between jobs. Per-job
// RunningStats are merged in deterministic trial order, which makes the
// result bit-identical for every thread count (the merge schedule is
// fixed, not a function of worker interleaving). For single-sample
// bundles merge() degenerates to Welford's add() on the mean, so the
// reported means also match the historical serial runner bit for bit.
#pragma once

#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "topology/topology.hpp"
#include "util/stats.hpp"
#include "workload/vm_placement.hpp"

namespace ppdc {

/// Experiment-level configuration.
struct ExperimentConfig {
  int trials = 20;
  std::uint64_t seed = 42;
  VmPlacementConfig workload;  ///< how flows are generated each trial
  int sfc_length = 7;          ///< n
  /// Worker threads of the SimJob pool. 0 = auto: hardware concurrency
  /// (1 under PPDC_TSAN builds, where parallel runs are opt-in so the
  /// default instrumented suite stays serial). Any value yields
  /// bit-identical results; only wall-clock changes.
  int threads = 0;
  SimConfig sim;
};

/// Aggregated outcome of one policy across trials.
struct PolicyStats {
  std::string name;
  MeanCi total_cost;
  MeanCi comm_cost;
  MeanCi migration_cost;
  MeanCi vnf_migrations;
  MeanCi vm_migrations;
  // Fault accounting (all zero when the simulation runs fault-free).
  MeanCi recovery_migrations;       ///< VNFs force-moved off failures
  MeanCi recovery_cost;             ///< emergency migration traffic
  MeanCi quarantined_flow_epochs;   ///< Σ per-epoch quarantined flows
  MeanCi quarantine_penalty;        ///< SLA penalty for unserved demand
  MeanCi downtime_epochs;           ///< epochs with no feasible placement
  MeanCi truncated_solves;          ///< budget-truncated exponential solves
  /// Per-hour mean of comm + migration cost and of migration counts.
  std::vector<MeanCi> hourly_cost;
  std::vector<MeanCi> hourly_migrations;
};

/// Resolves an ExperimentConfig::threads request to the worker count the
/// pool will actually use: values >= 1 pass through; 0 (auto) means
/// std::thread::hardware_concurrency(), except under PPDC_TSAN builds
/// where auto is 1.
int resolve_experiment_threads(int requested);

/// Runs every policy over `config.trials` independently seeded workloads.
/// All policies see the same workload in each trial (paired comparison).
///
/// `policies` are prototypes: each (trial, policy) SimJob runs on a fresh
/// `clone()` of its prototype, so the instances passed in are never
/// mutated and stateful policies start every trial from a clean slate.
std::vector<PolicyStats> run_experiment(
    const Topology& topo, const AllPairs& apsp, const ExperimentConfig& config,
    const std::vector<const MigrationPolicy*>& policies);

}  // namespace ppdc
