// Repeated-trial experiment runner.
//
// Every §VI data point is "an average of 20 runs with a 95% confidence
// interval". This runner regenerates the workload per trial from a
// deterministic seed stream, runs every policy on identical copies of the
// state, and aggregates totals plus per-hour series (Fig. 11(a)/(b) plot
// the per-hour breakdown, Fig. 11(c)/(d) the totals). Each trial × policy
// × hour rides the engine's incremental group-scaled cost-model refresh
// (see sim/engine.hpp), which is what keeps Fig. 8/11-style sweeps with
// tens of thousands of flows tractable.
#pragma once

#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "topology/topology.hpp"
#include "util/stats.hpp"
#include "workload/vm_placement.hpp"

namespace ppdc {

/// Experiment-level configuration.
struct ExperimentConfig {
  int trials = 20;
  std::uint64_t seed = 42;
  VmPlacementConfig workload;  ///< how flows are generated each trial
  int sfc_length = 7;          ///< n
  SimConfig sim;
};

/// Aggregated outcome of one policy across trials.
struct PolicyStats {
  std::string name;
  MeanCi total_cost;
  MeanCi comm_cost;
  MeanCi migration_cost;
  MeanCi vnf_migrations;
  MeanCi vm_migrations;
  // Fault accounting (all zero when the simulation runs fault-free).
  MeanCi recovery_migrations;       ///< VNFs force-moved off failures
  MeanCi recovery_cost;             ///< emergency migration traffic
  MeanCi quarantined_flow_epochs;   ///< Σ per-epoch quarantined flows
  MeanCi quarantine_penalty;        ///< SLA penalty for unserved demand
  MeanCi downtime_epochs;           ///< epochs with no feasible placement
  /// Per-hour mean of comm + migration cost and of migration counts.
  std::vector<MeanCi> hourly_cost;
  std::vector<MeanCi> hourly_migrations;
};

/// Runs every policy over `config.trials` independently seeded workloads.
/// All policies see the same workload in each trial (paired comparison).
std::vector<PolicyStats> run_experiment(
    const Topology& topo, const AllPairs& apsp, const ExperimentConfig& config,
    const std::vector<MigrationPolicy*>& policies);

}  // namespace ppdc
