// Repeated-trial experiment runner.
//
// Every §VI data point is "an average of 20 runs with a 95% confidence
// interval". This runner regenerates the workload per trial from a
// deterministic seed stream, runs every policy on identical copies of the
// state, and aggregates totals plus per-hour series (Fig. 11(a)/(b) plot
// the per-hour breakdown, Fig. 11(c)/(d) the totals). Each trial × policy
// × hour rides the engine's incremental group-scaled cost-model refresh
// (see sim/engine.hpp), which is what keeps Fig. 8/11-style sweeps with
// tens of thousands of flows tractable.
//
// Execution model: the trials × policies grid is decomposed into
// independent SimJobs dispatched to a worker pool. Each job derives its
// own policy instance from the caller's prototype via
// MigrationPolicy::clone() and consumes a pre-split, trial-indexed RNG
// stream, so no mutable state is shared between jobs. Per-job
// RunningStats are merged in deterministic trial order, which makes the
// result bit-identical for every thread count (the merge schedule is
// fixed, not a function of worker interleaving). For single-sample
// bundles merge() degenerates to Welford's add() on the mean, so the
// reported means also match the historical serial runner bit for bit.
//
// Robustness (DESIGN.md §10): with `checkpoint_path` set, every completed
// (trial, policy) job is journaled durably (sim/checkpoint.hpp) and a
// relaunched run validates the config fingerprint, skips journaled cells
// and merges them in the same fixed trial order — bit-identical to an
// uninterrupted run at any thread count. `keep_going` quarantines
// throwing policy clones into per-policy failure records instead of
// aborting the grid; `retry_limit` bounds reruns of TransientError jobs;
// SimConfig::cancel wires SIGINT/SIGTERM into a clean partial stop
// (ExperimentInterrupted) with the journal already flushed.
#pragma once

#include <string>
#include <vector>

#include "graph/apsp.hpp"
#include "sim/engine.hpp"
#include "sim/observer.hpp"
#include "sim/policy.hpp"
#include "sim/sharded.hpp"
#include "topology/topology.hpp"
#include "util/require.hpp"
#include "util/stats.hpp"
#include "workload/vm_placement.hpp"

namespace ppdc {

/// Experiment-level configuration.
struct ExperimentConfig {
  int trials = 20;
  std::uint64_t seed = 42;
  VmPlacementConfig workload;  ///< how flows are generated each trial
  int sfc_length = 7;          ///< n
  /// Worker threads of the SimJob pool. 0 = auto: hardware concurrency
  /// (1 under PPDC_TSAN builds, where parallel runs are opt-in so the
  /// default instrumented suite stays serial). Any value yields
  /// bit-identical results; only wall-clock changes.
  int threads = 0;
  /// Crash-safe journal path (empty = no checkpointing). When the file
  /// exists its fingerprint is validated against this experiment and the
  /// journaled jobs are skipped; when it does not, it is created. Never
  /// part of the fingerprint itself.
  std::string checkpoint_path;
  /// Failure containment: instead of rethrowing the first failing job in
  /// grid order, quarantine the failing (trial, policy) cell — record the
  /// exception text in PolicyStats::failures, leave that cell's samples
  /// absent, and keep running the rest of the grid untouched.
  bool keep_going = false;
  /// Extra attempts for jobs that fail with TransientError (0 = fail on
  /// first throw). Each retry runs a fresh policy clone that is handed a
  /// deterministically resplit per-attempt RNG stream via
  /// MigrationPolicy::reseed; deterministic errors (plain PpdcError) are
  /// never retried.
  int retry_limit = 0;
  SimConfig sim;
  /// Pod-sharded streaming execution (sim/sharded.hpp). When enabled,
  /// each trial regenerates a StreamingWorkload from its per-trial RNG
  /// stream (same seeder order as the static path, so trial t's initial
  /// flows match the monolithic runner bit for bit) and every job runs
  /// run_sharded_simulation over ShardMap::by_ingress_pod(topo). The
  /// churn/staleness knobs are fingerprinted; `sharded.threads` (like
  /// `threads` above) is not — any value is bit-identical.
  ShardedStreamingConfig sharded;
};

/// One (trial, policy) cell that was quarantined under keep_going.
struct JobFailure {
  int trial = 0;
  int attempts = 1;    ///< total attempts, including retries
  std::string error;   ///< what() of the final attempt
};

/// Aggregated outcome of one policy across trials.
struct PolicyStats {
  std::string name;
  MeanCi total_cost;
  MeanCi comm_cost;
  MeanCi migration_cost;
  MeanCi vnf_migrations;
  MeanCi vm_migrations;
  // Fault accounting (all zero when the simulation runs fault-free).
  MeanCi recovery_migrations;       ///< VNFs force-moved off failures
  MeanCi recovery_cost;             ///< emergency migration traffic
  MeanCi quarantined_flow_epochs;   ///< Σ per-epoch quarantined flows
  MeanCi quarantine_penalty;        ///< SLA penalty for unserved demand
  MeanCi downtime_epochs;           ///< epochs with no feasible placement
  MeanCi truncated_solves;          ///< budget-truncated exponential solves
  // Graceful-degradation ladder accounting (all zero with the ladder off).
  MeanCi ladder_transitions;        ///< rung changes per run
  MeanCi refresh_only_epochs;       ///< epochs executed at kRefreshOnly
  MeanCi frozen_epochs;             ///< epochs executed at kFrozen
  MeanCi policy_failures;           ///< policy throws contained per run
  // Shard accounting (the monolithic engine counts one always-resolving
  // shard per epoch; see EpochDecision::resolved_shards).
  MeanCi shard_resolves;            ///< Σ per-epoch re-solved shards
  MeanCi shard_holds;               ///< Σ per-epoch held shards
  // Shard failure containment (DESIGN.md §15; zero on monolithic runs).
  MeanCi quarantined_shard_epochs;  ///< Σ per-epoch failure-quarantined shards
  MeanCi shard_retries;             ///< quarantine re-solve attempts per run
  MeanCi shard_penalty;             ///< Σ quarantine_sla · served rate
  /// Per-hour mean of comm + migration cost and of migration counts.
  std::vector<MeanCi> hourly_cost;
  std::vector<MeanCi> hourly_migrations;
  /// Trials that contributed samples. Equal to ExperimentConfig::trials
  /// unless keep_going quarantined cells of this policy; 0 means every
  /// trial failed and all MeanCi fields above are absent (not zero-cost).
  int completed_trials = 0;
  /// Quarantined cells of this policy (empty unless keep_going).
  std::vector<JobFailure> failures;
};

/// One simulation run's samples, and the per-policy accumulator: every
/// field is a RunningStats so a job result and the reduction target are
/// the same type, merged with RunningStats::merge. The reduction order is
/// fixed (trial-major), never a function of worker interleaving — that
/// alone makes every thread count bit-identical. On top of that, merging
/// a single-sample bundle runs Welford's add() arithmetic on the mean
/// (Chan's update degenerates for nb = 1), so reported means also match
/// the historical serial loop bit for bit (see stats_test.cpp). Public
/// because the checkpoint journal persists one bundle per completed job
/// (raw IEEE bits, sim/checkpoint.hpp) and must restore it bit-exactly.
struct StatsBundle {
  RunningStats total, comm, migration, vnf_moves, vm_moves, recovery_moves,
      recovery_cost, quarantined, penalty, downtime, truncated,
      ladder_transitions, refresh_only, frozen, policy_failures,
      shard_resolves, shard_holds, shard_quarantines, shard_retries,
      shard_penalty;
  std::vector<RunningStats> hourly_cost, hourly_moves;

  explicit StatsBundle(std::size_t hours = 0)
      : hourly_cost(hours), hourly_moves(hours) {}

  /// The 20 scalar accumulators, in journal serialization order.
  static constexpr std::size_t kScalarFields = 20;

  void add(const SimTrace& trace);
  void merge(const StatsBundle& other);
};

/// Thrown by run_experiment when SimConfig::cancel flips mid-grid (the
/// SIGINT/SIGTERM path of bench_common). Every job that completed before
/// the stop is already durable in the journal (when one is configured);
/// partial_summary() reports per-policy completion so the harness can
/// print what the interrupted campaign already knows.
class ExperimentInterrupted : public PpdcError {
 public:
  ExperimentInterrupted(const std::string& what, std::string summary)
      : PpdcError(what), summary_(std::move(summary)) {}

  /// Human-readable per-policy "completed trials / total" table.
  const std::string& partial_summary() const noexcept { return summary_; }

 private:
  std::string summary_;
};

/// Resolves an ExperimentConfig::threads request to the worker count the
/// pool will actually use: values >= 1 pass through; 0 (auto) means
/// std::thread::hardware_concurrency(), except under PPDC_TSAN builds
/// where auto is 1.
int resolve_experiment_threads(int requested);

/// Runs every policy over `config.trials` independently seeded workloads.
/// All policies see the same workload in each trial (paired comparison).
///
/// `policies` are prototypes: each (trial, policy) SimJob runs on a fresh
/// `clone()` of its prototype, so the instances passed in are never
/// mutated and stateful policies start every trial from a clean slate.
std::vector<PolicyStats> run_experiment(
    const Topology& topo, const AllPairs& apsp, const ExperimentConfig& config,
    const std::vector<const MigrationPolicy*>& policies);

}  // namespace ppdc
