#include "graph/graph.hpp"
#include "sim/audit.hpp"
#include "util/ids.hpp"
#include "workload/traffic.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

namespace ppdc {

namespace {

std::string format_violation(const AuditViolation& v) {
  std::string msg = "invariant audit failed at epoch " +
                    std::to_string(v.epoch.value()) + " (policy '" +
                    v.policy + "'): [" + v.invariant + "] " + v.detail;
  if (v.flow.valid()) msg += " (flow " + std::to_string(v.flow.value()) + ")";
  if (v.node != kInvalidNode) {
    msg += " (switch " + std::to_string(v.node) + ")";
  }
  return msg;
}

bool close(double a, double b, double rel_tol, double abs_tol) {
  const double diff = std::abs(a - b);
  return diff <= abs_tol + rel_tol * std::max(std::abs(a), std::abs(b));
}

}  // namespace

AuditError::AuditError(AuditViolation violation)
    : PpdcError(format_violation(violation)),
      violation_(std::move(violation)) {}

InvariantAuditor::InvariantAuditor(AuditOptions options,
                                   std::string policy_name)
    : options_(options), policy_(std::move(policy_name)) {}

void InvariantAuditor::fail(Hour epoch, std::string invariant,
                            std::string detail, FlowId flow,
                            NodeId node) const {
  AuditViolation v;
  v.epoch = epoch;
  v.policy = policy_;
  v.invariant = std::move(invariant);
  v.flow = flow;
  v.node = node;
  v.detail = std::move(detail);
  throw AuditError(std::move(v));
}

void InvariantAuditor::on_run_begin(Hour horizon,
                                    const Placement& /*initial*/) {
  horizon_ = horizon;
}

void InvariantAuditor::on_epoch_begin(Hour hour) {
  if (open_epoch_.valid() && !epoch_ended_) {
    fail(hour, "event-stream",
         "epoch began before epoch " +
             std::to_string(open_epoch_.value()) + " ended");
  }
  if (last_ended_.valid() && hour <= last_ended_) {
    fail(hour, "event-stream", "epoch hours must strictly increase");
  }
  open_epoch_ = hour;
  epoch_ended_ = false;
  saw_faults_event_ = false;
  last_faults_ = EpochFaults{};
  stream_quarantined_ = 0;
  stream_penalty_ = 0.0;
}

void InvariantAuditor::on_faults(Hour hour, const EpochFaults& events) {
  if (hour != open_epoch_) {
    fail(hour, "event-stream", "on_faults outside its epoch");
  }
  saw_faults_event_ = true;
  last_faults_ = events;
}

void InvariantAuditor::on_quarantine(Hour hour, int flows,
                                     double /*unserved_rate*/,
                                     double penalty) {
  if (hour != open_epoch_) {
    fail(hour, "event-stream", "on_quarantine outside its epoch");
  }
  stream_quarantined_ = flows;
  stream_penalty_ = penalty;
}

void InvariantAuditor::on_ladder_transition(Hour hour, DegradationRung from,
                                            DegradationRung to,
                                            const std::string& reason) {
  if (hour != open_epoch_) {
    fail(hour, "event-stream", "ladder transition outside its epoch");
  }
  if (from != stream_rung_) {
    fail(hour, "event-stream",
         std::string("ladder transition from rung '") + to_string(from) +
             "' but the stream is at '" + to_string(stream_rung_) + "'");
  }
  const int step = static_cast<int>(to) - static_cast<int>(from);
  if (step != 1 && step != -1) {
    fail(hour, "event-stream",
         std::string("ladder must move one rung at a time, got '") +
             to_string(from) + "' -> '" + to_string(to) + "' (" + reason +
             ")");
  }
  stream_rung_ = to;
  ++transitions_seen_;
}

void InvariantAuditor::on_epoch_end(Hour hour, const EpochDecision& d) {
  if (hour != open_epoch_ || epoch_ended_) {
    fail(hour, "event-stream", "on_epoch_end without a matching begin");
  }
  if (d.rung != stream_rung_) {
    fail(hour, "event-stream",
         std::string("decision executed at rung '") + to_string(d.rung) +
             "' but the transition stream says '" + to_string(stream_rung_) +
             "'");
  }
  const EpochFaults expected =
      saw_faults_event_ ? last_faults_ : EpochFaults{};
  if (d.switch_failures != expected.switch_failures ||
      d.link_failures != expected.link_failures ||
      d.repairs != expected.repairs) {
    fail(hour, "event-stream",
         "decision fault stamps disagree with the on_faults event");
  }
  if (d.quarantined_flows != stream_quarantined_ ||
      d.quarantine_penalty != stream_penalty_) {
    fail(hour, "event-stream",
         "decision quarantine stamps disagree with the on_quarantine event");
  }
  epoch_ended_ = true;
  last_ended_ = hour;
  last_decision_ = d;
}

void InvariantAuditor::check_placement(const AuditContext& ctx,
                                       const Placement& p) const {
  if (p.size() != static_cast<std::size_t>(ctx.n)) {
    fail(ctx.epoch, "placement-feasibility",
         "placement length " + std::to_string(p.size()) +
             " does not match the SFC length " + std::to_string(ctx.n));
  }
  try {
    validate_placement(ctx.model->apsp().graph(), p);
  } catch (const PpdcError& e) {
    // Identify the offending slot for the diagnostic: first duplicate or
    // out-of-range entry.
    NodeId bad = p.empty() ? kInvalidNode : p.front();
    for (std::size_t j = 0; j < p.size(); ++j) {
      const bool dup =
          std::find(p.begin(), p.begin() + static_cast<std::ptrdiff_t>(j),
                    p[j]) != p.begin() + static_cast<std::ptrdiff_t>(j);
      if (p[j] < 0 || dup) {
        bad = p[j];
        break;
      }
    }
    fail(ctx.epoch, "placement-feasibility", e.what(), FlowId::invalid(),
         bad);
  }
  if (ctx.degraded != nullptr) {
    for (const NodeId s : p) {
      if (!ctx.degraded->in_core(s)) {
        fail(ctx.epoch, "placement-feasibility",
             "VNF sits outside the serving core of the degraded fabric",
             FlowId::invalid(), s);
      }
    }
  }
  // Every served (non-quarantined) flow must reach the chain: a finite
  // end-to-end cost on the epoch's metric. An infinite cost means the
  // quarantine logic let an unreachable flow through.
  const auto& flows = ctx.state->flows;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (flows[i].rate == 0.0) continue;
    const double c = ctx.model->flow_cost(flows[i], p);
    if (!std::isfinite(c)) {
      fail(ctx.epoch, "placement-feasibility",
           "served flow has infinite end-to-end cost (missed quarantine?)",
           FlowId{static_cast<FlowId::rep_type>(i)}, p.front());
    }
  }
}

void InvariantAuditor::check_conservation(const AuditContext& ctx) const {
  // Frozen epochs charge the previous epoch's comm cost by design, and
  // blackout epochs serve nothing — both are exempt.
  const EpochDecision& d = *ctx.decision;
  if (d.service_down || d.rung == DegradationRung::kFrozen) return;
  double sum = 0.0;
  for (const VmFlow& f : ctx.state->flows) {
    if (f.rate == 0.0) continue;  // quarantined: 0 x inf would be NaN
    sum += ctx.model->flow_cost(f, ctx.state->placement);
  }
  if (!close(sum, d.comm_cost, options_.rel_tol, options_.abs_tol)) {
    fail(ctx.epoch, "cost-conservation",
         "per-flow recomputation " + std::to_string(sum) +
             " disagrees with the charged communication cost " +
             std::to_string(d.comm_cost));
  }
}

void InvariantAuditor::check_injector(const AuditContext& ctx) const {
  if (ctx.injector == nullptr) {
    if (ctx.degraded != nullptr) {
      fail(ctx.epoch, "injector-consistency",
           "degraded view exists without a fault injector");
    }
    return;
  }
  const bool active = ctx.injector->any_faults_active();
  if (active != (ctx.degraded != nullptr)) {
    fail(ctx.epoch, "injector-consistency",
         active ? "faults are active but no degraded view was built"
                : "degraded view survives a fully healed fabric");
  }
  const auto& dead = ctx.injector->dead_nodes();
  int dead_count = 0;
  for (std::size_t v = 0; v < dead.size(); ++v) {
    if (!dead[v]) continue;
    ++dead_count;
    const auto node = static_cast<NodeId>(v);
    if (ctx.degraded != nullptr && ctx.degraded->in_core(node)) {
      fail(ctx.epoch, "injector-consistency",
           "dead switch is inside the serving core", FlowId::invalid(),
           node);
    }
  }
  if (dead_count != ctx.injector->dead_switch_count()) {
    fail(ctx.epoch, "injector-consistency",
         "dead_switch_count " +
             std::to_string(ctx.injector->dead_switch_count()) +
             " disagrees with the dead-node mask (" +
             std::to_string(dead_count) + ")");
  }
  if (ctx.degraded != nullptr) {
    const Graph& masked = ctx.degraded->apsp().graph();
    for (const auto& [u, v] : ctx.injector->dead_edges()) {
      if (masked.has_edge(u, v)) {
        fail(ctx.epoch, "injector-consistency",
             "dead link still present in the degraded graph",
             FlowId::invalid(), u);
      }
    }
    for (const NodeId s : ctx.degraded->core_switches()) {
      if (dead[static_cast<std::size_t>(s)]) {
        fail(ctx.epoch, "injector-consistency",
             "serving core lists a dead switch", FlowId::invalid(), s);
      }
    }
  }
}

void InvariantAuditor::check_stream(const AuditContext& ctx) const {
  if (ctx.epoch != open_epoch_ || !epoch_ended_) {
    fail(ctx.epoch, "event-stream",
         "check_epoch called before the epoch's on_epoch_end");
  }
}

void InvariantAuditor::check_epoch(const AuditContext& ctx) {
  check_stream(ctx);
  check_injector(ctx);
  if (!ctx.decision->service_down) {
    check_placement(ctx, ctx.state->placement);
    if (options_.corrupt_placement_epoch == ctx.epoch && ctx.n >= 2) {
      // Test-only breach: prove the detection path fires on a real run.
      Placement corrupted = ctx.state->placement;
      corrupted[1] = corrupted[0];
      check_placement(ctx, corrupted);
    }
  }
  check_conservation(ctx);
  ++checked_epochs_;
}

void InvariantAuditor::check_run(const SimTrace& trace) const {
  if (open_epoch_.valid() && !epoch_ended_) {
    fail(open_epoch_, "event-stream", "run ended inside an open epoch");
  }
  if (horizon_.valid() &&
      trace.epochs.size() != static_cast<std::size_t>(horizon_.value())) {
    fail(last_ended_, "event-stream",
         "trace has " + std::to_string(trace.epochs.size()) +
             " epochs for a horizon of " +
             std::to_string(horizon_.value()));
  }
  if (trace.ladder_transitions != transitions_seen_) {
    fail(last_ended_, "event-stream",
         "trace counts " + std::to_string(trace.ladder_transitions) +
             " ladder transitions, the stream delivered " +
             std::to_string(transitions_seen_));
  }
  // TraceRecorder conservation: every total must equal the sum of its
  // per-epoch entries (bit-identical — same values, same order).
  double comm = 0.0;
  double migration = 0.0;
  double recovery = 0.0;
  double penalty = 0.0;
  int truncated = 0;
  int downtime = 0;
  for (const EpochDecision& d : trace.epochs) {
    comm += d.comm_cost;
    migration += d.migration_cost;
    recovery += d.recovery_cost;
    penalty += d.quarantine_penalty;
    truncated += d.truncated_solves;
    if (d.service_down) ++downtime;
  }
  if (comm != trace.total_comm_cost ||
      migration != trace.total_migration_cost ||
      recovery != trace.total_recovery_cost ||
      penalty != trace.total_quarantine_penalty) {
    fail(last_ended_, "cost-conservation",
         "trace totals disagree with the per-epoch sums");
  }
  const double grand = comm + migration + recovery + penalty;
  if (grand != trace.total_cost) {
    fail(last_ended_, "cost-conservation",
         "total_cost " + std::to_string(trace.total_cost) +
             " is not the sum of its parts " + std::to_string(grand));
  }
  if (truncated != trace.total_truncated_solves ||
      downtime != trace.downtime_epochs) {
    fail(last_ended_, "event-stream",
         "trace truncation/downtime totals disagree with the epochs");
  }
}

}  // namespace ppdc
