#include "core/sharded_cost_model.hpp"
#include "graph/graph.hpp"
#include "sim/audit.hpp"
#include "util/ids.hpp"
#include "workload/streaming.hpp"
#include "workload/traffic.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

namespace ppdc {

namespace {

std::string format_violation(const AuditViolation& v) {
  std::string msg = "invariant audit failed at epoch " +
                    std::to_string(v.epoch.value()) + " (policy '" +
                    v.policy + "'): [" + v.invariant + "] " + v.detail;
  if (v.flow.valid()) msg += " (flow " + std::to_string(v.flow.value()) + ")";
  if (v.node != kInvalidNode) {
    msg += " (switch " + std::to_string(v.node) + ")";
  }
  if (!v.shard.empty()) msg += " (shard '" + v.shard + "')";
  return msg;
}

bool close(double a, double b, double rel_tol, double abs_tol) {
  const double diff = std::abs(a - b);
  return diff <= abs_tol + rel_tol * std::max(std::abs(a), std::abs(b));
}

}  // namespace

AuditError::AuditError(AuditViolation violation)
    : PpdcError(format_violation(violation)),
      violation_(std::move(violation)) {}

InvariantAuditor::InvariantAuditor(AuditOptions options,
                                   std::string policy_name)
    : options_(options), policy_(std::move(policy_name)) {}

void InvariantAuditor::fail(Hour epoch, std::string invariant,
                            std::string detail, FlowId flow,
                            NodeId node) const {
  AuditViolation v;
  v.epoch = epoch;
  v.policy = policy_;
  v.invariant = std::move(invariant);
  v.flow = flow;
  v.node = node;
  v.detail = std::move(detail);
  throw AuditError(std::move(v));
}

void InvariantAuditor::on_run_begin(Hour horizon,
                                    const Placement& /*initial*/) {
  horizon_ = horizon;
}

void InvariantAuditor::on_epoch_begin(Hour hour) {
  if (open_epoch_.valid() && !epoch_ended_) {
    fail(hour, "event-stream",
         "epoch began before epoch " +
             std::to_string(open_epoch_.value()) + " ended");
  }
  if (last_ended_.valid() && hour <= last_ended_) {
    fail(hour, "event-stream", "epoch hours must strictly increase");
  }
  open_epoch_ = hour;
  epoch_ended_ = false;
  saw_faults_event_ = false;
  last_faults_ = EpochFaults{};
  stream_quarantined_ = 0;
  stream_penalty_ = 0.0;
}

void InvariantAuditor::on_faults(Hour hour, const EpochFaults& events) {
  if (hour != open_epoch_) {
    fail(hour, "event-stream", "on_faults outside its epoch");
  }
  saw_faults_event_ = true;
  last_faults_ = events;
}

void InvariantAuditor::on_quarantine(Hour hour, int flows,
                                     double /*unserved_rate*/,
                                     double penalty) {
  if (hour != open_epoch_) {
    fail(hour, "event-stream", "on_quarantine outside its epoch");
  }
  stream_quarantined_ = flows;
  stream_penalty_ = penalty;
}

void InvariantAuditor::on_ladder_transition(Hour hour, DegradationRung from,
                                            DegradationRung to,
                                            const std::string& reason) {
  if (hour != open_epoch_) {
    fail(hour, "event-stream", "ladder transition outside its epoch");
  }
  if (from != stream_rung_) {
    fail(hour, "event-stream",
         std::string("ladder transition from rung '") + to_string(from) +
             "' but the stream is at '" + to_string(stream_rung_) + "'");
  }
  const int step = static_cast<int>(to) - static_cast<int>(from);
  if (step != 1 && step != -1) {
    fail(hour, "event-stream",
         std::string("ladder must move one rung at a time, got '") +
             to_string(from) + "' -> '" + to_string(to) + "' (" + reason +
             ")");
  }
  stream_rung_ = to;
  ++transitions_seen_;
}

void InvariantAuditor::on_epoch_end(Hour hour, const EpochDecision& d) {
  if (hour != open_epoch_ || epoch_ended_) {
    fail(hour, "event-stream", "on_epoch_end without a matching begin");
  }
  if (d.rung != stream_rung_) {
    fail(hour, "event-stream",
         std::string("decision executed at rung '") + to_string(d.rung) +
             "' but the transition stream says '" + to_string(stream_rung_) +
             "'");
  }
  const EpochFaults expected =
      saw_faults_event_ ? last_faults_ : EpochFaults{};
  if (d.switch_failures != expected.switch_failures ||
      d.link_failures != expected.link_failures ||
      d.repairs != expected.repairs) {
    fail(hour, "event-stream",
         "decision fault stamps disagree with the on_faults event");
  }
  if (d.quarantined_flows != stream_quarantined_ ||
      d.quarantine_penalty != stream_penalty_) {
    fail(hour, "event-stream",
         "decision quarantine stamps disagree with the on_quarantine event");
  }
  epoch_ended_ = true;
  last_ended_ = hour;
  last_decision_ = d;
}

void InvariantAuditor::check_placement(const AuditContext& ctx,
                                       const Placement& p) const {
  if (p.size() != static_cast<std::size_t>(ctx.n)) {
    fail(ctx.epoch, "placement-feasibility",
         "placement length " + std::to_string(p.size()) +
             " does not match the SFC length " + std::to_string(ctx.n));
  }
  try {
    validate_placement(ctx.model->apsp().graph(), p);
  } catch (const PpdcError& e) {
    // Identify the offending slot for the diagnostic: first duplicate or
    // out-of-range entry.
    NodeId bad = p.empty() ? kInvalidNode : p.front();
    for (std::size_t j = 0; j < p.size(); ++j) {
      const bool dup =
          std::find(p.begin(), p.begin() + static_cast<std::ptrdiff_t>(j),
                    p[j]) != p.begin() + static_cast<std::ptrdiff_t>(j);
      if (p[j] < 0 || dup) {
        bad = p[j];
        break;
      }
    }
    fail(ctx.epoch, "placement-feasibility", e.what(), FlowId::invalid(),
         bad);
  }
  if (ctx.degraded != nullptr) {
    for (const NodeId s : p) {
      if (!ctx.degraded->in_core(s)) {
        fail(ctx.epoch, "placement-feasibility",
             "VNF sits outside the serving core of the degraded fabric",
             FlowId::invalid(), s);
      }
    }
  }
  // Every served (non-quarantined) flow must reach the chain: a finite
  // end-to-end cost on the epoch's metric. An infinite cost means the
  // quarantine logic let an unreachable flow through.
  const auto& flows = ctx.state->flows;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (flows[i].rate == 0.0) continue;
    const double c = ctx.model->flow_cost(flows[i], p);
    if (!std::isfinite(c)) {
      fail(ctx.epoch, "placement-feasibility",
           "served flow has infinite end-to-end cost (missed quarantine?)",
           FlowId{static_cast<FlowId::rep_type>(i)}, p.front());
    }
  }
}

void InvariantAuditor::check_conservation(const AuditContext& ctx) const {
  // Frozen epochs charge the previous epoch's comm cost by design, and
  // blackout epochs serve nothing — both are exempt.
  const EpochDecision& d = *ctx.decision;
  if (d.service_down || d.rung == DegradationRung::kFrozen) return;
  double sum = 0.0;
  for (const VmFlow& f : ctx.state->flows) {
    if (f.rate == 0.0) continue;  // quarantined: 0 x inf would be NaN
    sum += ctx.model->flow_cost(f, ctx.state->placement);
  }
  if (!close(sum, d.comm_cost, options_.rel_tol, options_.abs_tol)) {
    fail(ctx.epoch, "cost-conservation",
         "per-flow recomputation " + std::to_string(sum) +
             " disagrees with the charged communication cost " +
             std::to_string(d.comm_cost));
  }
}

void InvariantAuditor::check_injector(const AuditContext& ctx) const {
  if (ctx.injector == nullptr) {
    if (ctx.degraded != nullptr) {
      fail(ctx.epoch, "injector-consistency",
           "degraded view exists without a fault injector");
    }
    return;
  }
  const bool active = ctx.injector->any_faults_active();
  if (active != (ctx.degraded != nullptr)) {
    fail(ctx.epoch, "injector-consistency",
         active ? "faults are active but no degraded view was built"
                : "degraded view survives a fully healed fabric");
  }
  const auto& dead = ctx.injector->dead_nodes();
  int dead_count = 0;
  for (std::size_t v = 0; v < dead.size(); ++v) {
    if (!dead[v]) continue;
    ++dead_count;
    const auto node = static_cast<NodeId>(v);
    if (ctx.degraded != nullptr && ctx.degraded->in_core(node)) {
      fail(ctx.epoch, "injector-consistency",
           "dead switch is inside the serving core", FlowId::invalid(),
           node);
    }
  }
  if (dead_count != ctx.injector->dead_switch_count()) {
    fail(ctx.epoch, "injector-consistency",
         "dead_switch_count " +
             std::to_string(ctx.injector->dead_switch_count()) +
             " disagrees with the dead-node mask (" +
             std::to_string(dead_count) + ")");
  }
  if (ctx.degraded != nullptr) {
    const Graph& masked = ctx.degraded->apsp().graph();
    for (const auto& [u, v] : ctx.injector->dead_edges()) {
      if (masked.has_edge(u, v)) {
        fail(ctx.epoch, "injector-consistency",
             "dead link still present in the degraded graph",
             FlowId::invalid(), u);
      }
    }
    for (const NodeId s : ctx.degraded->core_switches()) {
      if (dead[static_cast<std::size_t>(s)]) {
        fail(ctx.epoch, "injector-consistency",
             "serving core lists a dead switch", FlowId::invalid(), s);
      }
    }
  }
}

void InvariantAuditor::check_stream(const AuditContext& ctx) const {
  if (ctx.epoch != open_epoch_ || !epoch_ended_) {
    fail(ctx.epoch, "event-stream",
         "check_epoch called before the epoch's on_epoch_end");
  }
}

void InvariantAuditor::check_epoch(const AuditContext& ctx) {
  check_stream(ctx);
  check_injector(ctx);
  if (!ctx.decision->service_down) {
    check_placement(ctx, ctx.state->placement);
    if (options_.corrupt_placement_epoch == ctx.epoch && ctx.n >= 2) {
      // Test-only breach: prove the detection path fires on a real run.
      Placement corrupted = ctx.state->placement;
      corrupted[1] = corrupted[0];
      check_placement(ctx, corrupted);
    }
  }
  check_conservation(ctx);
  ++checked_epochs_;
}

void InvariantAuditor::check_run(const SimTrace& trace) const {
  if (open_epoch_.valid() && !epoch_ended_) {
    fail(open_epoch_, "event-stream", "run ended inside an open epoch");
  }
  if (horizon_.valid() &&
      trace.epochs.size() != static_cast<std::size_t>(horizon_.value())) {
    fail(last_ended_, "event-stream",
         "trace has " + std::to_string(trace.epochs.size()) +
             " epochs for a horizon of " +
             std::to_string(horizon_.value()));
  }
  if (trace.ladder_transitions != transitions_seen_) {
    fail(last_ended_, "event-stream",
         "trace counts " + std::to_string(trace.ladder_transitions) +
             " ladder transitions, the stream delivered " +
             std::to_string(transitions_seen_));
  }
  // TraceRecorder conservation: every total must equal the sum of its
  // per-epoch entries (bit-identical — same values, same order).
  double comm = 0.0;
  double migration = 0.0;
  double recovery = 0.0;
  double penalty = 0.0;
  int truncated = 0;
  int downtime = 0;
  for (const EpochDecision& d : trace.epochs) {
    comm += d.comm_cost;
    migration += d.migration_cost;
    recovery += d.recovery_cost;
    penalty += d.quarantine_penalty;
    truncated += d.truncated_solves;
    if (d.service_down) ++downtime;
  }
  if (comm != trace.total_comm_cost ||
      migration != trace.total_migration_cost ||
      recovery != trace.total_recovery_cost ||
      penalty != trace.total_quarantine_penalty) {
    fail(last_ended_, "cost-conservation",
         "trace totals disagree with the per-epoch sums");
  }
  const double grand = comm + migration + recovery + penalty;
  if (grand != trace.total_cost) {
    fail(last_ended_, "cost-conservation",
         "total_cost " + std::to_string(trace.total_cost) +
             " is not the sum of its parts " + std::to_string(grand));
  }
  if (truncated != trace.total_truncated_solves ||
      downtime != trace.downtime_epochs) {
    fail(last_ended_, "event-stream",
         "trace truncation/downtime totals disagree with the epochs");
  }
}

// ---------------------------------------------------------------------------
// ShardedInvariantAuditor (DESIGN.md §15)
// ---------------------------------------------------------------------------

ShardedInvariantAuditor::ShardedInvariantAuditor(
    AuditOptions options, std::string policy_name,
    std::vector<std::string> shard_names)
    : options_(options),
      policy_(std::move(policy_name)),
      shard_names_(std::move(shard_names)) {
  PPDC_REQUIRE(!shard_names_.empty(),
               "sharded audit needs at least one shard");
  shard_rungs_.assign(shard_names_.size(), DegradationRung::kFull);
}

void ShardedInvariantAuditor::fail(Hour epoch, std::string invariant,
                                   std::string detail, int shard,
                                   FlowId flow, NodeId node) const {
  AuditViolation v;
  v.epoch = epoch;
  v.policy = policy_;
  v.invariant = std::move(invariant);
  v.flow = flow;
  v.node = node;
  if (shard >= 0 && shard < static_cast<int>(shard_names_.size())) {
    v.shard = shard_names_[static_cast<std::size_t>(shard)];
  }
  v.detail = std::move(detail);
  throw AuditError(std::move(v));
}

void ShardedInvariantAuditor::on_run_begin(Hour horizon,
                                           const Placement& /*initial*/) {
  horizon_ = horizon;
}

void ShardedInvariantAuditor::on_epoch_begin(Hour hour) {
  if (open_epoch_.valid() && !epoch_ended_) {
    fail(hour, "event-stream",
         "epoch began before epoch " + std::to_string(open_epoch_.value()) +
             " ended");
  }
  if (last_ended_.valid() && hour <= last_ended_) {
    fail(hour, "event-stream", "epoch hours must strictly increase");
  }
  open_epoch_ = hour;
  epoch_ended_ = false;
  saw_faults_event_ = false;
  last_faults_ = EpochFaults{};
  stream_quarantined_ = 0;
  stream_penalty_ = 0.0;
  epoch_comm_sum_ = 0.0;
  shards_checked_ = 0;
}

void ShardedInvariantAuditor::on_faults(Hour hour, const EpochFaults& events) {
  if (hour != open_epoch_) {
    fail(hour, "event-stream", "on_faults outside its epoch");
  }
  saw_faults_event_ = true;
  last_faults_ = events;
}

void ShardedInvariantAuditor::on_quarantine(Hour hour, int flows,
                                            double /*unserved_rate*/,
                                            double penalty) {
  if (hour != open_epoch_) {
    fail(hour, "event-stream", "on_quarantine outside its epoch");
  }
  stream_quarantined_ = flows;
  stream_penalty_ = penalty;
}

void ShardedInvariantAuditor::on_shard_ladder_transition(
    Hour hour, int shard, const std::string& name, DegradationRung from,
    DegradationRung to, const std::string& reason) {
  if (hour != open_epoch_) {
    fail(hour, "event-stream", "shard ladder transition outside its epoch",
         shard);
  }
  if (shard < 0 || shard >= static_cast<int>(shard_rungs_.size())) {
    fail(hour, "event-stream",
         "ladder transition names unknown shard " + std::to_string(shard) +
             " ('" + name + "')");
  }
  const DegradationRung tracked =
      shard_rungs_[static_cast<std::size_t>(shard)];
  if (from != tracked) {
    fail(hour, "event-stream",
         std::string("shard ladder transition from rung '") +
             to_string(from) + "' but the stream is at '" +
             to_string(tracked) + "'",
         shard);
  }
  const int step = static_cast<int>(to) - static_cast<int>(from);
  if (step != 1 && step != -1) {
    fail(hour, "event-stream",
         std::string("shard ladder must move one rung at a time, got '") +
             to_string(from) + "' -> '" + to_string(to) + "' (" + reason +
             ")",
         shard);
  }
  shard_rungs_[static_cast<std::size_t>(shard)] = to;
  ++transitions_seen_;
}

void ShardedInvariantAuditor::on_epoch_end(Hour hour,
                                           const EpochDecision& d) {
  if (hour != open_epoch_ || epoch_ended_) {
    fail(hour, "event-stream", "on_epoch_end without a matching begin");
  }
  // The merged decision executes at the worst rung any shard sits on.
  DegradationRung max_rung = DegradationRung::kFull;
  for (const DegradationRung r : shard_rungs_) {
    if (static_cast<int>(r) > static_cast<int>(max_rung)) max_rung = r;
  }
  if (d.rung != max_rung) {
    fail(hour, "event-stream",
         std::string("decision executed at rung '") + to_string(d.rung) +
             "' but the worst shard rung is '" + to_string(max_rung) + "'");
  }
  const EpochFaults expected =
      saw_faults_event_ ? last_faults_ : EpochFaults{};
  if (d.switch_failures != expected.switch_failures ||
      d.link_failures != expected.link_failures ||
      d.repairs != expected.repairs) {
    fail(hour, "event-stream",
         "decision fault stamps disagree with the on_faults event");
  }
  if (d.quarantined_flows != stream_quarantined_ ||
      d.quarantine_penalty != stream_penalty_) {
    fail(hour, "event-stream",
         "decision quarantine stamps disagree with the on_quarantine event");
  }
  epoch_ended_ = true;
  last_ended_ = hour;
}

void ShardedInvariantAuditor::note_resumed(
    int epochs, int transitions, const std::vector<DegradationRung>& rungs) {
  PPDC_REQUIRE(rungs.size() == shard_rungs_.size(),
               "resumed rung vector does not match the shard count");
  PPDC_REQUIRE(epochs >= 0 && transitions >= 0,
               "resumed epoch/transition counts must be non-negative");
  replayed_epochs_ = epochs;
  transitions_seen_ = transitions;
  shard_rungs_ = rungs;
}

void ShardedInvariantAuditor::check_shard_placement(
    const ShardAuditContext& ctx, const Placement& p) const {
  if (p.size() != static_cast<std::size_t>(ctx.n)) {
    fail(ctx.epoch, "placement-feasibility",
         "shard placement length " + std::to_string(p.size()) +
             " does not match the SFC length " + std::to_string(ctx.n),
         ctx.shard);
  }
  try {
    validate_placement(ctx.model->apsp().graph(), p);
  } catch (const PpdcError& e) {
    NodeId bad = p.empty() ? kInvalidNode : p.front();
    for (std::size_t j = 0; j < p.size(); ++j) {
      const bool dup =
          std::find(p.begin(), p.begin() + static_cast<std::ptrdiff_t>(j),
                    p[j]) != p.begin() + static_cast<std::ptrdiff_t>(j);
      if (p[j] < 0 || dup) {
        bad = p[j];
        break;
      }
    }
    fail(ctx.epoch, "placement-feasibility", e.what(), ctx.shard,
         FlowId::invalid(), bad);
  }
  if (ctx.degraded != nullptr) {
    for (const NodeId s : p) {
      if (!ctx.degraded->in_core(s)) {
        fail(ctx.epoch, "placement-feasibility",
             "VNF sits outside the serving core of the degraded fabric",
             ctx.shard, FlowId::invalid(), s);
      }
    }
  }
  // Every served local flow must reach the shard's chain at finite cost;
  // an infinite cost means the quarantine logic let an unreachable flow
  // through (flow id is the shard-local slot).
  const auto& flows = *ctx.flows;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (flows[i].rate == 0.0) continue;
    const double c = ctx.model->flow_cost(flows[i], p);
    if (!std::isfinite(c)) {
      fail(ctx.epoch, "placement-feasibility",
           "served flow has infinite end-to-end cost (missed quarantine?)",
           ctx.shard, FlowId{static_cast<FlowId::rep_type>(i)}, p.front());
    }
  }
}

void ShardedInvariantAuditor::check_shard_conservation(
    const ShardAuditContext& ctx) const {
  // Frozen shards charge a stale estimate by design; blackout epochs
  // serve nothing — both exempt. Held (and quarantined) shards are NOT
  // exempt: hold-and-patch must keep the charge exactly refreshed.
  if (ctx.service_down || ctx.frozen) return;
  double sum = 0.0;
  for (const VmFlow& f : *ctx.flows) {
    if (f.rate == 0.0) continue;  // vacant or quarantined slot
    sum += ctx.model->flow_cost(f, *ctx.placement);
  }
  if (!close(sum, ctx.charged_comm, options_.rel_tol, options_.abs_tol)) {
    fail(ctx.epoch, "cost-conservation",
         "per-flow recomputation " + std::to_string(sum) +
             " disagrees with the shard's charged communication cost " +
             std::to_string(ctx.charged_comm),
         ctx.shard);
  }
}

void ShardedInvariantAuditor::check_shard_epoch(const ShardAuditContext& ctx) {
  if (ctx.epoch != open_epoch_ || !epoch_ended_) {
    fail(ctx.epoch, "event-stream",
         "check_shard_epoch called before the epoch's on_epoch_end",
         ctx.shard);
  }
  if (!ctx.service_down) {
    check_shard_placement(ctx, *ctx.placement);
    if (options_.corrupt_placement_epoch == ctx.epoch && ctx.n >= 2 &&
        shards_checked_ == 0) {
      // Test-only breach on the first shard: prove the detection and
      // shard-naming diagnostic path fires on a real sharded run.
      Placement corrupted = *ctx.placement;
      corrupted[1] = corrupted[0];
      check_shard_placement(ctx, corrupted);
    }
  }
  check_shard_conservation(ctx);
  // Accumulate in fixed shard order: the engine's merge sums the same
  // per-shard charges in the same order from 0.0, so the comparison in
  // check_epoch is bit-exact.
  epoch_comm_sum_ += ctx.charged_comm;
  ++shards_checked_;
}

void ShardedInvariantAuditor::check_idmap(
    const ShardedAuditContext& ctx) const {
  const ShardedCostModel& shards = *ctx.shards;
  const auto& global = *ctx.global_flows;
  // Forward: every mapped local slot points back at itself through the
  // global maps, and its endpoints match the global flow's.
  for (int s = 0; s < shards.num_shards(); ++s) {
    const auto& sh = shards.shard(s);
    int vacant = 0;
    for (std::size_t j = 0; j < sh.global_ids.size(); ++j) {
      const FlowId g = sh.global_ids[j];
      if (!g.valid()) {
        ++vacant;
        continue;
      }
      if (static_cast<std::size_t>(g.value()) >= global.size()) {
        fail(ctx.epoch, "id-map-consistency",
             "local slot maps to a global id beyond the flow vector", s, g);
      }
      if (shards.flow_shard(g) != s) {
        fail(ctx.epoch, "id-map-consistency",
             "global map assigns the flow to shard " +
                 std::to_string(shards.flow_shard(g)) +
                 " but shard " + std::to_string(s) + " holds it",
             s, g);
      }
      const FlowId l = shards.flow_local(g);
      if (!l.valid() || static_cast<std::size_t>(l.value()) != j) {
        fail(ctx.epoch, "id-map-consistency",
             "global->local map does not point back at the holding slot", s,
             g);
      }
      const VmFlow& lf = sh.flows[j];
      const VmFlow& gf = global[static_cast<std::size_t>(g.value())];
      if (lf.src_host != gf.src_host || lf.dst_host != gf.dst_host) {
        fail(ctx.epoch, "id-map-consistency",
             "local flow endpoints diverged from the global flow", s, g);
      }
    }
    if (vacant != static_cast<int>(sh.free_locals.size())) {
      fail(ctx.epoch, "id-map-consistency",
           "shard free-list holds " + std::to_string(sh.free_locals.size()) +
               " slots but " + std::to_string(vacant) + " are vacant",
           s);
    }
  }
  // Reverse: every global flow is held by exactly the shard the map says.
  for (std::size_t gi = 0; gi < global.size(); ++gi) {
    const FlowId g{static_cast<FlowId::rep_type>(gi)};
    const int s = shards.flow_shard(g);
    if (s < 0 || s >= shards.num_shards()) {
      fail(ctx.epoch, "id-map-consistency",
           "global flow is mapped to no shard", -1, g);
    }
    const FlowId l = shards.flow_local(g);
    const auto& sh = shards.shard(s);
    if (!l.valid() ||
        static_cast<std::size_t>(l.value()) >= sh.global_ids.size() ||
        sh.global_ids[static_cast<std::size_t>(l.value())] != g) {
      fail(ctx.epoch, "id-map-consistency",
           "shard does not hold the flow its map entry claims", s, g);
    }
  }
}

void ShardedInvariantAuditor::check_injector(
    const ShardedAuditContext& ctx) const {
  if (ctx.injector == nullptr) {
    if (ctx.degraded != nullptr) {
      fail(ctx.epoch, "injector-consistency",
           "degraded view exists without a fault injector");
    }
    return;
  }
  const bool active = ctx.injector->any_faults_active();
  if (active != (ctx.degraded != nullptr)) {
    fail(ctx.epoch, "injector-consistency",
         active ? "faults are active but no degraded view was built"
                : "degraded view survives a fully healed fabric");
  }
  const auto& dead = ctx.injector->dead_nodes();
  int dead_count = 0;
  for (std::size_t v = 0; v < dead.size(); ++v) {
    if (!dead[v]) continue;
    ++dead_count;
    const auto node = static_cast<NodeId>(v);
    if (ctx.degraded != nullptr && ctx.degraded->in_core(node)) {
      fail(ctx.epoch, "injector-consistency",
           "dead switch is inside the serving core", -1, FlowId::invalid(),
           node);
    }
  }
  if (dead_count != ctx.injector->dead_switch_count()) {
    fail(ctx.epoch, "injector-consistency",
         "dead_switch_count " +
             std::to_string(ctx.injector->dead_switch_count()) +
             " disagrees with the dead-node mask (" +
             std::to_string(dead_count) + ")");
  }
  if (ctx.degraded != nullptr) {
    const Graph& masked = ctx.degraded->apsp().graph();
    for (const auto& [u, v] : ctx.injector->dead_edges()) {
      if (masked.has_edge(u, v)) {
        fail(ctx.epoch, "injector-consistency",
             "dead link still present in the degraded graph", -1,
             FlowId::invalid(), u);
      }
    }
    for (const NodeId s : ctx.degraded->core_switches()) {
      if (dead[static_cast<std::size_t>(s)]) {
        fail(ctx.epoch, "injector-consistency",
             "serving core lists a dead switch", -1, FlowId::invalid(), s);
      }
    }
  }
}

void ShardedInvariantAuditor::check_epoch(const ShardedAuditContext& ctx) {
  if (ctx.epoch != open_epoch_ || !epoch_ended_) {
    fail(ctx.epoch, "event-stream",
         "check_epoch called before the epoch's on_epoch_end");
  }
  check_injector(ctx);
  check_idmap(ctx);
  const EpochDecision& d = *ctx.decision;
  if (!d.service_down) {
    if (shards_checked_ != ctx.shards->num_shards()) {
      fail(ctx.epoch, "event-stream",
           "check_epoch ran with " + std::to_string(shards_checked_) +
               " of " + std::to_string(ctx.shards->num_shards()) +
               " shards checked");
    }
    // The merge sums the same per-shard charges in the same fixed order
    // from the same 0.0, so this holds bit for bit — any drift means a
    // shard was charged something other than what it reported.
    if (epoch_comm_sum_ != d.comm_cost) {
      fail(ctx.epoch, "cost-conservation",
           "per-shard charges sum to " + std::to_string(epoch_comm_sum_) +
               " but the merged epoch charged " +
               std::to_string(d.comm_cost));
    }
  }
  ++checked_epochs_;
}

void ShardedInvariantAuditor::check_run(const SimTrace& trace) const {
  if (open_epoch_.valid() && !epoch_ended_) {
    fail(open_epoch_, "event-stream", "run ended inside an open epoch");
  }
  if (horizon_.valid() &&
      trace.epochs.size() != static_cast<std::size_t>(horizon_.value())) {
    fail(last_ended_, "event-stream",
         "trace has " + std::to_string(trace.epochs.size()) +
             " epochs for a horizon of " + std::to_string(horizon_.value()));
  }
  if (horizon_.valid() &&
      checked_epochs_ + replayed_epochs_ != horizon_.value()) {
    fail(last_ended_, "event-stream",
         "audited " + std::to_string(checked_epochs_) + " + replayed " +
             std::to_string(replayed_epochs_) +
             " epochs do not cover the horizon of " +
             std::to_string(horizon_.value()));
  }
  if (trace.ladder_transitions != transitions_seen_) {
    fail(last_ended_, "event-stream",
         "trace counts " + std::to_string(trace.ladder_transitions) +
             " ladder transitions, the stream delivered " +
             std::to_string(transitions_seen_));
  }
  // TraceRecorder conservation: every total must equal the sum of its
  // per-epoch entries (bit-identical — same values, same order).
  double comm = 0.0;
  double migration = 0.0;
  double recovery = 0.0;
  double penalty = 0.0;
  double shard_penalty = 0.0;
  int truncated = 0;
  int downtime = 0;
  int quarantined_shards = 0;
  int retries = 0;
  for (const EpochDecision& d : trace.epochs) {
    comm += d.comm_cost;
    migration += d.migration_cost;
    recovery += d.recovery_cost;
    penalty += d.quarantine_penalty;
    shard_penalty += d.shard_penalty;
    truncated += d.truncated_solves;
    quarantined_shards += d.quarantined_shards;
    retries += d.shard_retries;
    if (d.service_down) ++downtime;
  }
  if (comm != trace.total_comm_cost ||
      migration != trace.total_migration_cost ||
      recovery != trace.total_recovery_cost ||
      penalty != trace.total_quarantine_penalty ||
      shard_penalty != trace.total_shard_penalty) {
    fail(last_ended_, "cost-conservation",
         "trace totals disagree with the per-epoch sums");
  }
  const double grand = comm + migration + recovery + penalty + shard_penalty;
  if (grand != trace.total_cost) {
    fail(last_ended_, "cost-conservation",
         "total_cost " + std::to_string(trace.total_cost) +
             " is not the sum of its parts " + std::to_string(grand));
  }
  if (truncated != trace.total_truncated_solves ||
      downtime != trace.downtime_epochs) {
    fail(last_ended_, "event-stream",
         "trace truncation/downtime totals disagree with the epochs");
  }
  if (quarantined_shards != trace.quarantined_shard_epochs ||
      retries != trace.total_shard_retries) {
    fail(last_ended_, "event-stream",
         "trace shard quarantine/retry totals disagree with the epochs");
  }
}

}  // namespace ppdc
