#include "sim/policy.hpp"

#include <utility>

#include "core/cost_model.hpp"
#include "core/placement_dp.hpp"
#include "util/require.hpp"

namespace ppdc {

const char* to_string(DegradationRung rung) {
  switch (rung) {
    case DegradationRung::kFull:
      return "full";
    case DegradationRung::kRefreshOnly:
      return "refresh-only";
    case DegradationRung::kFrozen:
      return "frozen";
  }
  return "?";
}

EpochDecision NoMigrationPolicy::on_epoch(const CostModel& model,
                                          SimState& state) {
  EpochDecision d;
  d.comm_cost = model.communication_cost(state.placement);
  return d;
}

ParetoMigrationPolicy::ParetoMigrationPolicy(double mu,
                                             ParetoMigrationOptions options,
                                             std::string display_name)
    : mu_(mu), options_(std::move(options)), name_(std::move(display_name)) {
  PPDC_REQUIRE(mu >= 0.0, "negative migration coefficient");
}

EpochDecision ParetoMigrationPolicy::on_epoch(const CostModel& model,
                                              SimState& state) {
  const MigrationResult r =
      solve_tom_pareto(model, state.placement, mu_, options_);
  EpochDecision d;
  d.comm_cost = r.comm_cost;
  d.migration_cost = r.migration_cost;
  d.migration_distance =
      model.migration_cost(state.placement, r.migration, 1.0);
  d.vnf_migrations = r.vnfs_moved;
  state.placement = r.migration;
  return d;
}

ExhaustiveMigrationPolicy::ExhaustiveMigrationPolicy(double mu,
                                                     ChainSearchConfig config)
    : mu_(mu), config_(std::move(config)) {
  PPDC_REQUIRE(mu >= 0.0, "negative migration coefficient");
}

EpochDecision ExhaustiveMigrationPolicy::on_epoch(const CostModel& model,
                                                  SimState& state) {
  ChainSearchConfig cfg = config_;
  cfg.initial = state.placement;  // warm start: staying put is feasible
  const ChainSearchResult r =
      solve_tom_exhaustive(model, state.placement, mu_, cfg);
  MigrationResult eval =
      evaluate_migration(model, state.placement, r.placement, mu_);
  if (!r.proven_optimal) {
    // Budget-truncated search: the incumbent may barely improve on staying
    // put. mPareto is cheap and never worse than NoMigration — degrade to
    // it and keep the cheaper of the two answers.
    MigrationResult pareto = solve_tom_pareto(model, state.placement, mu_);
    if (pareto.total_cost < eval.total_cost) eval = std::move(pareto);
  }
  EpochDecision d;
  d.truncated_solves = r.proven_optimal ? 0 : 1;
  d.comm_cost = eval.comm_cost;
  d.migration_cost = eval.migration_cost;
  d.migration_distance =
      model.migration_cost(state.placement, eval.migration, 1.0);
  d.vnf_migrations = eval.vnfs_moved;
  state.placement = eval.migration;
  return d;
}

ResolvePlacementPolicy::ResolvePlacementPolicy(double mu, TopDpOptions options)
    : mu_(mu), options_(options) {
  PPDC_REQUIRE(mu >= 0.0, "negative migration coefficient");
}

EpochDecision ResolvePlacementPolicy::on_epoch(const CostModel& model,
                                               SimState& state) {
  const PlacementResult fresh = solve_top_dp(
      model, static_cast<int>(state.placement.size()), options_);
  const MigrationResult eval =
      evaluate_migration(model, state.placement, fresh.placement, mu_);
  EpochDecision d;
  d.comm_cost = eval.comm_cost;
  d.migration_cost = eval.migration_cost;
  d.migration_distance =
      model.migration_cost(state.placement, fresh.placement, 1.0);
  d.vnf_migrations = eval.vnfs_moved;
  state.placement = fresh.placement;
  return d;
}

PlanPolicy::PlanPolicy(VmMigrationConfig config) : config_(config) {}

EpochDecision PlanPolicy::on_epoch(const CostModel& model, SimState& state) {
  const VmMigrationResult r = solve_vm_migration_plan(
      model.apsp(), state.flows, state.placement, config_);
  state.flows = r.flows;
  EpochDecision d;
  d.comm_cost = r.comm_cost;
  d.migration_cost = r.migration_cost;
  d.migration_distance = r.migration_distance;
  d.vm_migrations = r.vms_moved;
  d.moved_flows = r.moved_flow_indices;
  return d;
}

McfPolicy::McfPolicy(VmMigrationConfig config) : config_(config) {}

EpochDecision McfPolicy::on_epoch(const CostModel& model, SimState& state) {
  const VmMigrationResult r = solve_vm_migration_mcf(
      model.apsp(), state.flows, state.placement, config_);
  state.flows = r.flows;
  EpochDecision d;
  d.comm_cost = r.comm_cost;
  d.migration_cost = r.migration_cost;
  d.migration_distance = r.migration_distance;
  d.vm_migrations = r.vms_moved;
  d.moved_flows = r.moved_flow_indices;
  return d;
}

}  // namespace ppdc
