#include "sim/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "core/cost_model.hpp"
#include "fault/fault.hpp"
#include "io/serialize.hpp"
#include "sim/engine.hpp"
#include "sim/policy.hpp"
#include "sim/sharded.hpp"
#include "topology/topology.hpp"
#include "util/checksum.hpp"
#include "util/ids.hpp"
#include "util/require.hpp"
#include "util/stats.hpp"
#include "workload/streaming.hpp"
#include "workload/traffic.hpp"
#include "workload/vm_placement.hpp"

namespace ppdc {

namespace {

constexpr char kMagic[8] = {'P', 'P', 'D', 'C', 'J', 'N', 'L', '1'};
// Version 2: StatsBundle grew the graceful-degradation ladder scalars
// (ladder_transitions, refresh_only, frozen, policy_failures) and the
// sim-config fingerprint covers the ladder/audit knobs. Version 3:
// StatsBundle grew the shard scalars (shard_resolves, shard_holds) and
// the sim-config fingerprint covers the sharded streaming knobs (churn
// intensities, resolve_churn_fraction, max_staleness). Version 4:
// StatsBundle grew the shard failure-containment scalars
// (shard_quarantines, shard_retries, shard_penalty) and the sim-config
// fingerprint covers ShardedStreamingConfig::quarantine_sla. Older
// journals are rejected with a clear message — their records cannot be
// merged bit-exactly into the wider bundle.
constexpr std::uint32_t kVersion = 4;

// ---------------------------------------------------------------------------
// Little serialization layer: fixed-width fields appended to a string,
// and a bounds-checked cursor for reading them back. Host-endian by
// design (journals are same-machine scratch artifacts).
// ---------------------------------------------------------------------------

void put_u32(std::string& out, std::uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

void put_u64(std::string& out, std::uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_str(std::string& out, const std::string& s) {
  put_u32(out, checked_cast<std::uint32_t>(s.size(), "journal string length"));
  out.append(s);
}

void put_running_stats(std::string& out, const RunningStats& s) {
  const RunningStats::Raw raw = s.raw();
  put_u64(out, raw.n);
  put_f64(out, raw.mean);
  put_f64(out, raw.m2);
  put_f64(out, raw.min);
  put_f64(out, raw.max);
}

/// Bounds-checked reader over a byte range; every overrun throws with the
/// absolute byte offset so corruption reports are actionable.
class Cursor {
 public:
  Cursor(const std::string& bytes, std::size_t begin, std::size_t end)
      : bytes_(&bytes), pos_(begin), end_(end) {}

  std::size_t pos() const noexcept { return pos_; }
  bool exhausted() const noexcept { return pos_ == end_; }

  void raw(void* out, std::size_t len) {
    PPDC_REQUIRE(len <= end_ - pos_,
                 "journal payload truncated at byte offset " +
                     std::to_string(pos_));
    std::memcpy(out, bytes_->data() + pos_, len);
    pos_ += len;
  }

  std::uint32_t u32() {
    std::uint32_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  std::uint8_t u8() {
    std::uint8_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str() {
    const std::uint32_t len = u32();
    PPDC_REQUIRE(len <= end_ - pos_,
                 "journal string truncated at byte offset " +
                     std::to_string(pos_));
    std::string s(bytes_->data() + pos_, len);
    pos_ += len;
    return s;
  }
  RunningStats running_stats() {
    RunningStats::Raw raw;
    raw.n = u64();
    raw.mean = f64();
    raw.m2 = f64();
    raw.min = f64();
    raw.max = f64();
    return RunningStats::from_raw(raw);
  }

 private:
  const std::string* bytes_;
  std::size_t pos_;
  std::size_t end_;
};

/// Frames a payload: [u32 length][u32 crc32(payload)][payload].
void append_frame(std::string& out, const std::string& payload) {
  put_u32(out, checked_cast<std::uint32_t>(payload.size(),
                                           "journal frame length"));
  put_u32(out, crc32(payload));
  out.append(payload);
}

/// Reads the frame starting at `pos`; returns the [begin, end) payload
/// range and advances `pos` past the frame. Throws on truncation or CRC
/// mismatch, naming the offset.
std::pair<std::size_t, std::size_t> read_frame(const std::string& bytes,
                                               std::size_t& pos) {
  Cursor head(bytes, pos, bytes.size());
  const std::uint32_t len = head.u32();
  const std::uint32_t stored_crc = head.u32();
  const std::size_t begin = head.pos();
  PPDC_REQUIRE(len <= bytes.size() - begin,
               "journal frame at byte offset " + std::to_string(pos) +
                   " claims " + std::to_string(len) + " bytes but only " +
                   std::to_string(bytes.size() - begin) + " remain (torn "
                   "write)");
  const std::uint32_t actual_crc = crc32(bytes.data() + begin, len);
  PPDC_REQUIRE(actual_crc == stored_crc,
               "journal frame at byte offset " + std::to_string(pos) +
                   " fails its CRC32 (stored " + std::to_string(stored_crc) +
                   ", computed " + std::to_string(actual_crc) + ")");
  pos = begin + len;
  return {begin, begin + len};
}

std::string serialize_header(const ExperimentFingerprint& fp,
                             const JournalDims& dims) {
  std::string payload;
  put_u32(payload, kVersion);
  put_u64(payload, fp.topology);
  put_u64(payload, fp.workload);
  put_u64(payload, fp.fault_schedule);
  put_u64(payload, fp.policy_list);
  put_u64(payload, fp.sim_config);
  put_u32(payload, dims.trials);
  put_u32(payload, dims.policies);
  put_u32(payload, dims.hours);
  return payload;
}

std::string serialize_record(const JobRecord& rec) {
  std::string payload;
  put_u32(payload, rec.trial);
  put_u32(payload, rec.policy);
  put_u8(payload, static_cast<std::uint8_t>(rec.outcome));
  put_u32(payload, rec.attempts);
  put_str(payload, rec.policy_name);
  put_str(payload, rec.error);
  const bool has_stats = rec.outcome != JobOutcome::kFailed;
  put_u8(payload, has_stats ? 1 : 0);
  if (has_stats) {
    put_u32(payload, checked_cast<std::uint32_t>(rec.stats.hourly_cost.size(),
                                                 "journal hours"));
    put_running_stats(payload, rec.stats.total);
    put_running_stats(payload, rec.stats.comm);
    put_running_stats(payload, rec.stats.migration);
    put_running_stats(payload, rec.stats.vnf_moves);
    put_running_stats(payload, rec.stats.vm_moves);
    put_running_stats(payload, rec.stats.recovery_moves);
    put_running_stats(payload, rec.stats.recovery_cost);
    put_running_stats(payload, rec.stats.quarantined);
    put_running_stats(payload, rec.stats.penalty);
    put_running_stats(payload, rec.stats.downtime);
    put_running_stats(payload, rec.stats.truncated);
    put_running_stats(payload, rec.stats.ladder_transitions);
    put_running_stats(payload, rec.stats.refresh_only);
    put_running_stats(payload, rec.stats.frozen);
    put_running_stats(payload, rec.stats.policy_failures);
    put_running_stats(payload, rec.stats.shard_resolves);
    put_running_stats(payload, rec.stats.shard_holds);
    put_running_stats(payload, rec.stats.shard_quarantines);
    put_running_stats(payload, rec.stats.shard_retries);
    put_running_stats(payload, rec.stats.shard_penalty);
    for (const RunningStats& s : rec.stats.hourly_cost) {
      put_running_stats(payload, s);
    }
    for (const RunningStats& s : rec.stats.hourly_moves) {
      put_running_stats(payload, s);
    }
  }
  return payload;
}

JobRecord parse_record(const std::string& bytes, std::size_t begin,
                       std::size_t end, const JournalDims& dims) {
  Cursor c(bytes, begin, end);
  JobRecord rec;
  rec.trial = c.u32();
  rec.policy = c.u32();
  const std::uint8_t outcome = c.u8();
  PPDC_REQUIRE(outcome <= static_cast<std::uint8_t>(JobOutcome::kFailed),
               "journal record at byte offset " + std::to_string(begin) +
                   " carries unknown outcome " + std::to_string(outcome));
  rec.outcome = static_cast<JobOutcome>(outcome);
  rec.attempts = c.u32();
  rec.policy_name = c.str();
  rec.error = c.str();
  const bool has_stats = c.u8() != 0;
  PPDC_REQUIRE(rec.trial < dims.trials && rec.policy < dims.policies,
               "journal record at byte offset " + std::to_string(begin) +
                   " addresses cell (" + std::to_string(rec.trial) + ", " +
                   std::to_string(rec.policy) + ") outside the " +
                   std::to_string(dims.trials) + "x" +
                   std::to_string(dims.policies) + " grid");
  if (has_stats) {
    const std::uint32_t hours = c.u32();
    PPDC_REQUIRE(hours == dims.hours,
                 "journal record at byte offset " + std::to_string(begin) +
                     " carries " + std::to_string(hours) +
                     " hourly series entries for a " +
                     std::to_string(dims.hours) + "-hour horizon");
    rec.stats = StatsBundle(hours);
    rec.stats.total = c.running_stats();
    rec.stats.comm = c.running_stats();
    rec.stats.migration = c.running_stats();
    rec.stats.vnf_moves = c.running_stats();
    rec.stats.vm_moves = c.running_stats();
    rec.stats.recovery_moves = c.running_stats();
    rec.stats.recovery_cost = c.running_stats();
    rec.stats.quarantined = c.running_stats();
    rec.stats.penalty = c.running_stats();
    rec.stats.downtime = c.running_stats();
    rec.stats.truncated = c.running_stats();
    rec.stats.ladder_transitions = c.running_stats();
    rec.stats.refresh_only = c.running_stats();
    rec.stats.frozen = c.running_stats();
    rec.stats.policy_failures = c.running_stats();
    rec.stats.shard_resolves = c.running_stats();
    rec.stats.shard_holds = c.running_stats();
    rec.stats.shard_quarantines = c.running_stats();
    rec.stats.shard_retries = c.running_stats();
    rec.stats.shard_penalty = c.running_stats();
    for (std::uint32_t h = 0; h < hours; ++h) {
      rec.stats.hourly_cost[h] = c.running_stats();
    }
    for (std::uint32_t h = 0; h < hours; ++h) {
      rec.stats.hourly_moves[h] = c.running_stats();
    }
  }
  PPDC_REQUIRE(c.exhausted(),
               "journal record at byte offset " + std::to_string(begin) +
                   " has trailing bytes");
  return rec;
}

// ---------------------------------------------------------------------------
// Durable file plumbing (POSIX): the journal at `path` is replaced via
// write-to-temp + fsync + rename, then the directory entry is fsynced, so
// the visible file is always a complete journal.
// ---------------------------------------------------------------------------

[[noreturn]] void throw_io(const std::string& what, const std::string& path) {
  throw PpdcError(what + " '" + path + "': " + std::strerror(errno));
}

void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(),
                        O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best effort: FS may not support directory opens
  ::fsync(fd);
  ::close(fd);
}

void write_atomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_io("cannot open checkpoint temp file", tmp);
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ::ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw_io("cannot write checkpoint temp file", tmp);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    throw_io("cannot fsync checkpoint temp file", tmp);
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw_io("cannot rename checkpoint temp file over", path);
  }
  fsync_parent_dir(path);
}

bool file_exists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PPDC_REQUIRE(in.good(), "cannot read checkpoint journal '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

/// Fault-injection hook for the kill-resume CI gate: when the environment
/// variable PPDC_CHECKPOINT_CRASH_AFTER=N is set, the process hard-exits
/// (no unwinding, no atexit — a SIGKILL stand-in) right after the N-th
/// record of this run becomes durable.
int crash_after_from_env() {
  const char* v = std::getenv("PPDC_CHECKPOINT_CRASH_AFTER");
  if (v == nullptr) return 0;
  // strtol instead of atoi so garbage ("", "abc", trailing junk) is
  // detectably rejected rather than silently parsed as 0-ish.
  char* end = nullptr;
  const long n = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') return 0;
  return n > 0 && n <= std::numeric_limits<int>::max()
             ? static_cast<int>(n)
             : 0;
}

}  // namespace

const char* to_string(JobOutcome outcome) noexcept {
  switch (outcome) {
    case JobOutcome::kOk:
      return "ok";
    case JobOutcome::kTruncated:
      return "truncated";
    case JobOutcome::kFailed:
      return "failed";
  }
  return "unknown";
}

std::vector<std::string> ExperimentFingerprint::diff(
    const ExperimentFingerprint& other) const {
  std::vector<std::string> out;
  if (topology != other.topology) out.emplace_back("topology");
  if (workload != other.workload) out.emplace_back("workload");
  if (fault_schedule != other.fault_schedule) {
    out.emplace_back("fault schedule");
  }
  if (policy_list != other.policy_list) out.emplace_back("policy list");
  if (sim_config != other.sim_config) out.emplace_back("sim config");
  return out;
}

ExperimentFingerprint fingerprint_experiment(
    const Topology& topo, const ExperimentConfig& config,
    const std::vector<const MigrationPolicy*>& policies) {
  ExperimentFingerprint fp;
  {
    // The serialized form captures nodes, labels, edges, weights and rack
    // structure — everything the simulation can observe of the fabric.
    std::ostringstream os;
    save_topology(os, topo);
    fp.topology = hash64(os.str());
  }
  {
    Hash64 h;
    h.u64(config.seed).i64(config.trials);
    const VmPlacementConfig& w = config.workload;
    h.i64(w.num_pairs).f64(w.intra_rack_fraction).b(w.spatial_coasts);
    h.f64(w.rack_zipf_s);
    const RateDistribution& r = w.rates;
    h.f64(r.light_fraction).f64(r.medium_fraction).f64(r.heavy_fraction);
    h.f64(r.light_lo).f64(r.light_hi).f64(r.medium_lo).f64(r.medium_hi);
    h.f64(r.heavy_lo).f64(r.heavy_hi);
    fp.workload = h.value();
  }
  {
    Hash64 h;
    h.u64(config.sim.faults.size());
    for (const FaultEvent& e : config.sim.faults) {
      h.i64(e.epoch.value()).u64(static_cast<std::uint64_t>(e.kind));
      h.i64(e.node).i64(e.u).i64(e.v);
    }
    fp.fault_schedule = h.value();
  }
  {
    Hash64 h;
    h.u64(policies.size());
    for (const MigrationPolicy* p : policies) h.str(p->name());
    fp.policy_list = h.value();
  }
  {
    Hash64 h;
    h.i64(config.sfc_length).i64(config.sim.hours);
    h.i64(config.sim.diurnal.hours_per_day).f64(config.sim.diurnal.tau_min);
    h.i64(config.sim.diurnal.coast_offset);
    h.i64(config.sim.initial_placement.candidate_limit);
    h.b(static_cast<bool>(config.sim.rate_schedule));
    h.f64(config.sim.downtime_factor);
    h.f64(config.sim.fault.mu).f64(config.sim.fault.quarantine_penalty);
    h.i64(config.sim.fault.placement.candidate_limit);
    h.b(config.sim.fault.exhaustive_recovery);
    h.f64(config.sim.fault.budget.wall_ms);
    h.b(config.sim.ladder.enabled);
    h.f64(config.sim.ladder.max_quarantined_fraction);
    h.i64(config.sim.ladder.trip_truncations);
    h.i64(config.sim.ladder.recovery_epochs);
    // Auditing changes no results, but a run that dies on an AuditError
    // must not silently resume as a non-audited run (and vice versa).
    h.b(config.sim.audit.enabled);
    // Sharded streaming execution: the churn trace and the
    // bounded-staleness re-solve schedule both shape results. Thread
    // counts stay excluded (bit-identical by construction).
    h.b(config.sharded.enabled);
    h.i64(config.sharded.churn.arrivals_per_epoch);
    h.f64(config.sharded.churn.departure_prob);
    h.f64(config.sharded.churn.rerate_prob);
    h.f64(config.sharded.resolve_churn_fraction);
    h.i64(config.sharded.max_staleness);
    // Shard failure containment: the quarantine SLA prices quarantined
    // shard-epochs into total cost. The epoch-journal knobs
    // (epoch_journal, epoch_checkpoint_every) stay excluded — they only
    // decide durability, never results.
    h.f64(config.sharded.quarantine_sla);
    fp.sim_config = h.value();
  }
  return fp;
}

CheckpointJournal::CheckpointJournal(std::string path,
                                     const ExperimentFingerprint& fingerprint,
                                     const JournalDims& dims)
    : path_(std::move(path)), crash_after_(crash_after_from_env()) {
  PPDC_REQUIRE(!path_.empty(), "checkpoint journal path is empty");
  if (file_exists(path_)) {
    JournalContents contents = read_journal(path_);
    if (contents.fingerprint != fingerprint) {
      const std::vector<std::string> diverged =
          contents.fingerprint.diff(fingerprint);
      std::string what = "checkpoint journal '" + path_ +
                         "' was written by a different experiment — "
                         "diverged component";
      what += diverged.size() == 1 ? ": " : "s: ";
      for (std::size_t i = 0; i < diverged.size(); ++i) {
        if (i > 0) what += ", ";
        what += diverged[i];
      }
      what += " (delete the journal or rerun the original configuration)";
      throw CheckpointMismatchError(what);
    }
    PPDC_REQUIRE(contents.dims == dims,
                 "checkpoint journal '" + path_ +
                     "' header dimensions disagree with a matching "
                     "fingerprint (corrupt header?)");
    warning_ = contents.warning;
    resumed_ = std::move(contents.records);
    // Keep exactly the verified prefix: a dropped tail is rewritten by
    // the first append, and the rerun jobs re-journal their records.
    buffer_.assign(kMagic, sizeof kMagic);
    append_frame(buffer_, serialize_header(fingerprint, dims));
    for (const JobRecord& rec : resumed_) {
      append_frame(buffer_, serialize_record(rec));
    }
  } else {
    buffer_.assign(kMagic, sizeof kMagic);
    append_frame(buffer_, serialize_header(fingerprint, dims));
    write_atomic(path_, buffer_);
  }
}

void CheckpointJournal::append(const JobRecord& record) {
  const std::string payload = serialize_record(record);
  const std::lock_guard<std::mutex> lock(mu_);
  append_frame(buffer_, payload);
  write_atomic(path_, buffer_);
  ++appended_;
  if (crash_after_ > 0 && appended_ >= crash_after_) {
    // SIGKILL stand-in for the kill-resume gate: no unwinding, no
    // flushing beyond what is already durable.
    std::_Exit(37);
  }
}

JournalContents read_journal(const std::string& path) {
  PPDC_REQUIRE(file_exists(path),
               "checkpoint journal '" + path + "' does not exist");
  const std::string bytes = read_file(path);
  JournalContents out;
  PPDC_REQUIRE(bytes.size() >= sizeof kMagic &&
                   std::memcmp(bytes.data(), kMagic, sizeof kMagic) == 0,
               "'" + path + "' is not a ppdc checkpoint journal (bad magic)");
  std::size_t pos = sizeof kMagic;
  {
    // Header corruption is not recoverable — without a trusted
    // fingerprint nothing in the file can be believed.
    const auto [begin, end] = read_frame(bytes, pos);
    Cursor c(bytes, begin, end);
    const std::uint32_t version = c.u32();
    PPDC_REQUIRE(version == kVersion,
                 "checkpoint journal '" + path + "' has version " +
                     std::to_string(version) + ", this build reads version " +
                     std::to_string(kVersion));
    out.fingerprint.topology = c.u64();
    out.fingerprint.workload = c.u64();
    out.fingerprint.fault_schedule = c.u64();
    out.fingerprint.policy_list = c.u64();
    out.fingerprint.sim_config = c.u64();
    out.dims.trials = c.u32();
    out.dims.policies = c.u32();
    out.dims.hours = c.u32();
    PPDC_REQUIRE(c.exhausted(),
                 "checkpoint journal '" + path + "' header has trailing bytes");
  }
  while (pos < bytes.size()) {
    const std::size_t frame_start = pos;
    try {
      const auto [begin, end] = read_frame(bytes, pos);
      JobRecord rec = parse_record(bytes, begin, end, out.dims);
      out.record_offsets.push_back(frame_start);
      out.records.push_back(std::move(rec));
    } catch (const PpdcError& e) {
      // A torn or corrupt record invalidates everything after it (frame
      // boundaries can no longer be trusted). Drop the tail: the affected
      // jobs rerun, which is always safe.
      out.tail_dropped = true;
      out.warning = "checkpoint journal '" + path + "': dropping " +
                    std::to_string(bytes.size() - frame_start) +
                    " byte(s) after record " +
                    std::to_string(out.records.size()) + " — " + e.what();
      break;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Epoch-granular journal of one sharded run (DESIGN.md §15).
// ---------------------------------------------------------------------------

namespace {

constexpr char kEpochMagic[8] = {'P', 'P', 'D', 'C', 'E', 'J', 'L', '1'};
constexpr std::uint32_t kEpochVersion = 1;

void put_i32(std::string& out, std::int32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

std::int32_t cursor_i32(Cursor& c) {
  return static_cast<std::int32_t>(c.u32());
}

void put_i32_vec(std::string& out, const std::vector<std::int32_t>& v) {
  put_u32(out, checked_cast<std::uint32_t>(v.size(), "epoch journal vector"));
  for (const std::int32_t x : v) put_i32(out, x);
}

std::vector<std::int32_t> cursor_i32_vec(Cursor& c) {
  const std::uint32_t size = c.u32();
  std::vector<std::int32_t> v(size);
  for (std::uint32_t i = 0; i < size; ++i) v[i] = cursor_i32(c);
  return v;
}

void put_f64_vec(std::string& out, const std::vector<double>& v) {
  put_u32(out, checked_cast<std::uint32_t>(v.size(), "epoch journal vector"));
  for (const double x : v) put_f64(out, x);
}

std::vector<double> cursor_f64_vec(Cursor& c) {
  const std::uint32_t size = c.u32();
  std::vector<double> v(size);
  for (std::uint32_t i = 0; i < size; ++i) v[i] = c.f64();
  return v;
}

void put_flowid_vec(std::string& out, const std::vector<FlowId>& v) {
  put_u32(out, checked_cast<std::uint32_t>(v.size(), "epoch journal vector"));
  for (const FlowId id : v) put_i32(out, id.value());
}

std::vector<FlowId> cursor_flowid_vec(Cursor& c) {
  const std::uint32_t size = c.u32();
  std::vector<FlowId> v(size);
  for (std::uint32_t i = 0; i < size; ++i) v[i] = FlowId{cursor_i32(c)};
  return v;
}

void put_vm_flows(std::string& out, const std::vector<VmFlow>& flows) {
  put_u32(out, checked_cast<std::uint32_t>(flows.size(),
                                           "epoch journal flow vector"));
  for (const VmFlow& f : flows) {
    put_i32(out, f.src_host);
    put_i32(out, f.dst_host);
    put_f64(out, f.rate);
    put_i32(out, f.group);
  }
}

std::vector<VmFlow> cursor_vm_flows(Cursor& c) {
  const std::uint32_t size = c.u32();
  std::vector<VmFlow> flows(size);
  for (std::uint32_t i = 0; i < size; ++i) {
    flows[i].src_host = cursor_i32(c);
    flows[i].dst_host = cursor_i32(c);
    flows[i].rate = c.f64();
    flows[i].group = cursor_i32(c);
  }
  return flows;
}

void put_decision(std::string& out, const EpochDecision& d) {
  // moved_flows is deliberately not journaled: the sharded engine rejects
  // VM-relocating policies, so a sharded decision never carries any.
  PPDC_REQUIRE(d.moved_flows.empty(),
               "epoch journal cannot persist moved_flows (VM-relocating "
               "policies are monolithic-only)");
  put_f64(out, d.comm_cost);
  put_f64(out, d.migration_cost);
  put_f64(out, d.migration_distance);
  put_i32(out, d.vnf_migrations);
  put_i32(out, d.vm_migrations);
  put_i32(out, d.truncated_solves);
  put_i32(out, d.switch_failures);
  put_i32(out, d.link_failures);
  put_i32(out, d.repairs);
  put_i32(out, d.recovery_migrations);
  put_f64(out, d.recovery_cost);
  put_i32(out, d.quarantined_flows);
  put_f64(out, d.quarantine_penalty);
  put_u8(out, d.service_down ? 1 : 0);
  put_u8(out, static_cast<std::uint8_t>(d.rung));
  put_u8(out, d.policy_failed ? 1 : 0);
  put_i32(out, d.resolved_shards);
  put_i32(out, d.held_shards);
  put_i32(out, d.quarantined_shards);
  put_i32(out, d.shard_retries);
  put_f64(out, d.shard_penalty);
}

EpochDecision cursor_decision(Cursor& c) {
  EpochDecision d;
  d.comm_cost = c.f64();
  d.migration_cost = c.f64();
  d.migration_distance = c.f64();
  d.vnf_migrations = cursor_i32(c);
  d.vm_migrations = cursor_i32(c);
  d.truncated_solves = cursor_i32(c);
  d.switch_failures = cursor_i32(c);
  d.link_failures = cursor_i32(c);
  d.repairs = cursor_i32(c);
  d.recovery_migrations = cursor_i32(c);
  d.recovery_cost = c.f64();
  d.quarantined_flows = cursor_i32(c);
  d.quarantine_penalty = c.f64();
  d.service_down = c.u8() != 0;
  const std::uint8_t rung = c.u8();
  PPDC_REQUIRE(rung <= static_cast<std::uint8_t>(DegradationRung::kFrozen),
               "epoch journal decision carries unknown rung " +
                   std::to_string(rung));
  d.rung = static_cast<DegradationRung>(rung);
  d.policy_failed = c.u8() != 0;
  d.resolved_shards = cursor_i32(c);
  d.held_shards = cursor_i32(c);
  d.quarantined_shards = cursor_i32(c);
  d.shard_retries = cursor_i32(c);
  d.shard_penalty = c.f64();
  return d;
}

void put_group_snapshot(std::string& out, const CostModel::GroupSnapshot& g) {
  put_i32(out, g.num_groups);
  put_f64_vec(out, g.base_rates);
  put_i32_vec(out, g.groups);
  put_i32_vec(out, g.group_rows);
  put_i32_vec(out, g.row_groups);
  put_f64_vec(out, g.group_ingress);
  put_f64_vec(out, g.group_egress);
  put_f64_vec(out, g.last_scales);
  put_i32_vec(out, g.snap_src);
  put_i32_vec(out, g.snap_dst);
}

CostModel::GroupSnapshot cursor_group_snapshot(Cursor& c) {
  CostModel::GroupSnapshot g;
  g.num_groups = cursor_i32(c);
  g.base_rates = cursor_f64_vec(c);
  g.groups = cursor_i32_vec(c);
  g.group_rows = cursor_i32_vec(c);
  g.row_groups = cursor_i32_vec(c);
  g.group_ingress = cursor_f64_vec(c);
  g.group_egress = cursor_f64_vec(c);
  g.last_scales = cursor_f64_vec(c);
  g.snap_src = cursor_i32_vec(c);
  g.snap_dst = cursor_i32_vec(c);
  return g;
}

void put_shard_state(std::string& out, const ShardResumeState& s) {
  put_vm_flows(out, s.shard.flows);
  put_f64_vec(out, s.shard.base_rates);
  put_i32_vec(out, s.shard.groups);
  put_flowid_vec(out, s.shard.global_ids);
  put_flowid_vec(out, s.shard.free_locals);
  put_i32(out, s.shard.live);
  put_group_snapshot(out, s.shard.model);
  put_i32_vec(out, s.placement);
  put_f64(out, s.last_comm);
  put_i32(out, s.staleness);
  put_i32(out, s.churned);
  put_u8(out, s.resync_pending ? 1 : 0);
  put_u8(out, s.rung);
  put_i32(out, s.clean_streak);
  put_i32(out, s.fail_streak);
}

ShardResumeState cursor_shard_state(Cursor& c) {
  ShardResumeState s;
  s.shard.flows = cursor_vm_flows(c);
  s.shard.base_rates = cursor_f64_vec(c);
  s.shard.groups = cursor_i32_vec(c);
  s.shard.global_ids = cursor_flowid_vec(c);
  s.shard.free_locals = cursor_flowid_vec(c);
  s.shard.live = cursor_i32(c);
  s.shard.model = cursor_group_snapshot(c);
  s.placement = cursor_i32_vec(c);
  s.last_comm = c.f64();
  s.staleness = cursor_i32(c);
  s.churned = cursor_i32(c);
  s.resync_pending = c.u8() != 0;
  s.rung = c.u8();
  PPDC_REQUIRE(s.rung <= static_cast<std::uint8_t>(DegradationRung::kFrozen),
               "epoch journal shard state carries unknown rung " +
                   std::to_string(s.rung));
  s.clean_streak = cursor_i32(c);
  s.fail_streak = cursor_i32(c);
  return s;
}

std::string serialize_workload_snapshot(
    const StreamingWorkload::Snapshot& snap) {
  std::string out;
  put_vm_flows(out, snap.flows);
  put_flowid_vec(out, snap.free_slots);
  put_i32(out, snap.next_index);
  for (const std::uint64_t s : snap.rng) put_u64(out, s);
  return out;
}

StreamingWorkload::Snapshot cursor_workload_snapshot(Cursor& c) {
  StreamingWorkload::Snapshot snap;
  snap.flows = cursor_vm_flows(c);
  snap.free_slots = cursor_flowid_vec(c);
  snap.next_index = cursor_i32(c);
  for (std::uint64_t& s : snap.rng) s = c.u64();
  return snap;
}

/// Kill-resume fault injection (PPDC_EPOCH_CRASH_AFTER=N): hard-exit after
/// the N-th durable epoch-journal write of this process.
int epoch_crash_after_from_env() {
  const char* v = std::getenv("PPDC_EPOCH_CRASH_AFTER");
  if (v == nullptr) return 0;
  char* end = nullptr;
  const long n = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') return 0;
  return n > 0 && n <= std::numeric_limits<int>::max()
             ? static_cast<int>(n)
             : 0;
}

std::atomic<int> g_epoch_journal_writes{0};

}  // namespace

std::uint64_t fingerprint_sharded_run(
    const StreamingWorkload::Snapshot& entry_state, const SimConfig& config,
    const ShardedStreamingConfig& sharded, int n, int num_shards,
    const std::string& policy_name) {
  Hash64 h;
  // The entry-state snapshot pins the exact initial draw; the churn knobs
  // pin how it evolves (the snapshot alone cannot — two configs share an
  // epoch-0 state but diverge from epoch 1).
  h.u64(hash64(serialize_workload_snapshot(entry_state)));
  h.i64(sharded.churn.arrivals_per_epoch);
  h.f64(sharded.churn.departure_prob);
  h.f64(sharded.churn.rerate_prob);
  h.f64(sharded.resolve_churn_fraction);
  h.i64(sharded.max_staleness);
  h.f64(sharded.quarantine_sla);
  h.str(policy_name);
  h.i64(n).i64(num_shards).i64(config.hours);
  h.i64(config.diurnal.hours_per_day).f64(config.diurnal.tau_min);
  h.i64(config.diurnal.coast_offset);
  h.i64(config.initial_placement.candidate_limit);
  h.f64(config.downtime_factor);
  h.u64(config.faults.size());
  for (const FaultEvent& e : config.faults) {
    h.i64(e.epoch.value()).u64(static_cast<std::uint64_t>(e.kind));
    h.i64(e.node).i64(e.u).i64(e.v);
  }
  h.f64(config.fault.mu).f64(config.fault.quarantine_penalty);
  h.i64(config.fault.placement.candidate_limit);
  h.b(config.fault.exhaustive_recovery);
  h.f64(config.fault.budget.wall_ms);
  h.b(config.ladder.enabled);
  h.f64(config.ladder.max_quarantined_fraction);
  h.i64(config.ladder.trip_truncations);
  h.i64(config.ladder.recovery_epochs);
  h.b(config.audit.enabled);
  return h.value();
}

void write_epoch_journal(const std::string& path,
                         const EpochJournalState& state) {
  PPDC_REQUIRE(!path.empty(), "epoch journal path is empty");
  std::string bytes(kEpochMagic, sizeof kEpochMagic);
  {
    std::string header;
    put_u32(header, kEpochVersion);
    put_u64(header, state.fingerprint);
    put_u32(header, state.hours);
    put_u32(header, checked_cast<std::uint32_t>(state.epochs.size(),
                                                "epoch journal epochs"));
    put_u32(header, checked_cast<std::uint32_t>(state.shards.size(),
                                                "epoch journal shards"));
    put_i32_vec(header, state.merged_initial);
    append_frame(bytes, header);
  }
  for (const EpochRecord& rec : state.epochs) {
    std::string payload;
    put_decision(payload, rec.decision);
    put_u32(payload, rec.ladder_steps);
    append_frame(bytes, payload);
  }
  {
    std::string payload;
    for (const ShardResumeState& s : state.shards) {
      put_shard_state(payload, s);
    }
    payload += serialize_workload_snapshot(state.workload);
    append_frame(bytes, payload);
  }
  write_atomic(path, bytes);
  static const int crash_after = epoch_crash_after_from_env();
  const int writes =
      g_epoch_journal_writes.fetch_add(1, std::memory_order_relaxed) + 1;
  if (crash_after > 0 && writes >= crash_after) {
    // SIGKILL stand-in for the sharded kill-resume gate: no unwinding, no
    // flushing beyond what is already durable.
    std::_Exit(37);
  }
}

bool read_epoch_journal(const std::string& path, EpochJournalState& out) {
  if (!file_exists(path)) return false;
  const std::string bytes = read_file(path);
  PPDC_REQUIRE(bytes.size() >= sizeof kEpochMagic &&
                   std::memcmp(bytes.data(), kEpochMagic,
                               sizeof kEpochMagic) == 0,
               "'" + path + "' is not a ppdc epoch journal (bad magic)");
  std::size_t pos = sizeof kEpochMagic;
  std::uint32_t num_epochs = 0;
  std::uint32_t num_shards = 0;
  {
    const auto [begin, end] = read_frame(bytes, pos);
    Cursor c(bytes, begin, end);
    const std::uint32_t version = c.u32();
    PPDC_REQUIRE(version == kEpochVersion,
                 "epoch journal '" + path + "' has version " +
                     std::to_string(version) + ", this build reads version " +
                     std::to_string(kEpochVersion));
    out.fingerprint = c.u64();
    out.hours = c.u32();
    num_epochs = c.u32();
    num_shards = c.u32();
    out.merged_initial = cursor_i32_vec(c);
    PPDC_REQUIRE(c.exhausted(),
                 "epoch journal '" + path + "' header has trailing bytes");
    PPDC_REQUIRE(num_epochs >= 1 && num_epochs <= out.hours,
                 "epoch journal '" + path + "' claims " +
                     std::to_string(num_epochs) + " epochs for a " +
                     std::to_string(out.hours) + "-hour horizon");
  }
  out.epochs.clear();
  out.epochs.reserve(num_epochs);
  for (std::uint32_t e = 0; e < num_epochs; ++e) {
    const auto [begin, end] = read_frame(bytes, pos);
    Cursor c(bytes, begin, end);
    EpochRecord rec;
    rec.decision = cursor_decision(c);
    rec.ladder_steps = c.u32();
    PPDC_REQUIRE(c.exhausted(),
                 "epoch journal '" + path + "' epoch frame has trailing "
                 "bytes");
    out.epochs.push_back(std::move(rec));
  }
  {
    const auto [begin, end] = read_frame(bytes, pos);
    Cursor c(bytes, begin, end);
    out.shards.clear();
    out.shards.reserve(num_shards);
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      out.shards.push_back(cursor_shard_state(c));
    }
    out.workload = cursor_workload_snapshot(c);
    PPDC_REQUIRE(c.exhausted(),
                 "epoch journal '" + path + "' state frame has trailing "
                 "bytes");
  }
  PPDC_REQUIRE(pos == bytes.size(),
               "epoch journal '" + path + "' has " +
                   std::to_string(bytes.size() - pos) +
                   " trailing byte(s) after the state frame");
  return true;
}

void remove_epoch_journal(const std::string& path) {
  if (path.empty()) return;
  ::unlink(path.c_str());
}

}  // namespace ppdc
