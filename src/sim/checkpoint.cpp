#include "sim/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "fault/fault.hpp"
#include "io/serialize.hpp"
#include "sim/policy.hpp"
#include "topology/topology.hpp"
#include "util/checksum.hpp"
#include "util/require.hpp"
#include "util/stats.hpp"
#include "workload/traffic.hpp"
#include "workload/vm_placement.hpp"

namespace ppdc {

namespace {

constexpr char kMagic[8] = {'P', 'P', 'D', 'C', 'J', 'N', 'L', '1'};
// Version 2: StatsBundle grew the graceful-degradation ladder scalars
// (ladder_transitions, refresh_only, frozen, policy_failures) and the
// sim-config fingerprint covers the ladder/audit knobs. Version 3:
// StatsBundle grew the shard scalars (shard_resolves, shard_holds) and
// the sim-config fingerprint covers the sharded streaming knobs (churn
// intensities, resolve_churn_fraction, max_staleness). Older journals
// are rejected with a clear message — their records cannot be merged
// bit-exactly into the wider bundle.
constexpr std::uint32_t kVersion = 3;

// ---------------------------------------------------------------------------
// Little serialization layer: fixed-width fields appended to a string,
// and a bounds-checked cursor for reading them back. Host-endian by
// design (journals are same-machine scratch artifacts).
// ---------------------------------------------------------------------------

void put_u32(std::string& out, std::uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

void put_u64(std::string& out, std::uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_str(std::string& out, const std::string& s) {
  put_u32(out, checked_cast<std::uint32_t>(s.size(), "journal string length"));
  out.append(s);
}

void put_running_stats(std::string& out, const RunningStats& s) {
  const RunningStats::Raw raw = s.raw();
  put_u64(out, raw.n);
  put_f64(out, raw.mean);
  put_f64(out, raw.m2);
  put_f64(out, raw.min);
  put_f64(out, raw.max);
}

/// Bounds-checked reader over a byte range; every overrun throws with the
/// absolute byte offset so corruption reports are actionable.
class Cursor {
 public:
  Cursor(const std::string& bytes, std::size_t begin, std::size_t end)
      : bytes_(&bytes), pos_(begin), end_(end) {}

  std::size_t pos() const noexcept { return pos_; }
  bool exhausted() const noexcept { return pos_ == end_; }

  void raw(void* out, std::size_t len) {
    PPDC_REQUIRE(len <= end_ - pos_,
                 "journal payload truncated at byte offset " +
                     std::to_string(pos_));
    std::memcpy(out, bytes_->data() + pos_, len);
    pos_ += len;
  }

  std::uint32_t u32() {
    std::uint32_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  std::uint8_t u8() {
    std::uint8_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str() {
    const std::uint32_t len = u32();
    PPDC_REQUIRE(len <= end_ - pos_,
                 "journal string truncated at byte offset " +
                     std::to_string(pos_));
    std::string s(bytes_->data() + pos_, len);
    pos_ += len;
    return s;
  }
  RunningStats running_stats() {
    RunningStats::Raw raw;
    raw.n = u64();
    raw.mean = f64();
    raw.m2 = f64();
    raw.min = f64();
    raw.max = f64();
    return RunningStats::from_raw(raw);
  }

 private:
  const std::string* bytes_;
  std::size_t pos_;
  std::size_t end_;
};

/// Frames a payload: [u32 length][u32 crc32(payload)][payload].
void append_frame(std::string& out, const std::string& payload) {
  put_u32(out, checked_cast<std::uint32_t>(payload.size(),
                                           "journal frame length"));
  put_u32(out, crc32(payload));
  out.append(payload);
}

/// Reads the frame starting at `pos`; returns the [begin, end) payload
/// range and advances `pos` past the frame. Throws on truncation or CRC
/// mismatch, naming the offset.
std::pair<std::size_t, std::size_t> read_frame(const std::string& bytes,
                                               std::size_t& pos) {
  Cursor head(bytes, pos, bytes.size());
  const std::uint32_t len = head.u32();
  const std::uint32_t stored_crc = head.u32();
  const std::size_t begin = head.pos();
  PPDC_REQUIRE(len <= bytes.size() - begin,
               "journal frame at byte offset " + std::to_string(pos) +
                   " claims " + std::to_string(len) + " bytes but only " +
                   std::to_string(bytes.size() - begin) + " remain (torn "
                   "write)");
  const std::uint32_t actual_crc = crc32(bytes.data() + begin, len);
  PPDC_REQUIRE(actual_crc == stored_crc,
               "journal frame at byte offset " + std::to_string(pos) +
                   " fails its CRC32 (stored " + std::to_string(stored_crc) +
                   ", computed " + std::to_string(actual_crc) + ")");
  pos = begin + len;
  return {begin, begin + len};
}

std::string serialize_header(const ExperimentFingerprint& fp,
                             const JournalDims& dims) {
  std::string payload;
  put_u32(payload, kVersion);
  put_u64(payload, fp.topology);
  put_u64(payload, fp.workload);
  put_u64(payload, fp.fault_schedule);
  put_u64(payload, fp.policy_list);
  put_u64(payload, fp.sim_config);
  put_u32(payload, dims.trials);
  put_u32(payload, dims.policies);
  put_u32(payload, dims.hours);
  return payload;
}

std::string serialize_record(const JobRecord& rec) {
  std::string payload;
  put_u32(payload, rec.trial);
  put_u32(payload, rec.policy);
  put_u8(payload, static_cast<std::uint8_t>(rec.outcome));
  put_u32(payload, rec.attempts);
  put_str(payload, rec.policy_name);
  put_str(payload, rec.error);
  const bool has_stats = rec.outcome != JobOutcome::kFailed;
  put_u8(payload, has_stats ? 1 : 0);
  if (has_stats) {
    put_u32(payload, checked_cast<std::uint32_t>(rec.stats.hourly_cost.size(),
                                                 "journal hours"));
    put_running_stats(payload, rec.stats.total);
    put_running_stats(payload, rec.stats.comm);
    put_running_stats(payload, rec.stats.migration);
    put_running_stats(payload, rec.stats.vnf_moves);
    put_running_stats(payload, rec.stats.vm_moves);
    put_running_stats(payload, rec.stats.recovery_moves);
    put_running_stats(payload, rec.stats.recovery_cost);
    put_running_stats(payload, rec.stats.quarantined);
    put_running_stats(payload, rec.stats.penalty);
    put_running_stats(payload, rec.stats.downtime);
    put_running_stats(payload, rec.stats.truncated);
    put_running_stats(payload, rec.stats.ladder_transitions);
    put_running_stats(payload, rec.stats.refresh_only);
    put_running_stats(payload, rec.stats.frozen);
    put_running_stats(payload, rec.stats.policy_failures);
    put_running_stats(payload, rec.stats.shard_resolves);
    put_running_stats(payload, rec.stats.shard_holds);
    for (const RunningStats& s : rec.stats.hourly_cost) {
      put_running_stats(payload, s);
    }
    for (const RunningStats& s : rec.stats.hourly_moves) {
      put_running_stats(payload, s);
    }
  }
  return payload;
}

JobRecord parse_record(const std::string& bytes, std::size_t begin,
                       std::size_t end, const JournalDims& dims) {
  Cursor c(bytes, begin, end);
  JobRecord rec;
  rec.trial = c.u32();
  rec.policy = c.u32();
  const std::uint8_t outcome = c.u8();
  PPDC_REQUIRE(outcome <= static_cast<std::uint8_t>(JobOutcome::kFailed),
               "journal record at byte offset " + std::to_string(begin) +
                   " carries unknown outcome " + std::to_string(outcome));
  rec.outcome = static_cast<JobOutcome>(outcome);
  rec.attempts = c.u32();
  rec.policy_name = c.str();
  rec.error = c.str();
  const bool has_stats = c.u8() != 0;
  PPDC_REQUIRE(rec.trial < dims.trials && rec.policy < dims.policies,
               "journal record at byte offset " + std::to_string(begin) +
                   " addresses cell (" + std::to_string(rec.trial) + ", " +
                   std::to_string(rec.policy) + ") outside the " +
                   std::to_string(dims.trials) + "x" +
                   std::to_string(dims.policies) + " grid");
  if (has_stats) {
    const std::uint32_t hours = c.u32();
    PPDC_REQUIRE(hours == dims.hours,
                 "journal record at byte offset " + std::to_string(begin) +
                     " carries " + std::to_string(hours) +
                     " hourly series entries for a " +
                     std::to_string(dims.hours) + "-hour horizon");
    rec.stats = StatsBundle(hours);
    rec.stats.total = c.running_stats();
    rec.stats.comm = c.running_stats();
    rec.stats.migration = c.running_stats();
    rec.stats.vnf_moves = c.running_stats();
    rec.stats.vm_moves = c.running_stats();
    rec.stats.recovery_moves = c.running_stats();
    rec.stats.recovery_cost = c.running_stats();
    rec.stats.quarantined = c.running_stats();
    rec.stats.penalty = c.running_stats();
    rec.stats.downtime = c.running_stats();
    rec.stats.truncated = c.running_stats();
    rec.stats.ladder_transitions = c.running_stats();
    rec.stats.refresh_only = c.running_stats();
    rec.stats.frozen = c.running_stats();
    rec.stats.policy_failures = c.running_stats();
    rec.stats.shard_resolves = c.running_stats();
    rec.stats.shard_holds = c.running_stats();
    for (std::uint32_t h = 0; h < hours; ++h) {
      rec.stats.hourly_cost[h] = c.running_stats();
    }
    for (std::uint32_t h = 0; h < hours; ++h) {
      rec.stats.hourly_moves[h] = c.running_stats();
    }
  }
  PPDC_REQUIRE(c.exhausted(),
               "journal record at byte offset " + std::to_string(begin) +
                   " has trailing bytes");
  return rec;
}

// ---------------------------------------------------------------------------
// Durable file plumbing (POSIX): the journal at `path` is replaced via
// write-to-temp + fsync + rename, then the directory entry is fsynced, so
// the visible file is always a complete journal.
// ---------------------------------------------------------------------------

[[noreturn]] void throw_io(const std::string& what, const std::string& path) {
  throw PpdcError(what + " '" + path + "': " + std::strerror(errno));
}

void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(),
                        O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best effort: FS may not support directory opens
  ::fsync(fd);
  ::close(fd);
}

void write_atomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_io("cannot open checkpoint temp file", tmp);
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ::ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw_io("cannot write checkpoint temp file", tmp);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    throw_io("cannot fsync checkpoint temp file", tmp);
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw_io("cannot rename checkpoint temp file over", path);
  }
  fsync_parent_dir(path);
}

bool file_exists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PPDC_REQUIRE(in.good(), "cannot read checkpoint journal '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

/// Fault-injection hook for the kill-resume CI gate: when the environment
/// variable PPDC_CHECKPOINT_CRASH_AFTER=N is set, the process hard-exits
/// (no unwinding, no atexit — a SIGKILL stand-in) right after the N-th
/// record of this run becomes durable.
int crash_after_from_env() {
  const char* v = std::getenv("PPDC_CHECKPOINT_CRASH_AFTER");
  if (v == nullptr) return 0;
  // strtol instead of atoi so garbage ("", "abc", trailing junk) is
  // detectably rejected rather than silently parsed as 0-ish.
  char* end = nullptr;
  const long n = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') return 0;
  return n > 0 && n <= std::numeric_limits<int>::max()
             ? static_cast<int>(n)
             : 0;
}

}  // namespace

const char* to_string(JobOutcome outcome) noexcept {
  switch (outcome) {
    case JobOutcome::kOk:
      return "ok";
    case JobOutcome::kTruncated:
      return "truncated";
    case JobOutcome::kFailed:
      return "failed";
  }
  return "unknown";
}

std::vector<std::string> ExperimentFingerprint::diff(
    const ExperimentFingerprint& other) const {
  std::vector<std::string> out;
  if (topology != other.topology) out.emplace_back("topology");
  if (workload != other.workload) out.emplace_back("workload");
  if (fault_schedule != other.fault_schedule) {
    out.emplace_back("fault schedule");
  }
  if (policy_list != other.policy_list) out.emplace_back("policy list");
  if (sim_config != other.sim_config) out.emplace_back("sim config");
  return out;
}

ExperimentFingerprint fingerprint_experiment(
    const Topology& topo, const ExperimentConfig& config,
    const std::vector<const MigrationPolicy*>& policies) {
  ExperimentFingerprint fp;
  {
    // The serialized form captures nodes, labels, edges, weights and rack
    // structure — everything the simulation can observe of the fabric.
    std::ostringstream os;
    save_topology(os, topo);
    fp.topology = hash64(os.str());
  }
  {
    Hash64 h;
    h.u64(config.seed).i64(config.trials);
    const VmPlacementConfig& w = config.workload;
    h.i64(w.num_pairs).f64(w.intra_rack_fraction).b(w.spatial_coasts);
    h.f64(w.rack_zipf_s);
    const RateDistribution& r = w.rates;
    h.f64(r.light_fraction).f64(r.medium_fraction).f64(r.heavy_fraction);
    h.f64(r.light_lo).f64(r.light_hi).f64(r.medium_lo).f64(r.medium_hi);
    h.f64(r.heavy_lo).f64(r.heavy_hi);
    fp.workload = h.value();
  }
  {
    Hash64 h;
    h.u64(config.sim.faults.size());
    for (const FaultEvent& e : config.sim.faults) {
      h.i64(e.epoch.value()).u64(static_cast<std::uint64_t>(e.kind));
      h.i64(e.node).i64(e.u).i64(e.v);
    }
    fp.fault_schedule = h.value();
  }
  {
    Hash64 h;
    h.u64(policies.size());
    for (const MigrationPolicy* p : policies) h.str(p->name());
    fp.policy_list = h.value();
  }
  {
    Hash64 h;
    h.i64(config.sfc_length).i64(config.sim.hours);
    h.i64(config.sim.diurnal.hours_per_day).f64(config.sim.diurnal.tau_min);
    h.i64(config.sim.diurnal.coast_offset);
    h.i64(config.sim.initial_placement.candidate_limit);
    h.b(static_cast<bool>(config.sim.rate_schedule));
    h.f64(config.sim.downtime_factor);
    h.f64(config.sim.fault.mu).f64(config.sim.fault.quarantine_penalty);
    h.i64(config.sim.fault.placement.candidate_limit);
    h.b(config.sim.fault.exhaustive_recovery);
    h.f64(config.sim.fault.budget.wall_ms);
    h.b(config.sim.ladder.enabled);
    h.f64(config.sim.ladder.max_quarantined_fraction);
    h.i64(config.sim.ladder.trip_truncations);
    h.i64(config.sim.ladder.recovery_epochs);
    // Auditing changes no results, but a run that dies on an AuditError
    // must not silently resume as a non-audited run (and vice versa).
    h.b(config.sim.audit.enabled);
    // Sharded streaming execution: the churn trace and the
    // bounded-staleness re-solve schedule both shape results. Thread
    // counts stay excluded (bit-identical by construction).
    h.b(config.sharded.enabled);
    h.i64(config.sharded.churn.arrivals_per_epoch);
    h.f64(config.sharded.churn.departure_prob);
    h.f64(config.sharded.churn.rerate_prob);
    h.f64(config.sharded.resolve_churn_fraction);
    h.i64(config.sharded.max_staleness);
    fp.sim_config = h.value();
  }
  return fp;
}

CheckpointJournal::CheckpointJournal(std::string path,
                                     const ExperimentFingerprint& fingerprint,
                                     const JournalDims& dims)
    : path_(std::move(path)), crash_after_(crash_after_from_env()) {
  PPDC_REQUIRE(!path_.empty(), "checkpoint journal path is empty");
  if (file_exists(path_)) {
    JournalContents contents = read_journal(path_);
    if (contents.fingerprint != fingerprint) {
      const std::vector<std::string> diverged =
          contents.fingerprint.diff(fingerprint);
      std::string what = "checkpoint journal '" + path_ +
                         "' was written by a different experiment — "
                         "diverged component";
      what += diverged.size() == 1 ? ": " : "s: ";
      for (std::size_t i = 0; i < diverged.size(); ++i) {
        if (i > 0) what += ", ";
        what += diverged[i];
      }
      what += " (delete the journal or rerun the original configuration)";
      throw CheckpointMismatchError(what);
    }
    PPDC_REQUIRE(contents.dims == dims,
                 "checkpoint journal '" + path_ +
                     "' header dimensions disagree with a matching "
                     "fingerprint (corrupt header?)");
    warning_ = contents.warning;
    resumed_ = std::move(contents.records);
    // Keep exactly the verified prefix: a dropped tail is rewritten by
    // the first append, and the rerun jobs re-journal their records.
    buffer_.assign(kMagic, sizeof kMagic);
    append_frame(buffer_, serialize_header(fingerprint, dims));
    for (const JobRecord& rec : resumed_) {
      append_frame(buffer_, serialize_record(rec));
    }
  } else {
    buffer_.assign(kMagic, sizeof kMagic);
    append_frame(buffer_, serialize_header(fingerprint, dims));
    write_atomic(path_, buffer_);
  }
}

void CheckpointJournal::append(const JobRecord& record) {
  const std::string payload = serialize_record(record);
  const std::lock_guard<std::mutex> lock(mu_);
  append_frame(buffer_, payload);
  write_atomic(path_, buffer_);
  ++appended_;
  if (crash_after_ > 0 && appended_ >= crash_after_) {
    // SIGKILL stand-in for the kill-resume gate: no unwinding, no
    // flushing beyond what is already durable.
    std::_Exit(37);
  }
}

JournalContents read_journal(const std::string& path) {
  PPDC_REQUIRE(file_exists(path),
               "checkpoint journal '" + path + "' does not exist");
  const std::string bytes = read_file(path);
  JournalContents out;
  PPDC_REQUIRE(bytes.size() >= sizeof kMagic &&
                   std::memcmp(bytes.data(), kMagic, sizeof kMagic) == 0,
               "'" + path + "' is not a ppdc checkpoint journal (bad magic)");
  std::size_t pos = sizeof kMagic;
  {
    // Header corruption is not recoverable — without a trusted
    // fingerprint nothing in the file can be believed.
    const auto [begin, end] = read_frame(bytes, pos);
    Cursor c(bytes, begin, end);
    const std::uint32_t version = c.u32();
    PPDC_REQUIRE(version == kVersion,
                 "checkpoint journal '" + path + "' has version " +
                     std::to_string(version) + ", this build reads version " +
                     std::to_string(kVersion));
    out.fingerprint.topology = c.u64();
    out.fingerprint.workload = c.u64();
    out.fingerprint.fault_schedule = c.u64();
    out.fingerprint.policy_list = c.u64();
    out.fingerprint.sim_config = c.u64();
    out.dims.trials = c.u32();
    out.dims.policies = c.u32();
    out.dims.hours = c.u32();
    PPDC_REQUIRE(c.exhausted(),
                 "checkpoint journal '" + path + "' header has trailing bytes");
  }
  while (pos < bytes.size()) {
    const std::size_t frame_start = pos;
    try {
      const auto [begin, end] = read_frame(bytes, pos);
      JobRecord rec = parse_record(bytes, begin, end, out.dims);
      out.record_offsets.push_back(frame_start);
      out.records.push_back(std::move(rec));
    } catch (const PpdcError& e) {
      // A torn or corrupt record invalidates everything after it (frame
      // boundaries can no longer be trusted). Drop the tail: the affected
      // jobs rerun, which is always safe.
      out.tail_dropped = true;
      out.warning = "checkpoint journal '" + path + "': dropping " +
                    std::to_string(bytes.size() - frame_start) +
                    " byte(s) after record " +
                    std::to_string(out.records.size()) + " — " + e.what();
      break;
    }
  }
  return out;
}

}  // namespace ppdc
