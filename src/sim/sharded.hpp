// Pod-sharded epoch loop over a streaming workload (DESIGN.md §14).
//
// run_sharded_simulation() restructures run_simulation() around the
// ingress-pod shards of core/sharded_cost_model.hpp: every shard owns its
// own flow subset, cost model, policy clone, and placement, and the epoch
// loop solves the shards concurrently on a worker pool. Between epochs the
// StreamingWorkload churns (arrivals / departures / re-rates), and each
// shard re-solves only when its accumulated churn crosses
// ShardedStreamingConfig::resolve_churn_fraction or it has been held for
// max_staleness epochs (bounded staleness). Held shards keep their
// placement but are re-costed *exactly* — their cost model still refreshes
// under the epoch's diurnal scales and the epoch charges
// communication_cost(placement), never a stale estimate.
//
// Determinism contract:
//   * Shard state is exact per shard and decisions merge field-wise in
//     fixed pod order, so the trace is bit-identical at any thread count.
//   * Over ShardMap::single with a churn-free workload the loop
//     transcribes the monolithic engine: the returned trace equals
//     run_simulation's field for field (sharded_equivalence_test).
//
// Fault containment (DESIGN.md §15): with the ladder enabled each shard
// owns a private degradation ladder. A shard whose policy clone throws is
// quarantined — placement held, costs patched exactly on the refreshed
// model, SLA-penalized via `quarantine_sla` — while the other shards keep
// solving; seeded-backoff re-solve attempts (on_shard_retry) end the
// quarantine once a retry completes. Runtime invariant auditing
// (SimConfig::audit) attaches a ShardedInvariantAuditor that re-derives
// every shard's epoch from scratch.
//
// Epoch checkpointing: with `epoch_journal` set, the run journals every
// merged epoch decision plus a full resume-state frame (per-shard
// placements, cost-model group state, RNG cursors, workload state) to a
// CRC32-framed file, rewritten atomically every `epoch_checkpoint_every`
// epochs. A killed run relaunched with the same journal path resumes
// mid-horizon bit-identically at any thread count.
//
// Restrictions vs the monolithic engine: only placement policies (the VNF
// migration family) are supported — a policy that relocates VM endpoints
// (PLAN/MCF, EpochDecision::moved_flows non-empty) fails by name with the
// nearest supported alternative; custom SimConfig::rate_schedule is
// monolithic-only.
#pragma once

#include "core/sharded_cost_model.hpp"
#include "graph/apsp.hpp"
#include "sim/engine.hpp"
#include "sim/observer.hpp"
#include "sim/policy.hpp"
#include "workload/streaming.hpp"

namespace ppdc {

/// Knobs of the sharded streaming loop.
struct ShardedStreamingConfig {
  /// Experiment-level gate (sim/experiment.hpp): when false the runner
  /// takes the monolithic path and every other field is ignored.
  bool enabled = false;
  /// Inter-epoch churn intensities of the StreamingWorkload.
  StreamingChurnConfig churn;
  /// A shard re-solves when its churned-flow count since the last solve
  /// reaches this fraction of its live flows. 0 (default) re-solves every
  /// shard every epoch — the monolithic semantics. Fault epochs and
  /// shards with stranded VNFs always re-solve regardless.
  double resolve_churn_fraction = 0.0;
  /// Hard bound on consecutive held epochs per shard (bounded staleness);
  /// only consulted when resolve_churn_fraction > 0.
  int max_staleness = 4;
  /// Worker threads solving shards concurrently. 0 = auto (hardware
  /// concurrency; 1 under PPDC_TSAN). Any value is bit-identical — the
  /// merge order is fixed — so threads are never fingerprinted.
  int threads = 1;
  /// SLA penalty per unit of served traffic rate per quarantined
  /// shard-epoch (a shard sitting out its failure backoff still serves on
  /// a stale placement; this prices that staleness). Shapes results, so
  /// it is part of the experiment fingerprint. 0 only counts quarantined
  /// shard-epochs without charging them.
  double quarantine_sla = 0.0;
  /// Intra-cell epoch journal path (empty = no epoch checkpointing).
  /// Purely a wall-clock/durability knob — never fingerprinted; the
  /// journal itself is fingerprint-keyed so a stale file from another run
  /// is detected and ignored. The experiment runner derives one path per
  /// (trial, policy) cell from this base.
  std::string epoch_journal;
  /// Journal rewrite cadence in epochs (>= 1). Each write is a full
  /// atomic rewrite carrying the resume-state frame, so larger values
  /// trade resume granularity for per-epoch I/O.
  int epoch_checkpoint_every = 1;
};

/// Runs one policy prototype over the horizon, sharded by `map`. The
/// workload is advanced in place (one churn step per epoch from hour 1
/// on); `n` is the per-shard SFC length. The trace's per-epoch decisions
/// are the fixed-order field-wise merge of the per-shard decisions;
/// resolved/held shard counts land in EpochDecision::resolved_shards /
/// held_shards and observers additionally see on_shard_batch.
SimTrace run_sharded_simulation(const AllPairs& apsp, const ShardMap& map,
                                StreamingWorkload& workload, int n,
                                const SimConfig& config,
                                const ShardedStreamingConfig& sharded,
                                const MigrationPolicy& prototype,
                                EpochObserver* observer = nullptr);

}  // namespace ppdc
