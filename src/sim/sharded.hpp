// Pod-sharded epoch loop over a streaming workload (DESIGN.md §14).
//
// run_sharded_simulation() restructures run_simulation() around the
// ingress-pod shards of core/sharded_cost_model.hpp: every shard owns its
// own flow subset, cost model, policy clone, and placement, and the epoch
// loop solves the shards concurrently on a worker pool. Between epochs the
// StreamingWorkload churns (arrivals / departures / re-rates), and each
// shard re-solves only when its accumulated churn crosses
// ShardedStreamingConfig::resolve_churn_fraction or it has been held for
// max_staleness epochs (bounded staleness). Held shards keep their
// placement but are re-costed *exactly* — their cost model still refreshes
// under the epoch's diurnal scales and the epoch charges
// communication_cost(placement), never a stale estimate.
//
// Determinism contract:
//   * Shard state is exact per shard and decisions merge field-wise in
//     fixed pod order, so the trace is bit-identical at any thread count.
//   * Over ShardMap::single with a churn-free workload the loop
//     transcribes the monolithic engine: the returned trace equals
//     run_simulation's field for field (sharded_equivalence_test).
//
// Restrictions vs the monolithic engine: only placement policies (the VNF
// migration family) are supported — a policy that relocates VM endpoints
// (PLAN/MCF, EpochDecision::moved_flows non-empty) fails by name; custom
// SimConfig::rate_schedule and runtime auditing are monolithic-only.
#pragma once

#include "core/sharded_cost_model.hpp"
#include "graph/apsp.hpp"
#include "sim/engine.hpp"
#include "sim/observer.hpp"
#include "sim/policy.hpp"
#include "workload/streaming.hpp"

namespace ppdc {

/// Knobs of the sharded streaming loop.
struct ShardedStreamingConfig {
  /// Experiment-level gate (sim/experiment.hpp): when false the runner
  /// takes the monolithic path and every other field is ignored.
  bool enabled = false;
  /// Inter-epoch churn intensities of the StreamingWorkload.
  StreamingChurnConfig churn;
  /// A shard re-solves when its churned-flow count since the last solve
  /// reaches this fraction of its live flows. 0 (default) re-solves every
  /// shard every epoch — the monolithic semantics. Fault epochs and
  /// shards with stranded VNFs always re-solve regardless.
  double resolve_churn_fraction = 0.0;
  /// Hard bound on consecutive held epochs per shard (bounded staleness);
  /// only consulted when resolve_churn_fraction > 0.
  int max_staleness = 4;
  /// Worker threads solving shards concurrently. 0 = auto (hardware
  /// concurrency; 1 under PPDC_TSAN). Any value is bit-identical — the
  /// merge order is fixed — so threads are never fingerprinted.
  int threads = 1;
};

/// Runs one policy prototype over the horizon, sharded by `map`. The
/// workload is advanced in place (one churn step per epoch from hour 1
/// on); `n` is the per-shard SFC length. The trace's per-epoch decisions
/// are the fixed-order field-wise merge of the per-shard decisions;
/// resolved/held shard counts land in EpochDecision::resolved_shards /
/// held_shards and observers additionally see on_shard_batch.
SimTrace run_sharded_simulation(const AllPairs& apsp, const ShardMap& map,
                                StreamingWorkload& workload, int n,
                                const SimConfig& config,
                                const ShardedStreamingConfig& sharded,
                                const MigrationPolicy& prototype,
                                EpochObserver* observer = nullptr);

}  // namespace ppdc
